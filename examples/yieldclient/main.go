// Yieldclient: drive the ayd service end to end from its Go client —
// boot an in-process server, submit a small OTA model-building flow,
// follow its live SSE event stream, then answer yield queries (single
// and batched) against the model the flow produced.
//
//	go run ./examples/yieldclient
//
// Against a separately started server (`go run ./cmd/ayd serve`), point
// client.New at its address instead of booting one here.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"

	"analogyield/internal/core"
	"analogyield/internal/server"
	"analogyield/internal/server/api"
	"analogyield/internal/server/client"
)

func main() {
	ctx := context.Background()

	// 1. Boot an ayd server on a random local port. A production
	//    deployment runs `ayd serve` instead; the API is identical.
	srv := server.New(server.Config{
		Addr:      "127.0.0.1:0",
		ModelsDir: "yieldclient-out",
		Metrics:   &core.Metrics{},
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(ctx)
	cl := client.New("http://" + srv.Addr())
	fmt.Printf("ayd serving on %s\n", srv.Addr())

	// 2. Submit a model-building flow for the built-in OTA problem at
	//    reduced budgets (the paper's are 100x100 / 200).
	st, err := cl.SubmitFlow(ctx, api.FlowRequest{
		TenantRef:   api.TenantRef{Model: "ota-demo"},
		Problem:     "ota",
		PopSize:     30,
		Generations: 15,
		MCSamples:   40,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (model %q, state %s)\n", st.ID, st.Model, st.State)

	// 3. Follow the job's SSE event stream until it finishes. The same
	//    stream serves browsers via GET /v1/flows/{id}/events.
	err = cl.StreamEvents(ctx, st.ID, 0, func(ev api.Event) error {
		switch ev.Type {
		case api.EventStageStart:
			fmt.Printf("  stage %-8s started (%d units)\n", ev.Stage, ev.Total)
		case api.EventStageEnd:
			fmt.Printf("  stage %-8s done in %.2fs\n", ev.Stage, ev.ElapsedSecs)
		case api.EventCheckpointSaved:
			fmt.Printf("  checkpoint: %d MC points persisted\n", ev.MCDone)
		case api.EventJobDone:
			fmt.Printf("  job done: %s\n", ev.State)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fin, err := cl.Flow(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	if fin.State != api.JobSucceeded {
		log.Fatalf("flow %s: %s", fin.State, fin.Error)
	}
	fmt.Printf("flow: %d evaluations, %d Pareto points\n", fin.Evaluations, fin.ParetoPoints)

	// 4. The finished model is immediately queryable. Pick spec bounds
	//    inside the modelled gain range.
	info, err := cl.Model(ctx, "ota-demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %q: %d points, %s in [%.2f, %.2f], %s in [%.2f, %.2f]\n",
		info.Name, info.Points,
		info.ObjectiveNames[0], info.Domain[0], info.Domain[1],
		info.ObjectiveNames[1], info.Domain1[0], info.Domain1[1])
	gain := info.Domain[0] + 0.4*(info.Domain[1]-info.Domain[0])
	pm := info.Domain1[0] + 0.2*(info.Domain1[1]-info.Domain1[0])

	// 5. The paper's Table 3 query: required gain and phase margin in,
	//    guard-banded targets and interpolated W/L parameters out.
	out, err := cl.Query(ctx, api.QueryRequest{
		TenantRef: api.TenantRef{Model: "ota-demo"},
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: gain},
			{Name: "pm_deg", Sense: ">=", Bound: pm},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: gain ≥ %.2f dB, PM ≥ %.2f°\n", gain, pm)
	fmt.Printf("  guard-banded targets: gain %.2f dB (Δ %.2f%%), PM %.2f° (Δ %.2f%%)\n",
		out.Targets[0], out.DeltaPct[0], out.Targets[1], out.DeltaPct[1])
	fmt.Printf("  predicted yield: %.2f%%\n", 100*out.PredictedYield)
	for _, p := range out.Params {
		fmt.Printf("  %-8s = %8.3f %s\n", p.Name, p.Value, p.Unit)
	}

	// 6. Batched queries coalesce into shared model-lock acquisitions
	//    server-side — the cheap way to sweep a spec range.
	var reqs []api.QueryRequest
	for i := 0; i < 5; i++ {
		g := info.Domain[0] + (0.2+0.12*float64(i))*(info.Domain[1]-info.Domain[0])
		reqs = append(reqs, api.QueryRequest{
			TenantRef: api.TenantRef{Model: "ota-demo"},
			Specs: [2]api.Spec{
				{Name: "gain_db", Sense: ">=", Bound: g},
				{Name: "pm_deg", Sense: ">=", Bound: pm},
			},
		})
	}
	results, err := cl.QueryBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspec sweep (batched):\n")
	for i, r := range results {
		if r.Error != "" {
			fmt.Printf("  gain ≥ %6.2f: %s\n", reqs[i].Specs[0].Bound, r.Error)
			continue
		}
		fmt.Printf("  gain ≥ %6.2f dB → predicted yield %6.2f%%, PM at front %.2f°\n",
			reqs[i].Specs[0].Bound, 100*r.Response.PredictedYield, r.Response.FrontPerf[1])
	}

	// 7. Tenancy: a second client scoped to tenant "acme" sees its own
	//    catalog — the default tenant's "ota-demo" is invisible to it.
	//    Upload a finished model artefact directly (no flow) and query it;
	//    non-default tenants get an explicit "tenant" field back.
	acme := client.New("http://"+srv.Addr(), client.WithTenant("acme"))
	pts := make([]api.ModelPoint, 16)
	for i := range pts {
		x := float64(i) / float64(len(pts)-1)
		pts[i] = api.ModelPoint{
			Perf:     [2]float64{45 + 10*x, 85 - 12*x},
			DeltaPct: [2]float64{1.0 + 0.2*x, 0.5 + 0.1*x},
			Params:   []float64{10 + 50*x, 10, 10},
		}
	}
	ainfo, err := acme.InstallModel(ctx, api.InstallModelRequest{
		Name:           "ota-acme",
		ObjectiveNames: []string{"gain_db", "pm_deg"},
		ParamNames:     []string{"P1", "P2", "P3"},
		ParamUnits:     []string{"um", "um", "um"},
		Points:         pts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntenant %q installed %q (version %.12s...)\n",
		acme.Tenant(), ainfo.Name, ainfo.Version)
	aout, err := acme.Query(ctx, api.QueryRequest{
		TenantRef: api.TenantRef{Model: "ota-acme"},
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: 50},
			{Name: "pm_deg", Sense: ">=", Bound: 76},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tenant %q query: predicted yield %.2f%%\n", aout.Tenant, 100*aout.PredictedYield)
	if _, err := acme.Model(ctx, "ota-demo"); err != nil {
		fmt.Printf("  tenant isolation: %v\n", err)
	}
}
