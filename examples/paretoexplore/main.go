// paretoexplore: spec-space exploration with a saved (or freshly built)
// model — sweep the gain specification across the modelled front and
// report, for each spec, the interpolated variation, the guard-banded
// target and the sizing the model proposes. This is the "subsequent
// design flows are significantly faster" use-case: each query costs four
// spline lookups instead of a simulation campaign.
//
//	go run ./examples/paretoexplore [modeldir]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"analogyield/internal/core"
	"analogyield/internal/process"
	"analogyield/internal/yield"
)

func main() {
	var model *core.Model
	if len(os.Args) > 1 {
		m, err := core.LoadModel(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		model = m
		fmt.Printf("loaded model from %s (%d points)\n", os.Args[1], len(m.Points))
	} else {
		fmt.Println("no model directory given; building a small model first...")
		res, err := core.RunFlow(context.Background(), core.FlowConfig{
			Problem:     core.NewOTAProblem(),
			Proc:        process.C35(),
			PopSize:     40,
			Generations: 30,
			MCSamples:   60,
			Seed:        3,
		})
		if err != nil {
			log.Fatal(err)
		}
		model = res.Model
	}

	lo, hi := model.Domain()
	fmt.Printf("modelled gain range: [%.2f, %.2f] dB\n\n", lo, hi)
	fmt.Printf("%-10s %-10s %-10s %-10s %-10s %-8s\n",
		"gain_spec", "dGain(%)", "target", "front_pm", "dPM(%)", "feasible")

	n := 12
	for i := 0; i < n; i++ {
		bound := lo + (hi-lo)*float64(i+1)/float64(n+1)
		pmAt, err := model.PerfFront.Eval(bound)
		if err != nil {
			continue
		}
		// Ask for most of the PM the front offers at this gain — a spec
		// with a little slack.
		d, err := model.DesignFor(
			yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound},
			yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: pmAt - 3})
		if err != nil {
			fmt.Printf("%-10.2f %-62s\n", bound, "infeasible: "+err.Error())
			continue
		}
		fmt.Printf("%-10.2f %-10.3f %-10.3f %-10.2f %-10.3f %-8v\n",
			bound, d.DeltaPct[0], d.Target[0], d.FrontPerf[1], d.DeltaPct[1], true)
	}

	// Show the degradation of achievable PM along the front — the
	// trade-off curve itself (Fig 7's front in tabular form).
	fmt.Println("\nfront (gain -> pm):")
	for i := 0; i < len(model.Points); i += len(model.Points)/15 + 1 {
		p := model.Points[i]
		fmt.Printf("  %7.2f dB -> %6.2f deg\n", p.Perf[0], p.Perf[1])
	}
}
