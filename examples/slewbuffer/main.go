// slewbuffer: large-signal transient of the symmetrical OTA in
// unity-gain feedback — step response, slew rate and settling time,
// computed with the adaptive-timestep transient engine. This is the
// time-domain complement of the small-signal (gain/PM) view the paper's
// flow optimises.
//
//	go run ./examples/slewbuffer
package main

import (
	"fmt"
	"log"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
	"analogyield/internal/measure"
	"analogyield/internal/ota"
)

func main() {
	c := ota.DefaultConfig()
	p := ota.NominalParams()

	n := circuit.New("ota unity-gain buffer")
	vdd := n.Node("vdd")
	in := n.Node("in")
	out := n.Node("out")
	bias := n.Node("bias")
	gnd := circuit.Ground
	step := 0.4 // volts
	edge := 0.2e-6
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: gnd, DC: c.VDD})
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: gnd, DC: c.VCM,
		Wave: circuit.PulseWave{V1: c.VCM - step/2, V2: c.VCM + step/2,
			Delay: edge, Rise: 1e-9, Fall: 1e-9, Width: 1, Period: 2}})
	n.MustAdd(&circuit.ISource{Inst: "IBIAS", Pos: vdd, Neg: bias, DC: c.IBias})
	n.MustAdd(&circuit.Capacitor{Inst: "CL", A: out, B: gnd, C: c.CLoad})
	// Unity-gain: output fed back to the inverting input.
	c.AddInstance(n, "", vdd, in, out, out,
		n.Node("n1"), n.Node("n2"), n.Node("outm"), n.Node("tail"), bias, p, nil)

	res, err := analysis.TranAdaptive(n, analysis.AdaptiveOptions{
		TranOptions: analysis.TranOptions{TStop: 2e-6},
		RelTol:      1e-4,
	})
	if err != nil {
		log.Fatal(err)
	}
	vout, err := res.V("out")
	if err != nil {
		log.Fatal(err)
	}

	sr, err := measure.TransitionSlew(res.Times, vout, c.VCM-step/2, c.VCM+step/2)
	if err != nil {
		log.Fatal(err)
	}
	st, err := measure.SettlingTime(res.Times, vout, edge, 0.01*step)
	if err != nil {
		log.Fatal(err)
	}
	expect := p.MirrorRatio() * c.IBias / c.CLoad
	fmt.Printf("unity-gain buffer, %.1f V step, CL = %.3g F\n", step, c.CLoad)
	fmt.Printf("adaptive transient: %d accepted steps\n", len(res.Times))
	fmt.Printf("slew rate:     %.3g V/s (20-80%%, theory B*Ibias/CL = %.3g V/s)\n", sr, expect)
	fmt.Printf("settling time: %.3g s (to 1%% of the step)\n", st)
	fmt.Printf("final value:   %.4f V (target %.4f V)\n",
		vout[len(vout)-1], c.VCM+step/2)

	fmt.Println("\ntime_s v(out) (every ~20th accepted point)")
	for i := 0; i < len(res.Times); i += 20 {
		fmt.Printf("%.4g %.4f\n", res.Times[i], vout[i])
	}
}
