// Quickstart: build a combined performance + variation behavioural
// model for the symmetrical OTA on a small budget, then run the paper's
// yield-targeted design query.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"analogyield/internal/core"
	"analogyield/internal/process"
	"analogyield/internal/yield"
)

func main() {
	// 1. The benchmark problem: the paper's symmetrical OTA with the
	//    Table 1 parameter space (8 designable W/L values) and two
	//    objectives, open-loop gain and phase margin.
	problem := core.NewOTAProblem()

	// 2. Run the flow: WBGA optimisation -> Pareto front -> Monte Carlo
	//    variation analysis -> table model. Budgets here are reduced
	//    from the paper's 100x100 / 200 for a fast first run.
	res, err := core.RunFlow(context.Background(), core.FlowConfig{
		Problem:     problem,
		Proc:        process.C35(),
		PopSize:     40,
		Generations: 25,
		MCSamples:   50,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := res.Model.Domain()
	fmt.Printf("flow: %d evaluations, %d Pareto points, gain range [%.2f, %.2f] dB\n",
		res.Evaluations, len(res.FrontIdx), lo, hi)

	// 3. Yield-targeted design: ask for gain >= 48 dB and PM >= 80 deg.
	//    The model interpolates the variation at the spec, guard-bands
	//    the target (Table 3) and returns the designable parameters.
	design, err := res.Model.DesignFor(
		yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: 48},
		yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: 80},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gain spec 48 dB: variation %.2f%% -> guard-banded target %.3f dB\n",
		design.DeltaPct[0], design.Target[0])
	fmt.Printf("pm   spec 80 deg: variation %.2f%% -> guard-banded target %.3f deg\n",
		design.DeltaPct[1], design.Target[1])
	fmt.Println("interpolated parameters:")
	for i, name := range res.Model.ParamNames {
		fmt.Printf("  %-3s = %7.3f %s\n", name, design.Params[i], res.Model.ParamUnits[i])
	}
}
