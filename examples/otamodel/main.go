// otamodel: the paper's §4 design example in full — build the combined
// model for the symmetrical OTA, save the $table_model data files, emit
// the Verilog-A module, and verify a selected design against the
// transistor-level simulation (Table 4 / Fig 8).
//
//	go run ./examples/otamodel [outdir]
//
// Budgets are paper-scale divided by ~4 to finish in tens of seconds;
// use cmd/otaflow for the full 10,000-evaluation run.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"analogyield/internal/behave"
	"analogyield/internal/core"
	"analogyield/internal/measure"
	"analogyield/internal/ota"
	"analogyield/internal/process"
	"analogyield/internal/yield"
)

func main() {
	outDir := "otamodel-out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}

	res, err := core.RunFlow(context.Background(), core.FlowConfig{
		Problem:     core.NewOTAProblem(),
		Proc:        process.C35(),
		PopSize:     50,
		Generations: 50,
		MCSamples:   100,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MOO: %d evaluations, Pareto front %d points, MC %d simulations\n",
		res.Evaluations, len(res.FrontIdx), res.MCSimulations)

	// Save the table model and the Verilog-A module.
	if err := res.Model.Save(outDir); err != nil {
		log.Fatal(err)
	}
	va := behave.GenerateVerilogA(res.Model, behave.VAOptions{})
	if err := os.WriteFile(filepath.Join(outDir, "ota_behav.va"), []byte(va), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model artefacts written to %s\n", outDir)

	// Yield-targeted design query in the knee of the front.
	lo, hi := res.Model.Domain()
	bound := lo + 0.7*(hi-lo)
	pmFloor, err := res.Model.PerfFront.Eval(bound)
	if err != nil {
		log.Fatal(err)
	}
	design, err := res.Model.DesignFor(
		yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound},
		yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: pmFloor - 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec gain >= %.2f dB -> target %.3f dB (variation %.2f%%)\n",
		bound, design.Target[0], design.DeltaPct[0])

	// Table 4: simulate the transistor OTA at the interpolated sizes.
	prob := core.NewOTAProblem()
	params, err := prob.ParamsFromTableValues(design.Params)
	if err != nil {
		log.Fatal(err)
	}
	perf, err := ota.DefaultConfig().Evaluate(params, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 4 comparison:\n")
	fmt.Printf("  gain: transistor %.2f dB, model %.2f dB, error %.2f%%\n",
		perf.GainDB, design.Target[0], 100*math.Abs(perf.GainDB-design.Target[0])/perf.GainDB)
	fmt.Printf("  PM:   transistor %.2f deg, model %.2f deg, error %.2f%%\n",
		perf.PMDeg, design.FrontPerf[1], 100*math.Abs(perf.PMDeg-design.FrontPerf[1])/perf.PMDeg)

	// Fig 8: transistor vs behavioural open-loop response.
	cfg := ota.DefaultConfig()
	freqs, tf, err := cfg.Response(params, nil, 8)
	if err != nil {
		log.Fatal(err)
	}
	gm, ro := behave.FromPerf(perf, cfg.CLoad)
	fmt.Printf("Fig 8 series (transistor vs behavioural single-pole model, gm=%.3g ro=%.3g):\n", gm, ro)
	fmt.Println("  freq_hz   transistor_db   behavioural_db")
	a0 := math.Pow(10, perf.GainDB/20)
	fdom := perf.UnityHz / a0
	for i := 0; i < len(freqs); i += 6 {
		beh := 20*math.Log10(a0) - 10*math.Log10(1+(freqs[i]/fdom)*(freqs[i]/fdom))
		fmt.Printf("  %9.3g  %9.2f       %9.2f\n", freqs[i], measure.GainDB(tf[i]), beh)
	}
}
