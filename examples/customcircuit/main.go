// customcircuit: the flow applied to a different topology — a
// common-source amplifier with a PMOS current-source load — showing that
// the model-building machinery is not OTA-specific. The two objectives,
// DC gain and −3 dB bandwidth, conflict through the channel-length /
// output-resistance trade-off, so the flow produces a gain-bandwidth
// Pareto front and a combined variation model for it.
//
//	go run ./examples/customcircuit
package main

import (
	"context"
	"fmt"
	"log"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
	"analogyield/internal/core"
	"analogyield/internal/measure"
	"analogyield/internal/mos"
	"analogyield/internal/process"
	"analogyield/internal/yield"
)

const um = 1e-6

// csAmp is the CircuitProblem: four designable parameters (driver and
// load W/L), objectives gain (dB, max) and bandwidth (Hz, max).
type csAmp struct {
	nmos, pmos mos.Params
}

func (csAmp) ParamNames() []string     { return []string{"Wn", "Ln", "Wp", "Lp"} }
func (csAmp) ObjectiveNames() []string { return []string{"gain_db", "bw_hz"} }
func (csAmp) Maximize() []bool         { return []bool{true, true} }
func (csAmp) ParamUnits() []string     { return []string{"um", "um", "um", "um"} }

var lo = [4]float64{2 * um, 0.35 * um, 4 * um, 0.35 * um}
var hi = [4]float64{50 * um, 4 * um, 100 * um, 4 * um}

func (csAmp) Denormalize(g []float64) ([]float64, error) {
	if len(g) != 4 {
		return nil, fmt.Errorf("want 4 genes")
	}
	out := make([]float64, 4)
	for i := range g {
		x := g[i]
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		out[i] = (lo[i] + x*(hi[i]-lo[i])) / um // µm for the tables
	}
	return out, nil
}

func (a csAmp) Evaluate(genes []float64, sample *process.Sample) ([]float64, error) {
	phys, err := a.Denormalize(genes)
	if err != nil {
		return nil, err
	}
	wn, ln := phys[0]*um, phys[1]*um
	wp, lp := phys[2]*um, phys[3]*um

	nm, pm := a.nmos, a.pmos
	if sample != nil {
		nm = nm.Applied(sample.DeviceShift(process.NMOS, wn, ln))
		pm = pm.Applied(sample.DeviceShift(process.PMOS, wp, lp))
	}

	n := circuit.New("common-source amp")
	vdd := n.Node("vdd")
	in := n.Node("in")
	mid := n.Node("mid")
	out := n.Node("out")
	srv := n.Node("srv")
	ref := n.Node("ref")
	g := n.Node("g")
	gnd := circuit.Ground
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: gnd, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: gnd, DC: 0, ACMag: 1})
	// DC bias servo (same trick as the OTA bench): srv tracks the output
	// DC through a huge-time-constant RC, and the gate is offset toward
	// the level that centres the output near the 1.65 V reference. At AC
	// the servo path is filtered out, so the gate sees only VIN.
	n.MustAdd(&circuit.VSource{Inst: "VOFF", Pos: mid, Neg: in, DC: 0.75})
	n.MustAdd(&circuit.VSource{Inst: "VREF", Pos: ref, Neg: gnd, DC: 1.65})
	n.MustAdd(&circuit.Resistor{Inst: "RFB", A: out, B: srv, R: 1e9})
	n.MustAdd(&circuit.Capacitor{Inst: "CFB", A: srv, B: gnd, C: 1})
	n.MustAdd(&circuit.VCVS{Inst: "EB", OutP: g, OutN: mid, InP: ref, InN: srv, Gain: 2.0})
	n.MustAdd(&circuit.MOSFET{Inst: "M1", D: out, G: g, S: gnd, B: gnd,
		W: wn, L: ln, Model: nm})
	// PMOS current source load, gate at a fixed bias.
	n.MustAdd(&circuit.VSource{Inst: "VBP", Pos: n.Node("pg"), Neg: gnd, DC: 2.2})
	pg, _ := n.NodeIndex("pg")
	n.MustAdd(&circuit.MOSFET{Inst: "M2", D: out, G: pg, S: vdd, B: vdd,
		W: wp, L: lp, Model: pm})
	n.MustAdd(&circuit.Capacitor{Inst: "CL", A: out, B: gnd, C: 1e-12})

	op, err := analysis.OP(n, nil)
	if err != nil {
		return nil, err
	}
	ac, err := analysis.ACDecade(n, op, 1e3, 1e9, 8)
	if err != nil {
		return nil, err
	}
	tf, err := ac.V("out")
	if err != nil {
		return nil, err
	}
	gain := measure.DCGainDB(tf)
	bw, err := measure.Bandwidth3dB(ac.Freqs, tf)
	if err != nil {
		return nil, err
	}
	if gain < 0 {
		return nil, fmt.Errorf("degenerate bias (gain %.1f dB)", gain)
	}
	return []float64{gain, bw}, nil
}

func main() {
	prob := csAmp{nmos: mos.NominalNMOS(), pmos: mos.NominalPMOS()}
	res, err := core.RunFlow(context.Background(), core.FlowConfig{
		Problem:     prob,
		Proc:        process.C35(),
		PopSize:     30,
		Generations: 25,
		MCSamples:   40,
		Seed:        5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("common-source amp: %d evaluations, %d Pareto points\n",
		res.Evaluations, len(res.FrontIdx))
	fmt.Println("gain-bandwidth front with variation:")
	for i := 0; i < len(res.Model.Points); i += len(res.Model.Points)/10 + 1 {
		p := res.Model.Points[i]
		fmt.Printf("  gain %6.2f dB (±%.2f%%)  bw %9.3g Hz (±%.2f%%)\n",
			p.Perf[0], p.DeltaPct[0], p.Perf[1], p.DeltaPct[1])
	}

	lo, hi := res.Model.Domain()
	bound := lo + 0.5*(hi-lo)
	bwAt, err := res.Model.PerfFront.Eval(bound)
	if err != nil {
		log.Fatal(err)
	}
	// The bandwidth varies strongly under process variation (the PMOS
	// current source has a fixed gate bias, so its current — and with it
	// gds and the pole — moves ~25% over the extremes). The bw spec
	// therefore needs enough slack for its guard band to stay on the
	// front: ask for 60% of what the front offers at this gain.
	d, err := res.Model.DesignFor(
		yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound},
		yield.Spec{Name: "bw", Sense: yield.AtLeast, Bound: bwAt * 0.6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspec gain >= %.1f dB -> target %.2f dB, sizes:", bound, d.Target[0])
	for i, name := range res.Model.ParamNames {
		fmt.Printf(" %s=%.2fum", name, d.Params[i])
	}
	fmt.Println()
}
