// filterdesign: the paper's §5 application as an API walkthrough —
// design the 2nd-order anti-aliasing gm-C filter around the behavioural
// OTA, optimise the capacitors (30 individuals × 40 generations, as in
// the paper), verify at transistor level, and confirm yield by Monte
// Carlo (the paper's 500-sample check).
//
//	go run ./examples/filterdesign
package main

import (
	"context"
	"fmt"
	"log"

	"analogyield/internal/behave"
	"analogyield/internal/filter"
	"analogyield/internal/measure"
	"analogyield/internal/ota"
	"analogyield/internal/process"
)

func main() {
	// The OTA that implements the filter's transconductors: nominal
	// sizing, characterised once at transistor level.
	cfg := ota.DefaultConfig()
	params := ota.NominalParams()
	perf, err := cfg.Evaluate(params, nil)
	if err != nil {
		log.Fatal(err)
	}
	gm, ro := behave.FromPerf(perf, cfg.CLoad)
	fmt.Printf("OTA: gain %.2f dB, PM %.2f deg -> behavioural gm=%.4g S, ro=%.4g ohm\n",
		perf.GainDB, perf.PMDeg, gm, ro)

	// The Fig 10 anti-aliasing template.
	spec := filter.DefaultSpec()
	fmt.Printf("spec: flat ±%.1f dB to %.3g Hz, >= %.0f dB attenuation at %.3g Hz\n",
		spec.RippleDB, spec.PassbandEdge, spec.StopbandAttenDB, spec.StopbandEdge)

	// Capacitor MOO on the *behavioural* filter — the paper's speed win:
	// each candidate is a 3-node linear solve instead of a 26-transistor
	// simulation.
	prob := &filter.Problem{Spec: spec, Space: filter.DefaultCapSpace(), GM: gm, Ro: ro}
	opt, err := filter.Optimize(context.Background(), prob,
		filter.OptimizeOptions{PopSize: 30, Generations: 40, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimised caps: C1=%.3g C2=%.3g C3=%.3g (after %d behavioural evaluations)\n",
		opt.Caps.C1, opt.Caps.C2, opt.Caps.C3, opt.Evaluations)

	// Verify the chosen design with the full transistor-level filter.
	rt, err := filter.Measure(filter.BuildTransistor(opt.Caps, cfg, params, nil), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transistor-level: DC %.2f dB, passband dev %.3f dB, stopband atten %.2f dB\n",
		rt.DCGainDB, rt.PassbandDevDB, rt.StopbandAttenDB)
	fmt.Printf("meets spec: %v\n", spec.Satisfies(rt))

	// Monte Carlo yield, as in the paper's final check.
	yr, err := filter.VerifyYield(context.Background(), opt.Caps, cfg, params, spec, process.C35(), 500, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo yield (%d samples): %.1f%%\n", yr.Samples, 100*yr.Yield)

	// Fig 11 excerpt: the typical-mean response.
	fmt.Println("\nfreq_hz gain_db (every 8th point)")
	for i := 0; i < len(rt.Freqs); i += 8 {
		fmt.Printf("%9.3g %8.3f\n", rt.Freqs[i], measure.GainDB(rt.TF[i]))
	}
}
