// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured). Each benchmark prints its
// table/series once per `go test -bench` invocation and then times a
// representative kernel of the experiment.
//
// Budgets default to a scaled-down flow so the full suite runs in a few
// minutes; set ANALOGYIELD_PAPER=1 to use the paper's exact budgets
// (100×100 MOO evaluations, 200 MC samples per Pareto point, 500-sample
// filter MC).
package analogyield_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"analogyield/internal/behave"
	"analogyield/internal/core"
	"analogyield/internal/filter"
	"analogyield/internal/measure"
	"analogyield/internal/montecarlo"
	"analogyield/internal/ota"
	"analogyield/internal/process"
	"analogyield/internal/spline"
	"analogyield/internal/table"
	"analogyield/internal/wbga"
	"analogyield/internal/yield"
)

// paperScale reports whether the full paper budgets were requested.
func paperScale() bool { return os.Getenv("ANALOGYIELD_PAPER") == "1" }

type budgets struct {
	pop, gen, mcPerPoint, filterMC int
}

func budget() budgets {
	if paperScale() {
		return budgets{pop: 100, gen: 100, mcPerPoint: 200, filterMC: 500}
	}
	return budgets{pop: 60, gen: 50, mcPerPoint: 60, filterMC: 120}
}

// ---- shared fixtures -------------------------------------------------

var (
	flowOnce sync.Once
	flowRes  *core.FlowResult
	flowErr  error
	flowDur  time.Duration
)

// sharedFlow runs the full model-building flow once per test binary.
func sharedFlow(b *testing.B) *core.FlowResult {
	b.Helper()
	flowOnce.Do(func() {
		bud := budget()
		t0 := time.Now()
		flowRes, flowErr = core.RunFlow(context.Background(), core.FlowConfig{
			Problem:     core.NewOTAProblem(),
			Proc:        process.C35(),
			PopSize:     bud.pop,
			Generations: bud.gen,
			MCSamples:   bud.mcPerPoint,
			Seed:        1,
			Model:       core.ModelOptions{MaxTablePoints: 150},
		})
		flowDur = time.Since(t0)
	})
	if flowErr != nil {
		b.Fatal(flowErr)
	}
	return flowRes
}

// sharedDesign performs the paper's Table 3 query on the shared model:
// a gain spec in the knee of the front with a PM spec 2° under what the
// front offers there.
func sharedDesign(b *testing.B) (*core.Model, *core.Design, yield.Spec, yield.Spec) {
	b.Helper()
	m := sharedFlow(b).Model
	lo, hi := m.Domain()
	bound := lo + 0.75*(hi-lo)
	pmAt, err := m.PerfFront.Eval(bound)
	if err != nil {
		b.Fatal(err)
	}
	spec0 := yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound}
	spec1 := yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: pmAt - 2}
	d, err := m.DesignFor(spec0, spec1)
	if err != nil {
		b.Fatal(err)
	}
	return m, d, spec0, spec1
}

var printOnce sync.Map

// printTable emits a table once per benchmark binary invocation.
func printTable(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n", name)
		f()
	}
}

// ---- Table 1: designable parameter ranges -----------------------------

func BenchmarkTable1_ParameterSpace(b *testing.B) {
	space := ota.DefaultSpace()
	printTable("Table 1: design parameters", func() {
		names := space.Names()
		pairs := []string{"(M3,M4)", "(M3,M4)", "(M5,M6)", "(M5,M6)",
			"(M7,M8)", "(M7,M8)", "(M9,M10)", "(M9,M10)"}
		for i, n := range names {
			fmt.Printf("  %-4s %-9s %6.2f um - %6.2f um\n",
				n, pairs[i], space.Lo[i]*1e6, space.Hi[i]*1e6)
		}
		fmt.Println("  Wg1  (gain weight)   0 - 1 (normalised)")
		fmt.Println("  Wg2  (phase weight)  0 - 1 (normalised)")
	})
	genes := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range genes {
			genes[j] = float64((i+j)%11) / 10
		}
		if _, err := space.Denormalize(genes); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 4/6: GA string construction ----------------------------------

func BenchmarkFig4_GAString(b *testing.B) {
	space := ota.DefaultSpace()
	printTable("Fig 4/6: GA string", func() {
		fmt.Println(" ", wbga.GAStringLayout(space.Names(), []string{"Wg1", "Wg2"}))
	})
	raw := []float64{0.3, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wbga.NormalizeWeights(raw)
		if math.Abs(w[0]+w[1]-1) > 1e-9 {
			b.Fatal("weights not normalised")
		}
	}
}

// ---- Fig 7: MOO scatter and Pareto front ------------------------------

func BenchmarkFig7_MOOScatter(b *testing.B) {
	res := sharedFlow(b)
	printTable("Fig 7: gain/PM of all individuals + Pareto front", func() {
		ok := 0
		for _, e := range res.Archive {
			if e.OK {
				ok++
			}
		}
		fmt.Printf("  evaluations: %d (%d successful), Pareto points: %d\n",
			res.Evaluations, ok, len(res.FrontIdx))
		fmt.Println("  front series (gain_db pm_deg), every ~10th point:")
		pts := res.Model.Points
		for i := 0; i < len(pts); i += len(pts)/20 + 1 {
			fmt.Printf("    %7.3f %7.3f\n", pts[i].Perf[0], pts[i].Perf[1])
		}
	})
	// Kernel: one circuit objective evaluation (the unit of the 10,000).
	prob := core.NewOTAProblem()
	genes := make([]float64, 8)
	for j := range genes {
		genes[j] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Evaluate(genes, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 2: performance and variation values ------------------------

func BenchmarkTable2_ParetoVariation(b *testing.B) {
	res := sharedFlow(b)
	printTable("Table 2: performance and variation values", func() {
		fmt.Printf("  %-10s %-10s %-10s %-10s\n", "Gain(dB)", "dGain(%)", "PM(deg)", "dPM(%)")
		pts := res.Model.Points
		for i := 0; i < len(pts); i += len(pts)/12 + 1 {
			p := pts[i]
			fmt.Printf("  %-10.2f %-10.2f %-10.1f %-10.2f\n",
				p.Perf[0], p.DeltaPct[0], p.Perf[1], p.DeltaPct[1])
		}
	})
	// Kernel: one Monte Carlo circuit evaluation (the unit of the
	// 1022 × 200 variation-model simulations).
	prob := core.NewOTAProblem()
	proc := process.C35()
	genes := make([]float64, 8)
	for j := range genes {
		genes[j] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Evaluate(genes, proc.NewSample(9, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 3: guard-band interpolation --------------------------------

func BenchmarkTable3_Interpolation(b *testing.B) {
	m, d, spec0, spec1 := sharedDesign(b)
	printTable("Table 3: interpolation example", func() {
		fmt.Printf("  %-12s %-16s %-12s %-14s\n", "Performance", "Required", "Variation", "New target")
		fmt.Printf("  %-12s > %-14.2f %-11.2f%% %-14.3f\n", "Gain (dB)",
			spec0.Bound, d.DeltaPct[0], d.Target[0])
		fmt.Printf("  %-12s > %-14.2f %-11.2f%% %-14.3f\n", "PM (deg)",
			spec1.Bound, d.DeltaPct[1], d.Target[1])
		lo, hi := yield.Range(d.Target[0], d.DeltaPct[0])
		fmt.Printf("  gain at target spans [%.3f, %.3f] dB over process extremes\n", lo, hi)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.DesignFor(spec0, spec1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- §4.4: Verilog-A code generation -----------------------------------

func BenchmarkVerilogACodegen(b *testing.B) {
	m := sharedFlow(b).Model
	printTable("§4.4: generated Verilog-A module (head)", func() {
		va := behave.GenerateVerilogA(m, behave.VAOptions{})
		for i, line := range splitLines(va) {
			if i > 24 {
				fmt.Println("    ...")
				break
			}
			fmt.Println("   ", line)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if va := behave.GenerateVerilogA(m, behave.VAOptions{}); len(va) == 0 {
			b.Fatal("empty module")
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// ---- Table 4: behavioural vs transistor comparison ---------------------

func BenchmarkTable4_ModelVsTransistor(b *testing.B) {
	_, d, _, _ := sharedDesign(b)
	prob := core.NewOTAProblem()
	params, err := prob.ParamsFromTableValues(d.Params)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ota.DefaultConfig()
	perf, err := cfg.Evaluate(params, nil)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Table 4: performance comparison", func() {
		gErr := 100 * math.Abs(perf.GainDB-d.Target[0]) / perf.GainDB
		pErr := 100 * math.Abs(perf.PMDeg-d.FrontPerf[1]) / perf.PMDeg
		fmt.Printf("  %-14s %-12s %-12s %-8s\n", "Function", "Transistor", "Model", "%error")
		fmt.Printf("  %-14s %-12.2f %-12.2f %-8.2f\n", "Gain (dB)", perf.GainDB, d.Target[0], gErr)
		fmt.Printf("  %-14s %-12.2f %-12.2f %-8.2f\n", "Phase margin", perf.PMDeg, d.FrontPerf[1], pErr)
	})
	// Kernel: the transistor-level verification simulation.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Evaluate(params, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 8: open-loop gain comparison ----------------------------------

func BenchmarkFig8_OpenLoopGain(b *testing.B) {
	_, d, _, _ := sharedDesign(b)
	prob := core.NewOTAProblem()
	params, err := prob.ParamsFromTableValues(d.Params)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ota.DefaultConfig()
	perf, err := cfg.Evaluate(params, nil)
	if err != nil {
		b.Fatal(err)
	}
	freqs, tf, err := cfg.Response(params, nil, 6)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Fig 8: open-loop gain, transistor vs Verilog-A model", func() {
		a0 := math.Pow(10, perf.GainDB/20)
		fdom := perf.UnityHz / a0
		fmt.Printf("  %-12s %-14s %-14s\n", "freq_hz", "transistor_db", "behavioural_db")
		for i := 0; i < len(freqs); i += 4 {
			beh := perf.GainDB - 10*math.Log10(1+(freqs[i]/fdom)*(freqs[i]/fdom))
			fmt.Printf("  %-12.4g %-14.2f %-14.2f\n",
				freqs[i], measure.GainDB(tf[i]), beh)
		}
		fmt.Println("  (divergence at high frequency = parasitic poles absent from the model,")
		fmt.Println("   exactly the paper's Fig 8 observation)")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cfg.Response(params, nil, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 5: design parameter summary ----------------------------------

func BenchmarkTable5_FlowSummary(b *testing.B) {
	res := sharedFlow(b)
	bud := budget()
	printTable("Table 5: design parameter summary", func() {
		fmt.Printf("  No. Generations:    %d (paper: 100)\n", bud.gen)
		fmt.Printf("  Evaluation samples: %d (paper: 10,000)\n", res.Evaluations)
		fmt.Printf("  Pareto points:      %d (paper: 1022)\n", len(res.FrontIdx))
		fmt.Printf("  MC simulations:     %d (paper: 1022 x 200)\n", res.MCSimulations)
		fmt.Printf("  CPU time:           %.1fs total — MOO %.1fs, MC %.1fs, tables %.3fs\n",
			flowDur.Seconds(), res.Timing.MOO.Seconds(),
			res.Timing.MC.Seconds(), res.Timing.Tables.Seconds())
		fmt.Printf("  (paper: 4 h on a 1.2 GHz UltraSparc 3 for the MOO stage)\n")
	})
	// Kernel: one tiny flow (the whole pipeline at minimum budget).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.RunFlow(context.Background(), core.FlowConfig{
			Problem:     core.NewOTAProblem(),
			Proc:        process.C35(),
			PopSize:     16,
			Generations: 8,
			MCSamples:   10,
			Seed:        int64(i + 2),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 9/10: filter topology and specification -------------------------

func BenchmarkFig10_FilterSpec(b *testing.B) {
	spec := filter.DefaultSpec()
	gm, ro := filterGmRo(b)
	printTable("Fig 9/10: filter topology and anti-aliasing specification", func() {
		fmt.Println("  topology: two-OTA gm-C biquad, C1 (n1-gnd), C2 (out-gnd), C3 (n1-out)")
		fmt.Printf("  passband: flat within ±%.1f dB to %.3g Hz\n", spec.RippleDB, spec.PassbandEdge)
		fmt.Printf("  stopband: >= %.0f dB attenuation at %.3g Hz\n", spec.StopbandAttenDB, spec.StopbandEdge)
		fmt.Printf("  DC gain: >= %.1f dB\n", spec.MinDCGainDB)
		fmt.Printf("  OTA behavioural parameters: gm = %.4g S, ro = %.4g ohm\n", gm, ro)
	})
	caps := filter.Caps{C1: 50e-12, C2: 25e-12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := filter.BuildBehavioural(caps, gm, ro)
		if _, err := filter.Measure(n, spec); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	gmOnce     sync.Once
	gmVal      float64
	roVal      float64
	gmErr      error
	otaForFilt ota.Params
)

func filterGmRo(b *testing.B) (float64, float64) {
	b.Helper()
	gmOnce.Do(func() {
		cfg := ota.DefaultConfig()
		otaForFilt = ota.NominalParams()
		perf, err := cfg.Evaluate(otaForFilt, nil)
		if err != nil {
			gmErr = err
			return
		}
		gmVal, roVal = behave.FromPerf(perf, cfg.CLoad)
	})
	if gmErr != nil {
		b.Fatal(gmErr)
	}
	return gmVal, roVal
}

// ---- §5: filter optimisation and yield ------------------------------------

var (
	filtOnce sync.Once
	filtOpt  *filter.OptimizeResult
	filtYr   *filter.YieldResult
	filtErr  error
)

func sharedFilterDesign(b *testing.B) (*filter.OptimizeResult, *filter.YieldResult) {
	b.Helper()
	gm, ro := filterGmRo(b)
	filtOnce.Do(func() {
		prob := &filter.Problem{Spec: filter.DefaultSpec(), Space: filter.DefaultCapSpace(), GM: gm, Ro: ro}
		filtOpt, filtErr = filter.Optimize(context.Background(), prob,
			filter.OptimizeOptions{PopSize: 30, Generations: 40, Seed: 1}) // paper's 30 x 40
		if filtErr != nil {
			return
		}
		filtYr, filtErr = filter.VerifyYield(context.Background(), filtOpt.Caps, ota.DefaultConfig(), otaForFilt,
			filter.DefaultSpec(), process.C35(), budget().filterMC, 7)
	})
	if filtErr != nil {
		b.Fatal(filtErr)
	}
	return filtOpt, filtYr
}

func BenchmarkSec5_FilterOptimisation(b *testing.B) {
	opt, yr := sharedFilterDesign(b)
	gm, ro := filterGmRo(b)
	printTable("§5: filter optimisation and Monte Carlo yield", func() {
		fmt.Printf("  MOO: 30 individuals x 40 generations = %d behavioural evaluations\n",
			opt.Evaluations)
		fmt.Printf("  optimised caps: C1 = %.3g F, C2 = %.3g F, C3 = %.3g F\n",
			opt.Caps.C1, opt.Caps.C2, opt.Caps.C3)
		fmt.Printf("  behavioural response: DC %.2f dB, dev %.3f dB, atten %.2f dB\n",
			opt.Response.DCGainDB, opt.Response.PassbandDevDB, opt.Response.StopbandAttenDB)
		fmt.Printf("  transistor-level MC yield (%d samples): %.1f%% (paper: 100%% at 500 samples)\n",
			yr.Samples, 100*yr.Yield)
	})
	prob := &filter.Problem{Spec: filter.DefaultSpec(), Space: filter.DefaultCapSpace(), GM: gm, Ro: ro}
	genes := []float64{0.5, 0.25, 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Evaluate(genes); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 11: filter response ----------------------------------------------

func BenchmarkFig11_FilterResponse(b *testing.B) {
	opt, _ := sharedFilterDesign(b)
	cfg := ota.DefaultConfig()
	nt := filter.BuildTransistor(opt.Caps, cfg, otaForFilt, nil)
	rt, err := filter.Measure(nt, filter.DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	printTable("Fig 11: filter transistor-level typical response", func() {
		fmt.Printf("  DC %.2f dB, passband dev %.3f dB, stopband atten %.2f dB, f3dB %.3g Hz\n",
			rt.DCGainDB, rt.PassbandDevDB, rt.StopbandAttenDB, rt.F3dB)
		fmt.Printf("  %-12s %-10s\n", "freq_hz", "gain_db")
		for i := 0; i < len(rt.Freqs); i += 6 {
			fmt.Printf("  %-12.4g %-10.3f\n", rt.Freqs[i], measure.GainDB(rt.TF[i]))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := filter.BuildTransistor(opt.Caps, cfg, otaForFilt, nil)
		if _, err := filter.Measure(n, filter.DefaultSpec()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- headline claim: behavioural model speed-up ----------------------------

func BenchmarkSpeedup_ModelVsTransistor(b *testing.B) {
	opt, _ := sharedFilterDesign(b)
	gm, ro := filterGmRo(b)
	cfg := ota.DefaultConfig()
	spec := filter.DefaultSpec()
	printTable("headline: behavioural vs transistor filter evaluation", func() {
		const n = 50
		t0 := time.Now()
		for i := 0; i < n; i++ {
			nb := filter.BuildBehavioural(opt.Caps, gm, ro)
			if _, err := filter.Measure(nb, spec); err != nil {
				fmt.Println("  error:", err)
				return
			}
		}
		tb := time.Since(t0)
		t0 = time.Now()
		for i := 0; i < n; i++ {
			nt := filter.BuildTransistor(opt.Caps, cfg, otaForFilt, nil)
			if _, err := filter.Measure(nt, spec); err != nil {
				fmt.Println("  error:", err)
				return
			}
		}
		tt := time.Since(t0)
		fmt.Printf("  behavioural filter eval: %8.3f ms\n", tb.Seconds()*1000/n)
		fmt.Printf("  transistor filter eval:  %8.3f ms\n", tt.Seconds()*1000/n)
		fmt.Printf("  speed-up: %.1fx (the paper's 'fraction of the time' claim)\n",
			tt.Seconds()/tb.Seconds())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb := filter.BuildBehavioural(opt.Caps, gm, ro)
		if _, err := filter.Measure(nb, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation: interpolation degree -----------------------------------------

func BenchmarkAblation_InterpolationDegree(b *testing.B) {
	res := sharedFlow(b)
	pts := res.Model.Points
	// Fit each degree to the front and measure leave-one-out error of
	// the gain→PM table (the paper argues cubic maximises accuracy).
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.Perf[0], p.Perf[1]
	}
	looErr := func(deg spline.Degree) float64 {
		var sum float64
		var n int
		for i := 1; i < len(xs)-1; i++ {
			trX := append(append([]float64(nil), xs[:i]...), xs[i+1:]...)
			trY := append(append([]float64(nil), ys[:i]...), ys[i+1:]...)
			m, err := table.NewModel1D(trX, trY, table.Control{Degree: deg, Extrap: table.ExtrapClamp})
			if err != nil {
				continue
			}
			v, err := m.Eval(xs[i])
			if err != nil {
				continue
			}
			sum += (v - ys[i]) * (v - ys[i])
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		return math.Sqrt(sum / float64(n))
	}
	printTable("ablation: interpolation degree (leave-one-out RMS error, gain→PM)", func() {
		for _, d := range []struct {
			name string
			deg  spline.Degree
		}{
			{"linear (1)", spline.DegreeLinear},
			{"quadratic (2)", spline.DegreeQuadratic},
			{"cubic (3, paper)", spline.DegreeCubic},
			{"monotone cubic (default)", spline.DegreeMonotoneCubic},
		} {
			fmt.Printf("  %-26s %.5g deg RMS\n", d.name, looErr(d.deg))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.NewModel1D(xs, ys,
			table.Control{Degree: spline.DegreeCubic, Extrap: table.ExtrapError}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation: WBGA vs fixed weights ------------------------------------------

// fixedWeightProblem evaluates the OTA with the weights frozen, the
// classical weighted-sum the paper's §3.2 argues against.
type fixedWeightProblem struct {
	inner *core.OTAProblem
}

func (p fixedWeightProblem) NumParams() int     { return 8 }
func (p fixedWeightProblem) NumObjectives() int { return 2 }
func (p fixedWeightProblem) Maximize() []bool   { return []bool{true, true} }
func (p fixedWeightProblem) Evaluate(g []float64) ([]float64, error) {
	return p.inner.Evaluate(g, nil)
}

func BenchmarkAblation_WBGAvsFixedWeights(b *testing.B) {
	printTable("ablation: WBGA (evolved weights) vs fixed-weight GA", func() {
		prob := core.NewOTAProblem()
		pop, gen := 30, 20
		// WBGA: weights in the GA string.
		wres, err := wbga.Run(context.Background(), wbgaShim{prob}, wbga.Options{PopSize: pop, Generations: gen, Seed: 5})
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		// Fixed weights: same budget, weight genes pinned by using a
		// 0-weight-gene problem (equal weights throughout).
		fres, err := wbga.Run(context.Background(), fixedShim{prob}, wbga.Options{PopSize: pop, Generations: gen, Seed: 5})
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		wSpread := frontSpread(wres)
		fSpread := frontSpread(fres)
		fmt.Printf("  %-24s front=%4d  gain span %.2f dB  pm span %.2f deg\n",
			"WBGA (evolved weights)", len(wres.FrontIdx), wSpread[0], wSpread[1])
		fmt.Printf("  %-24s front=%4d  gain span %.2f dB  pm span %.2f deg\n",
			"fixed equal weights", len(fres.FrontIdx), fSpread[0], fSpread[1])
		fmt.Println("  (the table model needs the whole trade-off curve: a fixed-weight GA")
		fmt.Println("   converges to one compromise point and cannot populate the tables)")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := wbga.NormalizeWeights([]float64{0.2, 0.8}); len(w) != 2 {
			b.Fatal("bad weights")
		}
	}
}

// wbgaShim exposes the OTA problem with evolving weights.
type wbgaShim struct{ p *core.OTAProblem }

func (s wbgaShim) NumParams() int                          { return 8 }
func (s wbgaShim) NumObjectives() int                      { return 2 }
func (s wbgaShim) Maximize() []bool                        { return []bool{true, true} }
func (s wbgaShim) Evaluate(g []float64) ([]float64, error) { return s.p.Evaluate(g, nil) }

// fixedShim reports 2 objectives but collapses the weight genes: the
// wbga engine still evolves them, so to pin the weights it wraps the
// objectives so both receive the same scalar (equal-weight sum),
// making the weight genes irrelevant.
type fixedShim struct{ p *core.OTAProblem }

func (s fixedShim) NumParams() int     { return 8 }
func (s fixedShim) NumObjectives() int { return 2 }
func (s fixedShim) Maximize() []bool   { return []bool{true, true} }
func (s fixedShim) Evaluate(g []float64) ([]float64, error) {
	objs, err := s.p.Evaluate(g, nil)
	if err != nil {
		return nil, err
	}
	// Equal-weight scalarisation applied to both slots: selection
	// pressure is identical for any weight vector, i.e. fixed weights.
	sum := 0.5*objs[0] + 0.5*objs[1]
	return []float64{sum, sum}, nil
}

func frontSpread(r *wbga.Result) [2]float64 {
	var lo0, hi0, lo1, hi1 float64
	lo0, lo1 = math.Inf(1), math.Inf(1)
	hi0, hi1 = math.Inf(-1), math.Inf(-1)
	for _, i := range r.FrontIdx {
		o := r.Evals[i].Objectives
		lo0 = math.Min(lo0, o[0])
		hi0 = math.Max(hi0, o[0])
		lo1 = math.Min(lo1, o[1])
		hi1 = math.Max(hi1, o[1])
	}
	return [2]float64{hi0 - lo0, hi1 - lo1}
}

// ---- ablation: MC sample count -------------------------------------------------

func BenchmarkAblation_MCSampleCount(b *testing.B) {
	printTable("ablation: variation estimate vs MC sample count", func() {
		prob := core.NewOTAProblem()
		genes := make([]float64, 8)
		for j := range genes {
			genes[j] = 0.5
		}
		proc := process.C35()
		ref := deltaEstimate(prob, proc, genes, 800, 1)
		fmt.Printf("  reference dGain (800 samples): %.4f%%\n", ref)
		for _, n := range []int{25, 50, 100, 200, 400} {
			est := deltaEstimate(prob, proc, genes, n, 2)
			fmt.Printf("  n=%4d: dGain %.4f%% (error vs reference %+.4f)\n", n, est, est-ref)
		}
		fmt.Println("  (the paper picks 200 samples per Pareto point)")
	})
	prob := core.NewOTAProblem()
	proc := process.C35()
	genes := make([]float64, 8)
	for j := range genes {
		genes[j] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Evaluate(genes, proc.NewSample(3, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func deltaEstimate(prob *core.OTAProblem, proc *process.Process, genes []float64, n int, seed int64) float64 {
	var gains []float64
	for i := 0; i < n; i++ {
		objs, err := prob.Evaluate(genes, proc.NewSample(seed, i))
		if err != nil {
			continue
		}
		gains = append(gains, objs[0])
	}
	mean := 0.0
	for _, g := range gains {
		mean += g
	}
	mean /= float64(len(gains))
	ss := 0.0
	for _, g := range gains {
		ss += (g - mean) * (g - mean)
	}
	sigma := math.Sqrt(ss / float64(len(gains)-1))
	return 100 * 3 * sigma / mean
}

// ---- §4.4: Monte Carlo yield verification of the selected design --------------

func BenchmarkSec44_YieldVerification(b *testing.B) {
	m, d, spec0, spec1 := sharedDesign(b)
	_ = m
	prob := core.NewOTAProblem()
	genes, err := prob.GenesForDesign(d)
	if err != nil {
		b.Fatal(err)
	}
	samples := 100
	if paperScale() {
		samples = 500 // the paper's verification budget
	}
	ver, err := core.VerifyDesignYield(context.Background(), prob, process.C35(), genes, spec0, spec1, samples, 21)
	if err != nil {
		b.Fatal(err)
	}
	printTable("§4.4: MC yield verification of the yield-targeted design", func() {
		fmt.Printf("  specs: %s, %s\n", spec0, spec1)
		fmt.Printf("  design simulated with %d MC samples -> yield %.1f%% (paper: 100%% at 500)\n",
			ver.Samples, 100*ver.Yield)
		for _, st := range ver.Stats {
			fmt.Printf("  %-8s mean %.3f sigma %.4f (delta %.2f%%)\n",
				st.Name, st.Mean, st.Sigma, st.DeltaPct)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Evaluate(genes, process.C35().NewSample(5, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- variance reduction: naive vs importance-sampled yield MC ------------------

// BenchmarkMCNaiveVsIS times a variance-reduced yield estimate of the
// OTA at a 99.9%-yield gain spec — a bound naive 200-sample MC cannot
// resolve (it sees 0.2 failures on average). Each sub-benchmark reports:
//
//	naive_evals_ratio — circuit evaluations a naive binomial estimator
//	  would need for the same yield-estimate variance, divided by the
//	  evaluations the strategy actually simulated (≥ 1 means the
//	  strategy wins; the headline claim is ≥ 10)
//	ess       — effective sample size of the weighted estimate
//	yield_pct — the estimated yield
func BenchmarkMCNaiveVsIS(b *testing.B) {
	prob := core.NewOTAProblem()
	proc := process.C35()
	genes := make([]float64, 8)
	for j := range genes {
		genes[j] = 0.5
	}
	eval := func(s *process.Sample) ([]float64, error) { return prob.Evaluate(genes, s) }

	// Pilot: establish the gain distribution at the design and aim the
	// proposal. The spec bound sits 3.09σ below the mean (Φ ≈ 0.999);
	// the mean shift points along the regression of gain on the global
	// variation, i.e. toward the failure region.
	const pilotN = 256
	pilot, err := montecarlo.Run(context.Background(), montecarlo.Options{
		Proc: proc, Samples: pilotN, Seed: 31, Metrics: []string{"gain_db", "pm_deg"},
	}, eval)
	if err != nil {
		b.Fatal(err)
	}
	const z999 = 3.0902323061678132 // Φ(z) = 0.999
	bound := pilot.Stats[0].Mean - z999*pilot.Stats[0].Sigma
	prop := pilotProposal(proc, pilot, z999)

	printTable("variance reduction: naive vs importance-sampled yield MC", func() {
		naive, nerr := montecarlo.Run(context.Background(), montecarlo.Options{
			Proc: proc, Samples: 200, Seed: 57, Metrics: []string{"gain_db", "pm_deg"},
		}, eval)
		if nerr != nil {
			fmt.Println("  error:", nerr)
			return
		}
		fails := 0
		for _, row := range naive.Samples {
			if row != nil && row[0] < bound {
				fails++
			}
		}
		fmt.Printf("  spec: gain >= %.3f dB (pilot mean - 3.09 sigma, true yield ~99.9%%)\n", bound)
		fmt.Printf("  naive 200 samples: %d failures seen -> yield %.2f%% (cannot resolve 0.1%%)\n",
			fails, 100*(1-float64(fails)/200))
	})

	const isSamples = 800
	for _, strategy := range []montecarlo.Strategy{montecarlo.StrategyIS, montecarlo.StrategyISSurrogate} {
		b.Run(strategy.String(), func(b *testing.B) {
			var ratio, ess, yhat float64
			for i := 0; i < b.N; i++ {
				v := montecarlo.VarianceOptions{
					Strategy: strategy,
					Proposal: prop,
					Specs:    []montecarlo.SpecBound{{Col: 0, Bound: bound}},
				}
				mc, rerr := montecarlo.RunVariance(context.Background(), montecarlo.Options{
					Proc: proc, Samples: isSamples, Seed: int64(37 + i),
					Metrics: []string{"gain_db", "pm_deg"},
				}, v, func() montecarlo.Evaluator { return eval })
				if rerr != nil {
					b.Fatal(rerr)
				}
				y, varIS := weightedYieldVariance(mc.Samples, mc.Weights, bound)
				if varIS > 0 {
					yhat, ess = y, mc.ESS
					// Naive samples for the same variance: p(1-p)/Var, per
					// circuit evaluation the strategy actually spent.
					ratio = y * (1 - y) / varIS / float64(mc.FullEvals)
				}
			}
			b.ReportMetric(ratio, "naive_evals_ratio")
			b.ReportMetric(ess, "ess")
			b.ReportMetric(100*yhat, "yield_pct")
		})
	}
}

// pilotProposal aims a defensive mean-shifted mixture at the low-gain
// failure region. The direction is the regression of gain on the four
// global variation coordinates (negated, i.e. downhill); the magnitude
// places the proposal centre on the failure boundary: the bound sits z
// total-sigmas below the mean, but moving one sigma-unit along the unit
// regression direction only moves gain by the explained fraction of its
// sigma, so the boundary lies at z/rho sigma-units (rho² = variance
// explained by the globals). A wide centred component keeps the weights
// bounded where the linear model is wrong.
func pilotProposal(proc *process.Process, pilot *montecarlo.Result, z float64) *process.Proposal {
	var beta [4]float64
	var mg float64
	var n int
	for _, row := range pilot.Samples {
		if row == nil {
			continue
		}
		mg += row[0]
		n++
	}
	if n == 0 {
		return process.DefaultISProposal()
	}
	mg /= float64(n)
	for i, row := range pilot.Samples {
		if row == nil {
			continue
		}
		u := proc.NewSample(31, i).GlobalSigmaUnits()
		for k := range beta {
			// E[u]=0 and Var[u_k]=1, so this accumulates cov(u_k, gain),
			// which is the regression slope per sigma-unit.
			beta[k] += u[k] * (row[0] - mg) / float64(n)
		}
	}
	explained := 0.0
	for _, bk := range beta {
		explained += bk * bk
	}
	explained = math.Sqrt(explained) // gain sigma per sigma-unit along the direction
	if explained == 0 || pilot.Stats[0].Sigma == 0 {
		return process.DefaultISProposal()
	}
	shift := z * pilot.Stats[0].Sigma / explained
	if shift > 6 { // a pilot fluke must not launch the proposal into nowhere
		shift = 6
	}
	var mean [4]float64
	for k := range mean {
		mean[k] = -shift * beta[k] / explained
	}
	return &process.Proposal{Components: []process.ProposalComponent{
		{Weight: 0.3, Scale: 1.5},
		{Weight: 0.7, Mean: mean, Scale: 1},
	}}
}

// weightedYieldVariance is the self-normalised IS yield estimate of the
// gain spec and its delta-method variance; nil weights reduce it to the
// naive estimator with binomial variance.
func weightedYieldVariance(samples [][]float64, weights []float64, bound float64) (float64, float64) {
	var sw, swPass float64
	for i, row := range samples {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		sw += w
		if row != nil && row[0] >= bound {
			swPass += w
		}
	}
	if sw == 0 {
		return 0, 0
	}
	y := swPass / sw
	var v float64
	for i, row := range samples {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		pass := 0.0
		if row != nil && row[0] >= bound {
			pass = 1
		}
		v += w * w * (pass - y) * (pass - y)
	}
	return y, v / (sw * sw)
}

// ---- extension: two-pole behavioural model (paper's "higher order effects") ---

func BenchmarkExtension_TwoPoleModel(b *testing.B) {
	cfg := ota.DefaultConfig()
	params := ota.NominalParams()
	perf, err := cfg.Evaluate(params, nil)
	if err != nil {
		b.Fatal(err)
	}
	freqs, tf, err := cfg.Response(params, nil, 8)
	if err != nil {
		b.Fatal(err)
	}
	_, _, f2 := behave.FitTwoPole(perf, cfg.CLoad)
	printTable("extension: one-pole vs two-pole behavioural model (Fig 8 fit)", func() {
		a0 := perf.GainDB
		fdom := perf.UnityHz / math.Pow(10, a0/20)
		fmt.Printf("  fitted second pole f2 = %.4g Hz (PM %.2f deg at fu %.4g Hz)\n",
			f2, perf.PMDeg, perf.UnityHz)
		fmt.Printf("  %-12s %-12s %-12s %-12s\n", "freq_hz", "transistor", "one-pole", "two-pole")
		var e1, e2 float64
		n := 0
		for i := 0; i < len(freqs); i++ {
			f := freqs[i]
			meas := measure.GainDB(tf[i])
			one := a0 - 10*math.Log10(1+(f/fdom)*(f/fdom))
			two := one
			if f2 > 0 {
				two -= 10 * math.Log10(1+(f/f2)*(f/f2))
			}
			if f >= perf.UnityHz {
				e1 += math.Abs(one - meas)
				e2 += math.Abs(two - meas)
				n++
			}
			if i%5 == 0 {
				fmt.Printf("  %-12.4g %-12.2f %-12.2f %-12.2f\n", f, meas, one, two)
			}
		}
		if n > 0 {
			fmt.Printf("  mean |error| beyond fu: one-pole %.2f dB, two-pole %.2f dB\n",
				e1/float64(n), e2/float64(n))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, f := behave.FitTwoPole(perf, cfg.CLoad); f < 0 {
			b.Fatal("bad fit")
		}
	}
}

// ---- extension: process-corner analysis of the selected design ----------------

func BenchmarkExtension_CornerAnalysis(b *testing.B) {
	_, d, _, _ := sharedDesign(b)
	prob := core.NewOTAProblem()
	genes, err := prob.GenesForDesign(d)
	if err != nil {
		b.Fatal(err)
	}
	proc := process.C35()
	results := core.CornerAnalysis(prob, proc, genes, 3)
	printTable("extension: selected design across process corners (3 sigma)", func() {
		fmt.Printf("  %-8s %-10s %-10s\n", "corner", "gain_db", "pm_deg")
		for _, r := range results {
			if r.Err != nil {
				fmt.Printf("  %-8s failed: %v\n", r.Corner, r.Err)
				continue
			}
			fmt.Printf("  %-8s %-10.2f %-10.2f\n", r.Corner, r.Objectives[0], r.Objectives[1])
		}
		fmt.Printf("  guard-banded targets were gain %.2f dB, pm %.2f deg\n",
			d.Target[0], d.Target[1])
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.CornerAnalysis(prob, proc, genes, 3)
		if len(r) != 5 {
			b.Fatal("corner analysis incomplete")
		}
	}
}
