* First-order RC low-pass, corner at ~159 kHz
* Run:  go run ./cmd/asim -ac 1k:100meg:10 -probe out netlists/rc_lowpass.sp
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
.end
