# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race test-store e2e-store vet lint check bench bench-paper bench-perf loadtest capacity profile soak-smoke examples cover cluster cluster-down cluster-smoke cluster-bench

build:
	go build ./...

vet:
	go vet ./...

# go vet + staticcheck (when installed).
lint:
	scripts/lint.sh

test:
	go test ./...

# Concurrency-sensitive packages (worker pools, genome cache, HTTP
# server) under the race detector.
test-race:
	go test -race ./internal/wbga/... ./internal/montecarlo/... ./internal/analysis/... ./internal/core/... ./internal/server/...

# The artefact store (memory and disk backends) under the race
# detector: concurrent Put/Get/Delete and the registry/job paths that
# sit on top of it.
test-store:
	go test -race -count=1 ./internal/store/... ./internal/server/...

# Durability through the real binary: boot `ayd -store disk`, install a
# model over the tenant API, kill, restart on the same directory,
# require byte-identical answers.
e2e-store:
	scripts/e2e-store.sh

# Everything CI should gate on.
check: lint test test-race

# Solver/engine micro-benchmarks with baseline comparison (fails on >5%
# ns/op regression when benchmarks/baseline.txt exists).
bench-perf:
	scripts/bench.sh

# Open-loop load test of the yield-query serving path (in-process server
# unless URL is set); writes benchmarks/BENCH_serve.json and, when no
# URL is given, an over-the-wire run to benchmarks/BENCH_serve_net.json.
loadtest:
	scripts/loadtest.sh

# Capacity sweep over real TCP: ramp the offered rate until the p99
# SLO breaks, bisect the knee, write the qps-vs-latency curves —
# batched optimizer-loop requests (benchmarks/BENCH_capacity.json) and
# one-query-per-request (benchmarks/BENCH_capacity_single.json). See
# scripts/capacity.sh for knobs.
capacity:
	scripts/capacity.sh
	BATCH=1 OUT=benchmarks/BENCH_capacity_single.json scripts/capacity.sh

# One profiled load run: CPU and heap profiles of the load generator
# (which, in the default in-process mode, include the full serving
# path). Inspect with `go tool pprof cpu.prof`.
profile:
	go run ./cmd/aydload -qps $${QPS:-8000} -duration $${DURATION:-5s} \
	    -cpuprofile cpu.prof -memprofile mem.prof -o /dev/null
	@echo "wrote cpu.prof and mem.prof"

# Short soak of the real binary under -race: spawn ayd, hold mixed
# query/flow load, fail on goroutine/RSS growth or p99 drift; writes
# benchmarks/SOAK.json.
soak-smoke:
	scripts/soak-smoke.sh

# Local multi-replica cluster on a shared store: REPLICAS (default 2)
# ayd processes with lease coordination and Monte Carlo shard dispatch.
# Base URLs land in .cluster/urls; `make cluster-down` tears it down.
cluster:
	scripts/cluster.sh up $${REPLICAS:-2}

cluster-down:
	scripts/cluster.sh down

# Crash-takeover e2e through the real binary: two replicas, one flow,
# SIGKILL the owner mid-run, require the survivor to adopt and finish.
cluster-smoke:
	scripts/cluster-smoke.sh

# Cluster scaling benchmark: capacity knee of 1/2/4 CPU-sliced replicas
# measured the same way; writes benchmarks/BENCH_cluster.json.
cluster-bench:
	scripts/cluster_bench.sh

# Regenerate every paper table/figure at scaled-down budgets (~1 min).
bench:
	go test -run XXX -bench . -benchtime 5x .

# Regenerate at the paper's exact budgets (10,000 MOO evaluations,
# 200 MC samples per Pareto point, 500-sample filter MC).
bench-paper:
	ANALOGYIELD_PAPER=1 go test -run XXX -bench . -benchtime 2x -timeout 60m .

examples:
	go run ./examples/quickstart
	go run ./examples/filterdesign
	go run ./examples/slewbuffer
	go run ./examples/yieldclient

cover:
	go test -cover ./...
