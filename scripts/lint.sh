#!/bin/sh
# Static checks gated by `make check`:
#
#   1. go vet across the module.
#   2. staticcheck, when installed (the CI image has it; it is optional
#      locally so a plain Go toolchain can still run `make check`).
#   3. A deprecation gate: FlowConfig.OnProgress is kept one release for
#      external callers, but in-repo code must use the typed Observer
#      API. Only its definition, the progressShim adapter, and tests
#      (which pin the compat behaviour) may mention it.
set -eu
cd "$(dirname "$0")/.."

go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "lint: staticcheck not installed, skipping (go vet only)"
fi

# The deprecated OnProgress callback must not spread inside the repo.
offenders=$(grep -rn --include='*.go' 'OnProgress' cmd examples internal \
    | grep -v '_test\.go:' \
    | grep -v '^internal/core/flow\.go:' \
    | grep -v '^internal/core/events\.go:' \
    || true)
if [ -n "$offenders" ]; then
    echo "lint: deprecated FlowConfig.OnProgress used in-repo; migrate to core.Observer:" >&2
    echo "$offenders" >&2
    exit 1
fi

echo "lint: ok"
