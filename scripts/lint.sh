#!/bin/sh
# Static checks gated by `make check`:
#
#   1. go vet across the module.
#   2. staticcheck, when installed (the CI image has it; it is optional
#      locally so a plain Go toolchain can still run `make check`).
set -eu
cd "$(dirname "$0")/.."

go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "lint: staticcheck not installed, skipping (go vet only)"
fi

echo "lint: ok"
