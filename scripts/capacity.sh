#!/usr/bin/env bash
# Capacity sweep of the yield-query serving path: ramp the offered load
# until the p99 SLO or the error budget breaks, and record the full
# qps-vs-latency curve plus the detected knee. The measurement is
# over-the-wire — aydload spawns a separate ayd serving process and
# drives it across real TCP — so the numbers compare directly with
# benchmarks/BENCH_serve_net.json.
#
#   scripts/capacity.sh                          # full sweep -> benchmarks/BENCH_capacity.json
#   SWEEP_START=2000 SWEEP_MAX=4000 STEP=2s REFINE=0 RETRIES=0 \
#       OUT=/tmp/cap.json scripts/capacity.sh    # CI smoke shape
#   LISTENERS=4 scripts/capacity.sh              # SO_REUSEPORT shard matrix point
#
# Knobs (env):
#   SWEEP_START  first rung's target qps           (default 9000 batched, 2000 single)
#   SWEEP_FACTOR geometric ramp factor             (default 1.5)
#   SWEEP_MAX    stop past this target qps         (default 200000)
#   REFINE       knee bisection steps              (default 2)
#   RETRIES      re-runs of a failing rung         (default 4)
#   STEP         measured seconds per rung         (default 2s)
#   WARMUP       unrecorded warm-up per rung       (default 1s)
#   SLO_P99      tail-latency budget               (default 2ms)
#   INFLIGHT     workers = connections             (default 8 batched, 12 single)
#   BATCH        queries per request               (default 8)
#   LISTENERS    SO_REUSEPORT shards for the child (default 1)
#   GOGC         GC percent for both processes     (default off)
#   GOMEMLIMIT   soft heap cap when GOGC=off       (default 256MiB)
#   OUT          report path                       (default benchmarks/BENCH_capacity.json)
#
# BATCH defaults to the optimizer-loop request shape (8 queries per
# POST, the regime the paper's behavioural models exist for): sweep
# rungs and the knee then count queries/s while the SLO still bounds
# per-request p99. BATCH=1 OUT=benchmarks/BENCH_capacity_single.json
# measures the one-query-per-request curve; `make capacity` records
# both.
#
# GC defaults to the memory-limit-only mode the Go GC guide describes
# (GOGC=off with a GOMEMLIMIT): the serving process's live heap is a
# few MB of resident models, so at GOGC=100 the collector runs every
# ~100ms and on a small-core host its mark phase IS the measured tail —
# switching to GOGC=3000 still left multi-ms p95 spikes that vanish
# with collection deferred to the memory limit. Deployments that care
# about p99 should pin GOGC/GOMEMLIMIT deliberately; the values used
# are recorded in the report.
#
# INFLIGHT defaults low (8-12 workers = as many connections) because each
# worker is an independently paced open-loop arrival stream: more
# workers means more timer wakeups per second competing for CPU, which
# on small-core hosts inflates the very tail being measured. RETRIES
# re-runs a failing rung because shared hosts (VMs, laptops) see
# multi-ms scheduling stalls in bursts; a rung only counts as failed
# once every attempt breaks the SLO, and every attempt is recorded in
# the report's steps array.
# The batched sweep starts inside the warm region rather than at the
# baseline 2000 q/s: at a few hundred requests/s the core sleeps
# between arrivals and every wake pays the host's idle-exit latency
# (multi-ms on shared VMs), so with CO-aware accounting the *lightly*
# loaded rungs show worse p99 than rungs near the knee. The single
# curve keeps the low rungs for continuity with the old baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

BATCH="${BATCH:-8}"
if [ "$BATCH" -gt 1 ]; then
    SWEEP_START="${SWEEP_START:-9000}"
    INFLIGHT="${INFLIGHT:-8}"
else
    SWEEP_START="${SWEEP_START:-2000}"
    INFLIGHT="${INFLIGHT:-12}"
fi
SWEEP_FACTOR="${SWEEP_FACTOR:-1.5}"
SWEEP_MAX="${SWEEP_MAX:-200000}"
REFINE="${REFINE:-2}"
RETRIES="${RETRIES:-4}"
STEP="${STEP:-2s}"
WARMUP="${WARMUP:-1s}"
SLO_P99="${SLO_P99:-2ms}"
LISTENERS="${LISTENERS:-1}"
OUT="${OUT:-benchmarks/BENCH_capacity.json}"
export GOGC="${GOGC:-off}"
export GOMEMLIMIT="${GOMEMLIMIT:-256MiB}"

mkdir -p "$(dirname "$OUT")"

echo "== capacity sweep: start=$SWEEP_START x$SWEEP_FACTOR max=$SWEEP_MAX step=$STEP slo-p99=$SLO_P99 inflight=$INFLIGHT batch=$BATCH listeners=$LISTENERS gogc=$GOGC gomemlimit=$GOMEMLIMIT"
go run ./cmd/aydload -sweep -addr 127.0.0.1:0 \
    -sweep-start "$SWEEP_START" -sweep-factor "$SWEEP_FACTOR" -sweep-max "$SWEEP_MAX" \
    -sweep-refine "$REFINE" -sweep-retries "$RETRIES" \
    -duration "$STEP" -warmup "$WARMUP" -slo-p99 "$SLO_P99" \
    -inflight "$INFLIGHT" -batch "$BATCH" -listeners "$LISTENERS" \
    -o "$OUT"
echo "== wrote $OUT"
