#!/usr/bin/env bash
# Cluster scaling benchmark: measure the yield-query capacity knee of
# 1, 2 and 4 ayd replicas the same way on the same host and record how
# the aggregate knee scales with the replica count
# (benchmarks/BENCH_cluster.json).
#
#   scripts/cluster_bench.sh
#   COUNTS="1 2" STEP=2s OUT=/tmp/c.json scripts/cluster_bench.sh   # CI smoke shape
#
# Methodology — honest scaling on a small host:
#
# The interesting question is "does adding a replica add capacity", and
# answering it on a single-core CI box requires holding *per-replica*
# resources constant while N varies. Each replica is therefore pinned
# to its own cgroup CPU slice (CPU_QUOTA_US per CPU_PERIOD_US, default
# 0.2 CPU per replica) — the model of a fleet of identical small nodes.
# The period is kept short (20ms) so a replica that exhausts its slice
# stalls at most 16ms instead of the cgroup-default 80ms, keeping
# throttle pauses inside the latency SLO's resolution.
#
# The load generator runs under SCHED_FIFO (chrt) when available: it
# competes with the replicas for the same core, and if its open-loop
# pacing is descheduled the backlog is charged to the server's measured
# latency (coordination-omission-aware accounting), which reads as a
# false early knee exactly in the multi-replica runs where the
# generator works hardest. RT priority keeps the generator's schedule
# crisp; the replicas' CPU time is bounded by their quotas either way.
#
# The 4-replica rung is reported but CPU-bound by the host when
# 4 × quota + generator exceeds the machine: on a 1-core box the
# 4-replica knee under-reports true 4-node scaling. The 1→2 ratio is
# the headline number.
#
# Knobs (env):
#   COUNTS        replica counts to measure   (default "1 2 4")
#   CPU_QUOTA_US  per-replica CPU quota       (default 4000)
#   CPU_PERIOD_US CFS period                  (default 20000)
#   SWEEP_START   first rung's target qps     (default 2000)
#   SWEEP_FACTOR  geometric ramp factor       (default 1.5)
#   SWEEP_MAX     stop past this target qps   (default 200000)
#   REFINE        knee bisection steps        (default 2)
#   RETRIES       re-runs of a failing rung   (default 2)
#   STEP          measured seconds per rung   (default 3s)
#   WARMUP        unrecorded warm-up per rung (default 1s)
#   SLO_P99       tail-latency budget         (default 25ms)
#   INFLIGHT      workers = connections       (default 8)
#   BATCH         queries per request         (default 16)
#   LEASE_TTL     replica job-lease TTL       (default 2s)
#   OUT           report path                 (default benchmarks/BENCH_cluster.json)
set -euo pipefail

cd "$(dirname "$0")/.."

COUNTS="${COUNTS:-1 2 4}"
CPU_QUOTA_US="${CPU_QUOTA_US:-4000}"
CPU_PERIOD_US="${CPU_PERIOD_US:-20000}"
SWEEP_START="${SWEEP_START:-2000}"
SWEEP_FACTOR="${SWEEP_FACTOR:-1.5}"
SWEEP_MAX="${SWEEP_MAX:-200000}"
REFINE="${REFINE:-2}"
RETRIES="${RETRIES:-2}"
STEP="${STEP:-3s}"
WARMUP="${WARMUP:-1s}"
SLO_P99="${SLO_P99:-25ms}"
INFLIGHT="${INFLIGHT:-8}"
BATCH="${BATCH:-16}"
LEASE_TTL="${LEASE_TTL:-2s}"
OUT="${OUT:-benchmarks/BENCH_cluster.json}"

work="$(mktemp -d)"
state="$work/cluster"
cleanup() {
    STATE_DIR="$state" scripts/cluster.sh down >/dev/null 2>&1 || true
    rm -rf "$work"
}
trap cleanup EXIT

mkdir -p "$(dirname "$OUT")"
go build -o "$work/aydload" ./cmd/aydload

# The generator under SCHED_FIFO when the host allows it (see header).
RT=(chrt -f 50)
"${RT[@]}" true 2>/dev/null || RT=()
[ ${#RT[@]} -eq 0 ] && echo "cluster-bench: chrt unavailable; generator runs at normal priority" >&2

# The same 64-point synthetic front the single-node capacity sweeps
# use, installed through the API of every replica (idempotent: the
# payload is content-addressed).
python3 - > "$work/model.json" <<'EOF'
import json
xs = [i / 63 for i in range(64)]
pts = [{"perf": [45 + 10 * x, 85 - 12 * x],
        "delta_pct": [1.0 + 0.2 * x, 0.5 + 0.1 * x],
        "params": [10 + 50 * x, 10, 10]} for x in xs]
print(json.dumps({"name": "loadtest",
                  "objectives": ["gain_db", "pm_deg"],
                  "params": ["P1", "P2", "P3"],
                  "units": ["um", "um", "um"],
                  "points": pts}))
EOF

for n in $COUNTS; do
    echo "== cluster-bench: $n replica(s), ${CPU_QUOTA_US}/${CPU_PERIOD_US}µs CPU each"
    rm -rf "$state"
    CPU_QUOTA_US="$CPU_QUOTA_US" CPU_PERIOD_US="$CPU_PERIOD_US" \
        STATE_DIR="$state" STORE_DIR="$state/store" LEASE_TTL="$LEASE_TTL" \
        scripts/cluster.sh up "$n"
    urls="$(cat "$state/urls")"
    for u in ${urls//,/ }; do
        curl -fsS -X POST -H 'Content-Type: application/json' \
            -d @"$work/model.json" "$u/v1/models" >/dev/null
    done
    "${RT[@]}" "$work/aydload" -sweep -url "$urls" \
        -sweep-start "$SWEEP_START" -sweep-factor "$SWEEP_FACTOR" -sweep-max "$SWEEP_MAX" \
        -sweep-refine "$REFINE" -sweep-retries "$RETRIES" \
        -duration "$STEP" -warmup "$WARMUP" -slo-p99 "$SLO_P99" \
        -inflight "$INFLIGHT" -batch "$BATCH" \
        -o "$work/cap_$n.json"
    STATE_DIR="$state" scripts/cluster.sh down
done

created="$(date -u +%Y-%m-%dT%H:%M:%SZ)" nproc="$(nproc)" \
COUNTS="$COUNTS" CPU_QUOTA_US="$CPU_QUOTA_US" CPU_PERIOD_US="$CPU_PERIOD_US" \
WORK="$work" OUT="$OUT" SLO_P99="$SLO_P99" \
python3 - <<'EOF'
import json, os

counts = [int(n) for n in os.environ["COUNTS"].split()]
work, out = os.environ["WORK"], os.environ["OUT"]
sweeps = {n: json.load(open(f"{work}/cap_{n}.json")) for n in counts}
base = sweeps[counts[0]]["knee_qps"]

report = {
    "created_utc": os.environ["created"],
    "host": {"cpus": int(os.environ["nproc"])},
    "config": {
        "cpu_quota_us": int(os.environ["CPU_QUOTA_US"]),
        "cpu_period_us": int(os.environ["CPU_PERIOD_US"]),
        "slo_p99": os.environ["SLO_P99"],
        "methodology": (
            "Each replica pinned to its own cgroup CPU slice (quota/period CPUs) so "
            "per-replica resources stay constant while the replica count varies; the "
            "load generator stripes open-loop workers round-robin across the replicas "
            "and runs at real-time priority so its pacing is not charged to server "
            "latency. The knee is the highest aggregate rate inside the p99 SLO and "
            "error budget. Rungs where total quota plus the generator exceed the host's "
            "cores under-report true scaling (see the 4-replica point on 1-CPU hosts)."
        ),
    },
    "replicas": [
        {
            "n": n,
            "knee_qps": sweeps[n]["knee_qps"],
            "knee_target_qps": sweeps[n]["knee_target_qps"],
            "knee_p99_ms": (sweeps[n].get("knee") or {}).get("latency", {}).get("p99_ms"),
            "scaling_vs_1": round(sweeps[n]["knee_qps"] / base, 3) if base else None,
            "sweep": sweeps[n],
        }
        for n in counts
    ],
}
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

for r in report["replicas"]:
    print(f"cluster-bench: {r['n']} replica(s) -> knee {r['knee_qps']:.0f} qps "
          f"({r['scaling_vs_1']:.2f}x vs 1)")
EOF
echo "== wrote $OUT"
