#!/usr/bin/env bash
# Drive the yield-query serving path with the open-loop load generator
# and record the latency/throughput reports — once against an in-process
# server (pure handler cost) and once over real TCP against a spawned
# server process (what a network client actually sees).
#
#   scripts/loadtest.sh                  10s at 2000 qps, both modes
#   QPS=5000 DURATION=30s scripts/loadtest.sh
#   URL=http://host:8080 scripts/loadtest.sh   # against a running ayd
#
# Reports land in benchmarks/BENCH_serve.json (in-process) and
# benchmarks/BENCH_serve_net.json (over-the-wire) — p50/p95/p99 latency,
# achieved qps, error/shed counts; what the CI smoke job uploads.
set -euo pipefail

cd "$(dirname "$0")/.."

QPS="${QPS:-2000}"
DURATION="${DURATION:-10s}"
INFLIGHT="${INFLIGHT:-64}"
URL="${URL:-}"
OUT=benchmarks/BENCH_serve.json
OUT_NET=benchmarks/BENCH_serve_net.json

mkdir -p benchmarks

echo "== load test: qps=$QPS duration=$DURATION inflight=$INFLIGHT url=${URL:-<in-process>}"
go run ./cmd/aydload -qps "$QPS" -duration "$DURATION" -inflight "$INFLIGHT" \
    ${URL:+-url "$URL"} -o "$OUT"
echo "== wrote $OUT"

# The over-the-wire run spawns its own server child, so it only makes
# sense when no external URL was given.
if [ -z "$URL" ]; then
    echo "== load test (TCP): qps=$QPS duration=$DURATION inflight=$INFLIGHT"
    go run ./cmd/aydload -qps "$QPS" -duration "$DURATION" -inflight "$INFLIGHT" \
        -addr 127.0.0.1:0 -o "$OUT_NET"
    echo "== wrote $OUT_NET"
fi
