#!/usr/bin/env bash
# Drive the yield-query serving path with the open-loop load generator
# and record the latency/throughput report.
#
#   scripts/loadtest.sh                  10s at 2000 qps, in-process server
#   QPS=5000 DURATION=30s scripts/loadtest.sh
#   URL=http://host:8080 scripts/loadtest.sh   # against a running ayd
#
# The report lands in benchmarks/BENCH_serve.json (p50/p95/p99 latency,
# achieved qps, error/shed counts — what the CI smoke job uploads).
set -euo pipefail

cd "$(dirname "$0")/.."

QPS="${QPS:-2000}"
DURATION="${DURATION:-10s}"
INFLIGHT="${INFLIGHT:-256}"
URL="${URL:-}"
OUT=benchmarks/BENCH_serve.json

mkdir -p benchmarks

echo "== load test: qps=$QPS duration=$DURATION inflight=$INFLIGHT url=${URL:-<in-process>}"
go run ./cmd/aydload -qps "$QPS" -duration "$DURATION" -inflight "$INFLIGHT" \
    ${URL:+-url "$URL"} -o "$OUT"
echo "== wrote $OUT"
