#!/usr/bin/env bash
# Compare two `go test -bench` outputs by ns/op and fail when any shared
# benchmark regressed more than BENCH_MAX_REGRESSION_PCT percent
# (default 5). Usage: bench-compare.sh baseline.txt latest.txt
#
# Offline replacement for benchstat: no statistics, just the mean ns/op
# per benchmark name (averaged across -count repetitions).
set -euo pipefail

BASE="${1:?usage: bench-compare.sh baseline.txt latest.txt}"
NEW="${2:?usage: bench-compare.sh baseline.txt latest.txt}"
MAX_PCT="${BENCH_MAX_REGRESSION_PCT:-5}"

if [[ ! -f "$BASE" ]]; then
    echo "== no baseline at $BASE — skipping comparison"
    echo "   (record one with: cp $NEW $BASE)"
    exit 0
fi

awk -v max_pct="$MAX_PCT" -v base_file="$BASE" -v new_file="$NEW" '
# Benchmark lines look like:
#   BenchmarkOPSolve-8   12345   98765 ns/op   120 B/op   3 allocs/op
# Strip the -N GOMAXPROCS suffix so runs from different machines compare.
function bench_name(s) { sub(/-[0-9]+$/, "", s); return s }

FNR == 1 { in_base = (FILENAME == base_file) }
/^Benchmark/ {
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") {
            name = bench_name($1)
            if (in_base) { bsum[name] += $(i-1); bn[name]++ }
            else         { nsum[name] += $(i-1); nn[name]++; if (!(name in seen)) order[++k] = name; seen[name] = 1 }
        }
    }
}
END {
    printf "== comparing vs %s (max regression %s%%)\n", base_file, max_pct
    printf "%-40s %12s %12s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta"
    fail = 0
    for (j = 1; j <= k; j++) {
        name = order[j]
        if (!(name in bn)) continue
        b = bsum[name] / bn[name]
        n = nsum[name] / nn[name]
        pct = (b > 0) ? 100 * (n - b) / b : 0
        mark = ""
        if (pct > max_pct + 0) { mark = "  REGRESSION"; fail = 1 }
        printf "%-40s %12.0f %12.0f %+7.1f%%%s\n", name, b, n, pct, mark
    }
    if (fail) {
        printf "FAIL: benchmark regression beyond %s%%\n", max_pct
        exit 1
    }
    print "OK: no benchmark regressed beyond the threshold"
}' "$BASE" "$NEW"
