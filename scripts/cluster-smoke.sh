#!/usr/bin/env bash
# Cluster crash-takeover smoke through the real binary: boot two ayd
# replicas on one shared disk store, submit a flow job to the first,
# SIGKILL it mid-run — no drain, no lease release, exactly the failure
# the lease protocol exists for — and require the survivor to adopt the
# job (lease takeover after the TTL) and finish it from the dead
# replica's mirrored checkpoint. CI runs this as the cluster-smoke job.
#
#   scripts/cluster-smoke.sh
#
# Knobs (env):
#   BASE_PORT  first replica's port   (default 9280)
#   LEASE_TTL  job lease TTL          (default 1s)
#   TIMEOUT    takeover+finish budget (default 120 seconds)
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${BASE_PORT:-9280}"
LEASE_TTL="${LEASE_TTL:-1s}"
TIMEOUT="${TIMEOUT:-120}"
A="http://127.0.0.1:$BASE_PORT"
B="http://127.0.0.1:$((BASE_PORT + 1))"

work="$(mktemp -d)"
store="$work/store"
mkdir -p "$store"
pid_a="" pid_b=""
cleanup() {
    [ -n "$pid_a" ] && kill -9 "$pid_a" 2>/dev/null || true
    [ -n "$pid_b" ] && kill -9 "$pid_b" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/ayd" ./cmd/ayd

start() { # id addr peer-url logfile -> pid on stdout
    "$work/ayd" serve -addr "$2" -store disk -models "$store" \
        -replica-id "$1" -peers "$3" -lease-ttl "$LEASE_TTL" \
        >"$4" 2>&1 &
    echo $!
}
await() { # url name
    for _ in $(seq 1 100); do
        curl -fsS "$1/healthz" >/dev/null 2>&1 && return
        sleep 0.1
    done
    echo "cluster-smoke: $2 did not come up on $1" >&2
    exit 1
}

pid_a="$(start ra "127.0.0.1:$BASE_PORT" "$B" "$work/a.log")"
pid_b="$(start rb "127.0.0.1:$((BASE_PORT + 1))" "$A" "$work/b.log")"
await "$A" "replica A"
await "$B" "replica B"

# A flow big enough to outlive the kill, checkpointing every
# generation so the survivor has something to resume from.
flow='{"model":"smoke-ota","problem":"ota","pop_size":32,"generations":40,"mc_samples":300,"seed":42,"checkpoint_every":1}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$flow" "$A/v1/flows" >/dev/null
echo "cluster-smoke: flow submitted to A (pid $pid_a)"

# Wait for the first mirrored checkpoint, then kill the owner cold.
for _ in $(seq 1 200); do
    [ -d "$store/t/default/checkpoints/smoke-ota" ] && break
    sleep 0.1
done
[ -d "$store/t/default/checkpoints/smoke-ota" ] \
    || { echo "cluster-smoke: no checkpoint ever reached the shared store" >&2; exit 1; }
kill -9 "$pid_a"
pid_a=""
echo "cluster-smoke: owner SIGKILLed mid-flow; waiting for B to take over (TTL $LEASE_TTL)"

deadline=$((SECONDS + TIMEOUT))
takeover=""
while [ "$SECONDS" -lt "$deadline" ]; do
    rep="$(curl -fsS "$B/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["replica"]["lease_takeovers"])')"
    if [ -z "$takeover" ] && [ "$rep" -ge 1 ]; then
        takeover=1
        echo "cluster-smoke: B adopted the job (lease_takeovers=$rep)"
    fi
    if [ -n "$takeover" ] \
        && curl -fsS "$B/v1/models/smoke-ota" >/dev/null 2>&1; then
        echo "cluster-smoke: PASS — survivor finished the adopted flow and installed smoke-ota"
        exit 0
    fi
    sleep 0.5
done
echo "cluster-smoke: FAIL — no takeover+finish within ${TIMEOUT}s (takeover seen: ${takeover:-no})" >&2
echo "--- A log tail ---" >&2; tail -20 "$work/a.log" >&2
echo "--- B log tail ---" >&2; tail -20 "$work/b.log" >&2
exit 1
