#!/usr/bin/env bash
# Local ayd cluster bring-up and teardown: N replicas of the real
# binary sharing one disk artefact store, each with a unique
# -replica-id, the full peer list for Monte Carlo shard dispatch, and a
# short job-lease TTL so crash takeover is quick to watch.
#
#   scripts/cluster.sh up 3      # boot 3 replicas on 127.0.0.1:9180..9182
#   scripts/cluster.sh status    # per-replica /healthz incl. lease counters
#   scripts/cluster.sh down      # stop everything, remove runtime state
#
# `make cluster` / `make cluster-down` wrap up/down. After `up`, the
# replica base URLs are in $STATE_DIR/urls (comma-separated) — pass
# that straight to `aydload -url "$(cat .cluster/urls)"` or curl any
# replica directly.
#
# Knobs (env):
#   REPLICAS      replica count for `up` (also the positional arg)
#   BASE_PORT     first replica's port                  (default 9180)
#   STATE_DIR     pids/urls/binary/log directory        (default .cluster)
#   STORE_DIR     shared artefact store                 (default $STATE_DIR/store)
#   LEASE_TTL     job lease TTL                         (default 2s)
#   CPU_QUOTA_US  per-replica cgroup-v1 CPU quota in µs per CPU_PERIOD_US
#                 (default: none). quota/period = CPUs per replica; needs
#                 a writable /sys/fs/cgroup/cpu (root). This is how
#                 scripts/cluster_bench.sh holds per-replica resources
#                 constant while the replica count varies.
#   CPU_PERIOD_US CFS period for the quota (default 100000). A shorter
#                 period caps how long a replica that exhausts its quota
#                 stalls — the bench uses 20000 so throttle pauses stay
#                 under the latency SLO instead of dominating p99.
#   EXTRA_FLAGS   appended to every `ayd serve` invocation
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${BASE_PORT:-9180}"
STATE_DIR="${STATE_DIR:-.cluster}"
STORE_DIR="${STORE_DIR:-$STATE_DIR/store}"
LEASE_TTL="${LEASE_TTL:-2s}"
CPU_QUOTA_US="${CPU_QUOTA_US:-}"
CPU_PERIOD_US="${CPU_PERIOD_US:-100000}"
EXTRA_FLAGS="${EXTRA_FLAGS:-}"

# v1 exposes the cpu controller at /sys/fs/cgroup/cpu with cfs_* knobs;
# v2 is unified at /sys/fs/cgroup with a single cpu.max file.
if [ -f /sys/fs/cgroup/cgroup.controllers ]; then
    CG_V2=1
    CG_ROOT=/sys/fs/cgroup
else
    CG_V2=""
    CG_ROOT=/sys/fs/cgroup/cpu
fi

cmd="${1:-}"

# cgroup_prepare creates one replica's CPU slice. The replica is
# launched from a shell that joins the slice via cgroup.procs *before*
# exec-ing the binary: attaching an already-running Go process instead
# would move only the written thread (v1 `tasks` semantics) and leave
# the runtime threads spawned earlier outside the quota.
cgroup_prepare() { # replica-index
    local slice="$CG_ROOT/ayd-r$1"
    mkdir -p "$slice" 2>/dev/null || return 1
    if [ -n "$CG_V2" ]; then
        echo "+cpu" > "$CG_ROOT/cgroup.subtree_control" 2>/dev/null || true
        echo "$CPU_QUOTA_US $CPU_PERIOD_US" > "$slice/cpu.max" || return 1
    else
        echo "$CPU_PERIOD_US" > "$slice/cpu.cfs_period_us" || return 1
        echo "$CPU_QUOTA_US" > "$slice/cpu.cfs_quota_us" || return 1
    fi
}

up() {
    local n="${1:-${REPLICAS:-2}}"
    [ -e "$STATE_DIR/urls" ] && { echo "cluster: already up ($(cat "$STATE_DIR/urls")); run down first" >&2; exit 1; }
    mkdir -p "$STATE_DIR" "$STORE_DIR"
    go build -o "$STATE_DIR/ayd" ./cmd/ayd

    # Every replica lists every *other* replica as a shard peer.
    local addrs=() urls=()
    for i in $(seq 0 $((n - 1))); do
        addrs+=("127.0.0.1:$((BASE_PORT + i))")
        urls+=("http://127.0.0.1:$((BASE_PORT + i))")
    done

    for i in $(seq 0 $((n - 1))); do
        local peers=""
        for j in $(seq 0 $((n - 1))); do
            [ "$j" = "$i" ] && continue
            peers="${peers:+$peers,}${urls[$j]}"
        done
        if [ -n "$CPU_QUOTA_US" ]; then
            cgroup_prepare "$i" \
                || { echo "cluster: cannot apply CPU_QUOTA_US (need writable $CG_ROOT)" >&2; exit 1; }
        fi
        # shellcheck disable=SC2086 # EXTRA_FLAGS is deliberately word-split
        (
            if [ -n "$CPU_QUOTA_US" ]; then
                echo "$BASHPID" > "$CG_ROOT/ayd-r$i/cgroup.procs"
            fi
            exec "$STATE_DIR/ayd" serve -addr "${addrs[$i]}" -store disk -models "$STORE_DIR" \
                -replica-id "r$i" ${peers:+-peers "$peers"} -lease-ttl "$LEASE_TTL" \
                $EXTRA_FLAGS
        ) >"$STATE_DIR/r$i.log" 2>&1 &
        echo $! > "$STATE_DIR/r$i.pid"
    done

    for i in $(seq 0 $((n - 1))); do
        local ok=""
        for _ in $(seq 1 100); do
            curl -fsS "${urls[$i]}/healthz" >/dev/null 2>&1 && { ok=1; break; }
            sleep 0.1
        done
        [ -n "$ok" ] || { echo "cluster: replica r$i did not come up on ${addrs[$i]} (see $STATE_DIR/r$i.log)" >&2; exit 1; }
    done

    (IFS=,; echo "${urls[*]}") > "$STATE_DIR/urls"
    echo "cluster: $n replicas up, store $STORE_DIR, lease TTL $LEASE_TTL${CPU_QUOTA_US:+, ${CPU_QUOTA_US}/${CPU_PERIOD_US}µs CPU each}"
    echo "cluster: urls: $(cat "$STATE_DIR/urls")"
}

down() {
    local any=""
    for pidfile in "$STATE_DIR"/r*.pid; do
        [ -e "$pidfile" ] || continue
        any=1
        local pid
        pid="$(cat "$pidfile")"
        kill "$pid" 2>/dev/null || true
    done
    # SIGTERM drains release job leases; give that a moment before reaping.
    for pidfile in "$STATE_DIR"/r*.pid; do
        [ -e "$pidfile" ] || continue
        local pid i
        pid="$(cat "$pidfile")"
        for _ in $(seq 1 100); do
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
        kill -9 "$pid" 2>/dev/null || true
        i="$(basename "$pidfile" .pid)"
        rmdir "$CG_ROOT/ayd-$i" 2>/dev/null || true
        rm -f "$pidfile"
    done
    rm -f "$STATE_DIR/urls"
    [ -n "$any" ] && echo "cluster: down" || echo "cluster: nothing running"
}

status() {
    [ -e "$STATE_DIR/urls" ] || { echo "cluster: not up"; exit 1; }
    IFS=, read -ra urls < "$STATE_DIR/urls"
    for u in "${urls[@]}"; do
        echo "== $u"
        curl -fsS "$u/healthz" || echo "  (unreachable)"
        echo
    done
}

case "$cmd" in
    up) up "${2:-}" ;;
    down) down ;;
    status) status ;;
    *) echo "usage: scripts/cluster.sh up [N] | down | status" >&2; exit 2 ;;
esac
