#!/usr/bin/env bash
# Short soak of the real binary: build ayd (race detector on by
# default), let cmd/soak spawn it, and hold mixed query/flow load on it
# long enough to see a leak trend — goroutine count, RSS and tail
# latency are sampled over the run and the thresholds fail the script.
#
#   scripts/soak-smoke.sh                30s at 300 qps, -race build
#   DURATION=10m QPS=1000 scripts/soak-smoke.sh
#   RACE=0 scripts/soak-smoke.sh         # plain build (faster, quieter)
#
# The report lands in benchmarks/SOAK.json (what the CI soak job
# uploads).
set -euo pipefail

cd "$(dirname "$0")/.."

DURATION="${DURATION:-30s}"
QPS="${QPS:-300}"
INFLIGHT="${INFLIGHT:-64}"
RACE="${RACE:-1}"
OUT=benchmarks/SOAK.json

mkdir -p benchmarks bin

BUILD_FLAGS=()
if [ "$RACE" = "1" ]; then
    BUILD_FLAGS+=(-race)
fi

echo "== building ayd (race=$RACE)"
go build "${BUILD_FLAGS[@]}" -o bin/ayd-soak ./cmd/ayd

echo "== soak: duration=$DURATION qps=$QPS inflight=$INFLIGHT"
go run ./cmd/soak -bin bin/ayd-soak \
    -duration "$DURATION" -qps "$QPS" -inflight "$INFLIGHT" \
    -o "$OUT"
echo "== wrote $OUT"
