#!/usr/bin/env bash
# End-to-end durability check of the disk artefact store through the
# real binary: build ayd, boot it with -store disk on a scratch
# directory, install a model over the tenant-scoped API, query it, kill
# the process, boot a fresh one on the same directory and query again.
# Fails unless the answers match byte for byte.
#
#   scripts/e2e-store.sh
#   STORE_DIR=/tmp/mystore scripts/e2e-store.sh   # keep the store around
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:8091}"
TENANT="${TENANT:-acme}"
STORE_DIR="${STORE_DIR:-}"
cleanup_dir=""
if [ -z "$STORE_DIR" ]; then
  STORE_DIR="$(mktemp -d)"
  cleanup_dir="$STORE_DIR"
fi

bin="$(mktemp -d)/ayd"
go build -o "$bin" ./cmd/ayd

pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null || true
  [ -n "$cleanup_dir" ] && rm -rf "$cleanup_dir"
  rm -rf "$(dirname "$bin")"
}
trap cleanup EXIT

start() {
  "$bin" serve -addr "$ADDR" -store disk -models "$STORE_DIR" &
  pid=$!
  for _ in $(seq 1 50); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && return
    sleep 0.1
  done
  echo "e2e-store: server did not come up on $ADDR" >&2
  exit 1
}

stop() {
  kill "$pid"
  wait "$pid" 2>/dev/null || true
  pid=""
}

# A 4-point synthetic front: enough for the inverse tables to build.
model_json='{
  "name": "e2e-ota",
  "objectives": ["gain_db", "pm_deg"],
  "params": ["P1", "P2", "P3"],
  "units": ["um", "um", "um"],
  "points": [
    {"perf": [45, 85], "delta_pct": [1.0, 0.5], "params": [10, 10, 10]},
    {"perf": [48, 81], "delta_pct": [1.1, 0.53], "params": [27, 10, 10]},
    {"perf": [52, 77], "delta_pct": [1.15, 0.57], "params": [43, 10, 10]},
    {"perf": [55, 73], "delta_pct": [1.2, 0.6], "params": [60, 10, 10]}
  ]
}'
query_json='{"model":"e2e-ota","specs":[{"name":"gain_db","sense":">=","bound":50},{"name":"pm_deg","sense":">=","bound":76}]}'

start
echo "e2e-store: installing model as tenant $TENANT"
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "$model_json" "http://$ADDR/v1/t/$TENANT/models" >/dev/null
answer1="$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "$query_json" "http://$ADDR/v1/t/$TENANT/yield/query")"
echo "e2e-store: first process answered: $answer1"
stop

echo "e2e-store: restarting on the same store directory"
start
answer2="$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "$query_json" "http://$ADDR/v1/t/$TENANT/yield/query")"
stop

if [ "$answer1" != "$answer2" ]; then
  echo "e2e-store: FAIL — answers differ across restart" >&2
  echo "  before: $answer1" >&2
  echo "  after:  $answer2" >&2
  exit 1
fi
echo "e2e-store: PASS — model survived the restart with identical answers"
