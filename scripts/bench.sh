#!/usr/bin/env bash
# Run the performance benchmark suite and compare against the recorded
# baseline.
#
#   scripts/bench.sh            run + compare (fails on >5% regression)
#   BENCH_COUNT=5 scripts/bench.sh   more repetitions for stable numbers
#
# Results land in benchmarks/latest.txt; promote a run to the baseline
# with `cp benchmarks/latest.txt benchmarks/baseline.txt` once the
# numbers are intentional.
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-1}"
PKGS="./internal/num ./internal/analysis ./internal/wbga"
OUT=benchmarks/latest.txt

mkdir -p benchmarks

echo "== benchmarking (count=$COUNT): $PKGS"
# -run '^$' skips tests so only benchmarks execute.
go test -run '^$' -bench . -benchmem -count "$COUNT" $PKGS | tee "$OUT"

echo
scripts/bench-compare.sh benchmarks/baseline.txt "$OUT"
