#!/usr/bin/env bash
# Run the performance benchmark suite and compare against the recorded
# baseline.
#
#   scripts/bench.sh            run + compare (fails on >5% regression)
#   BENCH_COUNT=5 scripts/bench.sh   more repetitions for stable numbers
#
# Results land in benchmarks/latest.txt (raw `go test -bench` output)
# and benchmarks/BENCH_flow.json (machine-readable: benchmark name to
# ns/op, B/op, allocs/op — what the CI smoke job uploads). Promote a run
# to the baseline with `cp benchmarks/latest.txt benchmarks/baseline.txt`
# once the numbers are intentional.
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-1}"
PKGS="./internal/num ./internal/analysis ./internal/wbga ./internal/pareto ./internal/montecarlo ./internal/core ./internal/spline ./internal/table ./internal/server"
OUT=benchmarks/latest.txt
JSON=benchmarks/BENCH_flow.json

mkdir -p benchmarks

echo "== benchmarking (count=$COUNT): $PKGS"
# -run '^$' skips tests so only benchmarks execute.
go test -run '^$' -bench . -benchmem -count "$COUNT" $PKGS | tee "$OUT"

# Reduce the raw output to name -> {ns_per_op, bytes_per_op, allocs_per_op},
# averaged across -count repetitions, with the -N GOMAXPROCS suffix
# stripped so runs from different machines share keys.
awk '
function bench_name(s) { sub(/-[0-9]+$/, "", s); return s }
/^Benchmark/ {
    name = bench_name($1)
    if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
    cnt[name]++
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns[name] += $(i-1)
        if ($i == "B/op")      by[name] += $(i-1)
        if ($i == "allocs/op") al[name] += $(i-1)
    }
}
END {
    print "{"
    for (j = 1; j <= k; j++) {
        name = order[j]; c = cnt[name]
        printf "  \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f}%s\n",
            name, ns[name]/c, by[name]/c, al[name]/c, (j < k) ? "," : ""
    }
    print "}"
}' "$OUT" > "$JSON"
echo "== wrote $JSON"

echo
scripts/bench-compare.sh benchmarks/baseline.txt "$OUT"
