#!/usr/bin/env bash
# Run the performance benchmark suite and compare against the recorded
# baseline.
#
#   scripts/bench.sh            run + compare (fails on >5% regression)
#   BENCH_COUNT=5 scripts/bench.sh   more repetitions for stable numbers
#
# Results land in benchmarks/latest.txt (raw `go test -bench` output)
# and benchmarks/BENCH_flow.json (machine-readable: benchmark name to
# ns/op, B/op, allocs/op — what the CI smoke job uploads). Promote a run
# to the baseline with `cp benchmarks/latest.txt benchmarks/baseline.txt`
# once the numbers are intentional.
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-1}"
PKGS="./internal/num ./internal/analysis ./internal/wbga ./internal/pareto ./internal/montecarlo ./internal/core ./internal/spline ./internal/table ./internal/server"
OUT=benchmarks/latest.txt
JSON=benchmarks/BENCH_flow.json

mkdir -p benchmarks

echo "== benchmarking (count=$COUNT): $PKGS"
# -run '^$' skips tests so only benchmarks execute.
go test -run '^$' -bench . -benchmem -count "$COUNT" $PKGS | tee "$OUT"

# Reduce the raw output to name -> {ns_per_op, bytes_per_op, allocs_per_op},
# averaged across -count repetitions, with the -N GOMAXPROCS suffix
# stripped so runs from different machines share keys.
awk '
function bench_name(s) { sub(/-[0-9]+$/, "", s); return s }
/^Benchmark/ {
    name = bench_name($1)
    if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
    cnt[name]++
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns[name] += $(i-1)
        if ($i == "B/op")      by[name] += $(i-1)
        if ($i == "allocs/op") al[name] += $(i-1)
    }
}
END {
    print "{"
    for (j = 1; j <= k; j++) {
        name = order[j]; c = cnt[name]
        printf "  \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f}%s\n",
            name, ns[name]/c, by[name]/c, al[name]/c, (j < k) ? "," : ""
    }
    print "}"
}' "$OUT" > "$JSON"
echo "== wrote $JSON"

# Variance-reduced Monte Carlo benchmark: how many circuit evaluations
# a naive yield estimator would need to match the importance-sampled
# estimate's variance, per evaluation actually spent (the custom
# naive_evals_ratio metric; the headline claim is >= 10). Kept out of
# the baseline comparison: its ns/op is dominated by a fixed simulation
# budget and its value lives in the custom metrics.
MCOUT=benchmarks/mc_latest.txt
MCJSON=benchmarks/BENCH_mc.json
echo
echo "== benchmarking MC variance reduction"
go test -run '^$' -bench 'BenchmarkMCNaiveVsIS' -count 1 . | tee "$MCOUT"

# Reduce to name -> {metric: value} keeping every reported unit
# (ns_per_op, naive_evals_ratio, ess, yield_pct, ...).
awk '
function bname(s) { sub(/-[0-9]+$/, "", s); return s }
/^Benchmark/ {
    name = bname($1)
    if (!(name in seen)) { order[++nb] = name; seen[name] = 1; nu[name] = 0 }
    for (i = 3; i < NF; i += 2) {
        u = $(i+1); gsub(/[^A-Za-z0-9]/, "_", u)
        id = name SUBSEP u
        if (!(id in val)) { nu[name]++; uname[name, nu[name]] = u }
        val[id] += $i; cnt[id]++
    }
}
END {
    print "{"
    for (j = 1; j <= nb; j++) {
        name = order[j]
        printf "  \"%s\": {", name
        for (q = 1; q <= nu[name]; q++) {
            u = uname[name, q]; id = name SUBSEP u
            printf "%s\"%s\": %.6g", (q > 1) ? ", " : "", u, val[id] / cnt[id]
        }
        printf "}%s\n", (j < nb) ? "," : ""
    }
    print "}"
}' "$MCOUT" > "$MCJSON"
echo "== wrote $MCJSON"

echo
scripts/bench-compare.sh benchmarks/baseline.txt "$OUT"
