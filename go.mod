module analogyield

go 1.22
