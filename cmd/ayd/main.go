// Command ayd serves the analogyield model-as-a-service API: cheap
// yield queries against saved behavioural models and asynchronous
// model-building flow jobs with live SSE event streams.
//
// Usage:
//
//	ayd serve [-addr :8080] [-listeners N] [-store disk|mem]
//	          [-models DIR] [-data DIR] [-workers N] [-max-models N]
//	          [-max-inflight N] [-max-inflight-heavy N] [-max-body BYTES]
//	          [-query-timeout D] [-drain-timeout D]
//	          [-read-header-timeout D] [-idle-timeout D]
//	          [-max-header-bytes N]
//	          [-tls-cert FILE -tls-key FILE] [-trusted-proxies CIDRS]
//	          [-cors-origin ORIGINS] [-pprof 127.0.0.1:6060]
//	          [-replica-id ID] [-peers URLS] [-lease-ttl D]
//
// -replica-id enables cluster mode: replicas sharing one -models
// directory coordinate flow-job ownership through store leases, adopt a
// crashed or drained peer's jobs from their mirrored checkpoints, and —
// when -peers lists the other replicas' base URLs — spread each job's
// Monte Carlo stage across the fleet (results stay bit-identical to a
// single-node run regardless of shard placement).
//
// -listeners N > 1 opens N SO_REUSEPORT sockets on -addr, each with
// its own accept loop and http.Server over the shared handler, so the
// kernel spreads connections across cores instead of funneling them
// through one accept queue (unsupported platforms fall back to 1).
//
// The HTTP layer is hardened for untrusted traffic (internal/httpx):
// panic recovery, request IDs, body limits, per-route and global
// in-flight caps, trusted-proxy client-IP resolution, optional CORS and
// TLS with modern defaults. GET /metrics exposes the full counter and
// latency-histogram registry in Prometheus text format alongside the
// expvar export at /debug/vars.
//
// With -store disk (the default) model artefacts and job checkpoints
// persist content-addressed under -models, shared safely with other ayd
// processes on the same directory; -store mem keeps everything
// in-process (artefacts die with the server). Models saved in the
// legacy per-directory layout under -models are imported at boot.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight queries
// drain, running flows checkpoint and stop (resumable on the next
// submission of the same model), and event streams close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the opt-in -pprof listener only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/montecarlo"
	"analogyield/internal/server"
	"analogyield/internal/store"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "serve" {
		fmt.Fprintln(os.Stderr, "usage: ayd serve [flags]")
		fmt.Fprintln(os.Stderr, "run 'ayd serve -h' for flags")
		os.Exit(2)
	}
	os.Exit(serve(os.Args[2:]))
}

func serve(args []string) int {
	fs := flag.NewFlagSet("ayd serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		listeners   = fs.Int("listeners", 1, "SO_REUSEPORT listener shards on -addr (each with its own accept loop; >1 needs kernel support, falls back to 1)")
		readHdrTO   = fs.Duration("read-header-timeout", 5*time.Second, "slowloris guard: max time a connection may take to send request headers (negative = unlimited)")
		idleTO      = fs.Duration("idle-timeout", 120*time.Second, "keep-alive: max idle time between requests on a connection (negative = unlimited)")
		maxHdr      = fs.Int("max-header-bytes", 0, "max request header bytes per connection (0 = Go default, 1 MiB)")
		storeKind   = fs.String("store", "disk", "artefact store backend: disk (durable, shareable) or mem (in-process)")
		models      = fs.String("models", "ayd-models", "artefact store root; legacy per-directory models here are imported at boot")
		data        = fs.String("data", "", "job state directory (checkpoints); defaults to -models")
		workers     = fs.Int("workers", 2, "flow worker pool size")
		maxModels   = fs.Int("max-models", 8, "maximum models resident in memory (LRU beyond)")
		maxInflight = fs.Int("max-inflight", 256, "maximum concurrent HTTP requests before shedding")
		heavyIF     = fs.Int("max-inflight-heavy", 32, "tighter in-flight cap on flow submission and model install routes")
		maxBody     = fs.Int64("max-body", 4<<20, "maximum request body bytes (oversized bodies get 413; negative = unlimited)")
		queryTO     = fs.Duration("query-timeout", 30*time.Second, "per-request timeout on non-streaming routes")
		drainTO     = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		tlsCert     = fs.String("tls-cert", "", "PEM certificate file; with -tls-key, serve TLS with modern defaults")
		tlsKey      = fs.String("tls-key", "", "PEM private key file for -tls-cert")
		proxies     = fs.String("trusted-proxies", "", "comma-separated CIDRs/IPs of reverse proxies whose X-Forwarded-For is honoured")
		corsOrigins = fs.String("cors-origin", "", "comma-separated origins allowed cross-origin browser access (\"*\" = any; default off)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; default off)")
		mcStrategy  = fs.String("mc-strategy", "", "default Monte Carlo estimator for submitted flows: naive (default), is, surrogate, is+surrogate")
		replicaID   = fs.String("replica-id", "", "cluster mode: this replica's unique id (empty = single-node, no leases)")
		peers       = fs.String("peers", "", "cluster mode: comma-separated peer base URLs for Monte Carlo shard dispatch (e.g. http://10.0.0.2:8080)")
		leaseTTL    = fs.Duration("lease-ttl", 0, "cluster mode: job lease TTL; a crashed replica's jobs are adoptable after this long (0 = 15s default)")
	)
	fs.Parse(args)

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if _, err := montecarlo.ParseStrategy(*mcStrategy); err != nil {
		log.Error("bad -mc-strategy", "err", err)
		return 2
	}
	if *peers != "" && *replicaID == "" {
		log.Error("-peers requires -replica-id (cluster mode is off without one)")
		return 2
	}

	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener, never on the
		// service address: bind them to localhost in production.
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Error("pprof", "err", err)
			}
		}()
	}

	metrics := &core.Metrics{}
	metrics.Publish("ayd")

	var st store.Store
	switch *storeKind {
	case "disk":
		st = store.OpenDisk(*models) // Config.withDefaults would do the same; explicit for -store symmetry
	case "mem":
		st = store.NewMemory()
	default:
		log.Error("bad -store", "value", *storeKind, "want", "disk or mem")
		return 2
	}

	srv := server.New(server.Config{
		Addr:              *addr,
		Listeners:         *listeners,
		ReadHeaderTimeout: *readHdrTO,
		IdleTimeout:       *idleTO,
		MaxHeaderBytes:    *maxHdr,

		Store:          st,
		ModelsDir:      *models,
		DataDir:        *data,
		FlowWorkers:    *workers,
		MaxModels:      *maxModels,
		MaxInFlight:    *maxInflight,
		HeavyInFlight:  *heavyIF,
		MaxBodyBytes:   *maxBody,
		QueryTimeout:   *queryTO,
		DrainTimeout:   *drainTO,
		TLSCertFile:    *tlsCert,
		TLSKeyFile:     *tlsKey,
		TrustedProxies: splitList(*proxies),
		CORSOrigins:    splitList(*corsOrigins),
		Metrics:        metrics,
		Logger:         log,

		DefaultMCStrategy: *mcStrategy,

		ReplicaID: *replicaID,
		Peers:     splitList(*peers),
		LeaseTTL:  *leaseTTL,
	})
	if err := srv.Start(); err != nil {
		log.Error("start", "err", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately
	log.Info("shutting down", "budget", drainTO.String())

	// No deadline here: Shutdown applies Config.DrainTimeout itself.
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Error("shutdown", "err", err)
		return 1
	}
	log.Info("bye")
	return 0
}

// splitList parses a comma-separated flag value into its non-empty
// trimmed entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
