// Command filterdesign reproduces the paper's §5 application: design the
// 2nd-order low-pass gm-C filter around the behavioural OTA model,
// optimise the capacitors by MOO (30 individuals × 40 generations),
// verify the final design at transistor level, and run the 500-sample
// Monte Carlo yield check.
//
// When -model points at a saved model directory, the OTA design is
// selected by the yield-targeted query (-gain/-pm specs); otherwise the
// repository's nominal OTA sizing is used.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"analogyield/internal/behave"
	"analogyield/internal/core"
	"analogyield/internal/filter"
	"analogyield/internal/measure"
	"analogyield/internal/montecarlo"
	"analogyield/internal/ota"
	"analogyield/internal/process"
	"analogyield/internal/yield"
)

// fail reports err and exits: 130 for an interrupt (matching shell
// convention), 1 for anything else.
func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "filterdesign: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "filterdesign:", err)
	os.Exit(1)
}

func main() {
	var (
		modelDir = flag.String("model", "", "saved model directory (optional; nominal OTA if empty)")
		gain     = flag.Float64("gain", 50, "OTA gain spec for the model query, dB")
		pm       = flag.Float64("pm", 80, "OTA phase-margin spec for the model query, deg")
		pop      = flag.Int("pop", 30, "capacitor MOO population (paper: 30)")
		gen      = flag.Int("gen", 40, "capacitor MOO generations (paper: 40)")
		mc       = flag.Int("mc", 500, "Monte Carlo yield samples (paper: 500)")
		mcStrat  = flag.String("mc-strategy", "", "yield estimator: naive (default), is, surrogate, is+surrogate")
		seed     = flag.Int64("seed", 1, "RNG seed")
		series   = flag.Bool("series", false, "print the filter response series (Fig 11)")
		verbose  = flag.Bool("v", false, "print per-generation MOO progress")
	)
	flag.Parse()

	// SIGINT cancels the capacitor MOO (within one generation) and the
	// Monte Carlo yield run (within one sample batch).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := ota.DefaultConfig()
	params := ota.NominalParams()
	if *modelDir != "" {
		m, err := core.LoadModel(*modelDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "filterdesign:", err)
			os.Exit(1)
		}
		d, err := m.DesignFor(
			yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: *gain},
			yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: *pm})
		if err != nil {
			fmt.Fprintln(os.Stderr, "filterdesign:", err)
			os.Exit(1)
		}
		prob := core.NewOTAProblem()
		params, err = prob.ParamsFromTableValues(d.Params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "filterdesign:", err)
			os.Exit(1)
		}
		fmt.Printf("OTA selected from model: target gain %.2f dB, PM %.2f deg\n",
			d.Target[0], d.Target[1])
	}

	perf, err := cfg.Evaluate(params, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "filterdesign: OTA evaluation:", err)
		os.Exit(1)
	}
	gm, ro := behave.FromPerf(perf, cfg.CLoad)
	fmt.Printf("OTA: gain %.2f dB, PM %.2f deg, fu %.3g Hz -> behavioural gm=%.4g S ro=%.4g ohm\n",
		perf.GainDB, perf.PMDeg, perf.UnityHz, gm, ro)

	spec := filter.DefaultSpec()
	fmt.Printf("Spec (Fig 10): flat ±%.1f dB to %.3g Hz, >= %.0f dB at %.3g Hz\n",
		spec.RippleDB, spec.PassbandEdge, spec.StopbandAttenDB, spec.StopbandEdge)

	prob := &filter.Problem{Spec: spec, Space: filter.DefaultCapSpace(), GM: gm, Ro: ro}
	optOpts := filter.OptimizeOptions{PopSize: *pop, Generations: *gen, Seed: *seed}
	if *verbose {
		optOpts.Obs = core.ObserverFunc(func(e core.Event) {
			if g, ok := e.(core.GenerationDone); ok {
				fmt.Fprintf(os.Stderr, "gen %3d/%d: best fitness %.4f\n",
					g.Gen, g.Generations, g.BestFitness)
			}
		})
	}
	opt, err := filter.Optimize(ctx, prob, optOpts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("Optimised capacitors (%d behavioural evaluations, front %d):\n",
		opt.Evaluations, opt.FrontSize)
	fmt.Printf("  C1 = %.3g F, C2 = %.3g F, C3 = %.3g F\n",
		opt.Caps.C1, opt.Caps.C2, opt.Caps.C3)
	fmt.Printf("  behavioural: DC %.2f dB, passband dev %.3f dB, stopband atten %.2f dB, f3dB %.3g Hz\n",
		opt.Response.DCGainDB, opt.Response.PassbandDevDB,
		opt.Response.StopbandAttenDB, opt.Response.F3dB)

	// Transistor-level verification (Fig 11).
	nt := filter.BuildTransistor(opt.Caps, cfg, params, nil)
	rt, err := filter.Measure(nt, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "filterdesign: transistor verification:", err)
		os.Exit(1)
	}
	fmt.Printf("  transistor:  DC %.2f dB, passband dev %.3f dB, stopband atten %.2f dB, f3dB %.3g Hz\n",
		rt.DCGainDB, rt.PassbandDevDB, rt.StopbandAttenDB, rt.F3dB)
	fmt.Printf("  meets spec at transistor level: %v\n", spec.Satisfies(rt))

	strategy, err := montecarlo.ParseStrategy(*mcStrat)
	if err != nil {
		fail(err)
	}
	yr, err := filter.VerifyYieldMC(ctx, opt.Caps, cfg, params, spec, process.C35(), *mc, *seed+99, strategy)
	if err != nil {
		fail(fmt.Errorf("yield: %w", err))
	}
	if strategy == montecarlo.StrategyNaive {
		passes := int(yr.Yield*float64(yr.Samples) + 0.5)
		lo, hi, _ := yield.WilsonInterval(passes, yr.Samples)
		fmt.Printf("Monte Carlo yield (%d samples): %.1f%% (95%% Wilson interval [%.2f%%, %.2f%%])\n",
			yr.Samples, 100*yr.Yield, 100*lo, 100*hi)
	} else {
		// Weighted estimates have no binomial pass count, so the Wilson
		// interval does not apply; report the effective sample size and
		// the simulations the strategy actually spent instead.
		fmt.Printf("Monte Carlo yield (%s, %d samples, %d simulated, ESS %.0f): %.2f%%\n",
			yr.Strategy, yr.Samples, yr.FullEvals, yr.ESS, 100*yr.Yield)
	}

	if *series {
		fmt.Printf("\n# freq_hz gain_db (transistor-level typical response, Fig 11)\n")
		for i, f := range rt.Freqs {
			fmt.Printf("%.6g %.4f\n", f, measure.GainDB(rt.TF[i]))
		}
	}
}
