// Command otaflow runs the paper's complete model-building flow on the
// symmetrical OTA benchmark: WBGA multi-objective optimisation, Pareto
// front extraction, per-point Monte Carlo variation analysis, table
// model construction, and Verilog-A emission.
//
// Output artefacts (in -out):
//
//	front.tbl        combined performance/variation/parameter table
//	gain_delta.tbl   gain → ΔGain% ($table_model data)
//	pm_delta.tbl     PM → ΔPM%
//	lp1..lp8.tbl     (gain, PM) → designable parameter
//	ota_behav.va     the generated Verilog-A behavioural module
//
// The defaults reproduce the paper's budgets (100 generations × 100
// individuals = 10,000 evaluations; 200 MC samples per Pareto point);
// use -pop/-gen/-mc for quicker runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"analogyield/internal/behave"
	"analogyield/internal/core"
	"analogyield/internal/process"
)

func main() {
	var (
		out   = flag.String("out", "otaflow-out", "output directory for model artefacts")
		pop   = flag.Int("pop", 100, "GA population size")
		gen   = flag.Int("gen", 100, "GA generations")
		mc    = flag.Int("mc", 200, "Monte Carlo samples per Pareto point")
		cache = flag.Int("cache", 0, "genome cache bound (0 = default 8192, negative disables)")
		seed  = flag.Int64("seed", 1, "RNG seed")
		knots = flag.Int("knots", 200, "max table knots after thinning")
		quiet = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := core.FlowConfig{
		Problem:     core.NewOTAProblem(),
		Proc:        process.C35(),
		PopSize:     *pop,
		Generations: *gen,
		MCSamples:   *mc,
		CacheSize:   *cache,
		Seed:        *seed,
		Model:       core.ModelOptions{MaxTablePoints: *knots},
	}
	if !*quiet {
		lastPct := -1
		cfg.OnProgress = func(stage string, done, total int) {
			pct := done * 100 / total
			if pct/5 != lastPct/5 {
				fmt.Fprintf(os.Stderr, "\r%s: %3d%% (%d/%d)      ", stage, pct, done, total)
				lastPct = pct
			}
		}
	}

	t0 := time.Now()
	res, err := core.RunFlow(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "\notaflow:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}

	if err := res.Model.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "otaflow:", err)
		os.Exit(1)
	}
	va := behave.GenerateVerilogA(res.Model, behave.VAOptions{})
	if err := os.WriteFile(filepath.Join(*out, "ota_behav.va"), []byte(va), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "otaflow:", err)
		os.Exit(1)
	}

	// Table 5-style summary.
	fmt.Printf("Design parameter summary (paper Table 5):\n")
	fmt.Printf("  Generations:        %d\n", *gen)
	fmt.Printf("  Evaluation samples: %d\n", res.Evaluations)
	fmt.Printf("  Pareto points:      %d\n", len(res.FrontIdx))
	fmt.Printf("  MC simulations:     %d\n", res.MCSimulations)
	if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
		fmt.Printf("  Genome cache:       %d hits / %d misses (%.1f%% hit rate, %d simulations skipped)\n",
			res.CacheHits, res.CacheMisses,
			100*float64(res.CacheHits)/float64(lookups), res.CacheHits)
	}
	fmt.Printf("  CPU time:           %.1fs (MOO %.1fs, MC %.1fs, tables %.3fs)\n",
		time.Since(t0).Seconds(), res.Timing.MOO.Seconds(),
		res.Timing.MC.Seconds(), res.Timing.Tables.Seconds())

	// Table 2-style excerpt.
	pts := res.Model.Points
	fmt.Printf("\nPerformance and variation values (paper Table 2 excerpt):\n")
	fmt.Printf("  %-8s %-10s %-8s %-8s\n", "Gain(dB)", "dGain(%)", "PM(deg)", "dPM(%)")
	step := len(pts)/10 + 1
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		fmt.Printf("  %-8.2f %-10.3f %-8.2f %-8.3f\n",
			p.Perf[0], p.DeltaPct[0], p.Perf[1], p.DeltaPct[1])
	}
	fmt.Printf("\nModel written to %s\n", *out)
}
