// Command otaflow runs the paper's complete model-building flow on the
// symmetrical OTA benchmark: WBGA multi-objective optimisation, Pareto
// front extraction, per-point Monte Carlo variation analysis, table
// model construction, and Verilog-A emission.
//
// Output artefacts (in -out):
//
//	front.tbl        combined performance/variation/parameter table
//	gain_delta.tbl   gain → ΔGain% ($table_model data)
//	pm_delta.tbl     PM → ΔPM%
//	lp1..lp8.tbl     (gain, PM) → designable parameter
//	ota_behav.va     the generated Verilog-A behavioural module
//
// The defaults reproduce the paper's budgets (100 generations × 100
// individuals = 10,000 evaluations; 200 MC samples per Pareto point);
// use -pop/-gen/-mc for quicker runs.
//
// Long runs are interruptible: SIGINT (Ctrl-C) cancels the flow
// gracefully, a checkpoint is written (-checkpoint, default
// <out>/flow.ckpt), and re-running the same command resumes where the
// run left off with bit-identical final results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"analogyield/internal/behave"
	"analogyield/internal/core"
	"analogyield/internal/process"
)

func main() {
	var (
		out       = flag.String("out", "otaflow-out", "output directory for model artefacts")
		pop       = flag.Int("pop", 100, "GA population size")
		gen       = flag.Int("gen", 100, "GA generations")
		mc        = flag.Int("mc", 200, "Monte Carlo samples per Pareto point")
		mcStrat   = flag.String("mc-strategy", "", "MC estimator: naive (default), is, surrogate, is+surrogate")
		cache     = flag.Int("cache", 0, "genome cache bound (0 = default 8192, negative disables)")
		seed      = flag.Int64("seed", 1, "RNG seed")
		knots     = flag.Int("knots", 200, "max table knots after thinning")
		ckpt      = flag.String("checkpoint", "", "checkpoint file for resume (default <out>/flow.ckpt; \"none\" disables)")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint cadence in MC points (0 = default 16, negative = MOO only)")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	ckptPath := *ckpt
	switch ckptPath {
	case "":
		ckptPath = filepath.Join(*out, "flow.ckpt")
	case "none":
		ckptPath = ""
	}

	metrics := &core.Metrics{}
	metrics.Publish("analogyield.flow")
	cfg := core.FlowConfig{
		Problem:         core.NewOTAProblem(),
		Proc:            process.C35(),
		PopSize:         *pop,
		Generations:     *gen,
		MCSamples:       *mc,
		MCStrategy:      *mcStrat,
		CacheSize:       *cache,
		Seed:            *seed,
		Model:           core.ModelOptions{MaxTablePoints: *knots},
		Checkpoint:      ckptPath,
		CheckpointEvery: *ckptEvery,
		Metrics:         metrics,
	}
	if !*quiet {
		cfg.Obs = progressObserver()
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "otaflow:", err)
		os.Exit(2)
	}

	// SIGINT cancels the flow cooperatively: the current generation or
	// MC point finishes, a checkpoint is written, and RunFlow returns
	// ctx.Err() with the partial result.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	t0 := time.Now()
	res, err := core.RunFlow(ctx, cfg)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if errors.Is(err, context.Canceled) {
		summary(res, t0)
		fmt.Fprintln(os.Stderr, "otaflow: interrupted")
		if ckptPath != "" {
			fmt.Fprintf(os.Stderr, "otaflow: checkpoint saved to %s; re-run the same command to resume\n", ckptPath)
		}
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "otaflow:", err)
		os.Exit(1)
	}

	if err := res.Model.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "otaflow:", err)
		os.Exit(1)
	}
	va := behave.GenerateVerilogA(res.Model, behave.VAOptions{})
	if err := os.WriteFile(filepath.Join(*out, "ota_behav.va"), []byte(va), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "otaflow:", err)
		os.Exit(1)
	}

	summary(res, t0)

	// Table 2-style excerpt.
	pts := res.Model.Points
	fmt.Printf("\nPerformance and variation values (paper Table 2 excerpt):\n")
	fmt.Printf("  %-8s %-10s %-8s %-8s\n", "Gain(dB)", "dGain(%)", "PM(deg)", "dPM(%)")
	step := len(pts)/10 + 1
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		fmt.Printf("  %-8.2f %-10.3f %-8.2f %-8.3f\n",
			p.Perf[0], p.DeltaPct[0], p.Perf[1], p.DeltaPct[1])
	}
	fmt.Printf("\nModel written to %s\n", *out)
}

// progressObserver renders the typed event stream as terse stderr
// progress: one line per stage transition plus in-place percentage
// updates inside the long stages.
func progressObserver() core.Observer {
	lastPct := -1
	pct := func(stage core.Stage, done, total int) {
		if total <= 0 {
			return
		}
		p := done * 100 / total
		if p/5 != lastPct/5 {
			fmt.Fprintf(os.Stderr, "\r%s: %3d%% (%d/%d)      ", stage, p, done, total)
			lastPct = p
		}
	}
	return core.ObserverFunc(func(e core.Event) {
		switch ev := e.(type) {
		case core.FlowResumed:
			fmt.Fprintf(os.Stderr, "resuming from %s (MOO done, %d MC points recovered)\n",
				ev.Path, ev.MCDone)
		case core.GenerationDone:
			pct(core.StageMOO, ev.Evals, ev.TotalEvals)
		case core.MCPointDone:
			pct(core.StageMC, ev.Index+1, ev.Total)
		case core.PointDropped:
			fmt.Fprintf(os.Stderr, "\nwarning: Pareto point %d dropped: %v\n", ev.Index, ev.Err)
		case core.MCStageStats:
			fmt.Fprintf(os.Stderr, "\rmc %s: %d of %d samples simulated, mean ESS %.1f\n",
				ev.Strategy, ev.FullEvals, ev.Samples, ev.MeanESS)
		case core.StageEnd:
			fmt.Fprintf(os.Stderr, "\r%s done in %.1fs                    \n", ev.Stage, ev.Elapsed.Seconds())
			lastPct = -1
		case core.CheckpointSaved:
			fmt.Fprintf(os.Stderr, "\rcheckpoint: %s (%d MC points)      \n", ev.Path, ev.MCDone)
		}
	})
}

// summary prints the Table 5-style design parameter summary plus the
// flow metrics registry (also exported via expvar as analogyield.flow).
func summary(res *core.FlowResult, t0 time.Time) {
	if res == nil {
		return
	}
	m := res.Metrics
	fmt.Printf("Design parameter summary (paper Table 5):\n")
	fmt.Printf("  Evaluation samples: %d\n", res.Evaluations)
	fmt.Printf("  Pareto points:      %d\n", len(res.FrontIdx))
	fmt.Printf("  MC simulations:     %d\n", res.MCSimulations)
	if res.MCPredicted > 0 {
		saved := 100 * float64(res.MCPredicted) / float64(res.MCSimulations+res.MCPredicted)
		fmt.Printf("  MC predicted:       %d (surrogate answered %.1f%% of the budget)\n",
			res.MCPredicted, saved)
	}
	if res.MCMeanESS > 0 {
		fmt.Printf("  MC mean ESS:        %.1f per point\n", res.MCMeanESS)
	}
	if res.DroppedPoints > 0 {
		fmt.Printf("  Dropped points:     %d\n", res.DroppedPoints)
	}
	if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
		fmt.Printf("  Genome cache:       %d hits / %d misses (%.1f%% hit rate, %d simulations skipped)\n",
			res.CacheHits, res.CacheMisses,
			100*float64(res.CacheHits)/float64(lookups), res.CacheHits)
	}
	fmt.Printf("  Solver failures:    %d\n", m.SolverFailures)
	fmt.Printf("  CPU time:           %.1fs (MOO %.1fs, MC %.1fs, tables %.3fs)\n",
		time.Since(t0).Seconds(), res.Timing.MOO.Seconds(),
		res.Timing.MC.Seconds(), res.Timing.Tables.Seconds())
}
