// Command aydload is an open-loop load generator for the ayd yield-query
// service. It fires POST /v1/yield/query requests at a fixed target rate
// — arrivals are scheduled by the clock, not by completions, so a slow
// server faces a growing backlog exactly as it would in production — and
// reports the latency distribution (p50/p95/p99 via the same
// fixed-bucket histogram the server uses for its own route metrics)
// together with the achieved throughput.
//
// Usage:
//
//	aydload [-url http://127.0.0.1:8080] [-addr 127.0.0.1:0] [-qps 2000]
//	        [-duration 10s] [-inflight 256] [-model loadtest]
//	        [-o result.json]
//
// With no -url, aydload starts an in-process server on a loopback port,
// installs a synthetic behavioural model and drives that — a
// self-contained smoke mode used by scripts/loadtest.sh and CI. The
// report marks this mode in_process: true because no packet crosses the
// kernel's TCP stack between two processes.
//
// With -addr, aydload instead re-executes itself as a *separate*
// serving process (the same internal/server stack the ayd binary runs)
// bound to the given address, waits for it to come up, and drives it
// over real TCP — syscalls, loopback queueing, connection pool and all.
// That is the over-the-wire measurement (in_process: false) recorded in
// benchmarks/BENCH_serve_net.json. -url still targets any externally
// managed server.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/server"
	"analogyield/internal/server/api"
)

// result is the machine-readable report (benchmarks/BENCH_serve.json).
type result struct {
	URL         string                 `json:"url"`
	Model       string                 `json:"model"`
	TargetQPS   float64                `json:"target_qps"`
	DurationSec float64                `json:"duration_s"`
	Requests    int64                  `json:"requests"`
	Errors      int64                  `json:"errors"`
	Shed        int64                  `json:"shed"` // arrivals dropped at the in-flight cap
	AchievedQPS float64                `json:"achieved_qps"`
	Latency     core.HistogramSnapshot `json:"latency"`
	InProcess   bool                   `json:"in_process,omitempty"`
}

// serveEnv marks the re-executed serving child; it carries the listen
// address the parent chose.
const (
	serveEnv = "AYDLOAD_SERVE"
	modelEnv = "AYDLOAD_MODEL"
)

func main() {
	if addr := os.Getenv(serveEnv); addr != "" {
		if err := serveChild(addr, os.Getenv(modelEnv)); err != nil {
			fmt.Fprintln(os.Stderr, "aydload (serve child):", err)
			os.Exit(1)
		}
		return
	}
	var (
		url      = flag.String("url", "", "target server base URL (empty: start an in-process server)")
		addr     = flag.String("addr", "", "spawn a separate serving process on this address (e.g. 127.0.0.1:0) and drive it over TCP")
		qps      = flag.Float64("qps", 2000, "target arrival rate (open loop)")
		duration = flag.Duration("duration", 10*time.Second, "test length")
		inflight = flag.Int("inflight", 256, "max concurrent requests; arrivals beyond it are shed and counted")
		model    = flag.String("model", "loadtest", "model name to query")
		out      = flag.String("o", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if *url != "" && *addr != "" {
		fmt.Fprintln(os.Stderr, "aydload: -url and -addr are mutually exclusive")
		os.Exit(2)
	}
	if err := run(*url, *addr, *qps, *duration, *inflight, *model, *out); err != nil {
		fmt.Fprintln(os.Stderr, "aydload:", err)
		os.Exit(1)
	}
}

func run(url, addr string, qps float64, duration time.Duration, inflight int, model, out string) error {
	if qps <= 0 {
		return fmt.Errorf("non-positive -qps %g", qps)
	}
	res := result{Model: model, TargetQPS: qps, DurationSec: duration.Seconds()}

	switch {
	case url != "":
		// Externally managed target; nothing to start or stop.
	case addr != "":
		childURL, stop, err := spawnChild(addr, model)
		if err != nil {
			return err
		}
		defer stop()
		url = childURL
	default:
		srv, err := startServer("127.0.0.1:0", model)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on exit
		}()
		url = "http://" + srv.Addr()
		res.InProcess = true
	}
	res.URL = url

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        inflight,
		MaxIdleConnsPerHost: inflight,
	}}
	endpoint := url + "/v1/yield/query"
	bodies, err := queryBodies(client, url, model)
	if err != nil {
		return err
	}

	var (
		hist     core.Histogram
		requests atomic.Int64
		errs     atomic.Int64
		shed     atomic.Int64
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, inflight)
	interval := time.Duration(float64(time.Second) / qps)
	start := time.Now()
	next := start
	for i := 0; time.Since(start) < duration; i++ {
		// Open loop: the i-th arrival happens at start+i·interval no
		// matter how the previous requests are doing.
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			shed.Add(1)
			continue
		}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
			if err != nil {
				errs.Add(1)
				requests.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
			resp.Body.Close()
			hist.Observe(time.Since(t0))
			requests.Add(1)
			if resp.StatusCode != http.StatusOK {
				errs.Add(1)
			}
		}(bodies[i%len(bodies)])
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.Requests = requests.Load()
	res.Errors = errs.Load()
	res.Shed = shed.Load()
	res.AchievedQPS = float64(res.Requests-res.Errors) / elapsed.Seconds()
	res.Latency = hist.Snapshot()

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "aydload: %d requests (%d errors, %d shed) in %.1fs — %.0f qps, p50 %.3fms p95 %.3fms p99 %.3fms\n",
		res.Requests, res.Errors, res.Shed, elapsed.Seconds(), res.AchievedQPS,
		res.Latency.P50Millis, res.Latency.P95Millis, res.Latency.P99Millis)
	if res.Errors > res.Requests/2 {
		return fmt.Errorf("more than half the requests failed")
	}
	return nil
}

// queryBodies pre-encodes a rotating set of queries so the load isn't a
// single cache line's worth of identical requests. Bounds are drawn
// from the target model's own modelled domains (via /v1/models): the
// first objective sweeps the lower half of its range and the second
// stays near the bottom of its range, which is feasible on any
// trade-off front with the usual guard-band margins.
func queryBodies(client *http.Client, url, model string) ([][]byte, error) {
	info, err := fetchModelInfo(client, url, model)
	if err != nil {
		return nil, err
	}
	if len(info.ObjectiveNames) < 2 {
		return nil, fmt.Errorf("model %q reports %d objectives, need 2", model, len(info.ObjectiveNames))
	}
	span0 := info.Domain[1] - info.Domain[0]
	span1 := info.Domain1[1] - info.Domain1[0]
	rng := rand.New(rand.NewSource(1))
	bodies := make([][]byte, 64)
	for i := range bodies {
		req := api.QueryRequest{
			TenantRef: api.TenantRef{Model: model},
			Specs: [2]api.Spec{
				{Name: info.ObjectiveNames[0], Sense: ">=",
					Bound: info.Domain[0] + (0.10+0.40*rng.Float64())*span0},
				{Name: info.ObjectiveNames[1], Sense: ">=",
					Bound: info.Domain1[0] + (0.02+0.10*rng.Float64())*span1},
			},
		}
		b, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		bodies[i] = b
	}
	return bodies, nil
}

// fetchModelInfo asks the target server what it is about to load-test.
func fetchModelInfo(client *http.Client, url, model string) (*api.ModelInfo, error) {
	resp, err := client.Get(url + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("listing models: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing models: %s", resp.Status)
	}
	var infos []api.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("listing models: %w", err)
	}
	for i := range infos {
		if infos[i].Name == model {
			return &infos[i], nil
		}
	}
	return nil, fmt.Errorf("model %q not served at %s (have %d models)", model, url, len(infos))
}

// serveChild is the re-executed serving process of -addr mode: it binds
// the requested address, installs the synthetic model, announces the
// bound address on stdout, and serves until the parent closes its
// stdin.
func serveChild(addr, model string) error {
	if model == "" {
		model = "loadtest"
	}
	srv, err := startServer(addr, model)
	if err != nil {
		return err
	}
	// The parent reads this line to learn the bound port (addr may be
	// ":0").
	fmt.Printf("AYDLOAD_READY %s\n", srv.Addr())
	os.Stdout.Close()
	io.Copy(io.Discard, os.Stdin) //nolint:errcheck // EOF = parent is done
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// spawnChild re-executes this binary as a separate serving process and
// waits for its ready line; the returned stop closes the child's stdin
// (its shutdown signal) and reaps it.
func spawnChild(addr, model string) (url string, stop func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return "", nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), serveEnv+"="+addr, modelEnv+"="+model)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return "", nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop = func() {
		stdin.Close()
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }() //nolint:errcheck
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill() //nolint:errcheck // drain hung; reap hard
			<-done
		}
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if boundAddr, ok := strings.CutPrefix(sc.Text(), "AYDLOAD_READY "); ok {
			return "http://" + boundAddr, stop, nil
		}
	}
	stop()
	return "", nil, fmt.Errorf("serving child exited before announcing readiness")
}

// startServer starts a serving stack bound to addr with a synthetic
// 64-point model installed under the given name — the same analytic
// front the server package's tests and benchmarks use.
func startServer(addr, model string) (*server.Server, error) {
	const n = 64
	pts := make([]core.ParetoPoint, n)
	for i := range pts {
		x := float64(i) / float64(n-1)
		pts[i] = core.ParetoPoint{
			Params:   []float64{10 + 50*x, 10, 10},
			Perf:     [2]float64{45 + 10*x, 85 - 12*x},
			DeltaPct: [2]float64{1.0 + 0.2*x, 0.5 + 0.1*x},
		}
	}
	m, err := core.BuildModel(pts,
		[]string{"gain_db", "pm_deg"},
		[]string{"P1", "P2", "P3"},
		[]string{"um", "um", "um"},
		core.ModelOptions{})
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{
		Addr:   addr,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if _, err := srv.Registry().Install(api.DefaultTenant, model, m); err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return srv, nil
}
