// Command aydload is an open-loop load generator and capacity-sweep
// harness for the ayd yield-query service. It fires POST /v1/yield/query
// requests at a fixed target rate — arrivals are scheduled by the
// clock, not by completions, so a slow server faces a growing backlog
// exactly as it would in production — and reports the latency
// distribution (p50/p95/p99 via the same fixed-bucket histogram the
// server uses for its own route metrics) together with the achieved
// throughput.
//
// Latency is coordination-omission-aware: each request's latency is
// measured from its *scheduled* arrival time, so when the generator or
// the server falls behind, the backlog shows up as latency instead of
// silently stretching the measurement interval.
//
// Usage:
//
//	aydload [-url http://127.0.0.1:8080] [-addr 127.0.0.1:0] [-qps 2000]
//	        [-duration 10s] [-warmup 1s] [-inflight 256] [-conns N]
//	        [-listeners N] [-model loadtest] [-o result.json]
//	        [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// Capacity-sweep mode:
//
//	aydload -sweep [-sweep-start 2000] [-sweep-factor 2] [-sweep-max 1e6]
//	        [-sweep-refine 2] [-slo-p99 2ms] [-error-budget 0.01]
//	        [-duration 5s] [-warmup 1s] [-addr 127.0.0.1:0] [-o BENCH_capacity.json]
//
// -sweep ramps the target rate geometrically (then bisects between the
// last passing and first failing step) until p99 exceeds -slo-p99 or
// the error+shed fraction exceeds -error-budget, and reports the full
// qps-vs-p50/p95/p99 curve plus the detected knee — the highest load
// the server sustains inside the SLO. scripts/capacity.sh wraps this
// into benchmarks/BENCH_capacity.json.
//
// With no -url, aydload starts an in-process server on a loopback port,
// installs a synthetic behavioural model and drives that — a
// self-contained smoke mode used by scripts/loadtest.sh and CI. The
// report marks this mode in_process: true because no packet crosses the
// kernel's TCP stack between two processes.
//
// With -addr, aydload instead re-executes itself as a *separate*
// serving process (the same internal/server stack the ayd binary runs)
// bound to the given address with -listeners SO_REUSEPORT shards, waits
// for it to come up, and drives it over real TCP — syscalls, loopback
// queueing, connection pool and all. That is the over-the-wire
// measurement (in_process: false) recorded in
// benchmarks/BENCH_serve_net.json and BENCH_capacity.json. -url still
// targets any externally managed server.
//
// Both -url and -addr accept a comma-separated list, which is the
// cluster measurement mode: workers (and their persistent connections)
// are striped round-robin across the targets, the rates and the SLO
// apply to the aggregate, and the report records the target count —
// scripts/cluster_bench.sh uses this to measure how the capacity knee
// scales from 1 to N replicas (benchmarks/BENCH_cluster.json).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/pacer"
	"analogyield/internal/server"
	"analogyield/internal/server/api"
)

// result is the machine-readable single-run report
// (benchmarks/BENCH_serve.json).
type result struct {
	URL         string                 `json:"url"`
	Model       string                 `json:"model"`
	TargetQPS   float64                `json:"target_qps"`
	DurationSec float64                `json:"duration_s"`
	Requests    int64                  `json:"requests"`
	Errors      int64                  `json:"errors"`
	Shed        int64                  `json:"shed"` // arrivals dropped at the in-flight cap
	AchievedQPS float64                `json:"achieved_qps"`
	Batch       int                    `json:"batch,omitempty"`   // >1: queries per request; qps counts queries
	Targets     int                    `json:"targets,omitempty"` // >1: replicas driven round-robin; qps is the aggregate
	Latency     core.HistogramSnapshot `json:"latency"`
	InProcess   bool                   `json:"in_process,omitempty"`
}

// step is one rung of the capacity sweep.
type step struct {
	TargetQPS   float64                `json:"target_qps"`
	AchievedQPS float64                `json:"achieved_qps"`
	Requests    int64                  `json:"requests"`
	Errors      int64                  `json:"errors"`
	Shed        int64                  `json:"shed"`
	Latency     core.HistogramSnapshot `json:"latency"`
	SLOMet      bool                   `json:"slo_met"`
	Attempt     int                    `json:"attempt,omitempty"` // >0: retry of the same rung
}

// capacityResult is the sweep report (benchmarks/BENCH_capacity.json):
// the full qps-vs-latency curve, the knee, and enough configuration to
// reproduce the run.
type capacityResult struct {
	URL           string  `json:"url"`
	Model         string  `json:"model"`
	InProcess     bool    `json:"in_process,omitempty"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Listeners     int     `json:"listeners"`
	Conns         int     `json:"conns"`
	Inflight      int     `json:"inflight"`
	Batch         int     `json:"batch,omitempty"`   // >1: queries per request; qps counts queries
	Targets       int     `json:"targets,omitempty"` // >1: replicas driven round-robin; rates and knee are aggregate
	StepSec       float64 `json:"step_duration_s"`
	WarmupSec     float64 `json:"warmup_s"`
	SLOP99Millis  float64 `json:"slo_p99_ms"`
	ErrorBudget   float64 `json:"error_budget"`
	GOGC          string  `json:"gogc,omitempty"`       // env at run time; inherited by the spawned server
	GOMEMLIMIT    string  `json:"gomemlimit,omitempty"` // ditto; GOGC=off + GOMEMLIMIT is the memory-limit-only GC mode
	Steps         []step  `json:"steps"`
	KneeTargetQPS float64 `json:"knee_target_qps"`
	KneeQPS       float64 `json:"knee_qps"` // achieved qps at the knee
	Knee          *step   `json:"knee,omitempty"`
}

// serveEnv marks the re-executed serving child; it carries the listen
// address the parent chose, the model name, and the listener shard
// count.
const (
	serveEnv        = "AYDLOAD_SERVE"
	modelEnv        = "AYDLOAD_MODEL"
	listenersEnv    = "AYDLOAD_LISTENERS"
	childProfileEnv = "AYDLOAD_CHILD_CPUPROFILE"
)

func main() {
	if addr := os.Getenv(serveEnv); addr != "" {
		listeners, _ := strconv.Atoi(os.Getenv(listenersEnv))
		// AYDLOAD_CHILD_CPUPROFILE profiles the serving side of an
		// -addr run — the -cpuprofile flag only covers the load
		// generator's own process.
		if prof := os.Getenv(childProfileEnv); prof != "" {
			if f, err := os.Create(prof); err == nil {
				if pprof.StartCPUProfile(f) == nil {
					defer pprof.StopCPUProfile()
				}
			}
		}
		if err := serveChild(addr, os.Getenv(modelEnv), listeners); err != nil {
			fmt.Fprintln(os.Stderr, "aydload (serve child):", err)
			os.Exit(1)
		}
		return
	}
	var (
		url      = flag.String("url", "", "target server base URL(s), comma-separated; workers round-robin across them (empty: start an in-process server)")
		addr     = flag.String("addr", "", "spawn a separate serving process per comma-separated address (e.g. 127.0.0.1:0,127.0.0.1:0) and drive them over TCP")
		qps      = flag.Float64("qps", 2000, "target arrival rate (open loop; single-run mode)")
		duration = flag.Duration("duration", 10*time.Second, "test length (per step in -sweep mode)")
		warmup   = flag.Duration("warmup", time.Second, "unrecorded warm-up before each measured run/step (0 = none)")
		inflight = flag.Int("inflight", 64, "worker/connection count = max concurrent requests; arrivals past a deep backlog are shed and counted")
		batch    = flag.Int("batch", 1, "queries per request: N>1 posts {\"queries\":[...]} bodies to the same endpoint, -qps then counts queries/s (the optimizer-loop shape; the SLO still bounds per-request p99)")
		conns    = flag.Int("conns", 0, "client connection fan-out: MaxConnsPerHost/MaxIdleConnsPerHost (0 = -inflight)")
		listens  = flag.Int("listeners", 1, "SO_REUSEPORT listener shards for the spawned/in-process server")
		model    = flag.String("model", "loadtest", "model name to query")
		out      = flag.String("o", "", "write the JSON report here (default stdout)")

		sweep       = flag.Bool("sweep", false, "capacity sweep: ramp target qps until the SLO breaks, report the curve and knee")
		sweepStart  = flag.Float64("sweep-start", 2000, "first sweep step's target qps")
		sweepFactor = flag.Float64("sweep-factor", 2, "geometric ramp factor between sweep steps (> 1)")
		sweepMax    = flag.Float64("sweep-max", 1e6, "stop sweeping past this target qps even inside the SLO")
		sweepRefine = flag.Int("sweep-refine", 2, "bisection steps between the last passing and first failing rung")
		sweepRetry  = flag.Int("sweep-retries", 0, "re-run a failing rung up to N times (a host-scheduling stall on shared hardware poisons a whole rung; every attempt is recorded)")
		sloP99      = flag.Duration("slo-p99", 2*time.Millisecond, "sweep SLO: p99 latency bound")
		errBudget   = flag.Float64("error-budget", 0.01, "sweep SLO: max (errors+shed)/arrivals fraction")

		cpuprofile = flag.String("cpuprofile", "", "write the load generator's CPU profile here")
		memprofile = flag.String("memprofile", "", "write the load generator's heap profile here (at exit)")
	)
	flag.Parse()
	if *url != "" && *addr != "" {
		fmt.Fprintln(os.Stderr, "aydload: -url and -addr are mutually exclusive")
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aydload:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aydload:", err)
			os.Exit(1)
		}
	}
	cfg := runConfig{
		url: *url, addr: *addr, qps: *qps,
		duration: *duration, warmup: *warmup,
		inflight: *inflight, batch: *batch, conns: *conns, listeners: *listens,
		model: *model, out: *out,
		sweep: *sweep, sweepStart: *sweepStart, sweepFactor: *sweepFactor,
		sweepMax: *sweepMax, sweepRefine: *sweepRefine, sweepRetries: *sweepRetry,
		sloP99: *sloP99, errBudget: *errBudget,
	}
	err := run(cfg)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if f, ferr := os.Create(*memprofile); ferr == nil {
			runtime.GC()
			pprof.WriteHeapProfile(f) //nolint:errcheck // best-effort diagnostic
			f.Close()
		} else {
			fmt.Fprintln(os.Stderr, "aydload:", ferr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aydload:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	url, addr             string
	qps                   float64
	duration, warmup      time.Duration
	inflight, conns       int
	batch                 int
	listeners             int
	model, out            string
	sweep                 bool
	sweepStart            float64
	sweepFactor, sweepMax float64
	sweepRefine           int
	sweepRetries          int
	sloP99                time.Duration
	errBudget             float64
}

func run(cfg runConfig) error {
	if !cfg.sweep && cfg.qps <= 0 {
		return fmt.Errorf("non-positive -qps %g", cfg.qps)
	}
	if cfg.sweep && (cfg.sweepFactor <= 1 || cfg.sweepStart <= 0) {
		return fmt.Errorf("bad sweep ramp: start %g, factor %g", cfg.sweepStart, cfg.sweepFactor)
	}
	if cfg.conns <= 0 {
		cfg.conns = cfg.inflight
	}
	if cfg.batch < 1 {
		return fmt.Errorf("non-positive -batch %d", cfg.batch)
	}

	urls := splitList(cfg.url)
	inProcess := false
	switch {
	case len(urls) > 0:
		// Externally managed target(s); nothing to start or stop.
	case cfg.addr != "":
		// One spawned serving child per comma-separated address.
		for _, a := range splitList(cfg.addr) {
			childURL, stop, err := spawnChild(a, cfg.model, cfg.listeners)
			if err != nil {
				return err
			}
			defer stop()
			urls = append(urls, childURL)
		}
	default:
		srv, err := startServer("127.0.0.1:0", cfg.model, cfg.listeners)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on exit
		}()
		urls = []string{"http://" + srv.Addr()}
		inProcess = true
	}

	// The control-plane transport must never throttle: Go's default of
	// 2 idle conns per host would collapse into connection churn
	// (handshakes, TIME_WAIT, serialized requests) the moment it were
	// used for load. Pool as many connections as the fan-out could
	// need, cap the total so a melting server can't soak up unbounded
	// sockets, and skip gzip — the payloads are small JSON.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.conns,
		MaxIdleConnsPerHost: cfg.conns,
		MaxConnsPerHost:     cfg.conns,
		DisableCompression:  true,
	}}
	// The bodies come from the first target's catalog; every target in a
	// cluster run serves the same model (shared store or identically
	// seeded children), which each target's own queryBodies would verify
	// redundantly.
	bodies, err := queryBodies(client, urls[0], cfg.model, cfg.batch)
	if err != nil {
		return err
	}
	lg := &loadgen{
		client:   client,
		inflight: cfg.inflight,
		batch:    cfg.batch,
	}
	for _, u := range urls {
		if !strings.HasPrefix(u, "http://") {
			return fmt.Errorf("the data plane speaks plain HTTP/1.1; got %q (TLS termination belongs in front of the server under test, not in its load generator)", u)
		}
		hostport := strings.TrimPrefix(u, "http://")
		lg.hostports = append(lg.hostports, hostport)
		lg.reqs = append(lg.reqs, renderRequests(hostport, bodies))
	}
	defer func() {
		for _, c := range lg.conns {
			if c != nil {
				c.conn.Close()
			}
		}
	}()

	var report any
	if cfg.sweep {
		cap := sweepCapacity(lg, cfg)
		cap.URL = strings.Join(urls, ",")
		cap.Model = cfg.model
		cap.InProcess = inProcess
		if len(urls) > 1 {
			cap.Targets = len(urls)
		}
		report = cap
	} else {
		if cfg.warmup > 0 {
			lg.fire(cfg.qps, cfg.warmup, false)
		}
		// Fresh GC budget for the measured window (testing.B does the
		// same): a collection triggered by warm-up debt would otherwise
		// land mid-step and read as server tail latency.
		runtime.GC()
		st, elapsed := lg.fire(cfg.qps, cfg.duration, true)
		res := result{
			URL: strings.Join(urls, ","), Model: cfg.model, TargetQPS: cfg.qps,
			DurationSec: cfg.duration.Seconds(),
			Requests:    st.Requests, Errors: st.Errors, Shed: st.Shed,
			AchievedQPS: st.AchievedQPS,
			Latency:     st.Latency, InProcess: inProcess,
		}
		if cfg.batch > 1 {
			res.Batch = cfg.batch
		}
		if len(urls) > 1 {
			res.Targets = len(urls)
		}
		fmt.Fprintf(os.Stderr, "aydload: %d requests (%d errors, %d shed) in %.1fs — %.0f qps, p50 %.3fms p95 %.3fms p99 %.3fms\n",
			res.Requests, res.Errors, res.Shed, elapsed.Seconds(), res.AchievedQPS,
			res.Latency.P50Millis, res.Latency.P95Millis, res.Latency.P99Millis)
		if res.Errors > res.Requests/2 {
			writeReport(cfg.out, res) //nolint:errcheck // the failure is the headline
			return fmt.Errorf("more than half the requests failed")
		}
		report = res
	}
	return writeReport(cfg.out, report)
}

func writeReport(out string, report any) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// loadgen drives one or more endpoints with pre-rendered requests. The
// data plane speaks raw HTTP/1.1 over one persistent TCP connection per
// worker (wrk-style): at five-figure rates the net/http client's
// per-request machinery — request and header allocation, URL parsing,
// the round-trip bookkeeping — costs more CPU and GC pressure than the
// server spends answering, and on a small machine that overhead would
// be billed to the server's measured latency. Control-plane calls
// (model discovery) still go through the tuned net/http client.
//
// With several targets (cluster mode) worker w pins target
// w mod len(hostports): the workers stripe evenly across the replicas,
// each keeps its one persistent connection, and the open-loop schedule
// stays global — the target rate is the aggregate the cluster must
// absorb, exactly how a fleet behind a round-robin balancer is loaded.
type loadgen struct {
	client    *http.Client
	hostports []string   // target-indexed
	reqs      [][][]byte // [target][body] pre-rendered POST /v1/yield/query requests
	conns     []*rawConn // worker-indexed; persist across warm-up and steps
	inflight  int
	batch     int // queries per request (≥1); rates count queries
}

// reqTimeout bounds one data-plane request on the wire; a server stall
// past it is counted as an error rather than hanging a worker forever.
const reqTimeout = 10 * time.Second

// rawConn is one worker's persistent connection.
type rawConn struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialRaw(hostport string) (*rawConn, error) {
	conn, err := net.DialTimeout("tcp", hostport, reqTimeout)
	if err != nil {
		return nil, err
	}
	return &rawConn{conn: conn, br: bufio.NewReaderSize(conn, 4096)}, nil
}

// do writes one pre-rendered request and consumes exactly one
// keep-alive response, reporting whether it was a 200. It allocates
// nothing on the happy path.
func (c *rawConn) do(req []byte) (ok bool, err error) {
	if err := c.conn.SetDeadline(time.Now().Add(reqTimeout)); err != nil {
		return false, err
	}
	if _, err := c.conn.Write(req); err != nil {
		return false, err
	}
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return false, err
	}
	ok = bytes.HasPrefix(line, []byte("HTTP/1.1 200"))
	contentLength := -1
	for {
		line, err = c.br.ReadSlice('\n')
		if err != nil {
			return false, err
		}
		if len(line) <= 2 { // bare CRLF: end of headers
			break
		}
		if n, isCL := parseContentLength(line); isCL {
			contentLength = n
		}
	}
	if contentLength < 0 {
		// Chunked or close-delimited body: the server never sends these
		// for the query route, so treat it as a broken response rather
		// than growing a chunked parser.
		return false, fmt.Errorf("response without Content-Length")
	}
	if _, err := c.br.Discard(contentLength); err != nil {
		return false, err
	}
	return ok, nil
}

// parseContentLength matches a "Content-Length: N" header line without
// allocating.
func parseContentLength(line []byte) (n int, ok bool) {
	const key = "content-length:"
	if len(line) < len(key) {
		return 0, false
	}
	for i := 0; i < len(key); i++ {
		b := line[i]
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if b != key[i] {
			return 0, false
		}
	}
	for _, b := range bytes.TrimSpace(line[len(key):]) {
		if b < '0' || b > '9' {
			return 0, false
		}
		n = n*10 + int(b-'0')
	}
	return n, true
}

// renderRequests turns the query bodies into ready-to-write HTTP/1.1
// request bytes.
func renderRequests(hostport string, bodies [][]byte) [][]byte {
	reqs := make([][]byte, len(bodies))
	for i, body := range bodies {
		var b bytes.Buffer
		fmt.Fprintf(&b, "POST /v1/yield/query HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
			hostport, len(body))
		b.Write(body)
		reqs[i] = b.Bytes()
	}
	return reqs
}

// shedHorizon is how far behind its schedule a worker may fall before
// it starts shedding overdue arrivals instead of firing them: past this
// backlog the step is unambiguously over SLO and firing the backlog
// would only stretch the step's wall time.
const shedHorizon = 250 * time.Millisecond

// fire runs one open-loop pass at the target rate. Pacing is
// partitioned wrk2-style: worker w owns arrivals w, w+K, w+2K, … of the
// global schedule (arrival i is due at start + i/qps), so each worker
// sleeps K-times the global interval — long enough that time.Sleep's
// ~1ms overshoot on containerised kernels stays in the noise, with no
// busy-wait to starve the netpoller on small GOMAXPROCS. The accounting
// is coordination-omission-aware: latency is measured from the
// *scheduled* arrival, and a worker that falls behind fires its overdue
// arrivals back-to-back instead of quietly rescheduling them, so a slow
// server surfaces as latency rather than as a stretched measurement
// window. Only past shedHorizon of backlog does a worker shed (and
// count) arrivals. record=false is the warm-up mode: same traffic, no
// bookkeeping.
func (lg *loadgen) fire(qps float64, duration time.Duration, record bool) (step, time.Duration) {
	// qps counts queries; with batching each wire request carries
	// lg.batch of them, so the request arrival rate is qps/batch.
	interval := float64(time.Second) * float64(lg.batch) / qps
	var (
		hist     core.Histogram
		requests atomic.Int64
		errs     atomic.Int64
		shed     atomic.Int64
		wg       sync.WaitGroup
	)
	workers := lg.inflight
	if lg.conns == nil {
		lg.conns = make([]*rawConn, workers)
	}
	wg.Add(workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// One high-resolution waiter per worker: time.Sleep wakes on
			// the netpoller's millisecond-quantised epoll timeout, which
			// CO-aware accounting would charge to every request.
			wt := pacer.New()
			defer wt.Close() //nolint:errcheck
			tgt := w % len(lg.hostports)
			reqs := lg.reqs[tgt]
			for i := int64(w); ; i += int64(workers) {
				offset := time.Duration(float64(i) * interval)
				if offset >= duration {
					return
				}
				sched := start.Add(offset)
				if d := time.Until(sched); d > 0 {
					wt.SleepUntil(sched)
				} else if -d > shedHorizon {
					shed.Add(1)
					continue
				}
				c := lg.conns[w]
				if c == nil {
					var err error
					if c, err = dialRaw(lg.hostports[tgt]); err != nil {
						requests.Add(1)
						errs.Add(1)
						continue
					}
					lg.conns[w] = c
				}
				ok, err := c.do(reqs[i%int64(len(reqs))])
				requests.Add(1)
				if err != nil {
					// The connection state is unknown; drop it and let the
					// next arrival redial.
					c.conn.Close()
					lg.conns[w] = nil
					errs.Add(1)
					continue
				}
				if !ok {
					errs.Add(1)
				}
				if record {
					hist.Observe(time.Since(sched))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := step{
		TargetQPS: qps,
		Requests:  requests.Load(),
		Errors:    errs.Load(),
		Shed:      shed.Load(),
		Latency:   hist.Snapshot(),
	}
	st.AchievedQPS = float64((st.Requests-st.Errors)*int64(lg.batch)) / elapsed.Seconds()
	return st, elapsed
}

// sweepCapacity ramps the target rate geometrically until the SLO
// breaks, then bisects (geometric midpoints) between the last passing
// and first failing rungs to tighten the knee.
func sweepCapacity(lg *loadgen, cfg runConfig) *capacityResult {
	cap := &capacityResult{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GOGC:         os.Getenv("GOGC"),
		GOMEMLIMIT:   os.Getenv("GOMEMLIMIT"),
		Listeners:    cfg.listeners,
		Conns:        cfg.conns,
		Inflight:     cfg.inflight,
		Batch:        cfg.batch,
		StepSec:      cfg.duration.Seconds(),
		WarmupSec:    cfg.warmup.Seconds(),
		SLOP99Millis: float64(cfg.sloP99) / 1e6,
		ErrorBudget:  cfg.errBudget,
	}
	attempt := func(qps float64, n int) step {
		if cfg.warmup > 0 {
			lg.fire(qps, cfg.warmup, false)
		}
		runtime.GC() // fresh budget for the measured window, as testing.B does
		st, _ := lg.fire(qps, cfg.duration, true)
		st.Attempt = n
		st.SLOMet = stepMeetsSLO(st, cfg)
		verdict := "PASS"
		if !st.SLOMet {
			verdict = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "aydload sweep: target %.0f qps → achieved %.0f, p50 %.3fms p95 %.3fms p99 %.3fms, %d errors, %d shed [%s]\n",
			st.TargetQPS, st.AchievedQPS, st.Latency.P50Millis, st.Latency.P95Millis,
			st.Latency.P99Millis, st.Errors, st.Shed, verdict)
		cap.Steps = append(cap.Steps, st)
		return st
	}
	// A rung fails for good only after exhausting its retries: on shared
	// hardware one host-scheduling stall poisons a 3-second window, and
	// telling that apart from a real SLO violation takes a second
	// sample. Every attempt lands in Steps, so the retries are visible
	// in the committed curve.
	runOne := func(qps float64) step {
		st := attempt(qps, 0)
		for n := 1; n <= cfg.sweepRetries && !st.SLOMet; n++ {
			fmt.Fprintf(os.Stderr, "aydload sweep: retrying %.0f qps (attempt %d of %d)\n",
				qps, n+1, cfg.sweepRetries+1)
			st = attempt(qps, n)
		}
		return st
	}

	var lastPass, firstFail *step
	for q := cfg.sweepStart; q <= cfg.sweepMax; q *= cfg.sweepFactor {
		st := runOne(q)
		if !st.SLOMet {
			firstFail = &st
			break
		}
		lastPass = &st
	}
	// Bisect the knee: geometric midpoints keep the resolution
	// proportional to the load, matching the ramp.
	for r := 0; r < cfg.sweepRefine && lastPass != nil && firstFail != nil; r++ {
		mid := math.Sqrt(lastPass.TargetQPS * firstFail.TargetQPS)
		if mid/lastPass.TargetQPS < 1.05 { // rungs this close are noise
			break
		}
		st := runOne(mid)
		if st.SLOMet {
			lastPass = &st
		} else {
			firstFail = &st
		}
	}
	if lastPass != nil {
		cap.Knee = lastPass
		cap.KneeTargetQPS = lastPass.TargetQPS
		cap.KneeQPS = lastPass.AchievedQPS
	}
	fmt.Fprintf(os.Stderr, "aydload sweep: knee at %.0f qps (target %.0f) within p99 ≤ %.1fms\n",
		cap.KneeQPS, cap.KneeTargetQPS, cap.SLOP99Millis)
	return cap
}

// stepMeetsSLO applies the sweep's two budgets: tail latency and
// badput (failed plus shed arrivals).
func stepMeetsSLO(st step, cfg runConfig) bool {
	if st.Latency.P99Millis > float64(cfg.sloP99)/1e6 {
		return false
	}
	arrivals := st.Requests + st.Shed
	if arrivals == 0 {
		return false
	}
	return float64(st.Errors+st.Shed)/float64(arrivals) <= cfg.errBudget
}

// queryBodies pre-encodes a rotating set of queries so the load isn't a
// single cache line's worth of identical requests. Bounds are drawn
// from the target model's own modelled domains (via /v1/models): the
// first objective sweeps the lower half of its range and the second
// stays near the bottom of its range, which is feasible on any
// trade-off front with the usual guard-band margins. With batch > 1
// each body is a {"queries":[...]} batch of that many queries — the
// shape an optimizer loop posts, and the one that amortizes the
// per-request HTTP and JSON overhead the profile shows dominating the
// single-query path.
func queryBodies(client *http.Client, url, model string, batch int) ([][]byte, error) {
	info, err := fetchModelInfo(client, url, model)
	if err != nil {
		return nil, err
	}
	if len(info.ObjectiveNames) < 2 {
		return nil, fmt.Errorf("model %q reports %d objectives, need 2", model, len(info.ObjectiveNames))
	}
	span0 := info.Domain[1] - info.Domain[0]
	span1 := info.Domain1[1] - info.Domain1[0]
	rng := rand.New(rand.NewSource(1))
	oneQuery := func() api.QueryRequest {
		return api.QueryRequest{
			TenantRef: api.TenantRef{Model: model},
			Specs: [2]api.Spec{
				{Name: info.ObjectiveNames[0], Sense: ">=",
					Bound: info.Domain[0] + (0.10+0.40*rng.Float64())*span0},
				{Name: info.ObjectiveNames[1], Sense: ">=",
					Bound: info.Domain1[0] + (0.02+0.10*rng.Float64())*span1},
			},
		}
	}
	bodies := make([][]byte, 64)
	for i := range bodies {
		var payload any
		if batch > 1 {
			qs := make([]api.QueryRequest, batch)
			for j := range qs {
				qs[j] = oneQuery()
			}
			payload = api.BatchQueryRequest{Queries: qs}
		} else {
			payload = oneQuery()
		}
		b, err := json.Marshal(payload)
		if err != nil {
			panic(err)
		}
		bodies[i] = b
	}
	return bodies, nil
}

// fetchModelInfo asks the target server what it is about to load-test.
func fetchModelInfo(client *http.Client, url, model string) (*api.ModelInfo, error) {
	resp, err := client.Get(url + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("listing models: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing models: %s", resp.Status)
	}
	var infos []api.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("listing models: %w", err)
	}
	for i := range infos {
		if infos[i].Name == model {
			return &infos[i], nil
		}
	}
	return nil, fmt.Errorf("model %q not served at %s (have %d models)", model, url, len(infos))
}

// splitList parses a comma-separated flag value into its non-empty
// trimmed entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// serveChild is the re-executed serving process of -addr mode: it binds
// the requested address, installs the synthetic model, announces the
// bound address on stdout, and serves until the parent closes its
// stdin.
func serveChild(addr, model string, listeners int) error {
	if model == "" {
		model = "loadtest"
	}
	srv, err := startServer(addr, model, listeners)
	if err != nil {
		return err
	}
	// The parent reads this line to learn the bound port (addr may be
	// ":0").
	fmt.Printf("AYDLOAD_READY %s\n", srv.Addr())
	os.Stdout.Close()
	io.Copy(io.Discard, os.Stdin) //nolint:errcheck // EOF = parent is done
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// spawnChild re-executes this binary as a separate serving process and
// waits for its ready line; the returned stop closes the child's stdin
// (its shutdown signal) and reaps it.
func spawnChild(addr, model string, listeners int) (url string, stop func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return "", nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		serveEnv+"="+addr,
		modelEnv+"="+model,
		listenersEnv+"="+strconv.Itoa(listeners))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return "", nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop = func() {
		stdin.Close()
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }() //nolint:errcheck
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill() //nolint:errcheck // drain hung; reap hard
			<-done
		}
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if boundAddr, ok := strings.CutPrefix(sc.Text(), "AYDLOAD_READY "); ok {
			return "http://" + boundAddr, stop, nil
		}
	}
	stop()
	return "", nil, fmt.Errorf("serving child exited before announcing readiness")
}

// startServer starts a serving stack bound to addr (sharded across the
// given listener count) with a synthetic 64-point model installed under
// the given name — the same analytic front the server package's tests
// and benchmarks use.
func startServer(addr, model string, listeners int) (*server.Server, error) {
	const n = 64
	pts := make([]core.ParetoPoint, n)
	for i := range pts {
		x := float64(i) / float64(n-1)
		pts[i] = core.ParetoPoint{
			Params:   []float64{10 + 50*x, 10, 10},
			Perf:     [2]float64{45 + 10*x, 85 - 12*x},
			DeltaPct: [2]float64{1.0 + 0.2*x, 0.5 + 0.1*x},
		}
	}
	m, err := core.BuildModel(pts,
		[]string{"gain_db", "pm_deg"},
		[]string{"P1", "P2", "P3"},
		[]string{"um", "um", "um"},
		core.ModelOptions{})
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{
		Addr:      addr,
		Listeners: listeners,
		// Level-gated, not just discarded: with Info filtered out the
		// access-log middleware skips per-request attribute formatting
		// instead of rendering lines nobody reads.
		Logger: slog.New(slog.NewTextHandler(io.Discard,
			&slog.HandlerOptions{Level: slog.LevelError})),
	})
	if _, err := srv.Registry().Install(api.DefaultTenant, model, m); err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return srv, nil
}
