// Command asim is the mini circuit simulator: it parses a SPICE-like
// netlist and runs operating-point, AC, DC-sweep or transient analysis,
// printing results as whitespace-separated columns.
//
// Usage:
//
//	asim -op circuit.sp
//	asim -ac 1k:1g:20 -probe out circuit.sp
//	asim -dc VG:0:3.3:34 -probe d circuit.sp
//	asim -tran 1u:1n -probe out circuit.sp
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
	"analogyield/internal/measure"
	"analogyield/internal/netlist"
	"analogyield/internal/num"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asim:", err)
	os.Exit(1)
}

// expvar counters: published under "asim" so embedding asim's analysis
// loop in a served process exposes them alongside memstats; the -perf
// flag renders the same map on stderr.
var (
	simStats      = expvar.NewMap("asim")
	statAnalyses  = new(expvar.Int)
	statNewton    = new(expvar.Int)
	statSolves    = new(expvar.Int)
	statACWorkers = new(expvar.Int)
)

func init() {
	simStats.Set("analyses", statAnalyses)
	simStats.Set("newton_iterations", statNewton)
	simStats.Set("linear_solves", statSolves)
	simStats.Set("ac_workers", statACWorkers)
}

func main() {
	var (
		doOP  = flag.Bool("op", false, "print the DC operating point")
		doDev = flag.Bool("devices", false, "with -op: print the MOSFET bias table")
		acArg = flag.String("ac", "", "AC sweep: fstart:fstop:pointsPerDecade")
		dcArg = flag.String("dc", "", "DC sweep: source:start:stop:points")
		trArg = flag.String("tran", "", "transient: tstop:tstep")
		nzArg = flag.String("noise", "", "noise analysis: outnode:fstart:fstop:pointsPerDecade")
		probe = flag.String("probe", "", "comma-separated node names to print (default: all)")
		perf  = flag.Bool("perf", false, "report wall time and heap allocations of the analyses")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asim [flags] netlist.sp")
		flag.PrintDefaults()
		os.Exit(2)
	}
	n, err := netlist.ParseFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, n.Stats())

	probes := probeNodes(n, *probe)

	// SIGINT aborts between analyses (each single analysis is short;
	// the checks bound latency to one analysis).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var m0 runtime.MemStats
	t0 := time.Now()
	if *perf {
		runtime.ReadMemStats(&m0)
	}
	ran := false
	steps := []struct {
		enabled bool
		run     func()
	}{
		{*doOP, func() { runOP(n, probes, *doDev) }},
		{*acArg != "", func() { runAC(n, probes, *acArg) }},
		{*dcArg != "", func() { runDC(n, probes, *dcArg) }},
		{*trArg != "", func() { runTran(n, probes, *trArg) }},
		{*nzArg != "", func() { runNoise(n, *nzArg) }},
	}
	for _, s := range steps {
		if !s.enabled {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "asim: interrupted")
			os.Exit(130)
		}
		s.run()
		ran = true
	}
	if !ran {
		runOP(n, probes, *doDev)
	}
	if *perf {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		fmt.Fprintf(os.Stderr, "# perf: %.3fms wall, %d heap allocs, %.1f KiB allocated\n",
			float64(time.Since(t0).Microseconds())/1000,
			m1.Mallocs-m0.Mallocs, float64(m1.TotalAlloc-m0.TotalAlloc)/1024)
		fmt.Fprintf(os.Stderr, "# metrics: %s\n", simStats.String())
	}
}

func probeNodes(n *circuit.Netlist, arg string) []string {
	if arg == "" {
		var all []string
		for i := 0; i < n.NumNodes(); i++ {
			all = append(all, n.NodeName(i))
		}
		return all
	}
	var out []string
	for _, p := range strings.Split(arg, ",") {
		p = strings.TrimSpace(p)
		if _, ok := n.NodeIndex(p); !ok {
			fail(fmt.Errorf("unknown probe node %q", p))
		}
		out = append(out, p)
	}
	return out
}

func runOP(n *circuit.Netlist, probes []string, devices bool) {
	op, err := analysis.OP(n, nil)
	if err != nil {
		fail(err)
	}
	statAnalyses.Add(1)
	statNewton.Add(int64(op.Iterations))
	statSolves.Add(int64(op.Iterations))
	fmt.Printf("# operating point (%d Newton iterations)\n", op.Iterations)
	for _, node := range probes {
		v, err := op.V(node)
		if err != nil {
			fail(err)
		}
		fmt.Printf("V(%s) = %.6g\n", node, v)
	}
	if devices {
		fmt.Print(analysis.FormatDeviceReport(analysis.DeviceReport(n, op)))
	}
}

func parseTriple(arg string, name string) (a, b float64, k int) {
	parts := strings.Split(arg, ":")
	if len(parts) != 3 {
		fail(fmt.Errorf("%s wants a:b:n, got %q", name, arg))
	}
	var err error
	if a, err = netlist.ParseValue(parts[0]); err != nil {
		fail(err)
	}
	if b, err = netlist.ParseValue(parts[1]); err != nil {
		fail(err)
	}
	kk, err := strconv.Atoi(parts[2])
	if err != nil {
		fail(fmt.Errorf("%s: bad count %q", name, parts[2]))
	}
	return a, b, kk
}

func runAC(n *circuit.Netlist, probes []string, arg string) {
	fStart, fStop, ppd := parseTriple(arg, "-ac")
	op, err := analysis.OP(n, nil)
	if err != nil {
		fail(err)
	}
	// The sweep is bit-identical for any worker count, so parallelism is
	// free to follow the machine size.
	workers := runtime.GOMAXPROCS(0)
	statACWorkers.Set(int64(workers))
	res, err := analysis.ACDecadeWorkers(n, op, fStart, fStop, ppd, workers, nil)
	if err != nil {
		fail(err)
	}
	statAnalyses.Add(1)
	statNewton.Add(int64(op.Iterations))
	statSolves.Add(int64(len(res.Freqs)))
	fmt.Printf("# freq_hz")
	for _, p := range probes {
		fmt.Printf(" mag_db(%s) phase_deg(%s)", p, p)
	}
	fmt.Println()
	cols := make([][]complex128, len(probes))
	for i, p := range probes {
		if cols[i], err = res.V(p); err != nil {
			fail(err)
		}
	}
	for k, f := range res.Freqs {
		fmt.Printf("%.6g", f)
		for i := range probes {
			fmt.Printf(" %.4f %.3f", measure.GainDB(cols[i][k]), measure.PhaseDeg(cols[i][k]))
		}
		fmt.Println()
	}
}

func runDC(n *circuit.Netlist, probes []string, arg string) {
	parts := strings.Split(arg, ":")
	if len(parts) != 4 {
		fail(fmt.Errorf("-dc wants source:start:stop:points, got %q", arg))
	}
	src := parts[0]
	start, err := netlist.ParseValue(parts[1])
	if err != nil {
		fail(err)
	}
	stop, err := netlist.ParseValue(parts[2])
	if err != nil {
		fail(err)
	}
	npts, err := strconv.Atoi(parts[3])
	if err != nil || npts < 2 {
		fail(fmt.Errorf("-dc: bad point count %q", parts[3]))
	}
	pts, err := analysis.DCSweep(n, src, num.Linspace(start, stop, npts), nil)
	if err != nil {
		fail(err)
	}
	statAnalyses.Add(1)
	statSolves.Add(int64(len(pts)))
	fmt.Printf("# %s", src)
	for _, p := range probes {
		fmt.Printf(" V(%s)", p)
	}
	fmt.Println()
	for _, pt := range pts {
		fmt.Printf("%.6g", pt.Value)
		for _, p := range probes {
			v, err := pt.OP.V(p)
			if err != nil {
				fail(err)
			}
			fmt.Printf(" %.6g", v)
		}
		fmt.Println()
	}
}

func runNoise(n *circuit.Netlist, arg string) {
	parts := strings.Split(arg, ":")
	if len(parts) != 4 {
		fail(fmt.Errorf("-noise wants outnode:fstart:fstop:ppd, got %q", arg))
	}
	outNode := parts[0]
	fStart, err := netlist.ParseValue(parts[1])
	if err != nil {
		fail(err)
	}
	fStop, err := netlist.ParseValue(parts[2])
	if err != nil {
		fail(err)
	}
	ppd, err := strconv.Atoi(parts[3])
	if err != nil || ppd < 1 {
		fail(fmt.Errorf("-noise: bad points per decade %q", parts[3]))
	}
	op, err := analysis.OP(n, nil)
	if err != nil {
		fail(err)
	}
	decades := math.Log10(fStop / fStart)
	npts := int(math.Ceil(decades*float64(ppd))) + 1
	if npts < 2 {
		npts = 2
	}
	res, err := analysis.Noise(n, op, outNode, num.Logspace(fStart, fStop, npts))
	if err != nil {
		fail(err)
	}
	statAnalyses.Add(1)
	statNewton.Add(int64(op.Iterations))
	statSolves.Add(int64(len(res.Freqs)))
	fmt.Printf("# freq_hz vnoise_v_per_rthz\n")
	for i, f := range res.Freqs {
		fmt.Printf("%.6g %.6g\n", f, math.Sqrt(res.OutputPSD[i]))
	}
	fmt.Printf("# integrated rms over sweep: %.6g V\n", res.TotalRMS)
}

func runTran(n *circuit.Netlist, probes []string, arg string) {
	parts := strings.Split(arg, ":")
	if len(parts) != 2 {
		fail(fmt.Errorf("-tran wants tstop:tstep, got %q", arg))
	}
	tStop, err := netlist.ParseValue(parts[0])
	if err != nil {
		fail(err)
	}
	tStep, err := netlist.ParseValue(parts[1])
	if err != nil {
		fail(err)
	}
	res, err := analysis.Tran(n, analysis.TranOptions{TStop: tStop, TStep: tStep})
	if err != nil {
		fail(err)
	}
	statAnalyses.Add(1)
	statSolves.Add(int64(len(res.Times)))
	fmt.Printf("# time_s")
	for _, p := range probes {
		fmt.Printf(" V(%s)", p)
	}
	fmt.Println()
	cols := make([][]float64, len(probes))
	for i, p := range probes {
		if cols[i], err = res.V(p); err != nil {
			fail(err)
		}
	}
	// Print at most ~1000 rows to keep output usable.
	stride := int(math.Max(1, float64(len(res.Times))/1000))
	for k := 0; k < len(res.Times); k += stride {
		fmt.Printf("%.6g", res.Times[k])
		for i := range probes {
			fmt.Printf(" %.6g", cols[i][k])
		}
		fmt.Println()
	}
}
