// Command soak is a long-duration stress harness for the ayd service:
// it drives a *separate* ayd process over real TCP with mixed traffic —
// open-loop yield queries plus periodic model-building flow submissions
// — while sampling the server's resident set size, goroutine count and
// tail latency over time, and fails when any of them drifts beyond its
// threshold. It is the leak hunter the in-process benchmarks cannot be:
// a goroutine leaked per request, a connection left undrained or an RSS
// creep under sustained load only shows up across minutes of wall
// clock against a real network stack.
//
// Usage:
//
//	soak -bin ./bin/ayd [-duration 60s] [-qps 500] [-sample 2s]
//	     [-flow-every 15s] [-o benchmarks/SOAK.json]
//	soak -addr 127.0.0.1:8080 ...   # target an already-running server
//
// With -bin, soak picks a free loopback port, spawns `ayd serve -store
// mem` on it, reads RSS from the child's /proc entry as well as from
// its /metrics export, and tears the process down at the end. With
// -addr it attaches to an externally managed server and relies on
// /metrics alone.
//
// Verdicts (evaluated on samples taken after the warmup fraction, so
// pool growth and first-touch allocation don't count as leaks):
//
//   - goroutines: last sample minus post-warmup baseline must not
//     exceed -max-goroutine-growth
//   - RSS: growth over the baseline must stay under -max-rss-pct
//   - p99: the median of late-window p99s must not exceed the median of
//     early post-warmup windows by more than -max-p99-drift-pct
//   - errors: the HTTP error rate must stay under 1%
//
// Exit status: 0 pass, 1 threshold exceeded or harness failure.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
	"analogyield/internal/server/client"
)

// sample is one periodic observation of the target process.
type sample struct {
	ElapsedSec float64 `json:"elapsed_s"`
	Goroutines int64   `json:"goroutines"`
	RSSBytes   int64   `json:"rss_bytes"`
	// Window statistics since the previous sample.
	WindowRequests int64   `json:"window_requests"`
	WindowP99Ms    float64 `json:"window_p99_ms"`
}

// report is the machine-readable outcome (benchmarks/SOAK.json).
type report struct {
	Target      string                 `json:"target"`
	Spawned     bool                   `json:"spawned"`
	DurationSec float64                `json:"duration_s"`
	TargetQPS   float64                `json:"target_qps"`
	Requests    int64                  `json:"requests"`
	Errors      int64                  `json:"errors"`
	Shed        int64                  `json:"shed"`
	Flows       int                    `json:"flows_submitted"`
	Samples     []sample               `json:"samples"`
	Latency     core.HistogramSnapshot `json:"latency"`

	BaselineGoroutines int64   `json:"baseline_goroutines"`
	FinalGoroutines    int64   `json:"final_goroutines"`
	BaselineRSSBytes   int64   `json:"baseline_rss_bytes"`
	FinalRSSBytes      int64   `json:"final_rss_bytes"`
	EarlyP99Ms         float64 `json:"early_p99_ms"`
	LateP99Ms          float64 `json:"late_p99_ms"`

	Failures []string `json:"failures"`
	Pass     bool     `json:"pass"`
}

func main() {
	var (
		bin       = flag.String("bin", "", "path to the ayd binary to spawn (exclusive with -addr)")
		addr      = flag.String("addr", "", "address of an already-running ayd server (exclusive with -bin)")
		duration  = flag.Duration("duration", 60*time.Second, "soak length")
		qps       = flag.Float64("qps", 500, "target query arrival rate (open loop)")
		inflight  = flag.Int("inflight", 128, "max concurrent queries; arrivals beyond it are shed")
		sampleDur = flag.Duration("sample", 2*time.Second, "sampling cadence for RSS/goroutines/window p99")
		flowEvery = flag.Duration("flow-every", 15*time.Second, "cadence of flow-job submissions (0 = queries only)")
		model     = flag.String("model", "soak", "name the synthetic query model is installed under")
		warmup    = flag.Float64("warmup", 0.25, "fraction of the duration excluded from leak baselines")
		maxGoro   = flag.Int64("max-goroutine-growth", 50, "max goroutine growth over the post-warmup baseline")
		maxRSSPct = flag.Float64("max-rss-pct", 35, "max RSS growth percent over the post-warmup baseline")
		maxP99Pct = flag.Float64("max-p99-drift-pct", 300, "max late-vs-early p99 drift percent")
		out       = flag.String("o", "", "write the JSON report here (default stdout)")
		serverLog = flag.Bool("server-log", false, "pass the spawned server's stderr through (one line per request; noisy)")
	)
	flag.Parse()
	if (*bin == "") == (*addr == "") {
		fmt.Fprintln(os.Stderr, "soak: exactly one of -bin or -addr is required")
		os.Exit(1)
	}
	rep, err := run(*bin, *addr, *duration, *qps, *inflight, *sampleDur, *flowEvery, *model, *warmup, *serverLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
	evaluate(rep, *maxGoro, *maxRSSPct, *maxP99Pct)
	if err := emit(rep, *out); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "soak: FAIL: %s\n", strings.Join(rep.Failures, "; "))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "soak: PASS — %d requests, goroutines %d→%d, RSS %.1f→%.1f MiB, p99 %.2f→%.2fms\n",
		rep.Requests, rep.BaselineGoroutines, rep.FinalGoroutines,
		float64(rep.BaselineRSSBytes)/(1<<20), float64(rep.FinalRSSBytes)/(1<<20),
		rep.EarlyP99Ms, rep.LateP99Ms)
}

func run(bin, addr string, duration time.Duration, qps float64, inflight int,
	sampleDur, flowEvery time.Duration, model string, warmup float64, serverLog bool) (*report, error) {

	rep := &report{DurationSec: duration.Seconds(), TargetQPS: qps}
	var childPid int
	if bin != "" {
		port, err := freePort()
		if err != nil {
			return nil, err
		}
		addr = fmt.Sprintf("127.0.0.1:%d", port)
		cmd := exec.Command(bin, "serve", "-addr", addr, "-store", "mem", "-workers", "1")
		if serverLog {
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("spawning %s: %w", bin, err)
		}
		childPid = cmd.Process.Pid
		rep.Spawned = true
		defer func() {
			cmd.Process.Signal(os.Interrupt) //nolint:errcheck
			done := make(chan struct{})
			go func() { cmd.Wait(); close(done) }() //nolint:errcheck
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				cmd.Process.Kill() //nolint:errcheck // drain hung; reap hard
				<-done
			}
		}()
	}
	base := "http://" + addr
	rep.Target = base

	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        inflight,
		MaxIdleConnsPerHost: inflight,
	}}
	if err := waitReady(hc, base, 10*time.Second); err != nil {
		return nil, err
	}
	cl := client.New(base, client.WithHTTPClient(hc))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := cl.InstallModel(ctx, syntheticModel(model)); err != nil {
		return nil, fmt.Errorf("installing query model: %w", err)
	}
	bodies, err := queryBodies(model)
	if err != nil {
		return nil, err
	}

	var (
		total    core.Histogram
		window   atomic.Pointer[core.Histogram]
		requests atomic.Int64
		errs     atomic.Int64
		shed     atomic.Int64
		wg       sync.WaitGroup
	)
	window.Store(&core.Histogram{})

	// Query loop: open-loop arrivals exactly like cmd/aydload — the
	// clock schedules request i at start+i·interval regardless of how
	// the server is doing.
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		sem := make(chan struct{}, inflight)
		var inner sync.WaitGroup
		defer inner.Wait()
		endpoint := base + "/v1/yield/query"
		interval := time.Duration(float64(time.Second) / qps)
		next := start
		for i := 0; time.Since(start) < duration; i++ {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			select {
			case sem <- struct{}{}:
			default:
				shed.Add(1)
				continue
			}
			inner.Add(1)
			go func(body []byte) {
				defer inner.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				resp, err := hc.Post(endpoint, "application/json", bytes.NewReader(body))
				requests.Add(1)
				if err != nil {
					errs.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
				resp.Body.Close()
				el := time.Since(t0)
				total.Observe(el)
				window.Load().Observe(el)
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
			}(bodies[i%len(bodies)])
		}
	}()

	// Flow loop: periodic small model-building jobs keep the worker
	// pool, checkpointing and SSE machinery exercised while queries
	// hammer the hot path. A fixed seed makes every artefact identical,
	// so the content-addressed store does not grow across submissions —
	// growth that does show up is a leak, not workload.
	if flowEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(flowEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if time.Since(start) >= duration {
						return
					}
					_, err := cl.SubmitFlow(ctx, api.FlowRequest{
						TenantRef:   api.TenantRef{Model: "soakflow"},
						Problem:     "ota",
						PopSize:     16,
						Generations: 3,
						MCSamples:   16,
						Workers:     1,
						Seed:        7,
					})
					if err == nil {
						rep.Flows++
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// Sampler: swap the window histogram, scrape /metrics, read the
	// child's /proc entry as the RSS fallback.
	for elapsed := time.Duration(0); elapsed < duration; {
		step := sampleDur
		if rem := duration - elapsed; rem < step {
			step = rem
		}
		time.Sleep(step)
		elapsed = time.Since(start)
		prev := window.Swap(&core.Histogram{})
		snap := prev.Snapshot()
		goro, rss := scrape(hc, base)
		if rss == 0 && childPid != 0 {
			rss = procRSS(childPid)
		}
		rep.Samples = append(rep.Samples, sample{
			ElapsedSec:     elapsed.Seconds(),
			Goroutines:     goro,
			RSSBytes:       rss,
			WindowRequests: snap.Count,
			WindowP99Ms:    snap.P99Millis,
		})
	}
	wg.Wait()
	cancel()

	rep.Requests = requests.Load()
	rep.Errors = errs.Load()
	rep.Shed = shed.Load()
	rep.Latency = total.Snapshot()
	summarize(rep, warmup)
	return rep, nil
}

// summarize derives the leak/drift figures from the sample series.
func summarize(rep *report, warmup float64) {
	if len(rep.Samples) == 0 {
		return
	}
	warmSec := warmup * rep.DurationSec
	warm := rep.Samples
	for i, s := range rep.Samples {
		if s.ElapsedSec >= warmSec {
			warm = rep.Samples[i:]
			break
		}
	}
	baseline, final := warm[0], warm[len(warm)-1]
	rep.BaselineGoroutines, rep.FinalGoroutines = baseline.Goroutines, final.Goroutines
	rep.BaselineRSSBytes, rep.FinalRSSBytes = baseline.RSSBytes, final.RSSBytes

	// p99 drift: median of the late half of post-warmup windows vs the
	// early half — medians so one GC pause or flow start doesn't decide
	// the verdict.
	var p99s []float64
	for _, s := range warm {
		if s.WindowRequests > 0 {
			p99s = append(p99s, s.WindowP99Ms)
		}
	}
	if n := len(p99s); n >= 2 {
		rep.EarlyP99Ms = median(p99s[:n/2])
		rep.LateP99Ms = median(p99s[n/2:])
	}
}

func evaluate(rep *report, maxGoro int64, maxRSSPct, maxP99Pct float64) {
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	if rep.Requests == 0 {
		fail("no requests completed")
	} else if rate := float64(rep.Errors) / float64(rep.Requests); rate > 0.01 {
		fail("error rate %.2f%% exceeds 1%%", 100*rate)
	}
	if g := rep.FinalGoroutines - rep.BaselineGoroutines; g > maxGoro {
		fail("goroutines grew by %d (baseline %d, max %d)", g, rep.BaselineGoroutines, maxGoro)
	}
	if rep.BaselineRSSBytes > 0 {
		pct := 100 * float64(rep.FinalRSSBytes-rep.BaselineRSSBytes) / float64(rep.BaselineRSSBytes)
		if pct > maxRSSPct {
			fail("RSS grew by %.1f%% (baseline %.1f MiB, max %.0f%%)",
				pct, float64(rep.BaselineRSSBytes)/(1<<20), maxRSSPct)
		}
	}
	if rep.EarlyP99Ms > 0 {
		pct := 100 * (rep.LateP99Ms - rep.EarlyP99Ms) / rep.EarlyP99Ms
		if pct > maxP99Pct {
			fail("p99 drifted by %.0f%% (%.2fms → %.2fms, max %.0f%%)",
				pct, rep.EarlyP99Ms, rep.LateP99Ms, maxP99Pct)
		}
	}
	rep.Pass = len(rep.Failures) == 0
	if rep.Failures == nil {
		rep.Failures = []string{}
	}
}

func emit(rep *report, out string) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// scrape pulls go_goroutines and process_resident_memory_bytes out of
// the target's Prometheus export.
func scrape(hc *http.Client, base string) (goroutines, rss int64) {
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "go_goroutines "); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				goroutines = int64(f)
			}
		}
		if v, ok := strings.CutPrefix(line, "process_resident_memory_bytes "); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				rss = int64(f)
			}
		}
	}
	return goroutines, rss
}

// procRSS reads a process's VmRSS from /proc (Linux; 0 elsewhere).
func procRSS(pid int) int64 {
	b, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if v, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			fields := strings.Fields(v)
			if len(fields) >= 1 {
				if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	return 0
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func waitReady(hc *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := hc.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not ready within %s", base, timeout)
}

func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

// syntheticModel is the same analytic 64-point front cmd/aydload and
// the server tests use, shipped over the install API.
func syntheticModel(name string) api.InstallModelRequest {
	const n = 64
	pts := make([]api.ModelPoint, n)
	for i := range pts {
		x := float64(i) / float64(n-1)
		pts[i] = api.ModelPoint{
			Params:   []float64{10 + 50*x, 10, 10},
			Perf:     [2]float64{45 + 10*x, 85 - 12*x},
			DeltaPct: [2]float64{1.0 + 0.2*x, 0.5 + 0.1*x},
		}
	}
	return api.InstallModelRequest{
		Name:           name,
		ObjectiveNames: []string{"gain_db", "pm_deg"},
		ParamNames:     []string{"P1", "P2", "P3"},
		ParamUnits:     []string{"um", "um", "um"},
		Points:         pts,
	}
}

// queryBodies pre-encodes a rotating set of queries over the synthetic
// model's modelled domains (deterministic: same bodies every run).
func queryBodies(model string) ([][]byte, error) {
	rng := rand.New(rand.NewSource(1))
	bodies := make([][]byte, 64)
	for i := range bodies {
		req := api.QueryRequest{
			TenantRef: api.TenantRef{Model: model},
			Specs: [2]api.Spec{
				{Name: "gain_db", Sense: ">=", Bound: 45 + (0.10+0.40*rng.Float64())*10},
				{Name: "pm_deg", Sense: ">=", Bound: 73 + (0.02+0.10*rng.Float64())*12},
			},
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}
