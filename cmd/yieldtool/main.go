// Command yieldtool performs the paper's yield-targeted design query
// (Table 3) against a saved model: given required gain and phase-margin
// bounds, it interpolates the variation at each bound, guard-bands the
// targets, and prints the interpolated designable parameters. With
// -verify it also runs the transistor-level simulation at the selected
// parameters and reports the Table 4 comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"

	"analogyield/internal/core"
	"analogyield/internal/montecarlo"
	"analogyield/internal/ota"
	"analogyield/internal/process"
	"analogyield/internal/yield"
)

func main() {
	var (
		dir    = flag.String("model", "otaflow-out", "directory holding a saved model (front.tbl)")
		gain   = flag.Float64("gain", 50, "required minimum open-loop gain, dB")
		pm     = flag.Float64("pm", 80, "required minimum phase margin, deg")
		verify = flag.Bool("verify", false, "simulate the transistor OTA at the interpolated parameters")
		mcVer  = flag.Int("mc", 0, "with -verify: Monte Carlo samples for a yield check (0 disables)")
		mcStr  = flag.String("mc-strategy", "", "with -mc: estimator — naive (default), is, surrogate, is+surrogate")
	)
	flag.Parse()

	// SIGINT cancels the (optional) Monte Carlo verification run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	m, err := core.LoadModel(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yieldtool:", err)
		os.Exit(1)
	}
	lo, hi := m.Domain()
	fmt.Printf("Model: %d points, %s in [%.2f, %.2f]\n",
		len(m.Points), m.ObjectiveNames[0], lo, hi)

	spec0 := yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: *gain}
	spec1 := yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: *pm}
	d, err := m.DesignFor(spec0, spec1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yieldtool:", err)
		os.Exit(1)
	}

	// Table 3-style report.
	fmt.Printf("\nInterpolation example (paper Table 3):\n")
	fmt.Printf("  %-14s %-22s %-12s %-16s\n", "Performance:", "Required:", "Variation:", "New target:")
	fmt.Printf("  %-14s > %-20.4g %-11.2f%% %-16.4f\n", "Gain (dB)", spec0.Bound, d.DeltaPct[0], d.Target[0])
	fmt.Printf("  %-14s > %-20.4g %-11.2f%% %-16.4f\n", "PM (deg)", spec1.Bound, d.DeltaPct[1], d.Target[1])
	gl, gh := yield.Range(d.Target[0], d.DeltaPct[0])
	fmt.Printf("  At the target, gain spans [%.3f, %.3f] dB over process extremes.\n", gl, gh)

	fmt.Printf("\nInterpolated design parameters:\n")
	for i, name := range m.ParamNames {
		fmt.Printf("  %-4s = %8.3f %s\n", name, d.Params[i], m.ParamUnits[i])
	}

	if !*verify {
		return
	}
	prob := core.NewOTAProblem()
	params, err := prob.ParamsFromTableValues(d.Params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yieldtool:", err)
		os.Exit(1)
	}
	perf, err := ota.DefaultConfig().Evaluate(params, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yieldtool: verification:", err)
		os.Exit(1)
	}
	fmt.Printf("\nPerformance comparison (paper Table 4):\n")
	fmt.Printf("  %-14s %-16s %-16s %-8s\n", "Function", "Transistor", "Model", "%error")
	fmt.Printf("  %-14s %-16.2f %-16.2f %-8.2f\n", "Gain (dB)", perf.GainDB, d.Target[0],
		100*math.Abs(perf.GainDB-d.Target[0])/perf.GainDB)
	fmt.Printf("  %-14s %-16.2f %-16.2f %-8.2f\n", "Phase margin", perf.PMDeg, d.Target[1],
		100*math.Abs(perf.PMDeg-d.Target[1])/perf.PMDeg)

	if *mcVer > 0 {
		genes, err := prob.GenesForDesign(d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yieldtool:", err)
			os.Exit(1)
		}
		strategy, err := montecarlo.ParseStrategy(*mcStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yieldtool:", err)
			os.Exit(2)
		}
		ver, err := core.VerifyDesignYieldMC(ctx, prob, process.C35(), genes, spec0, spec1, *mcVer, 1, strategy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yieldtool: yield verification:", err)
			os.Exit(1)
		}
		fmt.Printf("\nMonte Carlo verification (%d samples): yield %.1f%%\n",
			ver.Samples, 100*ver.Yield)
		if strategy != montecarlo.StrategyNaive {
			fmt.Printf("  %s estimator: %d circuit simulations, effective sample size %.0f\n",
				ver.Strategy, ver.FullEvals, ver.ESS)
		}
	}
}
