package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"analogyield/internal/process"
)

// threeObjProblem violates the two-objective table-model contract.
type threeObjProblem struct{ synthProblem }

func (threeObjProblem) ObjectiveNames() []string { return []string{"a", "b", "c"} }

func TestFlowConfigValidate(t *testing.T) {
	ok := FlowConfig{Problem: synthProblem{}, Proc: process.C35()}
	if err := ok.Validate(); err != nil {
		t.Fatalf("zero-value budgets rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*FlowConfig)
		want string
	}{
		{"nil problem", func(c *FlowConfig) { c.Problem = nil }, "nil problem"},
		{"nil process", func(c *FlowConfig) { c.Proc = nil }, "nil process"},
		{"three objectives", func(c *FlowConfig) { c.Problem = threeObjProblem{} }, "2 objectives"},
		{"negative pop", func(c *FlowConfig) { c.PopSize = -1 }, "PopSize"},
		{"negative generations", func(c *FlowConfig) { c.Generations = -3 }, "Generations"},
		{"negative mc", func(c *FlowConfig) { c.MCSamples = -200 }, "MCSamples"},
		{"negative workers", func(c *FlowConfig) { c.Workers = -2 }, "Workers"},
		{"negative dropped fraction", func(c *FlowConfig) { c.MaxDroppedFraction = -0.5 }, "MaxDroppedFraction"},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// RunFlow must route through Validate.
	if _, err := RunFlow(context.Background(), FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(), PopSize: -1,
	}); err == nil || !strings.Contains(err.Error(), "PopSize") {
		t.Errorf("RunFlow bypassed Validate: %v", err)
	}
}

func TestFlowConfigDefaults(t *testing.T) {
	// Zero values select the documented paper defaults.
	c := FlowConfig{}.withDefaults()
	if c.PopSize != 100 || c.Generations != 100 || c.MCSamples != 200 {
		t.Errorf("paper budgets not defaulted: pop=%d gen=%d mc=%d",
			c.PopSize, c.Generations, c.MCSamples)
	}
	if c.MaxDroppedFraction != 0.25 {
		t.Errorf("MaxDroppedFraction default = %g, want 0.25", c.MaxDroppedFraction)
	}
	if c.CheckpointEvery != 16 {
		t.Errorf("CheckpointEvery default = %d, want 16", c.CheckpointEvery)
	}
	// Explicit values survive.
	c = FlowConfig{PopSize: 7, Generations: 9, MCSamples: 11}.withDefaults()
	if c.PopSize != 7 || c.Generations != 9 || c.MCSamples != 11 {
		t.Error("explicit budgets overridden")
	}
}

func TestRunFlowCancelMidMOO(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const pop = 10
	res, err := RunFlow(ctx, FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: pop, Generations: 50, MCSamples: 10, Seed: 4,
		Obs: ObserverFunc(func(e Event) {
			if g, ok := e.(GenerationDone); ok && g.Gen == 2 {
				cancel()
			}
		}),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result not preserved")
	}
	// Cancellation latency is bounded by one generation: the archive
	// holds exactly the generations evaluated before the cancel took
	// effect (gen 1-2, since the GA checks ctx before evaluating gen 3).
	if got := len(res.Archive); got != 2*pop {
		t.Errorf("partial archive has %d evaluations, want %d", got, 2*pop)
	}
	if res.Model != nil {
		t.Error("cancelled flow produced a model")
	}
}

func TestRunFlowCancelMidMC(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ckpt := filepath.Join(t.TempDir(), "flow.ckpt")
	mcDone := 0
	res, err := RunFlow(ctx, FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 30, Seed: 1,
		Checkpoint: ckpt,
		Obs: ObserverFunc(func(e Event) {
			if _, ok := e.(MCPointDone); ok {
				mcDone++
				if mcDone == 2 {
					cancel()
				}
			}
		}),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Points) != 2 {
		t.Fatalf("partial result should hold the 2 completed points, got %+v", res)
	}
	// Cancellation must have left a resumable checkpoint with the MOO
	// stage plus both completed points.
	ck, lerr := loadCheckpoint(ckpt)
	if lerr != nil {
		t.Fatalf("no checkpoint after cancel: %v", lerr)
	}
	if len(ck.Done) != 2 || len(ck.Archive) != 24*12 {
		t.Errorf("checkpoint holds %d MC points / %d archive entries, want 2 / 288",
			len(ck.Done), len(ck.Archive))
	}
}

func TestRunFlowResumeBitIdentical(t *testing.T) {
	base := FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 30, Seed: 1,
	}
	want, err := RunFlow(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt a checkpointed run after 3 MC points...
	ckpt := filepath.Join(t.TempDir(), "flow.ckpt")
	cfg := base
	cfg.Checkpoint = ckpt
	cfg.CheckpointEvery = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mcDone := 0
	cfg.Obs = ObserverFunc(func(e Event) {
		if _, ok := e.(MCPointDone); ok {
			mcDone++
			if mcDone == 3 {
				cancel()
			}
		}
	})
	if _, err := RunFlow(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt run: err = %v", err)
	}

	// ...then resume and demand bit-identical results.
	cfg.Obs = nil
	resumedPts := 0
	freshPts := 0
	cfg.Obs = ObserverFunc(func(e Event) {
		if p, ok := e.(MCPointDone); ok {
			if p.Resumed {
				resumedPts++
			} else {
				freshPts++
			}
		}
	})
	got, err := RunFlow(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resumed {
		t.Error("resumed flow not flagged Resumed")
	}
	if resumedPts != 3 {
		t.Errorf("%d points replayed from checkpoint, want 3", resumedPts)
	}
	if freshPts != len(want.FrontIdx)-3 {
		t.Errorf("%d points re-simulated, want %d", freshPts, len(want.FrontIdx)-3)
	}
	if !reflect.DeepEqual(got.FrontIdx, want.FrontIdx) {
		t.Error("FrontIdx differs after resume")
	}
	if !reflect.DeepEqual(got.Archive, want.Archive) {
		t.Error("archive differs after resume")
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Error("MC points differ after resume (bit-identity violated)")
	}
	if got.Evaluations != want.Evaluations || got.MCSimulations != want.MCSimulations {
		t.Errorf("counters differ: evals %d/%d, mc %d/%d",
			got.Evaluations, want.Evaluations, got.MCSimulations, want.MCSimulations)
	}
	if !reflect.DeepEqual(got.Model.Points, want.Model.Points) {
		t.Error("model tables differ after resume")
	}
	lo, hi := want.Model.Domain()
	for _, x := range []float64{lo, (lo + hi) / 2, hi} {
		a, aerr := want.Model.VariationAt(0, x)
		b, berr := got.Model.VariationAt(0, x)
		if aerr != nil || berr != nil || a != b {
			t.Errorf("VariationAt(%g): %g/%v vs %g/%v", x, a, aerr, b, berr)
		}
	}
	// The finished flow removes its checkpoint.
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint not removed after completion: %v", err)
	}
}

func TestRunFlowCheckpointFingerprintMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "flow.ckpt")
	cfg := FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 30, Seed: 1,
		Checkpoint: ckpt,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Obs = ObserverFunc(func(e Event) {
		if _, ok := e.(MCPointDone); ok {
			cancel()
		}
	})
	if _, err := RunFlow(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt run: err = %v", err)
	}
	cfg.Obs = nil
	cfg.Seed = 2 // different deterministic configuration
	_, err := RunFlow(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "different flow configuration") {
		t.Fatalf("mismatched checkpoint accepted: %v", err)
	}
}

// droppyProblem fails every Monte Carlo sample for designs in the upper
// half of the first gene, so those Pareto points are dropped.
type droppyProblem struct{ synthProblem }

func (p droppyProblem) Evaluate(g []float64, s *process.Sample) ([]float64, error) {
	if s != nil && g[0] > 0.5 {
		return nil, fmt.Errorf("no convergence at g0=%.3f", g[0])
	}
	return p.synthProblem.Evaluate(g, s)
}

func TestRunFlowDroppedPoints(t *testing.T) {
	var dropped []int
	cfg := FlowConfig{
		Problem: droppyProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 20, Seed: 1,
		MaxDroppedFraction: 1, // tolerate everything
		Obs: ObserverFunc(func(e Event) {
			if d, ok := e.(PointDropped); ok {
				if d.Err == nil {
					t.Error("PointDropped without error")
				}
				dropped = append(dropped, d.Index)
			}
		}),
	}
	res, err := RunFlow(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedPoints == 0 {
		t.Fatal("synthetic drop problem dropped nothing; front never reaches g0>0.5?")
	}
	if len(dropped) != res.DroppedPoints {
		t.Errorf("%d PointDropped events, %d DroppedPoints", len(dropped), res.DroppedPoints)
	}
	if res.DroppedPoints+len(res.Points) != len(res.FrontIdx) {
		t.Errorf("dropped %d + kept %d != front %d",
			res.DroppedPoints, len(res.Points), len(res.FrontIdx))
	}
	if res.Metrics.DroppedPoints != int64(res.DroppedPoints) {
		t.Errorf("metrics dropped %d != result %d", res.Metrics.DroppedPoints, res.DroppedPoints)
	}

	// A tight budget turns the same run into an explicit failure.
	cfg.Obs = nil
	cfg.MaxDroppedFraction = 1e-9
	_, err = RunFlow(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("over-budget drops accepted: %v", err)
	}
}

func TestRunFlowEventStream(t *testing.T) {
	var events []Event
	res, err := RunFlow(context.Background(), FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 10, Generations: 5, MCSamples: 10, Seed: 2,
		Obs: ObserverFunc(func(e Event) { events = append(events, e) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	var starts, ends []Stage
	gens, pts := 0, 0
	for _, e := range events {
		switch ev := e.(type) {
		case StageStart:
			starts = append(starts, ev.Stage)
		case StageEnd:
			ends = append(ends, ev.Stage)
		case GenerationDone:
			gens++
			if ev.TotalEvals != 50 || ev.Evals > ev.TotalEvals {
				t.Errorf("GenerationDone accounting wrong: %+v", ev)
			}
		case MCPointDone:
			pts++
			if ev.Resumed {
				t.Error("fresh run claims resumed points")
			}
			if ev.Total != len(res.FrontIdx) {
				t.Errorf("MCPointDone.Total = %d, want %d", ev.Total, len(res.FrontIdx))
			}
		}
	}
	wantStages := []Stage{StageMOO, StageMC, StageTables}
	if !reflect.DeepEqual(starts, wantStages) || !reflect.DeepEqual(ends, wantStages) {
		t.Errorf("stage sequence: starts %v ends %v", starts, ends)
	}
	if gens != 5 {
		t.Errorf("%d GenerationDone events, want 5", gens)
	}
	if pts != len(res.FrontIdx) {
		t.Errorf("%d MCPointDone events, want %d", pts, len(res.FrontIdx))
	}
	// First event opens the MOO stage, last closes the tables stage.
	if _, ok := events[0].(StageStart); !ok {
		t.Errorf("first event %T, want StageStart", events[0])
	}
	if _, ok := events[len(events)-1].(StageEnd); !ok {
		t.Errorf("last event %T, want StageEnd", events[len(events)-1])
	}
}

func TestRunFlowMultiObserver(t *testing.T) {
	// Several sinks can share one flow's event stream via MultiObserver
	// (a server fans events out to its log, metrics and subscribers).
	gens, typed := 0, 0
	_, err := RunFlow(context.Background(), FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 10, Generations: 5, MCSamples: 10, Seed: 2,
		Obs: MultiObserver(
			ObserverFunc(func(e Event) {
				if _, ok := e.(GenerationDone); ok {
					gens++
				}
			}),
			nil, // nil sinks are skipped, not called
			ObserverFunc(func(Event) { typed++ }),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if gens != 5 {
		t.Errorf("first observer saw %d generations, want 5", gens)
	}
	if typed == 0 {
		t.Error("second observer starved")
	}
}

func TestRunFlowMetrics(t *testing.T) {
	reg := &Metrics{}
	res, err := RunFlow(context.Background(), FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 10, Generations: 5, MCSamples: 10, Seed: 2,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Flows != 1 {
		t.Errorf("flows = %d", snap.Flows)
	}
	if snap.Evaluations != 50 {
		t.Errorf("evaluations = %d, want 50", snap.Evaluations)
	}
	if snap.MCSimulations != int64(len(res.FrontIdx)*10) {
		t.Errorf("mc simulations = %d, want %d", snap.MCSimulations, len(res.FrontIdx)*10)
	}
	if snap.CacheHits+snap.CacheMisses != 50 {
		t.Errorf("cache lookups = %d, want 50", snap.CacheHits+snap.CacheMisses)
	}
	if snap.MOOSeconds <= 0 || snap.MCSeconds <= 0 {
		t.Errorf("stage clocks not recorded: %+v", snap)
	}
	if !reflect.DeepEqual(res.Metrics, snap) {
		t.Error("FlowResult.Metrics is not the end-of-run snapshot")
	}
	// Shared registries accumulate across flows.
	if _, err := RunFlow(context.Background(), FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 10, Generations: 5, MCSamples: 10, Seed: 2,
		Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot(); got.Flows != 2 || got.Evaluations != 100 {
		t.Errorf("registry did not accumulate: %+v", got)
	}
	// expvar export: first publish wins, republish is a no-op.
	if !reg.Publish("test.flow.metrics") {
		t.Error("first Publish refused")
	}
	if reg.Publish("test.flow.metrics") {
		t.Error("duplicate Publish accepted")
	}
}
