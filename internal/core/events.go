package core

import "time"

// Stage identifies one stage of the flow for event reporting. The flow's
// own stages are StageMOO, StageMC and StageTables; other pipelines
// reusing the Observer machinery (e.g. the filter capacitor MOO) may
// define their own Stage values.
type Stage string

const (
	// StageMOO is the WBGA multi-objective optimisation (paper Fig 3
	// steps 1-2).
	StageMOO Stage = "moo"
	// StageMC is the per-Pareto-point Monte Carlo variation analysis
	// (steps 3-4).
	StageMC Stage = "mc"
	// StageTables is the table-model construction (step 5).
	StageTables Stage = "tables"
)

// Event is one structured progress notification from a flow. The
// concrete types are StageStart, StageEnd, GenerationDone, MCPointDone,
// MCStageStats, PointDropped, CheckpointSaved and FlowResumed. Events
// are delivered
// sequentially from the goroutine running the flow, in causal order; an
// Observer therefore needs no internal locking against the flow itself.
type Event interface{ flowEvent() }

// StageStart announces that a stage is beginning. Total is the stage's
// work budget in stage units: objective evaluations for StageMOO, Pareto
// points for StageMC, zero for StageTables.
type StageStart struct {
	Stage Stage
	Total int
}

// StageEnd closes a stage with its wall-clock duration.
type StageEnd struct {
	Stage   Stage
	Elapsed time.Duration
}

// GenerationDone reports one completed WBGA generation: the 1-based
// generation number, the cumulative evaluation count against the total
// budget, the best eq. 5 fitness of the generation, and the cumulative
// genome-cache counters.
type GenerationDone struct {
	Gen         int
	Generations int
	Evals       int
	TotalEvals  int
	BestFitness float64
	CacheHits   int
	CacheMisses int
}

// MCPointDone reports the Monte Carlo analysis of one Pareto point.
// Index is the 0-based position along the front (of Total points),
// Failures counts samples that failed to simulate, and Resumed marks
// points replayed from a checkpoint rather than re-simulated.
type MCPointDone struct {
	Index    int
	Total    int
	Perf     [2]float64
	DeltaPct [2]float64
	Failures int
	Resumed  bool
}

// MCStageStats summarises a variance-reduced Monte Carlo stage: how the
// evaluation budget was spent and how statistically effective the
// weighted samples were. It is emitted once, just before the MC
// StageEnd, and only when FlowConfig.MCStrategy is not naive — the
// naive event stream is unchanged.
type MCStageStats struct {
	Strategy string
	// Points is the number of Pareto points analysed (resumed included);
	// Samples the total per-point budgets, split into FullEvals circuit
	// simulations and Predicted surrogate answers.
	Points    int
	Samples   int
	FullEvals int
	Predicted int
	// MeanESS is the mean effective sample size per freshly analysed
	// point (zero when every point was replayed from a checkpoint).
	MeanESS float64
}

// PointDropped reports a Pareto point whose Monte Carlo analysis failed
// entirely; the point is excluded from the model and counted in
// FlowResult.DroppedPoints.
type PointDropped struct {
	Index int
	Err   error
}

// CheckpointSaved reports a successfully written checkpoint file. MCDone
// is the number of Monte Carlo points (completed or dropped) recorded in
// it; zero means the checkpoint holds only the finished MOO stage.
type CheckpointSaved struct {
	Path   string
	MCDone int
}

// FlowResumed reports that RunFlow recovered prior work from a
// checkpoint instead of recomputing it: the MOO stage plus MCDone Monte
// Carlo points.
type FlowResumed struct {
	Path   string
	MCDone int
}

func (StageStart) flowEvent()      {}
func (StageEnd) flowEvent()        {}
func (GenerationDone) flowEvent()  {}
func (MCPointDone) flowEvent()     {}
func (MCStageStats) flowEvent()    {}
func (PointDropped) flowEvent()    {}
func (CheckpointSaved) flowEvent() {}
func (FlowResumed) flowEvent()     {}

// Observer receives a flow's typed event stream. Observe is called
// synchronously from the flow goroutine: implementations should return
// quickly (hand expensive work to a channel) and must not call back into
// the running flow.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f(e).
func (f ObserverFunc) Observe(e Event) { f(e) }

// MultiObserver fans one event stream out to several observers, invoked
// in order.
func MultiObserver(obs ...Observer) Observer {
	out := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	return out
}

type multiObserver []Observer

func (m multiObserver) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}
