package core

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"analogyield/internal/montecarlo"
	"analogyield/internal/process"
	"analogyield/internal/yield"
)

// flowEvents runs a flow and returns its result plus the event stream.
func flowEvents(t *testing.T, cfg FlowConfig) (*FlowResult, []Event) {
	t.Helper()
	var events []Event
	cfg.Obs = ObserverFunc(func(e Event) { events = append(events, e) })
	res, err := RunFlow(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// stripTimings zeroes the wall-clock fields so event streams from two
// runs can be compared structurally.
func stripTimings(events []Event) []Event {
	out := make([]Event, len(events))
	for i, e := range events {
		if se, ok := e.(StageEnd); ok {
			se.Elapsed = 0
			out[i] = se
			continue
		}
		out[i] = e
	}
	return out
}

// TestNaiveStrategyMatchesDefault is the compatibility golden: an empty
// MCStrategy, the explicit "naive" spelling, and the pre-strategy
// default must produce bit-identical results and identical event
// streams, with none of the variance-reduction extras present.
func TestNaiveStrategyMatchesDefault(t *testing.T) {
	base := FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 30, Seed: 1,
	}
	defRes, defEvents := flowEvents(t, base)

	naive := base
	naive.MCStrategy = "naive"
	naiveRes, naiveEvents := flowEvents(t, naive)

	if !reflect.DeepEqual(defRes.Points, naiveRes.Points) {
		t.Error("explicit naive strategy changed the MC points")
	}
	if !reflect.DeepEqual(defRes.Archive, naiveRes.Archive) {
		t.Error("explicit naive strategy changed the archive")
	}
	if !reflect.DeepEqual(defRes.Model.Points, naiveRes.Model.Points) {
		t.Error("explicit naive strategy changed the model tables")
	}
	if !reflect.DeepEqual(stripTimings(defEvents), stripTimings(naiveEvents)) {
		t.Error("explicit naive strategy changed the event stream")
	}
	for _, events := range [][]Event{defEvents, naiveEvents} {
		for _, e := range events {
			if _, ok := e.(MCStageStats); ok {
				t.Fatal("naive flow emitted MCStageStats")
			}
		}
	}
	for _, res := range []*FlowResult{defRes, naiveRes} {
		if res.MCPredicted != 0 || res.MCMeanESS != 0 {
			t.Error("naive flow carries variance-reduction counters")
		}
		if res.Metrics.MCStrategy != "" || res.Metrics.MCPredicted != 0 || res.Metrics.MCMeanESS != 0 {
			t.Errorf("naive metrics snapshot carries strategy fields: %+v", res.Metrics)
		}
	}
	if res := smallFlow(t); !reflect.DeepEqual(res.Points, defRes.Points) {
		t.Error("default flow diverged from the smallFlow baseline")
	}
}

// TestISStrategyFlow runs the full flow under importance sampling and
// checks the diagnostics thread through result, events and metrics.
func TestISStrategyFlow(t *testing.T) {
	cfg := FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 40, Seed: 1,
		MCStrategy: "is",
	}
	res, events := flowEvents(t, cfg)
	if len(res.Points) == 0 || res.Model == nil {
		t.Fatal("IS flow produced no model")
	}
	if res.MCSimulations != len(res.Points)*40 {
		t.Errorf("MCSimulations = %d, want %d (IS does not skip evaluations)",
			res.MCSimulations, len(res.Points)*40)
	}
	if res.MCPredicted != 0 {
		t.Errorf("plain IS predicted %d samples", res.MCPredicted)
	}
	if res.MCMeanESS <= 0 || res.MCMeanESS > 40 {
		t.Errorf("MCMeanESS = %g, want in (0, 40]", res.MCMeanESS)
	}
	var stats []MCStageStats
	for _, e := range events {
		if s, ok := e.(MCStageStats); ok {
			stats = append(stats, s)
		}
	}
	if len(stats) != 1 {
		t.Fatalf("%d MCStageStats events, want 1", len(stats))
	}
	s := stats[0]
	if s.Strategy != "is" || s.Points != len(res.Points) ||
		s.FullEvals != res.MCSimulations || s.Predicted != 0 || s.MeanESS != res.MCMeanESS {
		t.Errorf("MCStageStats = %+v inconsistent with result", s)
	}
	if res.Metrics.MCStrategy != "is" {
		t.Errorf("metrics strategy = %q", res.Metrics.MCStrategy)
	}
	if res.Metrics.MCMeanESS <= 0 {
		t.Error("metrics mean ESS not recorded")
	}
	// Variation figures should agree with the naive flow's within broad
	// statistical tolerance — same model, different estimator.
	naiveRes, _ := flowEvents(t, FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 40, Seed: 1,
	})
	if len(naiveRes.Points) != len(res.Points) {
		t.Fatalf("IS flow analysed %d points, naive %d", len(res.Points), len(naiveRes.Points))
	}
	for i := range res.Points {
		a, b := res.Points[i].DeltaPct[0], naiveRes.Points[i].DeltaPct[0]
		if a <= 0 || a > 5*b+1 {
			t.Errorf("point %d: IS delta %g vs naive %g implausible", i, a, b)
		}
	}
}

// TestSurrogateStrategyFlow checks the budget bookkeeping of a
// surrogate-filtered flow: simulated plus predicted samples always add
// up to the per-point budget, and determinism across worker counts
// holds end to end.
func TestSurrogateStrategyFlow(t *testing.T) {
	run := func(workers int) *FlowResult {
		t.Helper()
		res, err := RunFlow(context.Background(), FlowConfig{
			Problem: synthProblem{}, Proc: process.C35(),
			PopSize: 24, Generations: 12, MCSamples: 120, Seed: 1,
			MCStrategy: "is+surrogate", Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(0)
	if res.MCSimulations+res.MCPredicted != len(res.Points)*120 {
		t.Errorf("simulated %d + predicted %d != budget %d",
			res.MCSimulations, res.MCPredicted, len(res.Points)*120)
	}
	other := run(1)
	if !reflect.DeepEqual(res.Points, other.Points) {
		t.Error("surrogate flow not deterministic across worker counts")
	}
	if res.MCSimulations != other.MCSimulations || res.MCPredicted != other.MCPredicted {
		t.Error("surrogate budget split differs across worker counts")
	}
}

// TestISFlowResume interrupts an importance-sampled checkpointed flow
// and resumes it, demanding bit-identical points and a consistent
// simulation count (MCSims per point persists the post-filter count).
func TestISFlowResume(t *testing.T) {
	base := FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 30, Seed: 1,
		MCStrategy: "is",
	}
	want, err := RunFlow(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "flow.ckpt")
	cfg := base
	cfg.Checkpoint = ckpt
	cfg.CheckpointEvery = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mcDone := 0
	cfg.Obs = ObserverFunc(func(e Event) {
		if _, ok := e.(MCPointDone); ok {
			mcDone++
			if mcDone == 3 {
				cancel()
			}
		}
	})
	if _, err := RunFlow(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt run: err = %v", err)
	}
	cfg.Obs = nil
	got, err := RunFlow(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resumed {
		t.Error("resumed IS flow not flagged Resumed")
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Error("IS points differ after resume (bit-identity violated)")
	}
	if got.MCSimulations != want.MCSimulations {
		t.Errorf("MCSimulations %d after resume, want %d", got.MCSimulations, want.MCSimulations)
	}
}

// TestISCheckpointRefusesNaiveResume: a checkpoint written under one
// strategy must not resume under another — the sample streams differ.
func TestISCheckpointRefusesNaiveResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "flow.ckpt")
	cfg := FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 30, Seed: 1,
		MCStrategy: "is", Checkpoint: ckpt,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Obs = ObserverFunc(func(e Event) {
		if _, ok := e.(MCPointDone); ok {
			cancel()
		}
	})
	if _, err := RunFlow(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt run: err = %v", err)
	}
	cfg.Obs = nil
	cfg.MCStrategy = "naive"
	if _, err := RunFlow(context.Background(), cfg); err == nil {
		t.Fatal("naive resume of an IS checkpoint accepted")
	}
}

func TestFlowConfigRejectsUnknownStrategy(t *testing.T) {
	cfg := FlowConfig{Problem: synthProblem{}, Proc: process.C35(), MCStrategy: "qmc"}
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown MCStrategy accepted")
	}
}

func TestVerifyDesignYieldMC(t *testing.T) {
	// Delegation: the naive MC verification path must match the
	// original API exactly.
	genes := []float64{0.5, 0, 0.5}
	spec0 := yield.Spec{Name: "gain_db", Sense: yield.AtLeast, Bound: 40}
	spec1 := yield.Spec{Name: "pm_deg", Sense: yield.AtLeast, Bound: 60}
	a, err := VerifyDesignYield(context.Background(), synthProblem{}, process.C35(), genes, spec0, spec1, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != "naive" || a.FullEvals != 200 {
		t.Errorf("naive verification diagnostics: %+v", a)
	}
	b, err := VerifyDesignYieldMC(context.Background(), synthProblem{}, process.C35(), genes, spec0, spec1, 200, 7, montecarlo.StrategyIS)
	if err != nil {
		t.Fatal(err)
	}
	if b.Strategy != "is" || b.ESS <= 0 {
		t.Errorf("IS verification diagnostics: %+v", b)
	}
	// Both estimators agree the comfortable spec is met.
	if a.Yield < 0.9 || b.Yield < 0.9 {
		t.Errorf("yields %g (naive) / %g (is), want both near 1", a.Yield, b.Yield)
	}
}
