package core

import (
	"fmt"
	"os"
	"path/filepath"

	"analogyield/internal/table"
)

// Table file names used by Save/Load. The per-quantity files mirror the
// paper's artefacts (gain_delta.tbl, pm_delta.tbl, lpN_data.tbl); the
// combined front.tbl carries everything needed to rebuild the model.
const (
	frontFile = "front.tbl"
)

// deltaFileName returns the paper-style variation file name for
// objective k ("gain_delta.tbl" for an objective named "gain_db").
func deltaFileName(objName string) string {
	return trimUnitSuffix(objName) + "_delta.tbl"
}

// paramFileName returns the paper-style parameter table name
// (lp1_data.tbl ... in the paper; here named by parameter).
func paramFileName(i int) string { return fmt.Sprintf("lp%d_data.tbl", i+1) }

func trimUnitSuffix(s string) string {
	for _, suf := range []string{"_db", "_deg", "_hz"} {
		if len(s) > len(suf) && s[len(s)-len(suf):] == suf {
			return s[:len(s)-len(suf)]
		}
	}
	return s
}

// Save writes the model's data files into dir (created if needed):
// front.tbl plus the paper-style per-quantity tables.
func (m *Model) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Combined front file.
	cols := []string{m.ObjectiveNames[0], m.ObjectiveNames[1],
		"delta_" + m.ObjectiveNames[0] + "_pct", "delta_" + m.ObjectiveNames[1] + "_pct"}
	for i, p := range m.ParamNames {
		cols = append(cols, fmt.Sprintf("%s_%s", p, m.ParamUnits[i]))
	}
	f := table.NewFile(cols...)
	for _, pt := range m.Points {
		row := []float64{pt.Perf[0], pt.Perf[1], pt.DeltaPct[0], pt.DeltaPct[1]}
		row = append(row, pt.Params...)
		if err := f.AddRow(row...); err != nil {
			return err
		}
	}
	if err := f.WriteFile(filepath.Join(dir, frontFile)); err != nil {
		return err
	}

	// Paper-style per-quantity files.
	for k := 0; k < 2; k++ {
		df := table.NewFile(m.ObjectiveNames[k], "delta_pct")
		xs, ys := m.Delta[k].Samples()
		for i := range xs {
			if err := df.AddRow(xs[i], ys[i]); err != nil {
				return err
			}
		}
		if err := df.WriteFile(filepath.Join(dir, deltaFileName(m.ObjectiveNames[k]))); err != nil {
			return err
		}
	}
	for i := range m.ParamTables {
		pf := table.NewFile(m.ObjectiveNames[0], m.ObjectiveNames[1],
			fmt.Sprintf("%s_%s", m.ParamNames[i], m.ParamUnits[i]))
		x1, x2, ys := m.ParamTables[i].Samples()
		for r := range x1 {
			if err := pf.AddRow(x1[r], x2[r], ys[r]); err != nil {
				return err
			}
		}
		if err := pf.WriteFile(filepath.Join(dir, paramFileName(i))); err != nil {
			return err
		}
	}
	return nil
}

// LoadModel rebuilds a Model from a directory written by Save. The
// objective/parameter names are recovered from front.tbl's header.
func LoadModel(dir string) (*Model, error) {
	f, err := table.ReadFile(filepath.Join(dir, frontFile))
	if err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if f.Width() < 5 || len(f.Columns) != f.Width() {
		return nil, fmt.Errorf("core: %s: need named columns (2 objectives, 2 deltas, >=1 parameter)", frontFile)
	}
	objNames := []string{f.Columns[0], f.Columns[1]}
	np := f.Width() - 4
	paramNames := make([]string, np)
	paramUnits := make([]string, np)
	for i := 0; i < np; i++ {
		name := f.Columns[4+i]
		paramNames[i] = name
		paramUnits[i] = ""
		if idx := lastUnderscore(name); idx > 0 {
			paramNames[i] = name[:idx]
			paramUnits[i] = name[idx+1:]
		}
	}
	var pts []ParetoPoint
	for _, row := range f.Rows {
		pt := ParetoPoint{
			Perf:     [2]float64{row[0], row[1]},
			DeltaPct: [2]float64{row[2], row[3]},
			Params:   append([]float64(nil), row[4:]...),
		}
		pts = append(pts, pt)
	}
	// Rebuild with no thinning: the saved points were already thinned.
	return BuildModel(pts, objNames, paramNames, paramUnits,
		ModelOptions{MaxTablePoints: len(pts)})
}

func lastUnderscore(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '_' {
			return i
		}
	}
	return -1
}
