package core

import (
	"fmt"
	"math"
	"sort"

	"analogyield/internal/spline"
	"analogyield/internal/table"
	"analogyield/internal/yield"
)

// ParetoPoint is one Pareto-optimal design with its Monte Carlo
// variation figures — one row of the paper's Table 2.
type ParetoPoint struct {
	// Params are the physical parameter values (table units, e.g. µm).
	Params []float64
	// Perf holds the two nominal performance values (e.g. gain dB, PM deg).
	Perf [2]float64
	// DeltaPct holds the MC variation Δ% of each performance
	// (100·3σ/µ, the paper's ΔGain/ΔPM columns).
	DeltaPct [2]float64
}

// Model is the combined performance + variation behavioural model: the
// lookup tables the paper loads through $table_model() with control
// string "3E" (cubic spline, no extrapolation).
type Model struct {
	// ObjectiveNames and ParamNames label the table columns.
	ObjectiveNames []string
	ParamNames     []string
	ParamUnits     []string

	// Points are the table rows, sorted by the first performance.
	Points []ParetoPoint

	// Delta[k] maps performance k → its variation Δ%
	// (gain_delta.tbl / pm_delta.tbl in the paper).
	Delta [2]*table.Model1D
	// PerfFront maps performance 0 → performance 1 along the front.
	PerfFront *table.Model1D
	// ParamTables[i] maps (perf0, perf1) → parameter i
	// (the paper's lp*_data.tbl files).
	ParamTables []*table.CurveModel2D
}

// ModelOptions tunes table construction.
type ModelOptions struct {
	// MaxTablePoints caps the number of knots per table; the Pareto set
	// is thinned to this count with even spacing in performance 0
	// (0 = default 200). Dense fronts (the paper finds 1022 points)
	// oscillate under cubic splines if every point becomes a knot.
	MaxTablePoints int
	// MinPerfSeparation merges points whose performance-0 values are
	// closer than this (default 1e-6).
	MinPerfSeparation float64
	// NaturalSpline selects the paper's exact natural-cubic "3E"
	// interpolation. The default (false) uses shape-preserving monotone
	// cubics (PCHIP) instead: identical at the knots and C1-smooth, but
	// immune to the overshoot natural splines exhibit when the front is
	// unevenly sampled. Generated Verilog-A always uses "3E" (Verilog-A
	// has no PCHIP mode).
	NaturalSpline bool
}

// ctrl returns the table interpolation control for the chosen spline
// family, always with the paper's no-extrapolation ("E") policy.
func (o ModelOptions) ctrl() table.Control {
	deg := spline.DegreeMonotoneCubic
	if o.NaturalSpline {
		deg = spline.DegreeCubic
	}
	return table.Control{Degree: deg, Extrap: table.ExtrapError}
}

func (o ModelOptions) withDefaults() ModelOptions {
	if o.MaxTablePoints <= 0 {
		o.MaxTablePoints = 200
	}
	if o.MinPerfSeparation <= 0 {
		o.MinPerfSeparation = 1e-6
	}
	return o
}

// BuildModel constructs the table model from Monte-Carlo-annotated
// Pareto points. Points must carry both performances; at least four
// distinct points are required for cubic interpolation.
func BuildModel(points []ParetoPoint, objNames, paramNames, paramUnits []string, opts ModelOptions) (*Model, error) {
	o := opts.withDefaults()
	if len(points) < 4 {
		return nil, fmt.Errorf("core: %d Pareto points, need at least 4", len(points))
	}
	if len(objNames) != 2 {
		return nil, fmt.Errorf("core: table model needs exactly 2 objectives, got %d", len(objNames))
	}
	np := len(points[0].Params)
	if np == 0 || len(paramNames) != np {
		return nil, fmt.Errorf("core: parameter naming mismatch (%d params, %d names)", np, len(paramNames))
	}

	// Sort by performance 0 and merge near-duplicates.
	pts := append([]ParetoPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Perf[0] < pts[j].Perf[0] })
	merged := pts[:0]
	for _, p := range pts {
		if len(merged) > 0 && p.Perf[0]-merged[len(merged)-1].Perf[0] < o.MinPerfSeparation {
			continue
		}
		merged = append(merged, p)
	}
	if len(merged) < 4 {
		return nil, fmt.Errorf("core: only %d distinct Pareto points after merging", len(merged))
	}
	// Thin to MaxTablePoints with even index spacing (keep endpoints).
	kept := merged
	if len(merged) > o.MaxTablePoints {
		kept = make([]ParetoPoint, 0, o.MaxTablePoints)
		step := float64(len(merged)-1) / float64(o.MaxTablePoints-1)
		last := -1
		for i := 0; i < o.MaxTablePoints; i++ {
			idx := int(math.Round(float64(i) * step))
			if idx == last {
				continue
			}
			last = idx
			kept = append(kept, merged[idx])
		}
	}

	m := &Model{
		ObjectiveNames: append([]string(nil), objNames...),
		ParamNames:     append([]string(nil), paramNames...),
		ParamUnits:     append([]string(nil), paramUnits...),
		Points:         kept,
	}
	p0 := make([]float64, len(kept))
	p1 := make([]float64, len(kept))
	d0 := make([]float64, len(kept))
	d1 := make([]float64, len(kept))
	for i, p := range kept {
		p0[i], p1[i] = p.Perf[0], p.Perf[1]
		d0[i], d1[i] = p.DeltaPct[0], p.DeltaPct[1]
	}
	var err error
	if m.Delta[0], err = table.NewModel1D(p0, d0, o.ctrl()); err != nil {
		return nil, fmt.Errorf("core: %s delta table: %w", objNames[0], err)
	}
	// Performance 1 is keyed on its own axis; it must be deduplicated
	// separately because the front can be locally flat in perf 1.
	q1, qd := dedupeBy(p1, d1, o.MinPerfSeparation)
	if len(q1) < 4 {
		return nil, fmt.Errorf("core: %s axis has only %d distinct values", objNames[1], len(q1))
	}
	if m.Delta[1], err = table.NewModel1D(q1, qd, o.ctrl()); err != nil {
		return nil, fmt.Errorf("core: %s delta table: %w", objNames[1], err)
	}
	if m.PerfFront, err = table.NewModel1D(p0, p1, o.ctrl()); err != nil {
		return nil, fmt.Errorf("core: front table: %w", err)
	}
	m.ParamTables = make([]*table.CurveModel2D, np)
	for k := 0; k < np; k++ {
		vals := make([]float64, len(kept))
		for i, p := range kept {
			if len(p.Params) != np {
				return nil, fmt.Errorf("core: point %d has %d params, want %d", i, len(p.Params), np)
			}
			vals[i] = p.Params[k]
		}
		if m.ParamTables[k], err = table.NewCurveModel2D(p0, p1, vals, o.ctrl(), o.ctrl()); err != nil {
			return nil, fmt.Errorf("core: parameter table %s: %w", paramNames[k], err)
		}
	}
	return m, nil
}

// dedupeBy sorts (x, y) by x and merges points closer than sep.
func dedupeBy(x, y []float64, sep float64) ([]float64, []float64) {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(x))
	for i := range x {
		pts[i] = pt{x[i], y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	var ox, oy []float64
	for _, p := range pts {
		if len(ox) > 0 && p.x-ox[len(ox)-1] < sep {
			continue
		}
		ox = append(ox, p.x)
		oy = append(oy, p.y)
	}
	return ox, oy
}

// Design is the outcome of a yield-targeted spec query (Table 3 plus the
// interpolated parameters).
type Design struct {
	Specs      [2]yield.Spec // the required performances
	DeltaPct   [2]float64    // interpolated variation at the spec bounds
	Target     [2]float64    // guard-banded performance targets
	FrontPerf  [2]float64    // performance of the selected front point
	Params     []float64     // interpolated parameters (table units)
	CurveParam float64       // position along the front (0..1)
}

// DesignFor performs the paper's yield-targeted design query: it
// interpolates the variation at each spec bound, guard-bands the bound
// into a new target (Table 3), verifies the front can meet both targets
// simultaneously, and interpolates the designable parameters at the
// projected front point.
func (m *Model) DesignFor(spec0, spec1 yield.Spec) (*Design, error) {
	return m.DesignForScaled(spec0, spec1, 1)
}

// DesignForScaled is DesignFor with the guard band widened (or narrowed)
// by the given factor: the interpolated Δ% values are multiplied by
// scale before the targets are computed. The paper's ±3σ band covers
// ~99.7% of the population; scaling it is how DesignForYieldTarget
// pushes the verified yield toward an arbitrary goal.
func (m *Model) DesignForScaled(spec0, spec1 yield.Spec, scale float64) (*Design, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("core: non-positive guard-band scale %g", scale)
	}
	d := &Design{Specs: [2]yield.Spec{spec0, spec1}}
	var err error
	if d.DeltaPct[0], err = m.Delta[0].Eval(spec0.Bound); err != nil {
		return nil, fmt.Errorf("core: %s spec %g outside model: %w", spec0.Name, spec0.Bound, err)
	}
	if d.DeltaPct[1], err = m.Delta[1].Eval(spec1.Bound); err != nil {
		return nil, fmt.Errorf("core: %s spec %g outside model: %w", spec1.Name, spec1.Bound, err)
	}
	d.Target[0] = yield.GuardBand(spec0, scale*d.DeltaPct[0])
	d.Target[1] = yield.GuardBand(spec1, scale*d.DeltaPct[1])

	// Feasibility: the front's perf-1 at the perf-0 target must meet the
	// perf-1 target (both specs must hold at one design point).
	lo, hi := m.Delta[0].Domain()
	if d.Target[0] < lo || d.Target[0] > hi {
		return nil, fmt.Errorf("core: guard-banded %s target %.4g outside the modelled front [%.4g, %.4g]",
			spec0.Name, d.Target[0], lo, hi)
	}
	frontP1, err := m.PerfFront.Eval(d.Target[0])
	if err != nil {
		return nil, fmt.Errorf("core: front lookup: %w", err)
	}
	if !meets(spec1, frontP1, d.Target[1]) {
		return nil, fmt.Errorf("core: at %s = %.4g the front offers %s = %.4g, short of the guard-banded target %.4g — the specs are not simultaneously achievable at full yield",
			spec0.Name, d.Target[0], spec1.Name, frontP1, d.Target[1])
	}

	// Project the target pair onto the front and read all parameter
	// tables at the same curve position for a consistent design.
	u, _ := m.ParamTables[0].Project(d.Target[0], d.Target[1])
	d.CurveParam = u
	d.Params = make([]float64, len(m.ParamTables))
	for k, t := range m.ParamTables {
		v := t.EvalAt(u)
		// Keep interpolated parameters inside the sampled value range:
		// spline overshoot must not produce a parameter no Pareto design
		// ever used (the no-extrapolation principle applied to outputs).
		_, _, ys := t.Samples()
		mn, mx := ys[0], ys[0]
		for _, y := range ys[1:] {
			if y < mn {
				mn = y
			}
			if y > mx {
				mx = y
			}
		}
		if v < mn {
			v = mn
		}
		if v > mx {
			v = mx
		}
		d.Params[k] = v
	}
	d.FrontPerf[0] = d.Target[0]
	d.FrontPerf[1] = frontP1
	return d, nil
}

func meets(spec yield.Spec, offered, target float64) bool {
	if spec.Sense == yield.AtMost {
		return offered <= target
	}
	return offered >= target
}

// VariationAt returns the interpolated Δ% of performance k at value v —
// the raw $table_model(perf, "delta.tbl", "3E") lookup.
func (m *Model) VariationAt(k int, v float64) (float64, error) {
	if k < 0 || k > 1 {
		return 0, fmt.Errorf("core: performance index %d out of range", k)
	}
	return m.Delta[k].Eval(v)
}

// Domain returns the modelled range of performance 0.
func (m *Model) Domain() (lo, hi float64) { return m.Delta[0].Domain() }
