package core

import (
	"context"
	"fmt"

	"analogyield/internal/montecarlo"
	"analogyield/internal/process"
	"analogyield/internal/yield"
)

// CornerResult is the performance of one design at one process corner.
type CornerResult struct {
	Corner     process.Corner
	Objectives []float64
	Err        error
}

// CornerAnalysis evaluates a design (given as normalised parameter
// genes) at the five classic process corners at nSigma. It complements
// the statistical variation model: corners bound the global component
// of variation while Monte Carlo also captures local mismatch.
func CornerAnalysis(prob CircuitProblem, proc *process.Process, genes []float64, nSigma float64) []CornerResult {
	out := make([]CornerResult, 0, 5)
	for _, c := range process.Corners() {
		objs, err := prob.Evaluate(genes, proc.CornerSample(c, nSigma))
		out = append(out, CornerResult{Corner: c, Objectives: objs, Err: err})
	}
	return out
}

// YieldVerification is the paper's §4.4 closing check: a Monte Carlo run
// at the selected design confirming that the guard-banded targets
// deliver the specified performance at (ideally) 100% yield.
type YieldVerification struct {
	Yield   float64
	Samples int
	Stats   []montecarlo.Stats
	// Strategy names the Monte Carlo strategy used; FullEvals counts
	// circuit simulations actually run (equal to Samples for naive MC)
	// and ESS is the effective sample size of the estimate.
	Strategy  string
	FullEvals int
	ESS       float64
}

// VerifyDesignYield runs samples Monte Carlo simulations of the circuit
// at the given design genes and reports the fraction meeting both specs
// (the paper runs 500 samples and verifies 100%). Cancelling ctx stops
// the sampling with ctx.Err().
func VerifyDesignYield(ctx context.Context, prob CircuitProblem, proc *process.Process, genes []float64,
	spec0, spec1 yield.Spec, samples int, seed int64) (*YieldVerification, error) {
	return VerifyDesignYieldMC(ctx, prob, proc, genes, spec0, spec1, samples, seed, montecarlo.StrategyNaive)
}

// VerifyDesignYieldMC is VerifyDesignYield with an explicit
// variance-reduction strategy. Importance sampling resolves yields naive
// MC cannot (a 99.9 % target needs ~100/p ≈ 100,000 naive samples);
// surrogate strategies classify in spec space, simulating only samples
// whose pass/fail status the filter cannot call confidently, so
// FullEvals reports the circuit simulations the filter saved.
func VerifyDesignYieldMC(ctx context.Context, prob CircuitProblem, proc *process.Process, genes []float64,
	spec0, spec1 yield.Spec, samples int, seed int64, strategy montecarlo.Strategy) (*YieldVerification, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("core: non-positive sample count %d", samples)
	}
	bf := mcBatchFactory(prob, [][]float64{genes})
	factory := func() montecarlo.Evaluator {
		pe := bf()
		return func(s *process.Sample) ([]float64, error) { return pe(0, s) }
	}
	specs := []yield.Spec{spec0, spec1}
	v := montecarlo.VarianceOptions{Strategy: strategy}
	for col, sp := range specs {
		v.Specs = append(v.Specs, montecarlo.SpecBound{
			Col: col, AtMost: sp.Sense == yield.AtMost, Bound: sp.Bound,
		})
	}
	mc, err := montecarlo.RunVariance(ctx, montecarlo.Options{
		Proc:    proc,
		Samples: samples,
		Seed:    seed,
		Metrics: prob.ObjectiveNames(),
	}, v, factory)
	if err != nil {
		return nil, err
	}
	y, err := yield.FromWeightedSamples(mc.Samples, mc.Weights, specs, []int{0, 1})
	if err != nil {
		return nil, err
	}
	return &YieldVerification{
		Yield: y, Samples: samples, Stats: mc.Stats,
		Strategy: strategy.String(), FullEvals: mc.FullEvals, ESS: mc.ESS,
	}, nil
}

// GenesForDesign converts a Design's interpolated physical parameters
// back into normalised genes for the given problem, so the design can be
// re-simulated (corner analysis, yield verification, Table 4).
// It requires the problem to expose the inverse mapping; the OTA problem
// does via its Space.
func (p *OTAProblem) GenesForDesign(d *Design) ([]float64, error) {
	return p.GenesFromParams(d.Params)
}

// GeneInverter is the optional inverse mapping of a CircuitProblem: from
// table-stored physical parameter values back to normalised genes, so an
// interpolated Design can be re-simulated.
type GeneInverter interface {
	GenesFromParams(tableVals []float64) ([]float64, error)
}

// GenesFromParams implements GeneInverter for the OTA problem.
func (p *OTAProblem) GenesFromParams(vals []float64) ([]float64, error) {
	params, err := p.ParamsFromTableValues(vals)
	if err != nil {
		return nil, err
	}
	return p.Space.Normalize(params), nil
}

// YieldTargetResult is the outcome of DesignForYieldTarget.
type YieldTargetResult struct {
	Design       *Design
	Verification *YieldVerification
	// Scale is the guard-band multiplier that achieved the target (1 is
	// the paper's plain ±3σ band).
	Scale      float64
	Iterations int
}

// DesignForYieldTarget closes the loop the paper leaves open: it runs
// the Table 3 query, verifies the achieved yield by Monte Carlo, and —
// when the verified yield falls short of the target — widens the guard
// band and repeats. It returns the first design meeting the target, or
// an error when the front runs out of headroom.
func DesignForYieldTarget(ctx context.Context, m *Model, prob CircuitProblem, proc *process.Process,
	spec0, spec1 yield.Spec, targetYield float64, samples int, seed int64) (*YieldTargetResult, error) {
	inv, ok := prob.(GeneInverter)
	if !ok {
		return nil, fmt.Errorf("core: problem %T cannot invert designs (no GenesFromParams)", prob)
	}
	if targetYield <= 0 || targetYield > 1 {
		return nil, fmt.Errorf("core: target yield %g outside (0, 1]", targetYield)
	}
	scale := 1.0
	const maxIter = 8
	var lastErr error
	for it := 1; it <= maxIter; it++ {
		d, err := m.DesignForScaled(spec0, spec1, scale)
		if err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("core: guard band exhausted the front at scale %.2f (%v); best attempt: %w", scale, err, lastErr)
			}
			return nil, err
		}
		genes, err := inv.GenesFromParams(d.Params)
		if err != nil {
			return nil, err
		}
		ver, err := VerifyDesignYield(ctx, prob, proc, genes, spec0, spec1, samples, seed)
		if err != nil {
			return nil, err
		}
		if ver.Yield >= targetYield {
			return &YieldTargetResult{Design: d, Verification: ver, Scale: scale, Iterations: it}, nil
		}
		lastErr = fmt.Errorf("scale %.2f verified yield %.3f < target %.3f", scale, ver.Yield, targetYield)
		scale *= 1.5
	}
	return nil, fmt.Errorf("core: yield target not reached after %d guard-band expansions: %w", maxIter, lastErr)
}
