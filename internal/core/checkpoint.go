// Checkpoint/resume for RunFlow, layered on the same persistence
// directory conventions as persist.go: where Save/Load handle the
// finished model artefacts, the checkpoint file holds the *in-flight*
// state of a run — the completed MOO archive plus every Monte Carlo
// point analysed so far — so a killed run restarts where it left off and
// produces bit-identical results.
//
// The format is a gob stream (gob round-trips float64 exactly, NaN
// objectives of failed evaluations included) guarded by a version number
// and a configuration fingerprint: resuming under a different problem,
// budget or seed is refused rather than silently producing a mixed run.
package core

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"analogyield/internal/montecarlo"
	"analogyield/internal/wbga"
)

// checkpointVersion guards the gob layout; bump on incompatible change.
const checkpointVersion = 1

// mcPointRecord is the checkpointed outcome of one Pareto point's Monte
// Carlo analysis. FrontPos is the point's position along FrontIdx (the
// per-point MC seed derives from it, so replay is exact). Dropped
// records a point whose MC failed entirely.
type mcPointRecord struct {
	FrontPos int
	Dropped  bool
	DropMsg  string
	Point    ParetoPoint
	MCSims   int
	Failures int
}

// checkpoint is the on-disk resume state of a flow.
type checkpoint struct {
	Version     int
	Fingerprint string

	// MOO stage outcome (always complete in a written checkpoint).
	Archive     []wbga.Evaluation
	FrontIdx    []int
	Evaluations int
	CacheHits   int
	CacheMisses int

	// Done holds the MC outcome of front positions 0..len(Done)-1.
	Done []mcPointRecord
}

// fingerprint identifies everything that determines a flow's results:
// the problem shape and the deterministic budgets/seed. Worker count,
// cache bound, observers and model options are excluded — they do not
// change the archive or the MC statistics.
func (c FlowConfig) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|params=%v|objs=%v|max=%v|pop=%d|gen=%d|mc=%d|seed=%d",
		checkpointVersion,
		c.Problem.ParamNames(), c.Problem.ObjectiveNames(), c.Problem.Maximize(),
		c.PopSize, c.Generations, c.MCSamples, c.Seed)
	// The MC strategy changes which samples are drawn/simulated, so a
	// checkpoint must not be resumed under a different one. The naive
	// default contributes nothing, keeping pre-strategy checkpoints
	// resumable.
	if strat, err := montecarlo.ParseStrategy(c.MCStrategy); err == nil && strat != montecarlo.StrategyNaive {
		fmt.Fprintf(h, "|mcstrategy=%s", strat)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// saveCheckpoint writes ck to path atomically (temp file + rename), so a
// crash mid-write never corrupts an existing checkpoint.
func saveCheckpoint(path string, ck *checkpoint) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(ck); err != nil {
		tmp.Close()
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: installing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads a checkpoint file. A missing file surfaces as
// os.ErrNotExist (via errors.Is); any other failure is a hard error.
func loadCheckpoint(path string) (*checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ck checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s has version %d, want %d",
			path, ck.Version, checkpointVersion)
	}
	return &ck, nil
}
