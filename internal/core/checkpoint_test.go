package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"analogyield/internal/process"
	"analogyield/internal/wbga"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "dir", "flow.ckpt")
	ck := &checkpoint{
		Version:     checkpointVersion,
		Fingerprint: "abc",
		Archive: []wbga.Evaluation{
			{ParamGenes: []float64{0.25, 0.5}, Weights: []float64{0.3, 0.7},
				Objectives: []float64{47.125, 83.0625}, Fitness: 0.5, OK: true},
			// Failed evaluations carry NaN objectives; the format must
			// round-trip them (this is why the file is gob, not JSON).
			{ParamGenes: []float64{1, 0}, Weights: []float64{0.5, 0.5},
				Objectives: []float64{math.NaN(), math.NaN()}, Fitness: -1},
		},
		FrontIdx:    []int{0},
		Evaluations: 2,
		CacheHits:   1,
		Done: []mcPointRecord{
			{FrontPos: 0, Point: ParetoPoint{Params: []float64{35}, Perf: [2]float64{47.125, 83.0625},
				DeltaPct: [2]float64{0.5, 1.25}}, MCSims: 30, Failures: 2},
			{FrontPos: 1, Dropped: true, DropMsg: "every sample failed"},
		},
	}
	if err := saveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Archive[1].Objectives[0]) {
		t.Error("NaN objective lost in round trip")
	}
	// Bit-exact float recovery everywhere else (NaN != NaN defeats
	// DeepEqual on the failed entry, so compare it piecewise).
	if !reflect.DeepEqual(got.Archive[0], ck.Archive[0]) {
		t.Errorf("archive entry changed: %+v", got.Archive[0])
	}
	if !reflect.DeepEqual(got.Done, ck.Done) {
		t.Errorf("MC records changed: %+v", got.Done)
	}
	if got.Fingerprint != "abc" || got.Evaluations != 2 || got.CacheHits != 1 {
		t.Errorf("scalars changed: %+v", got)
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	_, err := loadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: err = %v, want os.ErrNotExist", err)
	}
}

func TestCheckpointVersionGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flow.ckpt")
	if err := saveCheckpoint(path, &checkpoint{Version: checkpointVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("future-version checkpoint accepted")
	}
}

func TestCheckpointCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flow.ckpt")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestFingerprintCoversDeterministicInputs(t *testing.T) {
	base := FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 30, Seed: 1,
	}
	fp := base.fingerprint()
	if base.fingerprint() != fp {
		t.Fatal("fingerprint not stable")
	}
	// Anything that changes the deterministic results changes the print.
	for name, mut := range map[string]func(*FlowConfig){
		"seed":        func(c *FlowConfig) { c.Seed = 2 },
		"pop":         func(c *FlowConfig) { c.PopSize = 25 },
		"generations": func(c *FlowConfig) { c.Generations = 13 },
		"mc samples":  func(c *FlowConfig) { c.MCSamples = 31 },
		"problem":     func(c *FlowConfig) { c.Problem = NewOTAProblem() },
	} {
		c := base
		mut(&c)
		if c.fingerprint() == fp {
			t.Errorf("fingerprint blind to %s change", name)
		}
	}
	// Execution-only knobs must NOT change it: a resume on a different
	// machine shape (worker count, cache bound) stays valid.
	for name, mut := range map[string]func(*FlowConfig){
		"workers": func(c *FlowConfig) { c.Workers = 7 },
		"cache":   func(c *FlowConfig) { c.CacheSize = -1 },
		"model":   func(c *FlowConfig) { c.Model = ModelOptions{MaxTablePoints: 5} },
	} {
		c := base
		mut(&c)
		if c.fingerprint() != fp {
			t.Errorf("fingerprint varies with execution-only knob %s", name)
		}
	}
}
