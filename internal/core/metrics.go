package core

import (
	"encoding/json"
	"expvar"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the flow's counter registry: evaluation counts, solver
// failures, genome-cache traffic, dropped points, checkpoints, and
// per-stage wall clock. All methods are safe for concurrent use, so one
// registry may be shared by several flows (a long-lived server
// accumulates across runs). The zero value is ready to use.
//
// Metrics implements expvar.Var; Publish exports a registry under a
// global expvar name for scraping alongside memstats.
// Counters that sit on hot paths (per-evaluation, per-sample, or — via
// the server — per-request) are ShardedCounters: increments scatter
// across cache-line-padded shards and are only summed when the registry
// is read, so concurrent writers on different cores do not serialize on
// one cache line (see sharded.go). The stage clocks and ESS
// accumulators stay plain atomics — they are touched once per stage or
// per flow.
type Metrics struct {
	evaluations    ShardedCounter
	mcSimulations  ShardedCounter
	solverFailures ShardedCounter
	cacheHits      ShardedCounter
	cacheMisses    ShardedCounter
	droppedPoints  ShardedCounter
	checkpoints    ShardedCounter
	flows          ShardedCounter
	mooNanos       atomic.Int64
	mcNanos        atomic.Int64
	tablesNanos    atomic.Int64

	// MC scheduler occupancy gauges (see montecarlo.Gauges) plus their
	// observed peaks — the peaks survive the run, so a post-hoc scrape
	// still shows how parallel the stage actually was.
	mcBusyWorkers    gauge
	mcQueueDepth     gauge
	mcPointsInFlight gauge

	// Variance-reduction counters, populated only by non-naive
	// strategies: surrogate-answered samples, the accumulated effective
	// sample size with its point count (for the mean), and the most
	// recent strategy name.
	mcPredicted  ShardedCounter
	mcESSMilli   atomic.Int64 // Σ ESS across points, in thousandths
	mcESSPoints  atomic.Int64
	mcStrategyMu sync.Mutex
	mcStrategy   string

	// Cluster counters, populated only when the server runs with a
	// replica identity: lease traffic (jobs claimed, takeovers of
	// crashed peers' jobs, fenced writes rejected) and remote
	// Monte Carlo shard flow in both directions (dispatched to peers,
	// degraded to local fallback, served on behalf of peers).
	replicaMu          sync.Mutex
	replica            string
	leasesHeld         atomic.Int64
	leaseAcquired      ShardedCounter
	leaseTakeovers     ShardedCounter
	leaseRejections    ShardedCounter
	mcShardsDispatched ShardedCounter
	mcShardsFallback   ShardedCounter
	mcShardsServed     ShardedCounter

	histMu sync.Mutex
	hists  map[string]*Histogram
}

// MetricsSnapshot is a point-in-time copy of a Metrics registry, as
// rendered by otaflow's summary and the expvar export.
type MetricsSnapshot struct {
	Flows          int64   `json:"flows"`
	Evaluations    int64   `json:"evaluations"`
	MCSimulations  int64   `json:"mc_simulations"`
	SolverFailures int64   `json:"solver_failures"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	DroppedPoints  int64   `json:"dropped_points"`
	Checkpoints    int64   `json:"checkpoints"`
	MOOSeconds     float64 `json:"moo_seconds"`
	MCSeconds      float64 `json:"mc_seconds"`
	TablesSeconds  float64 `json:"tables_seconds"`
	// MC scheduler occupancy: current values are live gauges (zero
	// between runs); peaks are high-water marks across the registry's
	// lifetime.
	MCBusyWorkers        int64 `json:"mc_busy_workers"`
	MCBusyWorkersPeak    int64 `json:"mc_busy_workers_peak"`
	MCQueueDepth         int64 `json:"mc_queue_depth"`
	MCQueueDepthPeak     int64 `json:"mc_queue_depth_peak"`
	MCPointsInFlight     int64 `json:"mc_points_in_flight"`
	MCPointsInFlightPeak int64 `json:"mc_points_in_flight_peak"`
	// Variance-reduction counters; all omitted for naive-only
	// registries, so the snapshot JSON of earlier releases is unchanged.
	MCStrategy  string  `json:"mc_strategy,omitempty"`
	MCPredicted int64   `json:"mc_predicted,omitempty"`
	MCMeanESS   float64 `json:"mc_mean_ess,omitempty"`
	// Cluster counters; all omitted for single-node registries, so the
	// snapshot JSON of earlier releases is unchanged.
	Replica            string `json:"replica,omitempty"`
	LeasesHeld         int64  `json:"leases_held,omitempty"`
	LeaseAcquired      int64  `json:"lease_acquired,omitempty"`
	LeaseTakeovers     int64  `json:"lease_takeovers,omitempty"`
	LeaseRejections    int64  `json:"lease_rejections,omitempty"`
	MCShardsDispatched int64  `json:"mc_shards_dispatched,omitempty"`
	MCShardsFallback   int64  `json:"mc_shards_fallback,omitempty"`
	MCShardsServed     int64  `json:"mc_shards_served,omitempty"`
	// Latencies carries one snapshot per named latency histogram (see
	// Metrics.Histogram); nil when the registry has none.
	Latencies map[string]HistogramSnapshot `json:"latencies,omitempty"`
}

// gauge is an atomic level indicator with a high-water mark.
type gauge struct {
	cur, peak atomic.Int64
}

func (g *gauge) add(delta int64) {
	v := g.cur.Add(delta)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// AddBusyWorkers, AddQueueDepth and AddPointsInFlight implement
// montecarlo.Gauges, so a Metrics registry can be handed to the MC batch
// scheduler as its occupancy sink.
func (m *Metrics) AddBusyWorkers(delta int64)    { m.mcBusyWorkers.add(delta) }
func (m *Metrics) AddQueueDepth(delta int64)     { m.mcQueueDepth.add(delta) }
func (m *Metrics) AddPointsInFlight(delta int64) { m.mcPointsInFlight.add(delta) }

// setMCStrategy records the active variance-reduction strategy (last
// writer wins across concurrent flows — the field is informational).
func (m *Metrics) setMCStrategy(name string) {
	m.mcStrategyMu.Lock()
	m.mcStrategy = name
	m.mcStrategyMu.Unlock()
}

// SetReplica records this process's replica identity for cluster-mode
// exposition; single-node deployments never call it and keep the
// pre-cluster snapshot shape.
func (m *Metrics) SetReplica(id string) {
	m.replicaMu.Lock()
	m.replica = id
	m.replicaMu.Unlock()
}

// Replica returns the recorded replica identity ("" when single-node).
func (m *Metrics) Replica() string {
	m.replicaMu.Lock()
	defer m.replicaMu.Unlock()
	return m.replica
}

// AddLeasesHeld moves the held-lease gauge (+1 on acquire/adopt, -1 on
// release); the remaining cluster counters are monotone event counts.
func (m *Metrics) AddLeasesHeld(delta int64) { m.leasesHeld.Add(delta) }
func (m *Metrics) LeasesHeld() int64         { return m.leasesHeld.Load() }
func (m *Metrics) IncLeaseAcquired()         { m.leaseAcquired.Add(1) }
func (m *Metrics) IncLeaseTakeovers()        { m.leaseTakeovers.Add(1) }
func (m *Metrics) IncLeaseRejections()       { m.leaseRejections.Add(1) }
func (m *Metrics) IncMCShardsDispatched()    { m.mcShardsDispatched.Add(1) }
func (m *Metrics) IncMCShardsFallback()      { m.mcShardsFallback.Add(1) }
func (m *Metrics) IncMCShardsServed()        { m.mcShardsServed.Add(1) }

// addMCESS folds one flow's accumulated per-point ESS into the
// registry (stored in thousandths so the hot path stays a plain atomic
// add).
func (m *Metrics) addMCESS(essSum float64, points int) {
	m.mcESSMilli.Add(int64(essSum * 1000))
	m.mcESSPoints.Add(int64(points))
}

func (m *Metrics) addStage(s Stage, d time.Duration) {
	switch s {
	case StageMOO:
		m.mooNanos.Add(int64(d))
	case StageMC:
		m.mcNanos.Add(int64(d))
	case StageTables:
		m.tablesNanos.Add(int64(d))
	}
}

// Histogram returns the named latency histogram, creating it on first
// use. Histograms live inside the registry, so a server's per-route
// latency distributions are exported through the same expvar variable
// as the flow counters.
func (m *Metrics) Histogram(name string) *Histogram {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	if m.hists == nil {
		m.hists = make(map[string]*Histogram)
	}
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Snapshot returns a consistent-enough copy of the counters (each field
// is read atomically; the set is not a single transaction).
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Flows:          m.flows.Load(),
		Evaluations:    m.evaluations.Load(),
		MCSimulations:  m.mcSimulations.Load(),
		SolverFailures: m.solverFailures.Load(),
		CacheHits:      m.cacheHits.Load(),
		CacheMisses:    m.cacheMisses.Load(),
		DroppedPoints:  m.droppedPoints.Load(),
		Checkpoints:    m.checkpoints.Load(),
		MOOSeconds:     time.Duration(m.mooNanos.Load()).Seconds(),
		MCSeconds:      time.Duration(m.mcNanos.Load()).Seconds(),
		TablesSeconds:  time.Duration(m.tablesNanos.Load()).Seconds(),

		MCBusyWorkers:        m.mcBusyWorkers.cur.Load(),
		MCBusyWorkersPeak:    m.mcBusyWorkers.peak.Load(),
		MCQueueDepth:         m.mcQueueDepth.cur.Load(),
		MCQueueDepthPeak:     m.mcQueueDepth.peak.Load(),
		MCPointsInFlight:     m.mcPointsInFlight.cur.Load(),
		MCPointsInFlightPeak: m.mcPointsInFlight.peak.Load(),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	s.MCPredicted = m.mcPredicted.Load()
	if pts := m.mcESSPoints.Load(); pts > 0 {
		s.MCMeanESS = float64(m.mcESSMilli.Load()) / 1000 / float64(pts)
	}
	m.mcStrategyMu.Lock()
	s.MCStrategy = m.mcStrategy
	m.mcStrategyMu.Unlock()
	m.replicaMu.Lock()
	s.Replica = m.replica
	m.replicaMu.Unlock()
	s.LeasesHeld = m.leasesHeld.Load()
	s.LeaseAcquired = m.leaseAcquired.Load()
	s.LeaseTakeovers = m.leaseTakeovers.Load()
	s.LeaseRejections = m.leaseRejections.Load()
	s.MCShardsDispatched = m.mcShardsDispatched.Load()
	s.MCShardsFallback = m.mcShardsFallback.Load()
	s.MCShardsServed = m.mcShardsServed.Load()
	m.histMu.Lock()
	if len(m.hists) > 0 {
		s.Latencies = make(map[string]HistogramSnapshot, len(m.hists))
		for name, h := range m.hists {
			s.Latencies[name] = h.Snapshot()
		}
	}
	m.histMu.Unlock()
	return s
}

// String renders the snapshot as JSON, satisfying expvar.Var.
func (m *Metrics) String() string {
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Publish exports the registry under the given expvar name (e.g.
// "analogyield.flow"). It reports false when the name is already taken —
// expvar panics on duplicate registration, so republishing the same
// registry across flows is a harmless no-op here.
func (m *Metrics) Publish(name string) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, m)
	return true
}

// histBuckets is the number of exponential latency buckets. Bucket i
// spans [histBase·histGrowth^(i-1), histBase·histGrowth^i); the ladder
// runs from 50µs to ~7 minutes, wide enough for a spline lookup and a
// queued flow submission alike.
const (
	histBuckets = 48
	histBase    = 50e-6
	histGrowth  = 1.4
)

// histShards is the number of independent bucket arrays per Histogram.
// Eight padded shards of ~450 bytes each keep a histogram under 4 KiB
// while giving concurrent observers on different cores distinct cache
// lines to increment. Must be a power of two no larger than
// counterShards (the shard hash is shared).
const histShards = 8

// histShard is one observer lane: its own count, sum and bucket array,
// padded so the next shard starts on a fresh cache line.
type histShard struct {
	count   atomic.Int64
	sumNano atomic.Int64
	buckets [histBuckets]atomic.Int64
	_       [48]byte // 50 int64s + 48B pad = 448B = 7 cache lines exactly
}

// Histogram is a fixed-bucket exponential latency histogram with
// lock-free recording, designed for hot request paths: Observe is two
// atomic increments and a bucket increment on a per-goroutine shard
// (plus a read-mostly atomic max update), so concurrent observers on
// different cores do not contend on shared cache lines. Readers sum
// the shards — Snapshot/Export are rare (scrapes) and pay the
// aggregation cost so Observe doesn't have to. Quantiles are estimated
// by linear interpolation inside the matched bucket, which is accurate
// to the bucket's ±20% resolution — plenty for p50/p95 alerts. The
// zero value is ready to use.
type Histogram struct {
	maxNano atomic.Int64
	shards  [histShards]histShard
}

// totals sums the shard counts and duration sums (each shard read
// atomically; the set is not a single transaction).
func (h *Histogram) totals() (count, sumNano int64) {
	for i := range h.shards {
		count += h.shards[i].count.Load()
		sumNano += h.shards[i].sumNano.Load()
	}
	return count, sumNano
}

// bucketLoad sums bucket i across shards.
func (h *Histogram) bucketLoad(i int) int64 {
	var n int64
	for s := range h.shards {
		n += h.shards[s].buckets[i].Load()
	}
	return n
}

// HistogramSnapshot is a point-in-time quantile summary, in
// milliseconds (the unit route latencies are read in).
type HistogramSnapshot struct {
	Count      int64   `json:"count"`
	MeanMillis float64 `json:"mean_ms"`
	P50Millis  float64 `json:"p50_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	MaxMillis  float64 `json:"max_ms"`
}

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	s := d.Seconds()
	if s <= histBase {
		return 0
	}
	i := int(math.Ceil(math.Log(s/histBase) / math.Log(histGrowth)))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histBound returns the upper bound of bucket i in seconds.
func histBound(i int) float64 {
	return histBase * math.Pow(histGrowth, float64(i))
}

// Observe records one measured duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	sh := &h.shards[shardIndex()&(histShards-1)]
	sh.count.Add(1)
	sh.sumNano.Add(int64(d))
	sh.buckets[histBucket(d)].Add(1)
	// The max cell stays unsharded: it is read on every Observe but
	// written only when a new maximum appears, so the line lives in the
	// shared (read-only) cache state almost all the time.
	for {
		cur := h.maxNano.Load()
		if int64(d) <= cur || h.maxNano.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Quantile estimates the q-th quantile (0 < q < 1) in seconds; it
// returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	total, _ := h.totals()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.bucketLoad(i))
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = histBound(i - 1)
			}
			hi := histBound(i)
			if max := float64(h.maxNano.Load()) / 1e9; hi > max {
				hi = max // never report beyond the observed maximum
			}
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(h.maxNano.Load()) / 1e9
}

// HistogramBucket is one cumulative bucket of Histogram.Export, in
// Prometheus histogram semantics: CumulativeCount observations were
// <= UpperBound seconds. The last bucket's bound is +Inf.
type HistogramBucket struct {
	UpperBound      float64
	CumulativeCount int64
}

// Export returns the full cumulative bucket ladder plus the total count
// and the sum of observations in seconds — exactly the triplet a
// Prometheus histogram exposition needs. The count is derived from the
// bucket reads themselves, so the ladder is always internally monotone
// and its +Inf bucket always equals the returned count, even while
// observations race in.
func (h *Histogram) Export() (buckets []HistogramBucket, count int64, sumSeconds float64) {
	buckets = make([]HistogramBucket, histBuckets)
	var cum int64
	for i := range buckets {
		cum += h.bucketLoad(i)
		ub := histBound(i)
		if i == histBuckets-1 {
			ub = math.Inf(1)
		}
		buckets[i] = HistogramBucket{UpperBound: ub, CumulativeCount: cum}
	}
	_, sumNano := h.totals()
	return buckets, cum, float64(sumNano) / 1e9
}

// Snapshot summarises the histogram (counts are read atomically; the
// set is not a single transaction).
func (h *Histogram) Snapshot() HistogramSnapshot {
	count, sumNano := h.totals()
	s := HistogramSnapshot{
		Count:     count,
		P50Millis: 1e3 * h.Quantile(0.50),
		P95Millis: 1e3 * h.Quantile(0.95),
		P99Millis: 1e3 * h.Quantile(0.99),
		MaxMillis: float64(h.maxNano.Load()) / 1e6,
	}
	if s.Count > 0 {
		s.MeanMillis = float64(sumNano) / 1e6 / float64(s.Count)
	}
	return s
}

// String renders the snapshot as JSON, satisfying expvar.Var so a
// histogram can also be published standalone.
func (h *Histogram) String() string {
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}
