package core

import (
	"encoding/json"
	"expvar"
	"sync/atomic"
	"time"
)

// Metrics is the flow's counter registry: evaluation counts, solver
// failures, genome-cache traffic, dropped points, checkpoints, and
// per-stage wall clock. All methods are safe for concurrent use, so one
// registry may be shared by several flows (a long-lived server
// accumulates across runs). The zero value is ready to use.
//
// Metrics implements expvar.Var; Publish exports a registry under a
// global expvar name for scraping alongside memstats.
type Metrics struct {
	evaluations    atomic.Int64
	mcSimulations  atomic.Int64
	solverFailures atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	droppedPoints  atomic.Int64
	checkpoints    atomic.Int64
	flows          atomic.Int64
	mooNanos       atomic.Int64
	mcNanos        atomic.Int64
	tablesNanos    atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of a Metrics registry, as
// rendered by otaflow's summary and the expvar export.
type MetricsSnapshot struct {
	Flows          int64   `json:"flows"`
	Evaluations    int64   `json:"evaluations"`
	MCSimulations  int64   `json:"mc_simulations"`
	SolverFailures int64   `json:"solver_failures"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	DroppedPoints  int64   `json:"dropped_points"`
	Checkpoints    int64   `json:"checkpoints"`
	MOOSeconds     float64 `json:"moo_seconds"`
	MCSeconds      float64 `json:"mc_seconds"`
	TablesSeconds  float64 `json:"tables_seconds"`
}

func (m *Metrics) addStage(s Stage, d time.Duration) {
	switch s {
	case StageMOO:
		m.mooNanos.Add(int64(d))
	case StageMC:
		m.mcNanos.Add(int64(d))
	case StageTables:
		m.tablesNanos.Add(int64(d))
	}
}

// Snapshot returns a consistent-enough copy of the counters (each field
// is read atomically; the set is not a single transaction).
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Flows:          m.flows.Load(),
		Evaluations:    m.evaluations.Load(),
		MCSimulations:  m.mcSimulations.Load(),
		SolverFailures: m.solverFailures.Load(),
		CacheHits:      m.cacheHits.Load(),
		CacheMisses:    m.cacheMisses.Load(),
		DroppedPoints:  m.droppedPoints.Load(),
		Checkpoints:    m.checkpoints.Load(),
		MOOSeconds:     time.Duration(m.mooNanos.Load()).Seconds(),
		MCSeconds:      time.Duration(m.mcNanos.Load()).Seconds(),
		TablesSeconds:  time.Duration(m.tablesNanos.Load()).Seconds(),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	return s
}

// String renders the snapshot as JSON, satisfying expvar.Var.
func (m *Metrics) String() string {
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Publish exports the registry under the given expvar name (e.g.
// "analogyield.flow"). It reports false when the name is already taken —
// expvar panics on duplicate registration, so republishing the same
// registry across flows is a harmless no-op here.
func (m *Metrics) Publish(name string) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, m)
	return true
}
