package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardedCounterConcurrentSum(t *testing.T) {
	var c ShardedCounter
	const goroutines, each = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*each {
		t.Fatalf("Load = %d, want %d", got, goroutines*each)
	}
	c.Store(7)
	if got := c.Load(); got != 7 {
		t.Fatalf("Load after Store = %d, want 7", got)
	}
}

func TestShardedCounterAddAllocFree(t *testing.T) {
	var c ShardedCounter
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Add allocates %.1f objects/op, want 0", n)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) }); n != 0 {
		t.Fatalf("Observe allocates %.1f objects/op, want 0", n)
	}
}

// TestHistogramExportMonotoneUnderWriters is the sharding race hammer:
// while writers pour observations in, every Export must still produce
// an internally monotone cumulative ladder whose +Inf bucket equals the
// returned count, and consecutive exports must never go backwards —
// the guarantees the Prometheus exposition depends on.
func TestHistogramExportMonotoneUnderWriters(t *testing.T) {
	var h Histogram
	var stop atomic.Bool
	durations := []time.Duration{
		10 * time.Microsecond, time.Millisecond, 7 * time.Millisecond,
		80 * time.Millisecond, 2 * time.Second, time.Hour,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				h.Observe(durations[(g+i)%len(durations)])
			}
		}(g)
	}

	var prevCount int64
	var prevSum float64
	prevLadder := make([]int64, 0, histBuckets)
	for round := 0; round < 200; round++ {
		buckets, count, sum := h.Export()
		var cum int64
		for i, b := range buckets {
			if b.CumulativeCount < cum {
				t.Fatalf("round %d: ladder decreases at bucket %d: %d < %d",
					round, i, b.CumulativeCount, cum)
			}
			cum = b.CumulativeCount
			if len(prevLadder) == histBuckets && b.CumulativeCount < prevLadder[i] {
				t.Fatalf("round %d: bucket %d went backwards: %d < %d",
					round, i, b.CumulativeCount, prevLadder[i])
			}
		}
		if last := buckets[len(buckets)-1].CumulativeCount; last != count {
			t.Fatalf("round %d: +Inf bucket %d != count %d", round, last, count)
		}
		if count < prevCount {
			t.Fatalf("round %d: count went backwards: %d < %d", round, count, prevCount)
		}
		if sum < prevSum {
			t.Fatalf("round %d: sum went backwards: %g < %g", round, sum, prevSum)
		}
		prevCount, prevSum = count, sum
		prevLadder = prevLadder[:0]
		for _, b := range buckets {
			prevLadder = append(prevLadder, b.CumulativeCount)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent: everything must reconcile exactly.
	_, count, _ := h.Export()
	if snap := h.Snapshot(); snap.Count != count {
		t.Fatalf("quiescent Snapshot count %d != Export count %d", snap.Count, count)
	}
}

// TestMetricsSnapshotEqualsShardSum hammers the registry's sharded
// counters from many goroutines and checks the quiescent Snapshot is
// the exact sum of what was written — no increment may be lost to a
// shard the aggregation misses.
func TestMetricsSnapshotEqualsShardSum(t *testing.T) {
	var m Metrics
	const goroutines, each = 12, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.evaluations.Add(1)
				m.mcSimulations.Add(2)
				m.cacheHits.Add(1)
				m.cacheMisses.Add(1)
				m.Histogram("hammer").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if want := int64(goroutines * each); s.Evaluations != want {
		t.Errorf("Evaluations = %d, want %d", s.Evaluations, want)
	}
	if want := int64(2 * goroutines * each); s.MCSimulations != want {
		t.Errorf("MCSimulations = %d, want %d", s.MCSimulations, want)
	}
	if s.CacheHitRate != 0.5 {
		t.Errorf("CacheHitRate = %g, want 0.5", s.CacheHitRate)
	}
	if got := s.Latencies["hammer"].Count; got != int64(goroutines*each) {
		t.Errorf("histogram count = %d, want %d", got, goroutines*each)
	}
}

// TestShardIndexInRange pins the hash to its contract: always a valid
// shard, and the same goroutine gets a stable enough answer that its
// increments do not wander over every shard (locality, not correctness
// — any index is correct).
func TestShardIndexInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		if idx := shardIndex(); idx < 0 || idx >= counterShards {
			t.Fatalf("shardIndex = %d, want [0,%d)", idx, counterShards)
		}
	}
}

func BenchmarkShardedCounterParallel(b *testing.B) {
	var c ShardedCounter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Load() != int64(b.N) {
		b.Fatalf("lost increments: %d != %d", c.Load(), b.N)
	}
}

func BenchmarkAtomicCounterParallel(b *testing.B) {
	var c atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(300 * time.Microsecond)
		}
	})
}
