package core

import (
	"context"
	"testing"

	"analogyield/internal/process"
	"analogyield/internal/yield"
)

func TestCornerAnalysisSynth(t *testing.T) {
	prob := synthProblem{}
	proc := process.C35()
	genes := []float64{0.5, 0, 0.5}
	results := CornerAnalysis(prob, proc, genes, 3)
	if len(results) != 5 {
		t.Fatalf("got %d corner results", len(results))
	}
	byName := map[string][]float64{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("corner %s: %v", r.Corner, r.Err)
		}
		byName[r.Corner.String()] = r.Objectives
	}
	// The synthetic problem adds DVth*3 to objective 0: SS (positive
	// DVth) must raise it, FF must lower it, TT must match nominal.
	nom, err := prob.Evaluate(genes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if byName["TT"][0] != nom[0] {
		t.Errorf("TT corner (%g) should equal nominal (%g)", byName["TT"][0], nom[0])
	}
	if !(byName["SS"][0] > nom[0] && byName["FF"][0] < nom[0]) {
		t.Errorf("corner ordering wrong: SS %g, nominal %g, FF %g",
			byName["SS"][0], nom[0], byName["FF"][0])
	}
}

func TestCornerAnalysisOTA(t *testing.T) {
	prob := NewOTAProblem()
	proc := process.C35()
	genes := make([]float64, 8)
	for i := range genes {
		genes[i] = 0.5
	}
	results := CornerAnalysis(prob, proc, genes, 3)
	gains := map[string]float64{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("corner %s failed: %v", r.Corner, r.Err)
		}
		gains[r.Corner.String()] = r.Objectives[0]
	}
	// All corners must produce a working amplifier within a few dB of
	// typical (the symmetrical OTA's gain is ratio-based).
	tt := gains["TT"]
	for name, g := range gains {
		if g < tt-6 || g > tt+6 {
			t.Errorf("corner %s gain %g far from TT %g", name, g, tt)
		}
	}
}

func TestVerifyDesignYield(t *testing.T) {
	res := smallFlow(t)
	m := res.Model
	lo, hi := m.Domain()
	bound := lo + 0.4*(hi-lo)
	pmAt, err := m.PerfFront.Eval(bound)
	if err != nil {
		t.Fatal(err)
	}
	spec0 := yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound}
	spec1 := yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: pmAt - 3}
	d, err := m.DesignFor(spec0, spec1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-simulate the design: genes from the interpolated parameters.
	genes := make([]float64, 3)
	for i, v := range d.Params {
		genes[i] = (v - 10) / 50 // inverse of synthProblem.Denormalize
	}
	ver, err := VerifyDesignYield(context.Background(), synthProblem{}, process.C35(), genes, spec0, spec1, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Samples != 200 || len(ver.Stats) != 2 {
		t.Fatalf("verification bookkeeping wrong: %+v", ver)
	}
	// The guard-banded design must yield well above the raw spec-edge
	// yield (~50% for a design sitting exactly at the bound).
	if ver.Yield < 0.9 {
		t.Errorf("yield = %g, want >= 0.9 for a guard-banded design", ver.Yield)
	}
}

func TestVerifyDesignYieldValidation(t *testing.T) {
	if _, err := VerifyDesignYield(context.Background(), synthProblem{}, process.C35(), []float64{0, 0, 0},
		yield.Spec{}, yield.Spec{}, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestGenesForDesignRoundTrip(t *testing.T) {
	p := NewOTAProblem()
	d := &Design{Params: []float64{35, 2, 35, 2, 35, 2, 35, 2}} // µm values
	genes, err := p.GenesForDesign(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(genes) != 8 {
		t.Fatalf("genes = %d", len(genes))
	}
	// 35 µm is mid-width: gene 0.5; 2 µm on [0.35, 4] ≈ 0.452.
	if genes[0] < 0.49 || genes[0] > 0.51 {
		t.Errorf("W gene = %g, want ~0.5", genes[0])
	}
	if _, err := p.GenesForDesign(&Design{Params: []float64{1}}); err == nil {
		t.Error("short design accepted")
	}
}

// GenesFromParams implements GeneInverter for the synthetic problem
// (inverse of its Denormalize: v = 10 + 50·g).
func (synthProblem) GenesFromParams(vals []float64) ([]float64, error) {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = (v - 10) / 50
	}
	return out, nil
}

func TestDesignForYieldTarget(t *testing.T) {
	res := smallFlow(t)
	m := res.Model
	lo, hi := m.Domain()
	bound := lo + 0.3*(hi-lo)
	pmAt, err := m.PerfFront.Eval(bound)
	if err != nil {
		t.Fatal(err)
	}
	spec0 := yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound}
	spec1 := yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: pmAt - 4}
	out, err := DesignForYieldTarget(context.Background(), m, synthProblem{}, process.C35(),
		spec0, spec1, 0.95, 120, 17)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verification.Yield < 0.95 {
		t.Errorf("verified yield %g below target", out.Verification.Yield)
	}
	if out.Scale < 1 {
		t.Errorf("scale %g below 1", out.Scale)
	}
	if out.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestDesignForYieldTargetValidation(t *testing.T) {
	res := smallFlow(t)
	m := res.Model
	if _, err := DesignForYieldTarget(context.Background(), m, synthProblem{}, process.C35(),
		yield.Spec{}, yield.Spec{}, 1.5, 10, 1); err == nil {
		t.Error("target > 1 accepted")
	}
	// A problem without the inverse interface.
	if _, err := DesignForYieldTarget(context.Background(), m, bareProblem{}, process.C35(),
		yield.Spec{}, yield.Spec{}, 0.9, 10, 1); err == nil {
		t.Error("non-invertible problem accepted")
	}
}

// bareProblem is a CircuitProblem without GenesFromParams.
type bareProblem struct{ synthProblem }

func (bareProblem) ParamNames() []string { return []string{"P1", "P2", "P3"} }

func TestDesignForScaledValidation(t *testing.T) {
	res := smallFlow(t)
	if _, err := res.Model.DesignForScaled(yield.Spec{}, yield.Spec{}, 0); err == nil {
		t.Error("zero scale accepted")
	}
}
