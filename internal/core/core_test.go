package core

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"analogyield/internal/process"
	"analogyield/internal/yield"
)

// synthProblem is a fast analytic stand-in for the OTA: two conflicting
// objectives over three parameters with a small process-dependent
// perturbation, so the whole flow can run in milliseconds.
//
// perf0 ("gain") = 45 + 10·g0 − 5·g1², perf1 ("pm") = 85 − 12·g0 − 5·g1².
// The front lies along g1 = 0 (and any g2), trading perf0 against perf1.
type synthProblem struct{}

func (synthProblem) ParamNames() []string     { return []string{"P1", "P2", "P3"} }
func (synthProblem) ObjectiveNames() []string { return []string{"gain_db", "pm_deg"} }
func (synthProblem) Maximize() []bool         { return []bool{true, true} }
func (synthProblem) ParamUnits() []string     { return []string{"um", "um", "um"} }

func (synthProblem) Evaluate(g []float64, s *process.Sample) ([]float64, error) {
	noise0, noise1 := 0.0, 0.0
	if s != nil {
		sh := s.DeviceShift(process.NMOS, 10e-6, 1e-6)
		noise0 = sh.DVth * 3  // ~±0.15 dB
		noise1 = sh.DBeta * 4 // ~±0.5 deg
	}
	pen := 5 * g[1] * g[1]
	return []float64{45 + 10*g[0] - pen + noise0, 85 - 12*g[0] - pen + noise1}, nil
}

func (synthProblem) Denormalize(g []float64) ([]float64, error) {
	out := make([]float64, len(g))
	for i, x := range g {
		out[i] = 10 + 50*x // µm-like
	}
	return out, nil
}

func smallFlow(t *testing.T) *FlowResult {
	t.Helper()
	res, err := RunFlow(context.Background(), FlowConfig{
		Problem:     synthProblem{},
		Proc:        process.C35(),
		PopSize:     24,
		Generations: 12,
		MCSamples:   30,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunFlowEndToEnd(t *testing.T) {
	res := smallFlow(t)
	if res.Evaluations != 24*12 {
		t.Errorf("Evaluations = %d, want 288", res.Evaluations)
	}
	if len(res.FrontIdx) < 5 {
		t.Fatalf("front has %d points", len(res.FrontIdx))
	}
	if len(res.Points) == 0 || res.Model == nil {
		t.Fatal("flow produced no model")
	}
	if res.MCSimulations != len(res.Points)*30 {
		t.Errorf("MCSimulations = %d, want %d", res.MCSimulations, len(res.Points)*30)
	}
	// Points sorted by perf0 ascending (BuildModel sorts its copy; the
	// flow's Points preserve MC order, so just check the model).
	pts := res.Model.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Perf[0] <= pts[i-1].Perf[0] {
			t.Fatal("model points not strictly sorted by perf0")
		}
	}
	// The trade-off must be visible: perf1 falls as perf0 rises.
	if pts[0].Perf[1] <= pts[len(pts)-1].Perf[1] {
		t.Error("front does not show the conflict")
	}
	// Variation deltas positive and small.
	for _, p := range pts {
		if p.DeltaPct[0] <= 0 || p.DeltaPct[0] > 10 {
			t.Errorf("DeltaPct[0] = %g implausible", p.DeltaPct[0])
		}
	}
	if res.Timing.MOO <= 0 || res.Timing.MC <= 0 {
		t.Error("timings not recorded")
	}
}

func TestRunFlowValidation(t *testing.T) {
	if _, err := RunFlow(context.Background(), FlowConfig{Proc: process.C35()}); err == nil {
		t.Error("nil problem accepted")
	}
	if _, err := RunFlow(context.Background(), FlowConfig{Problem: synthProblem{}}); err == nil {
		t.Error("nil process accepted")
	}
}

func TestRunFlowProgressEvents(t *testing.T) {
	stages := map[Stage]int{}
	_, err := RunFlow(context.Background(), FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 10, Generations: 5, MCSamples: 10, Seed: 2,
		Obs: ObserverFunc(func(e Event) {
			switch ev := e.(type) {
			case GenerationDone:
				stages[StageMOO]++
				if ev.Evals > ev.TotalEvals {
					t.Errorf("moo: done %d > total %d", ev.Evals, ev.TotalEvals)
				}
			case MCPointDone:
				stages[StageMC]++
				if ev.Index+1 > ev.Total {
					t.Errorf("mc: done %d > total %d", ev.Index+1, ev.Total)
				}
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stages[StageMOO] == 0 || stages[StageMC] == 0 {
		t.Errorf("progress stages seen: %v", stages)
	}
}

func TestModelDesignFor(t *testing.T) {
	res := smallFlow(t)
	m := res.Model
	lo, hi := m.Domain()
	// Pick a spec comfortably inside the modelled range.
	bound := lo + 0.4*(hi-lo)
	pmAtBound, err := m.PerfFront.Eval(bound)
	if err != nil {
		t.Fatal(err)
	}
	spec0 := yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound}
	spec1 := yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: pmAtBound - 3}
	d, err := m.DesignFor(spec0, spec1)
	if err != nil {
		t.Fatal(err)
	}
	// Guard-banded targets exceed the bounds (Table 3 logic).
	if d.Target[0] <= spec0.Bound {
		t.Errorf("target %g not above bound %g", d.Target[0], spec0.Bound)
	}
	if d.Target[1] <= spec1.Bound {
		t.Errorf("pm target %g not above bound %g", d.Target[1], spec1.Bound)
	}
	// Deltas positive.
	if d.DeltaPct[0] <= 0 || d.DeltaPct[1] <= 0 {
		t.Error("interpolated deltas should be positive")
	}
	// Parameters inside the physical range of the synthetic problem.
	for _, p := range d.Params {
		if p < 10-1 || p > 60+1 {
			t.Errorf("interpolated parameter %g outside [10, 60]", p)
		}
	}
	// The selected front point must meet both guard-banded targets.
	if d.FrontPerf[0] < d.Target[0]-1e-6 {
		t.Errorf("front perf0 %g below target %g", d.FrontPerf[0], d.Target[0])
	}
	if d.FrontPerf[1] < d.Target[1]-1e-6 {
		t.Errorf("front perf1 %g below target %g", d.FrontPerf[1], d.Target[1])
	}
}

func TestModelDesignForInfeasible(t *testing.T) {
	res := smallFlow(t)
	m := res.Model
	lo, hi := m.Domain()
	bound := lo + 0.8*(hi-lo)
	pmAtBound, _ := m.PerfFront.Eval(bound)
	// Demand more PM than the front offers at this gain: infeasible.
	_, err := m.DesignFor(
		yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound},
		yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: pmAtBound + 5})
	if err == nil {
		t.Fatal("infeasible spec pair accepted")
	}
	if !strings.Contains(err.Error(), "not simultaneously achievable") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestModelDesignForOutOfRange(t *testing.T) {
	res := smallFlow(t)
	m := res.Model
	_, hi := m.Domain()
	_, err := m.DesignFor(
		yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: hi + 100},
		yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: 0})
	if err == nil {
		t.Fatal("out-of-range spec accepted (no-extrapolation rule violated)")
	}
}

func TestModelVariationAt(t *testing.T) {
	res := smallFlow(t)
	m := res.Model
	lo, hi := m.Domain()
	v, err := m.VariationAt(0, (lo+hi)/2)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("variation = %g", v)
	}
	if _, err := m.VariationAt(5, lo); err == nil {
		t.Error("bad index accepted")
	}
}

func TestBuildModelValidation(t *testing.T) {
	mkPoint := func(p0, p1 float64) ParetoPoint {
		return ParetoPoint{Params: []float64{1}, Perf: [2]float64{p0, p1},
			DeltaPct: [2]float64{0.5, 1.5}}
	}
	names := []string{"gain_db", "pm_deg"}
	pn := []string{"P1"}
	pu := []string{"um"}
	if _, err := BuildModel([]ParetoPoint{mkPoint(1, 2)}, names, pn, pu, ModelOptions{}); err == nil {
		t.Error("too few points accepted")
	}
	pts := []ParetoPoint{mkPoint(1, 9), mkPoint(2, 8), mkPoint(3, 7), mkPoint(4, 6), mkPoint(5, 5)}
	if _, err := BuildModel(pts, []string{"a"}, pn, pu, ModelOptions{}); err == nil {
		t.Error("single objective accepted")
	}
	if _, err := BuildModel(pts, names, []string{"a", "b"}, pu, ModelOptions{}); err == nil {
		t.Error("param name mismatch accepted")
	}
	m, err := BuildModel(pts, names, pn, pu, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delta[0].Len() != 5 {
		t.Errorf("table has %d knots", m.Delta[0].Len())
	}
}

func TestBuildModelThinning(t *testing.T) {
	var pts []ParetoPoint
	for i := 0; i < 500; i++ {
		pts = append(pts, ParetoPoint{
			Params:   []float64{float64(i)},
			Perf:     [2]float64{float64(i), 1000 - float64(i)},
			DeltaPct: [2]float64{0.5, 1.5},
		})
	}
	m, err := BuildModel(pts, []string{"gain_db", "pm_deg"}, []string{"P1"}, []string{"um"},
		ModelOptions{MaxTablePoints: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) > 100 {
		t.Errorf("thinning kept %d points", len(m.Points))
	}
	// Endpoints preserved.
	if m.Points[0].Perf[0] != 0 || m.Points[len(m.Points)-1].Perf[0] != 499 {
		t.Error("thinning lost the endpoints")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	res := smallFlow(t)
	dir := t.TempDir()
	if err := res.Model.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Paper-style artefacts exist.
	for _, f := range []string{"front.tbl", "gain_delta.tbl", "pm_delta.tbl", "lp1_data.tbl", "lp3_data.tbl"} {
		if _, err := filepath.Glob(filepath.Join(dir, f)); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Points) != len(res.Model.Points) {
		t.Fatalf("loaded %d points, want %d", len(loaded.Points), len(res.Model.Points))
	}
	if loaded.ObjectiveNames[0] != "gain_db" || loaded.ParamNames[0] != "P1" {
		t.Errorf("names lost: %v %v", loaded.ObjectiveNames, loaded.ParamNames)
	}
	if loaded.ParamUnits[0] != "um" {
		t.Errorf("units lost: %v", loaded.ParamUnits)
	}
	// Same interpolation behaviour.
	lo, hi := res.Model.Domain()
	mid := (lo + hi) / 2
	a, err := res.Model.VariationAt(0, mid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.VariationAt(0, mid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("variation differs after reload: %g vs %g", a, b)
	}
}

func TestLoadModelMissing(t *testing.T) {
	if _, err := LoadModel(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestOTAProblemAdapter(t *testing.T) {
	p := NewOTAProblem()
	if len(p.ParamNames()) != 8 || len(p.ObjectiveNames()) != 2 {
		t.Fatal("OTA problem shape wrong")
	}
	genes := make([]float64, 8)
	for i := range genes {
		genes[i] = 0.5
	}
	objs, err := p.Evaluate(genes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if objs[0] < 30 || objs[0] > 65 {
		t.Errorf("OTA gain %g out of range", objs[0])
	}
	phys, err := p.Denormalize(genes)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-space width = 35 µm (stored in µm).
	if math.Abs(phys[0]-35) > 1e-9 {
		t.Errorf("denormalized W1 = %g µm, want 35", phys[0])
	}
	params, err := p.ParamsFromTableValues(phys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(params.W1-35e-6) > 1e-12 {
		t.Errorf("round-trip W1 = %g m", params.W1)
	}
	if _, err := p.ParamsFromTableValues([]float64{1}); err == nil {
		t.Error("short value vector accepted")
	}
}

func TestRunFlowOTAIntegration(t *testing.T) {
	// End-to-end on the real circuit at a minimal budget: the flow must
	// produce a usable model whose spec queries return parameters inside
	// Table 1's box.
	if testing.Short() {
		t.Skip("OTA integration flow in -short mode")
	}
	res, err := RunFlow(context.Background(), FlowConfig{
		Problem:     NewOTAProblem(),
		Proc:        process.C35(),
		PopSize:     16,
		Generations: 8,
		MCSamples:   12,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 128 {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
	m := res.Model
	lo, hi := m.Domain()
	if hi-lo < 1 {
		t.Fatalf("front gain span %.2f dB too narrow", hi-lo)
	}
	bound := lo + 0.5*(hi-lo)
	pmAt, err := m.PerfFront.Eval(bound)
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.DesignFor(
		yield.Spec{Name: "gain", Sense: yield.AtLeast, Bound: bound},
		yield.Spec{Name: "pm", Sense: yield.AtLeast, Bound: pmAt - 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d.Params {
		if v < 10-1e-9 || v > 60+1e-9 {
			// widths and lengths share the table µm units; lengths lie
			// in [0.35, 4].
			if v < 0.35-1e-9 || v > 4+1e-9 {
				t.Errorf("parameter %d = %g µm outside Table 1 box", i, v)
			}
		}
	}
	// The interpolated design must simulate close to the model's claim.
	prob := NewOTAProblem()
	genes, err := prob.GenesForDesign(d)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := prob.Evaluate(genes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(objs[0]-d.Target[0]) > 1.5 {
		t.Errorf("simulated gain %.2f far from model target %.2f", objs[0], d.Target[0])
	}
}
