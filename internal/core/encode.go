// Canonical model serialization for the artefact store. Where persist.go
// writes the paper's human-readable table files (front.tbl,
// gain_delta.tbl, ...), EncodeModel produces the single deterministic
// byte stream the store content-addresses: equal models encode to equal
// bytes, so a model's store version is a stable fingerprint of its
// Pareto points and labels.
//
// The payload is a versioned gob stream of the model's source data (the
// thinned Pareto set plus names/units), not of the fitted tables:
// DecodeModel rebuilds the tables through BuildModel exactly as
// LoadModel does for the directory layout, so both load paths produce
// identical models.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// modelWireVersion guards the gob layout; bump on incompatible change.
const modelWireVersion = 1

// modelWire is the serialized form of a model.
type modelWire struct {
	Version        int
	ObjectiveNames []string
	ParamNames     []string
	ParamUnits     []string
	Points         []ParetoPoint
}

// EncodeModel serializes m into the canonical payload. Encoding is
// deterministic: the same model always yields the same bytes (gob of a
// fixed struct through a fresh encoder), which the store relies on for
// content addressing.
func EncodeModel(m *Model) ([]byte, error) {
	w := modelWire{
		Version:        modelWireVersion,
		ObjectiveNames: m.ObjectiveNames,
		ParamNames:     m.ParamNames,
		ParamUnits:     m.ParamUnits,
		Points:         m.Points,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("core: encoding model: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeModel rebuilds a model from an EncodeModel payload. Like
// LoadModel, the saved points were already thinned, so the tables are
// rebuilt with no further thinning.
func DecodeModel(b []byte) (*Model, error) {
	var w modelWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if w.Version != modelWireVersion {
		return nil, fmt.Errorf("core: model payload version %d, want %d", w.Version, modelWireVersion)
	}
	if len(w.ObjectiveNames) != 2 || len(w.ParamNames) == 0 || len(w.Points) == 0 {
		return nil, fmt.Errorf("core: model payload incomplete (%d objectives, %d params, %d points)",
			len(w.ObjectiveNames), len(w.ParamNames), len(w.Points))
	}
	m, err := BuildModel(w.Points, w.ObjectiveNames, w.ParamNames, w.ParamUnits,
		ModelOptions{MaxTablePoints: len(w.Points)})
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding model from payload: %w", err)
	}
	return m, nil
}
