package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func encodeTestModel(t *testing.T) *Model {
	t.Helper()
	pts := make([]ParetoPoint, 16)
	for i := range pts {
		x := float64(i) / float64(len(pts)-1)
		pts[i] = ParetoPoint{
			Params:   []float64{10 + 50*x, 20 - 3*x, 5 + x*x},
			Perf:     [2]float64{45 + 10*x, 85 - 12*x},
			DeltaPct: [2]float64{1.0 + 0.2*x, 0.5 + 0.1*x},
		}
	}
	m, err := BuildModel(pts,
		[]string{"gain_db", "pm_deg"},
		[]string{"P1", "P2", "P3"},
		[]string{"um", "um", "um"},
		ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEncodeModelRoundTrip(t *testing.T) {
	m := encodeTestModel(t)
	b, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.ObjectiveNames, m.ObjectiveNames) ||
		!reflect.DeepEqual(got.ParamNames, m.ParamNames) ||
		!reflect.DeepEqual(got.ParamUnits, m.ParamUnits) {
		t.Errorf("labels changed: %+v", got)
	}
	if !reflect.DeepEqual(got.Points, m.Points) {
		t.Errorf("points changed across round trip")
	}
	// The rebuilt tables answer identically (bit-for-bit) — the property
	// the registry's warm-start path depends on.
	lo, hi := m.Domain()
	for i := 0; i <= 20; i++ {
		x := lo + (hi-lo)*float64(i)/20
		want, err1 := m.Delta[0].Eval(x)
		have, err2 := got.Delta[0].Eval(x)
		if (err1 == nil) != (err2 == nil) || math.Float64bits(want) != math.Float64bits(have) {
			t.Fatalf("Delta[0](%g): %g/%v vs %g/%v", x, want, err1, have, err2)
		}
	}
}

// TestEncodeModelDeterministic: equal models must encode to equal
// bytes; the store's content addressing (and hence version identity
// across replicas) depends on it.
func TestEncodeModelDeterministic(t *testing.T) {
	m := encodeTestModel(t)
	a, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of one model differ")
	}
	// An independently built equal model encodes identically too.
	c, err := EncodeModel(encodeTestModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("equal models encode differently")
	}
	// A changed model encodes differently.
	m2 := encodeTestModel(t)
	m2.Points[3].Perf[0] += 1e-9
	d, err := EncodeModel(m2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, d) {
		t.Fatal("distinct models encode identically")
	}
}

func TestDecodeModelRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("not a gob stream"), {0x01, 0x02}} {
		if _, err := DecodeModel(b); err == nil {
			t.Errorf("DecodeModel(%q) accepted", b)
		}
	}
	// Truncated valid stream.
	m := encodeTestModel(t)
	full, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeModel(full[:len(full)/2]); err == nil {
		t.Error("truncated payload accepted")
	}
}
