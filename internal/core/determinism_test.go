package core

import (
	"context"
	"reflect"
	"testing"

	"analogyield/internal/process"
)

// mcEventTrace is the worker-count-invariant projection of the MC event
// stream: every MCPointDone and PointDropped in emission order.
type mcEventTrace struct {
	Kind     string
	Index    int
	Perf     [2]float64
	DeltaPct [2]float64
	Failures int
}

func runFlowTraced(t *testing.T, workers int) (*FlowResult, []mcEventTrace) {
	t.Helper()
	var trace []mcEventTrace
	res, err := RunFlow(context.Background(), FlowConfig{
		Problem:     synthProblem{},
		Proc:        process.C35(),
		PopSize:     24,
		Generations: 12,
		MCSamples:   30,
		Seed:        7,
		Workers:     workers,
		Obs: ObserverFunc(func(e Event) {
			switch ev := e.(type) {
			case MCPointDone:
				trace = append(trace, mcEventTrace{Kind: "done", Index: ev.Index,
					Perf: ev.Perf, DeltaPct: ev.DeltaPct, Failures: ev.Failures})
			case PointDropped:
				trace = append(trace, mcEventTrace{Kind: "dropped", Index: ev.Index})
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, trace
}

// TestRunFlowDeterministicAcrossWorkers pins the scheduler's central
// contract: the same seed produces a bit-identical FlowResult and MC
// event stream whether the flow runs serially or on 8 workers. Only
// wall-clock timings and scheduling tallies (cache hit/miss counts,
// occupancy gauges) may differ, so those fields are blanked before the
// comparison.
func TestRunFlowDeterministicAcrossWorkers(t *testing.T) {
	want, wantTrace := runFlowTraced(t, 1)
	got, gotTrace := runFlowTraced(t, 8)

	norm := func(r *FlowResult) FlowResult {
		c := *r
		c.Timing = Timing{}
		c.Metrics = MetricsSnapshot{}
		c.CacheHits, c.CacheMisses = 0, 0
		return c
	}
	a, b := norm(want), norm(got)
	if !reflect.DeepEqual(a.Archive, b.Archive) {
		t.Error("archives differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a.FrontIdx, b.FrontIdx) {
		t.Error("front indices differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Error("MC points differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a.Model, b.Model) {
		t.Error("models differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("FlowResult differs between 1 and 8 workers:\n1: %+v\n8: %+v", a, b)
	}
	if !reflect.DeepEqual(wantTrace, gotTrace) {
		t.Errorf("MC event streams differ between 1 and 8 workers:\n1: %+v\n8: %+v", wantTrace, gotTrace)
	}
}

// TestFlowSchedulerGauges checks the occupancy gauges the MC batch
// scheduler drives through the registry: levels settle back to zero when
// the flow finishes, peaks record that work actually flowed through.
func TestFlowSchedulerGauges(t *testing.T) {
	m := &Metrics{}
	_, err := RunFlow(context.Background(), FlowConfig{
		Problem: synthProblem{}, Proc: process.C35(),
		PopSize: 24, Generations: 12, MCSamples: 30, Seed: 1,
		Workers: 4, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.MCBusyWorkers != 0 || s.MCQueueDepth != 0 || s.MCPointsInFlight != 0 {
		t.Errorf("gauges did not settle: busy=%d queue=%d inflight=%d",
			s.MCBusyWorkers, s.MCQueueDepth, s.MCPointsInFlight)
	}
	if s.MCBusyWorkersPeak < 1 {
		t.Errorf("busy workers peak = %d, want >= 1", s.MCBusyWorkersPeak)
	}
	if s.MCPointsInFlightPeak < 1 {
		t.Errorf("points in flight peak = %d, want >= 1", s.MCPointsInFlightPeak)
	}
}
