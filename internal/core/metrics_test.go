package core

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}

	// 100 uniform observations 1..100 ms: p50 ≈ 50ms, p95 ≈ 95ms, within
	// the ±growth-factor bucket resolution.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.MeanMillis-50.5) > 0.01 {
		t.Errorf("MeanMillis = %g, want 50.5", s.MeanMillis)
	}
	if s.MaxMillis != 100 {
		t.Errorf("MaxMillis = %g, want 100", s.MaxMillis)
	}
	if s.P50Millis < 30 || s.P50Millis > 70 {
		t.Errorf("P50Millis = %g, want ≈50 within bucket resolution", s.P50Millis)
	}
	if s.P95Millis < 70 || s.P95Millis > 100 {
		t.Errorf("P95Millis = %g, want ≈95 within bucket resolution", s.P95Millis)
	}
	// Quantiles are clamped to the observed maximum and monotone.
	if s.P99Millis > s.MaxMillis || s.P50Millis > s.P95Millis || s.P95Millis > s.P99Millis {
		t.Errorf("quantiles not monotone/clamped: %+v", s)
	}
	// Negative durations are clamped, not dropped.
	h.Observe(-time.Second)
	if got := h.Snapshot().Count; got != 101 {
		t.Errorf("Count after negative observe = %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(g+1) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*each {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*each)
	}
	if s.MaxMillis != float64(goroutines) {
		t.Errorf("MaxMillis = %g, want %d", s.MaxMillis, goroutines)
	}
}

func TestMetricsHistogramRegistry(t *testing.T) {
	var m Metrics
	h := m.Histogram("query")
	if m.Histogram("query") != h {
		t.Fatal("Histogram not idempotent per name")
	}
	h.Observe(2 * time.Millisecond)
	m.Histogram("other") // untouched histograms still snapshot

	snap := m.Snapshot()
	if snap.Latencies["query"].Count != 1 {
		t.Errorf("Latencies[query].Count = %d", snap.Latencies["query"].Count)
	}
	if snap.Latencies["other"].Count != 0 {
		t.Errorf("Latencies[other].Count = %d", snap.Latencies["other"].Count)
	}

	// The expvar rendering carries the histograms too.
	var decoded struct {
		Latencies map[string]HistogramSnapshot `json:"latencies"`
	}
	if err := json.Unmarshal([]byte(m.String()), &decoded); err != nil {
		t.Fatalf("Metrics.String not JSON: %v", err)
	}
	if decoded.Latencies["query"].Count != 1 {
		t.Errorf("expvar rendering lost the histogram: %s", m.String())
	}
}

func TestHistogramExport(t *testing.T) {
	var h Histogram
	buckets, count, sum := h.Export()
	if count != 0 || sum != 0 {
		t.Fatalf("empty export: count=%d sum=%g", count, sum)
	}
	if len(buckets) != histBuckets {
		t.Fatalf("bucket ladder length %d, want %d", len(buckets), histBuckets)
	}

	durations := []time.Duration{
		10 * time.Microsecond, // under histBase → bucket 0
		time.Millisecond,
		time.Millisecond,
		80 * time.Millisecond,
		time.Hour, // beyond the ladder → overflow (+Inf) bucket
	}
	var wantSum float64
	for _, d := range durations {
		h.Observe(d)
		wantSum += d.Seconds()
	}

	buckets, count, sum = h.Export()
	if count != int64(len(durations)) {
		t.Errorf("count = %d, want %d", count, len(durations))
	}
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", sum, wantSum)
	}
	var prevCount int64
	var prevBound float64
	for i, b := range buckets {
		if b.CumulativeCount < prevCount {
			t.Fatalf("ladder not monotone at %d: %d < %d", i, b.CumulativeCount, prevCount)
		}
		if i < len(buckets)-1 {
			if b.UpperBound <= prevBound {
				t.Fatalf("bounds not increasing at %d: %g <= %g", i, b.UpperBound, prevBound)
			}
			if b.UpperBound != histBound(i) {
				t.Fatalf("bound %d = %g, want %g", i, b.UpperBound, histBound(i))
			}
		} else if !math.IsInf(b.UpperBound, 1) {
			t.Fatalf("last bound = %g, want +Inf", b.UpperBound)
		}
		prevCount, prevBound = b.CumulativeCount, b.UpperBound
	}
	if last := buckets[len(buckets)-1].CumulativeCount; last != count {
		t.Fatalf("+Inf bucket %d != count %d", last, count)
	}
	// Every cumulative bucket count agrees with Prometheus semantics:
	// observations <= UpperBound.
	for i, b := range buckets {
		var want int64
		for _, d := range durations {
			// Observe assigns by histBucket; cumulative count through i
			// includes every duration whose bucket index <= i.
			if histBucket(d) <= i {
				want++
			}
		}
		if b.CumulativeCount != want {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.CumulativeCount, want)
		}
	}
	if snap := h.Snapshot(); snap.Count != count {
		t.Errorf("Snapshot count %d != Export count %d", snap.Count, count)
	}
}
