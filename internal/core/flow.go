package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"analogyield/internal/analysis"
	"analogyield/internal/montecarlo"
	"analogyield/internal/process"
	"analogyield/internal/wbga"
)

// FlowConfig configures a full model-building run. The paper's budgets
// are PopSize=100, Generations=100 (10,000 evaluations) and
// MCSamples=200 per Pareto point; zero values select those defaults,
// negative values are rejected by Validate.
type FlowConfig struct {
	Problem CircuitProblem   // required
	Proc    *process.Process // required (variation model)

	PopSize     int // 0 → 100
	Generations int // 0 → 100
	MCSamples   int // 0 → 200
	Seed        int64
	Workers     int // parallelism for MOO and MC (0 → GOMAXPROCS)

	// MCStrategy selects the Monte Carlo variance-reduction strategy
	// for the per-point variation analysis: "naive" (or empty, the
	// default — plain MC, bit-identical to earlier releases), "is"
	// (importance sampling), "surrogate" (GP-filtered evaluation) or
	// "is+surrogate". See montecarlo.ParseStrategy.
	MCStrategy string
	// CacheSize bounds the MOO genome evaluation cache (0 selects the
	// wbga default, negative disables; see wbga.Options.CacheSize).
	CacheSize int

	// MCDispatcher, when non-nil, spreads each Pareto point's Monte
	// Carlo sample range across peer replicas
	// (montecarlo.RunBatchDistributed); the server wires one up in
	// cluster mode. Only the naive strategy distributes — the
	// variance-reduced estimators keep per-point adaptive state that
	// must see every sample locally. Results are bit-identical to a
	// local run for any shard layout, and the field is deliberately
	// excluded from the checkpoint fingerprint: a job checkpointed on
	// one cluster shape resumes on any other.
	MCDispatcher montecarlo.ShardDispatcher

	Model ModelOptions

	// MaxDroppedFraction bounds the tolerated fraction of Pareto points
	// whose Monte Carlo analysis fails entirely. Dropped points are
	// excluded from the model and counted in FlowResult.DroppedPoints;
	// once more than this fraction of the front is lost the flow fails
	// instead of silently building a model from the remainder.
	// 0 selects the default 0.25; values >= 1 tolerate any loss.
	MaxDroppedFraction float64

	// Checkpoint, when non-empty, is the path of the resume file: the
	// flow checkpoints after the MOO stage and after every
	// CheckpointEvery Monte Carlo points, and a later RunFlow with the
	// same deterministic configuration (problem shape, budgets, seed)
	// resumes from it, producing results bit-identical to an
	// uninterrupted run. The file is removed when the flow completes.
	Checkpoint string
	// CheckpointEvery is the Monte Carlo checkpoint cadence in points
	// (0 → 16; negative checkpoints only after the MOO stage and on
	// cancellation).
	CheckpointEvery int

	// Obs, when non-nil, receives the flow's typed event stream (see
	// Event). Events are delivered synchronously from the flow
	// goroutine.
	Obs Observer

	// Metrics, when non-nil, is updated in place as the flow runs, so a
	// long-lived caller can export one registry (via Metrics.Publish /
	// expvar) across many flows. A nil Metrics uses a private registry;
	// either way FlowResult.Metrics carries the end-of-run snapshot.
	Metrics *Metrics
}

// Validate checks the configuration for nonsensical values, returning an
// explicit error instead of silently substituting defaults. Zero values
// for PopSize/Generations/MCSamples/Workers/MaxDroppedFraction/
// CheckpointEvery remain valid and select the documented paper defaults.
func (c FlowConfig) Validate() error {
	if c.Problem == nil {
		return fmt.Errorf("core: nil problem")
	}
	if c.Proc == nil {
		return fmt.Errorf("core: nil process")
	}
	if len(c.Problem.ObjectiveNames()) != 2 {
		return fmt.Errorf("core: the table model requires exactly 2 objectives, problem has %d",
			len(c.Problem.ObjectiveNames()))
	}
	if c.PopSize < 0 {
		return fmt.Errorf("core: negative PopSize %d", c.PopSize)
	}
	if c.Generations < 0 {
		return fmt.Errorf("core: negative Generations %d", c.Generations)
	}
	if c.MCSamples < 0 {
		return fmt.Errorf("core: negative MCSamples %d", c.MCSamples)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d", c.Workers)
	}
	if c.MaxDroppedFraction < 0 {
		return fmt.Errorf("core: negative MaxDroppedFraction %g", c.MaxDroppedFraction)
	}
	if _, err := montecarlo.ParseStrategy(c.MCStrategy); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// withDefaults resolves zero-value fields to the paper defaults. It must
// run after Validate so negatives have already been rejected.
func (c FlowConfig) withDefaults() FlowConfig {
	if c.PopSize == 0 {
		c.PopSize = 100
	}
	if c.Generations == 0 {
		c.Generations = 100
	}
	if c.MCSamples == 0 {
		c.MCSamples = 200
	}
	if c.MaxDroppedFraction == 0 {
		c.MaxDroppedFraction = 0.25
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 16
	}
	return c
}

// Timing records per-stage wall-clock durations (the paper's Table 5
// reports the optimisation CPU time).
type Timing struct {
	MOO    time.Duration
	MC     time.Duration
	Tables time.Duration
}

// FlowResult is the outcome of RunFlow. When RunFlow returns a context
// error the result still carries everything completed before the
// cancellation (partial archive, analysed points, metrics snapshot).
type FlowResult struct {
	// Archive is every MOO evaluation (Fig 7's 10,000-point cloud).
	Archive []wbga.Evaluation
	// FrontIdx indexes the Pareto-optimal archive entries (Fig 7's
	// front; the paper finds 1022 of 10,000).
	FrontIdx []int
	// Points are the MC-annotated Pareto points (Table 2 rows),
	// sorted by performance 0.
	Points []ParetoPoint
	// Model is the combined performance + variation behavioural model.
	Model *Model
	// Evaluations is the MOO simulation count; MCSimulations counts the
	// variation-model simulations.
	Evaluations   int
	MCSimulations int
	// CacheHits and CacheMisses count MOO genome-cache lookups; each hit
	// is one circuit simulation skipped (see wbga.Result).
	CacheHits, CacheMisses int
	// DroppedPoints counts Pareto points excluded from the model because
	// their Monte Carlo analysis failed entirely (see
	// FlowConfig.MaxDroppedFraction).
	DroppedPoints int
	// MCPredicted counts Monte Carlo samples answered by the surrogate
	// filter instead of a circuit simulation; MCSimulations counts only
	// the simulations actually run, so MCPredicted is the flow's
	// evaluation saving. Zero under the naive and plain-IS strategies.
	MCPredicted int
	// MCMeanESS is the mean effective sample size per freshly analysed
	// Pareto point under an importance-sampling strategy (checkpointed
	// points replayed on resume are not re-counted); zero for naive
	// runs.
	MCMeanESS float64
	// Resumed reports that prior work was recovered from a checkpoint.
	Resumed bool
	// Metrics is the end-of-run snapshot of the flow's counter registry.
	Metrics MetricsSnapshot
	Timing  Timing
}

// wbgaAdapter exposes a CircuitProblem (nominal evaluation) as a
// wbga.Problem.
type wbgaAdapter struct{ p CircuitProblem }

func (a wbgaAdapter) NumParams() int     { return len(a.p.ParamNames()) }
func (a wbgaAdapter) NumObjectives() int { return len(a.p.ObjectiveNames()) }
func (a wbgaAdapter) Maximize() []bool   { return a.p.Maximize() }
func (a wbgaAdapter) Evaluate(genes []float64) ([]float64, error) {
	return a.p.Evaluate(genes, nil)
}

// NewEvaluator satisfies wbga.ReusableProblem: problems that accept a
// solver workspace get one long-lived workspace per WBGA worker; plain
// problems fall back to the shared Evaluate.
func (a wbgaAdapter) NewEvaluator() func([]float64) ([]float64, error) {
	we, ok := a.p.(WorkspaceEvaluator)
	if !ok {
		return a.Evaluate
	}
	ws := analysis.NewWorkspace()
	return func(genes []float64) ([]float64, error) {
		return we.EvaluateWS(genes, nil, ws)
	}
}

// mcBatchFactory builds the per-worker Monte Carlo evaluator for the
// whole MC stage: each worker owns one long-lived solver workspace
// (when the problem supports it) and evaluates any point's genes
// through it as the batch scheduler moves the worker across points.
func mcBatchFactory(p CircuitProblem, genes [][]float64) montecarlo.BatchFactory {
	we, ok := p.(WorkspaceEvaluator)
	if !ok {
		return func() montecarlo.PointEvaluator {
			return func(point int, s *process.Sample) ([]float64, error) {
				return p.Evaluate(genes[point], s)
			}
		}
	}
	return func() montecarlo.PointEvaluator {
		ws := analysis.NewWorkspace()
		return func(point int, s *process.Sample) ([]float64, error) {
			return we.EvaluateWS(genes[point], s, ws)
		}
	}
}

// flowRun carries the per-run state shared by RunFlow's stages.
type flowRun struct {
	cfg     FlowConfig
	obs     Observer
	metrics *Metrics
	res     *FlowResult
	ck      *checkpoint
}

func (f *flowRun) emit(e Event) {
	if f.obs != nil {
		f.obs.Observe(e)
	}
}

// save writes the current checkpoint when checkpointing is enabled and
// notifies the observer. Checkpoint write failures are hard errors: a
// caller that asked for resumability must not discover at kill time that
// no checkpoint ever existed.
func (f *flowRun) save() error {
	if f.cfg.Checkpoint == "" {
		return nil
	}
	if err := saveCheckpoint(f.cfg.Checkpoint, f.ck); err != nil {
		return err
	}
	f.metrics.checkpoints.Add(1)
	f.emit(CheckpointSaved{Path: f.cfg.Checkpoint, MCDone: len(f.ck.Done)})
	return nil
}

// RunFlow executes the complete paper flow: WBGA optimisation, Pareto
// extraction, per-point Monte Carlo, and table-model construction.
//
// Cancellation is cooperative: ctx is checked once per WBGA generation
// and once per Monte Carlo point (plus per sample batch inside a
// point), so cancellation latency is bounded by one generation or one MC
// point. A cancelled flow returns the partial FlowResult alongside
// ctx.Err(); with FlowConfig.Checkpoint set the partial state is also
// persisted, and a later RunFlow with the same configuration resumes
// from it with bit-identical final results.
func RunFlow(ctx context.Context, cfg FlowConfig) (*FlowResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	f := &flowRun{cfg: cfg, obs: cfg.Obs, metrics: cfg.Metrics, res: &FlowResult{}}
	if f.metrics == nil {
		f.metrics = &Metrics{}
	}
	f.metrics.flows.Add(1)
	defer func() { f.res.Metrics = f.metrics.Snapshot() }()

	fp := cfg.fingerprint()
	if cfg.Checkpoint != "" {
		ck, err := loadCheckpoint(cfg.Checkpoint)
		switch {
		case err == nil && ck.Fingerprint != fp:
			return nil, fmt.Errorf("core: checkpoint %s was written by a different flow configuration; delete it or change FlowConfig.Checkpoint", cfg.Checkpoint)
		case err == nil:
			f.ck = ck
		case !errors.Is(err, os.ErrNotExist):
			return nil, err
		}
	}

	if f.ck != nil {
		// Resume: the checkpointed MOO stage replaces stages 1-2.
		f.res.Resumed = true
		f.res.Archive = f.ck.Archive
		f.res.FrontIdx = f.ck.FrontIdx
		f.res.Evaluations = f.ck.Evaluations
		f.res.CacheHits = f.ck.CacheHits
		f.res.CacheMisses = f.ck.CacheMisses
		f.emit(FlowResumed{Path: cfg.Checkpoint, MCDone: len(f.ck.Done)})
	} else {
		if err := f.runMOO(ctx); err != nil {
			return f.res, err
		}
		f.ck = &checkpoint{
			Version:     checkpointVersion,
			Fingerprint: fp,
			Archive:     f.res.Archive,
			FrontIdx:    f.res.FrontIdx,
			Evaluations: f.res.Evaluations,
			CacheHits:   f.res.CacheHits,
			CacheMisses: f.res.CacheMisses,
		}
		if err := f.save(); err != nil {
			return f.res, err
		}
	}

	if err := f.runMC(ctx); err != nil {
		return f.res, err
	}
	if err := f.buildTables(); err != nil {
		return f.res, err
	}
	if cfg.Checkpoint != "" {
		// The flow completed; the checkpoint has served its purpose.
		if err := os.Remove(cfg.Checkpoint); err != nil && !errors.Is(err, os.ErrNotExist) {
			return f.res, fmt.Errorf("core: removing finished checkpoint: %w", err)
		}
	}
	return f.res, nil
}

// runMOO executes stages 1-2 (WBGA optimisation + Pareto extraction).
func (f *flowRun) runMOO(ctx context.Context) error {
	cfg, res := f.cfg, f.res
	totalEvals := cfg.PopSize * cfg.Generations
	t0 := time.Now()
	f.emit(StageStart{Stage: StageMOO, Total: totalEvals})
	mooRes, err := wbga.Run(ctx, wbgaAdapter{cfg.Problem}, wbga.Options{
		PopSize:     cfg.PopSize,
		Generations: cfg.Generations,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		CacheSize:   cfg.CacheSize,
		OnGeneration: func(gs wbga.GenStats) {
			f.emit(GenerationDone{
				Gen:         gs.Gen,
				Generations: cfg.Generations,
				Evals:       gs.Evals,
				TotalEvals:  totalEvals,
				BestFitness: gs.BestFitness,
				CacheHits:   gs.CacheHits,
				CacheMisses: gs.CacheMisses,
			})
		},
	})
	elapsed := time.Since(t0)
	res.Timing.MOO = elapsed
	f.metrics.addStage(StageMOO, elapsed)
	if mooRes != nil {
		res.Archive = mooRes.Evals
		res.FrontIdx = mooRes.FrontIdx
		res.Evaluations = mooRes.Evaluations
		res.CacheHits = mooRes.CacheHits
		res.CacheMisses = mooRes.CacheMisses
		f.metrics.evaluations.Add(int64(mooRes.Evaluations))
		f.metrics.cacheHits.Add(int64(mooRes.CacheHits))
		f.metrics.cacheMisses.Add(int64(mooRes.CacheMisses))
		for i := range mooRes.Evals {
			if !mooRes.Evals[i].OK {
				f.metrics.solverFailures.Add(1)
			}
		}
	}
	if err != nil {
		return err
	}
	f.emit(StageEnd{Stage: StageMOO, Elapsed: elapsed})
	if len(res.FrontIdx) < 4 {
		return fmt.Errorf("core: Pareto front has only %d points", len(res.FrontIdx))
	}
	return nil
}

// runMC executes stages 3-4: Monte Carlo variation analysis per Pareto
// point, replaying checkpointed points and checkpointing fresh ones.
func (f *flowRun) runMC(ctx context.Context) error {
	cfg, res := f.cfg, f.res
	total := len(res.FrontIdx)
	objNames := cfg.Problem.ObjectiveNames()
	t1 := time.Now()
	f.emit(StageStart{Stage: StageMC, Total: total})
	defer func() {
		elapsed := time.Since(t1)
		res.Timing.MC += elapsed
		f.metrics.addStage(StageMC, elapsed)
	}()

	strategy, serr := montecarlo.ParseStrategy(cfg.MCStrategy)
	if serr != nil {
		return serr // unreachable after Validate; kept for direct callers
	}

	apply := func(rec mcPointRecord, resumed bool) {
		if rec.Dropped {
			res.DroppedPoints++
			f.emit(PointDropped{Index: rec.FrontPos, Err: errors.New(rec.DropMsg)})
			return
		}
		res.Points = append(res.Points, rec.Point)
		res.MCSimulations += rec.MCSims
		// Under a surrogate strategy MCSims records the simulations
		// actually run; the balance of the per-point budget was answered
		// by the filter. This derivation also holds for checkpointed
		// points, whose Result is not retained.
		if strategy != montecarlo.StrategyNaive {
			res.MCPredicted += cfg.MCSamples - rec.MCSims
		}
		f.emit(MCPointDone{
			Index:    rec.FrontPos,
			Total:    total,
			Perf:     rec.Point.Perf,
			DeltaPct: rec.Point.DeltaPct,
			Failures: rec.Failures,
			Resumed:  resumed,
		})
	}
	for _, rec := range f.ck.Done {
		apply(rec, true)
	}

	// The remaining points run as ONE batch on a persistent worker pool:
	// workers stream (point, sample-chunk) items across point boundaries
	// instead of draining at each one, and the scheduler's in-order
	// delivery hands finished points back in front position order — so
	// events, checkpoints and results are bit-identical to the serial
	// per-point loop for any Workers value.
	start := len(f.ck.Done)
	specs := make([]montecarlo.PointSpec, total-start)
	genes := make([][]float64, total-start)
	for i := range specs {
		pos := start + i
		specs[i] = montecarlo.PointSpec{
			Seed:    cfg.Seed + int64(pos)*1000003,
			Samples: cfg.MCSamples,
		}
		genes[i] = res.Archive[res.FrontIdx[pos]].ParamGenes
	}
	if strategy != montecarlo.StrategyNaive {
		f.metrics.setMCStrategy(strategy.String())
	}
	var essSum float64
	essPoints := 0
	batchOpts := montecarlo.BatchOptions{
		Proc:    cfg.Proc,
		Workers: cfg.Workers,
		Metrics: objNames,
		Gauges:  f.metrics,
	}
	factory := mcBatchFactory(cfg.Problem, genes)
	deliver := func(point int, mcRes *montecarlo.Result, merr error) error {
		pos := start + point
		rec := mcPointRecord{FrontPos: pos}
		if merr != nil {
			// The point's MC failed outright: record the drop rather
			// than silently thinning the front.
			rec.Dropped = true
			rec.DropMsg = merr.Error()
			f.metrics.droppedPoints.Add(1)
			f.metrics.mcSimulations.Add(int64(cfg.MCSamples))
			f.metrics.solverFailures.Add(int64(cfg.MCSamples))
		} else {
			ev := res.Archive[res.FrontIdx[pos]]
			phys, derr := cfg.Problem.Denormalize(genes[point])
			if derr != nil {
				return derr
			}
			rec.Point = ParetoPoint{
				Params:   phys,
				Perf:     [2]float64{ev.Objectives[0], ev.Objectives[1]},
				DeltaPct: [2]float64{mcRes.Stats[0].DeltaPct, mcRes.Stats[1].DeltaPct},
			}
			// MCSims records simulations actually run: the full budget
			// under naive/IS, fewer when the surrogate filter answered
			// part of it.
			rec.MCSims = cfg.MCSamples
			if strategy != montecarlo.StrategyNaive {
				rec.MCSims = mcRes.FullEvals
				f.metrics.mcPredicted.Add(int64(mcRes.Predicted))
				essSum += mcRes.ESS
				essPoints++
			}
			rec.Failures = mcRes.Failed
			f.metrics.mcSimulations.Add(int64(rec.MCSims))
			f.metrics.solverFailures.Add(int64(mcRes.Failed))
		}
		f.ck.Done = append(f.ck.Done, rec)
		apply(rec, false)
		if cfg.CheckpointEvery > 0 && len(f.ck.Done)%cfg.CheckpointEvery == 0 && pos != total-1 {
			return f.save()
		}
		return nil
	}

	// StrategyNaive delegates inside RunVarianceBatch to the exact
	// RunBatch scheduler, so the default configuration reproduces
	// earlier releases bit for bit. In cluster mode the naive strategy
	// runs through the distributed scheduler instead — same samples,
	// same derivation, bit-identical results for any shard layout.
	var err error
	if cfg.MCDispatcher != nil && cfg.MCDispatcher.Shards() > 0 && strategy == montecarlo.StrategyNaive {
		err = montecarlo.RunBatchDistributed(ctx, batchOpts, specs, genes, factory, cfg.MCDispatcher, deliver)
	} else {
		err = montecarlo.RunVarianceBatch(ctx, batchOpts,
			montecarlo.VarianceOptions{Strategy: strategy}, specs, factory, deliver)
	}
	if err != nil {
		// On cancellation the scheduler has delivered a prefix of completed
		// points, so the checkpoint written here resumes exactly where
		// delivery stopped.
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			if serr := f.save(); serr != nil {
				return serr
			}
			return cerr
		}
		return err
	}

	if essPoints > 0 {
		res.MCMeanESS = essSum / float64(essPoints)
		f.metrics.addMCESS(essSum, essPoints)
	}
	if res.DroppedPoints > 0 {
		frac := float64(res.DroppedPoints) / float64(total)
		if frac > cfg.MaxDroppedFraction {
			return fmt.Errorf("core: Monte Carlo dropped %d of %d Pareto points (%.0f%%, budget %.0f%%)",
				res.DroppedPoints, total, 100*frac, 100*cfg.MaxDroppedFraction)
		}
	}
	if strategy != montecarlo.StrategyNaive {
		f.emit(MCStageStats{
			Strategy:  strategy.String(),
			Points:    len(res.Points),
			Samples:   res.MCSimulations + res.MCPredicted,
			FullEvals: res.MCSimulations,
			Predicted: res.MCPredicted,
			MeanESS:   res.MCMeanESS,
		})
	}
	f.emit(StageEnd{Stage: StageMC, Elapsed: time.Since(t1)})
	return nil
}

// buildTables executes stage 5: table-model construction.
func (f *flowRun) buildTables() error {
	cfg, res := f.cfg, f.res
	t2 := time.Now()
	f.emit(StageStart{Stage: StageTables})
	model, err := BuildModel(res.Points, cfg.Problem.ObjectiveNames(),
		cfg.Problem.ParamNames(), cfg.Problem.ParamUnits(), cfg.Model)
	elapsed := time.Since(t2)
	res.Timing.Tables = elapsed
	f.metrics.addStage(StageTables, elapsed)
	if err != nil {
		return err
	}
	res.Model = model
	f.emit(StageEnd{Stage: StageTables, Elapsed: elapsed})
	return nil
}
