package core

import (
	"fmt"
	"time"

	"analogyield/internal/analysis"
	"analogyield/internal/montecarlo"
	"analogyield/internal/process"
	"analogyield/internal/wbga"
)

// FlowConfig configures a full model-building run. The paper's budgets
// are PopSize=100, Generations=100 (10,000 evaluations) and
// MCSamples=200 per Pareto point.
type FlowConfig struct {
	Problem CircuitProblem   // required
	Proc    *process.Process // required (variation model)

	PopSize     int // default 100
	Generations int // default 100
	MCSamples   int // default 200
	Seed        int64
	Workers     int // parallelism for MOO and MC (default GOMAXPROCS)
	// CacheSize bounds the MOO genome evaluation cache (0 selects the
	// wbga default, negative disables; see wbga.Options.CacheSize).
	CacheSize int

	Model ModelOptions

	// OnProgress, when non-nil, reports stage progress: stage is "moo"
	// (done = evaluations) or "mc" (done = Pareto points analysed).
	OnProgress func(stage string, done, total int)
}

// Timing records per-stage wall-clock durations (the paper's Table 5
// reports the optimisation CPU time).
type Timing struct {
	MOO    time.Duration
	MC     time.Duration
	Tables time.Duration
}

// FlowResult is the outcome of RunFlow.
type FlowResult struct {
	// Archive is every MOO evaluation (Fig 7's 10,000-point cloud).
	Archive []wbga.Evaluation
	// FrontIdx indexes the Pareto-optimal archive entries (Fig 7's
	// front; the paper finds 1022 of 10,000).
	FrontIdx []int
	// Points are the MC-annotated Pareto points (Table 2 rows),
	// sorted by performance 0.
	Points []ParetoPoint
	// Model is the combined performance + variation behavioural model.
	Model *Model
	// Evaluations is the MOO simulation count; MCSimulations counts the
	// variation-model simulations.
	Evaluations   int
	MCSimulations int
	// CacheHits and CacheMisses count MOO genome-cache lookups; each hit
	// is one circuit simulation skipped (see wbga.Result).
	CacheHits, CacheMisses int
	Timing                 Timing
}

// wbgaAdapter exposes a CircuitProblem (nominal evaluation) as a
// wbga.Problem.
type wbgaAdapter struct{ p CircuitProblem }

func (a wbgaAdapter) NumParams() int     { return len(a.p.ParamNames()) }
func (a wbgaAdapter) NumObjectives() int { return len(a.p.ObjectiveNames()) }
func (a wbgaAdapter) Maximize() []bool   { return a.p.Maximize() }
func (a wbgaAdapter) Evaluate(genes []float64) ([]float64, error) {
	return a.p.Evaluate(genes, nil)
}

// NewEvaluator satisfies wbga.ReusableProblem: problems that accept a
// solver workspace get one long-lived workspace per WBGA worker; plain
// problems fall back to the shared Evaluate.
func (a wbgaAdapter) NewEvaluator() func([]float64) ([]float64, error) {
	we, ok := a.p.(WorkspaceEvaluator)
	if !ok {
		return a.Evaluate
	}
	ws := analysis.NewWorkspace()
	return func(genes []float64) ([]float64, error) {
		return we.EvaluateWS(genes, nil, ws)
	}
}

// mcFactory builds the per-worker Monte Carlo evaluator for one design
// point: workspace-backed when the problem supports it.
func mcFactory(p CircuitProblem, genes []float64) montecarlo.Factory {
	we, ok := p.(WorkspaceEvaluator)
	if !ok {
		return func() montecarlo.Evaluator {
			return func(s *process.Sample) ([]float64, error) {
				return p.Evaluate(genes, s)
			}
		}
	}
	return func() montecarlo.Evaluator {
		ws := analysis.NewWorkspace()
		return func(s *process.Sample) ([]float64, error) {
			return we.EvaluateWS(genes, s, ws)
		}
	}
}

// RunFlow executes the complete paper flow: WBGA optimisation, Pareto
// extraction, per-point Monte Carlo, and table-model construction.
func RunFlow(cfg FlowConfig) (*FlowResult, error) {
	if cfg.Problem == nil {
		return nil, fmt.Errorf("core: nil problem")
	}
	if cfg.Proc == nil {
		return nil, fmt.Errorf("core: nil process")
	}
	if len(cfg.Problem.ObjectiveNames()) != 2 {
		return nil, fmt.Errorf("core: the table model requires exactly 2 objectives")
	}
	if cfg.PopSize <= 0 {
		cfg.PopSize = 100
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 100
	}
	if cfg.MCSamples <= 0 {
		cfg.MCSamples = 200
	}

	res := &FlowResult{}

	// Stage 1-2: multi-objective optimisation.
	t0 := time.Now()
	var onGen func(gen, evals int)
	if cfg.OnProgress != nil {
		total := cfg.PopSize * cfg.Generations
		onGen = func(gen, evals int) { cfg.OnProgress("moo", evals, total) }
	}
	mooRes, err := wbga.Run(wbgaAdapter{cfg.Problem}, wbga.Options{
		PopSize:      cfg.PopSize,
		Generations:  cfg.Generations,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		CacheSize:    cfg.CacheSize,
		OnGeneration: onGen,
	})
	if err != nil {
		return nil, err
	}
	res.Archive = mooRes.Evals
	res.FrontIdx = mooRes.FrontIdx
	res.Evaluations = mooRes.Evaluations
	res.CacheHits = mooRes.CacheHits
	res.CacheMisses = mooRes.CacheMisses
	res.Timing.MOO = time.Since(t0)
	if len(res.FrontIdx) < 4 {
		return nil, fmt.Errorf("core: Pareto front has only %d points", len(res.FrontIdx))
	}

	// Stage 3-4: Monte Carlo variation analysis per Pareto point.
	t1 := time.Now()
	objNames := cfg.Problem.ObjectiveNames()
	for i, idx := range res.FrontIdx {
		ev := res.Archive[idx]
		genes := ev.ParamGenes
		mcRes, err := montecarlo.RunFactory(montecarlo.Options{
			Proc:    cfg.Proc,
			Samples: cfg.MCSamples,
			Seed:    cfg.Seed + int64(i)*1000003,
			Workers: cfg.Workers,
			Metrics: objNames,
		}, mcFactory(cfg.Problem, genes))
		if err != nil {
			// A point whose MC fails entirely is dropped from the model
			// rather than aborting the flow.
			continue
		}
		phys, err := cfg.Problem.Denormalize(genes)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ParetoPoint{
			Params:   phys,
			Perf:     [2]float64{ev.Objectives[0], ev.Objectives[1]},
			DeltaPct: [2]float64{mcRes.Stats[0].DeltaPct, mcRes.Stats[1].DeltaPct},
		})
		res.MCSimulations += cfg.MCSamples
		if cfg.OnProgress != nil {
			cfg.OnProgress("mc", i+1, len(res.FrontIdx))
		}
	}
	res.Timing.MC = time.Since(t1)

	// Stage 5: table-model construction.
	t2 := time.Now()
	model, err := BuildModel(res.Points, objNames, cfg.Problem.ParamNames(),
		cfg.Problem.ParamUnits(), cfg.Model)
	if err != nil {
		return nil, err
	}
	res.Model = model
	res.Timing.Tables = time.Since(t2)
	return res, nil
}
