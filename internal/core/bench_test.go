package core

import (
	"context"
	"runtime"
	"testing"

	"analogyield/internal/process"
)

// benchFlowConfig is a small but complete flow: WBGA, Pareto
// extraction, per-point Monte Carlo on the batch scheduler, and table
// construction over the synthetic problem.
func benchFlowConfig(workers int) FlowConfig {
	return FlowConfig{
		Problem:     synthProblem{},
		Proc:        process.C35(),
		PopSize:     24,
		Generations: 12,
		MCSamples:   60,
		Seed:        1,
		Workers:     workers,
	}
}

// BenchmarkFlowSerial pins the single-worker flow cost; compare with
// BenchmarkFlowWorkers for the scheduler's speedup on multi-core hosts
// (results are bit-identical between the two — see
// TestRunFlowDeterministicAcrossWorkers).
func BenchmarkFlowSerial(b *testing.B) {
	cfg := benchFlowConfig(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunFlow(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowWorkers runs the same flow with GOMAXPROCS workers
// through the point-level MC batch scheduler.
func BenchmarkFlowWorkers(b *testing.B) {
	cfg := benchFlowConfig(runtime.GOMAXPROCS(0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunFlow(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
