// Package core implements the paper's primary contribution: the
// combined performance + statistical-variation behavioural-model flow.
//
// The flow (paper Fig 3) is:
//
//  1. Netlist & objective generation — a CircuitProblem supplies the
//     parameter space and the simulation-backed objective functions.
//  2. Multi-objective optimisation — the WBGA explores the space
//     (internal/wbga), archiving every evaluation.
//  3. Pareto front — non-dominated extraction over the archive.
//  4. Variation model — Monte Carlo analysis at every Pareto point
//     yields the per-performance Δ% (internal/montecarlo).
//  5. Table model — performance and variation lookup tables with cubic
//     spline interpolation and no extrapolation (internal/table).
//  6. Yield-targeted design — a spec query guard-bands the required
//     performance by the interpolated variation and inverse-interpolates
//     the designable parameters (Model.DesignFor).
package core

import (
	"fmt"

	"analogyield/internal/analysis"
	"analogyield/internal/ota"
	"analogyield/internal/process"
)

// CircuitProblem is the circuit-side contract of the flow: a normalised
// parameter space with simulation-backed objectives, evaluable both
// nominally and under a statistical process sample.
//
// The flow's table model supports exactly two objectives (the paper's
// structure: one table per performance function keyed on performance,
// and parameter tables keyed on the two performances).
type CircuitProblem interface {
	// ParamNames labels the designable parameters (Table 1 order).
	ParamNames() []string
	// ObjectiveNames labels the performance functions.
	ObjectiveNames() []string
	// Maximize gives each objective's sense.
	Maximize() []bool
	// Evaluate simulates the circuit at normalised parameter genes,
	// under an optional process sample (nil = nominal). Must be safe
	// for concurrent use.
	Evaluate(genes []float64, sample *process.Sample) ([]float64, error)
	// Denormalize maps genes to physical parameter values (the values
	// stored in the parameter tables, in the units of ParamUnits).
	Denormalize(genes []float64) ([]float64, error)
	// ParamUnits names the physical unit of each parameter as stored in
	// tables (e.g. "um").
	ParamUnits() []string
}

// WorkspaceEvaluator is an optional CircuitProblem extension for
// problems whose simulations can reuse solver workspaces. The flow's
// hot loops (WBGA population scoring, per-point Monte Carlo) give every
// worker goroutine one long-lived workspace and evaluate through it, so
// every simulation after a worker's first is allocation-free in the
// solver. The workspace is not safe for concurrent use; callers must
// not share one across goroutines.
type WorkspaceEvaluator interface {
	CircuitProblem
	// EvaluateWS is Evaluate with an explicit workspace (nil behaves
	// exactly like Evaluate).
	EvaluateWS(genes []float64, sample *process.Sample, ws *analysis.Workspace) ([]float64, error)
}

// OTAProblem adapts the symmetrical-OTA benchmark to the flow: eight
// designable parameters (Table 1) and two maximised objectives,
// open-loop gain (dB) and phase margin (degrees).
type OTAProblem struct {
	Config ota.Config
	Space  ota.Space
}

// NewOTAProblem returns the paper's benchmark problem with default
// testbench conditions and Table 1 ranges.
func NewOTAProblem() *OTAProblem {
	return &OTAProblem{Config: ota.DefaultConfig(), Space: ota.DefaultSpace()}
}

// ParamNames returns the Table 1 labels.
func (p *OTAProblem) ParamNames() []string { return p.Space.Names() }

// ObjectiveNames returns the paper's two performance functions.
func (p *OTAProblem) ObjectiveNames() []string { return []string{"gain_db", "pm_deg"} }

// Maximize reports both objectives as maximised.
func (p *OTAProblem) Maximize() []bool { return []bool{true, true} }

// ParamUnits reports micrometres for all eight W/L parameters.
func (p *OTAProblem) ParamUnits() []string {
	u := make([]string, 8)
	for i := range u {
		u[i] = "um"
	}
	return u
}

// Evaluate simulates the OTA testbench at the given genes.
func (p *OTAProblem) Evaluate(genes []float64, sample *process.Sample) ([]float64, error) {
	return p.EvaluateWS(genes, sample, nil)
}

// EvaluateWS simulates the OTA testbench through a reusable solver
// workspace (nil allocates fresh buffers, like Evaluate).
func (p *OTAProblem) EvaluateWS(genes []float64, sample *process.Sample, ws *analysis.Workspace) ([]float64, error) {
	params, err := p.Space.Denormalize(genes)
	if err != nil {
		return nil, err
	}
	perf, err := p.Config.EvaluateWS(params, sample, ws)
	if err != nil {
		return nil, err
	}
	return []float64{perf.GainDB, perf.PMDeg}, nil
}

// Denormalize maps genes to physical widths/lengths in micrometres.
func (p *OTAProblem) Denormalize(genes []float64) ([]float64, error) {
	params, err := p.Space.Denormalize(genes)
	if err != nil {
		return nil, err
	}
	v := params.Vector()
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * 1e6 // metres → µm for table storage
	}
	return out, nil
}

// ParamsFromTableValues converts table-stored µm values back to
// ota.Params (metres).
func (p *OTAProblem) ParamsFromTableValues(vals []float64) (ota.Params, error) {
	if len(vals) != 8 {
		return ota.Params{}, fmt.Errorf("core: %d parameter values, want 8", len(vals))
	}
	m := make([]float64, 8)
	for i, v := range vals {
		m[i] = v * 1e-6
	}
	return ota.FromVector(m)
}
