package core

import (
	"sync/atomic"
	"unsafe"
)

// This file implements the contention-avoidance layer under the Metrics
// registry. A single atomic.Int64 counter is perfectly scalable for
// correctness but not for throughput: at ~100k requests/s every core
// bounces the same cache line through the coherence protocol on each
// increment. A ShardedCounter scatters increments across a power-of-two
// array of cache-line-padded slots, picked by a cheap per-goroutine
// hash, and only sums the slots when somebody reads the counter —
// writes are frequent and reads (Snapshot, /metrics scrapes) are rare,
// so that is exactly the right trade.

// counterShards is the number of slots per counter. Sixteen padded
// slots cover typical server core counts; past that the shards still
// help (two goroutines only collide 1/16th of the time) without the
// footprint growing per-CPU. Must be a power of two.
const counterShards = 16

// shardSlot is one cache line worth of counter: the padding guarantees
// two slots never share a line, so increments on different slots never
// contend.
type shardSlot struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is an int64 counter optimised for concurrent
// increments: Add scatters across padded shards, Load sums them.
// Like any multi-word counter it is monotone but not linearizable —
// a Load concurrent with Adds sees some subset of them, which is the
// same guarantee a lone atomic counter gives a multi-counter snapshot.
// The zero value is ready to use.
type ShardedCounter struct {
	shards [counterShards]shardSlot
}

// Add increments the counter by n.
func (c *ShardedCounter) Add(n int64) {
	c.shards[shardIndex()].v.Add(n)
}

// Load returns the current total.
func (c *ShardedCounter) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Store resets the counter to n (stored in shard 0, all others
// cleared). Not atomic with respect to concurrent Adds; callers only
// use it quiescently (tests, counter resets between runs).
func (c *ShardedCounter) Store(n int64) {
	c.shards[0].v.Store(n)
	for i := 1; i < counterShards; i++ {
		c.shards[i].v.Store(0)
	}
}

// shardIndex picks this goroutine's shard. The address of a
// stack-allocated byte is a free proxy for goroutine identity: each
// goroutine's stack lives in its own allocation, so distinct goroutines
// see distinct, stable-ish addresses while one goroutine keeps hitting
// the same few slots (stacks only move on growth). The xor-fold mixes
// the entropy of the middle bits — the low bits are frame-alignment,
// the top bits are the arena. The conversion to uintptr keeps b on the
// stack (nothing retains the pointer), so the whole thing is two
// arithmetic ops and no allocation.
func shardIndex() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	p ^= p >> 17
	return int(p>>3) & (counterShards - 1)
}
