package analysis

import (
	"fmt"
	"math"

	"analogyield/internal/circuit"
	"analogyield/internal/num"
)

// fourKT is 4·k·T at 300 K (J).
const fourKT = 4 * 1.380649e-23 * 300

// mosGamma is the long-channel thermal-noise coefficient of the MOSFET
// drain current PSD, S = 4kT·γ·gm.
const mosGamma = 2.0 / 3.0

// NoiseResult holds a small-signal noise analysis: the output noise
// voltage PSD across frequency, the per-device contributions, and the
// integrated RMS over the swept band.
type NoiseResult struct {
	Freqs     []float64
	OutputPSD []float64            // total output PSD, V²/Hz
	ByDevice  map[string][]float64 // per-source output PSD, V²/Hz
	// TotalRMS is the output noise voltage integrated over the sweep
	// (trapezoidal in linear frequency), volts.
	TotalRMS float64
}

// Noise computes the thermal output noise at a node: every resistor
// contributes a 4kT/R current source and every MOSFET a 4kT·γ·gm drain
// current source; each is propagated to the output through the
// small-signal network at each frequency.
//
// Flicker (1/f) noise is not modelled — the substrate targets the
// paper's AC/variation experiments, where thermal noise suffices to
// exercise the machinery.
func Noise(n *circuit.Netlist, op *OPResult, outNode string, freqs []float64) (*NoiseResult, error) {
	outIdx, ok := n.NodeIndex(outNode)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown output node %q", outNode)
	}
	if outIdx == circuit.Ground {
		return nil, fmt.Errorf("analysis: output node is ground")
	}
	if len(freqs) < 2 {
		return nil, fmt.Errorf("analysis: noise needs at least 2 frequencies")
	}

	// Collect noise sources: (name, node a, node b, current PSD A²/Hz).
	type source struct {
		name string
		a, b int
		psd  float64
	}
	var sources []source
	for _, d := range n.Devices() {
		switch dev := d.(type) {
		case *circuit.Resistor:
			sources = append(sources, source{dev.Inst, dev.A, dev.B, fourKT / dev.R})
		case *circuit.MOSFET:
			mop := dev.Model.Eval(dev.W, dev.L,
				op.VNode(dev.G), op.VNode(dev.D), op.VNode(dev.S), op.VNode(dev.B))
			gm := math.Abs(mop.Gm)
			if gm > 0 {
				sources = append(sources, source{dev.Inst, dev.D, dev.S, fourKT * mosGamma * gm})
			}
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("analysis: circuit has no thermal noise sources")
	}

	res := &NoiseResult{
		Freqs:     append([]float64(nil), freqs...),
		OutputPSD: make([]float64, len(freqs)),
		ByDevice:  make(map[string][]float64, len(sources)),
	}
	for _, s := range sources {
		res.ByDevice[s.name] = make([]float64, len(freqs))
	}

	nu := n.NumUnknowns()
	A := num.NewCMatrix(nu)
	b := make([]complex128, nu)
	x := make([]complex128, nu)
	stampB := make([]complex128, nu)
	lu := num.NewCLU(nu)
	for fi, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("analysis: non-positive noise frequency %g", f)
		}
		A.Zero()
		for i := range stampB {
			stampB[i] = 0
		}
		ctx := &circuit.ACCtx{A: A, B: stampB, Omega: 2 * math.Pi * f, DC: op.X}
		for di, d := range n.Devices() {
			d.StampAC(ctx, n.BranchBase(di))
		}
		for i := 0; i < n.NumNodes(); i++ {
			A.Add(i, i, complex(1e-12, 0))
		}
		if err := lu.FactorInto(A); err != nil {
			return nil, fmt.Errorf("analysis: noise solve at %g Hz: %w", f, err)
		}
		for _, s := range sources {
			for i := range b {
				b[i] = 0
			}
			// Unit AC current from a to b (leaves a, enters b).
			if s.a != circuit.Ground {
				b[s.a] -= 1
			}
			if s.b != circuit.Ground {
				b[s.b] += 1
			}
			lu.Solve(b, x)
			h := x[outIdx]
			contrib := (real(h)*real(h) + imag(h)*imag(h)) * s.psd
			res.ByDevice[s.name][fi] += contrib
			res.OutputPSD[fi] += contrib
		}
	}

	// Integrated RMS (trapezoid in linear frequency).
	var integral float64
	for i := 1; i < len(freqs); i++ {
		integral += 0.5 * (res.OutputPSD[i-1] + res.OutputPSD[i]) * (freqs[i] - freqs[i-1])
	}
	res.TotalRMS = math.Sqrt(integral)
	return res, nil
}
