package analysis

import (
	"strings"
	"testing"

	"analogyield/internal/circuit"
	"analogyield/internal/mos"
)

func TestDeviceReport(t *testing.T) {
	n := circuit.New("report")
	vdd := n.Node("vdd")
	g := n.Node("g")
	d := n.Node("d")
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VG", Pos: g, Neg: circuit.Ground, DC: 0.78})
	n.MustAdd(&circuit.Resistor{Inst: "RD", A: vdd, B: d, R: 20e3})
	n.MustAdd(&circuit.MOSFET{Inst: "M1", D: d, G: g, S: circuit.Ground, B: circuit.Ground,
		W: 10 * um, L: 1 * um, Model: mos.NominalNMOS()})
	// Off device: gate at 0.
	n.MustAdd(&circuit.MOSFET{Inst: "M2", D: d, G: circuit.Ground, S: circuit.Ground,
		B: circuit.Ground, W: 10 * um, L: 1 * um, Model: mos.NominalNMOS()})
	// Triode device: large vgs, tiny vds via a low-impedance pullup.
	tr := n.Node("tr")
	n.MustAdd(&circuit.Resistor{Inst: "RT", A: vdd, B: tr, R: 1e6})
	n.MustAdd(&circuit.MOSFET{Inst: "M3", D: tr, G: vdd, S: circuit.Ground, B: circuit.Ground,
		W: 10 * um, L: 1 * um, Model: mos.NominalNMOS()})

	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := DeviceReport(n, op)
	if len(rows) != 3 {
		t.Fatalf("report has %d rows, want 3 (MOSFETs only)", len(rows))
	}
	// Sorted by name.
	if rows[0].Name != "M1" || rows[1].Name != "M2" || rows[2].Name != "M3" {
		t.Errorf("rows not sorted: %v %v %v", rows[0].Name, rows[1].Name, rows[2].Name)
	}
	if rows[0].Region != "saturation" {
		t.Errorf("M1 region = %s", rows[0].Region)
	}
	if rows[1].Region != "off" {
		t.Errorf("M2 region = %s (id %g)", rows[1].Region, rows[1].ID)
	}
	if rows[2].Region != "triode" {
		t.Errorf("M3 region = %s (vds %g vov %g)", rows[2].Region, rows[2].VDS, rows[2].Vov)
	}
	if rows[0].Gm <= 0 || rows[0].ID <= 0 {
		t.Error("M1 report values implausible")
	}

	text := FormatDeviceReport(rows)
	for _, want := range []string{"device", "M1", "M3", "triode", "saturation"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted report missing %q", want)
		}
	}
}

func TestDeviceReportEmpty(t *testing.T) {
	n := circuit.New("rc")
	a := n.Node("a")
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: a, Neg: circuit.Ground, DC: 1})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: a, B: circuit.Ground, R: 1e3})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := DeviceReport(n, op); len(rows) != 0 {
		t.Errorf("non-MOS circuit produced %d rows", len(rows))
	}
}
