package analysis

import "analogyield/internal/num"

// Workspace holds the reusable solver state of one evaluation thread:
// the real Newton system shared by OP, DC sweeps and transient steps,
// and the complex system used by AC and noise solves. Reusing one
// Workspace across the thousands of evaluations of a GA or Monte Carlo
// run keeps the solver hot path allocation-free.
//
// A nil *Workspace is always valid — every analysis then allocates
// internally, once per call — so existing callers need not change.
// A Workspace serves one goroutine at a time: never share one between
// concurrently running analyses.
type Workspace struct {
	re    *num.Workspace
	cx    *num.CWorkspace
	acRef *num.CLU // AC sweep reference factorisation (see ac.go)
}

// NewWorkspace returns an empty workspace; buffers are sized lazily by
// the first analysis that uses it.
func NewWorkspace() *Workspace { return &Workspace{} }

// real returns the real solver workspace sized for order-n systems. On a
// nil receiver it allocates fresh buffers (the allocate-per-call path).
func (w *Workspace) real(n int) *num.Workspace {
	if w == nil {
		return num.NewWorkspace(n)
	}
	if w.re == nil {
		w.re = num.NewWorkspace(n)
	} else {
		w.re.Resize(n)
	}
	return w.re
}

// acReference returns the buffer holding the AC sweep's reference
// factorisation (its order is set by FactorInto). On a nil receiver it
// allocates fresh buffers.
func (w *Workspace) acReference(n int) *num.CLU {
	if w == nil {
		return num.NewCLU(n)
	}
	if w.acRef == nil {
		w.acRef = num.NewCLU(n)
	}
	return w.acRef
}

// cplx returns the complex solver workspace sized for order-n systems.
// On a nil receiver it allocates fresh buffers.
func (w *Workspace) cplx(n int) *num.CWorkspace {
	if w == nil {
		return num.NewCWorkspace(n)
	}
	if w.cx == nil {
		w.cx = num.NewCWorkspace(n)
	} else {
		w.cx.Resize(n)
	}
	return w.cx
}
