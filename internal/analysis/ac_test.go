package analysis

import (
	"math"
	"math/cmplx"
	"testing"

	"analogyield/internal/circuit"
	"analogyield/internal/mos"
)

func rcLowpass(t *testing.T, r, c float64) *circuit.Netlist {
	t.Helper()
	n := circuit.New("rc")
	in := n.Node("in")
	out := n.Node("out")
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground, DC: 0, ACMag: 1})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: in, B: out, R: r})
	n.MustAdd(&circuit.Capacitor{Inst: "C1", A: out, B: circuit.Ground, C: c})
	return n
}

func TestACRCLowpass(t *testing.T) {
	r, c := 1e3, 1e-9
	fc := 1 / (2 * math.Pi * r * c) // ~159 kHz
	n := rcLowpass(t, r, c)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AC(n, op, []float64{fc / 100, fc, fc * 100})
	if err != nil {
		t.Fatal(err)
	}
	vout, err := res.V("out")
	if err != nil {
		t.Fatal(err)
	}
	// Passband: ~1. Corner: 1/sqrt(2). Far stopband: ~fc/f.
	if math.Abs(cmplx.Abs(vout[0])-1) > 0.01 {
		t.Errorf("passband gain = %g, want ~1", cmplx.Abs(vout[0]))
	}
	if math.Abs(cmplx.Abs(vout[1])-1/math.Sqrt2) > 0.01 {
		t.Errorf("corner gain = %g, want 0.707", cmplx.Abs(vout[1]))
	}
	if g := cmplx.Abs(vout[2]); g > 0.02 {
		t.Errorf("stopband gain = %g, want ~0.01", g)
	}
	// Corner phase: -45 degrees.
	ph := cmplx.Phase(vout[1]) * 180 / math.Pi
	if math.Abs(ph+45) > 1 {
		t.Errorf("corner phase = %g deg, want -45", ph)
	}
}

func TestACSeriesRLCResonance(t *testing.T) {
	// Series RLC driven by 1V: the resistor voltage peaks at resonance.
	n := circuit.New("rlc")
	in := n.Node("in")
	mid := n.Node("mid")
	out := n.Node("out")
	L, C := 1e-6, 1e-9
	f0 := 1 / (2 * math.Pi * math.Sqrt(L*C))
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground, ACMag: 1})
	n.MustAdd(&circuit.Inductor{Inst: "L1", A: in, B: mid, L: L})
	n.MustAdd(&circuit.Capacitor{Inst: "C1", A: mid, B: out, C: C})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: out, B: circuit.Ground, R: 50})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AC(n, op, []float64{f0 / 10, f0, f0 * 10})
	if err != nil {
		t.Fatal(err)
	}
	vr, _ := res.V("out")
	if cmplx.Abs(vr[1]) < 0.99 {
		t.Errorf("at resonance |V(R)| = %g, want ~1", cmplx.Abs(vr[1]))
	}
	if cmplx.Abs(vr[0]) > 0.5 || cmplx.Abs(vr[2]) > 0.5 {
		t.Errorf("off resonance |V(R)| = %g, %g, want << 1",
			cmplx.Abs(vr[0]), cmplx.Abs(vr[2]))
	}
}

func TestACCommonSourceGain(t *testing.T) {
	// Common-source amp: small-signal gain ≈ −gm·(RD ∥ ro).
	n := circuit.New("cs")
	vdd := n.Node("vdd")
	g := n.Node("g")
	d := n.Node("d")
	rd := 20e3
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VG", Pos: g, Neg: circuit.Ground, DC: 0.8, ACMag: 1})
	n.MustAdd(&circuit.Resistor{Inst: "RD", A: vdd, B: d, R: rd})
	m := &circuit.MOSFET{Inst: "M1", D: d, G: g, S: circuit.Ground, B: circuit.Ground,
		W: 10 * um, L: 1 * um, Model: mos.NominalNMOS()}
	n.MustAdd(m)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AC(n, op, []float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	vout, _ := res.V("d")
	gmRo := m.LastOP.Gm * (rd * (1 / m.LastOP.Gds) / (rd + 1/m.LastOP.Gds))
	gain := vout[0]
	if real(gain) > -1 {
		t.Errorf("common-source gain should be negative and > 1 in magnitude: %v", gain)
	}
	if math.Abs(cmplx.Abs(gain)-gmRo)/gmRo > 0.05 {
		t.Errorf("|gain| = %g, want ~gm*(RD||ro) = %g", cmplx.Abs(gain), gmRo)
	}
}

func TestACDecade(t *testing.T) {
	n := rcLowpass(t, 1e3, 1e-9)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ACDecade(n, op, 1e3, 1e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Freqs) < 30 {
		t.Errorf("3 decades at 10 pts/dec should give >= 30 points, got %d", len(res.Freqs))
	}
	if res.Freqs[0] != 1e3 || math.Abs(res.Freqs[len(res.Freqs)-1]-1e6) > 1 {
		t.Errorf("endpoints wrong: %g .. %g", res.Freqs[0], res.Freqs[len(res.Freqs)-1])
	}
}

func TestACValidation(t *testing.T) {
	n := rcLowpass(t, 1e3, 1e-9)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AC(n, op, nil); err == nil {
		t.Error("empty frequency list accepted")
	}
	if _, err := AC(n, op, []float64{0}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := ACDecade(n, op, 10, 5, 10); err == nil {
		t.Error("inverted range accepted")
	}
	res, err := AC(n, op, []float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.V("missing"); err == nil {
		t.Error("unknown node accepted")
	}
	if v, err := res.V("0"); err != nil || v[0] != 0 {
		t.Error("ground AC voltage should be 0")
	}
}

// TestACWithWorkersBitIdentical: the sweep must produce bit-identical
// solutions for any worker count — every frequency point reuses the
// same read-only reference pivots, so scheduling cannot leak into the
// arithmetic.
func TestACWithWorkersBitIdentical(t *testing.T) {
	n := rcLowpass(t, 1e3, 1e-9)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	freqs := make([]float64, 200)
	for i := range freqs {
		freqs[i] = 1e2 * math.Pow(10, float64(i)*7/199) // 100 Hz .. 1 GHz
	}
	serial, err := ACWith(n, op, freqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		par, err := ACWithWorkers(n, op, freqs, workers, NewWorkspace())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial.X {
			for k := range serial.X[i] {
				if serial.X[i][k] != par.X[i][k] {
					t.Fatalf("workers=%d: X[%d][%d] = %v, want %v (bit-exact)",
						workers, i, k, par.X[i][k], serial.X[i][k])
				}
			}
		}
	}
}

// TestACWithWorkersError: a bad frequency list fails identically on the
// serial and parallel paths.
func TestACWithWorkersError(t *testing.T) {
	n := rcLowpass(t, 1e3, 1e-9)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ACWithWorkers(n, op, []float64{1e3, -1, 1e5}, 4, nil); err == nil {
		t.Error("negative frequency accepted by parallel sweep")
	}
	if _, err := ACWithWorkers(n, op, nil, 4, nil); err == nil {
		t.Error("empty sweep accepted by parallel sweep")
	}
}
