package analysis

import (
	"testing"

	"analogyield/internal/circuit"
	"analogyield/internal/mos"
	"analogyield/internal/num"
)

func benchAmp(b *testing.B) *circuit.Netlist {
	b.Helper()
	n := circuit.New("bench cs amp")
	vdd := n.Node("vdd")
	g := n.Node("g")
	d := n.Node("d")
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VG", Pos: g, Neg: circuit.Ground, DC: 0.8, ACMag: 1})
	n.MustAdd(&circuit.Resistor{Inst: "RD", A: vdd, B: d, R: 20e3})
	n.MustAdd(&circuit.MOSFET{Inst: "M1", D: d, G: g, S: circuit.Ground, B: circuit.Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()})
	n.MustAdd(&circuit.Capacitor{Inst: "CL", A: d, B: circuit.Ground, C: 1e-12})
	return n
}

func BenchmarkOPCommonSource(b *testing.B) {
	n := benchAmp(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OP(n, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkACSweep(b *testing.B) {
	n := benchAmp(b)
	op, err := OP(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	freqs := num.Logspace(1e3, 1e9, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AC(n, op, freqs); err != nil {
			b.Fatal(err)
		}
	}
}
