package analysis

import (
	"runtime"
	"testing"

	"analogyield/internal/circuit"
	"analogyield/internal/mos"
	"analogyield/internal/num"
)

func benchAmp(b testing.TB) *circuit.Netlist {
	b.Helper()
	n := circuit.New("bench cs amp")
	vdd := n.Node("vdd")
	g := n.Node("g")
	d := n.Node("d")
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VG", Pos: g, Neg: circuit.Ground, DC: 0.8, ACMag: 1})
	n.MustAdd(&circuit.Resistor{Inst: "RD", A: vdd, B: d, R: 20e3})
	n.MustAdd(&circuit.MOSFET{Inst: "M1", D: d, G: g, S: circuit.Ground, B: circuit.Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()})
	n.MustAdd(&circuit.Capacitor{Inst: "CL", A: d, B: circuit.Ground, C: 1e-12})
	return n
}

func BenchmarkOPCommonSource(b *testing.B) {
	n := benchAmp(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OP(n, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPCommonSourceWS is BenchmarkOPCommonSource with a reused
// workspace — the configuration every GA/MC worker runs in.
func BenchmarkOPCommonSourceWS(b *testing.B) {
	n := benchAmp(b)
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OP(n, &OPOptions{WS: ws}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPSolve measures the steady-state Newton solve: a converged
// warm start refined through a reused workspace, the inner loop of every
// repeated evaluation (DC sweeps, GA populations, Monte Carlo samples).
func BenchmarkOPSolve(b *testing.B) {
	n := benchAmp(b)
	op, err := OP(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	var o *OPOptions
	opts := o.withDefaults()
	ws := opts.WS.real(n.NumUnknowns())
	x := make([]float64, n.NumUnknowns())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(x, op.X)
		if _, ok := newton(n, x, opts, opts.Gmin, 1, ws); !ok {
			b.Fatal("steady-state newton did not converge")
		}
	}
}

// TestOPSolveSteadyStateAllocs pins the allocation budget of the
// steady-state solve path: at most 2 allocs/op (the stamp context; every
// matrix, RHS, update and LU buffer is reused).
func TestOPSolveSteadyStateAllocs(t *testing.T) {
	n := benchAmp(t)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	var o *OPOptions
	opts := o.withDefaults()
	ws := opts.WS.real(n.NumUnknowns())
	x := make([]float64, n.NumUnknowns())
	allocs := testing.AllocsPerRun(50, func() {
		copy(x, op.X)
		if _, ok := newton(n, x, opts, opts.Gmin, 1, ws); !ok {
			t.Fatal("steady-state newton did not converge")
		}
	})
	if allocs > 2 {
		t.Errorf("steady-state OP solve allocates %v objects/op, want <= 2", allocs)
	}
}

func BenchmarkACSweep(b *testing.B) {
	n := benchAmp(b)
	op, err := OP(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	freqs := num.Logspace(1e3, 1e9, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AC(n, op, freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACSweepWS is BenchmarkACSweep with a reused workspace: the
// per-frequency complex system is stamped and factored in place.
func BenchmarkACSweepWS(b *testing.B) {
	n := benchAmp(b)
	op, err := OP(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	freqs := num.Logspace(1e3, 1e9, 60)
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ACWith(n, op, freqs, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// TestACSweepSteadyStateAllocs bounds the per-frequency allocations of a
// workspace-backed AC sweep: the result rows plus a handful of
// fixed-size header objects, independent of iteration count.
func TestACSweepSteadyStateAllocs(t *testing.T) {
	n := benchAmp(t)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	freqs := num.Logspace(1e3, 1e9, 60)
	ws := NewWorkspace()
	if _, err := ACWith(n, op, freqs, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ACWith(n, op, freqs, ws); err != nil {
			t.Fatal(err)
		}
	})
	// Output rows: one solution slice per frequency plus one stamp
	// context, the Freqs copy, the X header and the result struct.
	budget := float64(len(freqs) + 2*len(freqs) + 8)
	if allocs > budget {
		t.Errorf("AC sweep allocates %v objects/op, want <= %v", allocs, budget)
	}
}

// BenchmarkTranWS runs a short fixed-step transient with a reused
// workspace.
func BenchmarkTranWS(b *testing.B) {
	n := benchAmp(b)
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Tran(n, TranOptions{TStop: 100e-9, TStep: 1e-9, WS: ws}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACSweepWorkers is BenchmarkACSweepWS fanned out over
// GOMAXPROCS workers through the shared reference factorisation.
func BenchmarkACSweepWorkers(b *testing.B) {
	n := benchAmp(b)
	op, err := OP(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	freqs := num.Logspace(1e3, 1e9, 60)
	ws := NewWorkspace()
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ACWithWorkers(n, op, freqs, workers, ws); err != nil {
			b.Fatal(err)
		}
	}
}
