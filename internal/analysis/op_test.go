package analysis

import (
	"math"
	"testing"

	"analogyield/internal/circuit"
	"analogyield/internal/mos"
)

const um = 1e-6

func divider(t *testing.T) *circuit.Netlist {
	t.Helper()
	n := circuit.New("divider")
	in := n.Node("in")
	mid := n.Node("mid")
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground, DC: 3})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: in, B: mid, R: 1e3})
	n.MustAdd(&circuit.Resistor{Inst: "R2", A: mid, B: circuit.Ground, R: 2e3})
	return n
}

func TestOPDivider(t *testing.T) {
	n := divider(t)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := op.V("mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-6 {
		t.Errorf("V(mid) = %g, want 2", v)
	}
	if g, _ := op.V("0"); g != 0 {
		t.Error("ground voltage should be 0")
	}
	if _, err := op.V("nope"); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestOPSourceBranchCurrent(t *testing.T) {
	n := divider(t)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Branch current of V1 is the last unknown: 3V across 3k = 1 mA,
	// flowing from + through the source means the source *delivers* 1 mA,
	// so the branch current (out of +) is -1 mA by the stamp convention
	// (current enters the + node from the source).
	ib := op.X[n.NumNodes()]
	if math.Abs(math.Abs(ib)-1e-3) > 1e-9 {
		t.Errorf("|branch current| = %g, want 1 mA", math.Abs(ib))
	}
}

func TestOPCurrentSource(t *testing.T) {
	n := circuit.New("isrc")
	a := n.Node("a")
	// 1 mA pushed into node a (from ground through source into a).
	n.MustAdd(&circuit.ISource{Inst: "I1", Pos: circuit.Ground, Neg: a, DC: 1e-3})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: a, B: circuit.Ground, R: 5e3})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.V("a")
	if math.Abs(v-5) > 1e-6 {
		t.Errorf("V(a) = %g, want 5", v)
	}
}

func TestOPVCVS(t *testing.T) {
	n := circuit.New("vcvs")
	in := n.Node("in")
	out := n.Node("out")
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground, DC: 0.5})
	n.MustAdd(&circuit.VCVS{Inst: "E1", OutP: out, OutN: circuit.Ground,
		InP: in, InN: circuit.Ground, Gain: 10})
	n.MustAdd(&circuit.Resistor{Inst: "RL", A: out, B: circuit.Ground, R: 1e3})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.V("out")
	if math.Abs(v-5) > 1e-9 {
		t.Errorf("VCVS out = %g, want 5", v)
	}
}

func TestOPVCCS(t *testing.T) {
	n := circuit.New("vccs")
	in := n.Node("in")
	out := n.Node("out")
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground, DC: 1})
	// gm = 1 mS, current flows from ground to out (pulls out low? check sign):
	// VCCS: current Gm*(v(InP)-v(InN)) flows OutP -> OutN internally.
	n.MustAdd(&circuit.VCCS{Inst: "G1", OutP: circuit.Ground, OutN: out,
		InP: in, InN: circuit.Ground, Gm: 1e-3})
	n.MustAdd(&circuit.Resistor{Inst: "RL", A: out, B: circuit.Ground, R: 2e3})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.V("out")
	// 1 mA pushed into out through 2k => +2 V.
	if math.Abs(v-2) > 1e-6 {
		t.Errorf("VCCS out = %g, want 2", v)
	}
}

func TestOPDiodeConnectedNMOS(t *testing.T) {
	// Current-source-fed diode-connected NMOS: V(gate)=V(drain) settles
	// near vth + vov.
	n := circuit.New("diode")
	d := n.Node("d")
	n.MustAdd(&circuit.ISource{Inst: "I1", Pos: circuit.Ground, Neg: d, DC: 20e-6})
	n.MustAdd(&circuit.MOSFET{Inst: "M1", D: d, G: d, S: circuit.Ground, B: circuit.Ground,
		W: 10 * um, L: 1 * um, Model: mos.NominalNMOS()})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.V("d")
	if v < 0.5 || v > 1.2 {
		t.Errorf("diode-connected NMOS V = %g, want vth+vov in (0.5, 1.2)", v)
	}
	// Check the device current matches the source.
	m := n.Device("M1").(*circuit.MOSFET)
	if math.Abs(m.LastOP.Id-20e-6)/20e-6 > 0.01 {
		t.Errorf("device current %g, want 20 µA", m.LastOP.Id)
	}
}

func TestOPCommonSourceAmp(t *testing.T) {
	// NMOS common-source with resistive load; verify a sane bias point.
	n := circuit.New("cs")
	vdd := n.Node("vdd")
	g := n.Node("g")
	d := n.Node("d")
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VG", Pos: g, Neg: circuit.Ground, DC: 0.75})
	n.MustAdd(&circuit.Resistor{Inst: "RD", A: vdd, B: d, R: 50e3})
	n.MustAdd(&circuit.MOSFET{Inst: "M1", D: d, G: g, S: circuit.Ground, B: circuit.Ground,
		W: 10 * um, L: 1 * um, Model: mos.NominalNMOS()})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	vd, _ := op.V("d")
	if vd <= 0.2 || vd >= 3.2 {
		t.Errorf("drain bias = %g, want inside the supply range", vd)
	}
}

func TestOPPMOSMirror(t *testing.T) {
	// PMOS current mirror from VDD: reference 20 µA, mirror into a
	// resistor; the output current should track the reference.
	n := circuit.New("pmirror")
	vdd := n.Node("vdd")
	ref := n.Node("ref")
	out := n.Node("out")
	pm := mos.NominalPMOS()
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.MOSFET{Inst: "MP1", D: ref, G: ref, S: vdd, B: vdd,
		W: 20 * um, L: 4 * um, Model: pm})
	n.MustAdd(&circuit.MOSFET{Inst: "MP2", D: out, G: ref, S: vdd, B: vdd,
		W: 20 * um, L: 4 * um, Model: pm})
	n.MustAdd(&circuit.ISource{Inst: "IREF", Pos: ref, Neg: circuit.Ground, DC: 20e-6})
	n.MustAdd(&circuit.Resistor{Inst: "RL", A: out, B: circuit.Ground, R: 10e3})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	vout, _ := op.V("out")
	iout := vout / 10e3
	if math.Abs(iout-20e-6)/20e-6 > 0.15 {
		t.Errorf("mirrored current = %g, want ~20 µA (±15%%)", iout)
	}
}

func TestDCSweepNMOSTransfer(t *testing.T) {
	n := circuit.New("sweep")
	vdd := n.Node("vdd")
	g := n.Node("g")
	d := n.Node("d")
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VG", Pos: g, Neg: circuit.Ground, DC: 0})
	n.MustAdd(&circuit.Resistor{Inst: "RD", A: vdd, B: d, R: 20e3})
	n.MustAdd(&circuit.MOSFET{Inst: "M1", D: d, G: g, S: circuit.Ground, B: circuit.Ground,
		W: 10 * um, L: 1 * um, Model: mos.NominalNMOS()})
	pts, err := DCSweep(n, "VG", []float64{0.2, 0.5, 0.8, 1.1, 1.4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d sweep points", len(pts))
	}
	// Drain voltage must fall monotonically as the gate rises.
	prev := math.Inf(1)
	for _, p := range pts {
		vd, _ := p.OP.V("d")
		if vd >= prev {
			t.Errorf("V(d) not monotone at VG=%g: %g >= %g", p.Value, vd, prev)
		}
		prev = vd
	}
	// VG restored after sweep.
	if vg := n.Device("VG").(*circuit.VSource).DC; vg != 0 {
		t.Errorf("sweep did not restore source: %g", vg)
	}
}

func TestDCSweepRejectsNonSource(t *testing.T) {
	n := divider(t)
	if _, err := DCSweep(n, "R1", []float64{1}, nil); err == nil {
		t.Fatal("sweeping a resistor accepted")
	}
}

func TestOPOptionsValidation(t *testing.T) {
	n := divider(t)
	if _, err := OP(n, &OPOptions{X0: []float64{0}}); err == nil {
		t.Fatal("wrong-length X0 accepted")
	}
}

func TestOPWarmStart(t *testing.T) {
	n := divider(t)
	op1, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := OP(n, &OPOptions{X0: op1.X})
	if err != nil {
		t.Fatal(err)
	}
	if op2.Iterations > op1.Iterations {
		t.Errorf("warm start took more iterations (%d) than cold (%d)",
			op2.Iterations, op1.Iterations)
	}
}
