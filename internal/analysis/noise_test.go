package analysis

import (
	"math"
	"testing"

	"analogyield/internal/circuit"
	"analogyield/internal/mos"
	"analogyield/internal/num"
)

const kT300 = 1.380649e-23 * 300

func TestNoiseRCIntegratesToKTOverC(t *testing.T) {
	// The most famous result in circuit noise: a resistor filtered by a
	// capacitor integrates to vn² = kT/C regardless of R.
	for _, r := range []float64{1e3, 100e3} {
		c := 1e-12
		n := circuit.New("ktc")
		a := n.Node("a")
		out := n.Node("out")
		n.MustAdd(&circuit.VSource{Inst: "V1", Pos: a, Neg: circuit.Ground, DC: 0})
		n.MustAdd(&circuit.Resistor{Inst: "R1", A: a, B: out, R: r})
		n.MustAdd(&circuit.Capacitor{Inst: "C1", A: out, B: circuit.Ground, C: c})
		op, err := OP(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Sweep far past the corner so the integral converges.
		fc := 1 / (2 * math.Pi * r * c)
		freqs := num.Logspace(fc/1e4, fc*1e4, 400)
		res, err := Noise(n, op, "out", freqs)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Sqrt(kT300 / c) // ~64 µV for 1 pF
		if math.Abs(res.TotalRMS-want)/want > 0.05 {
			t.Errorf("R=%g: integrated noise %g V, want kT/C %g V", r, res.TotalRMS, want)
		}
	}
}

func TestNoiseLowFreqDensity4kTR(t *testing.T) {
	// Below the corner, the output PSD equals the resistor's 4kTR.
	r, c := 10e3, 1e-12
	n := circuit.New("4ktr")
	a := n.Node("a")
	out := n.Node("out")
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: a, Neg: circuit.Ground, DC: 0})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: a, B: out, R: r})
	n.MustAdd(&circuit.Capacitor{Inst: "C1", A: out, B: circuit.Ground, C: c})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Noise(n, op, "out", []float64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * kT300 * r
	if math.Abs(res.OutputPSD[0]-want)/want > 0.01 {
		t.Errorf("low-freq PSD = %g, want 4kTR = %g", res.OutputPSD[0], want)
	}
}

func TestNoiseCommonSourceAmp(t *testing.T) {
	// CS amp: output noise = 4kT·RD (load) + 4kT·γ·gm·(gain path)²; the
	// MOSFET contribution must appear and the total must exceed the
	// resistor-only noise.
	n := circuit.New("csnoise")
	vdd := n.Node("vdd")
	g := n.Node("g")
	d := n.Node("d")
	rd := 20e3
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VG", Pos: g, Neg: circuit.Ground, DC: 0.78})
	n.MustAdd(&circuit.Resistor{Inst: "RD", A: vdd, B: d, R: rd})
	m := &circuit.MOSFET{Inst: "M1", D: d, G: g, S: circuit.Ground, B: circuit.Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()}
	n.MustAdd(m)
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Noise(n, op, "d", []float64{1e3, 2e3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByDevice) != 2 {
		t.Fatalf("want 2 noise sources, got %d", len(res.ByDevice))
	}
	mosPSD := res.ByDevice["M1"][0]
	rdPSD := res.ByDevice["RD"][0]
	if mosPSD <= 0 || rdPSD <= 0 {
		t.Fatal("missing contributions")
	}
	// Analytic check for the resistor path: its current noise sees the
	// output impedance RD ∥ ro.
	rout := rd * (1 / m.LastOP.Gds) / (rd + 1/m.LastOP.Gds)
	wantRD := 4 * kT300 / rd * rout * rout
	if math.Abs(rdPSD-wantRD)/wantRD > 0.05 {
		t.Errorf("RD contribution %g, want %g", rdPSD, wantRD)
	}
	wantMOS := 4 * kT300 * (2.0 / 3.0) * m.LastOP.Gm * rout * rout
	if math.Abs(mosPSD-wantMOS)/wantMOS > 0.05 {
		t.Errorf("M1 contribution %g, want %g", mosPSD, wantMOS)
	}
	if math.Abs(res.OutputPSD[0]-(mosPSD+rdPSD)) > 1e-30 {
		t.Error("total PSD is not the sum of contributions")
	}
}

func TestNoiseValidation(t *testing.T) {
	n := circuit.New("v")
	a := n.Node("a")
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: a, Neg: circuit.Ground, DC: 1})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: a, B: circuit.Ground, R: 1e3})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Noise(n, op, "missing", []float64{1, 2}); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := Noise(n, op, "0", []float64{1, 2}); err == nil {
		t.Error("ground output accepted")
	}
	if _, err := Noise(n, op, "a", []float64{1}); err == nil {
		t.Error("single frequency accepted")
	}
	if _, err := Noise(n, op, "a", []float64{-1, 1}); err == nil {
		t.Error("negative frequency accepted")
	}
	// Noiseless circuit.
	n2 := circuit.New("c-only")
	b := n2.Node("b")
	n2.MustAdd(&circuit.VSource{Inst: "V1", Pos: b, Neg: circuit.Ground, DC: 1})
	n2.MustAdd(&circuit.Capacitor{Inst: "C1", A: b, B: circuit.Ground, C: 1e-12})
	op2, err := OP(n2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Noise(n2, op2, "b", []float64{1, 2}); err == nil {
		t.Error("noiseless circuit accepted")
	}
}

func TestNoiseOTAInputReferredSane(t *testing.T) {
	// Integration check on the full OTA testbench netlist: output noise
	// density at low frequency should be dominated by the amplified
	// input devices — just require a plausible magnitude (nV-µV/√Hz
	// referred to the output through ~180x gain).
	if testing.Short() {
		t.Skip("OTA noise in -short mode")
	}
	// Reuse the parsed netlist via the builder in package ota would be a
	// dependency cycle here, so build a small two-stage amp instead.
	n := circuit.New("twostage")
	vdd := n.Node("vdd")
	g := n.Node("g")
	d1 := n.Node("d1")
	d2 := n.Node("d2")
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: circuit.Ground, DC: 3.3})
	n.MustAdd(&circuit.VSource{Inst: "VG", Pos: g, Neg: circuit.Ground, DC: 0.78})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: vdd, B: d1, R: 20e3})
	n.MustAdd(&circuit.MOSFET{Inst: "M1", D: d1, G: g, S: circuit.Ground, B: circuit.Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()})
	n.MustAdd(&circuit.Resistor{Inst: "R2", A: vdd, B: d2, R: 20e3})
	n.MustAdd(&circuit.MOSFET{Inst: "M2", D: d2, G: d1, S: circuit.Ground, B: circuit.Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()})
	op, err := OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Noise(n, op, "d2", []float64{1e3, 1e4})
	if err != nil {
		t.Fatal(err)
	}
	density := math.Sqrt(res.OutputPSD[0])
	if density < 1e-9 || density > 1e-5 {
		t.Errorf("output noise density %g V/sqrt(Hz) implausible", density)
	}
	// Second-stage contributions exist but the first stage dominates
	// (its noise is amplified by the second stage's gain).
	if res.ByDevice["M1"][0] <= res.ByDevice["M2"][0] {
		t.Error("first-stage noise should dominate after amplification")
	}
}
