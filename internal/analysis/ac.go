package analysis

import (
	"fmt"
	"math"

	"analogyield/internal/circuit"
	"analogyield/internal/num"
)

// ACResult holds a small-signal frequency sweep: the complex solution
// vector at every frequency point.
type ACResult struct {
	Freqs []float64      // hertz
	X     [][]complex128 // X[i] is the solution at Freqs[i]
	net   *circuit.Netlist
}

// V returns the complex node voltage across the sweep for a named node.
func (r *ACResult) V(node string) ([]complex128, error) {
	idx, ok := r.net.NodeIndex(node)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown node %q", node)
	}
	out := make([]complex128, len(r.Freqs))
	if idx == circuit.Ground {
		return out, nil
	}
	for i, x := range r.X {
		out[i] = x[idx]
	}
	return out, nil
}

// AC performs a small-signal sweep over the given frequencies (hertz),
// linearised about the DC operating point op. Sources contribute their
// ACMag values as stimulus.
func AC(n *circuit.Netlist, op *OPResult, freqs []float64) (*ACResult, error) {
	return ACWith(n, op, freqs, nil)
}

// ACWith is AC with reusable solver buffers: each frequency point
// stamps, factors and solves through ws instead of allocating a fresh
// complex system. A nil ws allocates internally once per call.
func ACWith(n *circuit.Netlist, op *OPResult, freqs []float64, ws *Workspace) (*ACResult, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("analysis: empty frequency list")
	}
	nu := n.NumUnknowns()
	res := &ACResult{Freqs: append([]float64(nil), freqs...), net: n}
	res.X = make([][]complex128, 0, len(freqs))
	cw := ws.cplx(nu)
	A, B := cw.A, cw.B
	for _, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("analysis: non-positive AC frequency %g", f)
		}
		A.Zero()
		for i := range B {
			B[i] = 0
		}
		ctx := &circuit.ACCtx{A: A, B: B, Omega: 2 * math.Pi * f, DC: op.X}
		for di, d := range n.Devices() {
			d.StampAC(ctx, n.BranchBase(di))
		}
		// A tiny conductance to ground keeps floating small-signal nodes
		// (e.g. isolated gates) solvable without affecting results.
		for i := 0; i < n.NumNodes(); i++ {
			A.Add(i, i, complex(1e-12, 0))
		}
		if err := cw.LU.FactorInto(A); err != nil {
			return nil, fmt.Errorf("analysis: AC solve at %g Hz: %w", f, err)
		}
		cw.LU.Solve(B, cw.X)
		res.X = append(res.X, append([]complex128(nil), cw.X...))
	}
	return res, nil
}

// ACDecade sweeps pointsPerDecade logarithmically spaced frequencies
// from fStart to fStop (inclusive endpoints).
func ACDecade(n *circuit.Netlist, op *OPResult, fStart, fStop float64, pointsPerDecade int) (*ACResult, error) {
	return ACDecadeWith(n, op, fStart, fStop, pointsPerDecade, nil)
}

// ACDecadeWith is ACDecade with reusable solver buffers (see ACWith).
func ACDecadeWith(n *circuit.Netlist, op *OPResult, fStart, fStop float64, pointsPerDecade int, ws *Workspace) (*ACResult, error) {
	if fStart <= 0 || fStop <= fStart {
		return nil, fmt.Errorf("analysis: bad AC range [%g, %g]", fStart, fStop)
	}
	if pointsPerDecade < 1 {
		pointsPerDecade = 10
	}
	decades := math.Log10(fStop / fStart)
	npts := int(math.Ceil(decades*float64(pointsPerDecade))) + 1
	if npts < 2 {
		npts = 2
	}
	return ACWith(n, op, num.Logspace(fStart, fStop, npts), ws)
}
