package analysis

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"analogyield/internal/circuit"
	"analogyield/internal/num"
)

// ACResult holds a small-signal frequency sweep: the complex solution
// vector at every frequency point.
type ACResult struct {
	Freqs []float64      // hertz
	X     [][]complex128 // X[i] is the solution at Freqs[i]
	net   *circuit.Netlist
}

// V returns the complex node voltage across the sweep for a named node.
func (r *ACResult) V(node string) ([]complex128, error) {
	idx, ok := r.net.NodeIndex(node)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown node %q", node)
	}
	out := make([]complex128, len(r.Freqs))
	if idx == circuit.Ground {
		return out, nil
	}
	for i, x := range r.X {
		out[i] = x[idx]
	}
	return out, nil
}

// AC performs a small-signal sweep over the given frequencies (hertz),
// linearised about the DC operating point op. Sources contribute their
// ACMag values as stimulus.
func AC(n *circuit.Netlist, op *OPResult, freqs []float64) (*ACResult, error) {
	return ACWith(n, op, freqs, nil)
}

// stampAC assembles the small-signal system of n at frequency f into
// cw.A and cw.B, linearised about op. Device stamps only write into the
// supplied buffers, so concurrent stamping into distinct workspaces is
// safe.
func stampAC(n *circuit.Netlist, op *OPResult, f float64, cw *num.CWorkspace) {
	cw.A.Zero()
	for i := range cw.B {
		cw.B[i] = 0
	}
	ctx := &circuit.ACCtx{A: cw.A, B: cw.B, Omega: 2 * math.Pi * f, DC: op.X}
	for di, d := range n.Devices() {
		d.StampAC(ctx, n.BranchBase(di))
	}
	// A tiny conductance to ground keeps floating small-signal nodes
	// (e.g. isolated gates) solvable without affecting results.
	for i := 0; i < n.NumNodes(); i++ {
		cw.A.Add(i, i, complex(1e-12, 0))
	}
}

// acReference factors the sweep's reference system — the first
// frequency, under full partial pivoting — into ref. Matrix values
// change smoothly with frequency while the structure is fixed, so every
// sweep point can reuse the reference pivot order (with a deterministic
// per-point fallback when the values drift too far; see
// num.RefactorInto). Because each point's solve depends only on (f,
// ref), never on which point was solved before it, a sweep computes
// bit-identical results for any worker count.
func acReference(n *circuit.Netlist, op *OPResult, f0 float64, cw *num.CWorkspace, ref *num.CLU) error {
	stampAC(n, op, f0, cw)
	if err := ref.FactorInto(cw.A); err != nil {
		return fmt.Errorf("analysis: AC solve at %g Hz: %w", f0, err)
	}
	return nil
}

// acSolve computes the solution at one frequency into res.X[i], reusing
// the reference pivot order.
func acSolve(n *circuit.Netlist, op *OPResult, f float64, cw *num.CWorkspace, ref *num.CLU, res *ACResult, i int) error {
	stampAC(n, op, f, cw)
	if _, err := cw.LU.RefactorInto(cw.A, ref); err != nil {
		return fmt.Errorf("analysis: AC solve at %g Hz: %w", f, err)
	}
	cw.LU.Solve(cw.B, cw.X)
	res.X[i] = append([]complex128(nil), cw.X...)
	return nil
}

func validateFreqs(freqs []float64) error {
	if len(freqs) == 0 {
		return fmt.Errorf("analysis: empty frequency list")
	}
	for _, f := range freqs {
		if f <= 0 {
			return fmt.Errorf("analysis: non-positive AC frequency %g", f)
		}
	}
	return nil
}

// ACWith is AC with reusable solver buffers: each frequency point
// stamps, refactors and solves through ws instead of allocating a fresh
// complex system. A nil ws allocates internally once per call.
func ACWith(n *circuit.Netlist, op *OPResult, freqs []float64, ws *Workspace) (*ACResult, error) {
	if err := validateFreqs(freqs); err != nil {
		return nil, err
	}
	nu := n.NumUnknowns()
	res := &ACResult{Freqs: append([]float64(nil), freqs...), net: n}
	res.X = make([][]complex128, len(freqs))
	cw := ws.cplx(nu)
	ref := ws.acReference(nu)
	if err := acReference(n, op, freqs[0], cw, ref); err != nil {
		return nil, err
	}
	for i, f := range freqs {
		if err := acSolve(n, op, f, cw, ref, res, i); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ACWithWorkers is ACWith fanned out over a pool of goroutines, each
// with its own solver buffers, claiming frequency points off a shared
// atomic counter. Every point reuses the pivot order of the shared
// read-only reference factorisation (first frequency, full pivoting),
// so the result is bit-identical to ACWith — and to itself — for any
// workers value. workers <= 1, or a sweep of one point, runs serially.
func ACWithWorkers(n *circuit.Netlist, op *OPResult, freqs []float64, workers int, ws *Workspace) (*ACResult, error) {
	if workers > len(freqs) {
		workers = len(freqs)
	}
	if workers <= 1 {
		return ACWith(n, op, freqs, ws)
	}
	if err := validateFreqs(freqs); err != nil {
		return nil, err
	}
	nu := n.NumUnknowns()
	res := &ACResult{Freqs: append([]float64(nil), freqs...), net: n}
	res.X = make([][]complex128, len(freqs))
	cw := ws.cplx(nu)
	ref := ws.acReference(nu)
	if err := acReference(n, op, freqs[0], cw, ref); err != nil {
		return nil, err
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wcw := cw // worker 0 reuses the caller's buffers
		if w > 0 {
			wcw = num.NewCWorkspace(nu)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(freqs) {
					return
				}
				if err := acSolve(n, op, freqs[i], wcw, ref, res, i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return res, nil
}

// ACDecade sweeps pointsPerDecade logarithmically spaced frequencies
// from fStart to fStop (inclusive endpoints).
func ACDecade(n *circuit.Netlist, op *OPResult, fStart, fStop float64, pointsPerDecade int) (*ACResult, error) {
	return ACDecadeWith(n, op, fStart, fStop, pointsPerDecade, nil)
}

// ACDecadeWith is ACDecade with reusable solver buffers (see ACWith).
func ACDecadeWith(n *circuit.Netlist, op *OPResult, fStart, fStop float64, pointsPerDecade int, ws *Workspace) (*ACResult, error) {
	return ACDecadeWorkers(n, op, fStart, fStop, pointsPerDecade, 1, ws)
}

// ACDecadeWorkers is ACDecadeWith fanned out over a worker pool (see
// ACWithWorkers); the result is bit-identical for any workers value.
func ACDecadeWorkers(n *circuit.Netlist, op *OPResult, fStart, fStop float64, pointsPerDecade, workers int, ws *Workspace) (*ACResult, error) {
	if fStart <= 0 || fStop <= fStart {
		return nil, fmt.Errorf("analysis: bad AC range [%g, %g]", fStart, fStop)
	}
	if pointsPerDecade < 1 {
		pointsPerDecade = 10
	}
	decades := math.Log10(fStop / fStart)
	npts := int(math.Ceil(decades*float64(pointsPerDecade))) + 1
	if npts < 2 {
		npts = 2
	}
	return ACWithWorkers(n, op, num.Logspace(fStart, fStop, npts), workers, ws)
}
