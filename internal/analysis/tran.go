package analysis

import (
	"fmt"
	"math"

	"analogyield/internal/circuit"
	"analogyield/internal/num"
)

// TranOptions configures a transient run.
type TranOptions struct {
	TStop   float64 // end time, s (required)
	TStep   float64 // fixed timestep, s (required for Tran; initial step for TranAdaptive)
	MaxIter int     // Newton iterations per step (default 80)
	VTol    float64 // voltage tolerance (default 1e-6)
	ITol    float64 // current tolerance (default 1e-9)
	// WS, when non-nil, supplies reusable solver buffers shared by the
	// initial operating point and every timestep. nil allocates
	// internally once per run.
	WS *Workspace
}

func (o TranOptions) withDefaults() TranOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 80
	}
	if o.VTol <= 0 {
		o.VTol = 1e-6
	}
	if o.ITol <= 0 {
		o.ITol = 1e-9
	}
	return o
}

// TranResult holds the transient waveforms.
type TranResult struct {
	Times []float64
	X     [][]float64 // X[i] is the solution at Times[i]
	net   *circuit.Netlist
}

// V returns the waveform of a named node.
func (r *TranResult) V(node string) ([]float64, error) {
	idx, ok := r.net.NodeIndex(node)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown node %q", node)
	}
	out := make([]float64, len(r.Times))
	if idx == circuit.Ground {
		return out, nil
	}
	for i, x := range r.X {
		out[i] = x[idx]
	}
	return out, nil
}

// At returns the solution interpolated (linearly) at time t.
func (r *TranResult) At(node string, t float64) (float64, error) {
	v, err := r.V(node)
	if err != nil {
		return 0, err
	}
	if len(r.Times) == 0 {
		return 0, fmt.Errorf("analysis: empty transient result")
	}
	if t <= r.Times[0] {
		return v[0], nil
	}
	for i := 1; i < len(r.Times); i++ {
		if t <= r.Times[i] {
			t0, t1 := r.Times[i-1], r.Times[i]
			f := (t - t0) / (t1 - t0)
			return v[i-1] + f*(v[i]-v[i-1]), nil
		}
	}
	return v[len(v)-1], nil
}

// cloneState deep-copies the companion-model state map.
func cloneState(state map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(state))
	for k, v := range state {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

// tranStep advances the circuit one timestep from (xPrev, state) to time
// t with step dt, solving through the reusable buffers of ws and
// returning the new solution and the updated companion state. The inputs
// are not modified.
func tranStep(n *circuit.Netlist, xPrev []float64, state map[string][]float64,
	t, dt float64, opts TranOptions, ws *num.Workspace) ([]float64, map[string][]float64, error) {
	nu := n.NumUnknowns()
	nn := n.NumNodes()
	J, B, xn := ws.J, ws.B, ws.Xn
	x := append([]float64(nil), xPrev...)
	st := cloneState(state)
	ctx := &circuit.TranCtx{J: J, B: B, X: x, XPrev: xPrev, Time: t, Dt: dt, State: st}
	converged := false
	for iter := 0; iter < opts.MaxIter; iter++ {
		J.Zero()
		for i := range B {
			B[i] = 0
		}
		for di, d := range n.Devices() {
			d.StampTran(ctx, n.BranchBase(di))
		}
		for i := 0; i < nn; i++ {
			J.Add(i, i, 1e-12)
		}
		// Full partial pivoting on the step's first iteration, pivot
		// reuse (with deterministic fallback) on the rest — see the
		// matching comment in op.go's newton.
		var ferr error
		if iter == 0 {
			ferr = ws.LU.FactorInto(J)
		} else {
			_, ferr = ws.LU.RefactorInto(J, ws.LU)
		}
		if ferr != nil {
			return nil, nil, fmt.Errorf("analysis: transient t=%g: %w", t, ferr)
		}
		ws.LU.Solve(B, xn)
		worst := 0.0
		for i := 0; i < nu; i++ {
			dx := xn[i] - x[i]
			tol := opts.ITol
			if i < nn {
				tol = opts.VTol
				if math.Abs(dx) > 0.5 {
					dx = math.Copysign(0.5, dx)
				}
			}
			x[i] += dx
			if m := math.Abs(dx) / tol; m > worst {
				worst = m
			}
		}
		if worst < 1 {
			converged = true
			break
		}
	}
	if !converged {
		return nil, nil, fmt.Errorf("analysis: transient step at t=%g did not converge", t)
	}
	// Commit companion state for trapezoidal capacitors.
	for _, d := range n.Devices() {
		if c, ok := d.(*circuit.Capacitor); ok {
			c.UpdateTranState(ctx)
		}
	}
	return x, st, nil
}

// Tran runs a fixed-step transient from the DC operating point.
// Capacitors use trapezoidal companions; MOSFET charge uses backward
// Euler at the bias-point capacitance.
func Tran(n *circuit.Netlist, opts TranOptions) (*TranResult, error) {
	if opts.TStop <= 0 || opts.TStep <= 0 {
		return nil, fmt.Errorf("analysis: transient needs positive TStop and TStep")
	}
	o := opts.withDefaults()
	op, err := OP(n, &OPOptions{WS: o.WS})
	if err != nil {
		return nil, fmt.Errorf("analysis: transient initial condition: %w", err)
	}
	res := &TranResult{net: n}
	res.Times = append(res.Times, 0)
	res.X = append(res.X, append([]float64(nil), op.X...))

	ws := o.WS.real(n.NumUnknowns())
	state := make(map[string][]float64)
	xPrev := append([]float64(nil), op.X...)
	steps := int(math.Ceil(o.TStop / o.TStep))
	for s := 1; s <= steps; s++ {
		t := float64(s) * o.TStep
		x, st, err := tranStep(n, xPrev, state, t, o.TStep, o, ws)
		if err != nil {
			return nil, err
		}
		state = st
		res.Times = append(res.Times, t)
		res.X = append(res.X, append([]float64(nil), x...))
		xPrev = x
	}
	return res, nil
}

// AdaptiveOptions extends TranOptions with local-error control for
// TranAdaptive.
type AdaptiveOptions struct {
	TranOptions
	// RelTol/AbsTol bound the step-doubling error estimate per node
	// voltage (defaults 1e-3 and 1e-6 V).
	RelTol, AbsTol float64
	// MinStep and MaxStep bound the step size (defaults TStop/1e7 and
	// TStop/50).
	MinStep, MaxStep float64
}

// TranAdaptive runs a variable-step transient with step-doubling error
// control: each accepted step satisfies
//
//	|x_full − x_twoHalf| <= AbsTol + RelTol·|x|
//
// per node voltage, where x_full takes one step of h and x_twoHalf two
// steps of h/2 (the Richardson pair). Steps that fail are halved; steps
// with a large margin grow by 1.5×.
func TranAdaptive(n *circuit.Netlist, opts AdaptiveOptions) (*TranResult, error) {
	if opts.TStop <= 0 {
		return nil, fmt.Errorf("analysis: transient needs positive TStop")
	}
	o := opts
	o.TranOptions = opts.TranOptions.withDefaults()
	if o.RelTol <= 0 {
		o.RelTol = 1e-3
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-6
	}
	if o.MaxStep <= 0 {
		o.MaxStep = o.TStop / 50
	}
	if o.MinStep <= 0 {
		o.MinStep = o.TStop / 1e7
	}
	h := o.TStep
	if h <= 0 || h > o.MaxStep {
		h = o.MaxStep / 4
	}

	op, err := OP(n, &OPOptions{WS: o.WS})
	if err != nil {
		return nil, fmt.Errorf("analysis: transient initial condition: %w", err)
	}
	res := &TranResult{net: n}
	res.Times = append(res.Times, 0)
	res.X = append(res.X, append([]float64(nil), op.X...))

	ws := o.WS.real(n.NumUnknowns())
	state := make(map[string][]float64)
	x := append([]float64(nil), op.X...)
	t := 0.0
	nn := n.NumNodes()
	const maxSteps = 2_000_000
	for steps := 0; t < o.TStop; steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("analysis: adaptive transient exceeded %d steps", maxSteps)
		}
		if t+h > o.TStop {
			h = o.TStop - t
		}
		// Full step.
		xF, _, errF := tranStep(n, x, state, t+h, h, o.TranOptions, ws)
		// Two half steps.
		var xH []float64
		var stH map[string][]float64
		var errH error
		if errF == nil {
			xH, stH, errH = tranStep(n, x, state, t+h/2, h/2, o.TranOptions, ws)
			if errH == nil {
				xH, stH, errH = tranStep(n, xH, stH, t+h, h/2, o.TranOptions, ws)
			}
		}
		if errF != nil || errH != nil {
			if h/2 < o.MinStep {
				if errF != nil {
					return nil, errF
				}
				return nil, errH
			}
			h /= 2
			continue
		}
		// Error estimate over node voltages.
		worst := 0.0
		for i := 0; i < nn; i++ {
			tol := o.AbsTol + o.RelTol*math.Abs(xH[i])
			if e := math.Abs(xF[i]-xH[i]) / tol; e > worst {
				worst = e
			}
		}
		if worst > 1 && h/2 >= o.MinStep {
			h /= 2
			continue
		}
		// Accept the more accurate two-half-step solution.
		t += h
		x = xH
		state = stH
		res.Times = append(res.Times, t)
		res.X = append(res.X, append([]float64(nil), x...))
		if worst < 0.25 && h*1.5 <= o.MaxStep {
			h *= 1.5
		}
	}
	return res, nil
}
