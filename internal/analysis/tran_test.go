package analysis

import (
	"math"
	"testing"

	"analogyield/internal/circuit"
)

func TestTranRCCharge(t *testing.T) {
	// Series RC driven by a step (via PulseWave); the capacitor voltage
	// must follow 1 - exp(-t/RC).
	n := circuit.New("rcstep")
	in := n.Node("in")
	out := n.Node("out")
	r, c := 1e3, 1e-9
	tau := r * c
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground, DC: 0,
		Wave: circuit.PulseWave{V1: 0, V2: 1, Delay: 0, Rise: 1e-12, Fall: 1e-12,
			Width: 1, Period: 2}})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: in, B: out, R: r})
	n.MustAdd(&circuit.Capacitor{Inst: "C1", A: out, B: circuit.Ground, C: c})
	res, err := Tran(n, TranOptions{TStop: 5 * tau, TStep: tau / 100})
	if err != nil {
		t.Fatal(err)
	}
	vout, err := res.V("out")
	if err != nil {
		t.Fatal(err)
	}
	// Compare at t = tau and t = 3 tau.
	at := func(tt float64) float64 {
		best, bv := math.Inf(1), 0.0
		for i, tm := range res.Times {
			if d := math.Abs(tm - tt); d < best {
				best, bv = d, vout[i]
			}
		}
		return bv
	}
	if got, want := at(tau), 1-math.Exp(-1); math.Abs(got-want) > 0.02 {
		t.Errorf("v(tau) = %g, want %g", got, want)
	}
	if got, want := at(3*tau), 1-math.Exp(-3); math.Abs(got-want) > 0.02 {
		t.Errorf("v(3tau) = %g, want %g", got, want)
	}
	// Monotone rise.
	for i := 1; i < len(vout); i++ {
		if vout[i] < vout[i-1]-1e-9 {
			t.Fatalf("capacitor voltage fell at step %d", i)
		}
	}
}

func TestTranSineSteadyState(t *testing.T) {
	// RC lowpass driven at its corner: output amplitude → 1/√2.
	n := circuit.New("rcsine")
	in := n.Node("in")
	out := n.Node("out")
	r, c := 1e3, 1e-9
	fc := 1 / (2 * math.Pi * r * c)
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground,
		Wave: circuit.SineWave{Amp: 1, Freq: fc}})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: in, B: out, R: r})
	n.MustAdd(&circuit.Capacitor{Inst: "C1", A: out, B: circuit.Ground, C: c})
	period := 1 / fc
	res, err := Tran(n, TranOptions{TStop: 10 * period, TStep: period / 200})
	if err != nil {
		t.Fatal(err)
	}
	vout, _ := res.V("out")
	// Peak over the last two periods.
	peak := 0.0
	for i, tm := range res.Times {
		if tm > 8*period {
			if a := math.Abs(vout[i]); a > peak {
				peak = a
			}
		}
	}
	want := 1 / math.Sqrt2
	if math.Abs(peak-want) > 0.03 {
		t.Errorf("steady-state peak = %g, want %g", peak, want)
	}
}

func TestTranInductorCurrentRamp(t *testing.T) {
	// Voltage step across L in series with small R: i ramps toward V/R
	// with time constant L/R.
	n := circuit.New("lramp")
	in := n.Node("in")
	mid := n.Node("mid")
	lval, rval := 1e-3, 100.0
	tau := lval / rval
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground, DC: 0,
		Wave: circuit.PulseWave{V1: 0, V2: 1, Rise: 1e-12, Fall: 1e-12, Width: 1, Period: 2}})
	n.MustAdd(&circuit.Inductor{Inst: "L1", A: in, B: mid, L: lval})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: mid, B: circuit.Ground, R: rval})
	res, err := Tran(n, TranOptions{TStop: 3 * tau, TStep: tau / 100})
	if err != nil {
		t.Fatal(err)
	}
	vmid, _ := res.V("mid")
	// v(mid) = i*R → 1-exp(-t/tau); check at tau.
	idx := 0
	for i, tm := range res.Times {
		if tm >= tau {
			idx = i
			break
		}
	}
	want := 1 - math.Exp(-1)
	if math.Abs(vmid[idx]-want) > 0.05 {
		t.Errorf("v(mid) at tau = %g, want ~%g", vmid[idx], want)
	}
}

func TestTranValidation(t *testing.T) {
	n := circuit.New("bad")
	a := n.Node("a")
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: a, B: circuit.Ground, R: 1})
	if _, err := Tran(n, TranOptions{TStop: 0, TStep: 1}); err == nil {
		t.Error("TStop=0 accepted")
	}
	if _, err := Tran(n, TranOptions{TStop: 1, TStep: 0}); err == nil {
		t.Error("TStep=0 accepted")
	}
}

func TestTranUnknownNode(t *testing.T) {
	n := circuit.New("t")
	a := n.Node("a")
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: a, Neg: circuit.Ground, DC: 1})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: a, B: circuit.Ground, R: 1e3})
	res, err := Tran(n, TranOptions{TStop: 1e-6, TStep: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.V("missing"); err == nil {
		t.Error("unknown node accepted")
	}
	if v, err := res.V("0"); err != nil || v[0] != 0 {
		t.Error("ground waveform should be 0")
	}
}

func TestTranAdaptiveRCMatchesAnalytic(t *testing.T) {
	n := circuit.New("rcstep-adaptive")
	in := n.Node("in")
	out := n.Node("out")
	r, c := 1e3, 1e-9
	tau := r * c
	n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground, DC: 0,
		Wave: circuit.PulseWave{V1: 0, V2: 1, Rise: 1e-12, Fall: 1e-12, Width: 1, Period: 2}})
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: in, B: out, R: r})
	n.MustAdd(&circuit.Capacitor{Inst: "C1", A: out, B: circuit.Ground, C: c})
	res, err := TranAdaptive(n, AdaptiveOptions{
		TranOptions: TranOptions{TStop: 5 * tau},
		RelTol:      1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5 * tau, tau, 2 * tau, 4 * tau} {
		got, err := res.At("out", tt)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-tt/tau)
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("v(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestTranAdaptiveUsesFewerSteps(t *testing.T) {
	// A stiff-ish waveform: fast edge then a long settle. The adaptive
	// run must resolve the edge accurately while using far fewer total
	// steps than a fixed run at the edge-resolving step size.
	build := func() *circuit.Netlist {
		n := circuit.New("edge")
		in := n.Node("in")
		out := n.Node("out")
		n.MustAdd(&circuit.VSource{Inst: "V1", Pos: in, Neg: circuit.Ground,
			Wave: circuit.PulseWave{V1: 0, V2: 1, Delay: 1e-7, Rise: 1e-9, Fall: 1e-9,
				Width: 1, Period: 2}})
		n.MustAdd(&circuit.Resistor{Inst: "R1", A: in, B: out, R: 1e3})
		n.MustAdd(&circuit.Capacitor{Inst: "C1", A: out, B: circuit.Ground, C: 1e-11})
		return n
	}
	tStop := 1e-5 // 1000 tau after the edge
	ad, err := TranAdaptive(build(), AdaptiveOptions{
		TranOptions: TranOptions{TStop: tStop},
	})
	if err != nil {
		t.Fatal(err)
	}
	fixedSteps := int(tStop / 1e-9)
	if len(ad.Times) >= fixedSteps/5 {
		t.Errorf("adaptive used %d steps, fixed equivalent would use %d", len(ad.Times), fixedSteps)
	}
	// Final value correct.
	got, _ := ad.At("out", tStop)
	if math.Abs(got-1) > 1e-2 {
		t.Errorf("final value = %g, want 1", got)
	}
}

func TestTranAdaptiveValidation(t *testing.T) {
	n := circuit.New("bad")
	a := n.Node("a")
	n.MustAdd(&circuit.Resistor{Inst: "R1", A: a, B: circuit.Ground, R: 1})
	if _, err := TranAdaptive(n, AdaptiveOptions{}); err == nil {
		t.Error("TStop=0 accepted")
	}
}

func TestTranResultAt(t *testing.T) {
	r := &TranResult{
		Times: []float64{0, 1, 2},
		X:     [][]float64{{0}, {10}, {20}},
		net:   netWithNodeA(t),
	}
	if v, _ := r.At("a", 0.5); math.Abs(v-5) > 1e-12 {
		t.Errorf("At(0.5) = %g", v)
	}
	if v, _ := r.At("a", -1); v != 0 {
		t.Errorf("At before start = %g", v)
	}
	if v, _ := r.At("a", 99); v != 20 {
		t.Errorf("At past end = %g", v)
	}
	if _, err := r.At("zz", 1); err == nil {
		t.Error("unknown node accepted")
	}
}

func netWithNodeA(t *testing.T) *circuit.Netlist {
	t.Helper()
	n := circuit.New("x")
	n.Node("a")
	return n
}
