// Package analysis drives the MNA solutions of a netlist: DC operating
// point (Newton-Raphson with gmin and source stepping), DC sweeps, AC
// small-signal sweeps over frequency, and transient simulation with
// trapezoidal/backward-Euler companion models.
package analysis

import (
	"errors"
	"fmt"
	"math"

	"analogyield/internal/circuit"
	"analogyield/internal/num"
)

// ErrNoConvergence is returned when every convergence aid fails.
var ErrNoConvergence = errors.New("analysis: operating point did not converge")

// OPOptions tunes the DC operating-point solver. The zero value selects
// the defaults documented on each field.
type OPOptions struct {
	MaxIter int       // Newton iterations per solve attempt (default 150)
	VTol    float64   // absolute node-voltage tolerance, V (default 1e-6)
	ITol    float64   // absolute branch-current tolerance, A (default 1e-9)
	Gmin    float64   // diagonal conductance floor, S (default 1e-12)
	VStep   float64   // per-iteration voltage damping limit, V (default 0.5)
	X0      []float64 // initial guess (optional; length NumUnknowns)
	// WS, when non-nil, supplies reusable solver buffers so repeated
	// solves (GA evaluations, Monte Carlo samples, sweeps) do not
	// allocate. nil allocates internally once per call.
	WS *Workspace
}

func (o *OPOptions) withDefaults() OPOptions {
	out := OPOptions{MaxIter: 150, VTol: 1e-6, ITol: 1e-9, Gmin: 1e-12, VStep: 0.5}
	if o == nil {
		return out
	}
	if o.MaxIter > 0 {
		out.MaxIter = o.MaxIter
	}
	if o.VTol > 0 {
		out.VTol = o.VTol
	}
	if o.ITol > 0 {
		out.ITol = o.ITol
	}
	if o.Gmin > 0 {
		out.Gmin = o.Gmin
	}
	if o.VStep > 0 {
		out.VStep = o.VStep
	}
	out.X0 = o.X0
	out.WS = o.WS
	return out
}

// OPResult is a solved DC operating point.
type OPResult struct {
	X          []float64 // node voltages then branch currents
	Iterations int       // Newton iterations of the successful attempt
	net        *circuit.Netlist
}

// V returns the solved voltage at a named node.
func (r *OPResult) V(node string) (float64, error) {
	idx, ok := r.net.NodeIndex(node)
	if !ok {
		return 0, fmt.Errorf("analysis: unknown node %q", node)
	}
	if idx == circuit.Ground {
		return 0, nil
	}
	return r.X[idx], nil
}

// VNode returns the voltage at a node index (0 for ground).
func (r *OPResult) VNode(idx int) float64 {
	if idx == circuit.Ground {
		return 0
	}
	return r.X[idx]
}

// newton runs damped Newton-Raphson at a fixed gmin and source scale,
// starting from x (modified in place), solving through the reusable
// buffers of ws. It reports convergence.
func newton(n *circuit.Netlist, x []float64, opts OPOptions, gmin, srcScale float64, ws *num.Workspace) (int, bool) {
	nn := n.NumNodes()
	J, B, xn := ws.J, ws.B, ws.Xn
	ctx := &circuit.DCCtx{J: J, B: B, X: x, SourceScale: srcScale}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		J.Zero()
		for i := range B {
			B[i] = 0
		}
		for di, d := range n.Devices() {
			d.StampDC(ctx, n.BranchBase(di))
		}
		for i := 0; i < nn; i++ {
			J.Add(i, i, gmin)
		}
		// The Jacobian's structure is fixed across the iteration, so
		// after the first full partial-pivot factorisation the later
		// iterates reuse its pivot order (with a deterministic
		// stability fallback). The chain is seeded fresh at iteration 1
		// of every call, so the result never depends on what the
		// workspace solved before — a Monte Carlo or GA worker pool
		// stays bit-identical for any scheduling.
		var ferr error
		if iter == 1 {
			ferr = ws.LU.FactorInto(J)
		} else {
			_, ferr = ws.LU.RefactorInto(J, ws.LU)
		}
		if ferr != nil {
			return iter, false
		}
		ws.LU.Solve(B, xn)
		// Damping: limit node-voltage steps.
		worst := 0.0
		for i := 0; i < len(x); i++ {
			dx := xn[i] - x[i]
			if i < nn && math.Abs(dx) > opts.VStep {
				dx = math.Copysign(opts.VStep, dx)
			}
			x[i] += dx
			tol := opts.ITol
			if i < nn {
				tol = opts.VTol
			}
			if m := math.Abs(dx) / tol; m > worst {
				worst = m
			}
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				return iter, false
			}
		}
		if worst < 1 {
			return iter, true
		}
	}
	return opts.MaxIter, false
}

// OP solves the DC operating point. It first tries plain Newton from the
// supplied (or zero) initial guess, then gmin stepping, then source
// stepping.
func OP(n *circuit.Netlist, o *OPOptions) (*OPResult, error) {
	opts := o.withDefaults()
	nu := n.NumUnknowns()
	start := make([]float64, nu)
	if opts.X0 != nil {
		if len(opts.X0) != nu {
			return nil, fmt.Errorf("analysis: X0 has %d entries, want %d", len(opts.X0), nu)
		}
		copy(start, opts.X0)
	}
	ws := opts.WS.real(nu)

	// Attempt 1: plain Newton.
	x := append([]float64(nil), start...)
	if it, ok := newton(n, x, opts, opts.Gmin, 1, ws); ok {
		return &OPResult{X: x, Iterations: it, net: n}, nil
	}

	// Attempt 2: gmin stepping from a heavily damped system.
	copy(x, start)
	okAll := true
	total := 0
	for _, g := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, opts.Gmin} {
		it, ok := newton(n, x, opts, g, 1, ws)
		total += it
		if !ok {
			okAll = false
			break
		}
	}
	if okAll {
		return &OPResult{X: x, Iterations: total, net: n}, nil
	}

	// Attempt 3: source stepping.
	for i := range x {
		x[i] = 0
	}
	total = 0
	okAll = true
	for _, s := range []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95, 1.0} {
		it, ok := newton(n, x, opts, opts.Gmin, s, ws)
		total += it
		if !ok {
			// Retry this step with elevated gmin before giving up.
			it2, ok2 := newton(n, x, opts, 1e-6, s, ws)
			total += it2
			if !ok2 {
				okAll = false
				break
			}
		}
	}
	if okAll {
		// Final polish at full sources and floor gmin.
		if it, ok := newton(n, x, opts, opts.Gmin, 1, ws); ok {
			return &OPResult{X: x, Iterations: total + it, net: n}, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoConvergence, n.Stats())
}

// DCSweepPoint is one solution of a DC sweep.
type DCSweepPoint struct {
	Value float64
	OP    *OPResult
}

// DCSweep solves the operating point for each value of the named
// VSource's DC level, warm-starting each solve from the previous one.
// The netlist is modified during the sweep and restored before return.
func DCSweep(n *circuit.Netlist, source string, values []float64, o *OPOptions) ([]DCSweepPoint, error) {
	dev := n.Device(source)
	vs, ok := dev.(*circuit.VSource)
	if !ok {
		return nil, fmt.Errorf("analysis: %q is not a voltage source", source)
	}
	orig := vs.DC
	defer func() { vs.DC = orig }()
	var out []DCSweepPoint
	var prev []float64
	for _, v := range values {
		vs.DC = v
		opts := OPOptions{}
		if o != nil {
			opts = *o
		}
		opts.X0 = prev
		r, err := OP(n, &opts)
		if err != nil {
			return out, fmt.Errorf("analysis: sweep %s=%g: %w", source, v, err)
		}
		prev = r.X
		out = append(out, DCSweepPoint{Value: v, OP: r})
	}
	return out, nil
}
