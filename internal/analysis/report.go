package analysis

import (
	"fmt"
	"sort"
	"strings"

	"analogyield/internal/circuit"
)

// DeviceOP is the operating-point summary of one MOSFET.
type DeviceOP struct {
	Name          string
	ID            float64 // drain current, A
	VGS, VDS, VBS float64
	Vth, Vov      float64
	Gm, Gds, Gmb  float64
	Region        string // "off", "triode", "saturation"
}

// DeviceReport re-evaluates every MOSFET at the solved operating point
// and returns a per-device bias table (the classic SPICE .op printout),
// sorted by instance name.
func DeviceReport(n *circuit.Netlist, op *OPResult) []DeviceOP {
	var out []DeviceOP
	for _, d := range n.Devices() {
		m, ok := d.(*circuit.MOSFET)
		if !ok {
			continue
		}
		mop := m.Model.Eval(m.W, m.L,
			op.VNode(m.G), op.VNode(m.D), op.VNode(m.S), op.VNode(m.B))
		region := "saturation"
		switch {
		case mop.Vov < 0.01 && absf(mop.Id) < 1e-9:
			region = "off"
		case !mop.Saturated:
			region = "triode"
		}
		out = append(out, DeviceOP{
			Name: m.Inst,
			ID:   mop.Id,
			VGS:  mop.Vgs, VDS: mop.Vds, VBS: mop.Vbs,
			Vth: mop.Vth, Vov: mop.Vov,
			Gm: mop.Gm, Gds: mop.Gds, Gmb: mop.Gmb,
			Region: region,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FormatDeviceReport renders the report as an aligned text table.
func FormatDeviceReport(rows []DeviceOP) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %-8s %-8s %-8s %-10s %-10s %-10s\n",
		"device", "id_a", "vgs", "vds", "vov", "gm_s", "gds_s", "region")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12.4g %-8.4f %-8.4f %-8.4f %-10.4g %-10.4g %-10s\n",
			r.Name, r.ID, r.VGS, r.VDS, r.Vov, r.Gm, r.Gds, r.Region)
	}
	return b.String()
}
