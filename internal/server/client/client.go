// Package client is the Go client of the ayd service: yield queries,
// model install/delete, flow-job submission/polling/cancellation, and
// consumption of the SSE event stream. It speaks the wire types of
// internal/server/api against any base URL, so it works equally against
// cmd/ayd and an in-process httptest server.
//
// A zero-config client addresses the pre-tenancy /v1/... routes (the
// default tenant) and emits pre-tenancy request bodies, so it works
// against old servers unchanged; WithTenant scopes every call to
// /v1/t/{tenant}/... instead.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"analogyield/internal/httpx"
	"analogyield/internal/server/api"
)

// Client calls one ayd server, optionally scoped to one tenant.
type Client struct {
	base   string
	tenant string // "" = legacy /v1 routes (default tenant)
	hc     *http.Client
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (tests inject
// an httptest transport; production callers set pooling/timeouts).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTenant scopes every call to the named tenant's routes
// (/v1/t/{tenant}/...). The empty string keeps the pre-tenancy /v1
// routes, which address the default tenant on any server version.
func WithTenant(tenant string) Option {
	return func(c *Client) { c.tenant = tenant }
}

// New creates a client for the server at base (e.g.
// "http://127.0.0.1:8080").
//
// The default transport is tuned for a service client rather than a
// browser: net/http's DefaultTransport keeps only 2 idle connections
// per host, so any caller issuing more than 2 concurrent requests
// churns through TCP handshakes and TIME_WAIT sockets on every burst.
// Compression stays off — the payloads are small JSON and gzip costs
// more than it saves on a loopback or rack-local link. Override with
// WithHTTPClient when a proxy or custom TLS setup is needed.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			MaxConnsPerHost:     256,
			IdleConnTimeout:     90 * time.Second,
			DisableCompression:  true,
		}},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Tenant reports the tenant the client is scoped to ("" = default via
// the legacy routes).
func (c *Client) Tenant() string { return c.tenant }

// path builds a route under the client's tenant scope; suffix segments
// are escaped by the caller where they carry user input.
func (c *Client) path(suffix string) string {
	if c.tenant == "" {
		return "/v1/" + suffix
	}
	return "/v1/t/" + url.PathEscape(c.tenant) + "/" + suffix
}

// do runs one JSON round trip; out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Every call carries a fresh request ID; the server propagates it
	// into its request log and echoes it on the response, so a failed
	// call's api.Error can be matched to the exact server log line.
	reqID := httpx.NewRequestID()
	req.Header.Set(httpx.RequestIDHeader, reqID)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if id := resp.Header.Get(httpx.RequestIDHeader); id != "" {
		reqID = id // older servers don't echo; keep what we sent
	}
	if resp.StatusCode >= 400 {
		var apiErr api.Error
		if jerr := json.NewDecoder(resp.Body).Decode(&apiErr); jerr == nil && apiErr.Message != "" {
			apiErr.Status = resp.StatusCode
			if apiErr.RequestID == "" {
				apiErr.RequestID = reqID
			}
			return &apiErr
		}
		return &api.Error{Status: resp.StatusCode, Message: resp.Status, RequestID: reqID}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health fetches /healthz as a loosely typed document. Cluster tooling
// reads the "replica" section (id, held leases, takeover counters) a
// cluster-mode server adds; single-node servers omit it.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Query answers one yield query.
func (c *Client) Query(ctx context.Context, req api.QueryRequest) (*api.QueryResponse, error) {
	var out api.QueryResponse
	if err := c.do(ctx, http.MethodPost, c.path("yield/query"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryBatch answers several queries in one round trip; Results[i]
// answers reqs[i].
func (c *Client) QueryBatch(ctx context.Context, reqs []api.QueryRequest) ([]api.QueryResult, error) {
	var out api.BatchQueryResponse
	if err := c.do(ctx, http.MethodPost, c.path("yield/query"), api.BatchQueryRequest{Queries: reqs}, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Models lists the server's models.
func (c *Client) Models(ctx context.Context) ([]api.ModelInfo, error) {
	var out []api.ModelInfo
	if err := c.do(ctx, http.MethodGet, c.path("models"), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Model describes one model.
func (c *Client) Model(ctx context.Context, name string) (*api.ModelInfo, error) {
	var out api.ModelInfo
	if err := c.do(ctx, http.MethodGet, c.path("models/")+url.PathEscape(name), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// InstallModel uploads a finished model artefact into the client's
// tenant catalog and returns the catalog entry (including the
// content-addressed version the store assigned).
func (c *Client) InstallModel(ctx context.Context, req api.InstallModelRequest) (*api.ModelInfo, error) {
	var out api.ModelInfo
	if err := c.do(ctx, http.MethodPost, c.path("models"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteModel removes a model (all versions) from the client's tenant
// catalog.
func (c *Client) DeleteModel(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, c.path("models/")+url.PathEscape(name), nil, nil)
}

// SubmitFlow submits a model-building flow job.
func (c *Client) SubmitFlow(ctx context.Context, req api.FlowRequest) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.do(ctx, http.MethodPost, c.path("flows"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Flows lists submitted jobs.
func (c *Client) Flows(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	if err := c.do(ctx, http.MethodGet, c.path("flows"), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Flow polls one job's status.
func (c *Client) Flow(ctx context.Context, id string) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.do(ctx, http.MethodGet, c.path("flows/")+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelFlow cancels a queued or running job.
func (c *Client) CancelFlow(ctx context.Context, id string) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.do(ctx, http.MethodDelete, c.path("flows/")+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamEvents consumes a job's SSE event stream, invoking fn for each
// event in order until the stream ends (the job's terminal job_done
// event, server shutdown, or ctx cancellation) or fn returns an error,
// which is propagated. fromSeq resumes after a previously seen event
// (0 = from the beginning of the replay window).
func (c *Client) StreamEvents(ctx context.Context, id string, fromSeq int, fn func(api.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+c.path("flows/")+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set(httpx.RequestIDHeader, httpx.NewRequestID())
	if fromSeq > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(fromSeq))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr api.Error
		if jerr := json.NewDecoder(resp.Body).Decode(&apiErr); jerr == nil && apiErr.Message != "" {
			apiErr.Status = resp.StatusCode
			return &apiErr
		}
		return &api.Error{Status: resp.StatusCode, Message: resp.Status}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		case line == "" && len(data) > 0:
			var ev api.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("client: bad event payload: %w", err)
			}
			data = data[:0]
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// WaitFlow polls a job until it reaches a terminal state, at cadence
// poll (0 → 200ms).
func (c *Client) WaitFlow(ctx context.Context, id string, poll time.Duration) (*api.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Flow(ctx, id)
		if err != nil {
			return nil, err
		}
		if api.Terminal(st.State) {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}
