package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
	"analogyield/internal/server/client"
	"analogyield/internal/store"
)

// The default namespace is one constant wearing two package names; a
// drift here would silently split the catalog in two.
func TestDefaultTenantConstantsAgree(t *testing.T) {
	if api.DefaultTenant != store.DefaultTenant {
		t.Fatalf("api.DefaultTenant = %q, store.DefaultTenant = %q",
			api.DefaultTenant, store.DefaultTenant)
	}
}

// modelPoints builds the synthetic front in wire form; the base offset
// lets two tenants install distinguishable models under one name.
func modelPoints(n int, base float64) []api.ModelPoint {
	pts := make([]api.ModelPoint, n)
	for i := range pts {
		x := float64(i) / float64(n-1)
		pts[i] = api.ModelPoint{
			Perf:     [2]float64{base + 10*x, 85 - 12*x},
			DeltaPct: [2]float64{1.0 + 0.2*x, 0.5 + 0.1*x},
			Params:   []float64{10 + 50*x, 10, 10},
		}
	}
	return pts
}

func installReq(name string, n int, base float64) api.InstallModelRequest {
	return api.InstallModelRequest{
		Name:           name,
		ObjectiveNames: []string{"gain_db", "pm_deg"},
		ParamNames:     []string{"P1", "P2", "P3"},
		ParamUnits:     []string{"um", "um", "um"},
		Points:         modelPoints(n, base),
	}
}

func bootServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &core.Metrics{}
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLog()
	}
	srv := New(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return srv
}

func shutdown(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestTenantIsolation installs the same model name into two tenants
// (and nothing into the default one) and checks that catalogs, queries
// and the wire "tenant" field never cross namespaces.
func TestTenantIsolation(t *testing.T) {
	srv := bootServer(t, Config{ModelsDir: t.TempDir()})
	defer shutdown(t, srv)
	ctx := context.Background()
	base := "http://" + srv.Addr()

	acme := client.New(base, client.WithTenant("acme"))
	beta := client.New(base, client.WithTenant("beta"))
	def := client.New(base)

	// Same name, different fronts: acme's gain domain starts at 45,
	// beta's at 60.
	if _, err := acme.InstallModel(ctx, installReq("ota", 12, 45)); err != nil {
		t.Fatal(err)
	}
	if _, err := beta.InstallModel(ctx, installReq("ota", 16, 60)); err != nil {
		t.Fatal(err)
	}

	ai, err := acme.Model(ctx, "ota")
	if err != nil {
		t.Fatal(err)
	}
	bi, err := beta.Model(ctx, "ota")
	if err != nil {
		t.Fatal(err)
	}
	if ai.Points != 12 || bi.Points != 16 {
		t.Errorf("points: acme %d beta %d, want 12 and 16", ai.Points, bi.Points)
	}
	if ai.Version == bi.Version {
		t.Errorf("different payloads share content address %q", ai.Version)
	}
	if ai.Tenant != "acme" || bi.Tenant != "beta" {
		t.Errorf("ModelInfo tenants %q/%q", ai.Tenant, bi.Tenant)
	}
	if ai.Domain[0] != 45 || bi.Domain[0] != 60 {
		t.Errorf("domains crossed tenants: acme %v beta %v", ai.Domain, bi.Domain)
	}

	// The default tenant has no "ota" at all.
	if _, err := def.Model(ctx, "ota"); err == nil {
		t.Error("default tenant sees acme's model")
	}
	infos, err := def.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Errorf("default catalog lists %d models, want 0", len(infos))
	}

	// Queries answer within the tenant and stamp it on the response.
	aout, err := acme.Query(ctx, api.QueryRequest{
		TenantRef: api.TenantRef{Model: "ota"},
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: 50},
			{Name: "pm_deg", Sense: ">=", Bound: 76},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if aout.Tenant != "acme" {
		t.Errorf("QueryResponse.Tenant = %q, want acme", aout.Tenant)
	}
	// Bound 50 is inside acme's [45,55] front but below beta's domain:
	// beta's answer sits at its front edge, never acme's interior.
	bout, err := beta.Query(ctx, api.QueryRequest{
		TenantRef: api.TenantRef{Model: "ota"},
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: 62},
			{Name: "pm_deg", Sense: ">=", Bound: 76},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bout.Tenant != "beta" {
		t.Errorf("QueryResponse.Tenant = %q, want beta", bout.Tenant)
	}
	if bout.FrontPerf[0] < 60 {
		t.Errorf("beta answered from acme's front: FrontPerf %v", bout.FrontPerf)
	}

	// A body tenant contradicting the path tenant is rejected, not
	// silently redirected.
	body, _ := json.Marshal(api.QueryRequest{
		TenantRef: api.TenantRef{Tenant: "beta", Model: "ota"},
	})
	resp, err := http.Post(base+"/v1/t/acme/yield/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("contradicting tenants: status %d, want 400", resp.StatusCode)
	}

	// Deleting acme's model leaves beta's intact.
	if err := acme.DeleteModel(ctx, "ota"); err != nil {
		t.Fatal(err)
	}
	if _, err := acme.Model(ctx, "ota"); err == nil {
		t.Error("acme model survived delete")
	}
	if _, err := beta.Model(ctx, "ota"); err != nil {
		t.Errorf("beta model lost by acme's delete: %v", err)
	}
}

// TestWarmStartAndSharedDiskStore is the durability acceptance path: a
// model installed over the API is immediately visible to a second live
// server on the same store directory, and still queryable by (tenant,
// name) after both processes are gone and a third boots cold.
func TestWarmStartAndSharedDiskStore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	query := api.QueryRequest{
		TenantRef: api.TenantRef{Model: "ota-acme"},
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: 50},
			{Name: "pm_deg", Sense: ">=", Bound: 76},
		},
	}

	srv1 := bootServer(t, Config{ModelsDir: dir})
	acme1 := client.New("http://"+srv1.Addr(), client.WithTenant("acme"))
	info, err := acme1.InstallModel(ctx, installReq("ota-acme", 12, 45))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version == "" {
		t.Fatal("install reported no content version")
	}

	// A second live process on the same directory serves the model
	// without any hand-off: the store is the only coordination point.
	srv2 := bootServer(t, Config{ModelsDir: dir})
	acme2 := client.New("http://"+srv2.Addr(), client.WithTenant("acme"))
	out, err := acme2.Query(ctx, query)
	if err != nil {
		t.Fatalf("second live server: %v", err)
	}
	if out.Model != "ota-acme" || out.Tenant != "acme" {
		t.Errorf("second server answered %q/%q", out.Tenant, out.Model)
	}
	shutdown(t, srv2)
	shutdown(t, srv1)

	// Cold restart: same directory, fresh process.
	srv3 := bootServer(t, Config{ModelsDir: dir})
	defer shutdown(t, srv3)
	acme3 := client.New("http://"+srv3.Addr(), client.WithTenant("acme"))
	info3, err := acme3.Model(ctx, "ota-acme")
	if err != nil {
		t.Fatalf("model lost across restart: %v", err)
	}
	if info3.Version != info.Version {
		t.Errorf("version drifted across restart: %q != %q", info3.Version, info.Version)
	}
	if _, err := acme3.Query(ctx, query); err != nil {
		t.Fatalf("query after restart: %v", err)
	}
	// Version pinning addresses the exact artefact that was installed.
	pinned := query
	pinned.Version = info.Version
	if _, err := acme3.Query(ctx, pinned); err != nil {
		t.Fatalf("version-pinned query after restart: %v", err)
	}
}

// TestCorruptArtefactTypedErrors damages stored blobs underneath a
// running server and checks the failure surfaces as a typed 422 — not a
// panic, not a misleading 404 — while absent models still 404.
func TestCorruptArtefactTypedErrors(t *testing.T) {
	dir := t.TempDir()
	srv := bootServer(t, Config{ModelsDir: dir})
	defer shutdown(t, srv)
	ctx := context.Background()
	cl := client.New("http://" + srv.Addr())

	post := func(model string) int {
		t.Helper()
		body, _ := json.Marshal(api.QueryRequest{
			TenantRef: api.TenantRef{Model: model},
			Specs: [2]api.Spec{
				{Name: "gain_db", Sense: ">=", Bound: 50},
				{Name: "pm_deg", Sense: ">=", Bound: 76},
			},
		})
		resp, err := http.Post("http://"+srv.Addr()+"/v1/yield/query",
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	blobPath := func(name string) string {
		t.Helper()
		info, err := cl.Model(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		return filepath.Join(dir, "blobs", info.Version[:2], info.Version)
	}

	for name, n := range map[string]int{"truncated": 12, "flipped": 14, "missing": 16} {
		if _, err := cl.InstallModel(ctx, installReq(name, n, 45)); err != nil {
			t.Fatal(err)
		}
	}

	// Truncated envelope.
	if err := os.Truncate(blobPath("truncated"), 10); err != nil {
		t.Fatal(err)
	}
	// A flipped payload byte keeps the envelope intact but breaks the
	// content fingerprint.
	p := blobPath("flipped")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// A ref whose blob is gone is a damaged store, not an absent model.
	if err := os.Remove(blobPath("missing")); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"truncated", "flipped", "missing"} {
		// Drop residency so the query must read the damaged artefact.
		if !srv.Registry().Evict(api.DefaultTenant, name) {
			t.Fatalf("%s: not resident before eviction", name)
		}
		if got := post(name); got != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422", name, got)
		}
	}
	if got := post("never-installed"); got != http.StatusNotFound {
		t.Errorf("absent model: status %d, want 404", got)
	}
	// The server survived all of it.
	if _, err := cl.Models(ctx); err != nil {
		t.Fatalf("server unhealthy after corrupt reads: %v", err)
	}
}

// TestCheckpointResumesFromStoreOnFreshDataDir kills a server mid-MC,
// then resumes the flow on a replica that shares only the artefact
// store — its local checkpoint directory is brand new, so the resume
// must hydrate the checkpoint from the store.
func TestCheckpointResumesFromStoreOnFreshDataDir(t *testing.T) {
	storeDir := t.TempDir()
	req := api.FlowRequest{
		TenantRef:       api.TenantRef{Model: "ckpt-store"},
		Problem:         "synth",
		PopSize:         24,
		Generations:     8,
		MCSamples:       60,
		Seed:            3,
		Workers:         1,
		CheckpointEvery: 1,
	}

	slow := map[string]ProblemFactory{
		"synth": func() core.CircuitProblem {
			return slowMCProblem{delay: 2 * time.Millisecond}
		},
	}
	srv1 := New(Config{ModelsDir: storeDir, DataDir: t.TempDir(),
		FlowWorkers: 1, Problems: slow,
		Metrics: &core.Metrics{}, Logger: quietLog()})
	st, err := srv1.Jobs().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, serr := srv1.Jobs().Status(api.DefaultTenant, st.ID)
		if serr != nil {
			t.Fatal(serr)
		}
		if got.ParetoPoints >= 1 {
			break
		}
		if api.Terminal(got.State) {
			t.Fatalf("job finished before shutdown could interrupt it: %+v", got)
		}
		if time.Now().After(deadline) {
			t.Fatal("no MC point completed in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdown(t, srv1)

	// The checkpoint must have been mirrored into the shared store.
	ck := store.Key{Tenant: api.DefaultTenant, Kind: store.KindCheckpoint, Name: "ckpt-store"}
	if _, err := store.OpenDisk(storeDir).Stat(ck); err != nil {
		t.Fatalf("no checkpoint in the store after shutdown: %v", err)
	}

	// The replica's DataDir is empty: everything it knows about the
	// half-finished flow comes through the store.
	srv2 := New(Config{ModelsDir: storeDir, DataDir: t.TempDir(),
		FlowWorkers: 1, Problems: synthFactory(),
		Metrics: &core.Metrics{}, Logger: quietLog()})
	defer shutdown(t, srv2)
	st2, err := srv2.Jobs().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv2.Jobs(), st2.ID, 60*time.Second)
	fin, err := srv2.Jobs().Status(api.DefaultTenant, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobSucceeded {
		t.Fatalf("resumed job: state %q (%s)", fin.State, fin.Error)
	}
	if !fin.Resumed {
		t.Error("replica restarted the flow instead of resuming from the store checkpoint")
	}
	if fin.Request.Version == "" {
		t.Error("finished job reports no installed model version")
	}
	if _, err := srv2.Registry().Info(api.DefaultTenant, "ckpt-store"); err != nil {
		t.Fatalf("model not installed after resume: %v", err)
	}
	// Success retires the checkpoint from the store.
	if _, err := store.OpenDisk(storeDir).Stat(ck); err == nil {
		t.Error("checkpoint still in the store after the flow succeeded")
	}
}

// TestLegacyRouteByteIdentity pins the compatibility contract: for a
// default-tenant model the pre-tenancy route emits no "tenant" key,
// and the tenant-scoped alias answers byte-identical JSON.
func TestLegacyRouteByteIdentity(t *testing.T) {
	srv := bootServer(t, Config{ModelsDir: t.TempDir()})
	defer shutdown(t, srv)
	if _, err := srv.Registry().Install(api.DefaultTenant, "m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"model":"m1","specs":[{"name":"gain_db","sense":">=","bound":50},{"name":"pm_deg","sense":">=","bound":76}]}`)

	post := func(path string) []byte {
		t.Helper()
		resp, err := http.Post("http://"+srv.Addr()+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, b)
		}
		return b
	}

	legacy := post("/v1/yield/query")
	if bytes.Contains(legacy, []byte(`"tenant"`)) {
		t.Errorf("legacy response leaks a tenant key: %s", legacy)
	}
	scoped := post("/v1/t/" + api.DefaultTenant + "/yield/query")
	if !bytes.Equal(legacy, scoped) {
		t.Errorf("legacy and default-scoped responses differ:\n%s\n%s", legacy, scoped)
	}

	// The response is the documented wire shape, key for key.
	var out api.QueryResponse
	if err := json.Unmarshal(legacy, &out); err != nil {
		t.Fatal(err)
	}
	if out.Model != "m1" || out.Tenant != "" || len(out.Params) != 3 {
		t.Errorf("decoded legacy response: %+v", out)
	}
	for _, key := range []string{`"model"`, `"targets"`, `"delta_pct"`, `"front_perf"`, `"params"`, `"predicted_yield"`, `"curve_param"`} {
		if !strings.Contains(string(legacy), key) {
			t.Errorf("legacy response missing %s: %s", key, legacy)
		}
	}
}
