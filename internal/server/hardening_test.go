package server

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/httpx"
	"analogyield/internal/server/api"
	"analogyield/internal/server/client"
	"analogyield/internal/telemetry"
)

// TestOversizedBody413 pushes a body past Config.MaxBodyBytes through
// the real handler stack and expects a 413 (not a generic 400): the
// decode error is a *http.MaxBytesError and decodeStatus maps it.
func TestOversizedBody413(t *testing.T) {
	srv := New(Config{
		ModelsDir:    t.TempDir(),
		Metrics:      &core.Metrics{},
		Logger:       quietLog(),
		MaxBodyBytes: 256,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := api.InstallModelRequest{Name: "huge"}
	for i := 0; i < 200; i++ {
		big.Points = append(big.Points, api.ModelPoint{Params: []float64{1, 2, 3}})
	}
	body, _ := json.Marshal(big)
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %d bytes > cap 256)", resp.StatusCode, len(body))
	}
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("413 body not JSON: %v", err)
	}
	if apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("error body status = %d", apiErr.Status)
	}

	// A small request on the same server still works.
	resp2, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("small request status = %d", resp2.StatusCode)
	}
}

// recordingTransport captures the headers of every request it sends.
type recordingTransport struct {
	base http.RoundTripper
	sent []http.Header
}

func (rt *recordingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	rt.sent = append(rt.sent, r.Header.Clone())
	return rt.base.RoundTrip(r)
}

// TestRequestIDRoundTrip drives the Go client against a real server and
// checks the full identity loop: the client generates an X-Request-ID,
// the server echoes it on the response, and a failing call's api.Error
// carries it back so the user can quote it.
func TestRequestIDRoundTrip(t *testing.T) {
	srv := New(Config{ModelsDir: t.TempDir(), Metrics: &core.Metrics{}, Logger: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rt := &recordingTransport{base: http.DefaultTransport}
	cl := client.New(ts.URL, client.WithHTTPClient(&http.Client{Transport: rt}))

	_, err := cl.Query(context.Background(), api.QueryRequest{
		TenantRef: api.TenantRef{Model: "no-such-model"},
		Specs:     [2]api.Spec{{Name: "gain_db", Bound: 50}, {Name: "pm_deg", Bound: 80}},
	})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *api.Error, got %v", err)
	}
	if len(rt.sent) != 1 {
		t.Fatalf("recorded %d requests", len(rt.sent))
	}
	sentID := rt.sent[0].Get(httpx.RequestIDHeader)
	if sentID == "" {
		t.Fatal("client sent no X-Request-ID")
	}
	if apiErr.RequestID != sentID {
		t.Fatalf("api.Error.RequestID = %q, want the sent ID %q", apiErr.RequestID, sentID)
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and pins the
// exposition's counters against the same registry's expvar snapshot.
func TestMetricsEndpoint(t *testing.T) {
	metrics := &core.Metrics{}
	srv := New(Config{ModelsDir: t.TempDir(), Metrics: metrics, Logger: quietLog()})
	if _, err := srv.Registry().Install(api.DefaultTenant, "demo", synthModel(t, 16)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := client.New(ts.URL)
	for i := 0; i < 5; i++ {
		if _, err := cl.Query(context.Background(), api.QueryRequest{
			TenantRef: api.TenantRef{Model: "demo"},
			Specs:     [2]api.Spec{{Name: "gain_db", Bound: 50}, {Name: "pm_deg", Bound: 75}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// The query route histogram must have counted the 5 queries, and the
	// scalar counters must match the registry snapshot (the expvar view).
	snap := metrics.Snapshot()
	var routeCount int64
	for name, hs := range snap.Latencies {
		if strings.Contains(name, "query") {
			routeCount += hs.Count
		}
	}
	if routeCount < 5 {
		t.Fatalf("snapshot query-route count = %d, want >= 5", routeCount)
	}
	for _, want := range []string{
		"# TYPE ayd_http_request_duration_seconds histogram",
		`ayd_http_request_duration_seconds_bucket{route=`,
		fmt.Sprintf("ayd_flows_total %d", snap.Flows),
		fmt.Sprintf("ayd_evaluations_total %d", snap.Evaluations),
		"go_goroutines ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The histogram count line for the query route must report the
	// snapshot's number.
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "ayd_http_request_duration_seconds_count") && strings.Contains(line, "query") {
			found = true
			if !strings.HasSuffix(line, fmt.Sprint(routeCount)) {
				t.Errorf("count line %q, want suffix %d", line, routeCount)
			}
		}
	}
	if !found {
		t.Error("no _count series for the query route")
	}
}

// selfSigned writes a throwaway ECDSA certificate for 127.0.0.1 and
// returns the cert/key paths plus a pool trusting it.
func selfSigned(t *testing.T) (certFile, keyFile string, pool *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "ayd-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	if err := os.WriteFile(certFile, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	pool = x509.NewCertPool()
	pool.AppendCertsFromPEM(certPEM)
	return certFile, keyFile, pool
}

// TestTLSServe boots the server with a self-signed certificate and runs
// a real HTTPS round trip, asserting the negotiated protocol meets the
// modern floor.
func TestTLSServe(t *testing.T) {
	certFile, keyFile, pool := selfSigned(t)
	srv := New(Config{
		Addr:        "127.0.0.1:0",
		ModelsDir:   t.TempDir(),
		Metrics:     &core.Metrics{},
		Logger:      quietLog(),
		TLSCertFile: certFile,
		TLSKeyFile:  keyFile,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	hc := &http.Client{Transport: &http.Transport{
		TLSClientConfig: &tls.Config{RootCAs: pool},
	}}
	resp, err := hc.Get("https://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("HTTPS round trip: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.TLS == nil || resp.TLS.Version < tls.VersionTLS12 {
		t.Fatalf("TLS state %+v, want >= TLS1.2", resp.TLS)
	}

	// Plain HTTP against the TLS port must not be served — Go's TLS
	// listener answers it with a 400, never the handler.
	if resp, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("plaintext request served by a TLS listener")
		}
	}
}

// TestShutdownUsesDrainTimeout checks that a deadline-free Shutdown is
// bounded by Config.DrainTimeout instead of hanging on a stuck client.
func TestShutdownUsesDrainTimeout(t *testing.T) {
	srv := New(Config{
		Addr:         "127.0.0.1:0",
		ModelsDir:    t.TempDir(),
		Metrics:      &core.Metrics{},
		Logger:       quietLog(),
		DrainTimeout: 150 * time.Millisecond,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	// Park a raw connection with an unfinished request so the drain can
	// never complete on its own.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/models HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n")

	start := time.Now()
	srv.Shutdown(context.Background())
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %s; DrainTimeout not applied", elapsed)
	}
}
