package server

import (
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
	"analogyield/internal/process"
)

// quietLog keeps the structured request/job log out of test output.
func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// synthProblem mirrors the fast analytic stand-in used by core's own
// tests: two conflicting objectives over three parameters with a small
// process-dependent perturbation, so a whole flow runs in milliseconds.
//
// perf0 = 45 + 10·g0 − 5·g1², perf1 = 85 − 12·g0 − 5·g1²; the front
// lies along g1 = 0, trading perf0 against perf1 with
// perf1 = 85 − 1.2·(perf0 − 45).
type synthProblem struct{}

func (synthProblem) ParamNames() []string     { return []string{"P1", "P2", "P3"} }
func (synthProblem) ObjectiveNames() []string { return []string{"gain_db", "pm_deg"} }
func (synthProblem) Maximize() []bool         { return []bool{true, true} }
func (synthProblem) ParamUnits() []string     { return []string{"um", "um", "um"} }

func (synthProblem) Evaluate(g []float64, s *process.Sample) ([]float64, error) {
	noise0, noise1 := 0.0, 0.0
	if s != nil {
		sh := s.DeviceShift(process.NMOS, 10e-6, 1e-6)
		noise0 = sh.DVth * 3
		noise1 = sh.DBeta * 4
	}
	pen := 5 * g[1] * g[1]
	return []float64{45 + 10*g[0] - pen + noise0, 85 - 12*g[0] - pen + noise1}, nil
}

func (synthProblem) Denormalize(g []float64) ([]float64, error) {
	out := make([]float64, len(g))
	for i, x := range g {
		out[i] = 10 + 50*x
	}
	return out, nil
}

// blockingProblem gates every evaluation on release, so a test can hold
// a job mid-flight deterministically: wait on started to know the
// worker has picked the job up, close release to let it finish (or see
// a cancellation at the next generation boundary).
type blockingProblem struct {
	synthProblem
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func newBlockingProblem() *blockingProblem {
	return &blockingProblem{
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (b *blockingProblem) Evaluate(g []float64, s *process.Sample) ([]float64, error) {
	b.once.Do(func() { close(b.started) })
	<-b.release
	return b.synthProblem.Evaluate(g, s)
}

// slowMCProblem delays only Monte Carlo evaluations (nominal MOO calls
// pass a nil sample), so a flow lingers in the MC stage long enough for
// a test to shut the server down mid-stage.
type slowMCProblem struct {
	synthProblem
	delay time.Duration
}

func (p slowMCProblem) Evaluate(g []float64, s *process.Sample) ([]float64, error) {
	if s != nil {
		time.Sleep(p.delay)
	}
	return p.synthProblem.Evaluate(g, s)
}

// synthModel builds a small table model analytically (no flow run):
// n points along the synthetic front, perf0 ∈ [45, 55].
func synthModel(t *testing.T, n int) *core.Model {
	t.Helper()
	pts := make([]core.ParetoPoint, n)
	for i := range pts {
		x := float64(i) / float64(n-1)
		pts[i] = core.ParetoPoint{
			Params:   []float64{10 + 50*x, 10, 10},
			Perf:     [2]float64{45 + 10*x, 85 - 12*x},
			DeltaPct: [2]float64{1.0 + 0.2*x, 0.5 + 0.1*x},
		}
	}
	m, err := core.BuildModel(pts,
		[]string{"gain_db", "pm_deg"},
		[]string{"P1", "P2", "P3"},
		[]string{"um", "um", "um"},
		core.ModelOptions{})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	return m
}

// waitDone blocks until the job reaches a terminal state or the test
// deadline expires.
func waitDone(t *testing.T, m *JobManager, id string, timeout time.Duration) {
	t.Helper()
	ch, err := m.Done(api.DefaultTenant, id)
	if err != nil {
		t.Fatalf("Done(%s): %v", id, err)
	}
	select {
	case <-ch:
	case <-time.After(timeout):
		t.Fatalf("job %s did not finish within %s", id, timeout)
	}
}
