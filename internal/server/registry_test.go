package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"analogyield/internal/server/api"
)

func testQuery(model string) api.QueryRequest {
	return api.QueryRequest{
		Model: model,
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: 50},
			{Name: "pm_deg", Sense: ">=", Bound: 76},
		},
	}
}

func TestRegistryQuery(t *testing.T) {
	r := NewRegistry(t.TempDir(), 4)
	defer r.Close()
	if err := r.Install("m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}

	out, err := r.Query(context.Background(), testQuery("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Model != "m1" {
		t.Errorf("Model = %q", out.Model)
	}
	// Guard-banding must make AtLeast targets stricter than the bounds.
	if out.Targets[0] <= 50 || out.Targets[1] <= 76 {
		t.Errorf("targets %v not guard-banded above bounds", out.Targets)
	}
	if out.DeltaPct[0] <= 0 || out.DeltaPct[1] <= 0 {
		t.Errorf("DeltaPct = %v, want positive", out.DeltaPct)
	}
	if len(out.Params) != 3 || out.Params[0].Name != "P1" || out.Params[0].Unit != "um" {
		t.Errorf("Params = %+v", out.Params)
	}
	// The selected front point sits a full guard band past each bound, so
	// the predicted joint yield must be near Φ(3)² ≈ 0.997.
	if out.PredictedYield <= 0.98 || out.PredictedYield > 1 {
		t.Errorf("PredictedYield = %g, want ≈0.997", out.PredictedYield)
	}
	if out.CurveParam < 0 || out.CurveParam > 1 {
		t.Errorf("CurveParam = %g outside [0,1]", out.CurveParam)
	}
}

func TestRegistryUnknownAndBadNames(t *testing.T) {
	r := NewRegistry(t.TempDir(), 4)
	defer r.Close()
	if _, err := r.Query(context.Background(), testQuery("nope")); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: err = %v, want ErrUnknownModel", err)
	}
	for _, name := range []string{"", ".", "..", "a/b", "../escape"} {
		if _, err := r.Query(context.Background(), testQuery(name)); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestRegistryLRUEvictionAndReload(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(dir, 2)
	defer r.Close()

	for _, name := range []string{"m1", "m2", "m3"} {
		if err := r.Install(name, synthModel(t, 12)); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Resident(); got != 2 {
		t.Fatalf("Resident = %d, want 2 (LRU cap)", got)
	}

	// m1 was evicted (least recently used) but persists on disk; a query
	// reloads it transparently and evicts another entry to stay at cap.
	if _, err := r.Query(context.Background(), testQuery("m1")); err != nil {
		t.Fatalf("query after eviction: %v", err)
	}
	if got := r.Resident(); got != 2 {
		t.Errorf("Resident = %d after reload, want 2", got)
	}

	// All three remain visible in the listing, resident or not.
	infos := r.List()
	if len(infos) != 3 {
		t.Fatalf("List: %d models, want 3", len(infos))
	}
	resident := 0
	for _, in := range infos {
		if in.Points != 12 {
			t.Errorf("%s: Points = %d, want 12", in.Name, in.Points)
		}
		if in.Domain[0] >= in.Domain[1] {
			t.Errorf("%s: Domain = %v", in.Name, in.Domain)
		}
		if in.Resident {
			resident++
		}
	}
	if resident != 2 {
		t.Errorf("%d resident models in List, want 2", resident)
	}
}

func TestRegistryEvict(t *testing.T) {
	r := NewRegistry("", 4) // no directory: models live only in memory
	defer r.Close()
	if err := r.Install("m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	if !r.Evict("m1") {
		t.Fatal("Evict reported no entry")
	}
	if _, err := r.Query(context.Background(), testQuery("m1")); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("after eviction with no backing dir: err = %v, want ErrUnknownModel", err)
	}
}

func TestRegistryQueryBatching(t *testing.T) {
	r := NewRegistry(t.TempDir(), 4)
	defer r.Close()
	if err := r.Install("m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	e, err := r.get("m1")
	if err != nil {
		t.Fatal(err)
	}

	// Hold the model's write lock so concurrent queries pile up in the
	// batcher's queue, then release: the backlog must drain in a small
	// number of shared lock acquisitions, not one per query.
	const n = 16
	b0, q0 := r.BatchStats()
	e.mu.Lock()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, qerr := r.Query(context.Background(), testQuery("m1"))
			errs <- qerr
		}()
	}
	time.Sleep(100 * time.Millisecond) // let all n reach the queue
	e.mu.Unlock()
	wg.Wait()
	close(errs)
	for qerr := range errs {
		if qerr != nil {
			t.Fatalf("batched query failed: %v", qerr)
		}
	}

	b1, q1 := r.BatchStats()
	if q1-q0 != n {
		t.Errorf("batched queries = %d, want %d", q1-q0, n)
	}
	// One batch may slip in before the lock is held; the backlog itself
	// must coalesce, so far fewer batches than queries.
	if got := b1 - b0; got > 3 {
		t.Errorf("lock acquisitions = %d for %d queries, want ≤ 3", got, n)
	}
}

func TestRegistryQueryCancelled(t *testing.T) {
	r := NewRegistry(t.TempDir(), 4)
	defer r.Close()
	if err := r.Install("m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	e, err := r.get("m1")
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := r.Query(ctx, testQuery("m1")); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded while model locked", err)
	}
}
