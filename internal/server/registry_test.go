package server

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"analogyield/internal/server/api"
	"analogyield/internal/store"
)

func testQuery(model string) api.QueryRequest {
	return api.QueryRequest{
		TenantRef: api.TenantRef{Model: model},
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: 50},
			{Name: "pm_deg", Sense: ">=", Bound: 76},
		},
	}
}

func TestRegistryQuery(t *testing.T) {
	r := NewRegistry(store.OpenDisk(t.TempDir()), 4)
	defer r.Close()
	if _, err := r.Install(api.DefaultTenant, "m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}

	out, err := r.Query(context.Background(), testQuery("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Model != "m1" {
		t.Errorf("Model = %q", out.Model)
	}
	// Guard-banding must make AtLeast targets stricter than the bounds.
	if out.Targets[0] <= 50 || out.Targets[1] <= 76 {
		t.Errorf("targets %v not guard-banded above bounds", out.Targets)
	}
	if out.DeltaPct[0] <= 0 || out.DeltaPct[1] <= 0 {
		t.Errorf("DeltaPct = %v, want positive", out.DeltaPct)
	}
	if len(out.Params) != 3 || out.Params[0].Name != "P1" || out.Params[0].Unit != "um" {
		t.Errorf("Params = %+v", out.Params)
	}
	// The selected front point sits a full guard band past each bound, so
	// the predicted joint yield must be near Φ(3)² ≈ 0.997.
	if out.PredictedYield <= 0.98 || out.PredictedYield > 1 {
		t.Errorf("PredictedYield = %g, want ≈0.997", out.PredictedYield)
	}
	if out.CurveParam < 0 || out.CurveParam > 1 {
		t.Errorf("CurveParam = %g outside [0,1]", out.CurveParam)
	}
}

func TestRegistryUnknownAndBadNames(t *testing.T) {
	r := NewRegistry(store.OpenDisk(t.TempDir()), 4)
	defer r.Close()
	if _, err := r.Query(context.Background(), testQuery("nope")); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: err = %v, want ErrUnknownModel", err)
	}
	for _, name := range []string{"", ".", "..", "a/b", "../escape"} {
		if _, err := r.Query(context.Background(), testQuery(name)); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestRegistryLRUEvictionAndReload(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(store.OpenDisk(dir), 2)
	defer r.Close()

	for _, name := range []string{"m1", "m2", "m3"} {
		if _, err := r.Install(api.DefaultTenant, name, synthModel(t, 12)); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Resident(); got != 2 {
		t.Fatalf("Resident = %d, want 2 (LRU cap)", got)
	}

	// m1 was evicted (least recently used) but persists on disk; a query
	// reloads it transparently and evicts another entry to stay at cap.
	if _, err := r.Query(context.Background(), testQuery("m1")); err != nil {
		t.Fatalf("query after eviction: %v", err)
	}
	if got := r.Resident(); got != 2 {
		t.Errorf("Resident = %d after reload, want 2", got)
	}

	// All three remain visible in the listing, resident or not.
	infos := r.List(api.DefaultTenant)
	if len(infos) != 3 {
		t.Fatalf("List: %d models, want 3", len(infos))
	}
	resident := 0
	for _, in := range infos {
		if in.Points != 12 {
			t.Errorf("%s: Points = %d, want 12", in.Name, in.Points)
		}
		if in.Domain[0] >= in.Domain[1] {
			t.Errorf("%s: Domain = %v", in.Name, in.Domain)
		}
		if in.Resident {
			resident++
		}
	}
	if resident != 2 {
		t.Errorf("%d resident models in List, want 2", resident)
	}
}

func TestRegistryEvictAndDelete(t *testing.T) {
	r := NewRegistry(nil, 4) // in-process memory store
	defer r.Close()
	if _, err := r.Install(api.DefaultTenant, "m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	// Evict drops residency only: the store still holds the artefact, so
	// the next query transparently reloads (even on the memory backend).
	if !r.Evict(api.DefaultTenant, "m1") {
		t.Fatal("Evict reported no entry")
	}
	if r.Resident() != 0 {
		t.Fatalf("Resident = %d after Evict", r.Resident())
	}
	if _, err := r.Query(context.Background(), testQuery("m1")); err != nil {
		t.Fatalf("query after eviction should reload from store: %v", err)
	}
	// Delete removes the artefact itself: the model is gone for good.
	if err := r.Delete(api.DefaultTenant, "m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Query(context.Background(), testQuery("m1")); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("after delete: err = %v, want ErrUnknownModel", err)
	}
	if err := r.Delete(api.DefaultTenant, "m1"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("double delete: err = %v, want ErrUnknownModel", err)
	}
}

func TestRegistryQueryBatchGroups(t *testing.T) {
	r := NewRegistry(store.OpenDisk(t.TempDir()), 4)
	defer r.Close()
	for _, name := range []string{"m1", "m2"} {
		if _, err := r.Install(api.DefaultTenant, name, synthModel(t, 12)); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave models, include an unknown model and an out-of-range
	// bound: results must line up with requests and failures stay local.
	bad := testQuery("m1")
	bad.Specs[0].Bound = 1e9
	reqs := []api.QueryRequest{
		testQuery("m1"), testQuery("m2"), testQuery("nope"),
		bad, testQuery("m2"), testQuery("m1"),
	}
	results := r.QueryBatch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for _, i := range []int{0, 1, 4, 5} {
		if results[i].Error != "" || results[i].Response == nil {
			t.Errorf("result %d: err %q", i, results[i].Error)
			continue
		}
		if results[i].Response.Model != reqs[i].Model {
			t.Errorf("result %d answered for model %q, want %q",
				i, results[i].Response.Model, reqs[i].Model)
		}
	}
	if results[2].Error == "" {
		t.Error("unknown model produced no error")
	}
	if results[3].Error == "" {
		t.Error("out-of-range bound produced no error")
	}
	// Batch answers equal the per-query path exactly.
	single, err := r.Query(context.Background(), testQuery("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0].Response, single) {
		t.Errorf("batch and single answers differ:\n%+v\n%+v", results[0].Response, single)
	}
}

func TestRegistryQueryCancelled(t *testing.T) {
	r := NewRegistry(store.OpenDisk(t.TempDir()), 4)
	defer r.Close()
	if _, err := r.Install(api.DefaultTenant, "m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Query(ctx, testQuery("m1")); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	for _, res := range r.QueryBatch(ctx, []api.QueryRequest{testQuery("m1")}) {
		if res.Error == "" {
			t.Error("cancelled batch produced a result")
		}
	}
}

// TestRegistrySnapshotHammer races lock-free queries against snapshot
// swaps: installs over a hot name, evictions and reloads. Run under
// -race this proves the atomic-snapshot publication protocol; under
// plain `go test` it still checks that every query lands on a coherent
// model (answer or error, never a torn state).
func TestRegistrySnapshotHammer(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(store.OpenDisk(dir), 2)
	defer r.Close()
	if _, err := r.Install(api.DefaultTenant, "hot", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Install(api.DefaultTenant, "cold", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := r.Query(context.Background(), testQuery("hot"))
				if err != nil {
					t.Errorf("query during swap: %v", err)
					return
				}
				if out.Model != "hot" || len(out.Params) != 3 {
					t.Errorf("torn response: %+v", out)
					return
				}
				r.QueryBatch(context.Background(),
					[]api.QueryRequest{testQuery("hot"), testQuery("cold")})
			}
		}()
	}
	// Writer: keep replacing the hot model and cycling residency.
	deadline := time.After(300 * time.Millisecond)
	m2 := synthModel(t, 14)
loop:
	for {
		select {
		case <-deadline:
			break loop
		default:
		}
		if _, err := r.Install(api.DefaultTenant, "hot", m2); err != nil {
			t.Errorf("install during queries: %v", err)
			break
		}
		r.Evict(api.DefaultTenant, "cold") // next batch query reloads it from dir
	}
	close(stop)
	wg.Wait()
}
