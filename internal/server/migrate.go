package server

import (
	"errors"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"

	"analogyield/internal/core"
	"analogyield/internal/store"
)

// importLegacy migrates models saved in the pre-store directory layout
// (one subdirectory per model holding front.tbl and the per-quantity
// tables, as Model.Save wrote them) into the artefact store under the
// default tenant, making each resident as it goes. The scan is
// idempotent: names already present in the store are skipped, so the
// legacy files can stay in place as a readable archive and repeated
// boots import nothing twice. Unreadable or invalidly named entries are
// logged and skipped — one corrupt legacy model must not stop the rest
// of the catalog from loading. It returns how many models it imported.
func importLegacy(dir string, reg *Registry, log *slog.Logger) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	imported := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, err := os.Stat(filepath.Join(dir, name, "front.tbl")); err != nil {
			continue // not a legacy model directory (e.g. the store's own tree)
		}
		if store.ValidateKey(name) != nil {
			log.Warn("legacy model skipped: invalid name", "name", name)
			continue
		}
		if _, err := reg.Store().Stat(store.Key{Tenant: store.DefaultTenant, Kind: store.KindModel, Name: name}); err == nil {
			continue // already migrated
		}
		m, err := core.LoadModel(filepath.Join(dir, name))
		if err != nil {
			log.Warn("legacy model skipped: unreadable", "name", name, "err", err)
			continue
		}
		version, err := reg.Install(store.DefaultTenant, name, m)
		if err != nil {
			log.Warn("legacy model skipped: install failed", "name", name, "err", err)
			continue
		}
		log.Info("legacy model imported", "name", name, "version", version)
		imported++
	}
	return imported, nil
}
