package server

import (
	"context"
	"os"
	"testing"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
)

// TestShutdownMidMCLeavesResumableCheckpoint kills a server while a
// flow is in its Monte Carlo stage and verifies the paper flow's
// crash-consistency contract end to end: the cooperative cancellation
// leaves a checkpoint on disk, and a fresh server given the same
// request resumes from it instead of restarting.
func TestShutdownMidMCLeavesResumableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	req := api.FlowRequest{
		TenantRef:       api.TenantRef{Model: "ckpt-model"},
		Problem:         "synth",
		PopSize:         24,
		Generations:     8,
		MCSamples:       60,
		Seed:            3,
		Workers:         1,
		CheckpointEvery: 1,
	}

	// Server 1 runs the problem with slowed-down Monte Carlo
	// evaluations, so the flow is reliably mid-MC when shutdown hits.
	slow := map[string]ProblemFactory{
		"synth": func() core.CircuitProblem {
			return slowMCProblem{delay: 2 * time.Millisecond}
		},
	}
	srv1 := New(Config{ModelsDir: dir, FlowWorkers: 1, Problems: slow,
		Metrics: &core.Metrics{}, Logger: quietLog()})
	st, err := srv1.Jobs().Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first completed MC point (the ParetoPoints counter
	// ticks on each MCPointDone), then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, serr := srv1.Jobs().Status(api.DefaultTenant, st.ID)
		if serr != nil {
			t.Fatal(serr)
		}
		if got.ParetoPoints >= 1 {
			break
		}
		if api.Terminal(got.State) {
			t.Fatalf("job finished before shutdown could interrupt it: %+v", got)
		}
		if time.Now().After(deadline) {
			t.Fatal("no MC point completed in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	got, err := srv1.Jobs().Status(api.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobCancelled {
		t.Fatalf("after shutdown: state %q (%s), want cancelled", got.State, got.Error)
	}
	if _, err := os.Stat(got.Checkpoint); err != nil {
		t.Fatalf("no checkpoint left behind: %v", err)
	}

	// Server 2 shares the data directory. Resubmitting the identical
	// request (same budgets and seed → same config fingerprint) must
	// resume from the checkpoint and finish the model.
	srv2 := New(Config{ModelsDir: dir, FlowWorkers: 1, Problems: synthFactory(),
		Metrics: &core.Metrics{}, Logger: quietLog()})
	defer func() {
		ctx2, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel2()
		if err := srv2.Shutdown(ctx2); err != nil {
			t.Errorf("srv2 Shutdown: %v", err)
		}
	}()

	st2, err := srv2.Jobs().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv2.Jobs(), st2.ID, 60*time.Second)
	fin, err := srv2.Jobs().Status(api.DefaultTenant, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobSucceeded {
		t.Fatalf("resumed job: state %q (%s)", fin.State, fin.Error)
	}
	if !fin.Resumed {
		t.Error("resumed job did not report Resumed")
	}
	j, err := srv2.Jobs().get(api.DefaultTenant, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	sawResume := false
	for _, ev := range j.eventsSince(0) {
		if ev.Type == api.EventFlowResumed {
			sawResume = true
			break
		}
	}
	if !sawResume {
		t.Error("no flow_resumed event in the resumed job's stream")
	}

	// The finished model answers queries on the second server.
	if _, err := srv2.Registry().Info(api.DefaultTenant, "ckpt-model"); err != nil {
		t.Fatalf("model not installed after resume: %v", err)
	}
}
