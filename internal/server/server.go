// Package server implements the ayd service layer: the repo's two
// workloads — cheap yield queries against built behavioural models and
// expensive model-building flow jobs — exposed over HTTP/JSON.
//
// Query path: POST /v1/yield/query answers the paper's Table 3 spec
// query (guard-banded targets, interpolated parameters, predicted
// yield) from an LRU-bounded model registry. Models are compiled at
// install time (compiled.go) and published in an immutable snapshot
// behind an atomic pointer (registry.go), so the steady-state query
// path takes no locks and performs no allocations: pooled scratch,
// segment-hint spline evaluation and pre-rendered response JSON.
//
// Job path: POST /v1/flows submits a core.RunFlow job onto a bounded
// worker pool; GET /v1/flows/{id} polls status and GET
// /v1/flows/{id}/events streams the typed core.Observer event stream
// as Server-Sent Events (jobs.go, sse.go). Finished models are
// installed into the registry, so a submitted flow's model is
// immediately queryable.
//
// Shutdown is graceful: in-flight queries drain, running flows are
// cancelled cooperatively and leave resumable checkpoints, and SSE
// streams close.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/process"
	"analogyield/internal/server/api"
)

// Config assembles a Server. Zero values select the documented
// defaults.
type Config struct {
	// Addr is the listen address for Start ("127.0.0.1:0" in tests).
	Addr string
	// ModelsDir persists model artefacts (empty = models live only in
	// memory and die with residency).
	ModelsDir string
	// DataDir holds job state (checkpoints). Empty = ModelsDir.
	DataDir string
	// MaxModels bounds the registry's resident models (0 → 8).
	MaxModels int
	// FlowWorkers sizes the job pool (0 → 2); FlowQueue its backlog
	// (0 → 64).
	FlowWorkers int
	FlowQueue   int
	// MaxInFlight caps concurrent HTTP requests (0 → 256).
	MaxInFlight int
	// QueryTimeout bounds non-streaming routes (0 → 30s).
	QueryTimeout time.Duration
	// DefaultMCStrategy is the Monte Carlo estimator used by flow
	// submissions that leave mc_strategy empty: "naive" (default, also
	// when empty), "is", "surrogate" or "is+surrogate".
	DefaultMCStrategy string
	// Problems and Processes name what flows may be submitted against.
	// Nil selects the built-ins: problem "ota", process "c35".
	Problems  map[string]ProblemFactory
	Processes map[string]ProcessFactory
	// Metrics is the shared counter registry (nil = private). The
	// server adds per-route latency histograms to it.
	Metrics *core.Metrics
	// Logger receives the structured request/job log (nil = slog
	// default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.DataDir == "" {
		c.DataDir = c.ModelsDir
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 8
	}
	if c.FlowWorkers <= 0 {
		c.FlowWorkers = 2
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.Problems == nil {
		c.Problems = map[string]ProblemFactory{
			"ota": func() core.CircuitProblem { return core.NewOTAProblem() },
		}
	}
	if c.Processes == nil {
		c.Processes = map[string]ProcessFactory{"c35": process.C35}
	}
	if c.Metrics == nil {
		c.Metrics = &core.Metrics{}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server ties the registry, job manager and HTTP front-end together.
type Server struct {
	cfg  Config
	reg  *Registry
	jobs *JobManager
	log  *slog.Logger

	httpSrv *http.Server
	ln      net.Listener

	shutdownCh chan struct{} // closed when Shutdown begins; ends SSE streams
}

// New builds a Server (not yet listening; Handler serves in-process,
// Start binds Config.Addr).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := NewRegistry(cfg.ModelsDir, cfg.MaxModels)
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		log:        cfg.Logger,
		shutdownCh: make(chan struct{}),
	}
	s.jobs = NewJobManager(cfg.DataDir, cfg.FlowWorkers, cfg.FlowQueue, reg,
		cfg.Problems, cfg.Processes, cfg.Metrics, cfg.Logger)
	s.jobs.defaultMCStrategy = cfg.DefaultMCStrategy
	s.httpSrv = &http.Server{Handler: s.Handler()}
	return s
}

// Registry exposes the model store (tests and embedding callers
// pre-install models).
func (s *Server) Registry() *Registry { return s.reg }

// Jobs exposes the job manager.
func (s *Server) Jobs() *JobManager { return s.jobs }

// Metrics exposes the shared counter registry.
func (s *Server) Metrics() *core.Metrics { return s.cfg.Metrics }

// Handler builds the routed, middleware-wrapped HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	m := s.cfg.Metrics

	timed := func(name string, h http.HandlerFunc) http.Handler {
		return observeLatency(m.Histogram(name), withTimeout(s.cfg.QueryTimeout, h))
	}
	mux.Handle("POST /v1/yield/query", timed("query", s.handleQuery))
	mux.Handle("GET /v1/models", timed("models", s.handleModels))
	mux.Handle("GET /v1/models/{name}", timed("models", s.handleModel))
	mux.Handle("POST /v1/flows", timed("flow_submit", s.handleSubmit))
	mux.Handle("GET /v1/flows", timed("flow_status", s.handleJobs))
	mux.Handle("GET /v1/flows/{id}", timed("flow_status", s.handleJob))
	mux.Handle("DELETE /v1/flows/{id}", timed("flow_status", s.handleCancel))
	// SSE: latency histogram would only measure stream lifetime, and
	// TimeoutHandler breaks flushing — the events route is wrapped by
	// neither.
	mux.Handle("GET /v1/flows/{id}/events", http.HandlerFunc(s.handleEvents))
	mux.Handle("GET /healthz", http.HandlerFunc(s.handleHealth))
	mux.Handle("GET /debug/vars", expvar.Handler())

	return logRequests(s.log, limitConcurrency(s.cfg.MaxInFlight, mux))
}

// Start binds Config.Addr and serves until Shutdown. It returns once
// the listener is bound; serving continues in the background.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Error("serve", "err", err)
		}
	}()
	s.log.Info("listening", "addr", ln.Addr().String())
	return nil
}

// Addr reports the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server gracefully: new connections stop, SSE
// streams close, in-flight requests finish, running flows checkpoint
// and cancel, and the model registry empties. The ctx bounds the whole
// drain.
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.shutdownCh:
		return nil // already shut down
	default:
		close(s.shutdownCh)
	}
	var firstErr error
	if s.ln != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.jobs.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = err
	}
	s.reg.Close()
	return firstErr
}

// --- handlers ---

// writeJSON lives in json.go (pooled encoder, explicit Content-Length).

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, &api.Error{Status: status, Message: fmt.Sprintf(format, args...)})
}

// errStatus maps a service error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownModel), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// queryBody accepts both the single and the batch shape on one route.
type queryBody struct {
	api.QueryRequest
	Queries []api.QueryRequest `json:"queries"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body queryBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(body.Queries) > 0 {
		// Queries group by model and stage through the batch evaluator —
		// cheaper than the per-query path and free of goroutine fan-out.
		results := s.reg.QueryBatch(r.Context(), body.Queries)
		writeJSON(w, http.StatusOK, api.BatchQueryResponse{Results: results})
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	rendered, out, err := s.reg.QueryRendered(r.Context(), body.QueryRequest, sc)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	if rendered != nil {
		writeJSONBytes(w, http.StatusOK, rendered)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Info(r.PathValue("name"))
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.FlowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	st, err := s.jobs.Submit(req)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// The MC scheduler gauges make a bare health poll show whether a
	// running flow's Monte Carlo stage is actually parallel (busy
	// workers vs queue) without scraping the full expvar export.
	ms := s.cfg.Metrics.Snapshot()
	qc, qi := s.reg.QueryStats()
	body := map[string]any{
		"status":          "ok",
		"resident_models": s.reg.Resident(),
		"query_engine": map[string]int64{
			"compiled":    qc,
			"interpreted": qi,
		},
		"mc_scheduler": map[string]int64{
			"busy_workers":          ms.MCBusyWorkers,
			"busy_workers_peak":     ms.MCBusyWorkersPeak,
			"queue_depth":           ms.MCQueueDepth,
			"queue_depth_peak":      ms.MCQueueDepthPeak,
			"points_in_flight":      ms.MCPointsInFlight,
			"points_in_flight_peak": ms.MCPointsInFlightPeak,
		},
	}
	// Present only once a variance-reduced flow has run, so naive-only
	// deployments keep the pre-strategy health shape.
	if ms.MCStrategy != "" {
		body["mc_variance"] = map[string]any{
			"strategy":  ms.MCStrategy,
			"predicted": ms.MCPredicted,
			"mean_ess":  ms.MCMeanESS,
		}
	}
	writeJSON(w, http.StatusOK, body)
}
