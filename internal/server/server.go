// Package server implements the ayd service layer: the repo's two
// workloads — cheap yield queries against built behavioural models and
// expensive model-building flow jobs — exposed over HTTP/JSON, with a
// tenant dimension throughout. Every route exists in two spellings:
// tenant-scoped under /v1/t/{tenant}/... and the original /v1/... form,
// which aliases the "default" tenant so every pre-tenancy client keeps
// working (default-tenant responses are byte-identical to the
// pre-tenancy wire format).
//
// Query path: POST /v1/t/{tenant}/yield/query answers the paper's
// Table 3 spec query (guard-banded targets, interpolated parameters,
// predicted yield) from an LRU-bounded model registry. Models persist
// in a pluggable artefact store (internal/store) — content-addressed,
// shared across replicas — and are compiled at install time
// (compiled.go) then published in an immutable snapshot behind an
// atomic pointer (registry.go), so the steady-state query path takes no
// locks and performs no allocations: pooled scratch, segment-hint
// spline evaluation and pre-rendered response JSON. A restarted replica
// warm-starts from the store, recompiling each model on first query.
//
// Job path: POST /v1/t/{tenant}/flows submits a core.RunFlow job onto a
// bounded worker pool; GET .../flows/{id} polls status and GET
// .../flows/{id}/events streams the typed core.Observer event stream
// as Server-Sent Events (jobs.go, sse.go). Finished models are
// installed into the submitting tenant's catalog, and checkpoints are
// mirrored through the artefact store, so any replica sharing the store
// can resume a job.
//
// Shutdown is graceful: in-flight queries drain, running flows are
// cancelled cooperatively and leave resumable checkpoints, and SSE
// streams close.
package server

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/httpx"
	"analogyield/internal/process"
	"analogyield/internal/server/api"
	"analogyield/internal/store"
	"analogyield/internal/telemetry"
)

// Config assembles a Server. Zero values select the documented
// defaults.
type Config struct {
	// Addr is the listen address for Start ("127.0.0.1:0" in tests).
	Addr string
	// Store is the artefact store persisting models and job checkpoints.
	// Nil selects a backend from ModelsDir: a store.Disk rooted there
	// when set, otherwise an in-process store.Memory (artefacts die with
	// the server).
	Store store.Store
	// ModelsDir roots the default disk store and is scanned at startup
	// for models in the legacy per-directory layout (front.tbl), which
	// are imported into the store under the default tenant.
	ModelsDir string
	// DataDir holds job state (checkpoints). Empty = ModelsDir.
	DataDir string
	// MaxModels bounds the registry's resident models (0 → 8).
	MaxModels int
	// FlowWorkers sizes the job pool (0 → 2); FlowQueue its backlog
	// (0 → 64).
	FlowWorkers int
	FlowQueue   int
	// Listeners is the number of SO_REUSEPORT listener shards Start
	// opens on Addr, each with its own accept loop and http.Server over
	// the shared handler, so accepts spread across cores instead of
	// serializing on one socket (0/1 → a single listener; >1 degrades
	// to 1 with a warning on platforms without SO_REUSEPORT).
	Listeners int
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers before being dropped — the slowloris guard
	// (0 → 5s, negative → no limit).
	ReadHeaderTimeout time.Duration
	// IdleTimeout is how long a keep-alive connection may sit idle
	// between requests before the server closes it (0 → 120s,
	// negative → no limit).
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size per connection
	// (0 → the stdlib's 1 MiB default).
	MaxHeaderBytes int
	// MaxInFlight caps concurrent HTTP requests (0 → 256).
	MaxInFlight int
	// HeavyInFlight is a tighter per-route cap on the expensive routes
	// (flow submission, model install), so a burst of uploads cannot
	// starve the cheap query path (0 → 32).
	HeavyInFlight int
	// MaxBodyBytes caps request body size; oversized bodies are
	// rejected with 413 (0 → 4 MiB, negative → unlimited).
	MaxBodyBytes int64
	// QueryTimeout bounds non-streaming routes (0 → 30s).
	QueryTimeout time.Duration
	// DrainTimeout bounds Shutdown's graceful drain when the caller's
	// context carries no deadline of its own (0 → 30s).
	DrainTimeout time.Duration
	// TrustedProxies lists CIDRs (or bare IPs) of reverse proxies whose
	// X-Forwarded-For is honoured when resolving the client IP for the
	// request log. Empty = no proxy is trusted (the TCP peer is the
	// client).
	TrustedProxies []string
	// CORSOrigins enables cross-origin browser access for the listed
	// origins ("*" allows any). Empty = no CORS headers are emitted.
	CORSOrigins []string
	// TLSCertFile/TLSKeyFile enable TLS on Start with modern defaults
	// (TLS 1.2+, ECDHE+AEAD suites — see httpx.ModernTLSConfig). Both
	// must be set together.
	TLSCertFile string
	TLSKeyFile  string
	// DefaultMCStrategy is the Monte Carlo estimator used by flow
	// submissions that leave mc_strategy empty: "naive" (default, also
	// when empty), "is", "surrogate" or "is+surrogate".
	DefaultMCStrategy string
	// ReplicaID names this process in a multi-replica deployment and
	// turns on cluster mode: flow jobs are claimed through store leases
	// (the Store must be shared across replicas — a Disk store on a
	// common directory), checkpoints are written fenced, and a takeover
	// scanner adopts jobs whose owner stopped heartbeating. Empty =
	// single-node, byte-identical behaviour to earlier releases.
	ReplicaID string
	// Peers lists the other replicas' base URLs (e.g.
	// "http://127.0.0.1:8081"). When non-empty, each flow job's Monte
	// Carlo stage is sharded across them (results stay bit-identical to
	// a single-node run — see montecarlo.RunBatchDistributed). Ignored
	// without ReplicaID.
	Peers []string
	// LeaseTTL is the job-lease heartbeat window: a replica silent for
	// this long loses its jobs to a peer (0 → 15s).
	LeaseTTL time.Duration
	// Problems and Processes name what flows may be submitted against.
	// Nil selects the built-ins: problem "ota", process "c35".
	Problems  map[string]ProblemFactory
	Processes map[string]ProcessFactory
	// Metrics is the shared counter registry (nil = private). The
	// server adds per-route latency histograms to it.
	Metrics *core.Metrics
	// Logger receives the structured request/job log (nil = slog
	// default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Store == nil {
		if c.ModelsDir != "" {
			c.Store = store.OpenDisk(c.ModelsDir)
		} else {
			c.Store = store.NewMemory()
		}
	}
	if c.DataDir == "" {
		c.DataDir = c.ModelsDir
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 8
	}
	if c.FlowWorkers <= 0 {
		c.FlowWorkers = 2
	}
	if c.Listeners <= 0 {
		c.Listeners = 1
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.HeavyInFlight <= 0 {
		c.HeavyInFlight = 32
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Problems == nil {
		c.Problems = map[string]ProblemFactory{
			"ota": func() core.CircuitProblem { return core.NewOTAProblem() },
		}
	}
	if c.Processes == nil {
		c.Processes = map[string]ProcessFactory{"c35": process.C35}
	}
	if c.Metrics == nil {
		c.Metrics = &core.Metrics{}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server ties the registry, job manager and HTTP front-end together.
type Server struct {
	cfg     Config
	reg     *Registry
	jobs    *JobManager
	log     *slog.Logger
	proxies []netip.Prefix // parsed Config.TrustedProxies

	handler http.Handler   // built once in New, shared by every listener shard
	srvs    []*http.Server // one per listener shard
	lns     []net.Listener

	shutdownCh chan struct{} // closed when Shutdown begins; ends SSE streams
}

// New builds a Server (not yet listening; Handler serves in-process,
// Start binds Config.Addr).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := NewRegistry(cfg.Store, cfg.MaxModels)
	if cfg.ModelsDir != "" {
		if n, err := importLegacy(cfg.ModelsDir, reg, cfg.Logger); err != nil {
			cfg.Logger.Warn("legacy model scan failed", "dir", cfg.ModelsDir, "err", err)
		} else if n > 0 {
			cfg.Logger.Info("legacy models imported", "dir", cfg.ModelsDir, "count", n)
		}
	}
	proxies, err := httpx.ParseProxies(cfg.TrustedProxies)
	if err != nil {
		// A typo'd proxy CIDR must not silently widen trust: trust
		// nothing and say so.
		cfg.Logger.Warn("ignoring trusted proxies", "err", err)
		proxies = nil
	}
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		log:        cfg.Logger,
		proxies:    proxies,
		shutdownCh: make(chan struct{}),
	}
	s.jobs = NewJobManager(cfg.DataDir, cfg.FlowWorkers, cfg.FlowQueue, reg,
		cfg.Problems, cfg.Processes, cfg.Metrics, cfg.Logger)
	s.jobs.defaultMCStrategy = cfg.DefaultMCStrategy
	if cfg.ReplicaID != "" {
		s.jobs.EnableCluster(cfg.ReplicaID, cfg.Peers, cfg.LeaseTTL)
	}
	s.handler = s.Handler()
	return s
}

// Registry exposes the model store (tests and embedding callers
// pre-install models).
func (s *Server) Registry() *Registry { return s.reg }

// Jobs exposes the job manager.
func (s *Server) Jobs() *JobManager { return s.jobs }

// Metrics exposes the shared counter registry.
func (s *Server) Metrics() *core.Metrics { return s.cfg.Metrics }

// Handler builds the routed, middleware-wrapped HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	m := s.cfg.Metrics

	// Hot read routes get the inline deadline guard; the heavy mutating
	// routes below keep http.TimeoutHandler's hard 503 cut-off (their
	// handlers can genuinely stall, and they are far off the fast path).
	timed := func(name string, h http.HandlerFunc) http.Handler {
		return observeLatency(m.Histogram(name), withDeadline(s.cfg.QueryTimeout, h))
	}
	timedHard := func(name string, h http.HandlerFunc) http.Handler {
		return observeLatency(m.Histogram(name), withTimeout(s.cfg.QueryTimeout, h))
	}
	// Every route is registered twice: tenant-scoped under
	// /v1/t/{tenant}/..., and at the pre-tenancy /v1/... path, which
	// aliases the default tenant (tenantFromPath resolves the absent
	// {tenant} segment).
	both := func(method, suffix string, h http.Handler) {
		mux.Handle(method+" /v1/"+suffix, h)
		mux.Handle(method+" /v1/t/{tenant}/"+suffix, h)
	}
	// The expensive routes (flow submission, model install/delete) get
	// their own tighter in-flight cap on top of the global one, so a
	// burst of uploads degrades uploads, not the query path.
	heavy := func(h http.Handler) http.Handler {
		return httpx.LimitConcurrency(s.cfg.HeavyInFlight, h)
	}
	both("POST", "yield/query", timed("query", s.handleQuery))
	both("GET", "models", timed("models", s.handleModels))
	both("GET", "models/{name}", timed("models", s.handleModel))
	both("POST", "models", heavy(timedHard("model_install", s.handleInstallModel)))
	both("DELETE", "models/{name}", heavy(timedHard("model_install", s.handleDeleteModel)))
	both("POST", "flows", heavy(timedHard("flow_submit", s.handleSubmit)))
	both("GET", "flows", timed("flow_status", s.handleJobs))
	both("GET", "flows/{id}", timed("flow_status", s.handleJob))
	both("DELETE", "flows/{id}", timed("flow_status", s.handleCancel))
	// SSE: latency histogram would only measure stream lifetime, and
	// TimeoutHandler breaks flushing — the events route is wrapped by
	// neither.
	both("GET", "flows/{id}/events", http.HandlerFunc(s.handleEvents))
	mux.Handle("GET /v1/tenants", timed("models", s.handleTenants))
	// Replica-to-replica Monte Carlo shard evaluation (cluster mode).
	// Registered unconditionally — a single-node server simply never
	// receives the route — and capped like the other compute-heavy
	// routes so a misbehaving peer cannot starve the query path.
	mux.Handle("POST /internal/mc/shard", heavy(timedHard("mc_shard", s.handleShardEval)))
	mux.Handle("GET /healthz", http.HandlerFunc(s.handleHealth))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.Handle("GET /metrics", telemetry.Handler(m))

	// Hardening chain, innermost (closest to the mux) first: body
	// limits, global in-flight cap, CORS, then panic recovery, the
	// access log, and — outermost, so the context values they set reach
	// everything below including the log line — client-IP resolution
	// and request IDs.
	var h http.Handler = mux
	h = httpx.MaxBytes(s.cfg.MaxBodyBytes, h)
	h = httpx.LimitConcurrency(s.cfg.MaxInFlight, h)
	h = httpx.CORS(s.cfg.CORSOrigins, h)
	h = httpx.Recover(s.log, h)
	h = httpx.AccessLog(s.log, h)
	h = httpx.RealIP(s.proxies, h)
	h = httpx.RequestID(h)
	return h
}

// Start binds Config.Addr and serves until Shutdown — over TLS with
// modern defaults when Config.TLSCertFile/TLSKeyFile are set, and
// across Config.Listeners SO_REUSEPORT shards when asked for more than
// one. Every shard runs its own http.Server (own accept loop, own
// connection-tracking lock) over the one shared handler. It returns
// once the listeners are bound; serving continues in the background.
func (s *Server) Start() error {
	n := s.cfg.Listeners
	if n > 1 && !httpx.ReusePortSupported() {
		s.log.Warn("SO_REUSEPORT not supported on this platform; using one listener",
			"requested", n)
		n = 1
	}
	lns, err := httpx.ListenReusePort(s.cfg.Addr, n)
	if err != nil {
		return err
	}
	useTLS := s.cfg.TLSCertFile != "" || s.cfg.TLSKeyFile != ""
	if useTLS {
		tc, err := httpx.LoadTLS(s.cfg.TLSCertFile, s.cfg.TLSKeyFile)
		if err != nil {
			for _, ln := range lns {
				ln.Close()
			}
			return err
		}
		for i := range lns {
			lns[i] = tls.NewListener(lns[i], tc)
		}
	}
	s.lns = lns
	for _, ln := range lns {
		hs := s.newHTTPServer()
		s.srvs = append(s.srvs, hs)
		go func(hs *http.Server, ln net.Listener) {
			if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.log.Error("serve", "err", err)
			}
		}(hs, ln)
	}
	s.log.Info("listening", "addr", lns[0].Addr().String(), "tls", useTLS,
		"listeners", len(lns))
	return nil
}

// newHTTPServer builds one listener shard's http.Server with the
// configured keep-alive and header limits (negative timeouts disable
// the limit).
func (s *Server) newHTTPServer() *http.Server {
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	if hs.ReadHeaderTimeout < 0 {
		hs.ReadHeaderTimeout = 0
	}
	if hs.IdleTimeout < 0 {
		hs.IdleTimeout = 0
	}
	return hs
}

// Addr reports the bound listen address (valid after Start; every
// listener shard shares it).
func (s *Server) Addr() string {
	if len(s.lns) == 0 {
		return s.cfg.Addr
	}
	return s.lns[0].Addr().String()
}

// NumListeners reports how many listener shards Start actually opened.
func (s *Server) NumListeners() int { return len(s.lns) }

// Shutdown drains the server gracefully: new connections stop, SSE
// streams close, in-flight requests finish, running flows checkpoint
// and cancel, and the model registry empties. The ctx bounds the whole
// drain; when it carries no deadline of its own, Config.DrainTimeout
// applies.
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.shutdownCh:
		return nil // already shut down
	default:
		close(s.shutdownCh)
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	// Every listener shard drains in parallel inside the one budget — a
	// slow shard must not serialize behind its siblings.
	var firstErr error
	if len(s.srvs) > 0 {
		errs := make([]error, len(s.srvs))
		var wg sync.WaitGroup
		for i, hs := range s.srvs {
			wg.Add(1)
			go func(i int, hs *http.Server) {
				defer wg.Done()
				errs[i] = hs.Shutdown(ctx)
			}(i, hs)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := s.jobs.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = err
	}
	s.reg.Close()
	return firstErr
}

// --- handlers ---

// writeJSON lives in json.go (pooled encoder, explicit Content-Length).

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, &api.Error{Status: status, Message: fmt.Sprintf(format, args...)})
}

// decodeStatus maps a request-body decode error to an HTTP status: a
// body truncated by the httpx.MaxBytes cap is 413, anything else
// malformed is 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// errStatus maps a service error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownModel), errors.Is(err, ErrUnknownJob),
		errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, store.ErrInvalidKey):
		return http.StatusBadRequest
	case errors.Is(err, store.ErrCorrupt):
		return http.StatusUnprocessableEntity
	case errors.Is(err, store.ErrLeaseHeld):
		// Another replica owns the job; the submitter should retry there
		// (or wait for the owner to finish).
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// tenantFromPath resolves a request's effective tenant: the {tenant}
// path segment on /v1/t/ routes, the default tenant on the pre-tenancy
// aliases.
func tenantFromPath(r *http.Request) string {
	if t := r.PathValue("tenant"); t != "" {
		return t
	}
	return api.DefaultTenant
}

// resolveTenant reconciles the path tenant with a request body's
// TenantRef. On the legacy aliases the body tenant (usually absent ⇒
// default) stands; on tenant-scoped routes an absent body tenant
// inherits the path, and a contradicting one is an error (a request
// must not silently act on a namespace other than the one in its URL).
func resolveTenant(r *http.Request, ref *api.TenantRef) error {
	pt := r.PathValue("tenant")
	if pt == "" {
		return nil
	}
	if ref.Tenant != "" && ref.Tenant != pt {
		return fmt.Errorf("body tenant %q contradicts path tenant %q", ref.Tenant, pt)
	}
	ref.Tenant = pt
	return nil
}

// queryBody accepts both the single and the batch shape on one route.
type queryBody struct {
	api.QueryRequest
	Queries []api.QueryRequest `json:"queries"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body queryBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, decodeStatus(err), "bad request body: %v", err)
		return
	}
	if err := resolveTenant(r, &body.TenantRef); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	for i := range body.Queries {
		if err := resolveTenant(r, &body.Queries[i].TenantRef); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if len(body.Queries) > 0 {
		// Queries group by model and stage through the batch evaluator —
		// cheaper than the per-query path and free of goroutine fan-out.
		results := s.reg.QueryBatch(r.Context(), body.Queries)
		writeJSON(w, http.StatusOK, api.BatchQueryResponse{Results: results})
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	rendered, out, err := s.reg.QueryRendered(r.Context(), body.QueryRequest, sc)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	if rendered != nil {
		writeJSONBytes(w, http.StatusOK, rendered)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	tenant := tenantFromPath(r)
	if err := store.ValidateKey(tenant); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	list := s.reg.List(tenant)
	if list == nil {
		list = []api.ModelInfo{} // an empty catalog is [], not null
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Info(tenantFromPath(r), r.PathValue("name"))
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleInstallModel uploads a finished model artefact into the
// tenant's catalog: the server rebuilds the tables from the Pareto
// points, persists the canonical payload to the store and makes the
// model queryable, answering with the catalog entry (including the
// content-addressed version).
func (s *Server) handleInstallModel(w http.ResponseWriter, r *http.Request) {
	var req api.InstallModelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), "bad request body: %v", err)
		return
	}
	tenant := tenantFromPath(r)
	pts := make([]core.ParetoPoint, len(req.Points))
	for i, p := range req.Points {
		pts[i] = core.ParetoPoint{Perf: p.Perf, DeltaPct: p.DeltaPct, Params: p.Params}
	}
	m, err := core.BuildModel(pts, req.ObjectiveNames, req.ParamNames, req.ParamUnits,
		core.ModelOptions{MaxTablePoints: req.MaxTablePoints})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if _, err := s.reg.Install(tenant, req.Name, m); err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	info, err := s.reg.Info(tenant, req.Name)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(tenantFromPath(r), r.PathValue("name")); err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.reg.Tenants()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.FlowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), "bad request body: %v", err)
		return
	}
	if err := resolveTenant(r, &req.TenantRef); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, err := s.jobs.Submit(req)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List(tenantFromPath(r)))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Status(tenantFromPath(r), r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Cancel(tenantFromPath(r), r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// The MC scheduler gauges make a bare health poll show whether a
	// running flow's Monte Carlo stage is actually parallel (busy
	// workers vs queue) without scraping the full expvar export.
	ms := s.cfg.Metrics.Snapshot()
	qc, qi := s.reg.QueryStats()
	body := map[string]any{
		"status":          "ok",
		"store":           s.reg.Store().Backend(),
		"resident_models": s.reg.Resident(),
		"query_engine": map[string]int64{
			"compiled":    qc,
			"interpreted": qi,
		},
		"mc_scheduler": map[string]int64{
			"busy_workers":          ms.MCBusyWorkers,
			"busy_workers_peak":     ms.MCBusyWorkersPeak,
			"queue_depth":           ms.MCQueueDepth,
			"queue_depth_peak":      ms.MCQueueDepthPeak,
			"points_in_flight":      ms.MCPointsInFlight,
			"points_in_flight_peak": ms.MCPointsInFlightPeak,
		},
	}
	// Present only once a variance-reduced flow has run, so naive-only
	// deployments keep the pre-strategy health shape.
	if ms.MCStrategy != "" {
		body["mc_variance"] = map[string]any{
			"strategy":  ms.MCStrategy,
			"predicted": ms.MCPredicted,
			"mean_ess":  ms.MCMeanESS,
		}
	}
	// Present only in cluster mode (ReplicaID set), so single-node
	// deployments keep the pre-cluster health shape.
	if ms.Replica != "" {
		body["replica"] = map[string]any{
			"id":                   ms.Replica,
			"peers":                len(s.cfg.Peers),
			"leases_held":          ms.LeasesHeld,
			"lease_takeovers":      ms.LeaseTakeovers,
			"lease_rejections":     ms.LeaseRejections,
			"mc_shards_dispatched": ms.MCShardsDispatched,
			"mc_shards_fallback":   ms.MCShardsFallback,
			"mc_shards_served":     ms.MCShardsServed,
		}
	}
	writeJSON(w, http.StatusOK, body)
}
