package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
)

// jsonBuf pairs a reusable buffer with an encoder bound to it, so the
// generic response path neither allocates a buffer nor an encoder per
// response.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// writeJSON encodes v into a pooled buffer and writes it with an
// explicit Content-Length, so responses go out in one write without
// chunked transfer encoding.
func writeJSON(w http.ResponseWriter, status int, v any) {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	// An encode error (unrepresentable value, e.g. NaN) leaves a partial
	// or empty body, matching the previous stream-encoder behaviour.
	_ = jb.enc.Encode(v)
	writeJSONBytes(w, status, jb.buf.Bytes())
	jsonBufPool.Put(jb)
}

// writeJSONBytes writes an already-rendered JSON body.
func writeJSONBytes(w http.ResponseWriter, status int, b []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(status)
	w.Write(b)
}

// appendJSONFloat appends f rendered exactly as encoding/json renders a
// float64 (shortest representation, 'f' form inside [1e-6, 1e21),
// exponent zero-padding stripped), so hand-rendered responses are
// byte-identical to encoder output. ok is false for values JSON cannot
// represent (NaN, ±Inf).
func appendJSONFloat(b []byte, f float64) (out []byte, ok bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// clean up e-09 to e-9, as encoding/json does
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// prepareJSON pre-renders every static fragment of a query response for
// a model served under (tenant, name): the object skeleton, the quoted
// model name (plus the tenant for non-default tenants — the default
// tenant stays off the wire so pre-tenancy responses are byte-identical)
// and each parameter's name/unit header. At query time only the numbers
// are appended between fragments.
func (cm *CompiledModel) prepareJSON(tenant, name string, paramNames, paramUnits []string) error {
	quoted, err := json.Marshal(name)
	if err != nil {
		return err
	}
	cm.jsonHead = append([]byte(`{"model":`), quoted...)
	if wt := wireTenant(tenant); wt != "" {
		qt, err := json.Marshal(wt)
		if err != nil {
			return err
		}
		cm.jsonHead = append(append(cm.jsonHead, `,"tenant":`...), qt...)
	}
	cm.jsonHead = append(cm.jsonHead, `,"targets":[`...)
	cm.jsonDeltas = []byte(`],"delta_pct":[`)
	cm.jsonFront = []byte(`],"front_perf":[`)
	cm.jsonParams = []byte(`],"params":[`)
	cm.jsonYield = []byte(`],"predicted_yield":`)
	cm.jsonCurve = []byte(`,"curve_param":`)
	cm.jsonTail = []byte("}\n")
	cm.paramHeads = make([][]byte, len(paramNames))
	for i, pn := range paramNames {
		qn, err := json.Marshal(pn)
		if err != nil {
			return err
		}
		head := append([]byte(`{"name":`), qn...)
		if i < len(paramUnits) && paramUnits[i] != "" {
			qu, err := json.Marshal(paramUnits[i])
			if err != nil {
				return err
			}
			head = append(append(head, `,"unit":`...), qu...)
		}
		head = append(head, `,"value":`...)
		cm.paramHeads[i] = head
	}
	return nil
}

// appendJSON renders a solved query into dst, byte-identical to
// writeJSON(w, ..., cm.response(...)) including the encoder's trailing
// newline. ok is false when a value is unrepresentable; the caller then
// falls back to the generic encoder path.
func (cm *CompiledModel) appendJSON(dst []byte, s *solvedQuery) (out []byte, ok bool) {
	pair := func(b []byte, v0, v1 float64) ([]byte, bool) {
		b, ok := appendJSONFloat(b, v0)
		if !ok {
			return b, false
		}
		b = append(b, ',')
		return appendJSONFloat(b, v1)
	}
	dst = append(dst, cm.jsonHead...)
	if dst, ok = pair(dst, s.target[0], s.target[1]); !ok {
		return dst, false
	}
	dst = append(dst, cm.jsonDeltas...)
	if dst, ok = pair(dst, s.deltaPct[0], s.deltaPct[1]); !ok {
		return dst, false
	}
	dst = append(dst, cm.jsonFront...)
	if dst, ok = pair(dst, s.frontPerf[0], s.frontPerf[1]); !ok {
		return dst, false
	}
	dst = append(dst, cm.jsonParams...)
	for i, v := range s.params {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, cm.paramHeads[i]...)
		if dst, ok = appendJSONFloat(dst, v); !ok {
			return dst, false
		}
		dst = append(dst, '}')
	}
	dst = append(dst, cm.jsonYield...)
	if dst, ok = appendJSONFloat(dst, s.predictedYield); !ok {
		return dst, false
	}
	dst = append(dst, cm.jsonCurve...)
	if dst, ok = appendJSONFloat(dst, s.curveParam); !ok {
		return dst, false
	}
	dst = append(dst, cm.jsonTail...)
	return dst, true
}
