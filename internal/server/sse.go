package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"analogyield/internal/server/api"
)

// handleEvents streams a job's event history and live tail as
// Server-Sent Events. Buffered events replay first (from Last-Event-ID
// when the client reconnects), then the stream follows the job until
// its terminal job_done event, the client departs, or the server shuts
// down. Each SSE message's id is the event Seq and its data one
// api.Event JSON object.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.get(tenantFromPath(r), r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	lastSeq := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, perr := strconv.Atoi(v); perr == nil && n > 0 {
			lastSeq = n
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	notify := j.subscribe()
	defer j.unsubscribe(notify)

	for {
		evs := j.eventsSince(lastSeq)
		for _, ev := range evs {
			b, merr := json.Marshal(ev)
			if merr != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, b)
			lastSeq = ev.Seq
			if ev.Type == api.EventJobDone {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.shutdownCh:
			return
		}
	}
}
