package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
	"analogyield/internal/store"
	"analogyield/internal/yield"
)

// ErrUnknownModel reports a query against a (tenant, name) that is
// neither resident nor present in the artefact store.
var ErrUnknownModel = errors.New("server: unknown model")

// Registry is the read-mostly model cache over the durable artefact
// store (store.Store) behind the query path. Models are addressed by
// (tenant, name, version): installs persist the canonical payload to
// the store and make the model resident; cache misses load lazily from
// the store (so a restarted replica warm-starts from whatever the
// store holds, compiling each model on its first query); at most cap
// models stay resident, the least recently queried evicted first.
//
// The resident set is published as an immutable snapshot behind an
// atomic.Pointer: queries load the snapshot and answer without taking
// any lock, writers (install, evict, close) serialise on a mutex and
// swap in a copied map. Each entry is compiled once at install time
// (CompileModel) into the struct-of-arrays form the hot path evaluates;
// recency for LRU eviction is a per-entry atomic counter fed by a
// global clock, so reads stay lock-free.
type Registry struct {
	st  store.Store
	cap int

	mu    sync.Mutex // serialises snapshot writers
	snap  atomic.Pointer[snapshot]
	clock atomic.Int64 // LRU recency source

	// compiled and interpreted count queries by the engine that answered
	// them, so the compiled-path hit rate is observable (healthz). They
	// tick on every request, so they are sharded like the rest of the
	// per-request counters — at six-figure qps a lone atomic here is a
	// cross-core cache-line fight.
	compiled    core.ShardedCounter
	interpreted core.ShardedCounter
}

// snapshot is one immutable published generation of the resident set,
// keyed by tenant-qualified name.
type snapshot struct {
	entries map[string]*modelEntry
}

// entryKey qualifies a model name by its tenant. Validated segments
// contain no '/', so the join is unambiguous.
func entryKey(tenant, name string) string { return tenant + "/" + name }

// modelEntry is one resident model. All fields except lastUsed are
// immutable after install; entries are shared between snapshot
// generations, so a recency bump is visible regardless of which
// generation the reader loaded.
type modelEntry struct {
	tenant   string
	name     string
	version  string // content address of the installed payload
	model    *core.Model
	compiled *CompiledModel // nil when the model has no compiled form
	lastUsed atomic.Int64
}

// NewRegistry creates a registry over the given artefact store (nil =
// a fresh in-process store.Memory) keeping at most cap models resident
// (cap <= 0 means 8).
func NewRegistry(st store.Store, cap int) *Registry {
	if st == nil {
		st = store.NewMemory()
	}
	if cap <= 0 {
		cap = 8
	}
	r := &Registry{st: st, cap: cap}
	r.snap.Store(&snapshot{entries: map[string]*modelEntry{}})
	return r
}

// Store exposes the backing artefact store.
func (r *Registry) Store() store.Store { return r.st }

// Close empties the resident set. (The registry has no background
// goroutines; queries racing Close finish against the snapshot they
// already loaded. The artefact store outlives residency.)
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snap.Store(&snapshot{entries: map[string]*modelEntry{}})
}

// validRef vets the tenant and name of a model reference.
func validRef(tenant, name string) error {
	if err := store.ValidateKey(tenant); err != nil {
		return fmt.Errorf("server: tenant: %w", err)
	}
	if err := store.ValidateKey(name); err != nil {
		return fmt.Errorf("server: model name: %w", err)
	}
	return nil
}

// get returns an entry for (tenant, name, version), loading from the
// store (and possibly evicting) as needed. The resident fast path is a
// single atomic load plus a recency bump — no lock. version "" means
// latest; a version pin that matches the resident entry is served from
// residency, any other pin is loaded from the store for this call only
// (served interpreted, never cached — pinned reads of historical
// versions must not evict the hot latest set).
func (r *Registry) get(tenant, name, version string) (*modelEntry, error) {
	if err := validRef(tenant, name); err != nil {
		return nil, err
	}
	if e, ok := r.snap.Load().entries[entryKey(tenant, name)]; ok {
		if version == "" || version == e.version {
			e.lastUsed.Store(r.clock.Add(1))
			return e, nil
		}
	}

	// Load outside the writer lock: store reads must not stall installs
	// of other models.
	data, info, err := r.st.Get(store.Key{Tenant: tenant, Kind: store.KindModel, Name: name, Version: version})
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s/%s", ErrUnknownModel, tenant, name)
		}
		return nil, fmt.Errorf("server: loading model %s/%s: %w", tenant, name, err)
	}
	m, err := core.DecodeModel(data)
	if err != nil {
		return nil, fmt.Errorf("server: %w: model %s/%s@%s: %v",
			store.ErrCorrupt, tenant, name, info.Version, err)
	}
	if version != "" {
		// Historical pin: answer interpreted, skip residency.
		return &modelEntry{tenant: tenant, name: name, version: info.Version, model: m}, nil
	}
	return r.install(tenant, name, info.Version, m), nil
}

// Install persists the model's canonical payload to the artefact store
// under (tenant, name) and makes it resident, replacing any previous
// model of that name (in-flight queries finish against the entry they
// already hold; the swap never waits for them). It returns the
// content-addressed version the store assigned.
func (r *Registry) Install(tenant, name string, m *core.Model) (string, error) {
	if err := validRef(tenant, name); err != nil {
		return "", err
	}
	data, err := core.EncodeModel(m)
	if err != nil {
		return "", fmt.Errorf("server: encoding model %s/%s: %w", tenant, name, err)
	}
	info, err := r.st.Put(tenant, store.KindModel, name, data)
	if err != nil {
		return "", fmt.Errorf("server: persisting model %s/%s: %w", tenant, name, err)
	}
	r.install(tenant, name, info.Version, m)
	return info.Version, nil
}

// install compiles the model, then publishes a new snapshot generation
// containing it, evicting the least recently used entries down to cap.
// Compilation runs before the writer lock so installs of large models
// do not serialise on each other's compile time.
func (r *Registry) install(tenant, name, version string, m *core.Model) *modelEntry {
	// A model the engine cannot compile (e.g. quadratic tables) serves on
	// the interpreted path; compiled == nil is a supported state.
	cm, _ := CompileModel(tenant, name, m)

	e := &modelEntry{tenant: tenant, name: name, version: version, model: m, compiled: cm}
	e.lastUsed.Store(r.clock.Add(1))

	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load().entries
	entries := make(map[string]*modelEntry, len(old)+1)
	for k, v := range old {
		entries[k] = v
	}
	entries[entryKey(tenant, name)] = e
	for len(entries) > r.cap {
		var victim *modelEntry
		for _, v := range entries {
			if v == e {
				continue // never evict the entry being installed
			}
			if victim == nil || v.lastUsed.Load() < victim.lastUsed.Load() {
				victim = v
			}
		}
		if victim == nil {
			break
		}
		delete(entries, entryKey(victim.tenant, victim.name))
	}
	r.snap.Store(&snapshot{entries: entries})
	return e
}

// Evict drops a model from residency (queries reload it from the
// store). It reports whether the model was resident. The stored
// artefact is untouched — use Delete to remove it from the catalog.
func (r *Registry) Evict(tenant, name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := entryKey(tenant, name)
	old := r.snap.Load().entries
	if _, ok := old[key]; !ok {
		return false
	}
	entries := make(map[string]*modelEntry, len(old)-1)
	for k, v := range old {
		if k != key {
			entries[k] = v
		}
	}
	r.snap.Store(&snapshot{entries: entries})
	return true
}

// Delete removes a model from residency and from the artefact store
// (every version of the name).
func (r *Registry) Delete(tenant, name string) error {
	if err := validRef(tenant, name); err != nil {
		return err
	}
	resident := r.Evict(tenant, name)
	err := r.st.Delete(store.Key{Tenant: tenant, Kind: store.KindModel, Name: name})
	if errors.Is(err, store.ErrNotFound) {
		if resident {
			return nil // memory-only entry: eviction was the deletion
		}
		return fmt.Errorf("%w: %s/%s", ErrUnknownModel, tenant, name)
	}
	return err
}

// Query answers one yield query. The hot path — resident model with a
// compiled form — runs lock-free against the snapshot with pooled
// scratch; anything the compiled engine cannot answer re-runs on the
// interpreted path for the bit-identical result or error.
func (r *Registry) Query(ctx context.Context, req api.QueryRequest) (*api.QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := r.get(req.TenantOrDefault(), req.Model, req.Version)
	if err != nil {
		return nil, err
	}
	if cm := e.compiled; cm != nil {
		sc := getScratch()
		if s, ok := cm.solve(req, sc); ok {
			resp := cm.response(&s)
			putScratch(sc)
			r.compiled.Add(1)
			return resp, nil
		}
		putScratch(sc)
	}
	r.interpreted.Add(1)
	res := solveQuery(e.tenant, e.name, e.model, req)
	if res.Error != "" {
		return nil, errors.New(res.Error)
	}
	return res.Response, nil
}

// QueryRendered answers one query and, when the compiled engine
// produced the answer, renders it straight into sc.buf from the model's
// pre-rendered JSON fragments — the zero-allocation HTTP path. body is
// nil when the caller must encode resp itself (interpreted fallback).
// The returned body aliases sc.buf: write it out before releasing sc.
func (r *Registry) QueryRendered(ctx context.Context, req api.QueryRequest, sc *queryScratch) (body []byte, resp *api.QueryResponse, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	e, err := r.get(req.TenantOrDefault(), req.Model, req.Version)
	if err != nil {
		return nil, nil, err
	}
	if cm := e.compiled; cm != nil {
		if s, ok := cm.solve(req, sc); ok {
			r.compiled.Add(1)
			if b, ok := cm.appendJSON(sc.buf[:0], &s); ok {
				sc.buf = b
				return b, nil, nil
			}
			// A value JSON cannot represent (NaN/Inf): hand the struct to
			// the generic encoder for the stock error behaviour.
			return nil, cm.response(&s), nil
		}
	}
	r.interpreted.Add(1)
	res := solveQuery(e.tenant, e.name, e.model, req)
	if res.Error != "" {
		return nil, nil, errors.New(res.Error)
	}
	return nil, res.Response, nil
}

// QueryBatch answers a batch of queries, grouping them by (tenant,
// model) so each group's variation-table interpolations stage through
// table.Model1D.EvalBatch (segment-hint reuse across the whole group)
// and the remaining per-query arithmetic reuses one warm scratch.
// Results line up with reqs; per-query failures land in
// Results[i].Error, exactly as the per-query path would report them.
func (r *Registry) QueryBatch(ctx context.Context, reqs []api.QueryRequest) []api.QueryResult {
	out := make([]api.QueryResult, len(reqs))
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i] = api.QueryResult{Error: err.Error()}
		}
		return out
	}
	// Group request indexes by (tenant, model, version), preserving order
	// within each group.
	type groupRef struct{ tenant, model, version string }
	groups := make(map[groupRef][]int, 2)
	order := make([]groupRef, 0, 2)
	for i, q := range reqs {
		ref := groupRef{q.TenantOrDefault(), q.Model, q.Version}
		if _, ok := groups[ref]; !ok {
			order = append(order, ref)
		}
		groups[ref] = append(groups[ref], i)
	}
	sc := getScratch()
	defer putScratch(sc)
	for _, ref := range order {
		idxs := groups[ref]
		e, err := r.get(ref.tenant, ref.model, ref.version)
		if err != nil {
			for _, i := range idxs {
				out[i] = api.QueryResult{Error: err.Error()}
			}
			continue
		}
		r.queryGroup(e, reqs, idxs, out, sc)
	}
	return out
}

// queryGroup answers one model's share of a batch. Spec bounds that
// parse and fall inside the variation tables' domains are evaluated in
// one EvalBatch per axis; each query then finishes through the compiled
// solveFrom. Everything else (parse errors, out-of-range bounds, models
// with no compiled form, infeasible spec pairs) re-runs the interpreted
// path for the bit-identical error.
func (r *Registry) queryGroup(e *modelEntry, reqs []api.QueryRequest, idxs []int, out []api.QueryResult, sc *queryScratch) {
	cm := e.compiled
	if cm == nil {
		for _, i := range idxs {
			r.interpreted.Add(1)
			out[i] = solveQuery(e.tenant, e.name, e.model, reqs[i])
		}
		return
	}
	sc.stage = sc.stage[:0]
	sc.sq = sc.sq[:0]
	sc.scales = sc.scales[:0]
	sc.bounds0 = sc.bounds0[:0]
	sc.bounds1 = sc.bounds1[:0]
	for _, i := range idxs {
		req := reqs[i]
		spec0, err0 := req.Specs[0].ToYield()
		spec1, err1 := req.Specs[1].ToYield()
		scale := req.GuardScale
		if scale == 0 {
			scale = 1
		}
		if err0 != nil || err1 != nil || scale <= 0 ||
			spec0.Bound < cm.delta0.lo || spec0.Bound > cm.delta0.hi ||
			spec1.Bound < cm.delta1.lo || spec1.Bound > cm.delta1.hi {
			r.interpreted.Add(1)
			out[i] = solveQuery(e.tenant, e.name, e.model, req)
			continue
		}
		sc.stage = append(sc.stage, i)
		sc.sq = append(sc.sq, solvedQuery{spec0: spec0, spec1: spec1})
		sc.scales = append(sc.scales, scale)
		sc.bounds0 = append(sc.bounds0, spec0.Bound)
		sc.bounds1 = append(sc.bounds1, spec1.Bound)
	}
	if len(sc.stage) == 0 {
		return
	}
	// The bounds were range-checked with Model1D.Eval's exact comparison,
	// so Error-mode extrapolation cannot fire and the batch cannot fail.
	sc.d0s, _ = cm.delta0Tbl.EvalBatch(sc.d0s[:0], sc.bounds0)
	sc.d1s, _ = cm.delta1Tbl.EvalBatch(sc.d1s[:0], sc.bounds1)
	for j, i := range sc.stage {
		s := &sc.sq[j]
		solved, ok := cm.solveFrom(s, sc.scales[j], sc.d0s[j], sc.d1s[j], sc)
		if !ok {
			r.interpreted.Add(1)
			out[i] = solveQuery(e.tenant, e.name, e.model, reqs[i])
			continue
		}
		r.compiled.Add(1)
		out[i] = api.QueryResult{Response: cm.response(&solved)}
	}
}

// QueryStats reports how many queries each engine has answered since
// start: the compiled hot path vs the interpreted reference path
// (errors, uncompiled models, edge cases).
func (r *Registry) QueryStats() (compiled, interpreted int64) {
	return r.compiled.Load(), r.interpreted.Load()
}

// wireTenant renders a tenant for a response: the default tenant stays
// off the wire so pre-tenancy responses are byte-identical.
func wireTenant(tenant string) string {
	if tenant == api.DefaultTenant {
		return ""
	}
	return tenant
}

// solveQuery runs the Table 3 arithmetic against a model. It is the
// interpreted reference path: CompiledModel.solve must agree with it
// bit for bit on success, and every compiled-path refusal re-runs here
// so errors come from one place.
func solveQuery(tenant, name string, m *core.Model, req api.QueryRequest) api.QueryResult {
	fail := func(err error) api.QueryResult { return api.QueryResult{Error: err.Error()} }
	spec0, err := req.Specs[0].ToYield()
	if err != nil {
		return fail(err)
	}
	spec1, err := req.Specs[1].ToYield()
	if err != nil {
		return fail(err)
	}
	scale := req.GuardScale
	if scale == 0 {
		scale = 1
	}
	d, err := m.DesignForScaled(spec0, spec1, scale)
	if err != nil {
		return fail(err)
	}
	resp := &api.QueryResponse{
		Model:      name,
		Tenant:     wireTenant(tenant),
		Targets:    d.Target,
		DeltaPct:   d.DeltaPct,
		FrontPerf:  d.FrontPerf,
		CurveParam: d.CurveParam,
		Params:     make([]api.Param, len(d.Params)),
	}
	for i, v := range d.Params {
		p := api.Param{Name: m.ParamNames[i], Value: v}
		if i < len(m.ParamUnits) {
			p.Unit = m.ParamUnits[i]
		}
		resp.Params[i] = p
	}
	// Model-only yield estimate at the selected front point: the
	// variation tables give Δ% at the design's nominal performance.
	var deltas [2]float64
	for k := 0; k < 2; k++ {
		dp, derr := m.VariationAt(k, d.FrontPerf[k])
		if derr != nil {
			// The front point can sit at the very edge of the k=1 axis;
			// fall back to the spec-bound interpolation already computed.
			dp = d.DeltaPct[k]
		}
		deltas[k] = dp
	}
	resp.PredictedYield, err = yield.PredictJoint(
		[]yield.Spec{spec0, spec1}, d.FrontPerf[:], deltas[:])
	if err != nil {
		return fail(err)
	}
	return api.QueryResult{Response: resp}
}

// List enumerates a tenant's models — resident ones plus everything in
// the artefact store — sorted by name.
func (r *Registry) List(tenant string) []api.ModelInfo {
	if store.ValidateKey(tenant) != nil {
		return nil
	}
	names := map[string]bool{}
	for _, e := range r.snap.Load().entries {
		if e.tenant == tenant {
			names[e.name] = true
		}
	}
	if infos, err := r.st.List(tenant, store.KindModel); err == nil {
		for _, in := range infos {
			if !names[in.Name] {
				names[in.Name] = false
			}
		}
	}
	out := make([]api.ModelInfo, 0, len(names))
	for name := range names {
		info, err := r.Info(tenant, name)
		if err != nil {
			continue
		}
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tenants enumerates every tenant visible to the registry: those with
// stored artefacts plus those with resident-only models, sorted.
func (r *Registry) Tenants() []string {
	seen := map[string]bool{}
	if ts, err := r.st.Tenants(); err == nil {
		for _, t := range ts {
			seen[t] = true
		}
	}
	for _, e := range r.snap.Load().entries {
		seen[e.tenant] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Info describes one model. A non-resident model is read from the
// store without installing it, so listing the registry never evicts
// models that live queries are using.
func (r *Registry) Info(tenant, name string) (*api.ModelInfo, error) {
	if err := validRef(tenant, name); err != nil {
		return nil, err
	}
	e, resident := r.snap.Load().entries[entryKey(tenant, name)]
	var m *core.Model
	var version string
	if resident {
		m, version = e.model, e.version
	} else {
		data, info, err := r.st.Get(store.Key{Tenant: tenant, Kind: store.KindModel, Name: name})
		if err != nil {
			if errors.Is(err, store.ErrNotFound) {
				return nil, fmt.Errorf("%w: %s/%s", ErrUnknownModel, tenant, name)
			}
			return nil, fmt.Errorf("server: loading model %s/%s: %w", tenant, name, err)
		}
		if m, err = core.DecodeModel(data); err != nil {
			return nil, fmt.Errorf("server: %w: model %s/%s@%s: %v",
				store.ErrCorrupt, tenant, name, info.Version, err)
		}
		version = info.Version
	}
	lo, hi := m.Domain()
	lo1, hi1 := m.Delta[1].Domain()
	return &api.ModelInfo{
		TenantRef:      api.TenantRef{Tenant: wireTenant(tenant), Model: name, Version: version},
		Name:           name,
		ObjectiveNames: m.ObjectiveNames,
		ParamNames:     m.ParamNames,
		Points:         len(m.Points),
		Domain:         [2]float64{lo, hi},
		Domain1:        [2]float64{lo1, hi1},
		Resident:       resident,
	}, nil
}

// Resident reports how many models are currently loaded.
func (r *Registry) Resident() int {
	return len(r.snap.Load().entries)
}
