package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
	"analogyield/internal/yield"
)

// ErrUnknownModel reports a query against a name that is neither
// resident nor present in the models directory.
var ErrUnknownModel = errors.New("server: unknown model")

// Registry is the read-mostly model store behind the query path. Models
// load lazily from a directory of core.Model artefacts (one
// subdirectory per model, as written by Model.Save) or are installed
// directly by finished flow jobs; at most cap models stay resident, the
// least recently queried evicted first (a later Get reloads them from
// disk).
//
// The resident set is published as an immutable snapshot behind an
// atomic.Pointer: queries load the snapshot and answer without taking
// any lock, writers (install, evict, close) serialise on a mutex and
// swap in a copied map. Each entry is compiled once at install time
// (CompileModel) into the struct-of-arrays form the hot path evaluates;
// recency for LRU eviction is a per-entry atomic counter fed by a
// global clock, so reads stay lock-free.
type Registry struct {
	dir string
	cap int

	mu    sync.Mutex // serialises snapshot writers
	snap  atomic.Pointer[snapshot]
	clock atomic.Int64 // LRU recency source

	// compiled and interpreted count queries by the engine that answered
	// them, so the compiled-path hit rate is observable (healthz).
	compiled    atomic.Int64
	interpreted atomic.Int64
}

// snapshot is one immutable published generation of the resident set.
type snapshot struct {
	entries map[string]*modelEntry
}

// modelEntry is one resident model. All fields except lastUsed are
// immutable after install; entries are shared between snapshot
// generations, so a recency bump is visible regardless of which
// generation the reader loaded.
type modelEntry struct {
	name     string
	model    *core.Model
	compiled *CompiledModel // nil when the model has no compiled form
	lastUsed atomic.Int64
}

// NewRegistry creates a registry over an optional models directory
// (empty = memory-only) keeping at most cap models resident (cap <= 0
// means 8).
func NewRegistry(dir string, cap int) *Registry {
	if cap <= 0 {
		cap = 8
	}
	r := &Registry{dir: dir, cap: cap}
	r.snap.Store(&snapshot{entries: map[string]*modelEntry{}})
	return r
}

// Close empties the resident set. (The registry has no background
// goroutines; queries racing Close finish against the snapshot they
// already loaded.)
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snap.Store(&snapshot{entries: map[string]*modelEntry{}})
}

// modelDir returns the on-disk directory of a named model.
func (r *Registry) modelDir(name string) string {
	return filepath.Join(r.dir, name)
}

// validName rejects names that would escape the models directory.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("server: empty model name")
	}
	if name != filepath.Base(name) || name == "." || name == ".." {
		return fmt.Errorf("server: bad model name %q", name)
	}
	return nil
}

// get returns the resident entry, loading (and possibly evicting) as
// needed. The resident fast path is a single atomic load plus a recency
// bump — no lock.
func (r *Registry) get(name string) (*modelEntry, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if e, ok := r.snap.Load().entries[name]; ok {
		e.lastUsed.Store(r.clock.Add(1))
		return e, nil
	}

	// Load outside the writer lock: disk reads must not stall installs
	// of other models.
	if r.dir == "" {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if _, err := os.Stat(r.modelDir(name)); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	m, err := core.LoadModel(r.modelDir(name))
	if err != nil {
		return nil, fmt.Errorf("server: loading model %q: %w", name, err)
	}
	return r.install(name, m), nil
}

// Install makes a model resident under name, replacing any previous
// model of that name (in-flight queries finish against the entry they
// already hold; the swap never waits for them). When the registry has a
// models directory the artefacts are saved there first, so an evicted
// model can be reloaded.
func (r *Registry) Install(name string, m *core.Model) error {
	if err := validName(name); err != nil {
		return err
	}
	if r.dir != "" {
		if err := m.Save(r.modelDir(name)); err != nil {
			return fmt.Errorf("server: saving model %q: %w", name, err)
		}
	}
	r.install(name, m)
	return nil
}

// install compiles the model, then publishes a new snapshot generation
// containing it, evicting the least recently used entries down to cap.
// Compilation runs before the writer lock so installs of large models
// do not serialise on each other's compile time.
func (r *Registry) install(name string, m *core.Model) *modelEntry {
	// A model the engine cannot compile (e.g. quadratic tables) serves on
	// the interpreted path; compiled == nil is a supported state.
	cm, _ := CompileModel(name, m)

	e := &modelEntry{name: name, model: m, compiled: cm}
	e.lastUsed.Store(r.clock.Add(1))

	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load().entries
	entries := make(map[string]*modelEntry, len(old)+1)
	for k, v := range old {
		entries[k] = v
	}
	entries[name] = e
	for len(entries) > r.cap {
		var victim *modelEntry
		for _, v := range entries {
			if v == e {
				continue // never evict the entry being installed
			}
			if victim == nil || v.lastUsed.Load() < victim.lastUsed.Load() {
				victim = v
			}
		}
		if victim == nil {
			break
		}
		delete(entries, victim.name)
	}
	r.snap.Store(&snapshot{entries: entries})
	return e
}

// Evict drops a model from residency (queries reload it from disk).
// It reports whether the model was resident.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load().entries
	if _, ok := old[name]; !ok {
		return false
	}
	entries := make(map[string]*modelEntry, len(old)-1)
	for k, v := range old {
		if k != name {
			entries[k] = v
		}
	}
	r.snap.Store(&snapshot{entries: entries})
	return true
}

// Query answers one yield query. The hot path — resident model with a
// compiled form — runs lock-free against the snapshot with pooled
// scratch; anything the compiled engine cannot answer re-runs on the
// interpreted path for the bit-identical result or error.
func (r *Registry) Query(ctx context.Context, req api.QueryRequest) (*api.QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := r.get(req.Model)
	if err != nil {
		return nil, err
	}
	if cm := e.compiled; cm != nil {
		sc := getScratch()
		if s, ok := cm.solve(req, sc); ok {
			resp := cm.response(e.name, &s)
			putScratch(sc)
			r.compiled.Add(1)
			return resp, nil
		}
		putScratch(sc)
	}
	r.interpreted.Add(1)
	res := solveQuery(e.model, req)
	if res.Error != "" {
		return nil, errors.New(res.Error)
	}
	return res.Response, nil
}

// QueryRendered answers one query and, when the compiled engine
// produced the answer, renders it straight into sc.buf from the model's
// pre-rendered JSON fragments — the zero-allocation HTTP path. body is
// nil when the caller must encode resp itself (interpreted fallback).
// The returned body aliases sc.buf: write it out before releasing sc.
func (r *Registry) QueryRendered(ctx context.Context, req api.QueryRequest, sc *queryScratch) (body []byte, resp *api.QueryResponse, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	e, err := r.get(req.Model)
	if err != nil {
		return nil, nil, err
	}
	if cm := e.compiled; cm != nil {
		if s, ok := cm.solve(req, sc); ok {
			r.compiled.Add(1)
			if b, ok := cm.appendJSON(sc.buf[:0], &s); ok {
				sc.buf = b
				return b, nil, nil
			}
			// A value JSON cannot represent (NaN/Inf): hand the struct to
			// the generic encoder for the stock error behaviour.
			return nil, cm.response(e.name, &s), nil
		}
	}
	r.interpreted.Add(1)
	res := solveQuery(e.model, req)
	if res.Error != "" {
		return nil, nil, errors.New(res.Error)
	}
	return nil, res.Response, nil
}

// QueryBatch answers a batch of queries, grouping them by model so each
// group's variation-table interpolations stage through
// table.Model1D.EvalBatch (segment-hint reuse across the whole group)
// and the remaining per-query arithmetic reuses one warm scratch.
// Results line up with reqs; per-query failures land in
// Results[i].Error, exactly as the per-query path would report them.
func (r *Registry) QueryBatch(ctx context.Context, reqs []api.QueryRequest) []api.QueryResult {
	out := make([]api.QueryResult, len(reqs))
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i] = api.QueryResult{Error: err.Error()}
		}
		return out
	}
	// Group request indexes by model name, preserving order within each
	// group.
	groups := make(map[string][]int, 2)
	order := make([]string, 0, 2)
	for i, q := range reqs {
		if _, ok := groups[q.Model]; !ok {
			order = append(order, q.Model)
		}
		groups[q.Model] = append(groups[q.Model], i)
	}
	sc := getScratch()
	defer putScratch(sc)
	for _, name := range order {
		idxs := groups[name]
		e, err := r.get(name)
		if err != nil {
			for _, i := range idxs {
				out[i] = api.QueryResult{Error: err.Error()}
			}
			continue
		}
		r.queryGroup(e, reqs, idxs, out, sc)
	}
	return out
}

// queryGroup answers one model's share of a batch. Spec bounds that
// parse and fall inside the variation tables' domains are evaluated in
// one EvalBatch per axis; each query then finishes through the compiled
// solveFrom. Everything else (parse errors, out-of-range bounds, models
// with no compiled form, infeasible spec pairs) re-runs the interpreted
// path for the bit-identical error.
func (r *Registry) queryGroup(e *modelEntry, reqs []api.QueryRequest, idxs []int, out []api.QueryResult, sc *queryScratch) {
	cm := e.compiled
	if cm == nil {
		for _, i := range idxs {
			r.interpreted.Add(1)
			out[i] = solveQuery(e.model, reqs[i])
		}
		return
	}
	sc.stage = sc.stage[:0]
	sc.sq = sc.sq[:0]
	sc.scales = sc.scales[:0]
	sc.bounds0 = sc.bounds0[:0]
	sc.bounds1 = sc.bounds1[:0]
	for _, i := range idxs {
		req := reqs[i]
		spec0, err0 := req.Specs[0].ToYield()
		spec1, err1 := req.Specs[1].ToYield()
		scale := req.GuardScale
		if scale == 0 {
			scale = 1
		}
		if err0 != nil || err1 != nil || scale <= 0 ||
			spec0.Bound < cm.delta0.lo || spec0.Bound > cm.delta0.hi ||
			spec1.Bound < cm.delta1.lo || spec1.Bound > cm.delta1.hi {
			r.interpreted.Add(1)
			out[i] = solveQuery(e.model, req)
			continue
		}
		sc.stage = append(sc.stage, i)
		sc.sq = append(sc.sq, solvedQuery{spec0: spec0, spec1: spec1})
		sc.scales = append(sc.scales, scale)
		sc.bounds0 = append(sc.bounds0, spec0.Bound)
		sc.bounds1 = append(sc.bounds1, spec1.Bound)
	}
	if len(sc.stage) == 0 {
		return
	}
	// The bounds were range-checked with Model1D.Eval's exact comparison,
	// so Error-mode extrapolation cannot fire and the batch cannot fail.
	sc.d0s, _ = cm.delta0Tbl.EvalBatch(sc.d0s[:0], sc.bounds0)
	sc.d1s, _ = cm.delta1Tbl.EvalBatch(sc.d1s[:0], sc.bounds1)
	for j, i := range sc.stage {
		s := &sc.sq[j]
		solved, ok := cm.solveFrom(s, sc.scales[j], sc.d0s[j], sc.d1s[j], sc)
		if !ok {
			r.interpreted.Add(1)
			out[i] = solveQuery(e.model, reqs[i])
			continue
		}
		r.compiled.Add(1)
		out[i] = api.QueryResult{Response: cm.response(e.name, &solved)}
	}
}

// QueryStats reports how many queries each engine has answered since
// start: the compiled hot path vs the interpreted reference path
// (errors, uncompiled models, edge cases).
func (r *Registry) QueryStats() (compiled, interpreted int64) {
	return r.compiled.Load(), r.interpreted.Load()
}

// solveQuery runs the Table 3 arithmetic against a model. It is the
// interpreted reference path: CompiledModel.solve must agree with it
// bit for bit on success, and every compiled-path refusal re-runs here
// so errors come from one place.
func solveQuery(m *core.Model, req api.QueryRequest) api.QueryResult {
	fail := func(err error) api.QueryResult { return api.QueryResult{Error: err.Error()} }
	spec0, err := req.Specs[0].ToYield()
	if err != nil {
		return fail(err)
	}
	spec1, err := req.Specs[1].ToYield()
	if err != nil {
		return fail(err)
	}
	scale := req.GuardScale
	if scale == 0 {
		scale = 1
	}
	d, err := m.DesignForScaled(spec0, spec1, scale)
	if err != nil {
		return fail(err)
	}
	resp := &api.QueryResponse{
		Model:      req.Model,
		Targets:    d.Target,
		DeltaPct:   d.DeltaPct,
		FrontPerf:  d.FrontPerf,
		CurveParam: d.CurveParam,
		Params:     make([]api.Param, len(d.Params)),
	}
	for i, v := range d.Params {
		p := api.Param{Name: m.ParamNames[i], Value: v}
		if i < len(m.ParamUnits) {
			p.Unit = m.ParamUnits[i]
		}
		resp.Params[i] = p
	}
	// Model-only yield estimate at the selected front point: the
	// variation tables give Δ% at the design's nominal performance.
	var deltas [2]float64
	for k := 0; k < 2; k++ {
		dp, derr := m.VariationAt(k, d.FrontPerf[k])
		if derr != nil {
			// The front point can sit at the very edge of the k=1 axis;
			// fall back to the spec-bound interpolation already computed.
			dp = d.DeltaPct[k]
		}
		deltas[k] = dp
	}
	resp.PredictedYield, err = yield.PredictJoint(
		[]yield.Spec{spec0, spec1}, d.FrontPerf[:], deltas[:])
	if err != nil {
		return fail(err)
	}
	return api.QueryResult{Response: resp}
}

// List enumerates resident models plus (when a models directory exists)
// every loadable model on disk, sorted by name.
func (r *Registry) List() []api.ModelInfo {
	names := map[string]bool{}
	for name := range r.snap.Load().entries {
		names[name] = true
	}
	if r.dir != "" {
		if dirs, err := os.ReadDir(r.dir); err == nil {
			for _, d := range dirs {
				if d.IsDir() && !names[d.Name()] {
					names[d.Name()] = false
				}
			}
		}
	}
	out := make([]api.ModelInfo, 0, len(names))
	for name := range names {
		info, err := r.Info(name)
		if err != nil {
			continue
		}
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info describes one model. A non-resident model is read from disk
// without installing it, so listing the registry never evicts models
// that live queries are using.
func (r *Registry) Info(name string) (*api.ModelInfo, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	e, resident := r.snap.Load().entries[name]
	var m *core.Model
	if resident {
		m = e.model
	} else {
		if r.dir == "" {
			return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
		}
		if _, err := os.Stat(r.modelDir(name)); err != nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
		}
		var err error
		if m, err = core.LoadModel(r.modelDir(name)); err != nil {
			return nil, fmt.Errorf("server: loading model %q: %w", name, err)
		}
	}
	lo, hi := m.Domain()
	lo1, hi1 := m.Delta[1].Domain()
	return &api.ModelInfo{
		Name:           name,
		ObjectiveNames: m.ObjectiveNames,
		ParamNames:     m.ParamNames,
		Points:         len(m.Points),
		Domain:         [2]float64{lo, hi},
		Domain1:        [2]float64{lo1, hi1},
		Resident:       resident,
	}, nil
}

// Resident reports how many models are currently loaded.
func (r *Registry) Resident() int {
	return len(r.snap.Load().entries)
}
