package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
	"analogyield/internal/yield"
)

// ErrUnknownModel reports a query against a name that is neither
// resident nor present in the models directory.
var ErrUnknownModel = errors.New("server: unknown model")

// maxQueryBatch bounds how many queued queries one lock acquisition
// answers; pendingQueries bounds each model's queue depth before
// senders block.
const (
	maxQueryBatch  = 64
	pendingQueries = 256
)

// Registry is the LRU-bounded model store behind the query path. Models
// load lazily from a directory of core.Model artefacts (one
// subdirectory per model, as written by Model.Save) or are installed
// directly by finished flow jobs; at most cap models stay resident, the
// least recently queried evicted first (a later Get reloads them from
// disk).
//
// Each resident model owns a read-write lock and a single batcher
// goroutine: queries funnel through a queue and are answered in batches
// under one RLock acquisition, so a model swap (Install over a hot
// name) waits for at most one batch rather than one lock hand-off per
// query, and lock traffic stays O(batches) under load.
type Registry struct {
	dir string
	cap int

	mu      sync.Mutex
	entries map[string]*modelEntry
	lru     *list.List // front = most recently used; values are *modelEntry

	// batches and batched count lock acquisitions and the queries they
	// served, so the batching win (batched/batches ≥ 1) is observable.
	batches atomic.Int64
	batched atomic.Int64
}

// modelEntry is one resident model.
type modelEntry struct {
	name string
	elem *list.Element

	mu    sync.RWMutex // write-held while the model is swapped
	model *core.Model

	queue chan batchReq
	stop  chan struct{}
}

// batchReq is one queued query awaiting its batch.
type batchReq struct {
	req  api.QueryRequest
	resp chan api.QueryResult
}

// NewRegistry creates a registry over an optional models directory
// (empty = memory-only) keeping at most cap models resident (cap <= 0
// means 8).
func NewRegistry(dir string, cap int) *Registry {
	if cap <= 0 {
		cap = 8
	}
	return &Registry{
		dir:     dir,
		cap:     cap,
		entries: make(map[string]*modelEntry),
		lru:     list.New(),
	}
}

// Close stops every resident model's batcher.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		close(e.stop)
	}
	r.entries = make(map[string]*modelEntry)
	r.lru.Init()
}

// modelDir returns the on-disk directory of a named model.
func (r *Registry) modelDir(name string) string {
	return filepath.Join(r.dir, name)
}

// validName rejects names that would escape the models directory.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("server: empty model name")
	}
	if name != filepath.Base(name) || name == "." || name == ".." {
		return fmt.Errorf("server: bad model name %q", name)
	}
	return nil
}

// get returns the resident entry, loading (and possibly evicting) as
// needed.
func (r *Registry) get(name string) (*modelEntry, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if e, ok := r.entries[name]; ok {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		return e, nil
	}
	r.mu.Unlock()

	// Load outside the registry lock: disk reads must not stall queries
	// against other (resident) models.
	if r.dir == "" {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if _, err := os.Stat(r.modelDir(name)); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	m, err := core.LoadModel(r.modelDir(name))
	if err != nil {
		return nil, fmt.Errorf("server: loading model %q: %w", name, err)
	}
	return r.install(name, m), nil
}

// Install makes a model resident under name, replacing any previous
// model of that name (the swap waits for in-flight query batches).
// When the registry has a models directory the artefacts are saved
// there first, so an evicted model can be reloaded.
func (r *Registry) Install(name string, m *core.Model) error {
	if err := validName(name); err != nil {
		return err
	}
	if r.dir != "" {
		if err := m.Save(r.modelDir(name)); err != nil {
			return fmt.Errorf("server: saving model %q: %w", name, err)
		}
	}
	r.install(name, m)
	return nil
}

// install inserts or swaps the entry and applies the LRU bound.
func (r *Registry) install(name string, m *core.Model) *modelEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		// Another goroutine may have loaded it concurrently, or a job is
		// replacing a served model: swap under the write lock. Batch
		// readers never take r.mu, so waiting here cannot deadlock.
		r.lru.MoveToFront(e.elem)
		e.mu.Lock()
		e.model = m
		e.mu.Unlock()
		return e
	}
	e := &modelEntry{
		name:  name,
		model: m,
		queue: make(chan batchReq, pendingQueries),
		stop:  make(chan struct{}),
	}
	e.elem = r.lru.PushFront(e)
	r.entries[name] = e
	go r.batchLoop(e)
	for r.lru.Len() > r.cap {
		oldest := r.lru.Back()
		ev := oldest.Value.(*modelEntry)
		r.lru.Remove(oldest)
		delete(r.entries, ev.name)
		close(ev.stop) // queued queries on the evicted entry still drain
	}
	return e
}

// Evict drops a model from residency (queries reload it from disk).
// It reports whether the model was resident.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return false
	}
	r.lru.Remove(e.elem)
	delete(r.entries, name)
	close(e.stop)
	return true
}

// batchLoop answers a model's queries in batches: one RLock acquisition
// serves up to maxQueryBatch queued requests. After stop, remaining
// queued requests drain so no sender is left waiting.
func (r *Registry) batchLoop(e *modelEntry) {
	for {
		var first batchReq
		select {
		case <-e.stop:
			for {
				select {
				case req := <-e.queue:
					r.answerBatch(e, []batchReq{req})
				default:
					return
				}
			}
		case first = <-e.queue:
		}
		batch := []batchReq{first}
	fill:
		for len(batch) < maxQueryBatch {
			select {
			case req := <-e.queue:
				batch = append(batch, req)
			default:
				break fill
			}
		}
		r.answerBatch(e, batch)
	}
}

// answerBatch evaluates a batch under one read-lock acquisition.
func (r *Registry) answerBatch(e *modelEntry, batch []batchReq) {
	r.batches.Add(1)
	r.batched.Add(int64(len(batch)))
	e.mu.RLock()
	m := e.model
	for _, b := range batch {
		b.resp <- solveQuery(m, b.req)
	}
	e.mu.RUnlock()
}

// Query answers one yield query, waiting its turn in the model's batch
// queue. Cancelling ctx abandons the wait (an already-queued query is
// still answered into a buffered channel, so the batcher never blocks
// on a departed caller).
func (r *Registry) Query(ctx context.Context, req api.QueryRequest) (*api.QueryResponse, error) {
	e, err := r.get(req.Model)
	if err != nil {
		return nil, err
	}
	b := batchReq{req: req, resp: make(chan api.QueryResult, 1)}
	select {
	case e.queue <- b:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case res := <-b.resp:
		if res.Error != "" {
			return nil, errors.New(res.Error)
		}
		return res.Response, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// BatchStats reports the cumulative (lock acquisitions, queries served)
// of the batching layer.
func (r *Registry) BatchStats() (batches, queries int64) {
	return r.batches.Load(), r.batched.Load()
}

// solveQuery runs the Table 3 arithmetic against a model.
func solveQuery(m *core.Model, req api.QueryRequest) api.QueryResult {
	fail := func(err error) api.QueryResult { return api.QueryResult{Error: err.Error()} }
	spec0, err := req.Specs[0].ToYield()
	if err != nil {
		return fail(err)
	}
	spec1, err := req.Specs[1].ToYield()
	if err != nil {
		return fail(err)
	}
	scale := req.GuardScale
	if scale == 0 {
		scale = 1
	}
	d, err := m.DesignForScaled(spec0, spec1, scale)
	if err != nil {
		return fail(err)
	}
	resp := &api.QueryResponse{
		Model:      req.Model,
		Targets:    d.Target,
		DeltaPct:   d.DeltaPct,
		FrontPerf:  d.FrontPerf,
		CurveParam: d.CurveParam,
		Params:     make([]api.Param, len(d.Params)),
	}
	for i, v := range d.Params {
		p := api.Param{Name: m.ParamNames[i], Value: v}
		if i < len(m.ParamUnits) {
			p.Unit = m.ParamUnits[i]
		}
		resp.Params[i] = p
	}
	// Model-only yield estimate at the selected front point: the
	// variation tables give Δ% at the design's nominal performance.
	var deltas [2]float64
	for k := 0; k < 2; k++ {
		dp, derr := m.VariationAt(k, d.FrontPerf[k])
		if derr != nil {
			// The front point can sit at the very edge of the k=1 axis;
			// fall back to the spec-bound interpolation already computed.
			dp = d.DeltaPct[k]
		}
		deltas[k] = dp
	}
	resp.PredictedYield, err = yield.PredictJoint(
		[]yield.Spec{spec0, spec1}, d.FrontPerf[:], deltas[:])
	if err != nil {
		return fail(err)
	}
	return api.QueryResult{Response: resp}
}

// List enumerates resident models plus (when a models directory exists)
// every loadable model on disk, sorted by name.
func (r *Registry) List() []api.ModelInfo {
	names := map[string]bool{}
	r.mu.Lock()
	for name := range r.entries {
		names[name] = true
	}
	r.mu.Unlock()
	if r.dir != "" {
		if dirs, err := os.ReadDir(r.dir); err == nil {
			for _, d := range dirs {
				if d.IsDir() && !names[d.Name()] {
					names[d.Name()] = false
				}
			}
		}
	}
	out := make([]api.ModelInfo, 0, len(names))
	for name := range names {
		info, err := r.Info(name)
		if err != nil {
			continue
		}
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info describes one model. A non-resident model is read from disk
// without installing it, so listing the registry never evicts models
// that live queries are using.
func (r *Registry) Info(name string) (*api.ModelInfo, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	e, resident := r.entries[name]
	r.mu.Unlock()
	var m *core.Model
	if resident {
		e.mu.RLock()
		m = e.model
		e.mu.RUnlock()
	} else {
		if r.dir == "" {
			return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
		}
		if _, err := os.Stat(r.modelDir(name)); err != nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
		}
		var err error
		if m, err = core.LoadModel(r.modelDir(name)); err != nil {
			return nil, fmt.Errorf("server: loading model %q: %w", name, err)
		}
	}
	lo, hi := m.Domain()
	lo1, hi1 := m.Delta[1].Domain()
	return &api.ModelInfo{
		Name:           name,
		ObjectiveNames: m.ObjectiveNames,
		ParamNames:     m.ParamNames,
		Points:         len(m.Points),
		Domain:         [2]float64{lo, hi},
		Domain1:        [2]float64{lo1, hi1},
		Resident:       resident,
	}, nil
}

// Resident reports how many models are currently loaded.
func (r *Registry) Resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
