package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/process"
	"analogyield/internal/server/api"
	"analogyield/internal/store"
)

// ProblemFactory builds a fresh CircuitProblem for one flow job.
// Factories run once per submission, so problems need not be reusable
// across jobs.
type ProblemFactory func() core.CircuitProblem

// ProcessFactory builds the statistical process model for one job.
type ProcessFactory func() *process.Process

// eventBuffer bounds the per-job event replay window: SSE subscribers
// replay at most the last eventBuffer events (the generation stream of
// a paper-budget run would otherwise grow without bound).
const eventBuffer = 4096

// ErrUnknownJob reports a status/events request for an id never issued.
var ErrUnknownJob = errors.New("server: unknown job")

// ErrQueueFull reports a submission against a saturated job queue.
var ErrQueueFull = errors.New("server: job queue full")

// job is one flow submission and its full lifecycle state.
type job struct {
	id     string
	tenant string // effective namespace (never "")
	cfg    core.FlowConfig

	mu       sync.Mutex
	status   api.JobStatus
	events   []api.Event // tail of the stream; seqs are contiguous
	firstSeq int         // seq preceding events[0]: events[i].Seq == firstSeq+1+i
	nextSeq  int
	notify   map[chan struct{}]struct{}
	cancel   context.CancelFunc

	done chan struct{} // closed when the job reaches a terminal state
}

// JobManager runs submitted flows on a bounded worker pool. Jobs queue
// FIFO; each runs core.RunFlow with a checkpoint under the data
// directory, buffers its Observer events for SSE subscribers, and
// installs the finished model into the registry under the submitting
// tenant. Checkpoints are mirrored into the artefact store as they are
// written (and hydrated back at submission), so any replica sharing the
// store can resume a job another replica checkpointed — the local data
// directory is only scratch. Shutdown cancels running flows —
// cooperatively, so each writes a resumable checkpoint — and waits for
// the workers to drain.
type JobManager struct {
	dataDir  string
	registry *Registry
	st       store.Store // the registry's backing store (checkpoint durability)
	problems map[string]ProblemFactory
	procs    map[string]ProcessFactory
	metrics  *core.Metrics
	log      *slog.Logger
	// defaultMCStrategy applies when a FlowRequest leaves MCStrategy
	// empty (Config.DefaultMCStrategy; empty = naive).
	defaultMCStrategy string

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	queue   chan *job

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing
	seq   int
}

// NewJobManager starts workers goroutines consuming a job queue of the
// given depth (<=0 selects 1 worker / depth 64).
func NewJobManager(dataDir string, workers, queueDepth int, reg *Registry,
	problems map[string]ProblemFactory, procs map[string]ProcessFactory,
	metrics *core.Metrics, log *slog.Logger) *JobManager {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if log == nil {
		log = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		dataDir:  dataDir,
		registry: reg,
		st:       reg.Store(),
		problems: problems,
		procs:    procs,
		metrics:  metrics,
		log:      log,
		baseCtx:  ctx,
		stop:     cancel,
		queue:    make(chan *job, queueDepth),
		jobs:     make(map[string]*job),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Shutdown cancels running flows (each checkpoints and stops at its
// next generation / MC-point boundary) and waits for the pool to drain,
// or for ctx to expire.
func (m *JobManager) Shutdown(ctx context.Context) error {
	m.stop()
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: job pool did not drain: %w", ctx.Err())
	}
}

// Submit validates and enqueues a flow request; the embedded TenantRef
// names the tenant whose catalog receives the finished model.
func (m *JobManager) Submit(req api.FlowRequest) (*api.JobStatus, error) {
	tenant := req.TenantOrDefault()
	pf, ok := m.problems[req.Problem]
	if !ok {
		return nil, fmt.Errorf("server: unknown problem %q", req.Problem)
	}
	procName := req.Process
	if procName == "" {
		procName = "c35"
	}
	prf, ok := m.procs[procName]
	if !ok {
		return nil, fmt.Errorf("server: unknown process %q", procName)
	}
	strategy := req.MCStrategy
	if strategy == "" {
		strategy = m.defaultMCStrategy
	}
	cfg := core.FlowConfig{
		Problem:         pf(),
		Proc:            prf(),
		PopSize:         req.PopSize,
		Generations:     req.Generations,
		MCSamples:       req.MCSamples,
		Seed:            req.Seed,
		Workers:         req.Workers,
		CacheSize:       req.CacheSize,
		Model:           core.ModelOptions{MaxTablePoints: req.MaxTablePoints},
		CheckpointEvery: req.CheckpointEvery,
		MCStrategy:      strategy,
		Metrics:         m.metrics,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("job-%06d", m.seq)
	modelName := req.Model
	if modelName == "" {
		modelName = id
	}
	if err := validRef(tenant, modelName); err != nil {
		m.seq--
		m.mu.Unlock()
		return nil, err
	}
	// The checkpoint is keyed by (tenant, model name), not job id, so
	// cancelling a job (or losing it to a shutdown) and resubmitting the
	// same request resumes from the saved state instead of restarting.
	cfg.Checkpoint = filepath.Join(m.dataDir, "checkpoints", tenant, modelName+".ckpt")
	j := &job{
		id:     id,
		tenant: tenant,
		cfg:    cfg,
		status: api.JobStatus{
			ID:         id,
			State:      api.JobQueued,
			Model:      modelName,
			Tenant:     wireTenant(tenant),
			Request:    req,
			Created:    time.Now(),
			Checkpoint: cfg.Checkpoint,
		},
		notify: make(map[chan struct{}]struct{}),
		done:   make(chan struct{}),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()

	// Before the job can run: if the shared store holds a checkpoint for
	// this (tenant, model) and the local scratch file is missing, this
	// replica adopts the other's progress.
	m.hydrateCheckpoint(j)

	select {
	case m.queue <- j:
	default:
		m.mu.Lock()
		delete(m.jobs, id)
		m.order = m.order[:len(m.order)-1]
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	j.emit(api.Event{Type: api.EventJobQueued})
	st := j.snapshot()
	return &st, nil
}

// worker consumes the queue until shutdown.
func (m *JobManager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one job to a terminal state.
func (m *JobManager) run(j *job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.status.State != api.JobQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.status.State = api.JobRunning
	j.status.Started = time.Now()
	j.cancel = cancel
	cfg := j.cfg
	j.mu.Unlock()

	j.emit(api.Event{Type: api.EventJobStarted})
	m.log.Info("job started", "job", j.id, "problem", cfg.Problem.ObjectiveNames(), "model", j.status.Model)

	cfg.Obs = core.ObserverFunc(func(e core.Event) {
		j.observe(e)
		// Mirror every checkpoint into the artefact store as soon as the
		// flow writes it, so a replica sharing the store can resume this
		// job even if this process (and its data directory) is lost.
		if cs, ok := e.(core.CheckpointSaved); ok {
			m.persistCheckpoint(j, cs.Path)
		}
	})
	res, err := core.RunFlow(ctx, cfg)

	final := api.Event{Type: api.EventJobDone}
	j.mu.Lock()
	if res != nil {
		j.status.Evaluations = res.Evaluations
		j.status.MCSimulations = res.MCSimulations
		j.status.ParetoPoints = len(res.Points)
		j.status.DroppedPoints = res.DroppedPoints
		j.status.Resumed = res.Resumed
	}
	switch {
	case err == nil:
		j.status.State = api.JobSucceeded
	case errors.Is(err, context.Canceled):
		j.status.State = api.JobCancelled
	default:
		j.status.State = api.JobFailed
		j.status.Error = err.Error()
	}
	j.status.Finished = time.Now()
	state := j.status.State
	modelName := j.status.Model
	j.mu.Unlock()

	if state == api.JobSucceeded {
		if version, ierr := m.registry.Install(j.tenant, modelName, res.Model); ierr != nil {
			j.mu.Lock()
			j.status.State = api.JobFailed
			j.status.Error = ierr.Error()
			state = api.JobFailed
			err = ierr
			j.mu.Unlock()
		} else {
			j.mu.Lock()
			j.status.Request.Version = version
			j.mu.Unlock()
			// RunFlow already removed the local checkpoint; retire the
			// store mirror too so the finished job cannot be "resumed".
			if derr := m.st.Delete(store.Key{Tenant: j.tenant, Kind: store.KindCheckpoint, Name: modelName}); derr != nil && !errors.Is(derr, store.ErrNotFound) {
				m.log.Warn("checkpoint cleanup failed", "job", j.id, "err", derr)
			}
		}
	}

	final.State = state
	if err != nil {
		final.Error = err.Error()
	}
	j.emit(final)
	close(j.done)
	m.log.Info("job finished", "job", j.id, "state", state, "err", err)
}

// persistCheckpoint mirrors a freshly written checkpoint file into the
// artefact store under (tenant, checkpoints, model). Failures are
// logged, never fatal: the local file still supports same-process
// resume, durability just degrades to single-replica.
func (m *JobManager) persistCheckpoint(j *job, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		m.log.Warn("checkpoint read-back failed", "job", j.id, "path", path, "err", err)
		return
	}
	if _, err := m.st.Put(j.tenant, store.KindCheckpoint, j.status.Model, data); err != nil {
		m.log.Warn("checkpoint persist failed", "job", j.id, "err", err)
	}
}

// hydrateCheckpoint materialises the job's local checkpoint file from
// the artefact store when the local file is missing, so a fresh replica
// (or one with a wiped data directory) resumes work that another
// process checkpointed into the shared store. A corrupt store copy is
// skipped — the job then starts from scratch rather than failing.
func (m *JobManager) hydrateCheckpoint(j *job) {
	if _, err := os.Stat(j.cfg.Checkpoint); err == nil {
		return // local scratch wins: it is at least as fresh as its mirror
	}
	data, _, err := m.st.Get(store.Key{Tenant: j.tenant, Kind: store.KindCheckpoint, Name: j.status.Model})
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			m.log.Warn("checkpoint hydrate failed", "job", j.id, "err", err)
		}
		return
	}
	if err := os.MkdirAll(filepath.Dir(j.cfg.Checkpoint), 0o755); err != nil {
		m.log.Warn("checkpoint hydrate failed", "job", j.id, "err", err)
		return
	}
	if err := os.WriteFile(j.cfg.Checkpoint, data, 0o644); err != nil {
		m.log.Warn("checkpoint hydrate failed", "job", j.id, "err", err)
		return
	}
	m.log.Info("checkpoint hydrated from store", "job", j.id, "tenant", j.tenant, "model", j.status.Model)
}

// observe translates one core event into the job's wire stream and
// progress counters.
func (j *job) observe(e core.Event) {
	var ev api.Event
	switch t := e.(type) {
	case core.StageStart:
		ev = api.Event{Type: api.EventStageStart, Stage: string(t.Stage), Total: t.Total}
	case core.StageEnd:
		ev = api.Event{Type: api.EventStageEnd, Stage: string(t.Stage), ElapsedSecs: t.Elapsed.Seconds()}
	case core.GenerationDone:
		ev = api.Event{Type: api.EventGeneration, Gen: t.Gen, Generations: t.Generations,
			Evals: t.Evals, TotalEvals: t.TotalEvals, BestFitness: t.BestFitness}
		j.mu.Lock()
		j.status.Evaluations = t.Evals
		j.mu.Unlock()
	case core.MCPointDone:
		perf, delta := t.Perf, t.DeltaPct
		ev = api.Event{Type: api.EventMCPoint, Index: t.Index, Total: t.Total,
			Perf: &perf, DeltaPct: &delta, Failures: t.Failures, Resumed: t.Resumed}
		j.mu.Lock()
		j.status.ParetoPoints++
		j.mu.Unlock()
	case core.MCStageStats:
		ev = api.Event{Type: api.EventMCStats, Strategy: t.Strategy, Points: t.Points,
			Samples: t.Samples, FullEvals: t.FullEvals, Predicted: t.Predicted, MeanESS: t.MeanESS}
	case core.PointDropped:
		ev = api.Event{Type: api.EventPointDropped, Index: t.Index}
		if t.Err != nil {
			ev.Error = t.Err.Error()
		}
		j.mu.Lock()
		j.status.DroppedPoints++
		j.mu.Unlock()
	case core.CheckpointSaved:
		ev = api.Event{Type: api.EventCheckpointSaved, Checkpoint: t.Path, MCDone: t.MCDone}
	case core.FlowResumed:
		ev = api.Event{Type: api.EventFlowResumed, Checkpoint: t.Path, MCDone: t.MCDone, Resumed: true}
		j.mu.Lock()
		j.status.Resumed = true
		j.mu.Unlock()
	default:
		return
	}
	j.emit(ev)
}

// emit appends an event to the replay buffer and wakes subscribers.
func (j *job) emit(ev api.Event) {
	j.mu.Lock()
	j.nextSeq++
	ev.Seq = j.nextSeq
	ev.Time = time.Now()
	j.events = append(j.events, ev)
	if len(j.events) > eventBuffer {
		drop := len(j.events) - eventBuffer
		j.events = j.events[drop:]
		j.firstSeq += drop
	}
	for ch := range j.notify {
		select {
		case ch <- struct{}{}:
		default: // already signalled
		}
	}
	j.mu.Unlock()
}

// subscribe registers a wake-up channel; the caller must unsubscribe.
func (j *job) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.notify[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.notify, ch)
	j.mu.Unlock()
}

// eventsSince copies the buffered events with Seq > seq.
func (j *job) eventsSince(seq int) []api.Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < j.firstSeq {
		seq = j.firstSeq
	}
	idx := seq - j.firstSeq // events[idx].Seq == seq+1
	if idx >= len(j.events) {
		return nil
	}
	out := make([]api.Event, len(j.events)-idx)
	copy(out, j.events[idx:])
	return out
}

// snapshot copies the current status.
func (j *job) snapshot() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// get looks a job up by id within a tenant. A job belonging to another
// tenant reports ErrUnknownJob — job ids must not leak across
// namespaces.
func (m *JobManager) get(tenant, id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.tenant != tenant {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Status reports one job.
func (m *JobManager) Status(tenant, id string) (*api.JobStatus, error) {
	j, err := m.get(tenant, id)
	if err != nil {
		return nil, err
	}
	st := j.snapshot()
	return &st, nil
}

// List reports a tenant's jobs in submission order.
func (m *JobManager) List(tenant string) []api.JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]api.JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, err := m.get(tenant, id); err == nil {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// Cancel stops a queued or running job. Cancelling a running flow is
// cooperative: the job transitions to cancelled once the flow has
// checkpointed and unwound. Cancelling a terminal job is a no-op.
func (m *JobManager) Cancel(tenant, id string) (*api.JobStatus, error) {
	j, err := m.get(tenant, id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	switch j.status.State {
	case api.JobQueued:
		// The worker skips jobs that left the queued state.
		j.status.State = api.JobCancelled
		j.status.Finished = time.Now()
		j.mu.Unlock()
		j.emit(api.Event{Type: api.EventJobDone, State: api.JobCancelled})
		close(j.done)
	case api.JobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
	default:
		j.mu.Unlock()
	}
	st := j.snapshot()
	return &st, nil
}

// Done exposes the job's terminal-state channel (tests and the SSE
// handler wait on it).
func (m *JobManager) Done(tenant, id string) (<-chan struct{}, error) {
	j, err := m.get(tenant, id)
	if err != nil {
		return nil, err
	}
	return j.done, nil
}
