package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/process"
	"analogyield/internal/server/api"
	"analogyield/internal/store"
)

// ProblemFactory builds a fresh CircuitProblem for one flow job.
// Factories run once per submission, so problems need not be reusable
// across jobs.
type ProblemFactory func() core.CircuitProblem

// ProcessFactory builds the statistical process model for one job.
type ProcessFactory func() *process.Process

// eventBuffer bounds the per-job event replay window: SSE subscribers
// replay at most the last eventBuffer events (the generation stream of
// a paper-budget run would otherwise grow without bound).
const eventBuffer = 4096

// ErrUnknownJob reports a status/events request for an id never issued.
var ErrUnknownJob = errors.New("server: unknown job")

// ErrQueueFull reports a submission against a saturated job queue.
var ErrQueueFull = errors.New("server: job queue full")

// job is one flow submission and its full lifecycle state.
type job struct {
	id     string
	tenant string // effective namespace (never "")
	cfg    core.FlowConfig

	mu       sync.Mutex
	status   api.JobStatus
	events   []api.Event // tail of the stream; seqs are contiguous
	firstSeq int         // seq preceding events[0]: events[i].Seq == firstSeq+1+i
	nextSeq  int
	notify   map[chan struct{}]struct{}
	cancel   context.CancelFunc
	// lease is the job's ownership lease in cluster mode (Token 0 =
	// single-node, no lease). The heartbeat goroutine refreshes it; the
	// checkpoint mirror reads it for fenced writes.
	lease store.Lease

	done chan struct{} // closed when the job reaches a terminal state
}

// leaseHandle returns the job's current lease, reporting whether one is
// held.
func (j *job) leaseHandle() (store.Lease, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lease, j.lease.Token != 0
}

func (j *job) setLease(l store.Lease) {
	j.mu.Lock()
	j.lease = l
	j.mu.Unlock()
}

// JobManager runs submitted flows on a bounded worker pool. Jobs queue
// FIFO; each runs core.RunFlow with a checkpoint under the data
// directory, buffers its Observer events for SSE subscribers, and
// installs the finished model into the registry under the submitting
// tenant. Checkpoints are mirrored into the artefact store as they are
// written (and hydrated back at submission), so any replica sharing the
// store can resume a job another replica checkpointed — the local data
// directory is only scratch. Shutdown cancels running flows —
// cooperatively, so each writes a resumable checkpoint — and waits for
// the workers to drain.
type JobManager struct {
	dataDir  string
	registry *Registry
	st       store.Store // the registry's backing store (checkpoint durability)
	problems map[string]ProblemFactory
	procs    map[string]ProcessFactory
	metrics  *core.Metrics
	log      *slog.Logger
	// defaultMCStrategy applies when a FlowRequest leaves MCStrategy
	// empty (Config.DefaultMCStrategy; empty = naive).
	defaultMCStrategy string

	// cluster, when non-nil, makes this manager one replica of a fleet
	// sharing the artefact store: jobs are claimed through store leases,
	// checkpoints are written fenced, and a takeover scanner adopts jobs
	// whose owner stopped heartbeating. See EnableCluster.
	cluster *clusterState
	// crashForTest, when set, makes terminal-state and shutdown handling
	// skip lease release and job-record cleanup — simulating a replica
	// whose process died without unwinding (the chaos test's SIGKILL
	// stand-in; the CI cluster-smoke script kills a real process).
	crashForTest atomic.Bool

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	queue   chan *job

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing
	seq   int
}

// NewJobManager starts workers goroutines consuming a job queue of the
// given depth (<=0 selects 1 worker / depth 64).
func NewJobManager(dataDir string, workers, queueDepth int, reg *Registry,
	problems map[string]ProblemFactory, procs map[string]ProcessFactory,
	metrics *core.Metrics, log *slog.Logger) *JobManager {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if log == nil {
		log = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		dataDir:  dataDir,
		registry: reg,
		st:       reg.Store(),
		problems: problems,
		procs:    procs,
		metrics:  metrics,
		log:      log,
		baseCtx:  ctx,
		stop:     cancel,
		queue:    make(chan *job, queueDepth),
		jobs:     make(map[string]*job),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// clusterState carries a replica's cluster-mode identity and wiring.
type clusterState struct {
	id     string
	peers  []string
	ttl    time.Duration
	client *http.Client
}

// EnableCluster turns the manager into one replica of a fleet sharing
// the artefact store: id names this replica (the lease owner string),
// peers lists the other replicas' base URLs (empty = lease coordination
// without MC distribution), and ttl is the job-lease heartbeat window
// (0 → 15s). Must be called before the first submission; it also
// starts the takeover scanner that adopts jobs whose owner's lease
// lapsed.
func (m *JobManager) EnableCluster(id string, peers []string, ttl time.Duration) {
	if ttl <= 0 {
		ttl = defaultLeaseTTL
	}
	m.cluster = &clusterState{
		id:    id,
		peers: peers,
		ttl:   ttl,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			MaxConnsPerHost:     256,
			IdleConnTimeout:     90 * time.Second,
			DisableCompression:  true,
		}},
	}
	m.metrics.SetReplica(id)
	m.wg.Add(1)
	go m.takeoverLoop()
}

// takeoverLoop periodically scans the shared store for job records
// whose lease can be acquired — jobs whose owner crashed (TTL lapsed)
// or drained (released on shutdown) — and adopts them.
func (m *JobManager) takeoverLoop() {
	defer m.wg.Done()
	interval := m.cluster.ttl / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-t.C:
			m.scanTakeovers()
		}
	}
}

func (m *JobManager) scanTakeovers() {
	tenants, err := m.st.Tenants()
	if err != nil {
		m.log.Warn("takeover scan failed", "err", err)
		return
	}
	for _, tenant := range tenants {
		infos, err := m.st.List(tenant, store.KindJob)
		if err != nil {
			continue
		}
		for _, info := range infos {
			m.tryAdopt(tenant, info.Name)
		}
	}
}

// tryAdopt claims one orphaned job record. Acquisition failure is the
// common case (the owner is alive and heartbeating — including this
// replica itself) and not an error.
func (m *JobManager) tryAdopt(tenant, name string) {
	if m.baseCtx.Err() != nil {
		return
	}
	l, err := m.st.AcquireLease(tenant, name, m.cluster.id, m.cluster.ttl)
	if err != nil {
		return
	}
	data, _, err := m.st.Get(store.Key{Tenant: tenant, Kind: store.KindJob, Name: name})
	if err != nil {
		// The record vanished between List and the claim (the owner
		// finished and cleaned up); nothing to adopt.
		m.st.ReleaseLease(l)
		return
	}
	var req api.FlowRequest
	if err := json.Unmarshal(data, &req); err != nil {
		m.log.Warn("corrupt job record", "tenant", tenant, "model", name, "err", err)
		m.st.ReleaseLease(l)
		return
	}
	req.Tenant, req.Model = wireTenant(tenant), name
	m.metrics.IncLeaseTakeovers()
	m.metrics.IncLeaseAcquired()
	m.metrics.AddLeasesHeld(1)
	m.log.Info("adopting orphaned job", "tenant", tenant, "model", name)
	// submit owns the lease from here: every one of its failure paths
	// releases it.
	if _, err := m.submit(req, &l); err != nil {
		m.log.Warn("job adoption failed", "tenant", tenant, "model", name, "err", err)
	}
}

// Shutdown cancels running flows (each checkpoints and stops at its
// next generation / MC-point boundary) and waits for the pool to drain,
// or for ctx to expire.
func (m *JobManager) Shutdown(ctx context.Context) error {
	m.stop()
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		m.releaseHeldLeases()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: job pool did not drain: %w", ctx.Err())
	}
}

// releaseHeldLeases frees every lease still held after the drain —
// jobs that were cancelled mid-run settle their own lease, so this
// catches the ones that never ran (still queued at shutdown). Records
// stay in the store: a peer replica's scanner adopts them immediately
// instead of waiting out the TTL.
func (m *JobManager) releaseHeldLeases() {
	if m.cluster == nil || m.crashForTest.Load() {
		return
	}
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		m.settleLease(j, true)
	}
}

// Submit validates and enqueues a flow request; the embedded TenantRef
// names the tenant whose catalog receives the finished model.
func (m *JobManager) Submit(req api.FlowRequest) (*api.JobStatus, error) {
	return m.submit(req, nil)
}

// submit is the shared submission path. adopted, when non-nil, is a
// lease already claimed by the takeover scanner — the job reuses it
// instead of acquiring its own.
func (m *JobManager) submit(req api.FlowRequest, adopted *store.Lease) (*api.JobStatus, error) {
	tenant := req.TenantOrDefault()
	// fail unwinds an adopted lease on the early validation paths — the
	// scanner handed us ownership, so failing to start the job must not
	// strand the lease until its TTL.
	fail := func(err error) (*api.JobStatus, error) {
		if adopted != nil {
			m.st.ReleaseLease(*adopted)
			m.metrics.AddLeasesHeld(-1)
		}
		return nil, err
	}
	pf, ok := m.problems[req.Problem]
	if !ok {
		return fail(fmt.Errorf("server: unknown problem %q", req.Problem))
	}
	procName := req.Process
	if procName == "" {
		procName = "c35"
	}
	prf, ok := m.procs[procName]
	if !ok {
		return fail(fmt.Errorf("server: unknown process %q", procName))
	}
	strategy := req.MCStrategy
	if strategy == "" {
		strategy = m.defaultMCStrategy
	}
	cfg := core.FlowConfig{
		Problem:         pf(),
		Proc:            prf(),
		PopSize:         req.PopSize,
		Generations:     req.Generations,
		MCSamples:       req.MCSamples,
		Seed:            req.Seed,
		Workers:         req.Workers,
		CacheSize:       req.CacheSize,
		Model:           core.ModelOptions{MaxTablePoints: req.MaxTablePoints},
		CheckpointEvery: req.CheckpointEvery,
		MCStrategy:      strategy,
		Metrics:         m.metrics,
		MCDispatcher:    m.newShardDispatcher(tenant, req.Problem, procName),
	}
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}

	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("job-%06d", m.seq)
	modelName := req.Model
	if modelName == "" {
		modelName = id
	}
	if err := validRef(tenant, modelName); err != nil {
		m.seq--
		m.mu.Unlock()
		return fail(err)
	}
	// The checkpoint is keyed by (tenant, model name), not job id, so
	// cancelling a job (or losing it to a shutdown) and resubmitting the
	// same request resumes from the saved state instead of restarting.
	cfg.Checkpoint = filepath.Join(m.dataDir, "checkpoints", tenant, modelName+".ckpt")
	j := &job{
		id:     id,
		tenant: tenant,
		cfg:    cfg,
		status: api.JobStatus{
			ID:         id,
			State:      api.JobQueued,
			Model:      modelName,
			Tenant:     wireTenant(tenant),
			Request:    req,
			Created:    time.Now(),
			Checkpoint: cfg.Checkpoint,
		},
		notify: make(map[chan struct{}]struct{}),
		done:   make(chan struct{}),
	}
	m.mu.Unlock()

	// Cluster mode: claim the job before it can run. The lease makes
	// (tenant, model) exclusive across the fleet — a second replica
	// submitting the same model is refused with ErrLeaseHeld — and the
	// job record in the shared store is what a peer adopts if this
	// replica dies or drains.
	if m.cluster != nil {
		if adopted != nil {
			j.lease = *adopted
		} else {
			l, err := m.st.AcquireLease(tenant, modelName, m.cluster.id, m.cluster.ttl)
			if err != nil {
				return nil, fmt.Errorf("server: job %s/%s: %w", tenant, modelName, err)
			}
			j.lease = l
			m.metrics.IncLeaseAcquired()
			m.metrics.AddLeasesHeld(1)
		}
		rec := req
		rec.Tenant, rec.Model = wireTenant(tenant), modelName
		recJSON, err := json.Marshal(rec)
		if err == nil {
			_, err = m.st.PutIfLeased(j.lease, store.KindJob, modelName, recJSON)
		}
		if err != nil {
			m.settleLease(j, false)
			return nil, fmt.Errorf("server: job record write: %w", err)
		}
	}

	m.mu.Lock()
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()

	// Before the job can run: if the shared store holds a checkpoint for
	// this (tenant, model) and the local scratch file is missing, this
	// replica adopts the other's progress.
	m.hydrateCheckpoint(j)

	select {
	case m.queue <- j:
	default:
		m.mu.Lock()
		delete(m.jobs, id)
		m.order = m.order[:len(m.order)-1]
		m.mu.Unlock()
		m.settleLease(j, false)
		return nil, ErrQueueFull
	}
	j.emit(api.Event{Type: api.EventJobQueued})
	st := j.snapshot()
	return &st, nil
}

// worker consumes the queue until shutdown.
func (m *JobManager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one job to a terminal state.
func (m *JobManager) run(j *job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.status.State != api.JobQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.status.State = api.JobRunning
	j.status.Started = time.Now()
	j.cancel = cancel
	cfg := j.cfg
	j.mu.Unlock()

	j.emit(api.Event{Type: api.EventJobStarted})
	m.log.Info("job started", "job", j.id, "problem", cfg.Problem.ObjectiveNames(), "model", j.status.Model)

	// Cluster mode: heartbeat the job's lease while the flow runs. A
	// renew failure means another replica fenced us out (we stalled past
	// the TTL and it adopted the job) — the flow is cancelled so this
	// zombie stops burning CPU on work it can no longer commit. The
	// heartbeat is stopped AND joined before the lease is settled below,
	// so a late renew can never resurrect a lease the settle released.
	stopHB := func() {}
	if _, ok := j.leaseHandle(); ok {
		hbStop, hbDone := make(chan struct{}), make(chan struct{})
		go m.heartbeat(j, cancel, hbStop, hbDone)
		stopHB = func() {
			close(hbStop)
			<-hbDone
		}
	}

	cfg.Obs = core.ObserverFunc(func(e core.Event) {
		j.observe(e)
		// Mirror every checkpoint into the artefact store as soon as the
		// flow writes it, so a replica sharing the store can resume this
		// job even if this process (and its data directory) is lost.
		if cs, ok := e.(core.CheckpointSaved); ok {
			m.persistCheckpoint(j, cs.Path)
		}
	})
	res, err := core.RunFlow(ctx, cfg)
	stopHB()

	final := api.Event{Type: api.EventJobDone}
	j.mu.Lock()
	if res != nil {
		j.status.Evaluations = res.Evaluations
		j.status.MCSimulations = res.MCSimulations
		j.status.ParetoPoints = len(res.Points)
		j.status.DroppedPoints = res.DroppedPoints
		j.status.Resumed = res.Resumed
	}
	switch {
	case err == nil:
		j.status.State = api.JobSucceeded
	case errors.Is(err, context.Canceled):
		j.status.State = api.JobCancelled
	default:
		j.status.State = api.JobFailed
		j.status.Error = err.Error()
	}
	j.status.Finished = time.Now()
	state := j.status.State
	modelName := j.status.Model
	j.mu.Unlock()

	if state == api.JobSucceeded {
		if version, ierr := m.registry.Install(j.tenant, modelName, res.Model); ierr != nil {
			j.mu.Lock()
			j.status.State = api.JobFailed
			j.status.Error = ierr.Error()
			state = api.JobFailed
			err = ierr
			j.mu.Unlock()
		} else {
			j.mu.Lock()
			j.status.Request.Version = version
			j.mu.Unlock()
			// RunFlow already removed the local checkpoint; retire the
			// store mirror too so the finished job cannot be "resumed".
			if derr := m.st.Delete(store.Key{Tenant: j.tenant, Kind: store.KindCheckpoint, Name: modelName}); derr != nil && !errors.Is(derr, store.ErrNotFound) {
				m.log.Warn("checkpoint cleanup failed", "job", j.id, "err", derr)
			}
		}
	}

	// Settle the lease. A drain-cancellation (shutdown, not user intent)
	// keeps the job record so a peer adopts the job immediately; every
	// other terminal state retires the record before the release, so a
	// finished job can never be "adopted".
	drain := state == api.JobCancelled && m.baseCtx.Err() != nil
	m.settleLease(j, drain)

	final.State = state
	if err != nil {
		final.Error = err.Error()
	}
	j.emit(final)
	close(j.done)
	m.log.Info("job finished", "job", j.id, "state", state, "err", err)
}

// heartbeat renews the job's lease at a third of its TTL until stop
// closes; a failed renew cancels the flow (zombie fencing). done is
// closed on exit so the caller can join before settling the lease.
func (m *JobManager) heartbeat(j *job, cancelFlow context.CancelFunc, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ttl := m.cluster.ttl
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			l, ok := j.leaseHandle()
			if !ok {
				return
			}
			nl, err := m.st.RenewLease(l, ttl)
			if err != nil {
				m.metrics.IncLeaseRejections()
				m.log.Warn("job lease lost; cancelling flow", "job", j.id, "err", err)
				cancelFlow()
				return
			}
			j.setLease(nl)
		}
	}
}

// settleLease settles a job's lease at its terminal state. keepRecord
// leaves the job record in the store for a peer to adopt (the drain
// path); otherwise the record is deleted before the release, so the
// released lease never exposes a claimable record of a finished job.
// A simulated crash (crashForTest) leaves both behind, exactly as a
// SIGKILLed process would.
func (m *JobManager) settleLease(j *job, keepRecord bool) {
	l, ok := j.leaseHandle()
	if !ok {
		return
	}
	if m.crashForTest.Load() {
		return
	}
	if !keepRecord {
		if err := m.st.Delete(store.Key{Tenant: j.tenant, Kind: store.KindJob, Name: j.status.Model}); err != nil && !errors.Is(err, store.ErrNotFound) {
			m.log.Warn("job record cleanup failed", "job", j.id, "err", err)
		}
	}
	if err := m.st.ReleaseLease(l); err != nil && !errors.Is(err, store.ErrLeaseLost) {
		m.log.Warn("lease release failed", "job", j.id, "err", err)
	}
	m.metrics.AddLeasesHeld(-1)
	j.setLease(store.Lease{})
}

// persistCheckpoint mirrors a freshly written checkpoint file into the
// artefact store under (tenant, checkpoints, model). Failures are
// logged, never fatal: the local file still supports same-process
// resume, durability just degrades to single-replica.
func (m *JobManager) persistCheckpoint(j *job, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		m.log.Warn("checkpoint read-back failed", "job", j.id, "path", path, "err", err)
		return
	}
	// In cluster mode the mirror write is fenced: a zombie replica whose
	// lease was taken over is refused, so it can never clobber the
	// successor's (strictly newer) checkpoint.
	if l, ok := j.leaseHandle(); ok {
		if _, err := m.st.PutIfLeased(l, store.KindCheckpoint, j.status.Model, data); err != nil {
			m.metrics.IncLeaseRejections()
			m.log.Warn("fenced checkpoint write refused", "job", j.id, "err", err)
		}
		return
	}
	if _, err := m.st.Put(j.tenant, store.KindCheckpoint, j.status.Model, data); err != nil {
		m.log.Warn("checkpoint persist failed", "job", j.id, "err", err)
	}
}

// hydrateCheckpoint materialises the job's local checkpoint file from
// the artefact store when the local file is missing, so a fresh replica
// (or one with a wiped data directory) resumes work that another
// process checkpointed into the shared store. A corrupt store copy is
// skipped — the job then starts from scratch rather than failing.
func (m *JobManager) hydrateCheckpoint(j *job) {
	if _, err := os.Stat(j.cfg.Checkpoint); err == nil {
		return // local scratch wins: it is at least as fresh as its mirror
	}
	data, _, err := m.st.Get(store.Key{Tenant: j.tenant, Kind: store.KindCheckpoint, Name: j.status.Model})
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			m.log.Warn("checkpoint hydrate failed", "job", j.id, "err", err)
		}
		return
	}
	if err := os.MkdirAll(filepath.Dir(j.cfg.Checkpoint), 0o755); err != nil {
		m.log.Warn("checkpoint hydrate failed", "job", j.id, "err", err)
		return
	}
	if err := os.WriteFile(j.cfg.Checkpoint, data, 0o644); err != nil {
		m.log.Warn("checkpoint hydrate failed", "job", j.id, "err", err)
		return
	}
	m.log.Info("checkpoint hydrated from store", "job", j.id, "tenant", j.tenant, "model", j.status.Model)
}

// observe translates one core event into the job's wire stream and
// progress counters.
func (j *job) observe(e core.Event) {
	var ev api.Event
	switch t := e.(type) {
	case core.StageStart:
		ev = api.Event{Type: api.EventStageStart, Stage: string(t.Stage), Total: t.Total}
	case core.StageEnd:
		ev = api.Event{Type: api.EventStageEnd, Stage: string(t.Stage), ElapsedSecs: t.Elapsed.Seconds()}
	case core.GenerationDone:
		ev = api.Event{Type: api.EventGeneration, Gen: t.Gen, Generations: t.Generations,
			Evals: t.Evals, TotalEvals: t.TotalEvals, BestFitness: t.BestFitness}
		j.mu.Lock()
		j.status.Evaluations = t.Evals
		j.mu.Unlock()
	case core.MCPointDone:
		perf, delta := t.Perf, t.DeltaPct
		ev = api.Event{Type: api.EventMCPoint, Index: t.Index, Total: t.Total,
			Perf: &perf, DeltaPct: &delta, Failures: t.Failures, Resumed: t.Resumed}
		j.mu.Lock()
		j.status.ParetoPoints++
		j.mu.Unlock()
	case core.MCStageStats:
		ev = api.Event{Type: api.EventMCStats, Strategy: t.Strategy, Points: t.Points,
			Samples: t.Samples, FullEvals: t.FullEvals, Predicted: t.Predicted, MeanESS: t.MeanESS}
	case core.PointDropped:
		ev = api.Event{Type: api.EventPointDropped, Index: t.Index}
		if t.Err != nil {
			ev.Error = t.Err.Error()
		}
		j.mu.Lock()
		j.status.DroppedPoints++
		j.mu.Unlock()
	case core.CheckpointSaved:
		ev = api.Event{Type: api.EventCheckpointSaved, Checkpoint: t.Path, MCDone: t.MCDone}
	case core.FlowResumed:
		ev = api.Event{Type: api.EventFlowResumed, Checkpoint: t.Path, MCDone: t.MCDone, Resumed: true}
		j.mu.Lock()
		j.status.Resumed = true
		j.mu.Unlock()
	default:
		return
	}
	j.emit(ev)
}

// emit appends an event to the replay buffer and wakes subscribers.
func (j *job) emit(ev api.Event) {
	j.mu.Lock()
	j.nextSeq++
	ev.Seq = j.nextSeq
	ev.Time = time.Now()
	j.events = append(j.events, ev)
	if len(j.events) > eventBuffer {
		drop := len(j.events) - eventBuffer
		j.events = j.events[drop:]
		j.firstSeq += drop
	}
	for ch := range j.notify {
		select {
		case ch <- struct{}{}:
		default: // already signalled
		}
	}
	j.mu.Unlock()
}

// subscribe registers a wake-up channel; the caller must unsubscribe.
func (j *job) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.notify[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.notify, ch)
	j.mu.Unlock()
}

// eventsSince copies the buffered events with Seq > seq.
func (j *job) eventsSince(seq int) []api.Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < j.firstSeq {
		seq = j.firstSeq
	}
	idx := seq - j.firstSeq // events[idx].Seq == seq+1
	if idx >= len(j.events) {
		return nil
	}
	out := make([]api.Event, len(j.events)-idx)
	copy(out, j.events[idx:])
	return out
}

// snapshot copies the current status.
func (j *job) snapshot() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// get looks a job up by id within a tenant. A job belonging to another
// tenant reports ErrUnknownJob — job ids must not leak across
// namespaces.
func (m *JobManager) get(tenant, id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.tenant != tenant {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Status reports one job.
func (m *JobManager) Status(tenant, id string) (*api.JobStatus, error) {
	j, err := m.get(tenant, id)
	if err != nil {
		return nil, err
	}
	st := j.snapshot()
	return &st, nil
}

// List reports a tenant's jobs in submission order.
func (m *JobManager) List(tenant string) []api.JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]api.JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, err := m.get(tenant, id); err == nil {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// Cancel stops a queued or running job. Cancelling a running flow is
// cooperative: the job transitions to cancelled once the flow has
// checkpointed and unwound. Cancelling a terminal job is a no-op.
func (m *JobManager) Cancel(tenant, id string) (*api.JobStatus, error) {
	j, err := m.get(tenant, id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	switch j.status.State {
	case api.JobQueued:
		// The worker skips jobs that left the queued state.
		j.status.State = api.JobCancelled
		j.status.Finished = time.Now()
		j.mu.Unlock()
		m.settleLease(j, false)
		j.emit(api.Event{Type: api.EventJobDone, State: api.JobCancelled})
		close(j.done)
	case api.JobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
	default:
		j.mu.Unlock()
	}
	st := j.snapshot()
	return &st, nil
}

// Done exposes the job's terminal-state channel (tests and the SSE
// handler wait on it).
func (m *JobManager) Done(tenant, id string) (<-chan struct{}, error) {
	j, err := m.get(tenant, id)
	if err != nil {
		return nil, err
	}
	return j.done, nil
}
