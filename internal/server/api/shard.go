// Wire types of the internal replica-to-replica Monte Carlo shard
// route (POST /internal/mc/shard). Float vectors travel as base64 of
// their little-endian IEEE-754 bytes, not as JSON numbers: the cluster
// correctness contract is that a shard evaluated remotely is
// bit-identical to one evaluated locally, and a decimal round trip
// would quietly break that for NaN payloads and signalling values
// while wasting bytes on full-precision floats.
package api

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
)

// ShardRequest asks a peer replica to evaluate Monte Carlo samples
// [Lo, Hi) of one Pareto point. Problem and Process name entries in the
// peer's registries (every replica in a cluster registers the same
// set); Genes is the point's genome (EncodeFloats); sample i must be
// evaluated at process sample (Seed, i) — the same derivation the
// owner would use locally, which is what makes the shard placement
// invisible in the results.
type ShardRequest struct {
	Tenant  string `json:"tenant,omitempty"`
	Problem string `json:"problem"`
	Process string `json:"process"`
	Genes   string `json:"genes"`
	Seed    int64  `json:"seed"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
}

// ShardResponse returns Hi-Lo rows: Rows[k] holds the encoded metrics
// of sample Lo+k, or "" for a sample whose evaluation failed (the
// owner counts it failed exactly as a local failure).
type ShardResponse struct {
	Rows []string `json:"rows"`
}

// EncodeFloats renders a float vector as base64 little-endian bytes.
func EncodeFloats(v []float64) string {
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodeFloats reverses EncodeFloats, bit for bit.
func DecodeFloats(s string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("api: bad float encoding: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("api: float payload length %d not a multiple of 8", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
