// Package api defines the JSON wire types of the ayd service: yield
// queries against built behavioural models, flow-job submission and
// status, and the typed event stream rendered over SSE. The server
// (internal/server) and the Go client (internal/server/client) share
// these types so the two sides cannot drift.
package api

import (
	"fmt"
	"time"

	"analogyield/internal/yield"
)

// DefaultTenant is the namespace addressed by requests that carry no
// tenant (and by the pre-tenancy /v1 routes). It matches
// store.DefaultTenant; the server asserts the two stay equal.
const DefaultTenant = "default"

// TenantRef addresses a model in the multi-tenant catalog. Tenant ""
// means DefaultTenant, so every pre-tenancy request body keeps its
// meaning; Version "" means the latest installed version of the name.
// Version strings are content addresses (sha256 of the model's
// canonical payload), so a pinned version can never silently change.
type TenantRef struct {
	Tenant  string `json:"tenant,omitempty"`
	Model   string `json:"model,omitempty"`
	Version string `json:"model_version,omitempty"`
}

// TenantOrDefault resolves the wire tenant to its effective namespace.
func (r TenantRef) TenantOrDefault() string {
	if r.Tenant == "" {
		return DefaultTenant
	}
	return r.Tenant
}

// Spec is one performance requirement in wire form; Sense is ">=" or
// "<=" (default ">=", matching the paper's gain/PM bounds).
type Spec struct {
	Name  string  `json:"name"`
	Sense string  `json:"sense,omitempty"`
	Bound float64 `json:"bound"`
}

// ToYield converts the wire spec to the arithmetic type.
func (s Spec) ToYield() (yield.Spec, error) {
	out := yield.Spec{Name: s.Name, Bound: s.Bound}
	switch s.Sense {
	case "", ">=", "min", "at_least":
		out.Sense = yield.AtLeast
	case "<=", "max", "at_most":
		out.Sense = yield.AtMost
	default:
		return out, fmt.Errorf("api: bad sense %q (want \">=\" or \"<=\")", s.Sense)
	}
	return out, nil
}

// QueryRequest asks a model for a yield-targeted design: the paper's
// Table 3 flow (guard-band each spec by the interpolated Δ%, project
// onto the front, interpolate the designable parameters). The embedded
// TenantRef names the model (absent tenant ⇒ "default", absent version
// ⇒ latest). GuardScale widens (>1) or narrows (<1) the ±3σ guard
// band; 0 means 1.
type QueryRequest struct {
	TenantRef
	Specs      [2]Spec `json:"specs"`
	GuardScale float64 `json:"guard_scale,omitempty"`
}

// Param is one interpolated designable parameter.
type Param struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

// QueryResponse is a solved yield query. Tenant is present only for
// non-default tenants, so default-tenant responses are byte-identical
// to the pre-tenancy wire format.
type QueryResponse struct {
	Model  string `json:"model"`
	Tenant string `json:"tenant,omitempty"`
	// Targets are the guard-banded performance targets (Table 3).
	Targets [2]float64 `json:"targets"`
	// DeltaPct is the interpolated variation Δ% at each spec bound.
	DeltaPct [2]float64 `json:"delta_pct"`
	// FrontPerf is the nominal performance of the selected front point.
	FrontPerf [2]float64 `json:"front_perf"`
	// Params are the interpolated designable parameters.
	Params []Param `json:"params"`
	// PredictedYield is the model-only yield estimate at the selected
	// design: the joint normal tail probability of both specs given the
	// front point's nominal performance and Δ% (no simulation).
	PredictedYield float64 `json:"predicted_yield"`
	// CurveParam is the design's position along the front (0..1).
	CurveParam float64 `json:"curve_param"`
}

// BatchQueryRequest carries several queries answered in one round trip
// (they are also coalesced into shared model-lock acquisitions
// server-side).
type BatchQueryRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchQueryResponse answers a batch; Results[i] answers Queries[i].
// Exactly one of Results[i].Response / Results[i].Error is set.
type BatchQueryResponse struct {
	Results []QueryResult `json:"results"`
}

// QueryResult is one batched query outcome.
type QueryResult struct {
	Response *QueryResponse `json:"response,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// ModelInfo describes one catalog entry. The embedded TenantRef
// carries the tenant and the content-addressed version of the latest
// installed artefact; Name duplicates TenantRef.Model for pre-tenancy
// readers.
type ModelInfo struct {
	TenantRef
	Name           string     `json:"name"`
	ObjectiveNames []string   `json:"objectives"`
	ParamNames     []string   `json:"params"`
	Points         int        `json:"points"`
	Domain         [2]float64 `json:"domain"`  // modelled range of objective 0
	Domain1        [2]float64 `json:"domain1"` // modelled range of objective 1
	Resident       bool       `json:"resident"`
}

// ModelPoint is one Pareto point of an uploaded model artefact
// (mirrors core.ParetoPoint in wire form).
type ModelPoint struct {
	Perf     [2]float64 `json:"perf"`
	DeltaPct [2]float64 `json:"delta_pct"`
	Params   []float64  `json:"params"`
}

// InstallModelRequest uploads a finished behavioural model — the
// paper's reusable artefact — directly into a tenant's catalog
// (POST /v1/t/{tenant}/models), without running a flow: the server
// rebuilds the tables from the points, persists the canonical payload
// to the store, and makes the model queryable. MaxTablePoints 0 keeps
// every point as a knot.
type InstallModelRequest struct {
	Name           string       `json:"name"`
	ObjectiveNames []string     `json:"objectives"`
	ParamNames     []string     `json:"params"`
	ParamUnits     []string     `json:"units,omitempty"`
	MaxTablePoints int          `json:"max_table_points,omitempty"`
	Points         []ModelPoint `json:"points"`
}

// FlowRequest submits a model-building flow job. Problem and Process
// name entries in the server's registries (the ayd binary registers
// "ota" and "c35"); zero budgets select the paper defaults, so small
// values must be set explicitly for quick jobs. The embedded TenantRef
// names the catalog entry the finished model is installed under
// (absent tenant ⇒ "default", absent model ⇒ the job id); Version is
// output-only and ignored on submission.
type FlowRequest struct {
	TenantRef
	Problem         string `json:"problem"`
	Process         string `json:"process,omitempty"`
	PopSize         int    `json:"pop_size,omitempty"`
	Generations     int    `json:"generations,omitempty"`
	MCSamples       int    `json:"mc_samples,omitempty"`
	Seed            int64  `json:"seed,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	CacheSize       int    `json:"cache_size,omitempty"`
	MaxTablePoints  int    `json:"max_table_points,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	// MCStrategy selects the Monte Carlo estimator: "naive" (default),
	// "is", "surrogate" or "is+surrogate". Empty defers to the server's
	// configured default. Non-naive jobs emit "mc_stats" events.
	MCStrategy string `json:"mc_strategy,omitempty"`
}

// Job states. A job moves queued → running → one of the three terminal
// states; cancelled jobs keep a resumable checkpoint.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobSucceeded = "succeeded"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobStatus reports a flow job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Model string `json:"model"`
	// Tenant is the namespace the job's model and checkpoint live in
	// (empty on old records ⇒ "default").
	Tenant   string      `json:"tenant,omitempty"`
	Request  FlowRequest `json:"request"`
	Created  time.Time   `json:"created"`
	Started  time.Time   `json:"started"`
	Finished time.Time   `json:"finished"`
	Error    string      `json:"error,omitempty"`
	// Resumed reports that the run recovered prior work from a
	// checkpoint (a resubmission after cancellation or shutdown).
	Resumed bool `json:"resumed,omitempty"`
	// Progress counters, updated while running.
	Evaluations   int `json:"evaluations"`
	MCSimulations int `json:"mc_simulations"`
	ParetoPoints  int `json:"pareto_points"`
	DroppedPoints int `json:"dropped_points,omitempty"`
	// Checkpoint is the job's resume file path on the server.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// Terminal reports whether the state is final.
func Terminal(state string) bool {
	switch state {
	case JobSucceeded, JobFailed, JobCancelled:
		return true
	}
	return false
}

// Event is the wire form of the flow's typed event stream
// (core.Observer events flattened into one tagged struct), plus the
// job-lifecycle markers "job_queued", "job_started" and "job_done" the
// server adds. Seq numbers are per-job, contiguous from 1, so a client
// resuming an SSE stream can deduplicate replayed events.
type Event struct {
	Seq  int       `json:"seq"`
	Type string    `json:"type"`
	Time time.Time `json:"time"`

	Stage       string      `json:"stage,omitempty"`        // stage_start, stage_end
	Total       int         `json:"total,omitempty"`        // stage_start, mc_point
	ElapsedSecs float64     `json:"elapsed_s,omitempty"`    // stage_end
	Gen         int         `json:"gen,omitempty"`          // generation
	Generations int         `json:"generations,omitempty"`  // generation
	Evals       int         `json:"evals,omitempty"`        // generation
	TotalEvals  int         `json:"total_evals,omitempty"`  // generation
	BestFitness float64     `json:"best_fitness,omitempty"` // generation
	Index       int         `json:"index,omitempty"`        // mc_point, point_dropped
	Perf        *[2]float64 `json:"perf,omitempty"`         // mc_point
	DeltaPct    *[2]float64 `json:"delta_pct,omitempty"`    // mc_point
	Failures    int         `json:"failures,omitempty"`     // mc_point
	Resumed     bool        `json:"resumed,omitempty"`      // mc_point, flow_resumed
	Error       string      `json:"error,omitempty"`        // point_dropped, job_done
	Checkpoint  string      `json:"checkpoint,omitempty"`   // checkpoint_saved, flow_resumed
	MCDone      int         `json:"mc_done,omitempty"`      // checkpoint_saved, flow_resumed
	State       string      `json:"state,omitempty"`        // job_done
	Strategy    string      `json:"strategy,omitempty"`     // mc_stats
	Points      int         `json:"points,omitempty"`       // mc_stats
	Samples     int         `json:"samples,omitempty"`      // mc_stats
	FullEvals   int         `json:"full_evals,omitempty"`   // mc_stats
	Predicted   int         `json:"predicted,omitempty"`    // mc_stats
	MeanESS     float64     `json:"mean_ess,omitempty"`     // mc_stats
}

// Event type tags.
const (
	EventStageStart      = "stage_start"
	EventStageEnd        = "stage_end"
	EventGeneration      = "generation"
	EventMCPoint         = "mc_point"
	EventMCStats         = "mc_stats"
	EventPointDropped    = "point_dropped"
	EventCheckpointSaved = "checkpoint_saved"
	EventFlowResumed     = "flow_resumed"
	EventJobQueued       = "job_queued"
	EventJobStarted      = "job_started"
	EventJobDone         = "job_done"
)

// Error is the wire form of a request failure. RequestID carries the
// X-Request-ID of the failed request when the middleware produced the
// error (and is filled in from the response header by the Go client),
// so a user-reported failure can be matched to the server's log line.
type Error struct {
	Status    int    `json:"status"`
	Message   string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// Error satisfies the error interface so clients can return it
// directly.
func (e *Error) Error() string {
	return fmt.Sprintf("ayd: %s (HTTP %d)", e.Message, e.Status)
}
