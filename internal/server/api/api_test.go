package api

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestQueryRequestGoldenDecode pins the pre-tenancy request wire format:
// a body written before the tenant dimension existed must decode to the
// same query, addressed at the default tenant's latest version.
func TestQueryRequestGoldenDecode(t *testing.T) {
	golden := `{
		"model": "ota-demo",
		"specs": [
			{"name": "gain_db", "sense": ">=", "bound": 51.5},
			{"name": "pm_deg", "bound": 78}
		],
		"guard_scale": 1.25
	}`
	var req QueryRequest
	if err := json.Unmarshal([]byte(golden), &req); err != nil {
		t.Fatal(err)
	}
	want := QueryRequest{
		TenantRef: TenantRef{Model: "ota-demo"},
		Specs: [2]Spec{
			{Name: "gain_db", Sense: ">=", Bound: 51.5},
			{Name: "pm_deg", Bound: 78},
		},
		GuardScale: 1.25,
	}
	if !reflect.DeepEqual(req, want) {
		t.Errorf("decoded %+v, want %+v", req, want)
	}
	if got := req.TenantOrDefault(); got != DefaultTenant {
		t.Errorf("absent tenant resolves to %q, want %q", got, DefaultTenant)
	}
	if req.Version != "" {
		t.Errorf("absent model_version decoded as %q", req.Version)
	}
}

// TestQueryRequestTenantDecode covers the new explicit fields.
func TestQueryRequestTenantDecode(t *testing.T) {
	v := "8a4c0e7d00000000000000000000000000000000000000000000000000000000"
	body := `{"tenant":"acme","model":"ota","model_version":"` + v + `","specs":[{"name":"g","bound":1},{"name":"p","bound":2}]}`
	var req QueryRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	if req.Tenant != "acme" || req.Model != "ota" || req.Version != v {
		t.Errorf("decoded ref %+v", req.TenantRef)
	}
	if got := req.TenantOrDefault(); got != "acme" {
		t.Errorf("TenantOrDefault = %q", got)
	}
}

// TestFlowRequestGoldenDecode pins the pre-tenancy flow submission
// format.
func TestFlowRequestGoldenDecode(t *testing.T) {
	golden := `{
		"problem": "ota",
		"model": "my-model",
		"pop_size": 30,
		"generations": 15,
		"mc_samples": 40,
		"seed": 7,
		"mc_strategy": "is"
	}`
	var req FlowRequest
	if err := json.Unmarshal([]byte(golden), &req); err != nil {
		t.Fatal(err)
	}
	want := FlowRequest{
		TenantRef:   TenantRef{Model: "my-model"},
		Problem:     "ota",
		PopSize:     30,
		Generations: 15,
		MCSamples:   40,
		Seed:        7,
		MCStrategy:  "is",
	}
	if !reflect.DeepEqual(req, want) {
		t.Errorf("decoded %+v, want %+v", req, want)
	}
	if req.TenantOrDefault() != DefaultTenant {
		t.Errorf("absent tenant != default")
	}
}

// TestQueryRequestEncodeOmitsEmptyTenant: requests a zero-config client
// emits must stay in the pre-tenancy shape (no tenant/model_version
// keys), so old servers accept them.
func TestQueryRequestEncodeOmitsEmptyTenant(t *testing.T) {
	b, err := json.Marshal(QueryRequest{TenantRef: TenantRef{Model: "m"}, Specs: [2]Spec{{Name: "a", Bound: 1}, {Name: "b", Bound: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tenant", "model_version"} {
		if _, ok := m[key]; ok {
			t.Errorf("empty %s serialized: %s", key, b)
		}
	}
	if m["model"] != "m" {
		t.Errorf("model field missing: %s", b)
	}
}

// TestModelInfoRoundTrip: the listing entry carries both the legacy
// "name" key and the TenantRef fields.
func TestModelInfoRoundTrip(t *testing.T) {
	in := ModelInfo{
		TenantRef: TenantRef{Tenant: "acme", Model: "ota", Version: "ab"},
		Name:      "ota",
		Points:    12,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["name"] != "ota" || m["model"] != "ota" || m["tenant"] != "acme" || m["model_version"] != "ab" {
		t.Errorf("ModelInfo JSON = %s", b)
	}
	var out ModelInfo
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed: %+v", out)
	}
}

// TestQueryResponseDefaultTenantShape: the response for a
// default-tenant model must not grow a tenant key (byte-compat with
// the pre-tenancy format is asserted end-to-end in the server tests;
// this pins the struct tags).
func TestQueryResponseDefaultTenantShape(t *testing.T) {
	b, err := json.Marshal(QueryResponse{Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["tenant"]; ok {
		t.Errorf("empty tenant serialized: %s", b)
	}
}
