package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/process"
	"analogyield/internal/server/api"
	"analogyield/internal/store"
)

// newTestJM builds a JobManager over a fresh registry. problems maps
// names to factories; the process registry always carries "c35".
func newTestJM(t *testing.T, workers, depth int, problems map[string]ProblemFactory) (*JobManager, *Registry) {
	t.Helper()
	reg := NewRegistry(store.OpenDisk(t.TempDir()), 8)
	m := NewJobManager(t.TempDir(), workers, depth, reg,
		problems, map[string]ProcessFactory{"c35": process.C35},
		&core.Metrics{}, quietLog())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		reg.Close()
	})
	return m, reg
}

func synthFactory() map[string]ProblemFactory {
	return map[string]ProblemFactory{
		"synth": func() core.CircuitProblem { return synthProblem{} },
	}
}

func smallFlowReq(model string) api.FlowRequest {
	return api.FlowRequest{
		TenantRef:   api.TenantRef{Model: model},
		Problem:     "synth",
		PopSize:     24,
		Generations: 10,
		MCSamples:   20,
		Seed:        1,
	}
}

func TestJobLifecycleSucceeds(t *testing.T) {
	m, reg := newTestJM(t, 2, 8, synthFactory())

	st, err := m.Submit(smallFlowReq("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobQueued && st.State != api.JobRunning {
		t.Fatalf("initial state %q", st.State)
	}
	if st.Checkpoint == "" {
		t.Error("no checkpoint path assigned")
	}
	waitDone(t, m, st.ID, 30*time.Second)

	got, err := m.Status(api.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobSucceeded {
		t.Fatalf("state = %q (%s), want succeeded", got.State, got.Error)
	}
	if got.Evaluations != 24*10 {
		t.Errorf("Evaluations = %d, want 240", got.Evaluations)
	}
	if got.ParetoPoints < 4 {
		t.Errorf("ParetoPoints = %d, want ≥ 4", got.ParetoPoints)
	}
	if got.Finished.Before(got.Started) || got.Started.Before(got.Created) {
		t.Error("timestamps out of order")
	}

	// The finished model is installed and queryable.
	if _, err := reg.Info(api.DefaultTenant, "m1"); err != nil {
		t.Fatalf("model not installed: %v", err)
	}

	// The event stream is contiguous and carries the full lifecycle.
	j, err := m.get(api.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	evs := j.eventsSince(0)
	seen := map[string]bool{}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has Seq %d, want contiguous from 1", i, ev.Seq)
		}
		seen[ev.Type] = true
	}
	for _, want := range []string{
		api.EventJobQueued, api.EventJobStarted, api.EventStageStart,
		api.EventGeneration, api.EventCheckpointSaved, api.EventMCPoint,
		api.EventStageEnd, api.EventJobDone,
	} {
		if !seen[want] {
			t.Errorf("no %q event in stream", want)
		}
	}
	last := evs[len(evs)-1]
	if last.Type != api.EventJobDone || last.State != api.JobSucceeded {
		t.Errorf("last event = %+v, want job_done/succeeded", last)
	}
}

func TestJobCancelQueuedAndRunning(t *testing.T) {
	bp := newBlockingProblem()
	m, _ := newTestJM(t, 1, 8, map[string]ProblemFactory{
		"synth": func() core.CircuitProblem { return bp },
	})

	a, err := m.Submit(smallFlowReq("job-a"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-bp.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job A never started evaluating")
	}

	// B sits behind A on the single worker: cancelling it is immediate.
	b, err := m.Submit(smallFlowReq("job-b"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(api.DefaultTenant, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCancelled {
		t.Fatalf("queued cancel: state %q", st.State)
	}
	waitDone(t, m, b.ID, time.Second)

	// A is mid-evaluation: cancellation is cooperative, taking effect at
	// the next generation boundary once evaluations are released.
	if _, err := m.Cancel(api.DefaultTenant, a.ID); err != nil {
		t.Fatal(err)
	}
	close(bp.release)
	waitDone(t, m, a.ID, 30*time.Second)
	st, err = m.Status(api.DefaultTenant, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCancelled {
		t.Fatalf("running cancel: state %q (%s)", st.State, st.Error)
	}

	// Cancelling a terminal job is a no-op.
	st, err = m.Cancel(api.DefaultTenant, a.ID)
	if err != nil || st.State != api.JobCancelled {
		t.Errorf("terminal cancel: state %q, err %v", st.State, err)
	}

	// List preserves submission order.
	list := m.List(api.DefaultTenant)
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Errorf("List out of order: %+v", list)
	}
}

func TestJobQueueFull(t *testing.T) {
	bp := newBlockingProblem()
	m, _ := newTestJM(t, 1, 1, map[string]ProblemFactory{
		"synth": func() core.CircuitProblem { return bp },
	})

	a, err := m.Submit(smallFlowReq("qa"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-bp.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job A never started evaluating")
	}
	b, err := m.Submit(smallFlowReq("qb"))
	if err != nil {
		t.Fatalf("second submission should queue: %v", err)
	}
	if _, err := m.Submit(smallFlowReq("qc")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: err = %v, want ErrQueueFull", err)
	}

	close(bp.release)
	waitDone(t, m, a.ID, 30*time.Second)
	waitDone(t, m, b.ID, 30*time.Second)
	for _, id := range []string{a.ID, b.ID} {
		st, serr := m.Status(api.DefaultTenant, id)
		if serr != nil || st.State != api.JobSucceeded {
			t.Errorf("%s: state %q err %v (%s)", id, st.State, serr, st.Error)
		}
	}
}

func TestJobMCStrategy(t *testing.T) {
	m, _ := newTestJM(t, 1, 8, synthFactory())

	req := smallFlowReq("vr")
	req.MCStrategy = "is"
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID, 30*time.Second)
	got, err := m.Status(api.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobSucceeded {
		t.Fatalf("state = %q (%s)", got.State, got.Error)
	}
	j, err := m.get(api.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var stats []api.Event
	for _, ev := range j.eventsSince(0) {
		if ev.Type == api.EventMCStats {
			stats = append(stats, ev)
		}
	}
	if len(stats) != 1 {
		t.Fatalf("%d mc_stats events, want 1", len(stats))
	}
	s := stats[0]
	if s.Strategy != "is" || s.Points == 0 || s.FullEvals != s.Samples || s.MeanESS <= 0 {
		t.Errorf("mc_stats event = %+v inconsistent with an IS run", s)
	}

	// An empty request strategy falls back to the manager default.
	m.defaultMCStrategy = "is+surrogate"
	st2, err := m.Submit(smallFlowReq("vr-default"))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.get(api.DefaultTenant, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j2.cfg.MCStrategy != "is+surrogate" {
		t.Errorf("default strategy not applied: %q", j2.cfg.MCStrategy)
	}
	waitDone(t, m, st2.ID, 30*time.Second)

	// Unknown strategies are rejected at submission.
	bad := smallFlowReq("vr-bad")
	bad.MCStrategy = "qmc"
	if _, err := m.Submit(bad); err == nil {
		t.Error("unknown mc_strategy accepted")
	}
}

func TestJobSubmitValidation(t *testing.T) {
	m, _ := newTestJM(t, 1, 4, synthFactory())
	if _, err := m.Submit(api.FlowRequest{Problem: "no-such"}); err == nil {
		t.Error("unknown problem accepted")
	}
	if _, err := m.Submit(api.FlowRequest{Problem: "synth", Process: "no-such"}); err == nil {
		t.Error("unknown process accepted")
	}
	req := smallFlowReq("bad")
	req.PopSize = -1
	if _, err := m.Submit(req); err == nil {
		t.Error("negative PopSize accepted")
	}
	req = smallFlowReq("../escape")
	if _, err := m.Submit(req); err == nil {
		t.Error("path-escaping model name accepted")
	}
	if _, err := m.Status(api.DefaultTenant, "job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job: err = %v, want ErrUnknownJob", err)
	}
}
