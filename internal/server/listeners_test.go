package server

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/httpx"
	"analogyield/internal/server/api"
)

// TestListenerShardsServeAndDrain boots a server with several
// SO_REUSEPORT listener shards, proves real queries flow through the
// sharded front end, and then verifies graceful shutdown closes every
// shard within the drain budget — a half-drained server that keeps one
// shard accepting would silently blackhole a fraction of new
// connections.
func TestListenerShardsServeAndDrain(t *testing.T) {
	if !httpx.ReusePortSupported() {
		t.Skip("SO_REUSEPORT not supported on this platform")
	}
	const shards = 3
	srv := New(Config{
		Addr:         "127.0.0.1:0",
		Listeners:    shards,
		DrainTimeout: 5 * time.Second,
		Metrics:      &core.Metrics{},
		Logger:       quietLog(),
	})
	if _, err := srv.Registry().Install(api.DefaultTenant, "shardtest", synthModel(t, 16)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if got := srv.NumListeners(); got != shards {
		t.Fatalf("NumListeners = %d, want %d", got, shards)
	}
	addr := srv.Addr()

	// Fresh connection per request so the kernel hashes across shards;
	// every one must be answered regardless of which shard catches it.
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	for i := 0; i < 60; i++ {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	start := time.Now()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %s, over the 5s budget", elapsed)
	}
	// Every shard must be closed: with SO_REUSEPORT a straggler shard
	// would still accept, so probe with several distinct connections —
	// all must be refused.
	for i := 0; i < 2*shards; i++ {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			t.Fatalf("dial %d after shutdown succeeded: a listener shard is still accepting", i)
		}
	}
}

// TestListenerShardsUnsupportedFallback pins the degraded path: asking
// for shards where the platform (or a single-listener build) cannot
// provide them must still serve, on exactly one listener.
func TestListenerShardsSingle(t *testing.T) {
	srv := New(Config{
		Addr:    "127.0.0.1:0",
		Metrics: &core.Metrics{},
		Logger:  quietLog(),
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background()) //nolint:errcheck
	if got := srv.NumListeners(); got != 1 {
		t.Fatalf("NumListeners = %d, want 1", got)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}
