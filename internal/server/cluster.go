// Cluster mode: several ayd replicas sharing one artefact store
// coordinate through store leases (who owns which flow job) and spread
// each job's Monte Carlo stage across the fleet over an internal HTTP
// route. The moving parts live here:
//
//   - handleShardEval serves POST /internal/mc/shard — a peer asks this
//     replica to evaluate samples [lo, hi) of one Pareto point. The
//     evaluation uses the exact per-(seed, index) sample derivation the
//     owner would use locally, so the answer is bit-identical to local
//     work (montecarlo.RunBatchDistributed's correctness contract).
//   - httpShardDispatcher is the owner's side: it implements
//     montecarlo.ShardDispatcher by round-robining shard requests over
//     the configured peers, degrading any failure to local fallback.
//   - The JobManager's lease lifecycle (jobs.go) keeps exactly one
//     replica running each job: acquire on submit, heartbeat at TTL/3,
//     fenced checkpoint writes, release-keep-record on drain, and a
//     takeover scanner that adopts jobs whose lease lapsed.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/montecarlo"
	"analogyield/internal/server/api"
)

// maxShardSamples bounds one shard request's sample count — a malformed
// request must not pin a replica on an unbounded loop.
const maxShardSamples = 1 << 20

// defaultLeaseTTL is the job-lease heartbeat window when Config.LeaseTTL
// is zero: long enough that three missed heartbeats (TTL/3 cadence)
// precede a takeover, short enough that a crashed replica's jobs are
// adopted within seconds.
const defaultLeaseTTL = 15 * time.Second

// evalShard answers one peer shard request. The problem and process are
// constructed fresh per request (factories are cheap) and samples are
// evaluated sequentially on the request goroutine — the server's
// concurrency comes from many in-flight shard requests, not from
// fan-out inside one.
func (s *Server) evalShard(ctx context.Context, req api.ShardRequest) (*api.ShardResponse, error) {
	pf, ok := s.cfg.Problems[req.Problem]
	if !ok {
		return nil, fmt.Errorf("server: unknown problem %q", req.Problem)
	}
	prf, ok := s.cfg.Processes[req.Process]
	if !ok {
		return nil, fmt.Errorf("server: unknown process %q", req.Process)
	}
	if req.Lo < 0 || req.Hi < req.Lo || req.Hi-req.Lo > maxShardSamples {
		return nil, fmt.Errorf("server: bad shard range [%d, %d)", req.Lo, req.Hi)
	}
	genes, err := api.DecodeFloats(req.Genes)
	if err != nil {
		return nil, err
	}
	problem, proc := pf(), prf()
	rows := make([]string, req.Hi-req.Lo)
	for i := req.Lo; i < req.Hi; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := problem.Evaluate(genes, proc.NewSample(req.Seed, i))
		if err != nil {
			continue // "" row = failed sample, exactly as a local failure
		}
		rows[i-req.Lo] = api.EncodeFloats(m)
	}
	s.cfg.Metrics.IncMCShardsServed()
	return &api.ShardResponse{Rows: rows}, nil
}

func (s *Server) handleShardEval(w http.ResponseWriter, r *http.Request) {
	var req api.ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), "bad request body: %v", err)
		return
	}
	resp, err := s.evalShard(r.Context(), req)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// httpShardDispatcher farms Monte Carlo shards to peer replicas over
// POST /internal/mc/shard. One dispatcher is built per flow job (it
// carries the job's problem/process names); the peer list and HTTP
// client are shared across jobs. Safe for concurrent use.
type httpShardDispatcher struct {
	peers   []string // peer base URLs
	client  *http.Client
	metrics *core.Metrics
	req     api.ShardRequest // template: tenant/problem/process filled in
	next    atomic.Uint64
}

func (d *httpShardDispatcher) Shards() int { return len(d.peers) }

// EvalShard sends one shard to the next peer in round-robin order. Any
// failure — transport, non-200, undecodable or short response — returns
// an error; the scheduler then evaluates the range locally, so a dead
// peer costs throughput, never correctness.
func (d *httpShardDispatcher) EvalShard(ctx context.Context, genes []float64, seed int64, lo, hi int) ([][]float64, error) {
	peer := d.peers[int(d.next.Add(1)-1)%len(d.peers)]
	wreq := d.req
	wreq.Genes = api.EncodeFloats(genes)
	wreq.Seed, wreq.Lo, wreq.Hi = seed, lo, hi
	body, err := json.Marshal(wreq)
	if err != nil {
		return nil, err
	}
	rows, err := d.post(ctx, peer, body, hi-lo)
	if err != nil {
		d.metrics.IncMCShardsFallback()
		return nil, err
	}
	d.metrics.IncMCShardsDispatched()
	return rows, nil
}

func (d *httpShardDispatcher) post(ctx context.Context, peer string, body []byte, want int) ([][]float64, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/internal/mc/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: peer %s: HTTP %d", peer, resp.StatusCode)
	}
	var wresp api.ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&wresp); err != nil {
		return nil, fmt.Errorf("server: peer %s: %w", peer, err)
	}
	if len(wresp.Rows) != want {
		return nil, fmt.Errorf("server: peer %s: %d rows, want %d", peer, len(wresp.Rows), want)
	}
	rows := make([][]float64, want)
	for k, enc := range wresp.Rows {
		if enc == "" {
			continue // failed sample
		}
		row, err := api.DecodeFloats(enc)
		if err != nil {
			return nil, fmt.Errorf("server: peer %s: %w", peer, err)
		}
		rows[k] = row
	}
	return rows, nil
}

// newShardDispatcher builds one job's dispatcher, or nil when the
// server has no peers (single-node: the flow runs plain RunBatch).
func (m *JobManager) newShardDispatcher(tenant, problem, proc string) montecarlo.ShardDispatcher {
	cl := m.cluster
	if cl == nil || len(cl.peers) == 0 {
		return nil
	}
	return &httpShardDispatcher{
		peers:   cl.peers,
		client:  cl.client,
		metrics: m.metrics,
		req:     api.ShardRequest{Tenant: tenant, Problem: problem, Process: proc},
	}
}
