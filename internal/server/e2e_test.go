package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/process"
	"analogyield/internal/server/api"
	"analogyield/internal/server/client"
)

// startServer boots a real ayd server on a random port with the given
// problems registered, and returns a client pointed at it over TCP.
func startServer(t *testing.T, dir string, problems map[string]ProblemFactory) (*Server, *client.Client) {
	t.Helper()
	srv := New(Config{
		Addr:        "127.0.0.1:0",
		ModelsDir:   dir,
		FlowWorkers: 1,
		Problems:    problems,
		Processes:   map[string]ProcessFactory{"c35": process.C35},
		Metrics:     &core.Metrics{},
		Logger:      quietLog(),
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, client.New("http://" + srv.Addr())
}

// TestEndToEnd is the acceptance path: boot ayd on a random port,
// submit a small flow, follow its SSE event stream through
// StageStart → CheckpointSaved → StageEnd to completion, then answer a
// yield query against the model the flow produced.
func TestEndToEnd(t *testing.T) {
	srv, cl := startServer(t, t.TempDir(), synthFactory())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := cl.SubmitFlow(ctx, api.FlowRequest{
		TenantRef:       api.TenantRef{Model: "e2e"},
		Problem:         "synth",
		PopSize:         24,
		Generations:     10,
		MCSamples:       20,
		Seed:            1,
		CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Follow the SSE stream until the terminal job_done event.
	var evs []api.Event
	if err := cl.StreamEvents(ctx, st.ID, 0, func(ev api.Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("no events received")
	}
	firstOf := func(typ string) int {
		for i, ev := range evs {
			if ev.Type == typ {
				return i
			}
		}
		return -1
	}
	lastOf := func(typ string) int {
		last := -1
		for i, ev := range evs {
			if ev.Type == typ {
				last = i
			}
		}
		return last
	}
	start := firstOf(api.EventStageStart)
	ckpt := firstOf(api.EventCheckpointSaved)
	end := lastOf(api.EventStageEnd)
	if start < 0 || ckpt < 0 || end < 0 {
		t.Fatalf("missing lifecycle events: stage_start %d, checkpoint_saved %d, stage_end %d", start, ckpt, end)
	}
	if !(start < ckpt && ckpt < end) {
		t.Fatalf("event order: stage_start@%d, checkpoint_saved@%d, stage_end@%d", start, ckpt, end)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("Seq not increasing at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	last := evs[len(evs)-1]
	if last.Type != api.EventJobDone || last.State != api.JobSucceeded {
		t.Fatalf("stream ended with %s/%s (%s), want job_done/succeeded", last.Type, last.State, last.Error)
	}

	// The stream replays: reconnecting from mid-stream returns only the
	// tail, starting right after the requested sequence number.
	mid := evs[len(evs)/2].Seq
	var tail []api.Event
	if err := cl.StreamEvents(ctx, st.ID, mid, func(ev api.Event) error {
		tail = append(tail, ev)
		return nil
	}); err != nil {
		t.Fatalf("replay StreamEvents: %v", err)
	}
	if len(tail) == 0 || tail[0].Seq != mid+1 {
		t.Fatalf("replay from %d started at %v", mid, tail)
	}

	// Status agrees with the stream.
	fin, err := cl.Flow(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobSucceeded || fin.Evaluations != 240 || fin.ParetoPoints < 4 {
		t.Fatalf("final status %+v", fin)
	}

	// The produced model is listed and queryable. The synthetic front
	// follows perf1 = 85 − 1.2·(perf0 − 45), so a feasible spec pair can
	// be derived from the model's reported perf0 domain.
	info, err := cl.Model(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	if info.Points < 4 || info.Domain[0] >= info.Domain[1] {
		t.Fatalf("model info %+v", info)
	}
	g := info.Domain[0] + 0.3*(info.Domain[1]-info.Domain[0])
	pm := 85 - 1.2*(g-45) - 2
	q := api.QueryRequest{
		TenantRef: api.TenantRef{Model: "e2e"},
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: g},
			{Name: "pm_deg", Sense: ">=", Bound: pm},
		},
	}
	out, err := cl.Query(ctx, q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.Targets[0] <= g || out.Targets[1] <= pm {
		t.Errorf("targets %v not guard-banded above bounds (%g, %g)", out.Targets, g, pm)
	}
	if len(out.Params) != 3 {
		t.Errorf("Params = %+v", out.Params)
	}
	if out.PredictedYield <= 0.5 || out.PredictedYield > 1 {
		t.Errorf("PredictedYield = %g", out.PredictedYield)
	}

	// Batch round trip answers per-query, including failures.
	res, err := cl.QueryBatch(ctx, []api.QueryRequest{q, {TenantRef: api.TenantRef{Model: "nope"}, Specs: q.Specs}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Response == nil || res[0].Error != "" {
		t.Fatalf("batch[0] = %+v", res)
	}
	if res[1].Response != nil || res[1].Error == "" {
		t.Fatalf("batch[1] = %+v", res[1])
	}

	// Unknown jobs surface as typed 404 errors through the client.
	var apiErr *api.Error
	if _, err := cl.Flow(ctx, "job-999999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("unknown job error = %v", err)
	}

	// Route latencies reached the shared metrics registry.
	snap := srv.Metrics().Snapshot()
	if snap.Latencies["query"].Count < 1 || snap.Latencies["flow_submit"].Count < 1 {
		t.Errorf("latency histograms not populated: %+v", snap.Latencies)
	}
}
