package server

import (
	"log/slog"
	"net/http"
	"time"

	"analogyield/internal/core"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so SSE streaming keeps
// working through the recorder.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests emits one structured line per request.
func logRequests(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(time.Since(t0).Microseconds())/1e3,
			"remote", r.RemoteAddr,
		)
	})
}

// limitConcurrency caps simultaneous in-flight requests; excess
// requests are rejected with 503 rather than queued, so overload sheds
// quickly instead of building invisible latency.
func limitConcurrency(n int, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			writeError(w, http.StatusServiceUnavailable, "server at capacity")
		}
	})
}

// observeLatency records route latency into a registry histogram (the
// p50/p95 figures exported through the core.Metrics expvar variable).
func observeLatency(h *core.Histogram, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		h.Observe(time.Since(t0))
	})
}

// withTimeout bounds a route's handling time with http.TimeoutHandler
// (503 + a JSON body on expiry). Streaming routes must not use this —
// TimeoutHandler's buffering breaks flushing.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.TimeoutHandler(next, d, `{"status":503,"error":"request timed out"}`)
}
