package server

import (
	"context"
	"net/http"
	"time"

	"analogyield/internal/core"
)

// Request logging, panic recovery, request IDs, client-IP resolution,
// CORS, body limits and in-flight caps all live in internal/httpx and
// are assembled around the mux in Server.Handler. This file keeps only
// the two route-level wrappers that need server state.

// observeLatency records route latency into a registry histogram (the
// p50/p95 figures exported through the core.Metrics expvar variable and
// the bucket ladders exported at /metrics).
func observeLatency(h *core.Histogram, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		h.Observe(time.Since(t0))
	})
}

// withTimeout bounds a route's handling time with http.TimeoutHandler
// (503 + a JSON body on expiry). Streaming routes must not use this —
// TimeoutHandler's buffering breaks flushing. It is also deliberately
// kept off the hot read path: TimeoutHandler spawns a goroutine and
// double-buffers the whole response per request, which costs two extra
// scheduler hops per query on a loaded machine — see withDeadline.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.TimeoutHandler(next, d, `{"status":503,"error":"request timed out"}`)
}

// withDeadline is the cheap timeout guard for hot, fast, non-streaming
// routes: it arms a read deadline on the connection (so a trickled
// request body cannot pin a handler — and its in-flight token — past
// the budget) and a context deadline (so context-aware work aborts),
// then runs the handler inline. Unlike http.TimeoutHandler there is no
// per-request goroutine and no response buffering; the trade-off is
// that a handler that ignores its context finishes late instead of
// being cut off with a 503, which is acceptable exactly because these
// routes do bounded work.
func withDeadline(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc := http.NewResponseController(w)
		rc.SetReadDeadline(time.Now().Add(d)) //nolint:errcheck // unsupported writers just miss the guard
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
