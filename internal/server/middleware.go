package server

import (
	"net/http"
	"time"

	"analogyield/internal/core"
)

// Request logging, panic recovery, request IDs, client-IP resolution,
// CORS, body limits and in-flight caps all live in internal/httpx and
// are assembled around the mux in Server.Handler. This file keeps only
// the two route-level wrappers that need server state.

// observeLatency records route latency into a registry histogram (the
// p50/p95 figures exported through the core.Metrics expvar variable and
// the bucket ladders exported at /metrics).
func observeLatency(h *core.Histogram, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		h.Observe(time.Since(t0))
	})
}

// withTimeout bounds a route's handling time with http.TimeoutHandler
// (503 + a JSON body on expiry). Streaming routes must not use this —
// TimeoutHandler's buffering breaks flushing.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.TimeoutHandler(next, d, `{"status":503,"error":"request timed out"}`)
}
