package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"analogyield/internal/core"
	"analogyield/internal/process"
	"analogyield/internal/server/api"
	"analogyield/internal/store"
)

// newClusterJM builds a cluster-enabled JobManager over the given
// (usually shared) store.
func newClusterJM(t *testing.T, st store.Store, id string, ttl time.Duration,
	problems map[string]ProblemFactory) (*JobManager, *Registry) {
	t.Helper()
	reg := NewRegistry(st, 8)
	m := NewJobManager(t.TempDir(), 2, 8, reg,
		problems, map[string]ProcessFactory{"c35": process.C35},
		&core.Metrics{}, quietLog())
	m.EnableCluster(id, nil, ttl)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown(%s): %v", id, err)
		}
		reg.Close()
	})
	return m, reg
}

func slowFactory(delay time.Duration) map[string]ProblemFactory {
	return map[string]ProblemFactory{
		"synthslow": func() core.CircuitProblem { return slowMCProblem{delay: delay} },
	}
}

// waitArtefact polls the store until (default, kind, name) exists.
func waitArtefact(t *testing.T, st store.Store, kind store.Kind, name string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if _, err := st.Stat(store.Key{Tenant: api.DefaultTenant, Kind: kind, Name: name}); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("artefact %s/%s never appeared", kind, name)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitModel polls a registry until the named model is installed,
// returning its content-addressed version.
func waitModel(t *testing.T, reg *Registry, name string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if info, err := reg.Info(api.DefaultTenant, name); err == nil {
			return info.Version
		}
		if time.Now().After(deadline) {
			t.Fatalf("model %q never installed", name)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterShardedFlowBitIdentical pins the cluster-mode correctness
// contract end to end over real HTTP: a flow whose Monte Carlo stage is
// sharded across 1 or 3 peer replicas (2- and 4-replica layouts)
// installs a model with the SAME content address as a single-node run —
// the shard placement is invisible in the results.
func TestClusterShardedFlowBitIdentical(t *testing.T) {
	req := api.FlowRequest{
		TenantRef:   api.TenantRef{Model: "shard-e2e"},
		Problem:     "synth",
		PopSize:     24,
		Generations: 8,
		MCSamples:   40,
		Seed:        7,
	}
	problems := func() map[string]ProblemFactory {
		return map[string]ProblemFactory{
			"synth": func() core.CircuitProblem { return synthProblem{} },
		}
	}
	newSrv := func(id string, peers []string) *Server {
		srv := New(Config{
			Store:     store.NewMemory(),
			DataDir:   t.TempDir(),
			ReplicaID: id,
			Peers:     peers,
			Problems:  problems(),
			Logger:    quietLog(),
		})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		return srv
	}
	run := func(t *testing.T, peers int) string {
		var urls []string
		var peerSrvs []*Server
		for i := 0; i < peers; i++ {
			ps := newSrv(fmt.Sprintf("peer-%d", i), nil)
			hs := httptest.NewServer(ps.Handler())
			t.Cleanup(hs.Close)
			urls = append(urls, hs.URL)
			peerSrvs = append(peerSrvs, ps)
		}
		owner := newSrv("owner", urls)
		st, err := owner.Jobs().Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, owner.Jobs(), st.ID, 60*time.Second)
		got, err := owner.Jobs().Status(api.DefaultTenant, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != api.JobSucceeded {
			t.Fatalf("peers=%d: state %q (%s)", peers, got.State, got.Error)
		}
		if peers > 0 {
			// Guard against a dispatcher that silently does everything
			// locally (which would also pass the bit-identity check).
			if d := owner.Metrics().Snapshot().MCShardsDispatched; d == 0 {
				t.Errorf("peers=%d: owner dispatched no shards", peers)
			}
			var served int64
			for _, ps := range peerSrvs {
				served += ps.Metrics().Snapshot().MCShardsServed
			}
			if served == 0 {
				t.Errorf("peers=%d: no peer served a shard", peers)
			}
		}
		info, err := owner.Registry().Info(api.DefaultTenant, "shard-e2e")
		if err != nil {
			t.Fatal(err)
		}
		return info.Version
	}
	base := run(t, 0) // single replica
	for _, peers := range []int{1, 3} {
		if v := run(t, peers); v != base {
			t.Errorf("%d-replica layout: model version %s, single-node %s — results not bit-identical",
				peers+1, v, base)
		}
	}
}

// TestClusterLeaseExcludesDuplicateJob pins job exclusivity: while one
// replica owns a (tenant, model) job, a peer sharing the store is
// refused with ErrLeaseHeld; once the owner finishes, the name is free.
func TestClusterLeaseExcludesDuplicateJob(t *testing.T) {
	root := t.TempDir()
	bp := newBlockingProblem()
	a, _ := newClusterJM(t, store.OpenDisk(root), "ra", time.Minute,
		map[string]ProblemFactory{"synth": func() core.CircuitProblem { return bp }})
	b, _ := newClusterJM(t, store.OpenDisk(root), "rb", time.Minute, synthFactory())

	st, err := a.Submit(smallFlowReq("excl"))
	if err != nil {
		t.Fatal(err)
	}
	<-bp.started // the job is mid-flow on A

	if _, err := b.Submit(smallFlowReq("excl")); !errors.Is(err, store.ErrLeaseHeld) {
		t.Fatalf("duplicate submission: want ErrLeaseHeld, got %v", err)
	}
	// A different model name is independent.
	if _, err := b.Submit(smallFlowReq("excl-other")); err != nil {
		t.Fatalf("independent name refused: %v", err)
	}

	close(bp.release)
	waitDone(t, a, st.ID, 30*time.Second)
	// The lease settles before the job reports done, so the name is
	// immediately claimable again.
	if _, err := b.Submit(smallFlowReq("excl")); err != nil {
		t.Fatalf("post-completion submission refused: %v", err)
	}
}

// TestClusterDrainHandsOffJob pins the drain satellite: shutting a
// replica down releases its job leases immediately (keeping the job
// records), so a peer adopts and finishes the work without waiting out
// the TTL — the TTL here is a full minute, far beyond the test budget.
func TestClusterDrainHandsOffJob(t *testing.T) {
	root := t.TempDir()
	stA := store.OpenDisk(root)
	a, _ := newClusterJM(t, stA, "ra", time.Minute, slowFactory(2*time.Millisecond))
	req := api.FlowRequest{
		TenantRef:       api.TenantRef{Model: "drain-m"},
		Problem:         "synthslow",
		PopSize:         16,
		Generations:     6,
		MCSamples:       30,
		Seed:            3,
		CheckpointEvery: 1,
	}
	if _, err := a.Submit(req); err != nil {
		t.Fatal(err)
	}
	// Wait until the flow has mirrored at least one checkpoint into the
	// shared store, then drain A mid-run.
	waitArtefact(t, stA, store.KindCheckpoint, "drain-m", 30*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The record survived the drain; the lease did not.
	if _, err := stA.Stat(store.Key{Tenant: api.DefaultTenant, Kind: store.KindJob, Name: "drain-m"}); err != nil {
		t.Fatalf("job record lost on drain: %v", err)
	}

	b, regB := newClusterJM(t, store.OpenDisk(root), "rb", 500*time.Millisecond,
		slowFactory(2*time.Millisecond))
	waitModel(t, regB, "drain-m", 30*time.Second)
	if n := b.metrics.Snapshot().LeaseTakeovers; n == 0 {
		t.Error("survivor recorded no lease takeover")
	}
	// The adopted run resumed from A's mirrored checkpoint rather than
	// restarting.
	var adopted *api.JobStatus
	for _, js := range b.List(api.DefaultTenant) {
		if js.Model == "drain-m" {
			adopted = &js
			break
		}
	}
	if adopted == nil {
		t.Fatal("no adopted job on survivor")
	}
	if !adopted.Resumed {
		t.Error("adopted job did not resume from the mirrored checkpoint")
	}
}

// TestClusterChaosTakeoverBitIdentical is the chaos e2e: a replica
// "dies" mid-Monte-Carlo (crashForTest leaves its lease and job record
// behind, exactly as SIGKILL would), a survivor sharing the store
// adopts the job once the TTL lapses, resumes from the mirrored
// checkpoint, and installs a model bit-identical to an uninterrupted
// single-node run.
func TestClusterChaosTakeoverBitIdentical(t *testing.T) {
	req := api.FlowRequest{
		TenantRef:       api.TenantRef{Model: "chaos-m"},
		Problem:         "synthslow",
		PopSize:         16,
		Generations:     6,
		MCSamples:       30,
		Seed:            5,
		CheckpointEvery: 1,
	}
	// Baseline: the same request run to completion on one node.
	base, regBase := newClusterJM(t, store.NewMemory(), "base", time.Minute,
		slowFactory(2*time.Millisecond))
	bst, err := base.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, base, bst.ID, 60*time.Second)
	want := waitModel(t, regBase, "chaos-m", time.Second)

	// The doomed replica: short TTL so the takeover happens quickly.
	root := t.TempDir()
	stA := store.OpenDisk(root)
	a, _ := newClusterJM(t, stA, "ra", 400*time.Millisecond, slowFactory(2*time.Millisecond))
	a.crashForTest.Store(true)
	ast, err := a.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitArtefact(t, stA, store.KindCheckpoint, "chaos-m", 30*time.Second)
	// "Crash": stop the flow and tear the manager down without settling
	// anything — lease and record stay behind, the heartbeat stops.
	if _, err := a.Cancel(api.DefaultTenant, ast.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, a, ast.ID, 30*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The survivor adopts after the TTL and finishes the flow.
	stB := store.OpenDisk(root)
	b, regB := newClusterJM(t, stB, "rb", 400*time.Millisecond, slowFactory(2*time.Millisecond))
	got := waitModel(t, regB, "chaos-m", 60*time.Second)
	if got != want {
		t.Errorf("takeover result diverged: version %s, uninterrupted run %s", got, want)
	}
	if n := b.metrics.Snapshot().LeaseTakeovers; n == 0 {
		t.Error("survivor recorded no lease takeover")
	}
	// The finished job retired its record — nothing is left to adopt.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := stB.Stat(store.Key{Tenant: api.DefaultTenant, Kind: store.KindJob, Name: "chaos-m"})
		if errors.Is(err, store.ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job record never retired after successful takeover")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterHealthExposition pins backward compatibility of /healthz:
// single-node responses carry no replica section; cluster-mode
// responses identify the replica and its lease/shard counters.
func TestClusterHealthExposition(t *testing.T) {
	health := func(srv *Server) map[string]any {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz: HTTP %d", rec.Code)
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		return body
	}
	shutdown := func(srv *Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}

	single := New(Config{Store: store.NewMemory(), DataDir: t.TempDir(), Logger: quietLog()})
	t.Cleanup(func() { shutdown(single) })
	if _, ok := health(single)["replica"]; ok {
		t.Error("single-node healthz grew a replica section")
	}

	clustered := New(Config{Store: store.NewMemory(), DataDir: t.TempDir(),
		ReplicaID: "r9", Logger: quietLog()})
	t.Cleanup(func() { shutdown(clustered) })
	rep, ok := health(clustered)["replica"].(map[string]any)
	if !ok {
		t.Fatal("cluster healthz missing replica section")
	}
	if rep["id"] != "r9" {
		t.Errorf("replica id = %v, want r9", rep["id"])
	}
}
