package server

import (
	"context"
	"testing"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
)

// benchPoints mirrors synthModel's analytic front without a *testing.T,
// so benchmarks can build models too.
func benchPoints(n int) []core.ParetoPoint {
	pts := make([]core.ParetoPoint, n)
	for i := range pts {
		x := float64(i) / float64(n-1)
		pts[i] = core.ParetoPoint{
			Params:   []float64{10 + 50*x, 10, 10},
			Perf:     [2]float64{45 + 10*x, 85 - 12*x},
			DeltaPct: [2]float64{1.0 + 0.2*x, 0.5 + 0.1*x},
		}
	}
	return pts
}

func buildBenchModel(pts []core.ParetoPoint) (*core.Model, error) {
	return core.BuildModel(pts,
		[]string{"gain_db", "pm_deg"},
		[]string{"P1", "P2", "P3"},
		[]string{"um", "um", "um"},
		core.ModelOptions{})
}

func benchModel(b *testing.B) *Registry {
	b.Helper()
	r := NewRegistry(nil, 4)
	pts := benchPoints(64)
	m, err := buildBenchModel(pts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Install(api.DefaultTenant, "m1", m); err != nil {
		b.Fatal(err)
	}
	return r
}

func benchQuery() api.QueryRequest {
	return api.QueryRequest{
		TenantRef: api.TenantRef{Model: "m1"},
		Specs: [2]api.Spec{
			{Name: "gain_db", Sense: ">=", Bound: 50},
			{Name: "pm_deg", Sense: ">=", Bound: 76},
		},
	}
}

// BenchmarkYieldQuery measures the serving hot path: compiled engine,
// pooled scratch, pre-rendered JSON. Steady state is 0 allocs/op.
func BenchmarkYieldQuery(b *testing.B) {
	r := benchModel(b)
	defer r.Close()
	req := benchQuery()
	ctx := context.Background()
	sc := getScratch()
	defer putScratch(sc)
	if _, _, err := r.QueryRendered(ctx, req, sc); err != nil {
		b.Fatal(err)
	}
	c, i := r.QueryStats()
	if c == 0 || i != 0 {
		b.Fatalf("warm-up ran on the interpreted path (compiled %d, interpreted %d)", c, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		body, _, err := r.QueryRendered(ctx, req, sc)
		if err != nil || body == nil {
			b.Fatalf("body %v err %v", body != nil, err)
		}
	}
}

// BenchmarkYieldQueryInterpreted is the pre-compilation reference: the
// interpreted Table 3 arithmetic plus generic JSON encoding, exactly
// what each query cost before models were compiled at install time.
func BenchmarkYieldQueryInterpreted(b *testing.B) {
	r := benchModel(b)
	defer r.Close()
	req := benchQuery()
	e, err := r.get(api.DefaultTenant, "m1", "")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res := solveQuery(e.tenant, e.name, e.model, req)
		if res.Error != "" {
			b.Fatal(res.Error)
		}
		jb := jsonBufPool.Get().(*jsonBuf)
		jb.buf.Reset()
		if err := jb.enc.Encode(res.Response); err != nil {
			b.Fatal(err)
		}
		jsonBufPool.Put(jb)
	}
}

// BenchmarkYieldQueryBatch measures the grouped batch path (16 queries
// per op, amortising spec staging through EvalBatch).
func BenchmarkYieldQueryBatch(b *testing.B) {
	r := benchModel(b)
	defer r.Close()
	reqs := make([]api.QueryRequest, 16)
	for i := range reqs {
		reqs[i] = benchQuery()
		// Stay feasible across the spread: the front offers pm ≈ 74.4 at
		// the highest guard-banded gain target here.
		reqs[i].Specs[0].Bound = 46 + float64(i)*0.4
		reqs[i].Specs[1].Bound = 74
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, res := range r.QueryBatch(ctx, reqs) {
			if res.Error != "" {
				b.Fatal(res.Error)
			}
		}
	}
}

// BenchmarkCompileModel measures install-time compilation (the cost
// moved off the query path).
func BenchmarkCompileModel(b *testing.B) {
	m, err := buildBenchModel(benchPoints(64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := CompileModel(api.DefaultTenant, "m1", m); err != nil {
			b.Fatal(err)
		}
	}
}
