package server

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"analogyield/internal/server/api"
	"analogyield/internal/spline"
)

// sweepRequests spans the synthetic model's behaviour space: in-domain,
// boundary, out-of-range and infeasible spec pairs, both senses, and
// guard-band scales around 1. The golden tests drive both engines over
// this set.
func sweepRequests(model string) []api.QueryRequest {
	var reqs []api.QueryRequest
	rng := rand.New(rand.NewSource(41))
	add := func(b0, b1, scale float64, sense1 string) {
		reqs = append(reqs, api.QueryRequest{
			TenantRef: api.TenantRef{Model: model},
			Specs: [2]api.Spec{
				{Name: "gain_db", Sense: ">=", Bound: b0},
				{Name: "pm_deg", Sense: sense1, Bound: b1},
			},
			GuardScale: scale,
		})
	}
	for i := 0; i < 160; i++ {
		// Mostly-feasible region: domain is perf0 ∈ [45, 55] and the front
		// offers perf1 = 85 − 1.2·(perf0 − 45) ∈ [73, 85].
		b0 := 45.5 + 7*rng.Float64()
		b1 := 71 + 4*rng.Float64()
		scale := 0.0
		switch i % 4 {
		case 1:
			scale = 0.5 + rng.Float64()
		case 2:
			scale = 3 // often pushes the target out of the front
		case 3:
			b0 = 44 + 13*rng.Float64() // spills outside the domain
			b1 = 60 + 40*rng.Float64() // frequently infeasible
		}
		sense1 := ">="
		if i%7 == 0 {
			sense1 = "<=" // AtMost guard-bands downward: usually feasible
		}
		add(b0, b1, scale, sense1)
	}
	// Exact knots and domain edges.
	add(45, 73, 0, ">=")
	add(55, 73, 0, ">=")
	add(50, 79, 0, ">=")
	add(46, 74, 0, ">=")
	// Error shapes: parse failure, negative scale, far out of range.
	reqs = append(reqs, api.QueryRequest{
		TenantRef: api.TenantRef{Model: model},
		Specs:     [2]api.Spec{{Name: "g", Sense: "bogus", Bound: 50}, {Name: "p", Bound: 76}},
	})
	add(50, 76, -1, ">=")
	add(1e6, 76, 0, ">=")
	add(50, -1e6, 0, "<=")
	return reqs
}

// TestCompiledGoldenBitIdentical drives the compiled engine and the
// interpreted reference over the sweep and demands byte-for-byte float
// agreement on every answered query, and agreement on which queries are
// answerable at all.
func TestCompiledGoldenBitIdentical(t *testing.T) {
	m := synthModel(t, 12)
	cm, err := CompileModel(api.DefaultTenant, "m1", m)
	if err != nil {
		t.Fatalf("CompileModel: %v", err)
	}
	sc := getScratch()
	defer putScratch(sc)
	answered := 0
	for i, req := range sweepRequests("m1") {
		ref := solveQuery(api.DefaultTenant, "m1", m, req)
		s, ok := cm.solve(req, sc)
		if ok != (ref.Error == "") {
			t.Fatalf("req %d: compiled ok=%v, interpreted error=%q", i, ok, ref.Error)
		}
		if !ok {
			continue
		}
		answered++
		got := cm.response(&s)
		want := ref.Response
		eq := func(field string, g, w float64) {
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Errorf("req %d %s: compiled %v (%x), interpreted %v (%x)",
					i, field, g, math.Float64bits(g), w, math.Float64bits(w))
			}
		}
		for k := 0; k < 2; k++ {
			eq("Targets["+strconv.Itoa(k)+"]", got.Targets[k], want.Targets[k])
			eq("DeltaPct["+strconv.Itoa(k)+"]", got.DeltaPct[k], want.DeltaPct[k])
			eq("FrontPerf["+strconv.Itoa(k)+"]", got.FrontPerf[k], want.FrontPerf[k])
		}
		eq("CurveParam", got.CurveParam, want.CurveParam)
		eq("PredictedYield", got.PredictedYield, want.PredictedYield)
		if len(got.Params) != len(want.Params) {
			t.Fatalf("req %d: %d params, want %d", i, len(got.Params), len(want.Params))
		}
		for k := range got.Params {
			if got.Params[k].Name != want.Params[k].Name || got.Params[k].Unit != want.Params[k].Unit {
				t.Errorf("req %d param %d: label %+v, want %+v", i, k, got.Params[k], want.Params[k])
			}
			eq("Params["+strconv.Itoa(k)+"]", got.Params[k].Value, want.Params[k].Value)
		}
	}
	if answered < 40 {
		t.Fatalf("only %d sweep queries answered on the compiled path — sweep too narrow to prove identity", answered)
	}
}

// TestCompiledGoldenJSON renders every answerable sweep query from the
// pre-rendered fragments and compares the bytes against encoding/json on
// the interpreted response — the HTTP fast path must be byte-identical,
// trailing newline included.
func TestCompiledGoldenJSON(t *testing.T) {
	m := synthModel(t, 12)
	cm, err := CompileModel(api.DefaultTenant, "m1", m)
	if err != nil {
		t.Fatal(err)
	}
	sc := getScratch()
	defer putScratch(sc)
	for i, req := range sweepRequests("m1") {
		ref := solveQuery(api.DefaultTenant, "m1", m, req)
		if ref.Error != "" {
			continue
		}
		s, ok := cm.solve(req, sc)
		if !ok {
			t.Fatalf("req %d: interpreted answered but compiled refused", i)
		}
		got, ok := cm.appendJSON(nil, &s)
		if !ok {
			t.Fatalf("req %d: appendJSON refused", i)
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(ref.Response); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("req %d: rendered JSON differs\ncompiled:    %s\ninterpreted: %s", i, got, want.Bytes())
		}
	}
}

// TestCompiledGoldenErrors routes error-producing queries through the
// registry and checks the message is exactly the interpreted path's.
func TestCompiledGoldenErrors(t *testing.T) {
	r := NewRegistry(nil, 4)
	defer r.Close()
	m := synthModel(t, 12)
	if _, err := r.Install(api.DefaultTenant, "m1", m); err != nil {
		t.Fatal(err)
	}
	for i, req := range sweepRequests("m1") {
		ref := solveQuery(api.DefaultTenant, "m1", m, req)
		if ref.Error == "" {
			continue
		}
		_, err := r.Query(t.Context(), req)
		if err == nil {
			t.Fatalf("req %d: registry answered, interpreted failed with %q", i, ref.Error)
		}
		if err.Error() != ref.Error {
			t.Errorf("req %d: registry error %q, interpreted %q", i, err.Error(), ref.Error)
		}
	}
}

// TestCompiledPathIsUsed guards the benchmark claim: a plain in-domain
// query against a freshly built model must be answered by the compiled
// engine, not silently fall back.
func TestCompiledPathIsUsed(t *testing.T) {
	r := NewRegistry(nil, 4)
	defer r.Close()
	if _, err := r.Install(api.DefaultTenant, "m1", synthModel(t, 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Query(t.Context(), testQuery("m1")); err != nil {
		t.Fatal(err)
	}
	c, i := r.QueryStats()
	if c != 1 || i != 0 {
		t.Fatalf("QueryStats = (%d compiled, %d interpreted), want (1, 0)", c, i)
	}
}

// TestAppendJSONFloat pins the hand renderer to encoding/json across
// the representation boundaries (1e-6, 1e21, exponent cleanup).
func TestAppendJSONFloat(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.5, 50.255, 1e-6, 9.9e-7, 1e-7, 1e21, 9.99e20, -2.5e-9,
		1e300, 5e-324, math.MaxFloat64, 0.1, 1.0 / 3.0, 76.38,
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		vals = append(vals, math.Ldexp(rng.Float64()*2-1, rng.Intn(200)-100))
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := appendJSONFloat(nil, v)
		if !ok {
			t.Fatalf("appendJSONFloat refused %v", v)
		}
		if string(got) != string(want) {
			t.Errorf("%v: rendered %s, encoding/json %s", v, got, want)
		}
	}
	if _, ok := appendJSONFloat(nil, math.NaN()); ok {
		t.Error("NaN accepted")
	}
	if _, ok := appendJSONFloat(nil, math.Inf(1)); ok {
		t.Error("+Inf accepted")
	}
}

// monotoneSpline builds a strictly increasing (or decreasing) natural
// cubic from fuzz-derived data.
func monotoneSpline(t *testing.T, seed int64, n int, decreasing bool) *spline.Compiled {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if n < 4 {
		n = 4
	}
	if n > 64 {
		n = 64
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	x, y := rng.Float64()*10-5, rng.Float64()*100-50
	for i := 0; i < n; i++ {
		xs[i], ys[i] = x, y
		x += 0.1 + rng.Float64()*2
		dy := 0.01 + rng.Float64()*5
		if decreasing {
			dy = -dy
		}
		y += dy
	}
	itp, err := spline.New(spline.DegreeCubic, xs, ys)
	if err != nil {
		t.Fatalf("spline.New: %v", err)
	}
	c, err := spline.Compile(itp)
	if err != nil {
		t.Fatalf("spline.Compile: %v", err)
	}
	return c
}

// checkInverseTable asserts the fuzz properties: a non-nil table is
// monotone in x, and round-trips its grid outputs through the forward
// spline within bisection tolerance.
func checkInverseTable(t *testing.T, c *spline.Compiled, tab *inverseTable) {
	t.Helper()
	if tab == nil {
		return // natural-cubic overshoot between monotone knots: allowed
	}
	// Entries are stored in ascending-y order, so x ascends for an
	// increasing forward curve and descends for a decreasing one.
	for i := 1; i < len(tab.xs); i++ {
		if tab.inc && tab.xs[i] < tab.xs[i-1] {
			t.Fatalf("inverse table regresses at %d: %g < %g", i, tab.xs[i], tab.xs[i-1])
		}
		if !tab.inc && tab.xs[i] > tab.xs[i-1] {
			t.Fatalf("inverse table regresses at %d: %g > %g", i, tab.xs[i], tab.xs[i-1])
		}
	}
	lo, hi := c.Domain()
	span := tab.yhi - tab.ylo
	tol := 1e-9 * (math.Abs(tab.ylo) + math.Abs(tab.yhi) + 1)
	for j := 0; j < len(tab.xs); j++ {
		y := tab.ylo + span*float64(j)/float64(len(tab.xs)-1)
		x := tab.invert(y)
		if x < lo || x > hi {
			t.Fatalf("invert(%g) = %g outside domain [%g, %g]", y, x, lo, hi)
		}
		if got := c.Eval(x); math.Abs(got-y) > tol {
			t.Fatalf("round trip: f(invert(%g)) = %g (|err| %g > %g)", y, got, math.Abs(got-y), tol)
		}
		// The hint must name a real segment.
		if seg := int(tab.segs[j]); seg < 0 || seg >= c.Segments() {
			t.Fatalf("entry %d: segment hint %d outside [0, %d)", j, seg, c.Segments())
		}
	}
}

func TestInverseTableMonotonic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		c := monotoneSpline(t, seed, 8+int(seed)%20, seed%2 == 1)
		checkInverseTable(t, c, buildInverseTable(c, 4*c.Segments()+1))
	}
	// Non-monotone knots must yield no table.
	itp, err := spline.New(spline.DegreeCubic, []float64{0, 1, 2, 3}, []float64{0, 5, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	c, err := spline.Compile(itp)
	if err != nil {
		t.Fatal(err)
	}
	if buildInverseTable(c, 9) != nil {
		t.Fatal("non-monotone spline produced an inverse table")
	}
}

// FuzzInverseTableMonotonic fuzzes the inverse-table builder over random
// monotone splines: whenever a table is built it must be monotone and
// round-trip within tolerance of the compiled cubic.
func FuzzInverseTableMonotonic(f *testing.F) {
	f.Add(int64(1), uint8(12), false, uint8(3))
	f.Add(int64(99), uint8(40), true, uint8(1))
	f.Add(int64(-7), uint8(5), false, uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, decreasing bool, density uint8) {
		c := monotoneSpline(t, seed, int(n), decreasing)
		points := int(density)*c.Segments() + 2
		checkInverseTable(t, c, buildInverseTable(c, points))
	})
}
