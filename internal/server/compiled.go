package server

import (
	"fmt"
	"math"
	"sync"

	"analogyield/internal/core"
	"analogyield/internal/server/api"
	"analogyield/internal/spline"
	"analogyield/internal/table"
	"analogyield/internal/yield"
)

// This file is the compiled yield-query engine: when a model enters the
// registry it is compiled once into an immutable CompiledModel, and the
// serving hot path (POST /v1/yield/query) runs entirely against that
// compiled form — struct-of-arrays spline coefficients evaluated with
// segment-hint reuse, the projection coarse scan resolved against a
// precomputed grid, parameter clamp ranges and the static parts of the
// response JSON pre-rendered — with per-query scratch drawn from a
// sync.Pool so the steady state allocates nothing.
//
// The engine's contract is bit-identity: CompiledModel.solve reproduces
// solveQuery (the interpreted reference path, which stays in
// registry.go) bit for bit, because every floating-point expression is
// evaluated in the same order on the same values. Whenever the compiled
// path cannot answer (spec parse failure, out-of-range bound, infeasible
// spec pair, uncompilable table degree) it reports !ok and the caller
// re-runs the interpreted path, which produces the exact error the
// pre-compiled server returned. Golden tests (compiled_test.go) assert
// both properties.

// projGridN is the resolution of the projection coarse scan. It MUST
// equal the `const n = 256` inside table.CurveModel2D.Project: the
// compiled path replays that scan against precomputed curve values, and
// the golden bit-identity test fails if the two drift apart.
const projGridN = 256

// CompiledModel is the immutable compiled form of one registry model.
// All fields are read-only after CompileModel returns, so any number of
// query goroutines share one instance without synchronisation.
type CompiledModel struct {
	model  *core.Model // interpreted reference (error paths, fallbacks)
	tenant string      // catalog namespace ("" never occurs; default stays off the wire)
	name   string      // catalog name

	// Variation and front tables (Model1D, Error extrapolation).
	delta0, delta1, front compiled1D
	delta0Tbl, delta1Tbl  *table.Model1D // batch staging via table.EvalBatch
	lo0, hi0              float64        // Delta[0].Domain(): feasibility window of target 0

	// Projection onto the Pareto front (CurveModel2D #0).
	fx1, fx2     *spline.Compiled
	span1, span2 float64
	gx1, gx2     []float64 // fx1/fx2 at the coarse-scan grid u = i/projGridN
	gseg         []int32   // u-axis segment at each grid point (hint seed)
	inv          *inverseTable

	// Parameter outputs Y_k(u) with their precomputed clamp ranges.
	params []compiledParam

	// Pre-rendered response fragments (json.go).
	jsonHead    []byte   // {"model":"<name>"[,"tenant":"<t>"],"targets":[
	paramHeads  [][]byte // per param: {"name":...,["unit":...,]"value":
	jsonDeltas  []byte   // ],"delta_pct":[
	jsonFront   []byte   // ],"front_perf":[
	jsonParams  []byte   // ],"params":[
	jsonYield   []byte   // ],"predicted_yield":
	jsonCurve   []byte   // ,"curve_param":
	jsonTail    []byte   // }\n
}

// compiled1D is a Model1D flattened for hint-based evaluation; only the
// Error extrapolation policy is compiled (the policy every BuildModel
// table uses).
type compiled1D struct {
	c      *spline.Compiled
	lo, hi float64
}

func compile1D(m *table.Model1D) (compiled1D, error) {
	if m.Control().Extrap != table.ExtrapError {
		return compiled1D{}, fmt.Errorf("server: extrapolation mode %d not compiled", m.Control().Extrap)
	}
	c := m.Compiled()
	if c == nil {
		return compiled1D{}, fmt.Errorf("server: table degree has no compiled form")
	}
	lo, hi := m.Domain()
	return compiled1D{c: c, lo: lo, hi: hi}, nil
}

// evalHint evaluates with Model1D.Eval's exact range check; false means
// out of range (the interpreted path re-runs for the exact error).
func (t *compiled1D) evalHint(x float64, hint *int) (float64, bool) {
	if x < t.lo || x > t.hi {
		return 0, false
	}
	y, h := t.c.EvalHint(x, *hint)
	*hint = h
	return y, true
}

// compiledParam is one parameter output spline with the clamp range the
// interpreted path recomputes from Samples() on every query.
type compiledParam struct {
	fy       *spline.Compiled
	min, max float64
}

// CompileModel builds the compiled query engine for a model served under
// the given (tenant, name). An error means the model uses a construction
// the engine does not cover (e.g. quadratic interpolation); the registry
// then serves it on the interpreted path instead.
func CompileModel(tenant, name string, m *core.Model) (*CompiledModel, error) {
	cm := &CompiledModel{model: m, tenant: tenant, name: name}
	var err error
	if cm.delta0, err = compile1D(m.Delta[0]); err != nil {
		return nil, err
	}
	if cm.delta1, err = compile1D(m.Delta[1]); err != nil {
		return nil, err
	}
	if cm.front, err = compile1D(m.PerfFront); err != nil {
		return nil, err
	}
	cm.delta0Tbl, cm.delta1Tbl = m.Delta[0], m.Delta[1]
	cm.lo0, cm.hi0 = m.Delta[0].Domain()

	if len(m.ParamTables) == 0 {
		return nil, fmt.Errorf("server: model has no parameter tables")
	}
	fx1, fx2, _ := m.ParamTables[0].Interps()
	if cm.fx1, err = spline.Compile(fx1); err != nil {
		return nil, err
	}
	if cm.fx2, err = spline.Compile(fx2); err != nil {
		return nil, err
	}
	cm.span1, cm.span2 = m.ParamTables[0].Spans()

	// Pre-resolve the coarse-scan grid: the interpreted Project evaluates
	// fx1 and fx2 at the same 257 fixed parameters on every query; the
	// compiled scan reads these precomputed values instead. fx1, fx2 and
	// fy share one knot vector (they are fitted on the same arc-length
	// parameterisation), so a single segment array seeds all hints.
	cm.gx1 = make([]float64, projGridN+1)
	cm.gx2 = make([]float64, projGridN+1)
	cm.gseg = make([]int32, projGridN+1)
	h1, h2 := -1, -1
	for i := 0; i <= projGridN; i++ {
		u := float64(i) / projGridN
		cm.gx1[i], h1 = cm.fx1.EvalHint(u, h1)
		cm.gx2[i], h2 = cm.fx2.EvalHint(u, h2)
		cm.gseg[i] = int32(h1)
	}
	cm.inv = buildInverseTable(cm.fx1, 4*cm.fx1.Segments()+1)

	cm.params = make([]compiledParam, len(m.ParamTables))
	for k, t := range m.ParamTables {
		_, _, fy := t.Interps()
		comp, err := spline.Compile(fy)
		if err != nil {
			return nil, err
		}
		// The interpreted path rescans Samples() for the clamp range on
		// every query; min/max are order-independent, so precomputing here
		// preserves bit-identity.
		_, _, ys := t.Samples()
		mn, mx := ys[0], ys[0]
		for _, y := range ys[1:] {
			if y < mn {
				mn = y
			}
			if y > mx {
				mx = y
			}
		}
		cm.params[k] = compiledParam{fy: comp, min: mn, max: mx}
	}
	if err := cm.prepareJSON(tenant, name, m.ParamNames, m.ParamUnits); err != nil {
		return nil, err
	}
	return cm, nil
}

// queryScratch is the per-query reusable state: segment hints warmed
// across queries, the parameter staging buffer, batch staging vectors
// and the JSON render buffer. Pooled so the steady-state query path
// performs zero allocations.
type queryScratch struct {
	params  []float64
	hParams []int
	buf     []byte

	hDelta0, hDelta1, hFront int
	hProj1, hProj2           int

	// batch staging (Registry.queryGroup)
	bounds0, bounds1 []float64
	d0s, d1s         []float64
	stage            []int
	sq               []solvedQuery
	scales           []float64
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

func getScratch() *queryScratch  { return scratchPool.Get().(*queryScratch) }
func putScratch(sc *queryScratch) { scratchPool.Put(sc) }

// solvedQuery carries one compiled answer; Params live in the scratch
// buffer and are only valid until the scratch is reused.
type solvedQuery struct {
	spec0, spec1   yield.Spec
	deltaPct       [2]float64
	target         [2]float64
	frontPerf      [2]float64
	params         []float64
	curveParam     float64
	predictedYield float64
}

// solve answers one query on the compiled path. ok == false means the
// request needs the interpreted path (bad sense, non-positive scale,
// out-of-range or infeasible specs) — the caller re-runs solveQuery for
// the bit-identical error.
func (cm *CompiledModel) solve(req api.QueryRequest, sc *queryScratch) (solvedQuery, bool) {
	var s solvedQuery
	var err error
	if s.spec0, err = req.Specs[0].ToYield(); err != nil {
		return s, false
	}
	if s.spec1, err = req.Specs[1].ToYield(); err != nil {
		return s, false
	}
	scale := req.GuardScale
	if scale == 0 {
		scale = 1
	}
	if scale <= 0 {
		return s, false
	}
	d0, ok := cm.delta0.evalHint(s.spec0.Bound, &sc.hDelta0)
	if !ok {
		return s, false
	}
	d1, ok := cm.delta1.evalHint(s.spec1.Bound, &sc.hDelta1)
	if !ok {
		return s, false
	}
	return cm.solveFrom(&s, scale, d0, d1, sc)
}

// solveFrom finishes a query whose variation interpolations are already
// in hand (the batch path stages them through table.EvalBatch).
func (cm *CompiledModel) solveFrom(s *solvedQuery, scale, d0, d1 float64, sc *queryScratch) (solvedQuery, bool) {
	s.deltaPct[0], s.deltaPct[1] = d0, d1
	s.target[0] = yield.GuardBand(s.spec0, scale*d0)
	s.target[1] = yield.GuardBand(s.spec1, scale*d1)
	if s.target[0] < cm.lo0 || s.target[0] > cm.hi0 {
		return *s, false
	}
	frontP1, ok := cm.front.evalHint(s.target[0], &sc.hFront)
	if !ok {
		return *s, false
	}
	if !meetsSpec(s.spec1, frontP1, s.target[1]) {
		return *s, false
	}

	u := cm.project(s.target[0], s.target[1], sc)
	s.curveParam = u
	if cap(sc.params) < len(cm.params) {
		sc.params = make([]float64, 0, len(cm.params))
		sc.hParams = make([]int, len(cm.params))
	}
	sc.params = sc.params[:0]
	for k := range cm.params {
		p := &cm.params[k]
		v := p.evalAt(u, &sc.hParams[k])
		if v < p.min {
			v = p.min
		}
		if v > p.max {
			v = p.max
		}
		sc.params = append(sc.params, v)
	}
	s.params = sc.params
	s.frontPerf[0] = s.target[0]
	s.frontPerf[1] = frontP1

	// Model-only yield estimate, with solveQuery's edge-of-axis fallback:
	// a front point outside a variation table's domain reuses the
	// spec-bound interpolation already computed.
	vd0, ok := cm.delta0.evalHint(s.frontPerf[0], &sc.hDelta0)
	if !ok {
		vd0 = d0
	}
	vd1, ok := cm.delta1.evalHint(s.frontPerf[1], &sc.hDelta1)
	if !ok {
		vd1 = d1
	}
	s.predictedYield = yield.PredictNormal(s.spec0, s.frontPerf[0], vd0) *
		yield.PredictNormal(s.spec1, s.frontPerf[1], vd1)
	return *s, true
}

// evalAt is CurveModel2D.EvalAt on the compiled output spline.
func (p *compiledParam) evalAt(u float64, hint *int) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	v, h := p.fy.EvalHint(u, *hint)
	*hint = h
	return v
}

// meetsSpec mirrors core's feasibility comparison.
func meetsSpec(spec yield.Spec, offered, target float64) bool {
	if spec.Sense == yield.AtMost {
		return offered <= target
	}
	return offered >= target
}

// project replays table.CurveModel2D.Project bit for bit: the coarse
// scan reads the precomputed grid instead of evaluating two splines 257
// times, and the golden-section refinement evaluates the compiled
// splines with segment hints seeded from the grid (or, when the front is
// monotone in performance 0, from the inverse table's spec→parameter
// estimate), so the refinement runs without a single binary search.
func (cm *CompiledModel) project(x1, x2 float64, sc *queryScratch) float64 {
	const n = projGridN
	bestU, bestD := 0.0, math.Inf(1)
	bestI := 0
	for i := 0; i <= n; i++ {
		d1 := (cm.gx1[i] - x1) / cm.span1
		d2 := (cm.gx2[i] - x2) / cm.span2
		if d := d1*d1 + d2*d2; d < bestD {
			bestD, bestU = d, float64(i)/n
			bestI = i
		}
	}
	h := int(cm.gseg[bestI])
	if cm.inv != nil {
		if ih, ok := cm.inv.hint(x1); ok {
			h = ih
		}
	}
	sc.hProj1, sc.hProj2 = h, h
	dist2 := func(u float64) float64 {
		v1, h1 := cm.fx1.EvalHint(u, sc.hProj1)
		v2, h2 := cm.fx2.EvalHint(u, sc.hProj2)
		sc.hProj1, sc.hProj2 = h1, h2
		d1 := (v1 - x1) / cm.span1
		d2 := (v2 - x2) / cm.span2
		return d1*d1 + d2*d2
	}
	lo := math.Max(0, bestU-1.5/n)
	hi := math.Min(1, bestU+1.5/n)
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := dist2(c), dist2(d)
	for i := 0; i < 60; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = dist2(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = dist2(d)
		}
	}
	u := 0.5 * (a + b)
	if bd := dist2(u); bd < bestD {
		bestU = u
	}
	return bestU
}

// response materialises a solved query as the wire struct (the
// programmatic Query path; the HTTP path renders JSON directly from the
// solvedQuery without building this).
func (cm *CompiledModel) response(s *solvedQuery) *api.QueryResponse {
	resp := &api.QueryResponse{
		Model:          cm.name,
		Tenant:         wireTenant(cm.tenant),
		Targets:        s.target,
		DeltaPct:       s.deltaPct,
		FrontPerf:      s.frontPerf,
		CurveParam:     s.curveParam,
		PredictedYield: s.predictedYield,
		Params:         make([]api.Param, len(s.params)),
	}
	m := cm.model
	for i, v := range s.params {
		p := api.Param{Name: m.ParamNames[i], Value: v}
		if i < len(m.ParamUnits) {
			p.Unit = m.ParamUnits[i]
		}
		resp.Params[i] = p
	}
	return resp
}

// inverseTable is the precomputed monotone inverse of a compiled curve:
// it maps an output value (a guard-banded performance target) back to
// the input position (the front's curve parameter) that produces it —
// the spec→parameter direction of the paper's Table 3 lookup. The table
// is built only when the forward curve is verifiably monotone, and its
// entries are checked at build time: buildInverseTable returns nil
// rather than a table that regresses. The query engine uses it to seed
// segment hints for the projection refinement; FuzzInverseTableMonotonic
// asserts monotonicity and round-trip accuracy against spline.Cubic.
type inverseTable struct {
	ylo, yhi float64
	xs       []float64 // solved inputs at evenly spaced outputs in [ylo,yhi]
	segs     []int32   // forward-curve segment containing xs[i]
	inc      bool      // forward curve increasing in y
}

// buildInverseTable samples the inverse of c at `points` evenly spaced
// outputs. It returns nil when the knot values are not strictly
// monotone, or when the solved inverse itself regresses (a natural cubic
// overshooting between monotone knots): a nil table only costs the hint
// seeding, never correctness.
func buildInverseTable(c *spline.Compiled, points int) *inverseTable {
	nseg := c.Segments()
	n := nseg + 1
	if n < 2 {
		return nil
	}
	inc := c.KnotY(1) > c.KnotY(0)
	for i := 1; i < n; i++ {
		if inc && c.KnotY(i) <= c.KnotY(i-1) {
			return nil
		}
		if !inc && c.KnotY(i) >= c.KnotY(i-1) {
			return nil
		}
	}
	ylo, yhi := c.KnotY(0), c.KnotY(n-1)
	if !inc {
		ylo, yhi = yhi, ylo
	}
	if points < 2 {
		points = 2
	}
	t := &inverseTable{
		ylo: ylo, yhi: yhi, inc: inc,
		xs:   make([]float64, points),
		segs: make([]int32, points),
	}
	// March in x order (ascending input) so the bracketing segment only
	// ever advances; store in ascending-y order.
	seg := 0
	prevX := math.Inf(-1)
	for j := 0; j < points; j++ {
		frac := float64(j) / float64(points-1)
		var y float64
		if inc {
			y = ylo + (yhi-ylo)*frac
		} else {
			y = yhi + (ylo-yhi)*frac
		}
		for seg < nseg-1 {
			y0, y1 := c.KnotY(seg), c.KnotY(seg+1)
			if (y0 <= y && y <= y1) || (y1 <= y && y <= y0) {
				break
			}
			seg++
		}
		x := bisectSegment(c, seg, y)
		if x < prevX {
			return nil // forward curve wiggles inside a segment
		}
		prevX = x
		idx := j
		if !inc {
			idx = points - 1 - j
		}
		t.xs[idx] = x
		t.segs[idx] = int32(seg)
	}
	return t
}

// bisectSegment solves c(x) = y inside segment seg (the knot values
// bracket y by construction), mirroring spline.Cubic.Invert's bisection.
func bisectSegment(c *spline.Compiled, seg int, y float64) float64 {
	a, b := c.Knot(seg), c.Knot(seg+1)
	fa := c.Eval(a) - y
	if fa == 0 {
		// The root is the left knot itself (grid endpoints land here);
		// the sign-based loop below would walk away from it.
		return a
	}
	for iter := 0; iter < 80; iter++ {
		mid := 0.5 * (a + b)
		fm := c.Eval(mid) - y
		if fm == 0 || (b-a) < 1e-15*(math.Abs(a)+math.Abs(b)+1) {
			return mid
		}
		if (fa < 0) == (fm < 0) {
			a, fa = mid, fm
		} else {
			b = mid
		}
	}
	return 0.5 * (a + b)
}

// hint returns the forward-curve segment believed to contain the input
// that maps to output y (clamped into the table's range).
func (t *inverseTable) hint(y float64) (int, bool) {
	span := t.yhi - t.ylo
	if span <= 0 {
		return 0, false
	}
	f := (y - t.ylo) / span
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	i := int(f * float64(len(t.xs)-1))
	if i > len(t.xs)-1 {
		i = len(t.xs) - 1
	}
	return int(t.segs[i]), true
}

// invert returns the table's input estimate for output y (nearest grid
// entry) — exported to tests via same-package access; the query path
// only consumes hint().
func (t *inverseTable) invert(y float64) float64 {
	span := t.yhi - t.ylo
	f := (y - t.ylo) / span
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	i := int(f*float64(len(t.xs)-1) + 0.5)
	if i > len(t.xs)-1 {
		i = len(t.xs) - 1
	}
	return t.xs[i]
}
