package num

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorSolveIdentity(t *testing.T) {
	n := 5
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveSystem(a, b)
	if err != nil {
		t.Fatalf("SolveSystem: %v", err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Errorf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestFactorSolveKnown(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
	a := NewMatrix(2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("SolveSystem: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("got x = %v, want [1 3]", x)
	}
}

func TestFactorRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveSystem(a, []float64{2, 3})
	if err != nil {
		t.Fatalf("SolveSystem: %v", err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("got x = %v, want [3 2]", x)
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4) // row 1 = 2 * row 0
	if _, err := Factor(a); err == nil {
		t.Fatal("Factor of singular matrix: want error, got nil")
	}
}

func TestDet(t *testing.T) {
	a := NewMatrix(3)
	vals := [][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-24) > 1e-12 {
		t.Errorf("Det = %g, want 24", d)
	}
}

func TestDetSignWithPivot(t *testing.T) {
	// A permutation matrix swapping two rows has determinant -1.
	a := NewMatrix(2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d+1) > 1e-12 {
		t.Errorf("Det = %g, want -1", d)
	}
}

// Property: for random well-conditioned matrices, A·x reproduces b.
func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance => well conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		ax := make([]float64, n)
		a.MulVec(x, ax)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSolveAliasing(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 2)
	b := []float64{8, 6}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	f.Solve(b, b) // in-place
	if math.Abs(b[0]-2) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Errorf("in-place solve got %v, want [2 3]", b)
	}
}

func TestMatrixClone(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestCFactorSolveKnown(t *testing.T) {
	// (1+1i)x = 2  =>  x = 1-1i.
	a := NewCMatrix(1)
	a.Set(0, 0, complex(1, 1))
	x, err := CSolveSystem(a, []complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	want := complex(1, -1)
	if cmplx.Abs(x[0]-want) > 1e-12 {
		t.Errorf("x = %v, want %v", x[0], want)
	}
}

func TestCFactorSolveResidual(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 8
	a := NewCMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, complex(r.NormFloat64(), r.NormFloat64()))
		}
		a.Add(i, i, complex(float64(2*n), 0))
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	x, err := CSolveSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s := complex(0, 0)
		for j := 0; j < n; j++ {
			s += a.At(i, j) * x[j]
		}
		if cmplx.Abs(s-b[i]) > 1e-9 {
			t.Errorf("residual at row %d: %v", i, s-b[i])
		}
	}
}

func TestCFactorSingular(t *testing.T) {
	a := NewCMatrix(2) // all zeros
	if _, err := CFactor(a); err == nil {
		t.Fatal("CFactor of zero matrix: want error, got nil")
	}
}

func TestCFactorRequiresPivoting(t *testing.T) {
	a := NewCMatrix(2)
	a.Set(0, 1, complex(1, 0))
	a.Set(1, 0, complex(1, 0))
	x, err := CSolveSystem(a, []complex128{complex(2, 1), complex(3, -1)})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-complex(3, -1)) > 1e-12 || cmplx.Abs(x[1]-complex(2, 1)) > 1e-12 {
		t.Errorf("got x = %v", x)
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	y := make([]float64, 2)
	a.MulVec([]float64{1, 1}, y)
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec got %v, want [3 7]", y)
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(-1) did not panic")
		}
	}()
	NewMatrix(-1)
}
