package num

import (
	"math"
	"testing"
)

// TestFactorIntoMatchesFactor checks that refactoring through a reused
// LU reproduces Factor's solution exactly.
func TestFactorIntoMatchesFactor(t *testing.T) {
	a, b := benchMatrix(12)
	want, err := SolveSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f := NewLU(12)
	x := make([]float64, 12)
	for rep := 0; rep < 3; rep++ {
		if err := f.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		f.Solve(b, x)
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("rep %d: x[%d] = %g, want %g", rep, i, x[i], want[i])
			}
		}
	}
}

// TestFactorIntoResizes checks the buffers grow and shrink with the
// system order.
func TestFactorIntoResizes(t *testing.T) {
	f := NewLU(4)
	for _, n := range []int{4, 9, 3} {
		a, b := benchMatrix(n)
		if err := f.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		f.Solve(b, x)
		// Verify residual A·x = b.
		y := make([]float64, n)
		a.MulVec(x, y)
		for i := range y {
			if math.Abs(y[i]-b[i]) > 1e-9 {
				t.Fatalf("n=%d: residual %g at row %d", n, y[i]-b[i], i)
			}
		}
	}
}

// TestFactorIntoSingularRecovers checks a singular matrix leaves the
// receiver usable.
func TestFactorIntoSingularRecovers(t *testing.T) {
	f := NewLU(3)
	if err := f.FactorInto(NewMatrix(3)); err == nil {
		t.Fatal("zero matrix should be singular")
	}
	a, b := benchMatrix(3)
	if err := f.FactorInto(a); err != nil {
		t.Fatalf("refactor after singular: %v", err)
	}
	x := make([]float64, 3)
	f.Solve(b, x)
}

// TestFactorIntoAllocFree asserts the steady-state factor+solve path is
// allocation-free once the buffers exist.
func TestFactorIntoAllocFree(t *testing.T) {
	a, b := benchMatrix(16)
	f := NewLU(16)
	x := make([]float64, 16)
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		f.Solve(b, x)
	})
	if allocs != 0 {
		t.Errorf("FactorInto+Solve allocates %v objects/op, want 0", allocs)
	}
}

func cbenchMatrix(n int) (*CMatrix, []complex128) {
	a, b := benchMatrix(n)
	ca := NewCMatrix(n)
	for i, v := range a.Data {
		ca.Data[i] = complex(v, v/3)
	}
	cb := make([]complex128, n)
	for i, v := range b {
		cb[i] = complex(v, -v)
	}
	return ca, cb
}

// TestCFactorIntoMatchesCFactor is the complex-field analogue.
func TestCFactorIntoMatchesCFactor(t *testing.T) {
	a, b := cbenchMatrix(10)
	want, err := CSolveSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f := NewCLU(10)
	x := make([]complex128, 10)
	for rep := 0; rep < 3; rep++ {
		if err := f.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		f.Solve(b, x)
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("rep %d: x[%d] = %v, want %v", rep, i, x[i], want[i])
			}
		}
	}
}

// TestCFactorIntoAllocFree asserts the complex steady-state path is
// allocation-free.
func TestCFactorIntoAllocFree(t *testing.T) {
	a, b := cbenchMatrix(16)
	f := NewCLU(16)
	x := make([]complex128, 16)
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		f.Solve(b, x)
	})
	if allocs != 0 {
		t.Errorf("CFactorInto+Solve allocates %v objects/op, want 0", allocs)
	}
}

// TestWorkspaceReuse checks Resize keeps capacity and the buffers stay
// consistent across size changes.
func TestWorkspaceReuse(t *testing.T) {
	w := NewWorkspace(8)
	jData := &w.J.Data[0]
	w.Resize(5)
	if &w.J.Data[0] != jData {
		t.Error("shrinking Resize should keep the matrix allocation")
	}
	if w.J.N != 5 || len(w.B) != 5 || len(w.Xn) != 5 {
		t.Fatalf("Resize(5) left sizes J=%d B=%d Xn=%d", w.J.N, len(w.B), len(w.Xn))
	}
	w.Resize(12)
	if w.J.N != 12 || len(w.B) != 12 || len(w.Xn) != 12 {
		t.Fatalf("Resize(12) left sizes J=%d B=%d Xn=%d", w.J.N, len(w.B), len(w.Xn))
	}
	if w.LU == nil {
		t.Fatal("workspace LU not allocated")
	}

	cw := NewCWorkspace(8)
	cw.Resize(3)
	if cw.A.N != 3 || len(cw.B) != 3 || len(cw.X) != 3 || cw.LU == nil {
		t.Fatal("CWorkspace Resize inconsistent")
	}
}
