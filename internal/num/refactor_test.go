package num

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Diagonal boost keeps the random systems comfortably non-singular.
	for i := 0; i < n; i++ {
		m.Add(i, i, 4)
	}
	return m
}

// TestRefactorIntoExactReplay: reusing the pivots of a's own
// factorisation on a itself must reproduce the full factorisation
// bit-for-bit (the elimination performs the same fp operations in the
// same order, only without the search and swaps).
func TestRefactorIntoExactReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(15)
		a := randMatrix(rng, n)
		ref, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		f := NewLU(n)
		reused, err := f.RefactorInto(a, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !reused {
			t.Fatalf("trial %d: pivots not reused on the reference matrix itself", trial)
		}
		for i := range ref.lu {
			if f.lu[i] != ref.lu[i] {
				t.Fatalf("trial %d: lu[%d] = %g, want %g (bit-exact)", trial, i, f.lu[i], ref.lu[i])
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		ref.Solve(b, x1)
		f.Solve(b, x2)
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("trial %d: solve differs at %d: %g vs %g", trial, i, x1[i], x2[i])
			}
		}
	}
}

// TestRefactorIntoPerturbed: small value perturbations keep the reused
// pivot order stable and the solves accurate.
func TestRefactorIntoPerturbed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 12
	a := randMatrix(rng, n)
	ref, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	f := NewLU(n)
	reusedCount := 0
	for trial := 0; trial < 50; trial++ {
		p := a.Clone()
		for i := range p.Data {
			p.Data[i] *= 1 + 0.01*rng.NormFloat64()
		}
		reused, err := f.RefactorInto(p, ref)
		if err != nil {
			t.Fatal(err)
		}
		if reused {
			reusedCount++
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		f.Solve(b, x)
		// Residual check: ||P·x − b|| small.
		r := make([]float64, n)
		p.MulVec(x, r)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9 {
				t.Fatalf("trial %d: residual %g at row %d", trial, math.Abs(r[i]-b[i]), i)
			}
		}
	}
	if reusedCount < 45 {
		t.Errorf("pivots reused only %d/50 times under 1%% perturbation", reusedCount)
	}
}

// TestRefactorIntoFallback: a matrix whose natural pivot order is
// catastrophically wrong for the reference pivots must fall back to
// full pivoting and still solve correctly.
func TestRefactorIntoFallback(t *testing.T) {
	// Reference: identity-dominant, pivots are the natural order.
	n := 4
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	ref, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	// New matrix: tiny leading pivot, needs a swap.
	p := NewMatrix(n)
	p.Set(0, 0, 1e-13)
	p.Set(0, 1, 1)
	p.Set(1, 0, 1)
	p.Set(1, 1, 1)
	p.Set(2, 2, 1)
	p.Set(3, 3, 1)
	f := NewLU(n)
	reused, err := f.RefactorInto(p, ref)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("reused an unstable pivot order")
	}
	b := []float64{1, 2, 3, 4}
	x := make([]float64, n)
	f.Solve(b, x)
	r := make([]float64, n)
	p.MulVec(x, r)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-9 {
			t.Fatalf("fallback solve residual %g at row %d", math.Abs(r[i]-b[i]), i)
		}
	}
}

// TestRefactorIntoNoReference: nil or unfactored references degrade to
// a plain FactorInto.
func TestRefactorIntoNoReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 6)
	f := NewLU(6)
	if reused, err := f.RefactorInto(a, nil); err != nil || reused {
		t.Fatalf("nil ref: reused=%v err=%v", reused, err)
	}
	fresh := NewLU(6)
	g := NewLU(6)
	if reused, err := g.RefactorInto(a, fresh); err != nil || reused {
		t.Fatalf("unfactored ref: reused=%v err=%v", reused, err)
	}
	// Self-reference after a successful factorisation chains the reuse.
	if reused, err := f.RefactorInto(a, f); err != nil || !reused {
		t.Fatalf("self ref: reused=%v err=%v", reused, err)
	}
}

// TestCRefactorIntoExactReplay mirrors the real-field replay test over
// the complex field.
func TestCRefactorIntoExactReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 10
	a := NewCMatrix(n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, 5)
	}
	ref, err := CFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	f := NewCLU(n)
	reused, err := f.RefactorInto(a, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("pivots not reused on the reference matrix itself")
	}
	for i := range ref.lu {
		if f.lu[i] != ref.lu[i] {
			t.Fatalf("lu[%d] = %v, want %v (bit-exact)", i, f.lu[i], ref.lu[i])
		}
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	x1 := make([]complex128, n)
	x2 := make([]complex128, n)
	ref.Solve(b, x1)
	f.Solve(b, x2)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solve differs at %d", i)
		}
	}
}

// TestCRefactorIntoFallback mirrors the fallback test over the complex
// field.
func TestCRefactorIntoFallback(t *testing.T) {
	n := 3
	a := NewCMatrix(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	ref, err := CFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	p := NewCMatrix(n)
	p.Set(0, 0, complex(1e-13, 0))
	p.Set(0, 1, 1)
	p.Set(1, 0, 1)
	p.Set(1, 1, 1)
	p.Set(2, 2, 1)
	f := NewCLU(n)
	reused, err := f.RefactorInto(p, ref)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("reused an unstable pivot order")
	}
}
