package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Mean(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.13808993) > 1e-6 {
		t.Errorf("StdDev = %g, want 2.138", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev of single element should be 0")
	}
	if StdDev(nil) != 0 {
		t.Error("StdDev of nil should be 0")
	}
}

func TestStdDevTranslationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		shift := r.NormFloat64() * 100
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = xs[i] + shift
		}
		return math.Abs(StdDev(xs)-StdDev(ys)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", min, max)
	}
}

func TestMinMaxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Does not mutate input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaved")
	}
}

func TestLinspace(t *testing.T) {
	pts := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
	if pts[len(pts)-1] != 1 {
		t.Error("Linspace endpoint not exact")
	}
}

func TestLogspace(t *testing.T) {
	pts := Logspace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(pts[i]/want[i]-1) > 1e-9 {
			t.Errorf("Logspace[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
}

func TestLogspacePanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Logspace(0, 1, 3) did not panic")
		}
	}()
	Logspace(0, 1, 3)
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
}

func TestNormInf(t *testing.T) {
	if NormInf([]float64{1, -9, 3}) != 9 {
		t.Error("NormInf wrong")
	}
	if NormInf(nil) != 0 {
		t.Error("NormInf(nil) should be 0")
	}
}
