package num

// Workspace bundles the reusable buffers of a real MNA solve: the system
// matrix J, the right-hand side B, the Newton update Xn, and an LU
// factorisation buffer (which carries its own pivot and scratch arrays).
// Solver drivers that are handed a Workspace can iterate without
// allocating. A Workspace serves one goroutine at a time; it is not safe
// for concurrent use.
type Workspace struct {
	J  *Matrix
	B  []float64
	Xn []float64
	LU *LU
}

// NewWorkspace returns a workspace sized for order-n systems.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.Resize(n)
	return w
}

// Resize (re)sizes the workspace for order-n systems, keeping existing
// allocations whenever they are large enough.
func (w *Workspace) Resize(n int) {
	if w.J == nil || cap(w.J.Data) < n*n {
		w.J = &Matrix{N: n, Data: make([]float64, n*n)}
	} else {
		w.J.N = n
		w.J.Data = w.J.Data[:n*n]
	}
	w.B = resizeVec(w.B, n)
	w.Xn = resizeVec(w.Xn, n)
	if w.LU == nil {
		w.LU = NewLU(n)
	}
}

// CWorkspace is the complex-field counterpart of Workspace, used by the
// per-frequency solves of AC and noise analysis.
type CWorkspace struct {
	A  *CMatrix
	B  []complex128
	X  []complex128
	LU *CLU
}

// NewCWorkspace returns a complex workspace sized for order-n systems.
func NewCWorkspace(n int) *CWorkspace {
	w := &CWorkspace{}
	w.Resize(n)
	return w
}

// Resize (re)sizes the workspace for order-n systems, keeping existing
// allocations whenever they are large enough.
func (w *CWorkspace) Resize(n int) {
	if w.A == nil || cap(w.A.Data) < n*n {
		w.A = &CMatrix{N: n, Data: make([]complex128, n*n)}
	} else {
		w.A.N = n
		w.A.Data = w.A.Data[:n*n]
	}
	w.B = resizeCVec(w.B, n)
	w.X = resizeCVec(w.X, n)
	if w.LU == nil {
		w.LU = NewCLU(n)
	}
}

func resizeVec(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

func resizeCVec(v []complex128, n int) []complex128 {
	if cap(v) < n {
		return make([]complex128, n)
	}
	return v[:n]
}
