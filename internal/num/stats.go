package num

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 when fewer than two samples are given.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// MinMax returns the minimum and maximum of xs. It panics on an empty
// slice because there is no sensible zero answer.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("num: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("num: Percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n points evenly spaced on [a, b] inclusive. n must be
// at least 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("num: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// Logspace returns n points evenly spaced on a log scale between a and b
// (both must be positive), inclusive.
func Logspace(a, b float64, n int) []float64 {
	if a <= 0 || b <= 0 {
		panic("num: Logspace needs positive endpoints")
	}
	la, lb := math.Log10(a), math.Log10(b)
	pts := Linspace(la, lb, n)
	for i, p := range pts {
		pts[i] = math.Pow(10, p)
	}
	return pts
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("num: Dot length mismatch")
	}
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// NormInf returns the infinity norm (largest absolute element) of xs.
func NormInf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
