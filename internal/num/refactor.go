// Pivot-reuse refactorisation. Monte Carlo sampling and Newton
// iteration perturb matrix *values* while the *structure* (and, for
// small perturbations, the natural pivot order) stays put. RefactorInto
// exploits that: it repeats the elimination of a reference
// factorisation's pivot order without searching for pivots or swapping
// rows, and falls back to a full partial-pivot FactorInto whenever the
// reused order turns out to be numerically unstable for the new values.
//
// Stability is guarded by three checks that cost no extra pass over the
// input (MNA matrices mix units — conductances ~1e-3 S, gmin 1e-12 S,
// source-branch entries ~1 — so all three are scale-invariant rather
// than thresholds against max|a_ij|). Each depends only on the input
// matrix and the reference pivot order, never on scheduling, so a
// caller that derives its reference deterministically gets bit-identical
// results for any worker count:
//
//  1. every reused pivot must be nonzero and non-NaN;
//  2. every elimination multiplier must satisfy |l_ik| ≤ MultLimit —
//     partial pivoting guarantees |l| ≤ 1, so a large multiplier means
//     the reused order picked a pivot far smaller than its column and
//     element growth is imminent;
//  3. the growth factor max|u_ij| / max_k|u_kk| must stay below
//     GrowthLimit: entries that dwarf every pivot are exactly what
//     back-substitution cannot divide away accurately.
package num

import "math"

// MultLimit bounds the elimination multipliers RefactorInto accepts
// before abandoning the reused pivot order. Full partial pivoting keeps
// |l| ≤ 1; values slightly above 1 arise when a perturbation flips a
// near-tie between pivot candidates and are harmless, so the limit only
// needs to reject genuinely unpivoted eliminations.
const MultLimit = 1e3

// GrowthLimit bounds the ratio of the largest |u_ij| to the largest
// pivot magnitude tolerated by RefactorInto: growth g costs about
// log10(g) of the 16 significant digits of a float64 in the
// back-substitution, so 1e6 keeps ~10 digits — far tighter than the
// Newton and AC tolerances downstream.
const GrowthLimit = 1e6

// RefactorInto refactors a into f's buffers reusing the pivot order of
// ref — typically the full partial-pivot factorisation of a nearby
// matrix with the same structure (the previous Newton iterate, the
// first frequency of an AC sweep, the nominal Monte Carlo sample).
// ref may be f itself, chaining the reuse. When ref holds no valid
// factorisation of the right order, or the reused order fails the
// stability checks above, it falls back to a full FactorInto. The
// returned reused flag reports whether the pivot order was reused; the
// fallback path is deterministic in a and ref alone.
func (f *LU) RefactorInto(a *Matrix, ref *LU) (reused bool, err error) {
	n := a.N
	if ref == nil || !ref.ok || ref.n != n {
		return false, f.FactorInto(a)
	}
	piv := ref.piv
	sign := ref.sign
	f.resize(n) // no-op when f == ref
	f.ok = false
	lu := f.lu
	// Load a with the reference row order applied up front: no swaps
	// during elimination.
	for i := 0; i < n; i++ {
		copy(lu[i*n:i*n+n], a.Data[piv[i]*n:piv[i]*n+n])
	}
	// Growth tracking rides on values while they are still in registers:
	// row 0 is final before elimination starts; row k+1 becomes final
	// during step k (later steps touch only rows below it), so its max is
	// folded as the peeled first iteration of each step writes it. No
	// separate pass over the factors is needed.
	maxU, maxPiv := 0.0, 0.0
	for _, v := range lu[:n] {
		if v < 0 {
			v = -v
		}
		if v > maxU {
			maxU = v
		}
	}
	for k := 0; k < n; k++ {
		rowK := lu[k*n : k*n+n]
		pivot := rowK[k]
		pa := math.Abs(pivot)
		if !(pa > 0) {
			return false, f.FactorInto(a) // zero or NaN pivot
		}
		if pa > maxPiv {
			maxPiv = pa
		}
		if k+1 < n {
			// Peeled i = k+1: this row's values are final after this
			// update — fold the growth maximum as they are written.
			rowI := lu[(k+1)*n : (k+1)*n+n]
			l := rowI[k] / pivot
			if !(l >= -MultLimit && l <= MultLimit) {
				return false, f.FactorInto(a) // unstable (or NaN) multiplier
			}
			rowI[k] = l
			if l == 0 {
				for _, v := range rowI[k+1:] {
					if v < 0 {
						v = -v
					}
					if v > maxU {
						maxU = v
					}
				}
			} else {
				for j := k + 1; j < n; j++ {
					w := rowI[j] - l*rowK[j]
					rowI[j] = w
					if w < 0 {
						w = -w
					}
					if w > maxU {
						maxU = w
					}
				}
			}
		}
		for i := k + 2; i < n; i++ {
			l := lu[i*n+k] / pivot
			if !(l >= -MultLimit && l <= MultLimit) {
				return false, f.FactorInto(a) // unstable (or NaN) multiplier
			}
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := lu[i*n : i*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	if !(maxU <= GrowthLimit*maxPiv) {
		return false, f.FactorInto(a) // runaway element growth
	}
	if f != ref {
		copy(f.piv, piv)
	}
	f.sign = sign
	f.ok = true
	return true, nil
}

// cAbs1 is the 1-norm magnitude |re|+|im| — within √2 of cmplx.Abs and
// far cheaper (no hypot), which is all a stability threshold needs.
func cAbs1(v complex128) float64 {
	return math.Abs(real(v)) + math.Abs(imag(v))
}

// RefactorInto is the complex-field counterpart of LU.RefactorInto: it
// refactors a reusing ref's pivot order with the same stability checks
// (magnitudes taken in the cheap 1-norm), falling back to a full
// partial-pivot FactorInto when the reused order goes bad. ref may be
// f itself.
func (f *CLU) RefactorInto(a *CMatrix, ref *CLU) (reused bool, err error) {
	n := a.N
	if ref == nil || !ref.ok || ref.n != n {
		return false, f.FactorInto(a)
	}
	piv := ref.piv
	f.resize(n)
	f.ok = false
	lu := f.lu
	for i := 0; i < n; i++ {
		copy(lu[i*n:i*n+n], a.Data[piv[i]*n:piv[i]*n+n])
	}
	maxU, maxPiv := 0.0, 0.0
	for k := 0; k < n; k++ {
		rowK := lu[k*n : k*n+n]
		for _, v := range rowK[k:] {
			if av := cAbs1(v); av > maxU {
				maxU = av
			}
		}
		pivot := rowK[k]
		pa := cAbs1(pivot)
		if !(pa > 0) {
			return false, f.FactorInto(a) // zero or NaN pivot
		}
		if pa > maxPiv {
			maxPiv = pa
		}
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / pivot
			if !(cAbs1(l) <= MultLimit) {
				return false, f.FactorInto(a) // unstable (or NaN) multiplier
			}
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := lu[i*n : i*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	if !(maxU <= GrowthLimit*maxPiv) {
		return false, f.FactorInto(a) // runaway element growth
	}
	if f != ref {
		copy(f.piv, piv)
	}
	f.ok = true
	return true, nil
}
