// Package num provides small dense linear-algebra kernels used by the
// circuit simulator: LU factorisation with partial pivoting over the real
// and complex fields, plus vector and statistics helpers.
//
// The matrices that arise from modified nodal analysis of the circuits in
// this repository are small (tens of unknowns), so a dense solver with
// partial pivoting is both simpler and faster than a sparse one.
package num

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrSingular is returned when a factorisation encounters an exactly or
// numerically singular matrix.
var ErrSingular = errors.New("num: singular matrix")

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	N    int       // order (matrices here are square)
	Data []float64 // len N*N, row-major
}

// NewMatrix returns an n-by-n zero matrix.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("num: negative matrix order")
	}
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add adds v to the element at row i, column j. This is the fundamental
// "stamp" operation of modified nodal analysis.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Zero clears every element, keeping the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = m·x. y must have length m.N.
func (m *Matrix) MulVec(x, y []float64) {
	n := m.N
	if len(x) != n || len(y) != n {
		panic("num: MulVec dimension mismatch")
	}
	for i := 0; i < n; i++ {
		row := m.Data[i*n : i*n+n]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += fmt.Sprintf("% 12.5g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an in-place LU factorisation with partial pivoting of a real
// matrix: P·A = L·U with unit-diagonal L stored below the diagonal.
//
// An LU owns its buffers and can be refilled with FactorInto, so hot
// loops (Newton iterations, Monte Carlo samples) factor repeatedly
// without allocating. Because Solve reuses an internal scratch vector,
// an LU must not be shared between goroutines solving concurrently.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	y    []float64 // Solve scratch
	sign int
	ok   bool // a successful factorisation is present (pivots valid)
}

// NewLU returns an LU buffer pre-sized for order-n systems, ready for
// FactorInto.
func NewLU(n int) *LU {
	if n < 0 {
		panic("num: negative LU order")
	}
	return &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n),
		y: make([]float64, n), sign: 1}
}

// Factor computes the LU factorisation of a. The contents of a are not
// modified. It returns ErrSingular when a pivot underflows.
func Factor(a *Matrix) (*LU, error) {
	f := NewLU(a.N)
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// resize (re)sizes the factorisation buffers for order-n systems,
// keeping existing allocations whenever they are large enough.
func (f *LU) resize(n int) {
	if cap(f.lu) < n*n {
		f.lu = make([]float64, n*n)
		f.piv = make([]int, n)
		f.y = make([]float64, n)
	} else {
		f.lu = f.lu[:n*n]
		f.piv = f.piv[:n]
		f.y = f.y[:n]
	}
	f.n = n
}

// FactorInto refactors a into f's buffers without allocating (buffers
// grow only when the order increases). The contents of a are not
// modified. On ErrSingular the receiver stays usable for further calls.
func (f *LU) FactorInto(a *Matrix) error {
	n := a.N
	f.resize(n)
	f.ok = false
	f.sign = 1
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: largest |a[i][k]| for i >= k.
		p := k
		maxAbs := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rowP := lu[p*n : p*n+n]
			rowK := lu[k*n : k*n+n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / pivot
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := lu[i*n : i*n+n]
			rowK := lu[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	f.ok = true
	return nil
}

// Solve solves A·x = b, writing the solution into x. b and x may alias.
// It reuses the factorisation's scratch vector, so concurrent Solve
// calls on one LU are not safe.
func (f *LU) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("num: Solve dimension mismatch")
	}
	// Apply permutation: y = P·b.
	if len(f.y) < n {
		f.y = make([]float64, n)
	}
	y := f.y[:n]
	for i := 0; i < n; i++ {
		y[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu[i*n : i*n+n]
		s := y[i]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu[i*n : i*n+n]
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	copy(x, y)
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveSystem is a convenience wrapper: factor a and solve a·x = b.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	f.Solve(b, x)
	return x, nil
}

// CMatrix is a dense, row-major complex matrix used for AC (small-signal)
// analysis.
type CMatrix struct {
	N    int
	Data []complex128
}

// NewCMatrix returns an n-by-n complex zero matrix.
func NewCMatrix(n int) *CMatrix {
	if n < 0 {
		panic("num: negative matrix order")
	}
	return &CMatrix{N: n, Data: make([]complex128, n*n)}
}

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Add adds v to the element at row i, column j.
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.N+j] += v }

// Zero clears every element, keeping the allocation.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CLU holds an LU factorisation with partial pivoting of a complex
// matrix. Like LU it owns reusable buffers (see FactorInto) and must not
// be shared between goroutines solving concurrently.
type CLU struct {
	n   int
	lu  []complex128
	piv []int
	y   []complex128 // Solve scratch
	ok  bool         // a successful factorisation is present (pivots valid)
}

// NewCLU returns a CLU buffer pre-sized for order-n systems, ready for
// FactorInto.
func NewCLU(n int) *CLU {
	if n < 0 {
		panic("num: negative CLU order")
	}
	return &CLU{n: n, lu: make([]complex128, n*n), piv: make([]int, n),
		y: make([]complex128, n)}
}

// CFactor computes the complex LU factorisation of a without modifying it.
func CFactor(a *CMatrix) (*CLU, error) {
	f := NewCLU(a.N)
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// resize (re)sizes the factorisation buffers for order-n systems,
// keeping existing allocations whenever they are large enough.
func (f *CLU) resize(n int) {
	if cap(f.lu) < n*n {
		f.lu = make([]complex128, n*n)
		f.piv = make([]int, n)
		f.y = make([]complex128, n)
	} else {
		f.lu = f.lu[:n*n]
		f.piv = f.piv[:n]
		f.y = f.y[:n]
	}
	f.n = n
}

// FactorInto refactors a into f's buffers without allocating (buffers
// grow only when the order increases). The contents of a are not
// modified.
func (f *CLU) FactorInto(a *CMatrix) error {
	n := a.N
	f.resize(n)
	f.ok = false
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		p := k
		maxAbs := cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rowP := lu[p*n : p*n+n]
			rowK := lu[k*n : k*n+n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / pivot
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := lu[i*n : i*n+n]
			rowK := lu[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	f.ok = true
	return nil
}

// Solve solves A·x = b over the complex field, writing the result into x.
// It reuses the factorisation's scratch vector, so concurrent Solve
// calls on one CLU are not safe.
func (f *CLU) Solve(b, x []complex128) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("num: CLU.Solve dimension mismatch")
	}
	if len(f.y) < n {
		f.y = make([]complex128, n)
	}
	y := f.y[:n]
	for i := 0; i < n; i++ {
		y[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		row := f.lu[i*n : i*n+n]
		s := y[i]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		row := f.lu[i*n : i*n+n]
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	copy(x, y)
}

// CSolveSystem factors a and solves a·x = b in one call.
func CSolveSystem(a *CMatrix, b []complex128) ([]complex128, error) {
	f, err := CFactor(a)
	if err != nil {
		return nil, err
	}
	x := make([]complex128, len(b))
	f.Solve(b, x)
	return x, nil
}
