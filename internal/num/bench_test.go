package num

import (
	"math/rand"
	"testing"
)

// benchMatrix builds a well-conditioned random system of the size of a
// typical OTA MNA matrix.
func benchMatrix(n int) (*Matrix, []float64) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Add(i, i, float64(2*n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func BenchmarkFactorSolve16(b *testing.B) {
	a, rhs := benchMatrix(16)
	x := make([]float64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := Factor(a)
		if err != nil {
			b.Fatal(err)
		}
		f.Solve(rhs, x)
	}
}

// BenchmarkFactorInto16 is the zero-allocation full-pivot baseline for
// BenchmarkRefactorInto16.
func BenchmarkFactorInto16(b *testing.B) {
	a, rhs := benchMatrix(16)
	f := NewLU(16)
	x := make([]float64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.FactorInto(a); err != nil {
			b.Fatal(err)
		}
		f.Solve(rhs, x)
	}
}

// BenchmarkRefactorInto16 times the pivot-reuse refactorisation the
// Newton iteration and the AC sweep run on their non-first solves.
func BenchmarkRefactorInto16(b *testing.B) {
	a, rhs := benchMatrix(16)
	ref, err := Factor(a)
	if err != nil {
		b.Fatal(err)
	}
	f := NewLU(16)
	x := make([]float64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reused, err := f.RefactorInto(a, ref)
		if err != nil {
			b.Fatal(err)
		}
		if !reused {
			b.Fatal("pivot order not reused")
		}
		f.Solve(rhs, x)
	}
}

func BenchmarkCFactorSolve16(b *testing.B) {
	a, _ := benchMatrix(16)
	ca := NewCMatrix(16)
	for i, v := range a.Data {
		ca.Data[i] = complex(v, v/3)
	}
	rhs := make([]complex128, 16)
	for i := range rhs {
		rhs[i] = complex(1, -1)
	}
	x := make([]complex128, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := CFactor(ca)
		if err != nil {
			b.Fatal(err)
		}
		f.Solve(rhs, x)
	}
}
