package table

import (
	"fmt"

	"analogyield/internal/spline"
)

// Model1D is a one-input table model: y = f(x) with interpolation and
// extrapolation behaviour specified by a Control. It mirrors
// $table_model(x, "file.tbl", "3E").
type Model1D struct {
	ctrl   Control
	interp spline.Interpolator
	comp   *spline.Compiled // nil when the degree has no compiled form
	lo, hi float64
	xs, ys []float64
}

// NewModel1D builds a one-dimensional table model from samples. The
// samples are copied; duplicate x values are rejected.
func NewModel1D(xs, ys []float64, ctrl Control) (*Model1D, error) {
	if ctrl.Ignore {
		return nil, fmt.Errorf("table: cannot ignore the only dimension of a 1-D model")
	}
	itp, err := spline.New(ctrl.Degree, xs, ys)
	if err != nil {
		return nil, err
	}
	lo, hi := itp.Domain()
	m := &Model1D{ctrl: ctrl, interp: itp, lo: lo, hi: hi}
	// Compile eagerly: the model is immutable, and the compiled form is
	// what EvalBatch and the server's query engine evaluate (bit-identical
	// to interp by spline.Compile's contract; nil for quadratic degree).
	m.comp, _ = spline.Compile(itp)
	m.xs = append(m.xs, xs...)
	m.ys = append(m.ys, ys...)
	return m, nil
}

// MustModel1D is NewModel1D that panics on error, for statically-known
// data such as tests and examples.
func MustModel1D(xs, ys []float64, ctrl Control) *Model1D {
	m, err := NewModel1D(xs, ys, ctrl)
	if err != nil {
		panic(err)
	}
	return m
}

// Eval evaluates the table model at x, applying the extrapolation mode
// outside the sampled range.
func (m *Model1D) Eval(x float64) (float64, error) {
	if x < m.lo || x > m.hi {
		switch m.ctrl.Extrap {
		case ExtrapError:
			return 0, fmt.Errorf("%w: x = %g outside [%g, %g]", ErrOutOfRange, x, m.lo, m.hi)
		case ExtrapClamp:
			if x < m.lo {
				x = m.lo
			} else {
				x = m.hi
			}
		case ExtrapLinear:
			// Continue with the boundary slope.
			h := (m.hi - m.lo) * 1e-6
			if h == 0 {
				h = 1e-12
			}
			if x < m.lo {
				slope := (m.interp.Eval(m.lo+h) - m.interp.Eval(m.lo)) / h
				return m.interp.Eval(m.lo) + slope*(x-m.lo), nil
			}
			slope := (m.interp.Eval(m.hi) - m.interp.Eval(m.hi-h)) / h
			return m.interp.Eval(m.hi) + slope*(x-m.hi), nil
		}
	}
	return m.interp.Eval(x), nil
}

// EvalBatch evaluates the model at every x in xs, appending the results
// to dst and returning the extended slice. Points are evaluated on the
// compiled spline with segment-hint reuse, so locally-clustered batches
// (the server's coalesced query batches, sweep evaluations) skip the
// per-point binary search; with a pre-sized dst the call does not
// allocate. Results are bit-identical to calling Eval per point. The
// first out-of-range point in Error extrapolation mode aborts the batch,
// returning the values appended so far alongside the error.
func (m *Model1D) EvalBatch(dst, xs []float64) ([]float64, error) {
	hint := -1
	for _, x := range xs {
		if x < m.lo || x > m.hi {
			switch m.ctrl.Extrap {
			case ExtrapError:
				return dst, fmt.Errorf("%w: x = %g outside [%g, %g]", ErrOutOfRange, x, m.lo, m.hi)
			case ExtrapClamp:
				if x < m.lo {
					x = m.lo
				} else {
					x = m.hi
				}
			case ExtrapLinear:
				// Boundary-slope continuation is off the hot path; reuse
				// the scalar implementation.
				y, err := m.Eval(x)
				if err != nil {
					return dst, err
				}
				dst = append(dst, y)
				continue
			}
		}
		if m.comp != nil {
			var y float64
			y, hint = m.comp.EvalHint(x, hint)
			dst = append(dst, y)
		} else {
			dst = append(dst, m.interp.Eval(x))
		}
	}
	return dst, nil
}

// Domain returns the sampled x range.
func (m *Model1D) Domain() (lo, hi float64) { return m.lo, m.hi }

// Interpolator exposes the fitted interpolant (the server's query
// compiler reads it to build its struct-of-arrays form).
func (m *Model1D) Interpolator() spline.Interpolator { return m.interp }

// Compiled returns the compiled spline behind EvalBatch, or nil when the
// degree has no compiled form (quadratic).
func (m *Model1D) Compiled() *spline.Compiled { return m.comp }

// Control returns the model's control settings.
func (m *Model1D) Control() Control { return m.ctrl }

// Len returns the number of sample points.
func (m *Model1D) Len() int { return len(m.xs) }

// Samples returns copies of the sample vectors in insertion order.
func (m *Model1D) Samples() (xs, ys []float64) {
	return append([]float64(nil), m.xs...), append([]float64(nil), m.ys...)
}

// Invert solves f(x) = y for x within the sampled domain. It is used by
// the yield-targeted design step to map a required performance back to
// the front. Only cubic-degree models support inversion.
func (m *Model1D) Invert(y float64) (float64, error) {
	c, ok := m.interp.(*spline.Cubic)
	if !ok {
		// Fall back: dense scan + local bisection on the interpolant.
		lo, hi := m.lo, m.hi
		const n = 2048
		prevX := lo
		prevY := m.interp.Eval(lo)
		for i := 1; i <= n; i++ {
			x := lo + (hi-lo)*float64(i)/n
			yy := m.interp.Eval(x)
			if (prevY <= y && y <= yy) || (yy <= y && y <= prevY) {
				a, b := prevX, x
				for it := 0; it < 60; it++ {
					mid := 0.5 * (a + b)
					if fm := m.interp.Eval(mid); (fm < y) == (prevY < y) {
						a = mid
					} else {
						b = mid
					}
				}
				return 0.5 * (a + b), nil
			}
			prevX, prevY = x, yy
		}
		return 0, fmt.Errorf("%w: no x with f(x) = %g", ErrOutOfRange, y)
	}
	return c.Invert(y)
}
