package table

import (
	"errors"
	"math"
	"testing"

	"analogyield/internal/spline"
)

func cubicErr() Control { return Control{Degree: spline.DegreeCubic, Extrap: ExtrapError} }

func TestModel1DInterpolates(t *testing.T) {
	m := MustModel1D([]float64{0, 1, 2, 3}, []float64{0, 1, 4, 9}, cubicErr())
	got, err := m.Eval(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.25) > 0.2 {
		t.Errorf("Eval(1.5) = %g, want ~2.25", got)
	}
}

func TestModel1DErrorExtrap(t *testing.T) {
	m := MustModel1D([]float64{0, 1, 2}, []float64{0, 1, 2}, cubicErr())
	if _, err := m.Eval(5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if _, err := m.Eval(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange below range, got %v", err)
	}
}

func TestModel1DClampExtrap(t *testing.T) {
	m := MustModel1D([]float64{0, 1, 2}, []float64{0, 1, 2},
		Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp})
	got, err := m.Eval(10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("clamped Eval(10) = %g, want 2", got)
	}
}

func TestModel1DLinearExtrap(t *testing.T) {
	m := MustModel1D([]float64{0, 1, 2}, []float64{0, 2, 4},
		Control{Degree: spline.DegreeLinear, Extrap: ExtrapLinear})
	got, err := m.Eval(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-6 {
		t.Errorf("linear extrap Eval(3) = %g, want 6", got)
	}
	got, err = m.Eval(-1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+2) > 1e-6 {
		t.Errorf("linear extrap Eval(-1) = %g, want -2", got)
	}
}

func TestModel1DInvert(t *testing.T) {
	m := MustModel1D([]float64{0, 1, 2, 3}, []float64{0, 2, 5, 9}, cubicErr())
	x, err := m.Invert(3)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Eval(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-3) > 1e-8 {
		t.Errorf("Eval(Invert(3)) = %g", y)
	}
}

func TestModel1DInvertLinearDegree(t *testing.T) {
	m := MustModel1D([]float64{0, 1, 2}, []float64{0, 10, 20},
		Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp})
	x, err := m.Invert(15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.5) > 1e-6 {
		t.Errorf("Invert(15) = %g, want 1.5", x)
	}
}

func TestModel1DRejectsIgnore(t *testing.T) {
	if _, err := NewModel1D([]float64{0, 1}, []float64{0, 1}, Control{Ignore: true}); err == nil {
		t.Fatal("Ignore control accepted for 1-D model")
	}
}

func TestCurveModel2DOnFront(t *testing.T) {
	// Synthetic Pareto-like front: x2 decreases as x1 increases;
	// output is a smooth function along the front.
	var x1s, x2s, ys []float64
	for i := 0; i <= 20; i++ {
		g := 45 + float64(i)*0.5 // "gain"
		p := 85 - float64(i)*0.7 // "pm"
		x1s = append(x1s, g)
		x2s = append(x2s, p)
		ys = append(ys, 10+0.3*g-0.1*p)
	}
	m, err := NewCurveModel2D(x1s, x2s, ys, cubicErr(), cubicErr())
	if err != nil {
		t.Fatal(err)
	}
	// Query exactly on a sample.
	got, err := m.Eval(x1s[7], x2s[7])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ys[7]) > 1e-6 {
		t.Errorf("Eval on sample = %g, want %g", got, ys[7])
	}
	// Query between samples, on the front.
	gq := 0.5 * (x1s[7] + x1s[8])
	pq := 0.5 * (x2s[7] + x2s[8])
	got, err = m.Eval(gq, pq)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + 0.3*gq - 0.1*pq
	if math.Abs(got-want) > 0.05 {
		t.Errorf("Eval between samples = %g, want ~%g", got, want)
	}
}

func TestCurveModel2DFarQueryErrors(t *testing.T) {
	x1s := []float64{0, 1, 2, 3}
	x2s := []float64{3, 2, 1, 0}
	ys := []float64{0, 1, 2, 3}
	m, err := NewCurveModel2D(x1s, x2s, ys, cubicErr(), cubicErr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Eval(10, 10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("far query: want ErrOutOfRange, got %v", err)
	}
}

func TestCurveModel2DClampAcceptsFarQuery(t *testing.T) {
	x1s := []float64{0, 1, 2, 3}
	x2s := []float64{3, 2, 1, 0}
	ys := []float64{0, 1, 2, 3}
	cl := Control{Degree: spline.DegreeCubic, Extrap: ExtrapClamp}
	m, err := NewCurveModel2D(x1s, x2s, ys, cl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Eval(10, 10); err != nil {
		t.Fatalf("clamp mode should not error: %v", err)
	}
}

func TestCurveModel2DProjectRecoversParameter(t *testing.T) {
	var x1s, x2s, ys []float64
	for i := 0; i <= 10; i++ {
		x1s = append(x1s, float64(i))
		x2s = append(x2s, 10-float64(i))
		ys = append(ys, float64(i)*2)
	}
	m, err := NewCurveModel2D(x1s, x2s, ys, cubicErr(), cubicErr())
	if err != nil {
		t.Fatal(err)
	}
	u, dist := m.Project(5, 5)
	if dist > 1e-6 {
		t.Errorf("distance to on-curve point = %g", dist)
	}
	if math.Abs(m.EvalAt(u)-10) > 1e-3 {
		t.Errorf("EvalAt(Project) = %g, want 10", m.EvalAt(u))
	}
}

func TestCurveModel2DDedupsAndSorts(t *testing.T) {
	x1s := []float64{2, 0, 1, 2} // duplicate x1 = 2
	x2s := []float64{0, 2, 1, 0}
	ys := []float64{4, 0, 2, 4}
	m, err := NewCurveModel2D(x1s, x2s, ys, cubicErr(), cubicErr())
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3 after dedup", m.Len())
	}
}

func TestCurveModel2DRejectsTiny(t *testing.T) {
	if _, err := NewCurveModel2D([]float64{0, 1}, []float64{0, 1}, []float64{0, 1},
		cubicErr(), cubicErr()); err == nil {
		t.Fatal("2-point curve accepted")
	}
}

func TestGridModel2DBilinearPlane(t *testing.T) {
	// z = 2*x1 + 3*x2 is exact for any degree.
	x1s := []float64{0, 1, 2}
	x2s := []float64{0, 10, 20}
	z := make([][]float64, len(x1s))
	for r, a := range x1s {
		z[r] = make([]float64, len(x2s))
		for c, b := range x2s {
			z[r][c] = 2*a + 3*b
		}
	}
	g, err := NewGridModel2D(x1s, x2s, z,
		Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp},
		Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Eval(1.5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-48) > 1e-9 {
		t.Errorf("Eval(1.5, 15) = %g, want 48", got)
	}
}

func TestGridModel2DErrorExtrap(t *testing.T) {
	x1s := []float64{0, 1, 2}
	x2s := []float64{0, 1, 2}
	z := [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	g, err := NewGridModel2D(x1s, x2s, z, cubicErr(), cubicErr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Eval(5, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("x1 out of range accepted")
	}
	if _, err := g.Eval(1, -3); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("x2 out of range accepted")
	}
}

func TestGridModel2DIgnoreDimension(t *testing.T) {
	x1s := []float64{0, 1, 2}
	x2s := []float64{0, 1, 2}
	z := [][]float64{{0, 99, 99}, {1, 99, 99}, {2, 99, 99}}
	g, err := NewGridModel2D(x1s, x2s, z,
		Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp},
		Control{Ignore: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Eval(1.5, 123456)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("ignore-x2 Eval = %g, want 1.5", got)
	}
}

func TestGridModel2DShapeValidation(t *testing.T) {
	if _, err := NewGridModel2D([]float64{0, 1}, []float64{0, 1},
		[][]float64{{1, 2}}, cubicErr(), cubicErr()); err == nil {
		t.Fatal("ragged z accepted")
	}
	if _, err := NewGridModel2D([]float64{0, 0, 1}, []float64{0, 1, 2},
		[][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}, cubicErr(), cubicErr()); err == nil {
		t.Fatal("duplicate axis coordinate accepted")
	}
}

func TestGridModel2DSortsAxes(t *testing.T) {
	// Axes given out of order must still evaluate correctly.
	x1s := []float64{2, 0, 1}
	x2s := []float64{1, 0}
	// z[r][c] corresponds to the *given* order.
	z := [][]float64{
		{21, 20}, // x1=2: z = 10*x1 + x2
		{1, 0},   // x1=0
		{11, 10}, // x1=1
	}
	g, err := NewGridModel2D(x1s, x2s, z,
		Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp},
		Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Eval(1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-15.5) > 1e-9 {
		t.Errorf("Eval(1.5, 0.5) = %g, want 15.5", got)
	}
}

func TestGridModel2DMonotoneDegree(t *testing.T) {
	// The PCHIP degree also works in gridded tables.
	x1s := []float64{0, 1, 2}
	x2s := []float64{0, 1, 2}
	z := [][]float64{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}} // plane x1+x2
	mc := Control{Degree: spline.DegreeMonotoneCubic, Extrap: ExtrapClamp}
	g, err := NewGridModel2D(x1s, x2s, z, mc, mc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Eval(0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("PCHIP grid Eval = %g, want 2", got)
	}
}

func TestModel1DMonotoneDegreeInvert(t *testing.T) {
	m := MustModel1D([]float64{0, 1, 2, 3}, []float64{0, 2, 8, 9},
		Control{Degree: spline.DegreeMonotoneCubic, Extrap: ExtrapError})
	x, err := m.Invert(5)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Eval(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-5) > 1e-6 {
		t.Errorf("PCHIP Invert round trip = %g", y)
	}
}
