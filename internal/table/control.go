// Package table implements Verilog-A style $table_model() lookup tables:
// control-string parsing ("3E", "1L", "2C", "I"), 1-D models, 2-D models
// over gridded data and over curve (Pareto-manifold) data, and the .tbl
// text file format used to exchange data between the flow stages.
//
// The paper stores the optimal performance model and the variation model
// in such data files and reads them back through $table_model() with a
// cubic-spline, no-extrapolation control string ("3E").
package table

import (
	"errors"
	"fmt"
	"strings"

	"analogyield/internal/spline"
)

// ExtrapMode selects the behaviour of a table model outside its sampled
// range, mirroring the Verilog-A control-string letters.
type ExtrapMode int

const (
	// ExtrapError reports ErrOutOfRange for queries outside the sampled
	// data (Verilog-A "E"). The paper uses this mode "in order to avoid
	// approximation of the data beyond the sampled data points".
	ExtrapError ExtrapMode = iota
	// ExtrapClamp holds the boundary value constant (Verilog-A "C").
	ExtrapClamp
	// ExtrapLinear extends with the boundary slope (Verilog-A "L").
	ExtrapLinear
)

// String returns the Verilog-A letter for the mode.
func (m ExtrapMode) String() string {
	switch m {
	case ExtrapError:
		return "E"
	case ExtrapClamp:
		return "C"
	case ExtrapLinear:
		return "L"
	}
	return "?"
}

// ErrOutOfRange is reported by evaluations in ExtrapError mode when a
// query lies outside the sampled range.
var ErrOutOfRange = errors.New("table: query outside sampled data range")

// Control describes interpolation behaviour along one table dimension.
type Control struct {
	Degree spline.Degree // 1, 2 or 3
	Extrap ExtrapMode
	Ignore bool // Verilog-A "I": dimension not used for interpolation
}

// String renders the control in Verilog-A syntax.
func (c Control) String() string {
	if c.Ignore {
		return "I"
	}
	return fmt.Sprintf("%d%s", c.Degree, c.Extrap)
}

// ParseControl parses a single-dimension control such as "3E", "1L",
// "2C", "3" (degree with default clamp extrapolation) or "I".
func ParseControl(s string) (Control, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		// Verilog-A default: linear interpolation, constant extrapolation.
		return Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp}, nil
	}
	if strings.EqualFold(s, "I") {
		return Control{Ignore: true}, nil
	}
	var c Control
	switch s[0] {
	case '1':
		c.Degree = spline.DegreeLinear
	case '2':
		c.Degree = spline.DegreeQuadratic
	case '3':
		c.Degree = spline.DegreeCubic
	default:
		return Control{}, fmt.Errorf("table: bad interpolation degree in control %q", s)
	}
	rest := s[1:]
	switch strings.ToUpper(rest) {
	case "":
		c.Extrap = ExtrapClamp
	case "E":
		c.Extrap = ExtrapError
	case "C":
		c.Extrap = ExtrapClamp
	case "L":
		c.Extrap = ExtrapLinear
	default:
		return Control{}, fmt.Errorf("table: bad extrapolation letter in control %q", s)
	}
	return c, nil
}

// ParseControlString parses a comma-separated multi-dimension control
// string such as "3E,3E".
func ParseControlString(s string) ([]Control, error) {
	parts := strings.Split(s, ",")
	out := make([]Control, len(parts))
	for i, p := range parts {
		c, err := ParseControl(p)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
