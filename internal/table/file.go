package table

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// File is the in-memory form of a .tbl data file: named columns and rows
// of numeric data. The on-disk format matches what Verilog-A
// $table_model consumes — whitespace-separated numbers, one sample per
// line — extended with optional '#' comments and an optional
// '# columns:' header naming the columns.
type File struct {
	Columns []string    // optional names, may be empty
	Rows    [][]float64 // each row has the same width
}

// NewFile creates an empty table file with the given column names.
func NewFile(columns ...string) *File {
	return &File{Columns: columns}
}

// AddRow appends a data row. The row width must match earlier rows (and
// the column count, when columns are named).
func (f *File) AddRow(vals ...float64) error {
	if len(f.Columns) > 0 && len(vals) != len(f.Columns) {
		return fmt.Errorf("table: row has %d values, file has %d columns", len(vals), len(f.Columns))
	}
	if len(f.Rows) > 0 && len(vals) != len(f.Rows[0]) {
		return fmt.Errorf("table: row has %d values, earlier rows have %d", len(vals), len(f.Rows[0]))
	}
	f.Rows = append(f.Rows, append([]float64(nil), vals...))
	return nil
}

// Column returns a copy of column i across all rows.
func (f *File) Column(i int) []float64 {
	out := make([]float64, len(f.Rows))
	for r, row := range f.Rows {
		out[r] = row[i]
	}
	return out
}

// ColumnByName returns the column with the given header name.
func (f *File) ColumnByName(name string) ([]float64, error) {
	for i, c := range f.Columns {
		if c == name {
			return f.Column(i), nil
		}
	}
	return nil, fmt.Errorf("table: no column named %q", name)
}

// Width returns the number of columns (from the header if present,
// otherwise from the first row).
func (f *File) Width() int {
	if len(f.Columns) > 0 {
		return len(f.Columns)
	}
	if len(f.Rows) > 0 {
		return len(f.Rows[0])
	}
	return 0
}

// Write serialises the table in .tbl format.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if len(f.Columns) > 0 {
		if _, err := fmt.Fprintf(bw, "# columns: %s\n", strings.Join(f.Columns, " ")); err != nil {
			return err
		}
	}
	for _, row := range f.Rows {
		for i, v := range row {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.10g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the table to the named path.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Read parses a .tbl stream.
func Read(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if rest, ok := strings.CutPrefix(body, "columns:"); ok {
				f.Columns = strings.Fields(rest)
			}
			continue
		}
		fields := strings.Fields(line)
		row := make([]float64, len(fields))
		for i, fld := range fields {
			v, err := strconv.ParseFloat(fld, 64)
			if err != nil {
				return nil, fmt.Errorf("table: line %d: bad number %q: %v", lineNo, fld, err)
			}
			row[i] = v
		}
		if len(f.Rows) > 0 && len(row) != len(f.Rows[0]) {
			return nil, fmt.Errorf("table: line %d: %d values, earlier rows have %d",
				lineNo, len(row), len(f.Rows[0]))
		}
		f.Rows = append(f.Rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Columns) > 0 && len(f.Rows) > 0 && len(f.Rows[0]) != len(f.Columns) {
		return nil, fmt.Errorf("table: header names %d columns but rows have %d",
			len(f.Columns), len(f.Rows[0]))
	}
	return f, nil
}

// ReadFile parses the named .tbl file.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}

// Load1D builds a Model1D from the first two columns of a .tbl file,
// mirroring $table_model(x, "file.tbl", ctrl).
func Load1D(path, controlString string) (*Model1D, error) {
	f, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	if f.Width() < 2 {
		return nil, fmt.Errorf("table: %s: need at least 2 columns for a 1-D model", path)
	}
	ctrls, err := ParseControlString(controlString)
	if err != nil {
		return nil, err
	}
	return NewModel1D(f.Column(0), f.Column(1), ctrls[0])
}

// LoadCurve2D builds a CurveModel2D from the first three columns of a
// .tbl file, mirroring $table_model(x1, x2, "file.tbl", "3E,3E") over
// front data.
func LoadCurve2D(path, controlString string) (*CurveModel2D, error) {
	f, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	if f.Width() < 3 {
		return nil, fmt.Errorf("table: %s: need at least 3 columns for a 2-D model", path)
	}
	ctrls, err := ParseControlString(controlString)
	if err != nil {
		return nil, err
	}
	if len(ctrls) < 2 {
		return nil, fmt.Errorf("table: control string %q has fewer than 2 dimensions", controlString)
	}
	return NewCurveModel2D(f.Column(0), f.Column(1), f.Column(2), ctrls[0], ctrls[1])
}
