package table

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	f := NewFile("gain", "delta")
	if err := f.AddRow(49.78, 0.52); err != nil {
		t.Fatal(err)
	}
	if err := f.AddRow(50.17, 0.51); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 2 || got.Columns[0] != "gain" {
		t.Errorf("columns = %v", got.Columns)
	}
	if len(got.Rows) != 2 || got.Rows[1][1] != 0.51 {
		t.Errorf("rows = %v", got.Rows)
	}
}

func TestFileAddRowWidthMismatch(t *testing.T) {
	f := NewFile("a", "b")
	if err := f.AddRow(1); err == nil {
		t.Fatal("short row accepted")
	}
	f2 := &File{}
	if err := f2.AddRow(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := f2.AddRow(1, 2, 3); err == nil {
		t.Fatal("inconsistent row accepted")
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n1 2\n# another\n3 4\n"
	f, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(f.Rows))
	}
}

func TestReadBadNumber(t *testing.T) {
	if _, err := Read(strings.NewReader("1 x\n")); err == nil {
		t.Fatal("bad number accepted")
	}
}

func TestReadRaggedRows(t *testing.T) {
	if _, err := Read(strings.NewReader("1 2\n3\n")); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestReadHeaderWidthMismatch(t *testing.T) {
	if _, err := Read(strings.NewReader("# columns: a b c\n1 2\n")); err == nil {
		t.Fatal("header/row width mismatch accepted")
	}
}

func TestColumnByName(t *testing.T) {
	f := NewFile("x", "y")
	_ = f.AddRow(1, 10)
	_ = f.AddRow(2, 20)
	col, err := f.ColumnByName("y")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 10 || col[1] != 20 {
		t.Errorf("column y = %v", col)
	}
	if _, err := f.ColumnByName("z"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestWriteReadFileAndLoad1D(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gain_delta.tbl")
	f := NewFile("gain", "delta")
	for i := 0; i < 8; i++ {
		_ = f.AddRow(49+float64(i)*0.3, 0.52-float64(i)*0.01)
	}
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := Load1D(path, "3E")
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Eval(49.9)
	if err != nil {
		t.Fatal(err)
	}
	// Data is linear in x, so the cubic spline reproduces it closely.
	want := 0.52 - (49.9-49)/0.3*0.01
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Eval(49.9) = %g, want %g", got, want)
	}
}

func TestLoadCurve2D(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lp1_data.tbl")
	f := NewFile("gain", "pm", "w1")
	for i := 0; i <= 10; i++ {
		g := 49 + 0.3*float64(i)
		p := 77 - 0.4*float64(i)
		_ = f.AddRow(g, p, 10+float64(i))
	}
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := LoadCurve2D(path, "3E,3E")
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Eval(49+0.3*5, 77-0.4*5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-15) > 1e-3 {
		t.Errorf("Eval on sample = %g, want 15", got)
	}
}

func TestLoad1DTooFewColumns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.tbl")
	f := &File{}
	_ = f.AddRow(1)
	_ = f.AddRow(2)
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load1D(path, "3E"); err == nil {
		t.Fatal("1-column file accepted for 1-D model")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load1D("/nonexistent/x.tbl", "3E"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadCurve2D("/nonexistent/x.tbl", "3E,3E"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWidth(t *testing.T) {
	f := NewFile("a", "b", "c")
	if f.Width() != 3 {
		t.Error("Width from header wrong")
	}
	g := &File{}
	_ = g.AddRow(1, 2)
	if g.Width() != 2 {
		t.Error("Width from rows wrong")
	}
	if (&File{}).Width() != 0 {
		t.Error("empty Width should be 0")
	}
}
