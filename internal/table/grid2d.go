package table

import (
	"fmt"
	"sort"

	"analogyield/internal/spline"
)

// GridModel2D is a two-input table model over a full rectangular grid,
// the classic $table_model(x1, x2, ...) case when the data file covers
// every (x1, x2) combination. Interpolation is performed by successive
// one-dimensional interpolation: first along x2 within each x1 row, then
// along x1 across the row results.
type GridModel2D struct {
	ctrl1, ctrl2 Control
	x1s          []float64   // sorted grid coordinates, len R
	x2s          []float64   // sorted grid coordinates, len C
	z            [][]float64 // z[r][c] value at (x1s[r], x2s[c])
}

// NewGridModel2D builds a gridded 2-D model. x1s and x2s are the axis
// coordinates (will be sorted; z rows/columns are permuted accordingly)
// and z[r][c] is the value at (x1s[r], x2s[c]).
func NewGridModel2D(x1s, x2s []float64, z [][]float64, ctrl1, ctrl2 Control) (*GridModel2D, error) {
	if len(z) != len(x1s) {
		return nil, fmt.Errorf("table: z has %d rows, want %d", len(z), len(x1s))
	}
	for r := range z {
		if len(z[r]) != len(x2s) {
			return nil, fmt.Errorf("table: z row %d has %d cols, want %d", r, len(z[r]), len(x2s))
		}
	}
	minPts := map[spline.Degree]int{
		spline.DegreeLinear:        2,
		spline.DegreeQuadratic:     3,
		spline.DegreeCubic:         3,
		spline.DegreeMonotoneCubic: 2,
	}
	if len(x1s) < minPts[ctrl1.Degree] || len(x2s) < minPts[ctrl2.Degree] {
		return nil, fmt.Errorf("table: grid %dx%d too small for degrees %d/%d",
			len(x1s), len(x2s), ctrl1.Degree, ctrl2.Degree)
	}
	// Sort axes, permuting z.
	p1 := argsort(x1s)
	p2 := argsort(x2s)
	sx1 := permute(x1s, p1)
	sx2 := permute(x2s, p2)
	if hasDup(sx1) || hasDup(sx2) {
		return nil, fmt.Errorf("table: duplicate grid coordinates")
	}
	sz := make([][]float64, len(sx1))
	for r := range sz {
		row := make([]float64, len(sx2))
		for c := range row {
			row[c] = z[p1[r]][p2[c]]
		}
		sz[r] = row
	}
	return &GridModel2D{ctrl1: ctrl1, ctrl2: ctrl2, x1s: sx1, x2s: sx2, z: sz}, nil
}

func argsort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

func permute(xs []float64, p []int) []float64 {
	out := make([]float64, len(xs))
	for i, j := range p {
		out[i] = xs[j]
	}
	return out
}

func hasDup(sorted []float64) bool {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return true
		}
	}
	return false
}

func applyExtrap(x, lo, hi float64, mode ExtrapMode) (float64, error) {
	if x >= lo && x <= hi {
		return x, nil
	}
	switch mode {
	case ExtrapError:
		return 0, fmt.Errorf("%w: %g outside [%g, %g]", ErrOutOfRange, x, lo, hi)
	case ExtrapClamp:
		if x < lo {
			return lo, nil
		}
		return hi, nil
	default: // ExtrapLinear: let the interpolant extend naturally.
		return x, nil
	}
}

// Eval evaluates the gridded model at (x1, x2).
func (g *GridModel2D) Eval(x1, x2 float64) (float64, error) {
	var err error
	if !g.ctrl1.Ignore {
		if x1, err = applyExtrap(x1, g.x1s[0], g.x1s[len(g.x1s)-1], g.ctrl1.Extrap); err != nil {
			return 0, err
		}
	}
	if !g.ctrl2.Ignore {
		if x2, err = applyExtrap(x2, g.x2s[0], g.x2s[len(g.x2s)-1], g.ctrl2.Extrap); err != nil {
			return 0, err
		}
	}
	if g.ctrl1.Ignore && g.ctrl2.Ignore {
		return 0, fmt.Errorf("table: both dimensions ignored")
	}
	if g.ctrl2.Ignore {
		// Interpolate along x1 using column 0.
		col := make([]float64, len(g.x1s))
		for r := range col {
			col[r] = g.z[r][0]
		}
		itp, err := spline.New(g.ctrl1.Degree, g.x1s, col)
		if err != nil {
			return 0, err
		}
		return itp.Eval(x1), nil
	}
	rowVals := make([]float64, len(g.x1s))
	for r := range g.x1s {
		itp, err := spline.New(g.ctrl2.Degree, g.x2s, g.z[r])
		if err != nil {
			return 0, err
		}
		rowVals[r] = itp.Eval(x2)
	}
	if g.ctrl1.Ignore {
		return rowVals[0], nil
	}
	itp, err := spline.New(g.ctrl1.Degree, g.x1s, rowVals)
	if err != nil {
		return 0, err
	}
	return itp.Eval(x1), nil
}

// Shape returns the grid dimensions (rows along x1, cols along x2).
func (g *GridModel2D) Shape() (rows, cols int) { return len(g.x1s), len(g.x2s) }
