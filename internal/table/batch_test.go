package table

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"analogyield/internal/spline"
)

func batchModel(t *testing.T, deg spline.Degree, extrap ExtrapMode) *Model1D {
	t.Helper()
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = float64(i) * 0.5
		ys[i] = math.Sin(float64(i)/5) * 40
	}
	m, err := NewModel1D(xs, ys, Control{Degree: deg, Extrap: extrap})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEvalBatchMatchesEval checks the batch path against per-point Eval
// bit for bit, across every compiled degree and extrapolation mode.
func TestEvalBatchMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, deg := range []spline.Degree{spline.DegreeLinear, spline.DegreeCubic, spline.DegreeMonotoneCubic} {
		for _, ex := range []ExtrapMode{ExtrapClamp, ExtrapLinear, ExtrapError} {
			m := batchModel(t, deg, ex)
			lo, hi := m.Domain()
			qs := make([]float64, 300)
			for i := range qs {
				qs[i] = lo + (hi-lo)*rng.Float64()
				if ex != ExtrapError && i%17 == 0 {
					qs[i] = lo - 2 + (hi-lo+4)*rng.Float64() // wander outside
				}
			}
			dst := make([]float64, 0, len(qs))
			out, err := m.EvalBatch(dst, qs)
			if err != nil {
				t.Fatalf("deg %d extrap %d: EvalBatch: %v", deg, ex, err)
			}
			if len(out) != len(qs) {
				t.Fatalf("deg %d: %d results, want %d", deg, len(out), len(qs))
			}
			for i, x := range qs {
				want, err := m.Eval(x)
				if err != nil {
					t.Fatalf("Eval(%g): %v", x, err)
				}
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("deg %d extrap %d: batch[%d] = %g, Eval = %g", deg, ex, i, out[i], want)
				}
			}
		}
	}
}

// TestEvalBatchOutOfRange: in Error mode the first out-of-range point
// aborts the batch with ErrOutOfRange and the partial prefix.
func TestEvalBatchOutOfRange(t *testing.T) {
	m := batchModel(t, spline.DegreeCubic, ExtrapError)
	lo, hi := m.Domain()
	qs := []float64{lo + 1, lo + 2, hi + 5, lo + 3}
	out, err := m.EvalBatch(nil, qs)
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if len(out) != 2 {
		t.Fatalf("partial prefix has %d values, want 2", len(out))
	}
}

// TestEvalBatchNoAlloc: a pre-sized destination makes the steady-state
// batch path allocation-free.
func TestEvalBatchNoAlloc(t *testing.T) {
	m := batchModel(t, spline.DegreeMonotoneCubic, ExtrapError)
	lo, hi := m.Domain()
	qs := make([]float64, 256)
	for i := range qs {
		qs[i] = lo + (hi-lo)*float64(i)/float64(len(qs)-1)
	}
	dst := make([]float64, 0, len(qs))
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		if _, err = m.EvalBatch(dst[:0], qs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EvalBatch allocates %.1f/op, want 0", allocs)
	}
}
