package table

import (
	"strings"
	"testing"
)

// FuzzParseControlString drives the Verilog-A control-string parser
// with arbitrary input. Two properties must hold for every accepted
// string: one control per comma-separated field, and rendering the
// parsed controls back through Control.String round-trips to an
// identical parse (the canonical form is a fixed point).
func FuzzParseControlString(f *testing.F) {
	for _, seed := range []string{
		"3E", // the paper's control string
		"1L", "2C", "3", "I", "i",
		"3E,3E",     // 2-D tables
		"1l, 2c ,I", // whitespace and case folding
		"",
		",",
		"4E", "3X", "E3", "3EE", "-1E", "3E,3E,3E,3E",
		"\t3e\n", "³E", "1,2,3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ctrls, err := ParseControlString(s)
		if err != nil {
			return // rejected input only needs to not panic
		}
		if want := strings.Count(s, ",") + 1; len(ctrls) != want {
			t.Fatalf("%q: %d controls for %d fields", s, len(ctrls), want)
		}

		// Canonicalise and reparse: must accept and agree exactly.
		parts := make([]string, len(ctrls))
		for i, c := range ctrls {
			parts[i] = c.String()
		}
		canon := strings.Join(parts, ",")
		again, err := ParseControlString(canon)
		if err != nil {
			t.Fatalf("%q: canonical form %q rejected: %v", s, canon, err)
		}
		for i := range ctrls {
			if again[i] != ctrls[i] {
				t.Fatalf("%q: control %d changed across round trip: %+v vs %+v",
					s, i, ctrls[i], again[i])
			}
		}
		// The canonical form itself is stable.
		parts2 := make([]string, len(again))
		for i, c := range again {
			parts2[i] = c.String()
		}
		if got := strings.Join(parts2, ","); got != canon {
			t.Fatalf("%q: canonical form not a fixed point: %q vs %q", s, got, canon)
		}
	})
}
