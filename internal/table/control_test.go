package table

import (
	"testing"

	"analogyield/internal/spline"
)

func TestParseControl(t *testing.T) {
	cases := []struct {
		in   string
		want Control
	}{
		{"3E", Control{Degree: spline.DegreeCubic, Extrap: ExtrapError}},
		{"1L", Control{Degree: spline.DegreeLinear, Extrap: ExtrapLinear}},
		{"2C", Control{Degree: spline.DegreeQuadratic, Extrap: ExtrapClamp}},
		{"3", Control{Degree: spline.DegreeCubic, Extrap: ExtrapClamp}},
		{"I", Control{Ignore: true}},
		{"i", Control{Ignore: true}},
		{"", Control{Degree: spline.DegreeLinear, Extrap: ExtrapClamp}},
		{" 3e ", Control{Degree: spline.DegreeCubic, Extrap: ExtrapError}},
	}
	for _, c := range cases {
		got, err := ParseControl(c.in)
		if err != nil {
			t.Errorf("ParseControl(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseControl(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseControlErrors(t *testing.T) {
	for _, in := range []string{"4E", "3X", "0E", "EE"} {
		if _, err := ParseControl(in); err == nil {
			t.Errorf("ParseControl(%q): want error", in)
		}
	}
}

func TestParseControlString(t *testing.T) {
	ctrls, err := ParseControlString("3E,3E")
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrls) != 2 {
		t.Fatalf("got %d controls, want 2", len(ctrls))
	}
	for i, c := range ctrls {
		if c.Degree != spline.DegreeCubic || c.Extrap != ExtrapError {
			t.Errorf("control %d = %+v, want cubic/error", i, c)
		}
	}
}

func TestParseControlStringBadDim(t *testing.T) {
	if _, err := ParseControlString("3E,9Z"); err == nil {
		t.Fatal("bad second dimension accepted")
	}
}

func TestControlString(t *testing.T) {
	c := Control{Degree: spline.DegreeCubic, Extrap: ExtrapError}
	if c.String() != "3E" {
		t.Errorf("String = %q, want 3E", c.String())
	}
	if (Control{Ignore: true}).String() != "I" {
		t.Error("Ignore control should render as I")
	}
}

func TestExtrapModeString(t *testing.T) {
	if ExtrapError.String() != "E" || ExtrapClamp.String() != "C" || ExtrapLinear.String() != "L" {
		t.Error("ExtrapMode.String wrong")
	}
	if ExtrapMode(9).String() != "?" {
		t.Error("unknown mode should render as ?")
	}
}
