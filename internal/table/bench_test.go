package table

import (
	"testing"

	"analogyield/internal/spline"
)

func BenchmarkModel1DEval(b *testing.B) {
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) * 0.5
	}
	m := MustModel1D(xs, ys, Control{Degree: spline.DegreeMonotoneCubic, Extrap: ExtrapError})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Eval(float64(i%198) + 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModel1DEvalBatch is the grouped-query staging path: 256
// points through the compiled spline with hint reuse, zero allocations.
func BenchmarkModel1DEvalBatch(b *testing.B) {
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) * 0.5
	}
	m := MustModel1D(xs, ys, Control{Degree: spline.DegreeMonotoneCubic, Extrap: ExtrapError})
	qs := make([]float64, 256)
	for i := range qs {
		qs[i] = 198 * float64(i) / float64(len(qs)-1)
	}
	dst := make([]float64, 0, len(qs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, err = m.EvalBatch(dst[:0], qs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCurveProject times the front projection behind every
// $table_model(perf0, perf1, ...) parameter lookup.
func BenchmarkCurveProject(b *testing.B) {
	var x1s, x2s, ys []float64
	for i := 0; i < 150; i++ {
		x1s = append(x1s, float64(i))
		x2s = append(x2s, 150-float64(i))
		ys = append(ys, float64(i)*2)
	}
	c := Control{Degree: spline.DegreeMonotoneCubic, Extrap: ExtrapError}
	m, err := NewCurveModel2D(x1s, x2s, ys, c, c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Project(float64(i%150), 150-float64(i%150))
	}
}
