package table

import (
	"fmt"
	"math"
	"sort"

	"analogyield/internal/spline"
)

// CurveModel2D is a two-input table model whose sample points lie on a
// one-dimensional manifold — exactly the situation of the paper's
// lp1..lp4 = $table_model(gain_prop, pm_prop, "lpN_data.tbl", "3E,3E")
// lookups, where (gain, pm) pairs come from a Pareto front.
//
// Gridded bilinear/bicubic interpolation is undefined for such data, so
// the model parameterises the samples by normalised arc length u, fits
// splines X1(u), X2(u), Y(u), projects a query point onto the curve
// (nearest point in normalised input space) and returns Y at the
// projected parameter. Queries far from the curve are out-of-range in
// "E" mode, matching the paper's refusal to extrapolate.
type CurveModel2D struct {
	ctrl1, ctrl2 Control
	x1s, x2s, ys []float64 // samples ordered along the curve
	u            []float64 // normalised arc-length parameter per sample
	fx1, fx2, fy spline.Interpolator
	span1, span2 float64 // input ranges used for normalisation
	min1, min2   float64
	// MaxDistance is the largest allowed normalised distance between a
	// query and its projection in "E" mode, as a fraction of the curve's
	// bounding-box diagonal.
	MaxDistance float64
}

// NewCurveModel2D builds a curve table model from scattered samples.
// Samples are sorted by x1 to order them along the front; duplicate x1
// values keep the first occurrence.
func NewCurveModel2D(x1s, x2s, ys []float64, ctrl1, ctrl2 Control) (*CurveModel2D, error) {
	if len(x1s) != len(x2s) || len(x1s) != len(ys) {
		return nil, fmt.Errorf("table: sample length mismatch: %d/%d/%d", len(x1s), len(x2s), len(ys))
	}
	if len(x1s) < 3 {
		return nil, fmt.Errorf("table: curve model needs at least 3 samples, got %d", len(x1s))
	}
	type pt struct{ a, b, y float64 }
	pts := make([]pt, 0, len(x1s))
	for i := range x1s {
		pts = append(pts, pt{x1s[i], x2s[i], ys[i]})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].a < pts[j].a })
	dedup := pts[:0]
	for i, p := range pts {
		if i > 0 && p.a == dedup[len(dedup)-1].a {
			continue
		}
		dedup = append(dedup, p)
	}
	pts = dedup
	if len(pts) < 3 {
		return nil, fmt.Errorf("table: fewer than 3 distinct samples after dedup")
	}

	m := &CurveModel2D{ctrl1: ctrl1, ctrl2: ctrl2, MaxDistance: 0.25}
	for _, p := range pts {
		m.x1s = append(m.x1s, p.a)
		m.x2s = append(m.x2s, p.b)
		m.ys = append(m.ys, p.y)
	}
	min1, max1 := m.x1s[0], m.x1s[len(m.x1s)-1]
	min2, max2 := minMax(m.x2s)
	m.min1, m.min2 = min1, min2
	m.span1 = max1 - min1
	m.span2 = max2 - min2
	if m.span1 == 0 {
		m.span1 = 1
	}
	if m.span2 == 0 {
		m.span2 = 1
	}
	// Cumulative arc length in normalised coordinates.
	m.u = make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		d1 := (m.x1s[i] - m.x1s[i-1]) / m.span1
		d2 := (m.x2s[i] - m.x2s[i-1]) / m.span2
		m.u[i] = m.u[i-1] + math.Hypot(d1, d2)
	}
	total := m.u[len(m.u)-1]
	if total == 0 {
		return nil, fmt.Errorf("table: degenerate curve (zero arc length)")
	}
	for i := range m.u {
		m.u[i] /= total
	}
	deg := ctrl1.Degree
	if deg == 0 {
		deg = spline.DegreeCubic
	}
	var err error
	if m.fx1, err = spline.New(deg, m.u, m.x1s); err != nil {
		return nil, fmt.Errorf("table: fitting X1(u): %w", err)
	}
	if m.fx2, err = spline.New(deg, m.u, m.x2s); err != nil {
		return nil, fmt.Errorf("table: fitting X2(u): %w", err)
	}
	if m.fy, err = spline.New(deg, m.u, m.ys); err != nil {
		return nil, fmt.Errorf("table: fitting Y(u): %w", err)
	}
	return m, nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// dist2 returns the squared normalised distance between the query and
// the curve point at parameter u.
func (m *CurveModel2D) dist2(x1, x2, u float64) float64 {
	d1 := (m.fx1.Eval(u) - x1) / m.span1
	d2 := (m.fx2.Eval(u) - x2) / m.span2
	return d1*d1 + d2*d2
}

// Project returns the curve parameter u in [0,1] closest to the query
// point, along with the normalised distance to the curve.
func (m *CurveModel2D) Project(x1, x2 float64) (u, dist float64) {
	// Coarse scan.
	const n = 256
	bestU, bestD := 0.0, math.Inf(1)
	for i := 0; i <= n; i++ {
		uu := float64(i) / n
		if d := m.dist2(x1, x2, uu); d < bestD {
			bestD, bestU = d, uu
		}
	}
	// Golden-section refinement around the best coarse sample.
	lo := math.Max(0, bestU-1.5/n)
	hi := math.Min(1, bestU+1.5/n)
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := m.dist2(x1, x2, c), m.dist2(x1, x2, d)
	for i := 0; i < 60; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = m.dist2(x1, x2, c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = m.dist2(x1, x2, d)
		}
	}
	u = 0.5 * (a + b)
	if bd := m.dist2(x1, x2, u); bd < bestD {
		bestD = bd
		bestU = u
	}
	return bestU, math.Sqrt(bestD)
}

// Eval evaluates the table model at the query point (x1, x2). In "E"
// mode (on either control) a query whose normalised distance from the
// curve exceeds MaxDistance is out of range.
func (m *CurveModel2D) Eval(x1, x2 float64) (float64, error) {
	u, dist := m.Project(x1, x2)
	errMode := m.ctrl1.Extrap == ExtrapError || m.ctrl2.Extrap == ExtrapError
	if errMode && dist > m.MaxDistance {
		return 0, fmt.Errorf("%w: point (%g, %g) is %.3g (normalised) from the sampled front",
			ErrOutOfRange, x1, x2, dist)
	}
	return m.fy.Eval(u), nil
}

// EvalAt returns the output at a given curve parameter, for callers that
// have already projected (e.g. batch parameter lookups at one spec point).
func (m *CurveModel2D) EvalAt(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return m.fy.Eval(u)
}

// Interps exposes the three fitted parameterisation splines X1(u),
// X2(u) and Y(u) (the server's query compiler reads them to build its
// struct-of-arrays form).
func (m *CurveModel2D) Interps() (fx1, fx2, fy spline.Interpolator) {
	return m.fx1, m.fx2, m.fy
}

// Spans returns the input-range normalisation used by Project's distance
// metric.
func (m *CurveModel2D) Spans() (span1, span2 float64) { return m.span1, m.span2 }

// Len returns the number of distinct samples along the curve.
func (m *CurveModel2D) Len() int { return len(m.ys) }

// Samples returns copies of the ordered sample vectors.
func (m *CurveModel2D) Samples() (x1s, x2s, ys []float64) {
	return append([]float64(nil), m.x1s...),
		append([]float64(nil), m.x2s...),
		append([]float64(nil), m.ys...)
}
