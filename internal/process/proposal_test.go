package process

import (
	"math"
	"testing"
)

func TestProposalValidate(t *testing.T) {
	bad := []*Proposal{
		{},
		{Components: []ProposalComponent{{Weight: 0, Scale: 1}}},
		{Components: []ProposalComponent{{Weight: 1, Scale: 0}}},
		{Components: []ProposalComponent{{Weight: -1, Scale: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("proposal %d accepted", i)
		}
	}
	good := &Proposal{Components: []ProposalComponent{
		{Weight: 2, Scale: 1},
		{Weight: 6, Mean: [4]float64{1, 0, 0, 0}, Scale: 2},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// Weights normalise by ratio: cum = [0.25, 1].
	if math.Abs(good.cum[0]-0.25) > 1e-15 || good.cum[1] != 1 {
		t.Errorf("cum = %v, want [0.25 1]", good.cum)
	}
}

func TestNewSampleISDeterministic(t *testing.T) {
	p := C35()
	prop := DefaultISProposal()
	for i := 0; i < 50; i++ {
		a, wa := p.NewSampleIS(7, i, prop)
		b, wb := p.NewSampleIS(7, i, prop)
		if a.GlobalN != b.GlobalN || a.GlobalP != b.GlobalP || wa != wb {
			t.Fatalf("sample %d not deterministic", i)
		}
		// The mismatch stream must be deterministic too.
		sa := a.DeviceShift(NMOS, 1e-6, 1e-6)
		sb := b.DeviceShift(NMOS, 1e-6, 1e-6)
		if sa != sb {
			t.Fatalf("sample %d mismatch stream not deterministic", i)
		}
	}
}

// TestNewSampleISIdentityProposal checks the likelihood ratio is exactly
// zero when the proposal equals the nominal distribution.
func TestNewSampleISIdentityProposal(t *testing.T) {
	p := C35()
	ident := &Proposal{Components: []ProposalComponent{{Weight: 1, Scale: 1}}}
	if err := ident.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, lw := p.NewSampleIS(3, i, ident)
		if math.Abs(lw) > 1e-12 {
			t.Fatalf("sample %d: logLR = %g under identity proposal, want 0", i, lw)
		}
	}
}

// TestISWeightsUnbiased checks the fundamental IS identity
// E_q[w·f(x)] = E_p[f(x)] on analytically known moments of the global
// shifts: the weighted mean of each shift must vanish and the weighted
// second moment must recover sigma².
func TestISWeightsUnbiased(t *testing.T) {
	p := C35()
	prop := DefaultISProposal()
	const n = 200000
	var sw, swx, swxx float64
	for i := 0; i < n; i++ {
		s, lw := p.NewSampleIS(11, i, prop)
		w := math.Exp(lw)
		x := s.GlobalN.DVth / p.N.SigmaVth
		sw += w
		swx += w * x
		swxx += w * x * x
	}
	// Unnormalised identities: E_q[w] = 1, E_q[w x] = 0, E_q[w x²] = 1.
	if math.Abs(sw/n-1) > 0.02 {
		t.Errorf("E[w] = %g, want 1", sw/n)
	}
	if math.Abs(swx/n) > 0.02 {
		t.Errorf("E[w x] = %g, want 0", swx/n)
	}
	if math.Abs(swxx/n-1) > 0.05 {
		t.Errorf("E[w x^2] = %g, want 1", swxx/n)
	}
}

// TestISTailOversampling checks the proposal's entire point: the
// defensive mixture lands far more probability mass beyond 3σ than the
// nominal distribution, while the reweighted tail estimate still
// matches the true tail probability.
func TestISTailOversampling(t *testing.T) {
	p := C35()
	prop := DefaultISProposal()
	const n = 100000
	const thr = 3.0
	hits := 0
	var sw, swTail float64
	for i := 0; i < n; i++ {
		s, lw := p.NewSampleIS(5, i, prop)
		w := math.Exp(lw)
		x := s.GlobalN.DVth / p.N.SigmaVth
		sw += w
		if x > thr {
			hits++
			swTail += w
		}
	}
	pTrue := 0.5 * math.Erfc(thr/math.Sqrt2) // ≈ 1.35e-3
	rate := float64(hits) / n
	if rate < 10*pTrue {
		t.Errorf("proposal tail rate %g is not ≫ nominal %g", rate, pTrue)
	}
	est := swTail / sw
	if relErr := math.Abs(est-pTrue) / pTrue; relErr > 0.25 {
		t.Errorf("reweighted tail estimate %g vs true %g (rel err %.2f)", est, pTrue, relErr)
	}
}

func TestMeanShiftProposal(t *testing.T) {
	p := C35()
	prop := MeanShiftProposal(3, 0)
	var mean float64
	const n = 4000
	for i := 0; i < n; i++ {
		s, _ := p.NewSampleIS(1, i, prop)
		mean += s.GlobalN.DVth / p.N.SigmaVth
	}
	mean /= n
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("shifted mean = %g, want ~3", mean)
	}
}

func TestGlobalSigmaUnits(t *testing.T) {
	p := C35()
	s := p.NewSample(1, 0)
	u := s.GlobalSigmaUnits()
	if u[0] != s.GlobalN.DVth/p.N.SigmaVth || u[3] != s.GlobalP.DBeta/p.P.SigmaBeta {
		t.Errorf("sigma units %v inconsistent with shifts", u)
	}
	if (&Sample{}).GlobalSigmaUnits() != [4]float64{} {
		t.Error("nil-process sample should map to zero features")
	}
}
