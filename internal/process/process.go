// Package process models the statistical behaviour of a CMOS fabrication
// process: nominal electrical parameters, worst-case corners, global
// (lot-to-lot) statistical variation and local (device-to-device)
// mismatch following Pelgrom's law.
//
// This substitutes for the foundry variation/mismatch decks (AMS C35B4
// BSim3v3) the paper uses with Spectre. Pelgrom scaling —
// σ(ΔVth) = AVT/√(W·L), σ(Δβ)/β = Aβ/√(W·L) — is the physical basis of
// those decks, so the area dependence of the paper's variation results
// is preserved.
package process

import (
	"fmt"
	"math"
	"math/rand"
)

// DeviceClass distinguishes NMOS and PMOS statistical populations.
type DeviceClass int

// Device classes.
const (
	NMOS DeviceClass = iota
	PMOS
)

// String names the device class.
func (c DeviceClass) String() string {
	if c == PMOS {
		return "pmos"
	}
	return "nmos"
}

// ClassParams holds per-class statistical coefficients.
type ClassParams struct {
	// Pelgrom mismatch coefficients.
	AVT   float64 // V·m: σ(ΔVth) = AVT / sqrt(W·L)
	ABeta float64 // m:   σ(Δβ)/β = ABeta / sqrt(W·L)
	// Global (lot) variation standard deviations.
	SigmaVth  float64 // V, absolute shift of threshold voltage
	SigmaBeta float64 // relative shift of transconductance factor
}

// Process describes one fabrication process.
type Process struct {
	Name    string
	Feature float64 // minimum channel length, metres
	N, P    ClassParams
	// SigmaCap is the relative global variation of capacitors (poly-poly
	// or MiM), used by the filter application's passive variation.
	SigmaCap float64
	// MismatchCap is the Pelgrom-style relative capacitor matching
	// coefficient (m): σ(ΔC)/C = MismatchCap / sqrt(area).
	MismatchCap float64
}

// C35 returns a 0.35 µm-class process with coefficients representative
// of published data for that node (AVT ≈ 9.5 mV·µm NMOS / 14.5 mV·µm
// PMOS, Aβ ≈ 1.9 %·µm), standing in for the AMS C35B4 deck.
func C35() *Process {
	const um = 1e-6
	return &Process{
		Name:    "c35-class 0.35um",
		Feature: 0.35 * um,
		N: ClassParams{
			AVT:       9.5e-3 * um,
			ABeta:     0.019 * um,
			SigmaVth:  0.015,
			SigmaBeta: 0.03,
		},
		P: ClassParams{
			AVT:       14.5e-3 * um,
			ABeta:     0.022 * um,
			SigmaVth:  0.020,
			SigmaBeta: 0.03,
		},
		SigmaCap:    0.05,
		MismatchCap: 0.005 * um,
	}
}

// Class returns the parameters for the requested device class.
func (p *Process) Class(c DeviceClass) ClassParams {
	if c == PMOS {
		return p.P
	}
	return p.N
}

// Corner identifies a worst-case process corner.
type Corner int

// The five classic corners: typical, slow/slow, fast/fast, slow-N/fast-P
// and fast-N/slow-P.
const (
	TT Corner = iota
	SS
	FF
	SF
	FS
)

var cornerNames = [...]string{"TT", "SS", "FF", "SF", "FS"}

// String names the corner.
func (c Corner) String() string {
	if int(c) < len(cornerNames) {
		return cornerNames[c]
	}
	return fmt.Sprintf("Corner(%d)", int(c))
}

// Corners lists all defined corners.
func Corners() []Corner { return []Corner{TT, SS, FF, SF, FS} }

// Shift is the set of parameter perturbations applied to one MOSFET
// instance: the sum of global (lot) variation shared by all devices in a
// sample and local mismatch unique to the device.
type Shift struct {
	DVth  float64 // additive threshold-voltage shift, volts
	DBeta float64 // relative transconductance-factor shift (ΔKP/KP)
}

// CornerShift returns the deterministic Shift a corner applies to a
// device class, at nSigma standard deviations (3 is conventional).
// "Slow" means higher |Vth| and lower beta.
func (p *Process) CornerShift(corner Corner, class DeviceClass, nSigma float64) Shift {
	cp := p.Class(class)
	slow := Shift{DVth: nSigma * cp.SigmaVth, DBeta: -nSigma * cp.SigmaBeta}
	fast := Shift{DVth: -nSigma * cp.SigmaVth, DBeta: nSigma * cp.SigmaBeta}
	switch corner {
	case SS:
		return slow
	case FF:
		return fast
	case SF:
		if class == NMOS {
			return slow
		}
		return fast
	case FS:
		if class == NMOS {
			return fast
		}
		return slow
	default:
		return Shift{}
	}
}

// Sample is one Monte Carlo sample of the process: a global shift per
// device class plus an RNG stream for per-device mismatch. Two Samples
// constructed with the same (seed, index) produce identical device
// shifts when devices are visited in the same order, which makes MC
// results independent of worker scheduling.
type Sample struct {
	GlobalN, GlobalP Shift
	proc             *Process
	rng              *rand.Rand
	// forced marks a deterministic (corner) sample: DeviceShift returns
	// the global shift even though there is no RNG stream.
	forced bool
}

// NewSample draws MC sample `index` of the stream identified by `seed`.
func (p *Process) NewSample(seed int64, index int) *Sample {
	rng := rand.New(rand.NewSource(mix(seed, int64(index))))
	s := &Sample{proc: p, rng: rng}
	s.GlobalN = Shift{
		DVth:  rng.NormFloat64() * p.N.SigmaVth,
		DBeta: rng.NormFloat64() * p.N.SigmaBeta,
	}
	s.GlobalP = Shift{
		DVth:  rng.NormFloat64() * p.P.SigmaVth,
		DBeta: rng.NormFloat64() * p.P.SigmaBeta,
	}
	return s
}

// NominalSample returns a Sample with no global variation and no
// mismatch, useful for verifying that the MC machinery is unbiased.
func (p *Process) NominalSample() *Sample {
	return &Sample{proc: p, rng: nil}
}

// CornerSample returns a deterministic Sample representing a worst-case
// corner at nSigma standard deviations: every device of a class gets the
// corner's global shift and no local mismatch. This lets any
// Sample-consuming evaluator (the flow's CircuitProblem, the filter
// builders) run corner analyses without a separate code path.
func (p *Process) CornerSample(corner Corner, nSigma float64) *Sample {
	return &Sample{
		proc:    p,
		rng:     nil,
		forced:  true,
		GlobalN: p.CornerShift(corner, NMOS, nSigma),
		GlobalP: p.CornerShift(corner, PMOS, nSigma),
	}
}

// DeviceShift draws the total Shift for one device of the given class
// and geometry (W, L in metres): global component plus Pelgrom mismatch.
// On the nominal sample it returns a zero Shift.
func (s *Sample) DeviceShift(class DeviceClass, w, l float64) Shift {
	if s.rng == nil {
		if !s.forced {
			return Shift{}
		}
		if class == PMOS {
			return s.GlobalP
		}
		return s.GlobalN
	}
	global := s.GlobalN
	if class == PMOS {
		global = s.GlobalP
	}
	cp := s.proc.Class(class)
	area := w * l
	if area <= 0 {
		panic(fmt.Sprintf("process: non-positive device area W=%g L=%g", w, l))
	}
	inv := 1 / math.Sqrt(area)
	return Shift{
		DVth:  global.DVth + s.rng.NormFloat64()*cp.AVT*inv,
		DBeta: global.DBeta + s.rng.NormFloat64()*cp.ABeta*inv,
	}
}

// CapShift draws the relative capacitance shift for one capacitor of the
// given plate area (m²): global cap variation plus local matching.
func (s *Sample) CapShift(area float64) float64 {
	if s.rng == nil {
		return 0
	}
	d := s.rng.NormFloat64() * s.proc.SigmaCap
	if area > 0 {
		d += s.rng.NormFloat64() * s.proc.MismatchCap / math.Sqrt(area)
	}
	return d
}

// mix produces a well-distributed 63-bit seed from (seed, index) using a
// splitmix64-style finaliser, so neighbouring indices give uncorrelated
// streams.
func mix(seed, index int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(index)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// C18 returns a 0.18 µm-class process (tighter geometries, smaller
// mismatch coefficients), useful for exploring how the variation model
// scales across nodes.
func C18() *Process {
	const um = 1e-6
	return &Process{
		Name:    "c18-class 0.18um",
		Feature: 0.18 * um,
		N: ClassParams{
			AVT:       5.0e-3 * um,
			ABeta:     0.010 * um,
			SigmaVth:  0.012,
			SigmaBeta: 0.025,
		},
		P: ClassParams{
			AVT:       7.5e-3 * um,
			ABeta:     0.012 * um,
			SigmaVth:  0.015,
			SigmaBeta: 0.025,
		},
		SigmaCap:    0.04,
		MismatchCap: 0.004 * um,
	}
}
