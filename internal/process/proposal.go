// Importance-sampling proposal distributions over the global-variation
// space. Brute-force Monte Carlo draws the four global shift variables
// (NMOS/PMOS threshold and beta) from the process's nominal N(0, σ²)
// model; a Proposal replaces that draw with a mixture of shifted and/or
// widened Gaussians that lands far more samples in the rare-failure
// region, and NewSampleIS reports the log-likelihood ratio
// log p(x)/q(x) that reweights each sample so the estimator stays
// unbiased (the ISLE construction of Bayrakci & Demir; see PAPERS.md).
//
// Proposals act on the GLOBAL (lot-level) variation only. Local Pelgrom
// mismatch keeps its nominal distribution — its density cancels exactly
// in the likelihood ratio, so per-device draws need no reweighting.
// Means and scales are expressed in units of the process sigma, which
// makes a Proposal portable across processes.
package process

import (
	"fmt"
	"math"
	"math/rand"
)

// proposalDims is the dimension of the global-variation space a
// Proposal acts on: (N.DVth, N.DBeta, P.DVth, P.DBeta), in that order,
// each normalised by its process sigma.
const proposalDims = 4

// ProposalComponent is one Gaussian of a mixture proposal: an isotropic
// normal with the given mean (in sigma units, proposalDims-dimensional)
// and standard-deviation scale.
type ProposalComponent struct {
	// Weight is the component's mixture probability; Proposal
	// normalises weights, so only ratios matter. Must be positive.
	Weight float64
	// Mean shifts the component in sigma units, ordered
	// (N.DVth, N.DBeta, P.DVth, P.DBeta).
	Mean [4]float64
	// Scale multiplies the component's standard deviation (1 keeps the
	// nominal width). Must be positive.
	Scale float64
}

// Proposal is a mixture-of-Gaussians sampling distribution for the
// global-variation space. The zero value is invalid; build one with
// explicit components or via DefaultISProposal / MeanShiftProposal.
type Proposal struct {
	Components []ProposalComponent
	// cum is the normalised cumulative weight vector, built lazily by
	// Validate/normalise.
	cum []float64
}

// Validate checks the proposal and precomputes its cumulative weights.
// It is called automatically by NewSampleIS; calling it once up front
// turns a malformed proposal into an error instead of a panic mid-run.
func (p *Proposal) Validate() error {
	if p == nil || len(p.Components) == 0 {
		return fmt.Errorf("process: proposal has no components")
	}
	total := 0.0
	for i, c := range p.Components {
		if !(c.Weight > 0) {
			return fmt.Errorf("process: proposal component %d has non-positive weight %g", i, c.Weight)
		}
		if !(c.Scale > 0) {
			return fmt.Errorf("process: proposal component %d has non-positive scale %g", i, c.Scale)
		}
		total += c.Weight
	}
	p.cum = make([]float64, len(p.Components))
	run := 0.0
	for i, c := range p.Components {
		run += c.Weight / total
		p.cum[i] = run
	}
	p.cum[len(p.cum)-1] = 1 // guard the last bin against rounding
	return nil
}

// pick selects the component index for the uniform draw u in [0, 1).
func (p *Proposal) pick(u float64) int {
	for i, c := range p.cum {
		if u < c {
			return i
		}
	}
	return len(p.cum) - 1
}

// logLR returns log p(x)/q(x) at the sigma-normalised point x, where p
// is the standard normal the process actually follows and q the
// proposal mixture. The shared (2π)^{-d/2} constant cancels.
func (p *Proposal) logLR(x [4]float64) float64 {
	logp := 0.0
	for _, v := range x {
		logp -= 0.5 * v * v
	}
	total := 0.0
	for _, c := range p.Components {
		total += c.Weight
	}
	// log q via logsumexp over components for numerical stability far
	// from every component mean.
	logq := math.Inf(-1)
	for _, c := range p.Components {
		e := math.Log(c.Weight/total) - proposalDims*math.Log(c.Scale)
		for k, v := range x {
			d := (v - c.Mean[k]) / c.Scale
			e -= 0.5 * d * d
		}
		if e > logq {
			logq, e = e, logq
		}
		if !math.IsInf(e, -1) {
			logq += math.Log1p(math.Exp(e - logq))
		}
	}
	return logp - logq
}

// NewSampleIS draws MC sample `index` of the stream identified by
// `seed` from the proposal distribution instead of the nominal process
// statistics, returning the sample together with its log-likelihood
// ratio log p/q (the log of the unbiased importance weight). Like
// NewSample, the draw is fully determined by (seed, index), so results
// are identical for any worker count; the local-mismatch stream
// continues from the same RNG and needs no reweighting. A nil proposal
// falls back to DefaultISProposal(). The proposal must be valid (see
// Proposal.Validate); an invalid one panics.
func (p *Process) NewSampleIS(seed int64, index int, prop *Proposal) (*Sample, float64) {
	if prop == nil {
		prop = DefaultISProposal()
	}
	if prop.cum == nil {
		if err := prop.Validate(); err != nil {
			panic(err.Error())
		}
	}
	rng := rand.New(rand.NewSource(mix(seed, int64(index))))
	c := prop.Components[prop.pick(rng.Float64())]
	var x [4]float64
	for k := range x {
		x[k] = c.Mean[k] + c.Scale*rng.NormFloat64()
	}
	s := &Sample{proc: p, rng: rng}
	s.GlobalN = Shift{DVth: x[0] * p.N.SigmaVth, DBeta: x[1] * p.N.SigmaBeta}
	s.GlobalP = Shift{DVth: x[2] * p.P.SigmaVth, DBeta: x[3] * p.P.SigmaBeta}
	return s, prop.logLR(x)
}

// GlobalSigmaUnits returns the sample's global shifts normalised by the
// process sigmas, in the Proposal coordinate order
// (N.DVth, N.DBeta, P.DVth, P.DBeta). This is the feature vector the
// Monte Carlo surrogate filter regresses on; a zero process sigma maps
// to coordinate 0.
func (s *Sample) GlobalSigmaUnits() [4]float64 {
	var u [4]float64
	if s.proc == nil {
		return u
	}
	div := func(v, sig float64) float64 {
		if sig == 0 {
			return 0
		}
		return v / sig
	}
	u[0] = div(s.GlobalN.DVth, s.proc.N.SigmaVth)
	u[1] = div(s.GlobalN.DBeta, s.proc.N.SigmaBeta)
	u[2] = div(s.GlobalP.DVth, s.proc.P.SigmaVth)
	u[3] = div(s.GlobalP.DBeta, s.proc.P.SigmaBeta)
	return u
}

// DefaultISProposal returns a direction-free defensive proposal: a
// nominal-width component that keeps the bulk covered (bounding the
// importance weights, so the self-normalised estimator cannot
// degenerate) mixed with a variance-inflated component that over-samples
// every 3-4σ shell regardless of which direction the failure region
// lies in. It needs no knowledge of the circuit and is the proposal the
// flow's `is` strategies use when none is supplied.
func DefaultISProposal() *Proposal {
	p := &Proposal{Components: []ProposalComponent{
		{Weight: 0.3, Scale: 1},
		{Weight: 0.7, Scale: 2},
	}}
	if err := p.Validate(); err != nil {
		panic(err.Error()) // static construction; cannot fail
	}
	return p
}

// MeanShiftProposal returns a single shifted Gaussian at nSigma along
// the classic "slow" worst-case direction (+Vth, −beta for both device
// classes; negative nSigma selects the fast direction), with the given
// width scale (0 selects 1). Use it when the failing tail's direction
// is known — a directed shift beats the defensive default by another
// order of magnitude in tail-sampling efficiency.
func MeanShiftProposal(nSigma, scale float64) *Proposal {
	if scale == 0 {
		scale = 1
	}
	p := &Proposal{Components: []ProposalComponent{{
		Weight: 1,
		Mean:   [4]float64{nSigma, -nSigma, nSigma, -nSigma},
		Scale:  scale,
	}}}
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	return p
}
