package process

import (
	"math"
	"testing"
	"testing/quick"
)

func TestC35Basics(t *testing.T) {
	p := C35()
	if p.Feature != 0.35e-6 {
		t.Errorf("Feature = %g, want 0.35e-6", p.Feature)
	}
	if p.N.AVT <= 0 || p.P.AVT <= 0 {
		t.Error("AVT must be positive")
	}
	if p.P.AVT <= p.N.AVT {
		t.Error("PMOS mismatch should exceed NMOS at this node")
	}
}

func TestDeviceClassString(t *testing.T) {
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Error("class names wrong")
	}
}

func TestCornerString(t *testing.T) {
	if TT.String() != "TT" || SF.String() != "SF" {
		t.Error("corner names wrong")
	}
	if Corner(99).String() == "" {
		t.Error("unknown corner should still render")
	}
	if len(Corners()) != 5 {
		t.Error("want 5 corners")
	}
}

func TestCornerShiftDirections(t *testing.T) {
	p := C35()
	ss := p.CornerShift(SS, NMOS, 3)
	if ss.DVth <= 0 || ss.DBeta >= 0 {
		t.Errorf("SS NMOS should be slow (Vth up, beta down): %+v", ss)
	}
	ff := p.CornerShift(FF, NMOS, 3)
	if ff.DVth >= 0 || ff.DBeta <= 0 {
		t.Errorf("FF NMOS should be fast: %+v", ff)
	}
	// SF: slow NMOS, fast PMOS.
	if s := p.CornerShift(SF, NMOS, 3); s.DVth <= 0 {
		t.Error("SF NMOS should be slow")
	}
	if s := p.CornerShift(SF, PMOS, 3); s.DVth >= 0 {
		t.Error("SF PMOS should be fast")
	}
	// FS is the mirror.
	if s := p.CornerShift(FS, NMOS, 3); s.DVth >= 0 {
		t.Error("FS NMOS should be fast")
	}
	if s := p.CornerShift(TT, NMOS, 3); s != (Shift{}) {
		t.Error("TT should be a zero shift")
	}
}

func TestCornerShiftScalesWithSigma(t *testing.T) {
	p := C35()
	s3 := p.CornerShift(SS, NMOS, 3)
	s1 := p.CornerShift(SS, NMOS, 1)
	if math.Abs(s3.DVth-3*s1.DVth) > 1e-15 {
		t.Error("corner shift not linear in nSigma")
	}
}

func TestSampleDeterminism(t *testing.T) {
	p := C35()
	a := p.NewSample(42, 7)
	b := p.NewSample(42, 7)
	if a.GlobalN != b.GlobalN || a.GlobalP != b.GlobalP {
		t.Fatal("same (seed, index) gave different global shifts")
	}
	// Device draws in the same order must match too.
	for i := 0; i < 5; i++ {
		sa := a.DeviceShift(NMOS, 10e-6, 1e-6)
		sb := b.DeviceShift(NMOS, 10e-6, 1e-6)
		if sa != sb {
			t.Fatalf("draw %d differs: %+v vs %+v", i, sa, sb)
		}
	}
}

func TestSampleIndependenceAcrossIndex(t *testing.T) {
	p := C35()
	a := p.NewSample(42, 0)
	b := p.NewSample(42, 1)
	if a.GlobalN == b.GlobalN {
		t.Fatal("adjacent sample indices produced identical shifts")
	}
}

func TestNominalSampleIsZero(t *testing.T) {
	p := C35()
	s := p.NominalSample()
	if sh := s.DeviceShift(NMOS, 1e-6, 1e-6); sh != (Shift{}) {
		t.Errorf("nominal DeviceShift = %+v, want zero", sh)
	}
	if s.CapShift(1e-12) != 0 {
		t.Error("nominal CapShift should be zero")
	}
}

func TestPelgromAreaScaling(t *testing.T) {
	// The standard deviation of the mismatch component must scale as
	// 1/sqrt(area). Estimate empirically with paired samples that share
	// the global component (subtracting two devices from the same
	// sample removes it).
	p := C35()
	est := func(w, l float64) float64 {
		const n = 4000
		var diffs []float64
		for i := 0; i < n; i++ {
			s := p.NewSample(1, i)
			d1 := s.DeviceShift(NMOS, w, l)
			d2 := s.DeviceShift(NMOS, w, l)
			diffs = append(diffs, d1.DVth-d2.DVth)
		}
		var ss float64
		for _, d := range diffs {
			ss += d * d
		}
		// Var(d1-d2) = 2σ² for independent equal-variance draws.
		return math.Sqrt(ss / float64(len(diffs)) / 2)
	}
	small := est(1e-6, 1e-6) // 1 µm²
	large := est(4e-6, 4e-6) // 16 µm²
	ratio := small / large   // expect ~4
	if ratio < 3 || ratio > 5 {
		t.Errorf("mismatch sigma ratio = %g, want ~4 (Pelgrom 1/sqrt(area))", ratio)
	}
	// Absolute value: σ(ΔVth) for 1 µm² should be ≈ AVT/1µm = 9.5 mV.
	want := p.N.AVT / 1e-6
	if small < 0.7*want || small > 1.3*want {
		t.Errorf("sigma(1um^2) = %g, want ~%g", small, want)
	}
}

func TestDeviceShiftPanicsOnBadGeometry(t *testing.T) {
	p := C35()
	s := p.NewSample(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("zero-area device accepted")
		}
	}()
	s.DeviceShift(NMOS, 0, 1e-6)
}

func TestGlobalShiftSharedAcrossDevices(t *testing.T) {
	// Two devices with enormous area have negligible mismatch, so their
	// shifts should both approach the sample's global shift.
	p := C35()
	s := p.NewSample(3, 3)
	big := 1.0 // 1 m² — absurd, but kills the mismatch term
	d1 := s.DeviceShift(NMOS, big, big)
	d2 := s.DeviceShift(NMOS, big, big)
	if math.Abs(d1.DVth-d2.DVth) > 1e-6 {
		t.Error("huge devices should share the global shift")
	}
	if math.Abs(d1.DVth-s.GlobalN.DVth) > 1e-6 {
		t.Error("huge device shift should equal global shift")
	}
}

func TestCapShiftStatistics(t *testing.T) {
	p := C35()
	var xs []float64
	for i := 0; i < 3000; i++ {
		s := p.NewSample(9, i)
		xs = append(xs, s.CapShift(100e-12)) // large area: global dominates
	}
	var mean, ss float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sigma := math.Sqrt(ss / float64(len(xs)-1))
	if math.Abs(mean) > 0.01 {
		t.Errorf("cap shift mean = %g, want ~0", mean)
	}
	if sigma < 0.7*p.SigmaCap || sigma > 1.3*p.SigmaCap {
		t.Errorf("cap shift sigma = %g, want ~%g", sigma, p.SigmaCap)
	}
}

func TestMixQuality(t *testing.T) {
	// Property: mix must not collide for nearby inputs (a weak but
	// useful guarantee for stream independence).
	f := func(a, b int64) bool {
		if a == b {
			return true
		}
		return mix(1, a) != mix(1, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if mix(0, 0) == mix(0, 1) {
		t.Error("mix collides on adjacent indices")
	}
}

func TestC18TighterThanC35(t *testing.T) {
	c35, c18 := C35(), C18()
	if c18.Feature >= c35.Feature {
		t.Error("C18 feature size should be smaller")
	}
	if c18.N.AVT >= c35.N.AVT || c18.P.AVT >= c35.P.AVT {
		t.Error("C18 mismatch coefficients should be tighter")
	}
	// Same machinery works on the other node.
	s := c18.NewSample(1, 1)
	if sh := s.DeviceShift(NMOS, 1e-6, 1e-6); sh == (Shift{}) {
		t.Error("C18 sample produced a zero shift")
	}
}
