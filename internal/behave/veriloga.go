package behave

import (
	"fmt"
	"strings"

	"analogyield/internal/core"
)

// VAOptions configures Verilog-A generation.
type VAOptions struct {
	ModuleName string // default "ota_behav"
	// Control is the $table_model control string per dimension
	// (default "3E", the paper's choice).
	Control string
	// ParamsFile is the output file the module writes the interpolated
	// design parameters to (default "params.dat", as in the paper).
	ParamsFile string
}

func (o VAOptions) withDefaults() VAOptions {
	if o.ModuleName == "" {
		o.ModuleName = "ota_behav"
	}
	if o.Control == "" {
		o.Control = "3E"
	}
	if o.ParamsFile == "" {
		o.ParamsFile = "params.dat"
	}
	return o
}

// GenerateVerilogA renders the paper's §4.4 behavioural module for a
// built model. The emitted module expects the .tbl data files written by
// Model.Save in its working directory.
func GenerateVerilogA(m *core.Model, opts VAOptions) string {
	o := opts.withDefaults()
	perf0 := m.ObjectiveNames[0]
	perf1 := m.ObjectiveNames[1]
	short0 := trimUnit(perf0) // e.g. "gain"
	short1 := trimUnit(perf1) // e.g. "pm"
	ctrl2 := o.Control + "," + o.Control

	var b strings.Builder
	fmt.Fprintf(&b, "// Combined performance and variation behavioural model.\n")
	fmt.Fprintf(&b, "// Generated from a %d-point Pareto table model; interpolation\n", len(m.Points))
	fmt.Fprintf(&b, "// control %q = cubic spline, no extrapolation.\n", o.Control)
	fmt.Fprintf(&b, "`include \"constants.vams\"\n`include \"disciplines.vams\"\n\n")
	fmt.Fprintf(&b, "module %s (inp, inn, out);\n", o.ModuleName)
	fmt.Fprintf(&b, "  inout inp, inn, out;\n")
	fmt.Fprintf(&b, "  electrical inp, inn, out;\n\n")
	fmt.Fprintf(&b, "  // Required performances (the design specification).\n")
	fmt.Fprintf(&b, "  parameter real %s = %.6g;\n", short0, midpoint(m, 0))
	fmt.Fprintf(&b, "  parameter real %s = %.6g;\n", short1, midpoint(m, 1))
	fmt.Fprintf(&b, "  parameter real ro = 100e3;\n\n")
	fmt.Fprintf(&b, "  real %s_delta, %s_delta;\n", short0, short1)
	fmt.Fprintf(&b, "  real %s_prop, %s_prop;\n", short0, short1)
	fmt.Fprintf(&b, "  real gain_in_v;\n")
	fmt.Fprintf(&b, "  integer fptr;\n")
	names := make([]string, len(m.ParamNames))
	for i := range m.ParamNames {
		names[i] = fmt.Sprintf("lp%d", i+1)
	}
	fmt.Fprintf(&b, "  real %s;\n\n", strings.Join(names, ", "))
	fmt.Fprintf(&b, "  analog begin\n")
	fmt.Fprintf(&b, "    %s_delta = $table_model(%s, \"%s\", \"%s\");\n",
		short0, short0, deltaFile(perf0), o.Control)
	fmt.Fprintf(&b, "    %s_delta = $table_model(%s, \"%s\", \"%s\");\n",
		short1, short1, deltaFile(perf1), o.Control)
	fmt.Fprintf(&b, "    %s_prop = ((%s_delta/100)*%s)+%s;\n", short0, short0, short0, short0)
	fmt.Fprintf(&b, "    %s_prop = ((%s_delta/100)*%s)+%s;\n", short1, short1, short1, short1)
	fmt.Fprintf(&b, "    $display(\"Proposed %s : %%e\", %s_prop);\n", short0, short0)
	fmt.Fprintf(&b, "    $display(\"Proposed %s : %%e\", %s_prop);\n", short1, short1)
	for i, n := range names {
		fmt.Fprintf(&b, "    %s = $table_model(%s_prop, %s_prop, \"lp%d_data.tbl\", \"%s\");\n",
			n, short0, short1, i+1, ctrl2)
	}
	fmt.Fprintf(&b, "    fptr = $fopen(\"%s\");\n", o.ParamsFile)
	fmt.Fprintf(&b, "    $fwrite(fptr, \"\\n Generated Design Parameters\\n \");\n")
	verbs := strings.TrimSuffix(strings.Repeat("%e ", len(names)), " ")
	fmt.Fprintf(&b, "    $fwrite(fptr, \"%s\", %s);\n", verbs, strings.Join(names, ", "))
	fmt.Fprintf(&b, "    $fclose(fptr);\n")
	fmt.Fprintf(&b, "    $display(\"params: = %s\", %s);\n", verbs, strings.Join(names, ", "))
	fmt.Fprintf(&b, "    gain_in_v = pow(10, %s_prop/20);\n", short0)
	fmt.Fprintf(&b, "    V(out) <+ V(inp)*(-gain_in_v) - I(out)*ro;\n")
	fmt.Fprintf(&b, "  end\nendmodule\n")
	return b.String()
}

func trimUnit(s string) string {
	for _, suf := range []string{"_db", "_deg", "_hz"} {
		if strings.HasSuffix(s, suf) {
			return strings.TrimSuffix(s, suf)
		}
	}
	return s
}

func deltaFile(objName string) string { return trimUnit(objName) + "_delta.tbl" }

func midpoint(m *core.Model, k int) float64 {
	if len(m.Points) == 0 {
		return 0
	}
	return (m.Points[0].Perf[k] + m.Points[len(m.Points)-1].Perf[k]) / 2
}
