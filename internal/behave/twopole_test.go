package behave

import (
	"math"
	"testing"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
	"analogyield/internal/measure"
	"analogyield/internal/ota"
)

func twoPoleBench(t *testing.T, gainDB, ro, f2, cl float64) ([]float64, []complex128) {
	t.Helper()
	n := circuit.New("two-pole bench")
	in := n.Node("in")
	out := n.Node("out")
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: circuit.Ground, ACMag: 1})
	n.MustAdd(&TwoPoleAmp{Inst: "X1", InP: in, InN: circuit.Ground, Out: out,
		GainDB: gainDB, Ro: ro, F2: f2})
	n.MustAdd(&circuit.Capacitor{Inst: "CL", A: out, B: circuit.Ground, C: cl})
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := analysis.ACDecade(n, op, 100, 1e9, 10)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := ac.V("out")
	if err != nil {
		t.Fatal(err)
	}
	return ac.Freqs, tf
}

func TestTwoPoleAmpDCUnaffected(t *testing.T) {
	freqs, tf := twoPoleBench(t, 50, 100e3, 1e7, 2e-12)
	_ = freqs
	if g := measure.GainDB(tf[0]); math.Abs(g-50) > 0.05 {
		t.Errorf("DC gain = %g, want 50", g)
	}
}

func TestTwoPoleAmpAddsPhase(t *testing.T) {
	ro, cl := 100e3, 2e-12
	f2 := 5e6
	fOne, one := twoPoleBench(t, 50, ro, 0, cl)
	fTwo, two := twoPoleBench(t, 50, ro, f2, cl)
	pmOne, err := measure.PhaseMarginDeg(fOne, one)
	if err != nil {
		t.Fatal(err)
	}
	pmTwo, err := measure.PhaseMarginDeg(fTwo, two)
	if err != nil {
		t.Fatal(err)
	}
	if pmTwo >= pmOne-1 {
		t.Errorf("second pole should reduce PM: one-pole %g, two-pole %g", pmOne, pmTwo)
	}
}

func TestTwoPoleAmpMatchesPrediction(t *testing.T) {
	// PM of the two-pole model should be ~90 − atan(fu/f2).
	ro, cl := 500e3, 2e-12
	f1 := 1 / (2 * math.Pi * ro * cl)
	a0 := 100.0 // 40 dB
	fu := a0 * f1
	f2 := 3 * fu
	freqs, tf := twoPoleBench(t, 40, ro, f2, cl)
	pm, err := measure.PhaseMarginDeg(freqs, tf)
	if err != nil {
		t.Fatal(err)
	}
	// With the second pole, fu shifts slightly below a0·f1; allow a few
	// degrees of slack around the ideal formula.
	want := 90 - math.Atan(fu/f2)*180/math.Pi
	if math.Abs(pm-want) > 5 {
		t.Errorf("PM = %g, predicted ~%g", pm, want)
	}
}

func TestFitTwoPole(t *testing.T) {
	perf := ota.Perf{GainDB: 50, PMDeg: 80, UnityHz: 1e7}
	gm, ro, f2 := FitTwoPole(perf, 2e-12)
	if gm <= 0 || ro <= 0 {
		t.Fatal("bad gm/ro")
	}
	// atan(fu/f2) = 10° → f2 = fu/tan(10°).
	want := 1e7 / math.Tan(10*math.Pi/180)
	if math.Abs(f2-want)/want > 1e-9 {
		t.Errorf("f2 = %g, want %g", f2, want)
	}
	// PM >= 90: second pole disabled.
	perf.PMDeg = 90
	_, _, f2 = FitTwoPole(perf, 2e-12)
	if f2 != 0 {
		t.Errorf("f2 = %g, want 0 (disabled)", f2)
	}
}

func TestTwoPoleImprovesFig8Fit(t *testing.T) {
	// The whole point of the extension: against the transistor OTA, the
	// two-pole behavioural model should track the high-frequency
	// response better than the paper's one-pole model.
	cfg := ota.DefaultConfig()
	params := ota.NominalParams()
	perf, err := cfg.Evaluate(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	freqs, tf, err := cfg.Response(params, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, _, f2 := FitTwoPole(perf, cfg.CLoad)
	if f2 <= 0 {
		t.Skip("nominal design has PM >= 90; no second pole to fit")
	}
	a0 := perf.GainDB
	fdom := perf.UnityHz / math.Pow(10, a0/20)
	var errOne, errTwo float64
	n := 0
	for i, f := range freqs {
		if f < perf.UnityHz { // compare beyond fu where the models differ
			continue
		}
		meas := measure.GainDB(tf[i])
		one := a0 - 10*math.Log10(1+(f/fdom)*(f/fdom))
		two := one - 10*math.Log10(1+(f/f2)*(f/f2))
		errOne += math.Abs(one - meas)
		errTwo += math.Abs(two - meas)
		n++
	}
	if n == 0 {
		t.Skip("no points beyond fu in sweep")
	}
	if errTwo >= errOne {
		t.Errorf("two-pole model error %.2f dB should beat one-pole %.2f dB", errTwo/float64(n), errOne/float64(n))
	}
}
