package behave

import (
	"math"

	"analogyield/internal/circuit"
	"analogyield/internal/ota"
)

// TwoPoleAmp is the extended behavioural model the paper's §4.4 alludes
// to ("although these higher order effects are not modelled in this
// example, they could easily be incorporated"): the finite-gain
// amplifier with an explicit second pole representing the lumped effect
// of the OTA's internal (mirror) poles.
//
//	H(jω) = K / ((1 + jω/ω1)(1 + jω/ω2)),   K = ±10^(GainDB/20)
//
// The first pole is realised physically by Ro against the external load
// (exactly as in the paper's model); the second pole scales the
// controlled source in the AC stamps. At DC and in transient the second
// pole is transparent (it only shapes the small-signal response).
type TwoPoleAmp struct {
	Inst          string
	InP, InN, Out int
	GainDB        float64 // DC gain magnitude, dB
	Ro            float64 // output resistance, ohms
	F2            float64 // second pole, Hz (<= 0 disables it)
	Invert        bool
}

// Name returns the instance name.
func (a *TwoPoleAmp) Name() string { return a.Inst }

// Branches returns 0.
func (a *TwoPoleAmp) Branches() int { return 0 }

// Copy returns a deep copy.
func (a *TwoPoleAmp) Copy() circuit.Device { c := *a; return &c }

// K returns the signed linear DC gain.
func (a *TwoPoleAmp) K() float64 {
	k := math.Pow(10, a.GainDB/20)
	if a.Invert {
		k = -k
	}
	return k
}

func (a *TwoPoleAmp) stampReal(addJ func(i, j int, v float64)) {
	g := 1 / a.Ro
	kg := a.K() * g
	addJ(a.Out, a.Out, g)
	addJ(a.Out, a.InP, -kg)
	addJ(a.Out, a.InN, kg)
}

// StampDC stamps the DC-gain amplifier (the second pole is invisible).
func (a *TwoPoleAmp) StampDC(ctx *circuit.DCCtx, _ int) { a.stampReal(ctx.AddJ) }

// StampTran stamps the DC-gain amplifier.
func (a *TwoPoleAmp) StampTran(ctx *circuit.TranCtx, _ int) { a.stampReal(ctx.AddJ) }

// StampAC stamps the amplifier with the controlled source rolled off by
// the second pole.
func (a *TwoPoleAmp) StampAC(ctx *circuit.ACCtx, _ int) {
	g := complex(1/a.Ro, 0)
	k := complex(a.K(), 0)
	if a.F2 > 0 {
		k /= complex(1, ctx.Omega/(2*math.Pi*a.F2))
	}
	kg := k * g
	ctx.AddA(a.Out, a.Out, g)
	ctx.AddA(a.Out, a.InP, -kg)
	ctx.AddA(a.Out, a.InN, kg)
}

// FitTwoPole derives the extended behavioural parameters from a
// measured transistor-level performance: gm and ro as in FromPerf, plus
// a second pole placed so the model reproduces the measured phase
// margin at the unity-gain frequency:
//
//	PM = 180° + φ(fu) ≈ 90° − atan(fu/f2)  ⇒  f2 = fu / tan(90° − PM)
//
// A phase margin at (or numerically above) 90° means no visible second
// pole; f2 is reported as 0 (disabled) in that case.
func FitTwoPole(perf ota.Perf, cl float64) (gm, ro, f2 float64) {
	gm, ro = FromPerf(perf, cl)
	excess := 90 - perf.PMDeg // degrees contributed by the second pole at fu
	if excess <= 0.1 {
		return gm, ro, 0
	}
	f2 = perf.UnityHz / math.Tan(excess*math.Pi/180)
	return gm, ro, f2
}
