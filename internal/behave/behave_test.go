package behave

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
	"analogyield/internal/core"
	"analogyield/internal/measure"
	"analogyield/internal/ota"
)

// ampBench builds: VIN → behavioural Amp → CL, mirroring the paper's
// open-loop testbench with the Verilog-A module in place of transistors.
func ampBench(gainDB, ro, cl float64) *circuit.Netlist {
	n := circuit.New("behavioural amp bench")
	in := n.Node("in")
	out := n.Node("out")
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: circuit.Ground, DC: 0, ACMag: 1})
	n.MustAdd(&Amp{Inst: "X1", InP: in, InN: circuit.Ground, Out: out,
		GainDB: gainDB, Ro: ro, Invert: true})
	n.MustAdd(&circuit.Capacitor{Inst: "CL", A: out, B: circuit.Ground, C: cl})
	return n
}

func TestAmpDCGain(t *testing.T) {
	n := ampBench(50, 100e3, 10e-12)
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := analysis.AC(n, op, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	tf, _ := ac.V("out")
	if g := measure.GainDB(tf[0]); math.Abs(g-50) > 0.01 {
		t.Errorf("behavioural gain = %g dB, want 50", g)
	}
	// Inverting: phase ±180 at DC.
	if ph := math.Abs(measure.PhaseDeg(tf[0])); math.Abs(ph-180) > 1 {
		t.Errorf("phase = %g, want ±180 (inverting)", ph)
	}
}

func TestAmpNonInverting(t *testing.T) {
	n := circuit.New("noninv")
	in := n.Node("in")
	out := n.Node("out")
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: circuit.Ground, DC: 0.001})
	n.MustAdd(&Amp{Inst: "X1", InP: in, InN: circuit.Ground, Out: out,
		GainDB: 40, Ro: 1e3, Invert: false})
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.V("out")
	if math.Abs(v-0.1) > 1e-4 {
		t.Errorf("V(out) = %g, want 0.1 (gain 100)", v)
	}
}

func TestAmpDominantPole(t *testing.T) {
	// The paper's model: finite gain + ro; loaded by CL this gives a
	// pole at 1/(2π·ro·CL).
	ro, cl := 100e3, 10e-12
	fp := 1 / (2 * math.Pi * ro * cl)
	n := ampBench(50, ro, cl)
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := analysis.AC(n, op, []float64{fp / 100, fp})
	if err != nil {
		t.Fatal(err)
	}
	tf, _ := ac.V("out")
	drop := measure.GainDB(tf[0]) - measure.GainDB(tf[1])
	if math.Abs(drop-3.0103) > 0.1 {
		t.Errorf("gain drop at pole = %g dB, want 3", drop)
	}
}

func TestAmpLoadedGainDivision(t *testing.T) {
	// With a resistive load equal to Ro, the output divides by 2.
	n := ampBench(40, 50e3, 1e-15)
	out, _ := n.NodeIndex("out")
	n.MustAdd(&circuit.Resistor{Inst: "RL", A: out, B: circuit.Ground, R: 50e3})
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := analysis.AC(n, op, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	tf, _ := ac.V("out")
	want := 100.0 / 2
	if got := cmplx.Abs(tf[0]); math.Abs(got-want)/want > 0.01 {
		t.Errorf("loaded gain = %g, want %g", got, want)
	}
}

func TestOTATransconductor(t *testing.T) {
	// gm cell into a load resistor: gain = gm·(RL ∥ Ro).
	n := circuit.New("gmcell")
	in := n.Node("in")
	out := n.Node("out")
	gm, ro, rl := 1e-3, 1e6, 10e3
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: circuit.Ground, ACMag: 1})
	n.MustAdd(&OTA{Inst: "G1", InP: in, InN: circuit.Ground, Out: out, Gm: gm, Ro: ro})
	n.MustAdd(&circuit.Resistor{Inst: "RL", A: out, B: circuit.Ground, R: rl})
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := analysis.AC(n, op, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	tf, _ := ac.V("out")
	want := gm * (rl * ro / (rl + ro))
	if got := cmplx.Abs(tf[0]); math.Abs(got-want)/want > 0.01 {
		t.Errorf("gm-cell gain = %g, want %g", got, want)
	}
}

func TestOTAEquivalentToAmp(t *testing.T) {
	// K = Gm·Ro: the two behavioural forms must agree when unloaded.
	gm, ro := 1e-4, 1e6
	gainDB := 20 * math.Log10(gm*ro)

	build := func(dev circuit.Device) complex128 {
		n := circuit.New("x")
		in := n.Node("in")
		out := n.Node("out")
		n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: circuit.Ground, ACMag: 1})
		switch d := dev.(type) {
		case *Amp:
			d.InP, d.InN, d.Out = in, circuit.Ground, out
			n.MustAdd(d)
		case *OTA:
			d.InP, d.InN, d.Out = in, circuit.Ground, out
			n.MustAdd(d)
		}
		n.MustAdd(&circuit.Resistor{Inst: "RB", A: out, B: circuit.Ground, R: 1e12})
		op, err := analysis.OP(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := analysis.AC(n, op, []float64{10})
		if err != nil {
			t.Fatal(err)
		}
		tf, _ := ac.V("out")
		return tf[0]
	}
	a := build(&Amp{Inst: "X", GainDB: gainDB, Ro: ro})
	o := build(&OTA{Inst: "X", Gm: gm, Ro: ro})
	if math.Abs(cmplx.Abs(a)-cmplx.Abs(o))/cmplx.Abs(a) > 1e-6 {
		t.Errorf("Amp |H| = %g, OTA |H| = %g", cmplx.Abs(a), cmplx.Abs(o))
	}
}

func TestFromPerf(t *testing.T) {
	perf := ota.Perf{GainDB: 50, UnityHz: 3.5e6}
	cl := 10e-12
	gm, ro := FromPerf(perf, cl)
	wantGm := 2 * math.Pi * 3.5e6 * cl
	if math.Abs(gm-wantGm)/wantGm > 1e-9 {
		t.Errorf("gm = %g, want %g", gm, wantGm)
	}
	a := math.Pow(10, 2.5)
	if math.Abs(gm*ro-a)/a > 1e-9 {
		t.Errorf("gm·ro = %g, want %g", gm*ro, a)
	}
}

func modelForVA(t *testing.T) *core.Model {
	t.Helper()
	var pts []core.ParetoPoint
	for i := 0; i < 10; i++ {
		pts = append(pts, core.ParetoPoint{
			Params:   []float64{10 + float64(i), 1 + 0.1*float64(i), 20 - float64(i), 2},
			Perf:     [2]float64{49 + 0.3*float64(i), 77 - 0.4*float64(i)},
			DeltaPct: [2]float64{0.5, 1.6},
		})
	}
	m, err := core.BuildModel(pts, []string{"gain_db", "pm_deg"},
		[]string{"W1", "L1", "W2", "L2"}, []string{"um", "um", "um", "um"},
		core.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateVerilogA(t *testing.T) {
	m := modelForVA(t)
	va := GenerateVerilogA(m, VAOptions{})
	// Structure of the paper's listing.
	for _, want := range []string{
		"module ota_behav",
		`$table_model(gain, "gain_delta.tbl", "3E")`,
		`$table_model(pm, "pm_delta.tbl", "3E")`,
		"gain_prop = ((gain_delta/100)*gain)+gain",
		`"lp1_data.tbl", "3E,3E"`,
		`"lp4_data.tbl", "3E,3E"`,
		`$fopen("params.dat")`,
		"gain_in_v = pow(10, gain_prop/20)",
		"V(out) <+ V(inp)*(-gain_in_v) - I(out)*ro;",
		"endmodule",
	} {
		if !strings.Contains(va, want) {
			t.Errorf("generated Verilog-A missing %q", want)
		}
	}
	// One lp table per parameter.
	if strings.Count(va, "lp") < 4 {
		t.Error("missing parameter tables")
	}
}

func TestGenerateVerilogAOptions(t *testing.T) {
	m := modelForVA(t)
	va := GenerateVerilogA(m, VAOptions{ModuleName: "my_ota", Control: "1L", ParamsFile: "out.dat"})
	if !strings.Contains(va, "module my_ota") {
		t.Error("module name option ignored")
	}
	if !strings.Contains(va, `"1L,1L"`) || !strings.Contains(va, `"1L")`) {
		t.Error("control option ignored")
	}
	if !strings.Contains(va, `$fopen("out.dat")`) {
		t.Error("params file option ignored")
	}
}
