// Package behave implements the behavioural OTA model of the paper's
// §4.4 listing in two forms:
//
//   - Go devices (Amp, OTA) that stamp directly into this repository's
//     MNA simulator, so the behavioural model can replace the 10-transistor
//     OTA inside larger circuits (the §5 filter) at a fraction of the cost;
//   - a Verilog-A code generator that emits the paper's module text and
//     $table_model data files for use with external simulators.
//
// The paper's analogue block is
//
//	V(out) <+ V(inp)·(−gain_in_v) − I(out)·ro
//
// — a finite-gain inverting amplifier with output resistance. Loaded by
// a capacitance this produces the dominant pole; the divergence above
// ~40 MHz in Fig 8 is exactly the absence of the transistor model's
// parasitic poles.
package behave

import (
	"math"

	"analogyield/internal/circuit"
	"analogyield/internal/ota"
)

// Amp is the paper's behavioural amplifier: v(out) = K·(v(inP)−v(inN))
// with Thevenin output resistance Ro. K = −10^(GainDB/20) when Invert is
// set (the paper's convention), +10^(GainDB/20) otherwise.
//
// It stamps as the Norton equivalent (no auxiliary branch):
// a conductance 1/Ro at the output plus controlled current K/Ro·v(in).
type Amp struct {
	Inst          string
	InP, InN, Out int
	GainDB        float64 // DC gain magnitude, dB
	Ro            float64 // output resistance, ohms (> 0)
	Invert        bool    // paper's model inverts
}

// Name returns the instance name.
func (a *Amp) Name() string { return a.Inst }

// Branches returns 0 (Norton form needs no branch current).
func (a *Amp) Branches() int { return 0 }

// Copy returns a deep copy.
func (a *Amp) Copy() circuit.Device { c := *a; return &c }

// K returns the signed linear gain.
func (a *Amp) K() float64 {
	k := math.Pow(10, a.GainDB/20)
	if a.Invert {
		k = -k
	}
	return k
}

func (a *Amp) stamp(addJ func(i, j int, v float64)) {
	g := 1 / a.Ro
	kg := a.K() * g
	// I(out→device) = (v(out) − K·v(in)) / Ro.
	addJ(a.Out, a.Out, g)
	addJ(a.Out, a.InP, -kg)
	addJ(a.Out, a.InN, kg)
}

// StampDC stamps the linear amplifier.
func (a *Amp) StampDC(ctx *circuit.DCCtx, _ int) { a.stamp(ctx.AddJ) }

// StampAC stamps the linear amplifier.
func (a *Amp) StampAC(ctx *circuit.ACCtx, _ int) {
	a.stamp(func(i, j int, v float64) { ctx.AddA(i, j, complex(v, 0)) })
}

// StampTran stamps the linear amplifier.
func (a *Amp) StampTran(ctx *circuit.TranCtx, _ int) { a.stamp(ctx.AddJ) }

// OTA is the transconductor form of the behavioural model: a current
// Gm·(v(inP)−v(inN)) pushed into the output node against an output
// conductance 1/Ro (and optional output capacitance Co). The two forms
// are equivalent (K = Gm·Ro); the OTA form is the natural element for
// gm-C filters.
type OTA struct {
	Inst          string
	InP, InN, Out int
	Gm            float64 // transconductance, S
	Ro            float64 // output resistance, ohms
	Co            float64 // output capacitance, F (optional)
}

// Name returns the instance name.
func (o *OTA) Name() string { return o.Inst }

// Branches returns 0.
func (o *OTA) Branches() int { return 0 }

// Copy returns a deep copy.
func (o *OTA) Copy() circuit.Device { c := *o; return &c }

func (o *OTA) stamp(addJ func(i, j int, v float64)) {
	// Current Gm·(vp−vn) INTO Out: row Out gets −Gm·vp +Gm·vn on the
	// left-hand side.
	addJ(o.Out, o.InP, -o.Gm)
	addJ(o.Out, o.InN, o.Gm)
	if o.Ro > 0 {
		addJ(o.Out, o.Out, 1/o.Ro)
	}
}

// StampDC stamps the transconductor.
func (o *OTA) StampDC(ctx *circuit.DCCtx, _ int) { o.stamp(ctx.AddJ) }

// StampAC stamps the transconductor plus its output capacitance.
func (o *OTA) StampAC(ctx *circuit.ACCtx, _ int) {
	o.stamp(func(i, j int, v float64) { ctx.AddA(i, j, complex(v, 0)) })
	if o.Co > 0 {
		ctx.AddA(o.Out, o.Out, complex(0, ctx.Omega*o.Co))
	}
}

// StampTran stamps the transconductor (output capacitance by backward
// Euler).
func (o *OTA) StampTran(ctx *circuit.TranCtx, _ int) {
	o.stamp(ctx.AddJ)
	if o.Co > 0 {
		geq := o.Co / ctx.Dt
		ctx.AddJ(o.Out, o.Out, geq)
		ctx.AddB(o.Out, geq*ctx.VPrev(o.Out))
	}
}

// FromPerf derives the behavioural parameters from a measured (or
// table-interpolated) transistor-level performance: the effective
// transconductance from the unity-gain frequency and known load
// (gm = 2π·fu·CL) and the output resistance from the DC gain
// (ro = A/gm).
func FromPerf(perf ota.Perf, cl float64) (gm, ro float64) {
	gm = 2 * math.Pi * perf.UnityHz * cl
	a := math.Pow(10, perf.GainDB/20)
	if gm > 0 {
		ro = a / gm
	}
	return gm, ro
}
