package measure

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"analogyield/internal/num"
)

// onePole builds H(f) = A0 / (1 + j f/fp).
func onePole(freqs []float64, a0, fp float64) []complex128 {
	out := make([]complex128, len(freqs))
	for i, f := range freqs {
		out[i] = complex(a0, 0) / complex(1, f/fp)
	}
	return out
}

// twoPole builds H(f) = A0 / ((1 + j f/fp1)(1 + j f/fp2)).
func twoPole(freqs []float64, a0, fp1, fp2 float64) []complex128 {
	out := make([]complex128, len(freqs))
	for i, f := range freqs {
		out[i] = complex(a0, 0) / (complex(1, f/fp1) * complex(1, f/fp2))
	}
	return out
}

func sweep() []float64 { return num.Logspace(1, 1e9, 400) }

func TestGainDB(t *testing.T) {
	if g := GainDB(complex(10, 0)); math.Abs(g-20) > 1e-12 {
		t.Errorf("GainDB(10) = %g, want 20", g)
	}
	if g := GainDB(complex(0, 1)); math.Abs(g) > 1e-12 {
		t.Errorf("GainDB(j) = %g, want 0", g)
	}
}

func TestDCGainDB(t *testing.T) {
	fs := sweep()
	tf := onePole(fs, 316.23, 1e4) // 50 dB
	if g := DCGainDB(tf); math.Abs(g-50) > 0.01 {
		t.Errorf("DCGainDB = %g, want 50", g)
	}
	if !math.IsInf(DCGainDB(nil), -1) {
		t.Error("DCGainDB(nil) should be -Inf")
	}
}

func TestUnityGainFreqOnePole(t *testing.T) {
	// Single pole: fu ≈ A0 · fp for A0 >> 1.
	fs := sweep()
	a0, fp := 100.0, 1e4
	tf := onePole(fs, a0, fp)
	fu, err := UnityGainFreq(fs, tf)
	if err != nil {
		t.Fatal(err)
	}
	want := fp * math.Sqrt(a0*a0-1)
	if math.Abs(fu-want)/want > 0.02 {
		t.Errorf("fu = %g, want %g", fu, want)
	}
}

func TestUnityGainFreqNotFound(t *testing.T) {
	fs := sweep()
	tf := onePole(fs, 0.5, 1e4) // never above 0 dB
	if _, err := UnityGainFreq(fs, tf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	// Gain that never falls below 0 dB.
	flat := make([]complex128, len(fs))
	for i := range flat {
		flat[i] = 10
	}
	if _, err := UnityGainFreq(fs, flat); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound for flat gain, got %v", err)
	}
}

func TestPhaseMarginOnePole(t *testing.T) {
	// A single-pole system has PM = 180 − 90·(asymptotic) ≈ 90° + small
	// correction; exactly PM = 180 − atan(fu/fp) ≈ 90.57° for A0=100.
	fs := sweep()
	a0, fp := 100.0, 1e4
	tf := onePole(fs, a0, fp)
	pm, err := PhaseMarginDeg(fs, tf)
	if err != nil {
		t.Fatal(err)
	}
	fu := fp * math.Sqrt(a0*a0-1)
	want := 180 - math.Atan(fu/fp)*180/math.Pi
	if math.Abs(pm-want) > 1 {
		t.Errorf("PM = %g, want %g", pm, want)
	}
}

func TestPhaseMarginTwoPole(t *testing.T) {
	// Second pole at fu reduces PM by ~45°.
	fs := sweep()
	a0, fp1 := 1000.0, 1e3
	fuOnePole := fp1 * a0
	tf := twoPole(fs, a0, fp1, fuOnePole)
	pm, err := PhaseMarginDeg(fs, tf)
	if err != nil {
		t.Fatal(err)
	}
	if pm < 40 || pm > 60 {
		t.Errorf("two-pole PM = %g, want ~45..52", pm)
	}
}

func TestInvertingPhaseMargin(t *testing.T) {
	fs := sweep()
	a0, fp := 100.0, 1e4
	tf := onePole(fs, a0, fp)
	inv := make([]complex128, len(tf))
	for i, h := range tf {
		inv[i] = -h
	}
	pmDirect, err := PhaseMarginDeg(fs, tf)
	if err != nil {
		t.Fatal(err)
	}
	pmInv, err := InvertingPhaseMargin(fs, inv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmDirect-pmInv) > 1e-6 {
		t.Errorf("inverting PM = %g, direct PM = %g", pmInv, pmDirect)
	}
}

func TestGainMargin(t *testing.T) {
	// Three coincident poles give −180° at f = √3·fp where gain has
	// dropped by 3·20·log10(2) = 18 dB relative to... compute directly.
	fs := sweep()
	a0, fp := 100.0, 1e4
	tf := make([]complex128, len(fs))
	for i, f := range fs {
		d := complex(1, f/fp)
		tf[i] = complex(a0, 0) / (d * d * d)
	}
	gm, err := GainMarginDB(fs, tf)
	if err != nil {
		t.Fatal(err)
	}
	// At f = √3 fp: |H| = a0/8 → GM = −20log10(a0/8) = −21.9 dB (unstable).
	want := -20 * math.Log10(a0/8)
	if math.Abs(gm-want) > 0.5 {
		t.Errorf("GM = %g dB, want %g", gm, want)
	}
}

func TestGainMarginNotFound(t *testing.T) {
	fs := sweep()
	tf := onePole(fs, 100, 1e4) // phase never reaches −180
	if _, err := GainMarginDB(fs, tf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestBandwidth3dB(t *testing.T) {
	fs := sweep()
	fp := 2e5
	tf := onePole(fs, 10, fp)
	bw, err := Bandwidth3dB(fs, tf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw-fp)/fp > 0.02 {
		t.Errorf("BW = %g, want %g", bw, fp)
	}
}

func TestUnwrapPhase(t *testing.T) {
	fs := sweep()
	tf := twoPole(fs, 1000, 1e3, 1e5)
	ph := UnwrapPhaseDeg(tf)
	// Final phase should approach −180 continuously, never jumping to +180.
	for i := 1; i < len(ph); i++ {
		if math.Abs(ph[i]-ph[i-1]) > 90 {
			t.Fatalf("phase jump at %d: %g -> %g", i, ph[i-1], ph[i])
		}
	}
	if ph[len(ph)-1] > -150 {
		t.Errorf("final unwrapped phase = %g, want near -180", ph[len(ph)-1])
	}
	if len(UnwrapPhaseDeg(nil)) != 0 {
		t.Error("UnwrapPhaseDeg(nil) should be empty")
	}
}

func TestPhaseAtAndGainAt(t *testing.T) {
	fs := sweep()
	fp := 1e4
	tf := onePole(fs, 100, fp)
	ph, err := PhaseAt(fs, tf, fp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph+45) > 1 {
		t.Errorf("phase at pole = %g, want -45", ph)
	}
	g, err := GainAt(fs, tf, fp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-(40-3.0103)) > 0.1 {
		t.Errorf("gain at pole = %g, want ~36.99", g)
	}
	if _, err := GainAt(fs, tf, 1e12); !errors.Is(err, ErrNotFound) {
		t.Error("out-of-sweep GainAt accepted")
	}
	if _, err := PhaseAt(fs, tf, 0.1); !errors.Is(err, ErrNotFound) {
		t.Error("out-of-sweep PhaseAt accepted")
	}
}

func TestPeak(t *testing.T) {
	fs := []float64{1, 10, 100}
	tf := []complex128{1, 5, 2}
	f, g := Peak(fs, tf)
	if f != 10 || math.Abs(g-GainDB(5)) > 1e-12 {
		t.Errorf("Peak = (%g, %g)", f, g)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := UnityGainFreq([]float64{1}, []complex128{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := PhaseMarginDeg([]float64{1, 2}, []complex128{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Bandwidth3dB(nil, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestPhaseDegRange(t *testing.T) {
	if p := PhaseDeg(complex(-1, 0)); math.Abs(math.Abs(p)-180) > 1e-9 {
		t.Errorf("PhaseDeg(-1) = %g", p)
	}
	if p := PhaseDeg(cmplx.Rect(1, math.Pi/4)); math.Abs(p-45) > 1e-9 {
		t.Errorf("PhaseDeg(e^jpi/4) = %g", p)
	}
}

func TestSlewRate(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	vs := []float64{0, 0.5, 2.5, 3}
	sr, err := SlewRate(times, vs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sr-2) > 1e-12 {
		t.Errorf("SlewRate = %g, want 2", sr)
	}
	if _, err := SlewRate([]float64{0}, []float64{0}); err == nil {
		t.Error("single point accepted")
	}
}

func TestSettlingTime(t *testing.T) {
	var times, vs []float64
	for i := 0; i <= 100; i++ {
		tt := float64(i) * 0.1
		times = append(times, tt)
		vs = append(vs, 1-math.Exp(-tt)) // tau = 1
	}
	st, err := SettlingTime(times, vs, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Settles within 1% of final (~0.99995 of 1) around t ≈ ln(1/0.01) ≈ 4.6.
	if st < 3.5 || st > 5.5 {
		t.Errorf("settling time = %g, want ~4.6", st)
	}
	// An oscillation only "settles" at the final sample itself, so its
	// reported settling time must be essentially the whole window.
	osc := make([]float64, len(times))
	for i := range osc {
		osc[i] = math.Sin(times[i] * 10)
	}
	if st, err := SettlingTime(times, osc, 0, 0.001); err == nil && st < 9 {
		t.Errorf("oscillation settled at %g, want near the end of the window", st)
	}
}

func TestTransitionSlew(t *testing.T) {
	// Ramp from 0 to 1 V over 1 µs with a fast feedthrough spike at the
	// start that would fool the max-derivative measure.
	var times, vs []float64
	times = append(times, 0, 1e-9, 2e-9)
	vs = append(vs, 0, 0.05, 0) // spike
	for i := 0; i <= 100; i++ {
		times = append(times, 2e-9+float64(i)*1e-8)
		vs = append(vs, float64(i)/100)
	}
	sr, err := TransitionSlew(times, vs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 1e-6
	if math.Abs(sr-want)/want > 0.05 {
		t.Errorf("TransitionSlew = %g, want %g", sr, want)
	}
	// The raw max derivative sees the spike instead.
	raw, _ := SlewRate(times, vs)
	if raw < 10*sr {
		t.Errorf("expected the spike to dominate SlewRate: %g vs %g", raw, sr)
	}
	// Never-crossing waveform.
	if _, err := TransitionSlew(times, vs, 5, 6); err == nil {
		t.Error("uncrossed levels accepted")
	}
}
