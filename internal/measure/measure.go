// Package measure extracts scalar performance figures from frequency-
// and time-domain simulation results: gain in dB, unity-gain frequency,
// phase margin, gain margin and −3 dB bandwidth. These are the
// performance functions of the paper's objective set (open-loop gain and
// phase margin for the OTA).
package measure

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNotFound is returned when a crossing (unity gain, −3 dB, −180°)
// does not occur within the swept range.
var ErrNotFound = errors.New("measure: crossing not found in swept range")

// GainDB converts a complex transfer value to decibels (20·log10|H|).
func GainDB(h complex128) float64 {
	return 20 * math.Log10(cmplx.Abs(h))
}

// PhaseDeg returns the principal-value phase of h in degrees (−180, 180].
func PhaseDeg(h complex128) float64 {
	return cmplx.Phase(h) * 180 / math.Pi
}

// UnwrapPhaseDeg converts a transfer-function sweep to a continuous
// phase curve in degrees, removing ±360° jumps between adjacent points.
func UnwrapPhaseDeg(tf []complex128) []float64 {
	out := make([]float64, len(tf))
	if len(tf) == 0 {
		return out
	}
	out[0] = PhaseDeg(tf[0])
	for i := 1; i < len(tf); i++ {
		p := PhaseDeg(tf[i])
		prev := out[i-1]
		for p-prev > 180 {
			p -= 360
		}
		for p-prev < -180 {
			p += 360
		}
		out[i] = p
	}
	return out
}

// DCGainDB returns the gain of the lowest-frequency point in dB. The
// sweep must start well below the first pole for this to approximate the
// true DC gain.
func DCGainDB(tf []complex128) float64 {
	if len(tf) == 0 {
		return math.Inf(-1)
	}
	return GainDB(tf[0])
}

// interpLog linearly interpolates y over log10(f) between two sweep
// points to the location where y crosses target.
func interpLog(f0, f1, y0, y1, target float64) float64 {
	if y1 == y0 {
		return math.Sqrt(f0 * f1)
	}
	t := (target - y0) / (y1 - y0)
	return math.Pow(10, math.Log10(f0)+t*(math.Log10(f1)-math.Log10(f0)))
}

// UnityGainFreq returns the frequency at which |H| crosses 1 (0 dB),
// interpolating between sweep points on a log-frequency/dB grid.
func UnityGainFreq(freqs []float64, tf []complex128) (float64, error) {
	if len(freqs) != len(tf) || len(freqs) < 2 {
		return 0, fmt.Errorf("measure: need matching sweeps of >= 2 points")
	}
	prev := GainDB(tf[0])
	if prev < 0 {
		return 0, fmt.Errorf("%w: gain already below 0 dB at %g Hz", ErrNotFound, freqs[0])
	}
	for i := 1; i < len(freqs); i++ {
		g := GainDB(tf[i])
		if prev >= 0 && g < 0 {
			return interpLog(freqs[i-1], freqs[i], prev, g, 0), nil
		}
		prev = g
	}
	return 0, fmt.Errorf("%w: unity-gain crossing above %g Hz", ErrNotFound, freqs[len(freqs)-1])
}

// PhaseAt returns the unwrapped phase (degrees) interpolated at
// frequency f on a log-frequency grid.
func PhaseAt(freqs []float64, tf []complex128, f float64) (float64, error) {
	if len(freqs) != len(tf) || len(freqs) < 2 {
		return 0, fmt.Errorf("measure: need matching sweeps of >= 2 points")
	}
	if f < freqs[0] || f > freqs[len(freqs)-1] {
		return 0, fmt.Errorf("%w: %g Hz outside sweep", ErrNotFound, f)
	}
	ph := UnwrapPhaseDeg(tf)
	for i := 1; i < len(freqs); i++ {
		if f <= freqs[i] {
			lf0, lf1 := math.Log10(freqs[i-1]), math.Log10(freqs[i])
			t := 0.0
			if lf1 > lf0 {
				t = (math.Log10(f) - lf0) / (lf1 - lf0)
			}
			return ph[i-1] + t*(ph[i]-ph[i-1]), nil
		}
	}
	return ph[len(ph)-1], nil
}

// PhaseMarginDeg returns 180° + phase at the unity-gain frequency, the
// classic stability margin of a negative-feedback loop whose open-loop
// response is tf. For an inverting amplifier measured as Vout/Vin the
// caller should pass the loop gain (i.e. −H); InvertingPhaseMargin
// handles that common case.
func PhaseMarginDeg(freqs []float64, tf []complex128) (float64, error) {
	fu, err := UnityGainFreq(freqs, tf)
	if err != nil {
		return 0, err
	}
	ph, err := PhaseAt(freqs, tf, fu)
	if err != nil {
		return 0, err
	}
	return 180 + ph, nil
}

// InvertingPhaseMargin computes the phase margin of a loop built around
// an inverting amplifier whose measured response is tf = Vout/Vin
// (DC phase ≈ ±180°). The loop gain is −tf, so each point is negated
// before the margin is evaluated.
func InvertingPhaseMargin(freqs []float64, tf []complex128) (float64, error) {
	neg := make([]complex128, len(tf))
	for i, h := range tf {
		neg[i] = -h
	}
	return PhaseMarginDeg(freqs, neg)
}

// GainMarginDB returns −gain(dB) at the frequency where the unwrapped
// phase crosses −180°.
func GainMarginDB(freqs []float64, tf []complex128) (float64, error) {
	if len(freqs) != len(tf) || len(freqs) < 2 {
		return 0, fmt.Errorf("measure: need matching sweeps of >= 2 points")
	}
	ph := UnwrapPhaseDeg(tf)
	for i := 1; i < len(freqs); i++ {
		if (ph[i-1] > -180 && ph[i] <= -180) || (ph[i-1] < -180 && ph[i] >= -180) {
			f := interpLog(freqs[i-1], freqs[i], ph[i-1], ph[i], -180)
			g0, g1 := GainDB(tf[i-1]), GainDB(tf[i])
			lf0, lf1 := math.Log10(freqs[i-1]), math.Log10(freqs[i])
			t := 0.0
			if lf1 > lf0 {
				t = (math.Log10(f) - lf0) / (lf1 - lf0)
			}
			return -(g0 + t*(g1-g0)), nil
		}
	}
	return 0, fmt.Errorf("%w: no −180° phase crossing", ErrNotFound)
}

// Bandwidth3dB returns the frequency where the gain first falls 3 dB
// below the lowest-frequency gain.
func Bandwidth3dB(freqs []float64, tf []complex128) (float64, error) {
	if len(freqs) != len(tf) || len(freqs) < 2 {
		return 0, fmt.Errorf("measure: need matching sweeps of >= 2 points")
	}
	ref := GainDB(tf[0]) - 3
	prev := GainDB(tf[0])
	for i := 1; i < len(freqs); i++ {
		g := GainDB(tf[i])
		if prev >= ref && g < ref {
			return interpLog(freqs[i-1], freqs[i], prev, g, ref), nil
		}
		prev = g
	}
	return 0, fmt.Errorf("%w: response never falls 3 dB", ErrNotFound)
}

// GainAt returns the gain in dB interpolated at frequency f.
func GainAt(freqs []float64, tf []complex128, f float64) (float64, error) {
	if len(freqs) != len(tf) || len(freqs) < 2 {
		return 0, fmt.Errorf("measure: need matching sweeps of >= 2 points")
	}
	if f < freqs[0] || f > freqs[len(freqs)-1] {
		return 0, fmt.Errorf("%w: %g Hz outside sweep", ErrNotFound, f)
	}
	for i := 1; i < len(freqs); i++ {
		if f <= freqs[i] {
			g0, g1 := GainDB(tf[i-1]), GainDB(tf[i])
			lf0, lf1 := math.Log10(freqs[i-1]), math.Log10(freqs[i])
			t := 0.0
			if lf1 > lf0 {
				t = (math.Log10(f) - lf0) / (lf1 - lf0)
			}
			return g0 + t*(g1-g0), nil
		}
	}
	return GainDB(tf[len(tf)-1]), nil
}

// Peak returns the maximum gain (dB) over the sweep and its frequency.
func Peak(freqs []float64, tf []complex128) (f float64, gainDB float64) {
	best := math.Inf(-1)
	for i, h := range tf {
		if g := GainDB(h); g > best {
			best, f = g, freqs[i]
		}
	}
	return f, best
}

// SlewRate returns the maximum |dv/dt| of a sampled waveform (V/s), the
// classic large-signal speed figure of a buffer step response.
func SlewRate(times, vs []float64) (float64, error) {
	if len(times) != len(vs) || len(times) < 2 {
		return 0, fmt.Errorf("measure: need matching waveforms of >= 2 points")
	}
	best := 0.0
	for i := 1; i < len(times); i++ {
		dt := times[i] - times[i-1]
		if dt <= 0 {
			continue
		}
		if r := math.Abs(vs[i]-vs[i-1]) / dt; r > best {
			best = r
		}
	}
	return best, nil
}

// SettlingTime returns the time after tEdge at which the waveform enters
// and stays within ±tol of its final value.
func SettlingTime(times, vs []float64, tEdge, tol float64) (float64, error) {
	if len(times) != len(vs) || len(times) < 2 {
		return 0, fmt.Errorf("measure: need matching waveforms of >= 2 points")
	}
	final := vs[len(vs)-1]
	settled := -1.0
	for i := range times {
		if times[i] < tEdge {
			continue
		}
		if math.Abs(vs[i]-final) <= tol {
			if settled < 0 {
				settled = times[i]
			}
		} else {
			settled = -1
		}
	}
	if settled < 0 {
		return 0, fmt.Errorf("%w: waveform never settles within %g", ErrNotFound, tol)
	}
	return settled - tEdge, nil
}

// TransitionSlew measures the slew rate of a step transition as the
// average dv/dt between the 20% and 80% crossing levels of the excursion
// from v0 to v1. Unlike the raw maximum derivative (SlewRate), this is
// immune to capacitive feedthrough spikes at the driving edge.
func TransitionSlew(times, vs []float64, v0, v1 float64) (float64, error) {
	if len(times) != len(vs) || len(times) < 2 {
		return 0, fmt.Errorf("measure: need matching waveforms of >= 2 points")
	}
	lo := v0 + 0.2*(v1-v0)
	hi := v0 + 0.8*(v1-v0)
	// First crossing of the 80% level...
	tHi := math.NaN()
	iHi := -1
	for i := 1; i < len(times); i++ {
		if crossed(vs[i-1], vs[i], hi) {
			tHi = crossTime(times[i-1], times[i], vs[i-1], vs[i], hi)
			iHi = i
			break
		}
	}
	if math.IsNaN(tHi) {
		return 0, fmt.Errorf("%w: transition levels not crossed", ErrNotFound)
	}
	// ...and the *latest* 20% crossing before it, so a brief feedthrough
	// spike through the low level early on does not fake a long edge.
	tLo := math.NaN()
	for i := iHi; i >= 1; i-- {
		if crossed(vs[i-1], vs[i], lo) {
			tLo = crossTime(times[i-1], times[i], vs[i-1], vs[i], lo)
			break
		}
	}
	if math.IsNaN(tLo) || tHi <= tLo {
		return 0, fmt.Errorf("%w: transition levels not crossed", ErrNotFound)
	}
	return math.Abs(hi-lo) / (tHi - tLo), nil
}

func crossed(a, b, level float64) bool {
	return (a <= level && level <= b) || (b <= level && level <= a)
}

func crossTime(t0, t1, v0, v1, level float64) float64 {
	if v1 == v0 {
		return t0
	}
	return t0 + (t1-t0)*(level-v0)/(v1-v0)
}
