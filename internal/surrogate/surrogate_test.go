package surrogate

import (
	"math"
	"math/rand"
	"testing"
)

// trainSmooth fits a model to a smooth 2-output function of 4 features.
func trainSmooth(t *testing.T, n int, noise float64) (*Model, func(x []float64) [2]float64) {
	t.Helper()
	f := func(x []float64) [2]float64 {
		return [2]float64{
			3*x[0] - 2*x[1] + 0.3*x[2]*x[3] + 10,
			x[0]*x[0] - x[3] + 100,
		}
	}
	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, n)
	ys := make([][]float64, n)
	for i := range xs {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := f(x)
		xs[i] = x
		ys[i] = []float64{y[0] + noise*rng.NormFloat64(), y[1] + noise*rng.NormFloat64()}
	}
	g, err := Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	return g, func(x []float64) [2]float64 { return f(x) }
}

func TestPredictSmoothFunction(t *testing.T) {
	g, f := trainSmooth(t, 64, 0)
	rng := rand.New(rand.NewSource(2))
	mean := make([]float64, 2)
	sd := make([]float64, 2)
	for i := 0; i < 50; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if err := g.Predict(x, mean, sd); err != nil {
			t.Fatal(err)
		}
		want := f(x)
		for k := 0; k < 2; k++ {
			// Interpolation error within the training cloud should be
			// well inside the model's own uncertainty band.
			if err := math.Abs(mean[k] - want[k]); err > 4*sd[k]+0.3 {
				t.Errorf("point %d output %d: |err| %.3g vs sd %.3g", i, k, err, sd[k])
			}
			if sd[k] <= 0 {
				t.Errorf("point %d output %d: non-positive sd %g", i, k, sd[k])
			}
		}
	}
}

// TestUncertaintyGrowsAway checks the predictive sd expands far outside
// the training cloud — the property the filter's uncertain band relies
// on.
func TestUncertaintyGrowsAway(t *testing.T) {
	g, _ := trainSmooth(t, 48, 0)
	sdIn := make([]float64, 2)
	sdOut := make([]float64, 2)
	if err := g.Predict([]float64{0, 0, 0, 0}, nil, sdIn); err != nil {
		t.Fatal(err)
	}
	if err := g.Predict([]float64{30, -30, 30, -30}, nil, sdOut); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if sdOut[k] <= 2*sdIn[k] {
			t.Errorf("output %d: sd far away %.3g not ≫ sd at centre %.3g", k, sdOut[k], sdIn[k])
		}
	}
}

// TestNoiseFloor checks observation noise the features cannot explain
// shows up in the LOO noise estimate and lower-bounds the predictive sd.
func TestNoiseFloor(t *testing.T) {
	const noise = 0.5
	g, _ := trainSmooth(t, 64, noise)
	if ns := g.NoiseSd(0); ns < noise/3 || ns > noise*4 {
		t.Errorf("NoiseSd = %g, want around %g", ns, noise)
	}
	sd := make([]float64, 2)
	if err := g.Predict([]float64{0.1, 0.2, -0.1, 0}, nil, sd); err != nil {
		t.Fatal(err)
	}
	if sd[0] < g.NoiseSd(0) {
		t.Errorf("predictive sd %g below noise floor %g", sd[0], g.NoiseSd(0))
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	x := [][]float64{{1}, {2}, {3}, {4}}
	if _, err := Train(x, [][]float64{{1}, {2}, {3}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train(x, [][]float64{{1}, {2}, {3, 4}, {4}}); err == nil {
		t.Error("ragged outputs accepted")
	}
	same := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	if _, err := Train(same, [][]float64{{1}, {2}, {3}, {4}}); err == nil {
		t.Error("degenerate identical inputs accepted")
	}
}

func TestConstantOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([][]float64, 16)
	ys := make([][]float64, 16)
	for i := range xs {
		xs[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		ys[i] = []float64{42}
	}
	g, err := Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mean := make([]float64, 1)
	if err := g.Predict([]float64{0.5, -0.5}, mean, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean[0]-42) > 1 {
		t.Errorf("constant-output prediction %g, want ~42", mean[0])
	}
}

func TestPredictFeatureWidth(t *testing.T) {
	g, _ := trainSmooth(t, 16, 0)
	if err := g.Predict([]float64{1, 2}, nil, nil); err == nil {
		t.Error("wrong feature width accepted")
	}
}

// TestLOOResidualsMatchDirect cross-checks the closed-form LOO noise
// estimate against literally refitting without each point, on a small
// set where that is cheap.
func TestLOOResidualsMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 12
	xs := make([][]float64, n)
	ys := make([][]float64, n)
	for i := range xs {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		xs[i] = x
		ys[i] = []float64{math.Sin(x[0]) + 0.5*x[1]}
	}
	g, err := Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var direct float64
	mean := make([]float64, 1)
	for i := 0; i < n; i++ {
		var xr, yr [][]float64
		for j := 0; j < n; j++ {
			if j != i {
				xr = append(xr, xs[j])
				yr = append(yr, ys[j])
			}
		}
		gi, err := Train(xr, yr)
		if err != nil {
			t.Fatal(err)
		}
		if err := gi.Predict(xs[i], mean, nil); err != nil {
			t.Fatal(err)
		}
		r := mean[0] - ys[i][0]
		direct += r * r
	}
	direct = math.Sqrt(direct / n)
	closed := g.NoiseSd(0)
	// The refit uses a slightly different lengthscale per fold, so only
	// the order of magnitude must agree.
	if closed > 5*direct+1e-9 || direct > 5*closed+1e-9 {
		t.Errorf("closed-form LOO sd %g vs direct %g", closed, direct)
	}
}
