// Package surrogate implements a lightweight Gaussian-process (RBF
// kernel) regressor used by the Monte Carlo surrogate-filter strategy:
// trained on an initial batch of fully simulated samples, it predicts
// the metric vector of further samples together with an honest
// uncertainty, so the filter can classify most candidates without a
// circuit simulation and route only the uncertain band through the full
// evaluator (the hybrid GPR approach of Fuhrländer & Schöps; see
// PAPERS.md).
//
// The implementation is deliberately small and dependency-free: one
// shared squared-exponential kernel matrix, one Cholesky factorisation
// reused across all outputs, a median-heuristic lengthscale, and a
// leave-one-out residual estimate folded into the predictive standard
// deviation so that noise the features cannot explain (e.g. local
// device mismatch, which the filter's 4-dimensional global-shift
// features do not see) widens the uncertainty band instead of producing
// overconfident classifications. Training sets are tens of points, so
// the O(n³) factorisation is microseconds.
package surrogate

import (
	"fmt"
	"math"
	"sort"
)

// nugget is the relative noise variance added to the kernel diagonal.
// It regularises the factorisation and represents the irreducible
// observation noise in standardised output units; the leave-one-out
// residuals then calibrate the actual noise level empirically.
const nugget = 1e-2

// Model is a trained multi-output GP sharing one kernel across outputs.
// It is immutable after Train and safe for concurrent Predict calls.
type Model struct {
	x     [][]float64 // training inputs, n×d
	ell2  float64     // squared lengthscale
	chol  []float64   // lower Cholesky factor of K+λI, n×n row-major
	alpha [][]float64 // per-output (K+λI)⁻¹·ỹ, standardised
	yMu   []float64   // per-output training mean
	ySd   []float64   // per-output training sd (≥ tiny floor)
	looSd []float64   // per-output leave-one-out residual sd, standardised
	n, d  int
	m     int // outputs
}

// Train fits the GP to inputs X (n samples × d features) and outputs
// Y (n samples × m metrics). It needs at least 4 samples; rows of Y
// must all have the same width.
func Train(x [][]float64, y [][]float64) (*Model, error) {
	n := len(x)
	if n < 4 {
		return nil, fmt.Errorf("surrogate: %d training samples, need at least 4", n)
	}
	if len(y) != n {
		return nil, fmt.Errorf("surrogate: %d inputs but %d outputs", n, len(y))
	}
	d := len(x[0])
	m := len(y[0])
	if d == 0 || m == 0 {
		return nil, fmt.Errorf("surrogate: empty feature or output vector")
	}
	for i := 0; i < n; i++ {
		if len(x[i]) != d || len(y[i]) != m {
			return nil, fmt.Errorf("surrogate: ragged training data at row %d", i)
		}
	}

	g := &Model{x: x, n: n, d: d, m: m}
	g.ell2 = medianSqDist(x)
	if g.ell2 == 0 {
		return nil, fmt.Errorf("surrogate: degenerate training inputs (all identical)")
	}

	// Standardise outputs so one nugget suits every metric scale.
	g.yMu = make([]float64, m)
	g.ySd = make([]float64, m)
	for k := 0; k < m; k++ {
		mu := 0.0
		for i := 0; i < n; i++ {
			mu += y[i][k]
		}
		mu /= float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			dlt := y[i][k] - mu
			ss += dlt * dlt
		}
		sd := math.Sqrt(ss / float64(n-1))
		if sd < 1e-300 {
			sd = 1 // constant output: predictions are exact, sd collapses
		}
		g.yMu[k], g.ySd[k] = mu, sd
	}

	// K + λI, factorised once for all outputs.
	km := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel(x[i], x[j])
			if i == j {
				v += nugget
			}
			km[i*n+j] = v
			km[j*n+i] = v
		}
	}
	chol, err := cholesky(km, n)
	if err != nil {
		return nil, fmt.Errorf("surrogate: %w", err)
	}
	g.chol = chol

	g.alpha = make([][]float64, m)
	g.looSd = make([]float64, m)
	// Diagonal of (K+λI)⁻¹ for the closed-form leave-one-out residuals
	// r_i = α_i / A⁻¹_ii (Rasmussen & Williams eq. 5.12).
	ainvDiag := invDiag(chol, n)
	buf := make([]float64, n)
	for k := 0; k < m; k++ {
		for i := 0; i < n; i++ {
			buf[i] = (y[i][k] - g.yMu[k]) / g.ySd[k]
		}
		a := cholSolve(chol, buf, n)
		g.alpha[k] = a
		ss := 0.0
		for i := 0; i < n; i++ {
			r := a[i] / ainvDiag[i]
			ss += r * r
		}
		g.looSd[k] = math.Sqrt(ss / float64(n))
	}
	return g, nil
}

// Outputs returns the number of metric outputs the model predicts.
func (g *Model) Outputs() int { return g.m }

// Predict fills mean and sd (each of length Outputs) with the
// predictive mean and total standard deviation — GP posterior sd plus
// the leave-one-out noise estimate — for the feature vector x.
// mean and sd may be nil to skip that output.
func (g *Model) Predict(x []float64, mean, sd []float64) error {
	if len(x) != g.d {
		return fmt.Errorf("surrogate: feature width %d, trained on %d", len(x), g.d)
	}
	ks := make([]float64, g.n)
	for i := 0; i < g.n; i++ {
		ks[i] = g.kernel(x, g.x[i])
	}
	if mean != nil {
		for k := 0; k < g.m; k++ {
			dot := 0.0
			for i := 0; i < g.n; i++ {
				dot += ks[i] * g.alpha[k][i]
			}
			mean[k] = g.yMu[k] + g.ySd[k]*dot
		}
	}
	if sd != nil {
		// Posterior variance 1 − k*ᵀ(K+λI)⁻¹k* via one triangular solve.
		v := forwardSolve(g.chol, ks, g.n)
		quad := 0.0
		for i := 0; i < g.n; i++ {
			quad += v[i] * v[i]
		}
		gpVar := 1 - quad
		if gpVar < 0 {
			gpVar = 0
		}
		for k := 0; k < g.m; k++ {
			tot := math.Sqrt(gpVar + g.looSd[k]*g.looSd[k])
			sd[k] = g.ySd[k] * tot
		}
	}
	return nil
}

// NoiseSd returns the leave-one-out residual standard deviation of
// output k in original units — the noise floor the features cannot
// explain. It lower-bounds every predictive sd.
func (g *Model) NoiseSd(k int) float64 { return g.ySd[k] * g.looSd[k] }

func (g *Model) kernel(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-0.5 * s / g.ell2)
}

// medianSqDist is the median heuristic for the squared lengthscale: the
// median of pairwise squared distances (subsampled for large n).
func medianSqDist(x [][]float64) float64 {
	n := len(x)
	step := 1
	if n > 64 {
		step = n / 64
	}
	var ds []float64
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			s := 0.0
			for k := range x[i] {
				d := x[i][k] - x[j][k]
				s += d * d
			}
			ds = append(ds, s)
		}
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Float64s(ds)
	return ds[len(ds)/2]
}

// cholesky returns the lower factor L of the SPD matrix a (n×n
// row-major), retrying with escalating diagonal jitter before giving
// up — kernel matrices of tightly clustered inputs are nearly singular.
func cholesky(a []float64, n int) ([]float64, error) {
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		l := make([]float64, n*n)
		ok := true
		for i := 0; i < n && ok; i++ {
			for j := 0; j <= i; j++ {
				s := a[i*n+j]
				if i == j {
					s += jitter
				}
				for k := 0; k < j; k++ {
					s -= l[i*n+k] * l[j*n+k]
				}
				if i == j {
					if s <= 0 {
						ok = false
						break
					}
					l[i*n+i] = math.Sqrt(s)
				} else {
					l[i*n+j] = s / l[j*n+j]
				}
			}
		}
		if ok {
			return l, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return nil, fmt.Errorf("kernel matrix not positive definite even with jitter")
}

// forwardSolve solves L·v = b.
func forwardSolve(l, b []float64, n int) []float64 {
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * v[k]
		}
		v[i] = s / l[i*n+i]
	}
	return v
}

// cholSolve solves (L·Lᵀ)·x = b.
func cholSolve(l, b []float64, n int) []float64 {
	x := forwardSolve(l, b, n)
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return x
}

// invDiag returns the diagonal of (L·Lᵀ)⁻¹: column i of L⁻¹ has squared
// norm equal to the i-th diagonal entry of the inverse.
func invDiag(l []float64, n int) []float64 {
	diag := make([]float64, n)
	col := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := range col {
			col[j] = 0
		}
		// Solve L·col = e_i; entries before i are zero.
		for j := i; j < n; j++ {
			s := 0.0
			if j == i {
				s = 1
			}
			for k := i; k < j; k++ {
				s -= l[j*n+k] * col[k]
			}
			col[j] = s / l[j*n+j]
		}
		sum := 0.0
		for j := i; j < n; j++ {
			sum += col[j] * col[j]
		}
		diag[i] = sum
	}
	return diag
}
