// Package filter implements the paper's §5 application: a 2nd-order
// low-pass gm-C biquad (Fig 9) built from two OTAs, designed to an
// anti-aliasing specification (Fig 10). The filter can be assembled
// either from the behavioural OTA model (fast — the point of the paper)
// or from the full transistor-level OTA (for verification, Fig 11); the
// three capacitors are optimised by a small MOO (30 individuals × 40
// generations, as in the paper) and the final design is verified by
// Monte Carlo yield analysis (500 samples → 100% in the paper).
//
// Topology (two-integrator loop):
//
//	OTA1: i = gm·(V(in) − V(out)) into node n1;  C1 from n1 to ground
//	OTA2: i = gm·(V(n1) − V(out)) into out;      C2 from out to ground
//	C3 bridges n1 and out (a tuning element the MOO may use or zero out)
//
// giving H(s) = gm1·gm2 / (C1C2·s² + gm1·C2·s·(…)) — with equal OTAs,
// ω0 = gm/√(C1C2) and Q = √(C1/C2) at C3 = 0.
package filter

import (
	"fmt"
	"math"

	"analogyield/internal/analysis"
	"analogyield/internal/behave"
	"analogyield/internal/circuit"
	"analogyield/internal/measure"
	"analogyield/internal/num"
	"analogyield/internal/ota"
	"analogyield/internal/process"
)

// Caps are the three designable capacitors of Fig 9.
type Caps struct {
	C1, C2, C3 float64 // farads
}

// Vector returns (C1, C2, C3).
func (c Caps) Vector() []float64 { return []float64{c.C1, c.C2, c.C3} }

// CapSpace is the box-constrained capacitor design space.
type CapSpace struct {
	Lo, Hi [3]float64
}

// DefaultCapSpace spans 1-100 pF for C1/C2 and 0-20 pF for the bridge
// capacitor C3.
func DefaultCapSpace() CapSpace {
	return CapSpace{
		Lo: [3]float64{1e-12, 1e-12, 0},
		Hi: [3]float64{100e-12, 100e-12, 20e-12},
	}
}

// Denormalize maps three genes in [0,1] to capacitor values.
func (s CapSpace) Denormalize(genes []float64) (Caps, error) {
	if len(genes) != 3 {
		return Caps{}, fmt.Errorf("filter: %d genes, want 3", len(genes))
	}
	v := make([]float64, 3)
	for i, g := range genes {
		v[i] = s.Lo[i] + num.Clamp(g, 0, 1)*(s.Hi[i]-s.Lo[i])
	}
	return Caps{v[0], v[1], v[2]}, nil
}

// Spec is the Fig 10 anti-aliasing template.
type Spec struct {
	PassbandEdge    float64 // Hz: flat response required up to here
	RippleDB        float64 // max passband deviation from the DC gain, dB
	StopbandEdge    float64 // Hz: attenuation measured here
	StopbandAttenDB float64 // min attenuation below DC gain, dB
	MinDCGainDB     float64 // minimum DC gain, dB (unity-gain filter: ~0)
}

// DefaultSpec returns the anti-aliasing template used throughout the
// repository: flat (±1 dB) to 500 kHz, ≥ 30 dB down at 10 MHz, DC gain
// at least −1 dB.
func DefaultSpec() Spec {
	return Spec{
		PassbandEdge:    500e3,
		RippleDB:        1.0,
		StopbandEdge:    10e6,
		StopbandAttenDB: 30,
		MinDCGainDB:     -1,
	}
}

// Response is a measured filter transfer function with the scalar
// figures the spec tests.
type Response struct {
	Freqs           []float64
	TF              []complex128
	DCGainDB        float64
	F3dB            float64
	PassbandDevDB   float64 // max |gain − DC gain| up to PassbandEdge
	StopbandAttenDB float64 // DC gain − gain at StopbandEdge
}

// Satisfies reports whether the response meets the spec.
func (s Spec) Satisfies(r Response) bool {
	return r.DCGainDB >= s.MinDCGainDB &&
		r.PassbandDevDB <= s.RippleDB &&
		r.StopbandAttenDB >= s.StopbandAttenDB
}

// BuildBehavioural assembles the biquad from two behavioural OTAs (the
// gm/ro pair typically derived with behave.FromPerf from the combined
// model's selected design).
func BuildBehavioural(caps Caps, gm, ro float64) *circuit.Netlist {
	n := circuit.New("gm-C biquad (behavioural OTAs)")
	in := n.Node("in")
	n1 := n.Node("n1")
	out := n.Node("out")
	gnd := circuit.Ground
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: gnd, DC: 0, ACMag: 1})
	n.MustAdd(&behave.OTA{Inst: "X1", InP: in, InN: out, Out: n1, Gm: gm, Ro: ro})
	n.MustAdd(&behave.OTA{Inst: "X2", InP: n1, InN: out, Out: out, Gm: gm, Ro: ro})
	addCaps(n, caps, n1, out)
	return n
}

// BuildTransistor assembles the biquad from two transistor-level OTA
// instances (Fig 11's verification netlist). Each OTA has its own
// internal nodes and bias mirror; a shared supply and per-instance
// current references bias them. When sample is non-nil every transistor
// and capacitor receives statistical variation.
func BuildTransistor(caps Caps, cfg ota.Config, p ota.Params, sample *process.Sample) *circuit.Netlist {
	n := circuit.New("gm-C biquad (transistor OTAs)")
	vdd := n.Node("vdd")
	in := n.Node("in")
	n1 := n.Node("n1")
	out := n.Node("out")
	gnd := circuit.Ground
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: gnd, DC: cfg.VDD})
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: gnd, DC: cfg.VCM, ACMag: 1})
	for i, io := range []struct{ inp, inn, out int }{
		{in, out, n1},
		{n1, out, out},
	} {
		prefix := fmt.Sprintf("X%d.", i+1)
		bias := n.Node(prefix + "bias")
		n.MustAdd(&circuit.ISource{Inst: prefix + "IBIAS", Pos: vdd, Neg: bias, DC: cfg.IBias})
		cfg.AddInstance(n, prefix, vdd, io.inp, io.inn, io.out,
			n.Node(prefix+"n1"), n.Node(prefix+"n2"), n.Node(prefix+"outm"),
			n.Node(prefix+"tail"), bias, p, sample)
	}
	c := caps
	if sample != nil {
		c.C1 *= 1 + sample.CapShift(capArea(c.C1))
		c.C2 *= 1 + sample.CapShift(capArea(c.C2))
		if c.C3 > 0 {
			c.C3 *= 1 + sample.CapShift(capArea(c.C3))
		}
	}
	addCaps(n, c, n1, out)
	return n
}

// capArea estimates the plate area of a poly-poly capacitor at
// ~0.9 fF/µm², used to scale local matching variation.
func capArea(c float64) float64 { return c / 0.9e-3 }

func addCaps(n *circuit.Netlist, caps Caps, n1, out int) {
	gnd := circuit.Ground
	n.MustAdd(&circuit.Capacitor{Inst: "C1", A: n1, B: gnd, C: caps.C1})
	n.MustAdd(&circuit.Capacitor{Inst: "C2", A: out, B: gnd, C: caps.C2})
	if caps.C3 > 0 {
		n.MustAdd(&circuit.Capacitor{Inst: "C3", A: n1, B: out, C: caps.C3})
	}
}

// sweep bounds for filter measurement.
const (
	fStart = 1e3
	fStop  = 100e6
)

// Measure runs the AC analysis of a built filter netlist and reduces it
// to the spec figures.
func Measure(n *circuit.Netlist, spec Spec) (Response, error) {
	op, err := analysis.OP(n, nil)
	if err != nil {
		return Response{}, fmt.Errorf("filter: %w", err)
	}
	ac, err := analysis.ACDecade(n, op, fStart, fStop, 12)
	if err != nil {
		return Response{}, fmt.Errorf("filter: %w", err)
	}
	tf, err := ac.V("out")
	if err != nil {
		return Response{}, err
	}
	return reduce(ac.Freqs, tf, spec)
}

func reduce(freqs []float64, tf []complex128, spec Spec) (Response, error) {
	r := Response{Freqs: freqs, TF: tf}
	r.DCGainDB = measure.DCGainDB(tf)
	if math.IsNaN(r.DCGainDB) || math.IsInf(r.DCGainDB, 0) {
		return r, fmt.Errorf("filter: degenerate DC gain")
	}
	for i, f := range freqs {
		if f > spec.PassbandEdge {
			break
		}
		if dev := math.Abs(measure.GainDB(tf[i]) - r.DCGainDB); dev > r.PassbandDevDB {
			r.PassbandDevDB = dev
		}
	}
	gStop, err := measure.GainAt(freqs, tf, spec.StopbandEdge)
	if err != nil {
		return r, fmt.Errorf("filter: stopband edge outside sweep: %w", err)
	}
	r.StopbandAttenDB = r.DCGainDB - gStop
	if bw, err := measure.Bandwidth3dB(freqs, tf); err == nil {
		r.F3dB = bw
	}
	return r, nil
}
