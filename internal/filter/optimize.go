package filter

import (
	"context"
	"fmt"
	"math"

	"analogyield/internal/core"
	"analogyield/internal/montecarlo"
	"analogyield/internal/ota"
	"analogyield/internal/process"
	"analogyield/internal/wbga"
	"analogyield/internal/yield"
)

// Problem adapts the capacitor design task to the WBGA: two objectives,
// minimise the passband deviation and maximise the stopband attenuation
// (subject to the DC-gain floor via a penalty).
type Problem struct {
	Spec  Spec
	Space CapSpace
	// GM and Ro are the behavioural OTA parameters used during
	// optimisation — the paper's point is that this inner loop runs on
	// the behavioural model, not the transistors.
	GM, Ro float64
}

// NumParams returns 3 (C1, C2, C3).
func (p *Problem) NumParams() int { return 3 }

// NumObjectives returns 2.
func (p *Problem) NumObjectives() int { return 2 }

// Maximize reports (false, true): deviation is minimised, attenuation
// maximised.
func (p *Problem) Maximize() []bool { return []bool{false, true} }

// Evaluate builds the behavioural filter at the candidate capacitors and
// measures it.
func (p *Problem) Evaluate(genes []float64) ([]float64, error) {
	caps, err := p.Space.Denormalize(genes)
	if err != nil {
		return nil, err
	}
	n := BuildBehavioural(caps, p.GM, p.Ro)
	r, err := Measure(n, p.Spec)
	if err != nil {
		return nil, err
	}
	dev := r.PassbandDevDB
	if r.DCGainDB < p.Spec.MinDCGainDB {
		// Penalise designs that lose DC gain so they cannot dominate.
		dev += 10 * (p.Spec.MinDCGainDB - r.DCGainDB)
	}
	return []float64{dev, r.StopbandAttenDB}, nil
}

// OptimizeResult is the outcome of the capacitor MOO.
type OptimizeResult struct {
	Caps     Caps
	Response Response
	// Evaluations is the number of behavioural filter simulations.
	Evaluations int
	// FrontSize is the Pareto-front size of the capacitor MOO.
	FrontSize int
}

// StageFilterMOO labels the capacitor MOO in Observer event streams.
const StageFilterMOO core.Stage = "filter-moo"

// OptimizeOptions configures Optimize. Zero budgets select the paper's
// §5 defaults (30 individuals × 40 generations).
type OptimizeOptions struct {
	PopSize     int // 0 → 30
	Generations int // 0 → 40
	Seed        int64
	Workers     int // 0 → GOMAXPROCS
	// Obs, when non-nil, receives StageStart/GenerationDone/StageEnd
	// events for the capacitor MOO (Stage = StageFilterMOO).
	Obs core.Observer
}

// Optimize runs the paper's §5 capacitor optimisation on the behavioural
// filter and returns the spec-satisfying front design with the largest
// stopband margin. Cancelling ctx stops the MOO within one generation,
// returning ctx.Err().
func Optimize(ctx context.Context, p *Problem, opts OptimizeOptions) (*OptimizeResult, error) {
	if opts.PopSize <= 0 {
		opts.PopSize = 30
	}
	if opts.Generations <= 0 {
		opts.Generations = 40
	}
	emit := func(e core.Event) {
		if opts.Obs != nil {
			opts.Obs.Observe(e)
		}
	}
	totalEvals := opts.PopSize * opts.Generations
	emit(core.StageStart{Stage: StageFilterMOO, Total: totalEvals})
	res, err := wbga.Run(ctx, p, wbga.Options{
		PopSize: opts.PopSize, Generations: opts.Generations,
		Seed: opts.Seed, Workers: opts.Workers,
		OnGeneration: func(gs wbga.GenStats) {
			emit(core.GenerationDone{
				Gen:         gs.Gen,
				Generations: opts.Generations,
				Evals:       gs.Evals,
				TotalEvals:  totalEvals,
				BestFitness: gs.BestFitness,
				CacheHits:   gs.CacheHits,
				CacheMisses: gs.CacheMisses,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	emit(core.StageEnd{Stage: StageFilterMOO})
	best := -math.MaxFloat64
	var bestCaps Caps
	found := false
	for _, idx := range res.FrontIdx {
		ev := res.Evals[idx]
		caps, err := p.Space.Denormalize(ev.ParamGenes)
		if err != nil {
			continue
		}
		n := BuildBehavioural(caps, p.GM, p.Ro)
		r, err := Measure(n, p.Spec)
		if err != nil || !p.Spec.Satisfies(r) {
			continue
		}
		// Rank by the worst spec margin so the chosen design has slack
		// on every axis (needed to survive process variation).
		margin := math.Min(r.StopbandAttenDB-p.Spec.StopbandAttenDB,
			p.Spec.RippleDB-r.PassbandDevDB)
		if margin > best {
			best = margin
			bestCaps = caps
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("filter: no Pareto design satisfies the spec %+v", p.Spec)
	}
	n := BuildBehavioural(bestCaps, p.GM, p.Ro)
	r, err := Measure(n, p.Spec)
	if err != nil {
		return nil, err
	}
	return &OptimizeResult{
		Caps:        bestCaps,
		Response:    r,
		Evaluations: res.Evaluations,
		FrontSize:   len(res.FrontIdx),
	}, nil
}

// YieldResult summarises a transistor-level Monte Carlo verification of
// the final filter (the paper's 500-sample run confirming 100%).
type YieldResult struct {
	Yield   float64
	Samples int
	Failed  int // samples that did not simulate
	Stats   []montecarlo.Stats
	// Strategy names the Monte Carlo estimator used; FullEvals counts
	// transistor-level simulations actually run (equal to Samples for
	// naive MC) and ESS is the effective sample size of the estimate.
	Strategy  string
	FullEvals int
	ESS       float64
}

// VerifyYield runs the transistor-level filter Monte Carlo: every OTA
// transistor and every capacitor receives statistical variation, the
// response is measured, and the spec pass-rate is the yield. Cancelling
// ctx stops the sampling with ctx.Err().
func VerifyYield(ctx context.Context, caps Caps, cfg ota.Config, params ota.Params, spec Spec,
	proc *process.Process, samples int, seed int64) (*YieldResult, error) {
	return VerifyYieldMC(ctx, caps, cfg, params, spec, proc, samples, seed, montecarlo.StrategyNaive)
}

// VerifyYieldMC is VerifyYield with an explicit variance-reduction
// strategy: importance sampling sharpens high-yield estimates at the
// same simulation budget, and the surrogate strategies skip transistor
// simulations whose pass/fail status a cheap regression can already call
// confidently (FullEvals reports what actually ran).
func VerifyYieldMC(ctx context.Context, caps Caps, cfg ota.Config, params ota.Params, spec Spec,
	proc *process.Process, samples int, seed int64, strategy montecarlo.Strategy) (*YieldResult, error) {
	specs := []yield.Spec{
		{Name: "dcgain", Sense: yield.AtLeast, Bound: spec.MinDCGainDB},
		{Name: "passdev", Sense: yield.AtMost, Bound: spec.RippleDB},
		{Name: "stopatten", Sense: yield.AtLeast, Bound: spec.StopbandAttenDB},
	}
	v := montecarlo.VarianceOptions{Strategy: strategy}
	for col, sp := range specs {
		v.Specs = append(v.Specs, montecarlo.SpecBound{
			Col: col, AtMost: sp.Sense == yield.AtMost, Bound: sp.Bound,
		})
	}
	eval := func(s *process.Sample) ([]float64, error) {
		n := BuildTransistor(caps, cfg, params, s)
		r, err := Measure(n, spec)
		if err != nil {
			return nil, err
		}
		return []float64{r.DCGainDB, r.PassbandDevDB, r.StopbandAttenDB}, nil
	}
	mc, err := montecarlo.RunVariance(ctx, montecarlo.Options{
		Proc:    proc,
		Samples: samples,
		Seed:    seed,
		Metrics: []string{"dcgain_db", "passdev_db", "stopatten_db"},
	}, v, func() montecarlo.Evaluator { return eval })
	if err != nil {
		return nil, err
	}
	y, err := yield.FromWeightedSamples(mc.Samples, mc.Weights, specs, []int{0, 1, 2})
	if err != nil {
		return nil, err
	}
	return &YieldResult{
		Yield: y, Samples: samples, Failed: mc.Failed, Stats: mc.Stats,
		Strategy: strategy.String(), FullEvals: mc.FullEvals, ESS: mc.ESS,
	}, nil
}
