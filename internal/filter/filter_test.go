package filter

import (
	"context"
	"math"
	"testing"

	"analogyield/internal/behave"
	"analogyield/internal/ota"
	"analogyield/internal/process"
)

// benchGmRo returns behavioural OTA parameters derived from the nominal
// transistor OTA, cached across tests.
var gmCache, roCache float64

func benchGmRo(t *testing.T) (gm, ro float64) {
	t.Helper()
	if gmCache == 0 {
		cfg := ota.DefaultConfig()
		perf, err := cfg.Evaluate(ota.NominalParams(), nil)
		if err != nil {
			t.Fatal(err)
		}
		gmCache, roCache = behave.FromPerf(perf, cfg.CLoad)
	}
	return gmCache, roCache
}

func nominalCaps() Caps { return Caps{C1: 50e-12, C2: 25e-12} }

func TestCapSpaceDenormalize(t *testing.T) {
	s := DefaultCapSpace()
	c, err := s.Denormalize([]float64{0, 1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if c.C1 != s.Lo[0] || c.C2 != s.Hi[1] {
		t.Error("denormalize endpoints wrong")
	}
	if math.Abs(c.C3-10e-12) > 1e-15 {
		t.Errorf("C3 = %g, want 10 pF", c.C3)
	}
	if _, err := s.Denormalize([]float64{0.5}); err == nil {
		t.Error("short genome accepted")
	}
}

func TestBehaviouralFilterSecondOrder(t *testing.T) {
	gm, ro := benchGmRo(t)
	n := BuildBehavioural(nominalCaps(), gm, ro)
	r, err := Measure(n, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Unity DC gain.
	if math.Abs(r.DCGainDB) > 0.5 {
		t.Errorf("DC gain = %g dB, want ~0", r.DCGainDB)
	}
	// f0 ≈ gm/(2π·√(C1C2)) ≈ 1 MHz for the nominal values.
	f0 := gm / (2 * math.Pi * math.Sqrt(50e-12*25e-12))
	if r.F3dB < f0/2 || r.F3dB > 2*f0 {
		t.Errorf("f3dB = %g, want near %g", r.F3dB, f0)
	}
	// 2nd-order rolloff: ~40 dB/decade past the corner.
	if r.StopbandAttenDB < 30 || r.StopbandAttenDB > 50 {
		t.Errorf("attenuation at 10 MHz = %g dB, want ~40 (2nd order)", r.StopbandAttenDB)
	}
}

func TestQDependsOnCapRatio(t *testing.T) {
	// Q = √(C1/C2): a large ratio should peak the response (passband
	// deviation grows), a small ratio over-damps it.
	gm, ro := benchGmRo(t)
	spec := DefaultSpec()
	peaky, err := Measure(BuildBehavioural(Caps{C1: 100e-12, C2: 5e-12}, gm, ro), spec)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Measure(BuildBehavioural(Caps{C1: 50e-12, C2: 25e-12}, gm, ro), spec)
	if err != nil {
		t.Fatal(err)
	}
	if peaky.PassbandDevDB <= flat.PassbandDevDB {
		t.Errorf("high-Q dev %g should exceed flat dev %g",
			peaky.PassbandDevDB, flat.PassbandDevDB)
	}
}

func TestTransistorMatchesBehavioural(t *testing.T) {
	// The headline claim: the behavioural filter predicts the transistor
	// filter. Compare the spec figures.
	gm, ro := benchGmRo(t)
	cfg := ota.DefaultConfig()
	spec := DefaultSpec()
	rb, err := Measure(BuildBehavioural(nominalCaps(), gm, ro), spec)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Measure(BuildTransistor(nominalCaps(), cfg, ota.NominalParams(), nil), spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rb.DCGainDB-rt.DCGainDB) > 0.5 {
		t.Errorf("DC gain: behavioural %g vs transistor %g", rb.DCGainDB, rt.DCGainDB)
	}
	if math.Abs(rb.StopbandAttenDB-rt.StopbandAttenDB) > 3 {
		t.Errorf("attenuation: behavioural %g vs transistor %g",
			rb.StopbandAttenDB, rt.StopbandAttenDB)
	}
	if rt.F3dB > 0 && math.Abs(rb.F3dB-rt.F3dB)/rt.F3dB > 0.2 {
		t.Errorf("f3dB: behavioural %g vs transistor %g", rb.F3dB, rt.F3dB)
	}
}

func TestSpecSatisfies(t *testing.T) {
	spec := DefaultSpec()
	good := Response{DCGainDB: -0.1, PassbandDevDB: 0.3, StopbandAttenDB: 40}
	if !spec.Satisfies(good) {
		t.Error("good response rejected")
	}
	for _, bad := range []Response{
		{DCGainDB: -3, PassbandDevDB: 0.3, StopbandAttenDB: 40},
		{DCGainDB: -0.1, PassbandDevDB: 2.5, StopbandAttenDB: 40},
		{DCGainDB: -0.1, PassbandDevDB: 0.3, StopbandAttenDB: 10},
	} {
		if spec.Satisfies(bad) {
			t.Errorf("bad response accepted: %+v", bad)
		}
	}
}

func TestC3AddsFeedthrough(t *testing.T) {
	gm, ro := benchGmRo(t)
	spec := DefaultSpec()
	with, err := Measure(BuildBehavioural(Caps{C1: 50e-12, C2: 25e-12, C3: 10e-12}, gm, ro), spec)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Measure(BuildBehavioural(nominalCaps(), gm, ro), spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(with.StopbandAttenDB-without.StopbandAttenDB) < 0.1 &&
		math.Abs(with.F3dB-without.F3dB)/without.F3dB < 0.01 {
		t.Error("C3 has no effect on the response")
	}
}

func TestOptimizeMeetsSpec(t *testing.T) {
	gm, ro := benchGmRo(t)
	prob := &Problem{Spec: DefaultSpec(), Space: DefaultCapSpace(), GM: gm, Ro: ro}
	// Paper budgets: 30 individuals x 40 generations.
	res, err := Optimize(context.Background(), prob, OptimizeOptions{PopSize: 30, Generations: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 1200 {
		t.Errorf("evaluations = %d, want 1200", res.Evaluations)
	}
	if !prob.Spec.Satisfies(res.Response) {
		t.Errorf("optimised design violates spec: %+v", res.Response)
	}
	if res.Caps.C1 <= 0 || res.Caps.C2 <= 0 {
		t.Error("degenerate capacitors")
	}
}

func TestOptimizeImpossibleSpec(t *testing.T) {
	gm, ro := benchGmRo(t)
	spec := DefaultSpec()
	spec.StopbandAttenDB = 120 // unreachable for a 2nd-order filter
	prob := &Problem{Spec: spec, Space: DefaultCapSpace(), GM: gm, Ro: ro}
	if _, err := Optimize(context.Background(), prob, OptimizeOptions{PopSize: 10, Generations: 10, Seed: 1}); err == nil {
		t.Fatal("impossible spec accepted")
	}
}

func TestVerifyYieldNominalDesign(t *testing.T) {
	gm, ro := benchGmRo(t)
	prob := &Problem{Spec: DefaultSpec(), Space: DefaultCapSpace(), GM: gm, Ro: ro}
	opt, err := Optimize(context.Background(), prob, OptimizeOptions{PopSize: 20, Generations: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	yr, err := VerifyYield(context.Background(), opt.Caps, ota.DefaultConfig(), ota.NominalParams(),
		DefaultSpec(), process.C35(), 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if yr.Yield < 0.9 {
		t.Errorf("yield = %g, want ~1 for a margin-optimised design", yr.Yield)
	}
	if len(yr.Stats) != 3 {
		t.Errorf("stats = %d metrics", len(yr.Stats))
	}
}

func TestVerifyYieldDeterministic(t *testing.T) {
	a, err := VerifyYield(context.Background(), nominalCaps(), ota.DefaultConfig(), ota.NominalParams(),
		DefaultSpec(), process.C35(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VerifyYield(context.Background(), nominalCaps(), ota.DefaultConfig(), ota.NominalParams(),
		DefaultSpec(), process.C35(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Yield != b.Yield {
		t.Error("yield not deterministic for the same seed")
	}
}

func TestCapVariationApplied(t *testing.T) {
	// With variation, the capacitors in the built netlist differ from
	// nominal (check via the response rather than poking devices).
	cfg := ota.DefaultConfig()
	proc := process.C35()
	spec := DefaultSpec()
	nom, err := Measure(BuildTransistor(nominalCaps(), cfg, ota.NominalParams(), nil), spec)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := 0; i < 3; i++ {
		r, err := Measure(BuildTransistor(nominalCaps(), cfg, ota.NominalParams(),
			proc.NewSample(11, i)), spec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.F3dB-nom.F3dB)/nom.F3dB > 1e-4 {
			moved = true
		}
	}
	if !moved {
		t.Error("variation did not move the filter corner at all")
	}
}
