package filter

import (
	"context"
	"errors"
	"testing"

	"analogyield/internal/core"
	"analogyield/internal/ota"
	"analogyield/internal/process"
)

func TestOptimizeCancelMidMOO(t *testing.T) {
	gm, ro := benchGmRo(t)
	prob := &Problem{Spec: DefaultSpec(), Space: DefaultCapSpace(), GM: gm, Ro: ro}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gens := 0
	_, err := Optimize(ctx, prob, OptimizeOptions{
		PopSize: 10, Generations: 40, Seed: 1,
		Obs: core.ObserverFunc(func(e core.Event) {
			if g, ok := e.(core.GenerationDone); ok {
				gens = g.Gen
				if g.Gen == 2 {
					cancel()
				}
			}
		}),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One-generation latency: generation 3 must never have been reported.
	if gens != 2 {
		t.Errorf("last reported generation = %d, want 2", gens)
	}
}

func TestOptimizeEventStream(t *testing.T) {
	gm, ro := benchGmRo(t)
	prob := &Problem{Spec: DefaultSpec(), Space: DefaultCapSpace(), GM: gm, Ro: ro}
	var stages []core.Stage
	gens := 0
	_, err := Optimize(context.Background(), prob, OptimizeOptions{
		PopSize: 20, Generations: 15, Seed: 2,
		Obs: core.ObserverFunc(func(e core.Event) {
			switch ev := e.(type) {
			case core.StageStart:
				stages = append(stages, ev.Stage)
				if ev.Total != 300 {
					t.Errorf("StageStart.Total = %d, want 300", ev.Total)
				}
			case core.GenerationDone:
				gens++
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 || stages[0] != StageFilterMOO {
		t.Errorf("stages = %v, want [%s]", stages, StageFilterMOO)
	}
	if gens != 15 {
		t.Errorf("%d GenerationDone events, want 15", gens)
	}
}

func TestVerifyYieldCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := VerifyYield(ctx, nominalCaps(), ota.DefaultConfig(), ota.NominalParams(),
		DefaultSpec(), process.C35(), 50, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
