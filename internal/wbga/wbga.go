// Package wbga implements the paper's weight-based genetic algorithm
// (WBGA, after Hajela & Lin): the GA string carries both the designable
// parameters and the objective-function weights (Fig 4/6), the weights
// are normalised to sum to one (eq. 4), and each individual's fitness is
// the normalised weighted sum of its objectives (eq. 5). Evolving the
// weights alongside the parameters spreads the population across the
// trade-off curve, so the archive of all evaluations contains a dense
// sampling of the Pareto front — which internal/pareto then extracts.
package wbga

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"analogyield/internal/ga"
	"analogyield/internal/pareto"
)

// Problem is a multi-objective optimisation problem over [0,1]-normalised
// parameter genes.
type Problem interface {
	// NumParams is the number of designable-parameter genes.
	NumParams() int
	// NumObjectives is the number of performance functions.
	NumObjectives() int
	// Maximize gives the sense of each objective.
	Maximize() []bool
	// Evaluate computes the raw objective values for one parameter-gene
	// vector (length NumParams). It must be safe for concurrent use.
	Evaluate(paramGenes []float64) ([]float64, error)
}

// ReusableProblem is an optional Problem extension for problems whose
// evaluation benefits from per-goroutine scratch state (e.g. reusable
// circuit-solver workspaces). Each worker goroutine of a run calls
// NewEvaluator once and evaluates exclusively through the returned
// function, which therefore does not need to be safe for concurrent use.
type ReusableProblem interface {
	Problem
	NewEvaluator() func(paramGenes []float64) ([]float64, error)
}

// Options configures a WBGA run. The paper's OTA example uses
// PopSize=100, Generations=100 (10,000 evaluations).
type Options struct {
	PopSize     int // default 100
	Generations int // default 100
	Seed        int64
	Workers     int // parallel objective evaluations (default GOMAXPROCS)
	// Crossover selects the GA recombination operator (default
	// SinglePoint, as in the classic GA-string treatment).
	Crossover ga.CrossoverKind
	// CacheSize bounds the genome evaluation cache: converging
	// populations re-emit duplicate parameter genomes (elites, crossover
	// without mutation), and cached genomes skip the circuit simulation
	// entirely. 0 selects the default (8192 genomes); negative disables
	// caching.
	CacheSize int
	// OnGeneration, when non-nil, observes progress after each
	// generation is evaluated.
	OnGeneration func(GenStats)
}

// GenStats is the per-generation progress report delivered to
// Options.OnGeneration: the 1-based generation number, the cumulative
// evaluation count, the best eq. 5 fitness of the generation just
// scored, and the cumulative genome-cache counters.
type GenStats struct {
	Gen         int
	Evals       int
	BestFitness float64
	CacheHits   int
	CacheMisses int
}

// DefaultCacheSize is the genome-cache bound used when Options.CacheSize
// is zero — comfortably above the paper's 10,000-evaluation budget once
// duplicates are folded.
const DefaultCacheSize = 8192

// Evaluation is one archived individual: its parameter genes, its
// normalised weight vector, the raw objective values and the scalar
// fitness assigned by eq. 5. Failed circuit evaluations carry NaN
// objectives and -1 fitness and are excluded from the front.
type Evaluation struct {
	ParamGenes []float64
	Weights    []float64
	Objectives []float64
	Fitness    float64
	OK         bool
}

// Result is the outcome of a WBGA run.
type Result struct {
	// Evals archives every evaluated individual in evaluation order —
	// the "number of optimal and non-optimal solutions" the paper's
	// Pareto step consumes.
	Evals []Evaluation
	// FrontIdx indexes the Pareto-optimal members of Evals.
	FrontIdx []int
	// Evaluations counts objective evaluations (PopSize × Generations).
	Evaluations int
	// CacheHits and CacheMisses count genome-cache lookups: every hit is
	// one circuit simulation skipped. Both stay zero when caching is
	// disabled.
	CacheHits, CacheMisses int
}

// Front returns the Pareto-optimal evaluations.
func (r *Result) Front() []Evaluation {
	out := make([]Evaluation, len(r.FrontIdx))
	for i, idx := range r.FrontIdx {
		out[i] = r.Evals[idx]
	}
	return out
}

// NormalizeWeights applies the paper's eq. 4: w_i ← w_i / Σ w_j. A zero
// (or degenerate) raw vector normalises to equal weights.
func NormalizeWeights(raw []float64) []float64 {
	out := make([]float64, len(raw))
	sum := 0.0
	for _, w := range raw {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, w := range raw {
		if w > 0 {
			out[i] = w / sum
		}
	}
	return out
}

// evaluator adapts a Problem to the ga.PopulationEvaluator interface,
// maintaining the archive, the genome cache and the running objective
// ranges used by the eq. 5 normalisation.
type evaluator struct {
	prob    Problem
	workers int
	cache   *genomeCache // nil disables caching

	mu      sync.Mutex
	archive []Evaluation
	// Running min/max per objective over all successful evaluations.
	min, max []float64

	// evalFns holds one long-lived evaluation function per worker slot,
	// reused across generations so workspace-owning evaluators keep
	// their solver buffers hot for the whole run instead of
	// reallocating them at every generation boundary.
	evalFns []func([]float64) ([]float64, error)
}

func newEvaluator(p Problem, workers int, cache *genomeCache) *evaluator {
	m := p.NumObjectives()
	e := &evaluator{prob: p, workers: workers, cache: cache,
		min: make([]float64, m), max: make([]float64, m)}
	for k := 0; k < m; k++ {
		e.min[k] = math.Inf(1)
		e.max[k] = math.Inf(-1)
	}
	return e
}

// evalFunc returns the evaluation function one worker goroutine owns for
// its lifetime: problems implementing ReusableProblem get a private
// scratch-owning closure, everything else shares the concurrency-safe
// Evaluate.
func (e *evaluator) evalFunc() func([]float64) ([]float64, error) {
	if rp, ok := e.prob.(ReusableProblem); ok {
		return rp.NewEvaluator()
	}
	return e.prob.Evaluate
}

// evalFn returns worker slot w's persistent evaluation function,
// creating it on first use. Called from the coordinating goroutine only
// (before the worker goroutines start), so no locking is needed.
func (e *evaluator) evalFn(w int) func([]float64) ([]float64, error) {
	for len(e.evalFns) <= w {
		e.evalFns = append(e.evalFns, nil)
	}
	if e.evalFns[w] == nil {
		e.evalFns[w] = e.evalFunc()
	}
	return e.evalFns[w]
}

// evaluateOne scores one parameter-gene vector through the cache: a hit
// returns the memoised objectives without simulating; a miss simulates
// via the worker's eval function and memoises the outcome (failures
// included, so known-bad genomes are never re-simulated).
func (e *evaluator) evaluateOne(eval func([]float64) ([]float64, error), params []float64) ([]float64, bool) {
	m := e.prob.NumObjectives()
	var key string
	if e.cache != nil {
		key = quantKey(params)
		if ent, hit := e.cache.get(key); hit {
			if !ent.ok {
				return nil, false
			}
			return append([]float64(nil), ent.objs...), true
		}
	}
	objs, err := eval(params)
	ok := err == nil && len(objs) == m
	if e.cache != nil {
		ent := cacheEntry{ok: ok}
		if ok {
			ent.objs = append([]float64(nil), objs...)
		}
		e.cache.put(key, ent)
	}
	if !ok {
		return nil, false
	}
	return objs, true
}

// EvaluatePopulation scores one generation: it simulates every
// individual's objectives in parallel, archives them, updates the
// objective ranges, and assigns each individual the eq. 5 fitness
//
//	O(x,w) = Σ_j w_j · (f_j(x) − f_j,min) / (f_j,max − f_j,min)
//
// with minimised objectives reflected so that larger is always better.
func (e *evaluator) EvaluatePopulation(genomes [][]float64) []float64 {
	np := e.prob.NumParams()
	m := e.prob.NumObjectives()
	maximize := e.prob.Maximize()

	// A fixed pool of workers, each owning a long-lived evaluation
	// function (and with it any reusable solver workspaces), drains the
	// generation off a channel. Archive order stays index-ordered, so
	// results are identical for any worker count.
	evals := make([]Evaluation, len(genomes))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(genomes) {
		workers = len(genomes)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		eval := e.evalFn(w)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				g := genomes[i]
				params := append([]float64(nil), g[:np]...)
				ev := Evaluation{ParamGenes: params, Weights: NormalizeWeights(g[np:])}
				if objs, ok := e.evaluateOne(eval, params); ok {
					ev.Objectives = objs
					ev.OK = true
				} else {
					ev.Objectives = nanVec(m)
				}
				evals[i] = ev
			}
		}()
	}
	for i := range genomes {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range evals {
		if !evals[i].OK {
			continue
		}
		for k, v := range evals[i].Objectives {
			if v < e.min[k] {
				e.min[k] = v
			}
			if v > e.max[k] {
				e.max[k] = v
			}
		}
		_ = i
	}
	fits := make([]float64, len(evals))
	for i := range evals {
		if !evals[i].OK {
			evals[i].Fitness = -1
			fits[i] = -1
			e.archive = append(e.archive, evals[i])
			continue
		}
		f := 0.0
		for k, v := range evals[i].Objectives {
			span := e.max[k] - e.min[k]
			var norm float64
			if span <= 0 {
				norm = 0.5
			} else if maximize[k] {
				norm = (v - e.min[k]) / span
			} else {
				norm = (e.max[k] - v) / span
			}
			f += evals[i].Weights[k] * norm
		}
		evals[i].Fitness = f
		fits[i] = f
		e.archive = append(e.archive, evals[i])
	}
	return fits
}

func nanVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.NaN()
	}
	return v
}

// Run executes the WBGA and extracts the Pareto front from the archive.
//
// Cancellation is cooperative with one-generation granularity: when ctx
// is cancelled mid-run, Run returns the partial Result — the archive of
// every evaluation completed so far, with FrontIdx left nil — together
// with ctx.Err().
func Run(ctx context.Context, p Problem, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p == nil {
		return nil, fmt.Errorf("wbga: nil problem")
	}
	if p.NumParams() <= 0 || p.NumObjectives() <= 0 {
		return nil, fmt.Errorf("wbga: problem needs params and objectives")
	}
	if len(p.Maximize()) != p.NumObjectives() {
		return nil, fmt.Errorf("wbga: Maximize length %d != objectives %d",
			len(p.Maximize()), p.NumObjectives())
	}
	if o.PopSize <= 0 {
		o.PopSize = 100
	}
	if o.Generations <= 0 {
		o.Generations = 100
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cacheSize := o.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	ev := newEvaluator(p, workers, newGenomeCache(cacheSize))
	cfg := ga.Config{
		GenomeLen:   p.NumParams() + p.NumObjectives(),
		PopSize:     o.PopSize,
		Generations: o.Generations,
		Seed:        o.Seed,
		Crossover:   o.Crossover,
		SkipArchive: true, // the evaluator keeps the richer archive
	}
	var hooks *ga.Hooks
	if o.OnGeneration != nil {
		hooks = &ga.Hooks{OnGeneration: func(gen int, pop []ga.Individual) {
			best := math.Inf(-1)
			for i := range pop {
				if pop[i].Fitness > best {
					best = pop[i].Fitness
				}
			}
			hits, misses := ev.cache.stats()
			o.OnGeneration(GenStats{
				Gen:         gen,
				Evals:       gen * o.PopSize,
				BestFitness: best,
				CacheHits:   int(hits),
				CacheMisses: int(misses),
			})
		}}
	}
	gaRes, err := ga.Run(ctx, cfg, ev, hooks)
	if err != nil && gaRes == nil {
		return nil, fmt.Errorf("wbga: %w", err)
	}

	res := &Result{Evals: ev.archive}
	if gaRes != nil {
		res.Evaluations = gaRes.Evaluations
	}
	hits, misses := ev.cache.stats()
	res.CacheHits, res.CacheMisses = int(hits), int(misses)
	if err != nil {
		// Cancelled mid-run: preserve the partial archive, skip the
		// front extraction (the archive is incomplete).
		return res, err
	}
	objs := make([][]float64, len(res.Evals))
	for i := range res.Evals {
		objs[i] = res.Evals[i].Objectives
	}
	res.FrontIdx = pareto.Front(objs, p.Maximize())
	return res, nil
}

// GAStringLayout renders the Fig 4/6 GA-string construction for
// documentation and tool output, e.g.
// "| W1 | L1 | ... | L4 || Wg1 | Wg2 |".
func GAStringLayout(paramNames, weightNames []string) string {
	var b strings.Builder
	b.WriteString("|")
	for _, p := range paramNames {
		fmt.Fprintf(&b, " %s |", p)
	}
	b.WriteString("|")
	for _, w := range weightNames {
		fmt.Fprintf(&b, " %s |", w)
	}
	return b.String()
}
