// Package wbga implements the paper's weight-based genetic algorithm
// (WBGA, after Hajela & Lin): the GA string carries both the designable
// parameters and the objective-function weights (Fig 4/6), the weights
// are normalised to sum to one (eq. 4), and each individual's fitness is
// the normalised weighted sum of its objectives (eq. 5). Evolving the
// weights alongside the parameters spreads the population across the
// trade-off curve, so the archive of all evaluations contains a dense
// sampling of the Pareto front — which internal/pareto then extracts.
package wbga

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"analogyield/internal/ga"
	"analogyield/internal/pareto"
)

// Problem is a multi-objective optimisation problem over [0,1]-normalised
// parameter genes.
type Problem interface {
	// NumParams is the number of designable-parameter genes.
	NumParams() int
	// NumObjectives is the number of performance functions.
	NumObjectives() int
	// Maximize gives the sense of each objective.
	Maximize() []bool
	// Evaluate computes the raw objective values for one parameter-gene
	// vector (length NumParams). It must be safe for concurrent use.
	Evaluate(paramGenes []float64) ([]float64, error)
}

// Options configures a WBGA run. The paper's OTA example uses
// PopSize=100, Generations=100 (10,000 evaluations).
type Options struct {
	PopSize     int // default 100
	Generations int // default 100
	Seed        int64
	Workers     int // parallel objective evaluations (default GOMAXPROCS)
	// Crossover selects the GA recombination operator (default
	// SinglePoint, as in the classic GA-string treatment).
	Crossover ga.CrossoverKind
	// OnGeneration, when non-nil, observes progress (gen is 1-based).
	OnGeneration func(gen, evals int)
}

// Evaluation is one archived individual: its parameter genes, its
// normalised weight vector, the raw objective values and the scalar
// fitness assigned by eq. 5. Failed circuit evaluations carry NaN
// objectives and -1 fitness and are excluded from the front.
type Evaluation struct {
	ParamGenes []float64
	Weights    []float64
	Objectives []float64
	Fitness    float64
	OK         bool
}

// Result is the outcome of a WBGA run.
type Result struct {
	// Evals archives every evaluated individual in evaluation order —
	// the "number of optimal and non-optimal solutions" the paper's
	// Pareto step consumes.
	Evals []Evaluation
	// FrontIdx indexes the Pareto-optimal members of Evals.
	FrontIdx []int
	// Evaluations counts objective evaluations (PopSize × Generations).
	Evaluations int
}

// Front returns the Pareto-optimal evaluations.
func (r *Result) Front() []Evaluation {
	out := make([]Evaluation, len(r.FrontIdx))
	for i, idx := range r.FrontIdx {
		out[i] = r.Evals[idx]
	}
	return out
}

// NormalizeWeights applies the paper's eq. 4: w_i ← w_i / Σ w_j. A zero
// (or degenerate) raw vector normalises to equal weights.
func NormalizeWeights(raw []float64) []float64 {
	out := make([]float64, len(raw))
	sum := 0.0
	for _, w := range raw {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, w := range raw {
		if w > 0 {
			out[i] = w / sum
		}
	}
	return out
}

// evaluator adapts a Problem to the ga.PopulationEvaluator interface,
// maintaining the archive and the running objective ranges used by the
// eq. 5 normalisation.
type evaluator struct {
	prob    Problem
	workers int

	mu      sync.Mutex
	archive []Evaluation
	// Running min/max per objective over all successful evaluations.
	min, max []float64
}

func newEvaluator(p Problem, workers int) *evaluator {
	m := p.NumObjectives()
	e := &evaluator{prob: p, workers: workers,
		min: make([]float64, m), max: make([]float64, m)}
	for k := 0; k < m; k++ {
		e.min[k] = math.Inf(1)
		e.max[k] = math.Inf(-1)
	}
	return e
}

// EvaluatePopulation scores one generation: it simulates every
// individual's objectives in parallel, archives them, updates the
// objective ranges, and assigns each individual the eq. 5 fitness
//
//	O(x,w) = Σ_j w_j · (f_j(x) − f_j,min) / (f_j,max − f_j,min)
//
// with minimised objectives reflected so that larger is always better.
func (e *evaluator) EvaluatePopulation(genomes [][]float64) []float64 {
	np := e.prob.NumParams()
	m := e.prob.NumObjectives()
	maximize := e.prob.Maximize()

	evals := make([]Evaluation, len(genomes))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	for i, g := range genomes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, g []float64) {
			defer wg.Done()
			defer func() { <-sem }()
			params := append([]float64(nil), g[:np]...)
			weights := NormalizeWeights(g[np:])
			objs, err := e.prob.Evaluate(params)
			ev := Evaluation{ParamGenes: params, Weights: weights}
			if err != nil || len(objs) != m {
				ev.Objectives = nanVec(m)
			} else {
				ev.Objectives = objs
				ev.OK = true
			}
			evals[i] = ev
		}(i, g)
	}
	wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range evals {
		if !evals[i].OK {
			continue
		}
		for k, v := range evals[i].Objectives {
			if v < e.min[k] {
				e.min[k] = v
			}
			if v > e.max[k] {
				e.max[k] = v
			}
		}
		_ = i
	}
	fits := make([]float64, len(evals))
	for i := range evals {
		if !evals[i].OK {
			evals[i].Fitness = -1
			fits[i] = -1
			e.archive = append(e.archive, evals[i])
			continue
		}
		f := 0.0
		for k, v := range evals[i].Objectives {
			span := e.max[k] - e.min[k]
			var norm float64
			if span <= 0 {
				norm = 0.5
			} else if maximize[k] {
				norm = (v - e.min[k]) / span
			} else {
				norm = (e.max[k] - v) / span
			}
			f += evals[i].Weights[k] * norm
		}
		evals[i].Fitness = f
		fits[i] = f
		e.archive = append(e.archive, evals[i])
	}
	return fits
}

func nanVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.NaN()
	}
	return v
}

// Run executes the WBGA and extracts the Pareto front from the archive.
func Run(p Problem, o Options) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("wbga: nil problem")
	}
	if p.NumParams() <= 0 || p.NumObjectives() <= 0 {
		return nil, fmt.Errorf("wbga: problem needs params and objectives")
	}
	if len(p.Maximize()) != p.NumObjectives() {
		return nil, fmt.Errorf("wbga: Maximize length %d != objectives %d",
			len(p.Maximize()), p.NumObjectives())
	}
	if o.PopSize <= 0 {
		o.PopSize = 100
	}
	if o.Generations <= 0 {
		o.Generations = 100
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ev := newEvaluator(p, workers)
	cfg := ga.Config{
		GenomeLen:   p.NumParams() + p.NumObjectives(),
		PopSize:     o.PopSize,
		Generations: o.Generations,
		Seed:        o.Seed,
		Crossover:   o.Crossover,
		SkipArchive: true, // the evaluator keeps the richer archive
	}
	var hooks *ga.Hooks
	if o.OnGeneration != nil {
		hooks = &ga.Hooks{OnGeneration: func(gen int, pop []ga.Individual) {
			o.OnGeneration(gen, gen*o.PopSize)
		}}
	}
	gaRes, err := ga.Run(cfg, ev, hooks)
	if err != nil {
		return nil, fmt.Errorf("wbga: %w", err)
	}

	res := &Result{Evals: ev.archive, Evaluations: gaRes.Evaluations}
	objs := make([][]float64, len(res.Evals))
	for i := range res.Evals {
		objs[i] = res.Evals[i].Objectives
	}
	res.FrontIdx = pareto.Front(objs, p.Maximize())
	return res, nil
}

// GAStringLayout renders the Fig 4/6 GA-string construction for
// documentation and tool output, e.g.
// "| W1 | L1 | ... | L4 || Wg1 | Wg2 |".
func GAStringLayout(paramNames, weightNames []string) string {
	var b strings.Builder
	b.WriteString("|")
	for _, p := range paramNames {
		fmt.Fprintf(&b, " %s |", p)
	}
	b.WriteString("|")
	for _, w := range weightNames {
		fmt.Fprintf(&b, " %s |", w)
	}
	return b.String()
}
