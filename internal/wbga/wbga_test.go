package wbga

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"analogyield/internal/pareto"
)

// biObjective is a synthetic conflicting two-objective problem over two
// parameters: f1 = x, f2 = 1 − x (perfect conflict along gene 0), with
// gene 1 adding a dent that must be optimised away: both objectives are
// reduced by gene1² so the front lies at gene1 = 0.
type biObjective struct{ failEvery int }

func (biObjective) NumParams() int     { return 2 }
func (biObjective) NumObjectives() int { return 2 }
func (biObjective) Maximize() []bool   { return []bool{true, true} }
func (b biObjective) Evaluate(g []float64) ([]float64, error) {
	if b.failEvery > 0 && int(g[0]*1e6)%b.failEvery == 0 {
		return nil, errors.New("synthetic failure")
	}
	penalty := g[1] * g[1]
	return []float64{g[0] - penalty, (1 - g[0]) - penalty}, nil
}

func TestRunFindsConflictFront(t *testing.T) {
	res, err := Run(context.Background(), biObjective{}, Options{PopSize: 40, Generations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 1200 {
		t.Errorf("Evaluations = %d, want 1200", res.Evaluations)
	}
	if len(res.Evals) != 1200 {
		t.Errorf("archive = %d", len(res.Evals))
	}
	if len(res.FrontIdx) < 10 {
		t.Fatalf("front has only %d points", len(res.FrontIdx))
	}
	// Front members should have small gene-1 penalty.
	for _, f := range res.Front() {
		if f.ParamGenes[1] > 0.3 {
			t.Errorf("front member with large penalty gene %g", f.ParamGenes[1])
		}
	}
	// The front must span the trade-off: some high-f1 and some high-f2.
	var bestF1, bestF2 float64
	for _, f := range res.Front() {
		if f.Objectives[0] > bestF1 {
			bestF1 = f.Objectives[0]
		}
		if f.Objectives[1] > bestF2 {
			bestF2 = f.Objectives[1]
		}
	}
	if bestF1 < 0.9 || bestF2 < 0.9 {
		t.Errorf("front does not span trade-off: best f1=%g f2=%g", bestF1, bestF2)
	}
}

func TestFrontIsValidPareto(t *testing.T) {
	res, err := Run(context.Background(), biObjective{}, Options{PopSize: 20, Generations: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([][]float64, len(res.Evals))
	for i := range res.Evals {
		objs[i] = res.Evals[i].Objectives
	}
	if err := pareto.Verify(objs, res.FrontIdx, []bool{true, true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(context.Background(), biObjective{}, Options{PopSize: 15, Generations: 10, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), biObjective{}, Options{PopSize: 15, Generations: 10, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Evals) != len(b.Evals) {
		t.Fatal("archive sizes differ")
	}
	for i := range a.Evals {
		if a.Evals[i].Fitness != b.Evals[i].Fitness {
			t.Fatalf("eval %d fitness differs across worker counts", i)
		}
	}
}

func TestFailedEvaluationsExcluded(t *testing.T) {
	res, err := Run(context.Background(), biObjective{failEvery: 3}, Options{PopSize: 20, Generations: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, e := range res.Evals {
		if !e.OK {
			failures++
			if e.Fitness != -1 {
				t.Error("failed evaluation should have fitness -1")
			}
			if !math.IsNaN(e.Objectives[0]) {
				t.Error("failed evaluation should have NaN objectives")
			}
		}
	}
	if failures == 0 {
		t.Skip("no synthetic failures triggered")
	}
	for _, i := range res.FrontIdx {
		if !res.Evals[i].OK {
			t.Error("failed evaluation on the front")
		}
	}
}

func TestNormalizeWeights(t *testing.T) {
	w := NormalizeWeights([]float64{1, 3})
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[1]-0.75) > 1e-12 {
		t.Errorf("weights = %v", w)
	}
	// eq 4 invariant: sum to 1.
	sum := w[0] + w[1]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %g", sum)
	}
	// Zero vector → equal weights.
	w = NormalizeWeights([]float64{0, 0, 0})
	for _, x := range w {
		if math.Abs(x-1.0/3) > 1e-12 {
			t.Errorf("zero-vector weights = %v", w)
		}
	}
	// Negative entries ignored.
	w = NormalizeWeights([]float64{-1, 1})
	if w[0] != 0 || w[1] != 1 {
		t.Errorf("negative weight handling = %v", w)
	}
}

func TestEvaluationStoresNormalizedWeights(t *testing.T) {
	res, err := Run(context.Background(), biObjective{}, Options{PopSize: 10, Generations: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Evals {
		sum := 0.0
		for _, w := range e.Weights {
			if w < 0 || w > 1 {
				t.Fatalf("weight %g outside [0,1]", w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %g", sum)
		}
		if len(e.ParamGenes) != 2 || len(e.Weights) != 2 {
			t.Fatal("GA string split wrong")
		}
	}
}

func TestFitnessRange(t *testing.T) {
	// eq 5 with normalised objectives and weights summing to 1 keeps
	// fitness in [0,1] for successful evaluations.
	res, err := Run(context.Background(), biObjective{}, Options{PopSize: 20, Generations: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Evals {
		if !e.OK {
			continue
		}
		if e.Fitness < 0 || e.Fitness > 1 {
			t.Fatalf("fitness %g outside [0,1]", e.Fitness)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{}); err == nil {
		t.Error("nil problem accepted")
	}
}

type badProblem struct{ biObjective }

func (badProblem) Maximize() []bool { return []bool{true} } // wrong length

func TestRunRejectsBadMaximize(t *testing.T) {
	if _, err := Run(context.Background(), badProblem{}, Options{}); err == nil {
		t.Error("bad Maximize length accepted")
	}
}

func TestOnGenerationCallback(t *testing.T) {
	var gens []int
	_, err := Run(context.Background(), biObjective{}, Options{PopSize: 10, Generations: 5, Seed: 1,
		OnGeneration: func(gs GenStats) { gens = append(gens, gs.Gen) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 5 {
		t.Errorf("callback saw %d generations, want 5", len(gens))
	}
}

func TestGAStringLayout(t *testing.T) {
	s := GAStringLayout([]string{"W1", "L1"}, []string{"Wg1", "Wg2"})
	if !strings.Contains(s, "W1") || !strings.Contains(s, "Wg2") {
		t.Errorf("layout = %q", s)
	}
	if !strings.Contains(s, "||") {
		t.Error("layout should separate params from weights")
	}
}

// reusableBiObjective counts how many per-worker evaluators are built,
// so tests can assert they persist across generations.
type reusableBiObjective struct {
	biObjective
	evaluators *int // incremented per NewEvaluator call (single-threaded: see evalFn)
}

func (r reusableBiObjective) NewEvaluator() func([]float64) ([]float64, error) {
	*r.evaluators++
	return r.biObjective.Evaluate
}

// TestReusableEvaluatorsPersistAcrossGenerations pins the worker-pool
// contract: NewEvaluator runs once per worker slot for the whole GA run,
// not once per worker per generation — the point of carrying solver
// workspaces in the evaluator closures.
func TestReusableEvaluatorsPersistAcrossGenerations(t *testing.T) {
	built := 0
	prob := reusableBiObjective{evaluators: &built}
	res, err := Run(context.Background(), prob, Options{
		PopSize: 20, Generations: 25, Seed: 3, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 20*25 {
		t.Errorf("Evaluations = %d, want 500", res.Evaluations)
	}
	if built != 4 {
		t.Errorf("NewEvaluator ran %d times over 25 generations, want once per worker (4)", built)
	}
}
