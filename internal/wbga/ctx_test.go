package wbga

import (
	"context"
	"errors"
	"testing"
)

func TestRunCancelMidRun(t *testing.T) {
	// Cancel from the per-generation callback: the partial archive must
	// come back alongside ctx.Err(), with no front extracted.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const pop = 20
	res, err := Run(ctx, biObjective{}, Options{
		PopSize: pop, Generations: 40, Seed: 1,
		OnGeneration: func(gs GenStats) {
			if gs.Gen == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result not returned")
	}
	// One-generation cancellation latency: gens 1-3 evaluated, gen 4 not.
	if len(res.Evals) != 3*pop {
		t.Errorf("partial archive = %d evaluations, want %d", len(res.Evals), 3*pop)
	}
	if res.Evaluations != 3*pop {
		t.Errorf("Evaluations = %d, want %d", res.Evaluations, 3*pop)
	}
	if res.FrontIdx != nil {
		t.Error("front extracted from an incomplete archive")
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, biObjective{}, Options{PopSize: 10, Generations: 10, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Evals) != 0 {
		t.Errorf("pre-cancelled run evaluated anyway: %+v", res)
	}
}

func TestGenStatsProgress(t *testing.T) {
	var stats []GenStats
	res, err := Run(context.Background(), biObjective{}, Options{
		PopSize: 10, Generations: 5, Seed: 2,
		OnGeneration: func(gs GenStats) { stats = append(stats, gs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 5 {
		t.Fatalf("%d generation reports, want 5", len(stats))
	}
	for i, gs := range stats {
		if gs.Gen != i+1 {
			t.Errorf("report %d has Gen %d", i, gs.Gen)
		}
		if gs.Evals != (i+1)*10 {
			t.Errorf("gen %d: Evals = %d, want %d", gs.Gen, gs.Evals, (i+1)*10)
		}
		if gs.BestFitness < 0 || gs.BestFitness > 1 {
			t.Errorf("gen %d: best fitness %g outside eq. 5 range", gs.Gen, gs.BestFitness)
		}
		if gs.CacheHits+gs.CacheMisses != gs.Evals {
			t.Errorf("gen %d: cache lookups %d != evals %d",
				gs.Gen, gs.CacheHits+gs.CacheMisses, gs.Evals)
		}
	}
	last := stats[len(stats)-1]
	if res.CacheHits != last.CacheHits || res.CacheMisses != last.CacheMisses {
		t.Errorf("result cache counters %d/%d disagree with final report %d/%d",
			res.CacheHits, res.CacheMisses, last.CacheHits, last.CacheMisses)
	}
}
