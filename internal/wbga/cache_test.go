package wbga

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// countingProblem counts real evaluations so tests can distinguish cache
// hits from fresh simulations.
type countingProblem struct {
	calls atomic.Int64
	fail  bool
}

func (*countingProblem) NumParams() int     { return 3 }
func (*countingProblem) NumObjectives() int { return 2 }
func (*countingProblem) Maximize() []bool   { return []bool{true, true} }
func (p *countingProblem) Evaluate(g []float64) ([]float64, error) {
	p.calls.Add(1)
	if p.fail {
		return nil, errors.New("synthetic failure")
	}
	s := g[0] + 2*g[1] + 4*g[2]
	return []float64{s, 1 - s}, nil
}

// TestCacheHitMatchesFreshEvaluation checks that a cache hit returns
// objectives identical to a fresh evaluation and skips the simulation.
func TestCacheHitMatchesFreshEvaluation(t *testing.T) {
	p := &countingProblem{}
	e := newEvaluator(p, 1, newGenomeCache(16))
	eval := e.evalFunc()

	genes := []float64{0.25, 0.5, 0.75}
	fresh, ok := e.evaluateOne(eval, genes)
	if !ok {
		t.Fatal("fresh evaluation failed")
	}
	cached, ok := e.evaluateOne(eval, append([]float64(nil), genes...))
	if !ok {
		t.Fatal("cached evaluation failed")
	}
	for k := range fresh {
		if cached[k] != fresh[k] {
			t.Errorf("objective %d: cached %g != fresh %g", k, cached[k], fresh[k])
		}
	}
	if got := p.calls.Load(); got != 1 {
		t.Errorf("problem evaluated %d times, want 1", got)
	}
	if hits, misses := e.cache.stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

// TestCacheMemoisesFailures checks failed genomes are cached and never
// re-simulated.
func TestCacheMemoisesFailures(t *testing.T) {
	p := &countingProblem{fail: true}
	e := newEvaluator(p, 1, newGenomeCache(16))
	eval := e.evalFunc()
	genes := []float64{0.1, 0.2, 0.3}
	for i := 0; i < 3; i++ {
		if _, ok := e.evaluateOne(eval, genes); ok {
			t.Fatal("failing problem reported success")
		}
	}
	if got := p.calls.Load(); got != 1 {
		t.Errorf("failing genome simulated %d times, want 1", got)
	}
}

// TestCacheEvictionBound checks the cache never exceeds its bound and
// evicts oldest-first.
func TestCacheEvictionBound(t *testing.T) {
	c := newGenomeCache(4)
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = quantKey([]float64{float64(i) / 10, 0.5})
		c.put(keys[i], cacheEntry{objs: []float64{float64(i)}, ok: true})
		if c.len() > 4 {
			t.Fatalf("cache grew to %d entries, bound 4", c.len())
		}
	}
	// The four newest keys survive; the oldest six are gone.
	for i, k := range keys {
		_, hit := c.get(k)
		if want := i >= 6; hit != want {
			t.Errorf("key %d: hit=%v, want %v", i, hit, want)
		}
	}
	// Re-putting an existing key must not grow or evict.
	c.put(keys[9], cacheEntry{objs: []float64{99}, ok: true})
	if c.len() != 4 {
		t.Errorf("refresh changed size to %d", c.len())
	}
	if e, hit := c.get(keys[9]); !hit || e.objs[0] != 99 {
		t.Error("refresh did not update the entry")
	}
}

// TestCacheQuantization checks genomes closer than the quantisation step
// share a key while clearly distinct genomes do not.
func TestCacheQuantization(t *testing.T) {
	a := []float64{0.5, 0.5}
	b := []float64{0.5 + 1e-12, 0.5}
	d := []float64{0.5 + 1e-6, 0.5}
	if quantKey(a) != quantKey(b) {
		t.Error("sub-quantum perturbation changed the key")
	}
	if quantKey(a) == quantKey(d) {
		t.Error("distinct genomes share a key")
	}
	// Out-of-range genes clamp rather than wrap.
	if quantKey([]float64{-0.5}) != quantKey([]float64{0}) {
		t.Error("negative gene did not clamp to 0")
	}
	if quantKey([]float64{1.5}) != quantKey([]float64{1}) {
		t.Error("oversized gene did not clamp to 1")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; run under
// `go test -race` this doubles as the data-race check.
func TestCacheConcurrent(t *testing.T) {
	c := newGenomeCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := quantKey([]float64{float64((w+i)%50) / 50, float64(i%7) / 7})
				if _, hit := c.get(k); !hit {
					c.put(k, cacheEntry{objs: []float64{float64(i)}, ok: true})
				}
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 32 {
		t.Errorf("cache exceeded bound: %d", c.len())
	}
	hits, misses := c.stats()
	if hits+misses != 8*500 {
		t.Errorf("lookup count %d, want %d", hits+misses, 8*500)
	}
}

// TestRunReportsCacheCounters runs a full WBGA and checks the counters
// are consistent and that hits appear once the population converges.
func TestRunReportsCacheCounters(t *testing.T) {
	p := &countingProblem{}
	res, err := Run(context.Background(), p, Options{PopSize: 20, Generations: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits+res.CacheMisses != res.Evaluations {
		t.Errorf("hits %d + misses %d != evaluations %d",
			res.CacheHits, res.CacheMisses, res.Evaluations)
	}
	if res.CacheHits == 0 {
		t.Error("no cache hits across 15 generations (elites alone should hit)")
	}
	if int(p.calls.Load()) != res.CacheMisses {
		t.Errorf("problem simulated %d times but misses = %d", p.calls.Load(), res.CacheMisses)
	}
	// The archive still records every evaluation individually.
	if len(res.Evals) != res.Evaluations {
		t.Errorf("archive %d != evaluations %d", len(res.Evals), res.Evaluations)
	}
}

// TestRunCacheDisabled checks a negative CacheSize turns caching off.
func TestRunCacheDisabled(t *testing.T) {
	p := &countingProblem{}
	res, err := Run(context.Background(), p, Options{PopSize: 10, Generations: 5, Seed: 7, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Errorf("disabled cache counted %d/%d", res.CacheHits, res.CacheMisses)
	}
	if int(p.calls.Load()) != res.Evaluations {
		t.Errorf("simulated %d, want every one of %d", p.calls.Load(), res.Evaluations)
	}
}

// TestCachedRunMatchesUncachedRun checks caching changes no archived
// result: fitnesses and objectives are identical with and without it.
func TestCachedRunMatchesUncachedRun(t *testing.T) {
	a, err := Run(context.Background(), &countingProblem{}, Options{PopSize: 15, Generations: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), &countingProblem{}, Options{PopSize: 15, Generations: 10, Seed: 3, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Evals) != len(b.Evals) {
		t.Fatal("archive sizes differ")
	}
	for i := range a.Evals {
		if a.Evals[i].Fitness != b.Evals[i].Fitness {
			t.Fatalf("eval %d fitness differs: %g vs %g", i, a.Evals[i].Fitness, b.Evals[i].Fitness)
		}
		for k := range a.Evals[i].Objectives {
			ao, bo := a.Evals[i].Objectives[k], b.Evals[i].Objectives[k]
			if ao != bo && !(math.IsNaN(ao) && math.IsNaN(bo)) {
				t.Fatalf("eval %d objective %d differs: %g vs %g", i, k, ao, bo)
			}
		}
	}
}

// reusableProbe wraps countingProblem to verify NewEvaluator is used for
// worker-local state.
type reusableProbe struct {
	countingProblem
	evaluators atomic.Int64
}

func (p *reusableProbe) NewEvaluator() func([]float64) ([]float64, error) {
	p.evaluators.Add(1)
	scratch := make([]float64, 2) // stands in for a solver workspace
	return func(g []float64) ([]float64, error) {
		p.calls.Add(1)
		scratch[0] = g[0] + 2*g[1] + 4*g[2]
		scratch[1] = 1 - scratch[0]
		return append([]float64(nil), scratch...), nil
	}
}

// TestReusableProblemWorkers checks every worker gets its own evaluator
// and results match the plain path.
func TestReusableProblemWorkers(t *testing.T) {
	p := &reusableProbe{}
	res, err := Run(context.Background(), p, Options{PopSize: 12, Generations: 4, Seed: 9, Workers: 3, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p.evaluators.Load() == 0 {
		t.Fatal("NewEvaluator never called")
	}
	plain, err := Run(context.Background(), &countingProblem{}, Options{PopSize: 12, Generations: 4, Seed: 9, Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Evals {
		if res.Evals[i].Fitness != plain.Evals[i].Fitness {
			t.Fatalf("eval %d fitness differs between reusable and plain paths", i)
		}
	}
}

// TestEvaluatePopulationConcurrentCache exercises the full parallel
// evaluation path with duplicate genomes under the race detector.
func TestEvaluatePopulationConcurrentCache(t *testing.T) {
	p := &countingProblem{}
	e := newEvaluator(p, 8, newGenomeCache(64))
	genomes := make([][]float64, 64)
	for i := range genomes {
		v := float64(i%8) / 8
		genomes[i] = []float64{v, v / 2, v / 3, 1, 1} // 3 params + 2 weights
	}
	for round := 0; round < 3; round++ {
		fits := e.EvaluatePopulation(genomes)
		if len(fits) != len(genomes) {
			t.Fatal("fitness length mismatch")
		}
	}
	// 8 distinct genomes; concurrent first-round misses may double-
	// simulate a genome, but later rounds must all hit.
	if got := p.calls.Load(); got < 8 || got > 64 {
		t.Errorf("simulated %d times, want between 8 and 64", got)
	}
}
