package wbga

import (
	"math/rand"
	"testing"

	"analogyield/internal/analysis"
	"analogyield/internal/ota"
)

// otaBenchProblem adapts the seed OTA benchmark (internal/ota) as a
// wbga.Problem, with per-worker solver workspaces via ReusableProblem.
type otaBenchProblem struct {
	cfg   ota.Config
	space ota.Space
}

func newOTABenchProblem() *otaBenchProblem {
	return &otaBenchProblem{cfg: ota.DefaultConfig(), space: ota.DefaultSpace()}
}

func (*otaBenchProblem) NumParams() int     { return 8 }
func (*otaBenchProblem) NumObjectives() int { return 2 }
func (*otaBenchProblem) Maximize() []bool   { return []bool{true, true} }

func (p *otaBenchProblem) eval(genes []float64, ws *analysis.Workspace) ([]float64, error) {
	params, err := p.space.Denormalize(genes)
	if err != nil {
		return nil, err
	}
	perf, err := p.cfg.EvaluateWS(params, nil, ws)
	if err != nil {
		return nil, err
	}
	return []float64{perf.GainDB, perf.PMDeg}, nil
}

func (p *otaBenchProblem) Evaluate(genes []float64) ([]float64, error) {
	return p.eval(genes, nil)
}

func (p *otaBenchProblem) NewEvaluator() func([]float64) ([]float64, error) {
	ws := analysis.NewWorkspace()
	return func(genes []float64) ([]float64, error) { return p.eval(genes, ws) }
}

// benchGeneration builds one GA generation of the given size over the
// OTA problem, with dupFrac of the genomes exact duplicates — the shape
// of a converging population (elites and crossover-only children).
func benchGeneration(popSize int, dupFrac float64) [][]float64 {
	rng := rand.New(rand.NewSource(42))
	genomes := make([][]float64, popSize)
	distinct := int(float64(popSize) * (1 - dupFrac))
	if distinct < 1 {
		distinct = 1
	}
	for i := range genomes {
		if i < distinct {
			g := make([]float64, 8+2)
			for j := range g {
				g[j] = rng.Float64()
			}
			genomes[i] = g
		} else {
			genomes[i] = genomes[rng.Intn(distinct)]
		}
	}
	return genomes
}

// benchmarkWBGAGeneration scores one generation per iteration with a
// fresh evaluator (cold cache), so only intra-generation duplicates hit.
func benchmarkWBGAGeneration(b *testing.B, workers, cacheSize int, dupFrac float64) {
	b.Helper()
	prob := newOTABenchProblem()
	genomes := benchGeneration(32, dupFrac)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := newEvaluator(prob, workers, newGenomeCache(cacheSize))
		if fits := ev.EvaluatePopulation(genomes); len(fits) != len(genomes) {
			b.Fatal("fitness length mismatch")
		}
	}
}

// BenchmarkWBGAGeneration is the headline number: one generation of the
// seed OTA problem on the full engine (workspaces + genome cache), with
// the duplicate rate of a mid-run population.
func BenchmarkWBGAGeneration(b *testing.B)        { benchmarkWBGAGeneration(b, 4, 1024, 0.5) }
func BenchmarkWBGAGenerationNoCache(b *testing.B) { benchmarkWBGAGeneration(b, 4, 0, 0.5) }
func BenchmarkWBGAGenerationSerial(b *testing.B)  { benchmarkWBGAGeneration(b, 1, 1024, 0.5) }
