package wbga

import (
	"encoding/binary"
	"math"
	"sync"
)

// geneQuantBits sets the genome-cache key resolution: parameter genes in
// [0,1] are quantised to 2^-30 (≈1e-9 of the normalised range, i.e.
// sub-femtometre steps on the paper's Table 1 W/L ranges) before
// hashing. Converging GA populations re-emit bit-identical genomes —
// elites, crossover without mutation — across generations, and the
// quantisation additionally folds together genomes whose difference is
// far below any physical significance.
const geneQuantBits = 30

// quantKey renders a parameter-gene vector as a fixed-width binary cache
// key at geneQuantBits resolution.
func quantKey(genes []float64) string {
	b := make([]byte, 4*len(genes))
	for i, g := range genes {
		if g < 0 {
			g = 0
		} else if g > 1 {
			g = 1
		}
		q := uint32(math.Round(g * (1 << geneQuantBits)))
		binary.LittleEndian.PutUint32(b[i*4:], q)
	}
	return string(b)
}

// cacheEntry memoises one evaluation outcome. Failed evaluations are
// cached too (ok=false) so the GA never re-simulates a known-bad genome.
type cacheEntry struct {
	objs []float64
	ok   bool
}

// genomeCache is a bounded, concurrency-safe memo of quantised parameter
// genes → objective values. Eviction is FIFO: once the bound is reached,
// the oldest distinct genome is dropped — a good fit for a GA, where
// re-evaluations cluster within a few adjacent generations.
type genomeCache struct {
	mu           sync.Mutex
	bound        int
	m            map[string]cacheEntry
	order        []string // insertion order; order[head:] are live
	head         int
	hits, misses int64
}

// newGenomeCache returns a cache holding at most bound distinct genomes.
func newGenomeCache(bound int) *genomeCache {
	if bound <= 0 {
		return nil
	}
	return &genomeCache{bound: bound, m: make(map[string]cacheEntry, bound)}
}

// get looks up a key, counting the hit or miss. A nil cache always
// misses without counting.
func (c *genomeCache) get(key string) (cacheEntry, bool) {
	if c == nil {
		return cacheEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// put memoises one outcome, evicting the oldest entry when full. Putting
// an existing key only refreshes its entry.
func (c *genomeCache) put(key string, e cacheEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; exists {
		c.m[key] = e
		return
	}
	if len(c.m) >= c.bound {
		delete(c.m, c.order[c.head])
		c.head++
		if c.head > len(c.order)/2 {
			c.order = append(c.order[:0:0], c.order[c.head:]...)
			c.head = 0
		}
	}
	c.m[key] = e
	c.order = append(c.order, key)
}

// len reports the number of cached genomes.
func (c *genomeCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// stats returns the cumulative hit and miss counts.
func (c *genomeCache) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
