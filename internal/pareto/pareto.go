// Package pareto extracts non-dominated solution sets from
// multi-objective evaluation archives: dominance tests, front
// extraction, fast non-dominated sorting into ranked fronts, and
// crowding distance.
//
// The paper's step 3.3 defines the front by the two conditions (a) all
// members are mutually non-dominated and (b) every non-member is
// dominated by at least one member; Front implements exactly that.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Dominates reports whether objective vector a dominates b: a is at
// least as good in every objective and strictly better in at least one.
// maximize[k] selects the sense of objective k.
func Dominates(a, b []float64, maximize []bool) bool {
	if len(a) != len(b) || len(a) != len(maximize) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d/%d/%d", len(a), len(b), len(maximize)))
	}
	strictly := false
	for k := range a {
		av, bv := a[k], b[k]
		if !maximize[k] {
			av, bv = -av, -bv
		}
		if av < bv {
			return false
		}
		if av > bv {
			strictly = true
		}
	}
	return strictly
}

// Front returns the indices of the non-dominated points, in input order.
// Points with any NaN objective are treated as dominated (excluded).
// Two-objective archives take the O(n log n) planar-maxima path (see
// kung.go); other dimensions use the all-pairs test.
func Front(points [][]float64, maximize []bool) []int {
	if len(maximize) == 2 {
		return front2(points, maximize)
	}
	return frontNaive(points, maximize)
}

// frontNaive is the all-pairs front extraction, kept as the d≠2 path
// and as the reference implementation the fast path is property-tested
// against.
func frontNaive(points [][]float64, maximize []bool) []int {
	var out []int
	for i, p := range points {
		if hasNaN(p) {
			continue
		}
		dominated := false
		for j, q := range points {
			if i == j || hasNaN(q) {
				continue
			}
			if Dominates(q, p, maximize) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func hasNaN(p []float64) bool {
	for _, v := range p {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// Sort performs non-dominated sorting and returns ranked fronts:
// result[0] is the Pareto front, result[1] the front after removing
// result[0], and so on, each front in input order. NaN points are
// omitted. Two-objective archives use repeated planar-maxima sweeps
// over one pre-sorted list (see kung.go); other dimensions use Deb's
// NSGA-II all-pairs scheme.
func Sort(points [][]float64, maximize []bool) [][]int {
	if len(maximize) == 2 {
		return sort2(points, maximize)
	}
	return sortDeb(points, maximize)
}

// sortDeb is Deb's fast non-dominated sorting, kept as the d≠2 path and
// as the reference implementation for property tests.
func sortDeb(points [][]float64, maximize []bool) [][]int {
	n := len(points)
	dominatedBy := make([][]int, n) // dominatedBy[i]: points i dominates
	domCount := make([]int, n)      // number of points dominating i
	valid := make([]bool, n)
	for i := range points {
		valid[i] = !hasNaN(points[i])
	}
	for i := 0; i < n; i++ {
		if !valid[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if !valid[j] {
				continue
			}
			switch {
			case Dominates(points[i], points[j], maximize):
				dominatedBy[i] = append(dominatedBy[i], j)
				domCount[j]++
			case Dominates(points[j], points[i], maximize):
				dominatedBy[j] = append(dominatedBy[j], i)
				domCount[i]++
			}
		}
	}
	var fronts [][]int
	var current []int
	for i := 0; i < n; i++ {
		if valid[i] && domCount[i] == 0 {
			current = append(current, i)
		}
	}
	for len(current) > 0 {
		sort.Ints(current) // input order, matching the d==2 path
		fronts = append(fronts, current)
		var next []int
		for _, i := range current {
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		current = next
	}
	return fronts
}

// Crowding returns the NSGA-II crowding distance of each point within a
// single front (larger = more isolated; boundary points get +Inf).
func Crowding(points [][]float64) []float64 {
	n := len(points)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	m := len(points[0])
	for k := 0; k < m; k++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return points[idx[a]][k] < points[idx[b]][k] })
		lo, hi := points[idx[0]][k], points[idx[n-1]][k]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for i := 1; i < n-1; i++ {
			dist[idx[i]] += (points[idx[i+1]][k] - points[idx[i-1]][k]) / (hi - lo)
		}
	}
	return dist
}

// Verify checks the paper's two front conditions against an archive:
// (a) members are mutually non-dominated, (b) every non-member is
// dominated by at least one member. It returns a descriptive error on
// the first violation.
func Verify(points [][]float64, frontIdx []int, maximize []bool) error {
	inFront := make(map[int]bool, len(frontIdx))
	for _, i := range frontIdx {
		inFront[i] = true
	}
	for _, i := range frontIdx {
		for _, j := range frontIdx {
			if i != j && Dominates(points[i], points[j], maximize) {
				return fmt.Errorf("pareto: front member %d dominates member %d", i, j)
			}
		}
	}
	for i := range points {
		if inFront[i] || hasNaN(points[i]) {
			continue
		}
		dominated := false
		for _, j := range frontIdx {
			if Dominates(points[j], points[i], maximize) {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("pareto: non-member %d is not dominated by any front member", i)
		}
	}
	return nil
}

// Hypervolume2D returns the area dominated by a two-objective front
// relative to a reference point, with both objectives maximised (the
// reference should be dominated by every interesting front point). It is
// the standard scalar quality measure for comparing optimiser fronts:
// larger is better. Points that do not dominate the reference are
// ignored.
func Hypervolume2D(front [][]float64, ref [2]float64) float64 {
	type pt struct{ x, y float64 }
	var pts []pt
	for _, p := range front {
		if len(p) != 2 {
			panic(fmt.Sprintf("pareto: Hypervolume2D needs 2-objective points, got %d", len(p)))
		}
		if p[0] > ref[0] && p[1] > ref[1] {
			pts = append(pts, pt{p[0], p[1]})
		}
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	// Keep the staircase: points whose y exceeds every y at larger x.
	maxYRight := make([]float64, len(pts))
	runMax := math.Inf(-1)
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].y > runMax {
			runMax = pts[i].y
		}
		maxYRight[i] = runMax
	}
	var stairs []pt
	for i, p := range pts {
		if p.y >= maxYRight[i] {
			stairs = append(stairs, p)
		}
	}
	// Stairs ascend in x with strictly descending y. The union of the
	// dominated rectangles [ref.x, x_i] x [ref.y, y_i] decomposes into
	// vertical strips: [x_{i-1}, x_i] is covered to height y_i (the
	// tallest rectangle reaching past x_{i-1} is stair i itself).
	area := 0.0
	x0 := ref[0]
	for _, st := range stairs {
		area += (st.x - x0) * (st.y - ref[1])
		x0 = st.x
	}
	return area
}
