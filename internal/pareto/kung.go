// Two-objective fast paths. Kung, Luccio and Preparata showed the
// maxima of a planar point set — exactly the Pareto front of a
// two-objective archive — can be found in O(n log n): sort by the first
// coordinate and sweep, keeping a point iff its second coordinate beats
// every point sorted before it. The GA archives this repository builds
// are two-objective (yield, performance) and reach 10^4 points, where
// the all-pairs test in frontNaive is orders of magnitude more
// comparisons.
//
// Care is needed to preserve frontNaive's weak-dominance semantics:
// duplicate points do not dominate each other (all copies survive), and
// a point with equal x survives only if its y is strictly better than
// the running maximum from strictly larger x. The sweep therefore walks
// equal-x groups as a unit.
package pareto

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// planar is a sign-normalised two-objective point (both coordinates
// maximised) tagged with its archive index.
type planar struct {
	x, y float64
	idx  int
}

// planarize projects a two-objective archive onto maximise-both planar
// points, dropping NaN rows. The result is NOT yet sorted.
func planarize(points [][]float64, maximize []bool) []planar {
	sx, sy := 1.0, 1.0
	if !maximize[0] {
		sx = -1
	}
	if !maximize[1] {
		sy = -1
	}
	pts := make([]planar, 0, len(points))
	for i, p := range points {
		if len(p) != 2 {
			panic(fmt.Sprintf("pareto: dimension mismatch %d/2", len(p)))
		}
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			continue
		}
		pts = append(pts, planar{sx * p[0], sy * p[1], i})
	}
	return pts
}

// cmpPlanar orders by (x desc, y desc, idx asc) — the total order every
// sweep below relies on. The idx tiebreak makes the order unique, so an
// unstable sort is fine.
func cmpPlanar(a, b planar) int {
	if a.x != b.x {
		if a.x > b.x {
			return -1
		}
		return 1
	}
	if a.y != b.y {
		if a.y > b.y {
			return -1
		}
		return 1
	}
	return a.idx - b.idx
}

// sweepMaxima splits sorted points into maxima (appended to front, as
// archive indices) and, when keepRest is set, the dominated remainder
// (appended to rest, sort order preserved). best tracks the max y over
// strictly larger x; a point survives iff it has the best y of its
// equal-x group and that y strictly beats best — matching weak
// dominance exactly.
func sweepMaxima(pts []planar, front []int, rest []planar, keepRest bool) ([]int, []planar) {
	best := math.Inf(-1)
	for i := 0; i < len(pts); {
		j := i
		for j < len(pts) && pts[j].x == pts[i].x {
			j++
		}
		gmax := pts[i].y // groups are y-descending
		for k := i; k < j; k++ {
			if pts[k].y == gmax && gmax > best {
				front = append(front, pts[k].idx)
			} else if keepRest {
				rest = append(rest, pts[k])
			}
		}
		if gmax > best {
			best = gmax
		}
		i = j
	}
	return front, rest
}

// front2 is the fast two-objective Front: O(n log n) worst case, near
// O(n) on typical archives. Before sorting, one linear pass finds the
// point maximising x+y — any such point is itself on the front — and
// drops everything it strictly dominates, which on a random archive is
// the bulk of the points; only the surviving margin pays for the sort.
func front2(points [][]float64, maximize []bool) []int {
	pts := planarize(points, maximize)
	bestI, bestS := -1, math.Inf(-1)
	for i, p := range pts {
		if s := p.x + p.y; s > bestS {
			bestS, bestI = s, i
		}
	}
	if bestI >= 0 { // every sum NaN (±Inf mixes): skip the prune
		ps := pts[bestI]
		kept := pts[:0]
		for _, p := range pts {
			if p.x <= ps.x && p.y <= ps.y && (p.x < ps.x || p.y < ps.y) {
				continue // strictly dominated by ps; ties survive
			}
			kept = append(kept, p)
		}
		pts = kept
	}
	slices.SortFunc(pts, cmpPlanar)
	front, _ := sweepMaxima(pts, nil, nil, false)
	sort.Ints(front) // input order, like frontNaive
	return front
}

// sort2 is the two-objective Sort: one O(n log n) sort, then one linear
// sweep per rank over the surviving points (which stay sorted, so no
// re-sort between ranks). Archives with few ranks — the common case for
// a converging GA — extract in near-linear time after the sort.
func sort2(points [][]float64, maximize []bool) [][]int {
	alive := planarize(points, maximize)
	slices.SortFunc(alive, cmpPlanar)
	spill := make([]planar, 0, len(alive))
	var fronts [][]int
	for len(alive) > 0 {
		var front []int
		front, spill = sweepMaxima(alive, front, spill[:0], true)
		sort.Ints(front)
		fronts = append(fronts, front)
		alive, spill = spill, alive
	}
	return fronts
}
