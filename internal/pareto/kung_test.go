package pareto

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randArchive builds a random two-objective archive. With clustered
// coordinate grids it produces plenty of exact ties and duplicates, and
// it sprinkles NaN rows — the cases where the fast path could diverge
// from the all-pairs reference.
func randArchive(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		var x, y float64
		if rng.Intn(2) == 0 {
			// Snap to a coarse grid: exact ties and duplicates.
			x = float64(rng.Intn(8))
			y = float64(rng.Intn(8))
		} else {
			x = rng.NormFloat64() * 10
			y = rng.NormFloat64() * 10
		}
		if rng.Intn(12) == 0 {
			x = math.NaN()
		}
		if rng.Intn(12) == 0 {
			y = math.NaN()
		}
		pts[i] = []float64{x, y}
	}
	return pts
}

// TestFront2MatchesNaive: the planar-maxima front must equal the
// all-pairs front exactly — same members, same order — for every
// objective-sense combination, including tie-heavy and NaN-bearing
// archives.
func TestFront2MatchesNaive(t *testing.T) {
	senses := [][]bool{{true, true}, {false, false}, {true, false}, {false, true}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randArchive(rng, 1+rng.Intn(120))
		max := senses[rng.Intn(len(senses))]
		fast := Front(pts, max)
		slow := frontNaive(pts, max)
		if len(fast) == 0 && len(slow) == 0 {
			return true
		}
		return reflect.DeepEqual(fast, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFront2SatisfiesVerify: the fast front passes the paper's two
// front conditions directly.
func TestFront2SatisfiesVerify(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randArchive(rng, 2+rng.Intn(200))
		front := Front(pts, []bool{true, true})
		return Verify(pts, front, []bool{true, true}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSort2MatchesDeb: ranked fronts from the sweep-per-rank path must
// equal Deb's scheme rank by rank.
func TestSort2MatchesDeb(t *testing.T) {
	senses := [][]bool{{true, true}, {false, true}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randArchive(rng, 1+rng.Intn(90))
		max := senses[rng.Intn(len(senses))]
		fast := Sort(pts, max)
		slow := sortDeb(pts, max)
		if len(fast) != len(slow) {
			return false
		}
		for r := range fast {
			if !reflect.DeepEqual(fast[r], slow[r]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFront2Duplicates: identical points do not dominate each other, so
// every copy of a front point must survive.
func TestFront2Duplicates(t *testing.T) {
	pts := [][]float64{{5, 5}, {5, 5}, {4, 6}, {4, 6}, {3, 3}, {5, 5}}
	got := Front(pts, []bool{true, true})
	want := []int{0, 1, 2, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Front = %v, want %v", got, want)
	}
}

// TestFront2AllNaN: an archive of only NaN rows has an empty front on
// both paths.
func TestFront2AllNaN(t *testing.T) {
	pts := [][]float64{{math.NaN(), 1}, {2, math.NaN()}}
	if got := Front(pts, []bool{true, true}); len(got) != 0 {
		t.Errorf("Front = %v, want empty", got)
	}
}
