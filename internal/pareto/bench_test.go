package pareto

import (
	"math/rand"
	"testing"
)

// BenchmarkFront10000 times front extraction over a paper-sized archive.
func BenchmarkFront10000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 10000)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 50, rng.Float64() * 90}
	}
	max := []bool{true, true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Front(pts, max)
	}
}
