package pareto

import (
	"math/rand"
	"testing"
)

func benchArchive(n int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 50, rng.Float64() * 90}
	}
	return pts
}

// BenchmarkFront10000 times the all-pairs front extraction over a
// paper-sized archive — the d≠2 fallback, kept as the baseline the
// planar-maxima path is compared against.
func BenchmarkFront10000(b *testing.B) {
	pts := benchArchive(10000)
	max := []bool{true, true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frontNaive(pts, max)
	}
}

// BenchmarkFrontKung10000 times the O(n log n) planar-maxima path Front
// now dispatches two-objective archives to.
func BenchmarkFrontKung10000(b *testing.B) {
	pts := benchArchive(10000)
	max := []bool{true, true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Front(pts, max)
	}
}
