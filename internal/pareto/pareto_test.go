package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var maxBoth = []bool{true, true}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		max  []bool
		want bool
	}{
		{[]float64{2, 2}, []float64{1, 1}, maxBoth, true},
		{[]float64{2, 1}, []float64{1, 2}, maxBoth, false},
		{[]float64{1, 1}, []float64{1, 1}, maxBoth, false}, // equal: no strict improvement
		{[]float64{2, 1}, []float64{1, 1}, maxBoth, true},
		{[]float64{1, 1}, []float64{2, 2}, []bool{false, false}, true}, // minimisation
		{[]float64{2, 1}, []float64{1, 2}, []bool{true, false}, true},  // mixed senses
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b, c.max); got != c.want {
			t.Errorf("case %d: Dominates(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch accepted")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2}, maxBoth)
}

func TestFrontSimple(t *testing.T) {
	// Paper Fig 2: point B is non-optimal because A dominates it.
	points := [][]float64{
		{5, 5}, // A: on the front
		{4, 4}, // B: dominated by A
		{6, 3}, // on the front (trade-off)
		{3, 6}, // on the front (trade-off)
	}
	f := Front(points, maxBoth)
	want := map[int]bool{0: true, 2: true, 3: true}
	if len(f) != 3 {
		t.Fatalf("front size = %d, want 3 (%v)", len(f), f)
	}
	for _, i := range f {
		if !want[i] {
			t.Errorf("unexpected front member %d", i)
		}
	}
}

func TestFrontExcludesNaN(t *testing.T) {
	points := [][]float64{{1, 1}, {math.NaN(), 5}}
	f := Front(points, maxBoth)
	if len(f) != 1 || f[0] != 0 {
		t.Errorf("front = %v, want [0]", f)
	}
}

func TestFrontSatisfiesPaperConditions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	points := make([][]float64, 300)
	for i := range points {
		points[i] = []float64{rng.Float64() * 50, rng.Float64() * 90}
	}
	f := Front(points, maxBoth)
	if err := Verify(points, f, maxBoth); err != nil {
		t.Fatal(err)
	}
	if len(f) == 0 || len(f) == len(points) {
		t.Errorf("degenerate front size %d of %d", len(f), len(points))
	}
}

func TestFrontPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		max3 := []bool{true, false, true}
		fr := Front(pts, max3)
		return Verify(pts, fr, max3) == nil && len(fr) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortRankedFronts(t *testing.T) {
	// Three nested shells.
	points := [][]float64{
		{3, 3},     // rank 0
		{2, 2},     // rank 1
		{1, 1},     // rank 2
		{3.5, 1.5}, // rank 0
		{1.5, 3.5}, // rank 0
		{2.5, 0.5}, // rank 1 (dominated by {3,3}? 3>2.5, 3>0.5 yes → rank >= 1)
	}
	fronts := Sort(points, maxBoth)
	if len(fronts) < 2 {
		t.Fatalf("got %d fronts", len(fronts))
	}
	// Rank 0 must equal Front().
	f0 := Front(points, maxBoth)
	if len(fronts[0]) != len(f0) {
		t.Errorf("rank-0 size %d != Front size %d", len(fronts[0]), len(f0))
	}
	// Every point appears exactly once across fronts.
	seen := map[int]int{}
	for _, fr := range fronts {
		for _, i := range fr {
			seen[i]++
		}
	}
	if len(seen) != len(points) {
		t.Errorf("sorted %d of %d points", len(seen), len(points))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("point %d appears %d times", i, c)
		}
	}
	// Each rank-1 point must be dominated by some rank-0 point.
	for _, j := range fronts[1] {
		ok := false
		for _, i := range fronts[0] {
			if Dominates(points[i], points[j], maxBoth) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("rank-1 point %d not dominated by rank 0", j)
		}
	}
}

func TestSortSkipsNaN(t *testing.T) {
	points := [][]float64{{1, 1}, {math.NaN(), 2}, {2, 2}}
	fronts := Sort(points, maxBoth)
	total := 0
	for _, f := range fronts {
		total += len(f)
	}
	if total != 2 {
		t.Errorf("sorted %d points, want 2 (NaN dropped)", total)
	}
}

func TestCrowding(t *testing.T) {
	// Colinear points: boundary points infinite, middle points finite,
	// evenly spaced ones equal.
	points := [][]float64{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	d := Crowding(points)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[4], 1) {
		t.Error("boundary crowding should be +Inf")
	}
	if math.Abs(d[1]-d[2]) > 1e-12 || math.Abs(d[2]-d[3]) > 1e-12 {
		t.Errorf("uniform spacing should give equal crowding: %v", d)
	}
	// A clustered point gets lower crowding than an isolated one.
	pts2 := [][]float64{{0, 10}, {1, 9}, {1.05, 8.95}, {5, 5}, {10, 0}}
	d2 := Crowding(pts2)
	if d2[2] >= d2[3] {
		t.Errorf("clustered point crowding %g should be below isolated %g", d2[2], d2[3])
	}
}

func TestCrowdingDegenerate(t *testing.T) {
	if d := Crowding(nil); len(d) != 0 {
		t.Error("empty front should give empty distances")
	}
	d := Crowding([][]float64{{1, 1}, {1, 1}})
	if !math.IsInf(d[0], 1) || !math.IsInf(d[1], 1) {
		t.Error("identical points are both boundaries")
	}
}

func TestVerifyDetectsViolation(t *testing.T) {
	points := [][]float64{{2, 2}, {1, 1}}
	// Claim both are on the front — but 0 dominates 1.
	if err := Verify(points, []int{0, 1}, maxBoth); err == nil {
		t.Error("Verify accepted a dominated front member")
	}
	// Claim only the dominated one — 0 is then an uncovered non-member.
	if err := Verify(points, []int{1}, maxBoth); err == nil {
		t.Error("Verify accepted an uncovered non-member")
	}
}

func TestHypervolume2DSinglePoint(t *testing.T) {
	hv := Hypervolume2D([][]float64{{2, 3}}, [2]float64{0, 0})
	if math.Abs(hv-6) > 1e-12 {
		t.Errorf("HV = %g, want 6", hv)
	}
}

func TestHypervolume2DStaircase(t *testing.T) {
	// Two points: (1,3) and (2,1): union area = 1*3 + 1*1 = 4.
	hv := Hypervolume2D([][]float64{{1, 3}, {2, 1}}, [2]float64{0, 0})
	if math.Abs(hv-4) > 1e-12 {
		t.Errorf("HV = %g, want 4", hv)
	}
	// Adding a dominated point changes nothing.
	hv2 := Hypervolume2D([][]float64{{1, 3}, {2, 1}, {0.5, 0.5}}, [2]float64{0, 0})
	if math.Abs(hv2-hv) > 1e-12 {
		t.Errorf("dominated point changed HV: %g vs %g", hv2, hv)
	}
}

func TestHypervolume2DIgnoresOutside(t *testing.T) {
	hv := Hypervolume2D([][]float64{{-1, 5}, {5, -1}}, [2]float64{0, 0})
	if hv != 0 {
		t.Errorf("points not dominating ref should contribute 0, got %g", hv)
	}
	if Hypervolume2D(nil, [2]float64{0, 0}) != 0 {
		t.Error("empty front should have HV 0")
	}
}

func TestHypervolume2DMonotoneProperty(t *testing.T) {
	// Property: adding any point never decreases the hypervolume.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pts [][]float64
		hvPrev := 0.0
		for i := 0; i < 20; i++ {
			pts = append(pts, []float64{rng.Float64() * 10, rng.Float64() * 10})
			hv := Hypervolume2D(pts, [2]float64{0, 0})
			if hv < hvPrev-1e-9 {
				return false
			}
			hvPrev = hv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHypervolume2DPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("3-objective point accepted")
		}
	}()
	Hypervolume2D([][]float64{{1, 2, 3}}, [2]float64{0, 0})
}
