// Package ota implements the paper's benchmark circuit: a symmetrical
// operational transconductance amplifier (Fig 5) with the Table 1
// designable-parameter space, an open-loop AC testbench, and the
// objective evaluation (open-loop gain and phase margin) that feeds the
// multi-objective optimisation.
//
// Topology (three-current-mirror symmetrical OTA):
//
//	M1/M2   NMOS differential pair (fixed geometry, as in the paper)
//	M3/M4   PMOS diode loads            — designable pair (W1, L1)
//	M5/M6   PMOS mirror outputs         — designable pair (W2, L2)
//	M7/M8   NMOS output mirror          — designable pair (W3, L3)
//	M9/M10  NMOS bias/tail mirror       — designable pair (W4, L4)
//
// The mirror ratio B = (W2/L2)/(W1/L1) multiplies the first-stage
// current; output conductance (gain) is set by the channel lengths of
// the output devices while the internal mirror poles (phase margin) are
// set by their gate areas — the physical origin of the gain/PM trade-off
// the paper's Pareto front exposes.
package ota

import (
	"fmt"
	"math"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
	"analogyield/internal/measure"
	"analogyield/internal/mos"
	"analogyield/internal/num"
	"analogyield/internal/process"
)

const um = 1e-6

// Params are the eight designable parameters of the paper's Table 1
// (metres). Each (W, L) pair sizes one matched device pair.
type Params struct {
	W1, L1 float64 // M3/M4: PMOS diode loads
	W2, L2 float64 // M5/M6: PMOS mirror outputs
	W3, L3 float64 // M7/M8: NMOS output mirror
	W4, L4 float64 // M9/M10: bias/tail mirror
}

// Vector returns the parameters in Table 1 order
// (W1, L1, W2, L2, W3, L3, W4, L4).
func (p Params) Vector() []float64 {
	return []float64{p.W1, p.L1, p.W2, p.L2, p.W3, p.L3, p.W4, p.L4}
}

// FromVector builds Params from a Table 1-ordered slice.
func FromVector(v []float64) (Params, error) {
	if len(v) != 8 {
		return Params{}, fmt.Errorf("ota: parameter vector has %d entries, want 8", len(v))
	}
	return Params{v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]}, nil
}

// MirrorRatio returns B = (W2/L2)/(W1/L1), the output current
// multiplication of the symmetrical OTA.
func (p Params) MirrorRatio() float64 {
	return (p.W2 / p.L2) / (p.W1 / p.L1)
}

// Space is the box-constrained parameter space of Table 1. Names returns
// the Table 1 labels; Normalize/Denormalize map between physical values
// and the GA's [0,1] genes.
type Space struct {
	Lo, Hi [8]float64 // metres, Table 1 order
}

// DefaultSpace returns the paper's Table 1 ranges:
// W in [10 µm, 60 µm], L in [0.35 µm, 4 µm] for all four pairs.
func DefaultSpace() Space {
	var s Space
	for i := 0; i < 8; i += 2 {
		s.Lo[i], s.Hi[i] = 10*um, 60*um // widths
		s.Lo[i+1], s.Hi[i+1] = 0.35*um, 4*um
	}
	return s
}

// Names returns the Table 1 parameter labels in order.
func (Space) Names() []string {
	return []string{"W1", "L1", "W2", "L2", "W3", "L3", "W4", "L4"}
}

// Denormalize maps 8 genes in [0,1] to physical Params.
func (s Space) Denormalize(genes []float64) (Params, error) {
	if len(genes) != 8 {
		return Params{}, fmt.Errorf("ota: %d genes, want 8", len(genes))
	}
	v := make([]float64, 8)
	for i, g := range genes {
		v[i] = s.Lo[i] + num.Clamp(g, 0, 1)*(s.Hi[i]-s.Lo[i])
	}
	return FromVector(v)
}

// Normalize maps physical Params to genes in [0,1].
func (s Space) Normalize(p Params) []float64 {
	v := p.Vector()
	g := make([]float64, 8)
	for i := range v {
		g[i] = num.Clamp((v[i]-s.Lo[i])/(s.Hi[i]-s.Lo[i]), 0, 1)
	}
	return g
}

// Config is the fixed testbench configuration: supply, bias, load,
// diff-pair geometry and nominal device models (0.35 µm class, standing
// in for the AMS C35B4 BSim3v3 deck).
type Config struct {
	VDD   float64 // supply, V
	VCM   float64 // input common mode, V
	IBias float64 // reference current into the bias mirror, A
	CLoad float64 // single-ended load capacitance, F

	M1W, M1L float64 // differential pair geometry (fixed per the paper)

	NMOS, PMOS mos.Params
}

// DefaultConfig returns the benchmark conditions used throughout the
// repository: 3.3 V supply, 1.5 V common mode, 10 µA bias, 2 pF load.
// The load was calibrated so the Pareto knee falls where the paper's
// does: gains around 50 dB trading against phase margins in the
// 80s-of-degrees, with ΔGain ≈ 0.4-0.5% and ΔPM ≈ 1.1-1.6% from the
// 0.35 µm-class statistical models.
func DefaultConfig() Config {
	return Config{
		VDD:   3.3,
		VCM:   1.5,
		IBias: 10e-6,
		CLoad: 2e-12,
		M1W:   20 * um,
		M1L:   1 * um,
		NMOS:  mos.NominalNMOS(),
		PMOS:  mos.NominalPMOS(),
	}
}

// modelFor applies one device's statistical shift (nil sample = nominal).
func modelFor(base mos.Params, sample *process.Sample, w, l float64) mos.Params {
	if sample == nil {
		return base
	}
	return base.Applied(sample.DeviceShift(base.Class, w, l))
}

// Build constructs the open-loop testbench netlist for the given
// designable parameters. When sample is non-nil, every transistor
// receives its own statistical shift (global + Pelgrom mismatch), drawn
// in a fixed device order (M1..M10) for determinism.
//
// The signal input is the non-inverting gate ("inp" node driven by VIN
// with ACMag 1); the inverting gate is held at the common mode. The
// open-loop transfer function is V(out)/V(in).
func (c Config) Build(p Params, sample *process.Sample) *circuit.Netlist {
	n := circuit.New("symmetrical OTA testbench")
	vdd := n.Node("vdd")
	inp := n.Node("inp") // non-inverting input (signal)
	inn := n.Node("inn") // inverting input (AC ground)
	n1 := n.Node("n1")   // drain of M1 / gate of M3, M5
	n2 := n.Node("n2")   // drain of M2 / gate of M4, M6
	outm := n.Node("outm")
	out := n.Node("out")
	tail := n.Node("tail")
	bias := n.Node("bias")
	gnd := circuit.Ground

	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: gnd, DC: c.VDD})
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: inp, Neg: gnd, DC: c.VCM, ACMag: 1})
	n.MustAdd(&circuit.ISource{Inst: "IBIAS", Pos: vdd, Neg: bias, DC: c.IBias})
	n.MustAdd(&circuit.Capacitor{Inst: "CL", A: out, B: gnd, C: c.CLoad})
	// DC servo: a huge-time-constant RC feedback to the inverting gate
	// fixes the output operating point at the common mode (the standard
	// open-loop-gain testbench trick). At DC the gate draws no current,
	// so V(inn) = V(out) and unity feedback centres the bias — even when
	// Monte Carlo mismatch introduces an input-referred offset that
	// would otherwise rail a truly open-loop output. At every AC
	// frequency of interest the 1 GΩ / 1 F corner (~0.16 nHz) makes the
	// feedback path transparent, so the measured response is open-loop.
	n.MustAdd(&circuit.Resistor{Inst: "RFB", A: out, B: inn, R: 1e9})
	n.MustAdd(&circuit.Capacitor{Inst: "CFB", A: inn, B: gnd, C: 1})

	c.AddInstance(n, "", vdd, inp, inn, out, n1, n2, outm, tail, bias, p, sample)
	return n
}

// AddInstance adds the ten transistors of one symmetrical OTA to an
// existing netlist. All node indices are supplied by the caller (which
// lets larger circuits, like the §5 filter, instantiate several OTAs
// with private internal nodes). Device names get the given prefix, so
// instances stay uniquely named. The bias mirror (M9/M10) is included;
// the caller supplies the bias node fed by a current reference.
func (c Config) AddInstance(n *circuit.Netlist, prefix string,
	vdd, inp, inn, out, n1, n2, outm, tail, bias int,
	p Params, sample *process.Sample) {
	gnd := circuit.Ground
	name := func(s string) string { return prefix + s }
	// Differential pair: M2 takes the signal (non-inverting path to the
	// output through M4/M6), M1 is the inverting-side device.
	n.MustAdd(&circuit.MOSFET{Inst: name("M1"), D: n1, G: inn, S: tail, B: gnd,
		W: c.M1W, L: c.M1L, Model: modelFor(c.NMOS, sample, c.M1W, c.M1L)})
	n.MustAdd(&circuit.MOSFET{Inst: name("M2"), D: n2, G: inp, S: tail, B: gnd,
		W: c.M1W, L: c.M1L, Model: modelFor(c.NMOS, sample, c.M1W, c.M1L)})
	// PMOS diode loads.
	n.MustAdd(&circuit.MOSFET{Inst: name("M3"), D: n1, G: n1, S: vdd, B: vdd,
		W: p.W1, L: p.L1, Model: modelFor(c.PMOS, sample, p.W1, p.L1)})
	n.MustAdd(&circuit.MOSFET{Inst: name("M4"), D: n2, G: n2, S: vdd, B: vdd,
		W: p.W1, L: p.L1, Model: modelFor(c.PMOS, sample, p.W1, p.L1)})
	// PMOS mirror outputs.
	n.MustAdd(&circuit.MOSFET{Inst: name("M5"), D: outm, G: n1, S: vdd, B: vdd,
		W: p.W2, L: p.L2, Model: modelFor(c.PMOS, sample, p.W2, p.L2)})
	n.MustAdd(&circuit.MOSFET{Inst: name("M6"), D: out, G: n2, S: vdd, B: vdd,
		W: p.W2, L: p.L2, Model: modelFor(c.PMOS, sample, p.W2, p.L2)})
	// NMOS output mirror.
	n.MustAdd(&circuit.MOSFET{Inst: name("M7"), D: outm, G: outm, S: gnd, B: gnd,
		W: p.W3, L: p.L3, Model: modelFor(c.NMOS, sample, p.W3, p.L3)})
	n.MustAdd(&circuit.MOSFET{Inst: name("M8"), D: out, G: outm, S: gnd, B: gnd,
		W: p.W3, L: p.L3, Model: modelFor(c.NMOS, sample, p.W3, p.L3)})
	// Bias/tail mirror.
	n.MustAdd(&circuit.MOSFET{Inst: name("M9"), D: bias, G: bias, S: gnd, B: gnd,
		W: p.W4, L: p.L4, Model: modelFor(c.NMOS, sample, p.W4, p.L4)})
	n.MustAdd(&circuit.MOSFET{Inst: name("M10"), D: tail, G: bias, S: gnd, B: gnd,
		W: p.W4, L: p.L4, Model: modelFor(c.NMOS, sample, p.W4, p.L4)})
}

// Perf holds the measured performance of one OTA instance.
type Perf struct {
	GainDB  float64 // open-loop DC gain, dB
	PMDeg   float64 // phase margin, degrees
	UnityHz float64 // unity-gain frequency, Hz
	BW3dB   float64 // −3 dB bandwidth, Hz
	VOut    float64 // DC output voltage, V (bias sanity)
}

// sweepStart/sweepStop bound the open-loop AC sweep. The start must sit
// well below the dominant pole (tens of kHz here) for the first point to
// approximate the DC gain.
const (
	sweepStart = 100.0
	sweepStop  = 1e9
)

// Evaluate builds and simulates the testbench, returning the measured
// performance. It is the objective function of the paper's MOO step.
func (c Config) Evaluate(p Params, sample *process.Sample) (Perf, error) {
	return c.EvaluateWS(p, sample, nil)
}

// EvaluateWS is Evaluate with a reusable solver workspace: the operating
// point and AC sweep solve through ws instead of allocating fresh
// matrices, factorisations and vectors. A nil ws allocates internally
// (identical to Evaluate). A workspace serves one goroutine at a time —
// give each evaluation worker its own.
func (c Config) EvaluateWS(p Params, sample *process.Sample, ws *analysis.Workspace) (Perf, error) {
	freqs, tf, vout, err := c.response(p, sample, 10, ws)
	if err != nil {
		return Perf{}, err
	}
	return perfFrom(freqs, tf, vout)
}

// Response returns the open-loop frequency response (Fig 8's series) at
// pointsPerDecade resolution.
func (c Config) Response(p Params, sample *process.Sample, pointsPerDecade int) ([]float64, []complex128, error) {
	freqs, tf, _, err := c.response(p, sample, pointsPerDecade, nil)
	return freqs, tf, err
}

func (c Config) response(p Params, sample *process.Sample, ppd int, ws *analysis.Workspace) ([]float64, []complex128, float64, error) {
	if err := validate(p); err != nil {
		return nil, nil, 0, err
	}
	n := c.Build(p, sample)
	op, err := analysis.OP(n, &analysis.OPOptions{WS: ws})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("ota: %w", err)
	}
	vout, _ := op.V("out")
	ac, err := analysis.ACDecadeWith(n, op, sweepStart, sweepStop, ppd, ws)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("ota: %w", err)
	}
	tf, err := ac.V("out")
	if err != nil {
		return nil, nil, 0, err
	}
	return ac.Freqs, tf, vout, nil
}

func perfFrom(freqs []float64, tf []complex128, vout float64) (Perf, error) {
	perf := Perf{VOut: vout}
	perf.GainDB = measure.DCGainDB(tf)
	if math.IsNaN(perf.GainDB) || math.IsInf(perf.GainDB, 0) {
		return perf, fmt.Errorf("ota: degenerate gain")
	}
	pm, err := measure.PhaseMarginDeg(freqs, tf)
	if err != nil {
		return perf, fmt.Errorf("ota: phase margin: %w", err)
	}
	perf.PMDeg = pm
	if fu, err := measure.UnityGainFreq(freqs, tf); err == nil {
		perf.UnityHz = fu
	}
	if bw, err := measure.Bandwidth3dB(freqs, tf); err == nil {
		perf.BW3dB = bw
	}
	return perf, nil
}

func validate(p Params) error {
	for i, v := range p.Vector() {
		if v <= 0 {
			return fmt.Errorf("ota: non-positive parameter %d (%g)", i, v)
		}
	}
	return nil
}

// NominalParams returns a reasonable mid-space design used by examples
// and as a sanity anchor in tests.
func NominalParams() Params {
	return Params{
		W1: 15 * um, L1: 1 * um,
		W2: 45 * um, L2: 1.5 * um,
		W3: 20 * um, L3: 1.5 * um,
		W4: 20 * um, L4: 2 * um,
	}
}
