package ota

import (
	"math"
	"math/rand"
	"testing"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
	"analogyield/internal/measure"
	"analogyield/internal/process"
)

func TestSpaceRoundTrip(t *testing.T) {
	s := DefaultSpace()
	genes := []float64{0, 0.25, 0.5, 0.75, 1, 0.1, 0.9, 0.33}
	p, err := s.Denormalize(genes)
	if err != nil {
		t.Fatal(err)
	}
	back := s.Normalize(p)
	for i := range genes {
		if math.Abs(back[i]-genes[i]) > 1e-9 {
			t.Errorf("gene %d: %g -> %g", i, genes[i], back[i])
		}
	}
}

func TestSpaceRangesMatchTable1(t *testing.T) {
	s := DefaultSpace()
	for i := 0; i < 8; i += 2 {
		if s.Lo[i] != 10e-6 || s.Hi[i] != 60e-6 {
			t.Errorf("width %d range (%g, %g), want Table 1's 10-60 µm", i, s.Lo[i], s.Hi[i])
		}
		if s.Lo[i+1] != 0.35e-6 || s.Hi[i+1] != 4e-6 {
			t.Errorf("length %d range (%g, %g), want Table 1's 0.35-4 µm", i+1, s.Lo[i+1], s.Hi[i+1])
		}
	}
	if len(s.Names()) != 8 {
		t.Error("want 8 parameter names")
	}
}

func TestSpaceDenormalizeClamps(t *testing.T) {
	s := DefaultSpace()
	p, err := s.Denormalize([]float64{-1, 2, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if p.W1 != s.Lo[0] || p.L1 != s.Hi[1] {
		t.Error("out-of-box genes not clamped")
	}
	if _, err := s.Denormalize([]float64{0.5}); err == nil {
		t.Error("short genome accepted")
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	p := NominalParams()
	q, err := FromVector(p.Vector())
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Error("Vector/FromVector not inverse")
	}
	if _, err := FromVector([]float64{1, 2}); err == nil {
		t.Error("short vector accepted")
	}
}

func TestMirrorRatio(t *testing.T) {
	p := Params{W1: 10e-6, L1: 1e-6, W2: 30e-6, L2: 1e-6, W3: 1, L3: 1, W4: 1, L4: 1}
	if b := p.MirrorRatio(); math.Abs(b-3) > 1e-12 {
		t.Errorf("MirrorRatio = %g, want 3", b)
	}
}

func TestBuildTopology(t *testing.T) {
	c := DefaultConfig()
	n := c.Build(NominalParams(), nil)
	// 10 transistors + 2 V sources + 1 I source + 2 caps + 1 resistor.
	if got := len(n.Devices()); got != 16 {
		t.Errorf("device count = %d, want 16", got)
	}
	for _, name := range []string{"M1", "M5", "M10", "VDD", "VIN", "IBIAS", "CL", "RFB", "CFB"} {
		if n.Device(name) == nil {
			t.Errorf("missing device %s", name)
		}
	}
	// Matched pairs share geometry.
	m3 := n.Device("M3").(*circuit.MOSFET)
	m4 := n.Device("M4").(*circuit.MOSFET)
	if m3.W != m4.W || m3.L != m4.L {
		t.Error("M3/M4 pair not matched")
	}
}

func TestEvaluateNominal(t *testing.T) {
	c := DefaultConfig()
	perf, err := c.Evaluate(NominalParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if perf.GainDB < 35 || perf.GainDB > 60 {
		t.Errorf("gain = %g dB, want a 0.35 µm-class OTA value (35..60)", perf.GainDB)
	}
	if perf.PMDeg < 30 || perf.PMDeg > 95 {
		t.Errorf("PM = %g deg, want stable range", perf.PMDeg)
	}
	if perf.UnityHz < 1e5 || perf.UnityHz > 1e9 {
		t.Errorf("fu = %g Hz out of plausible range", perf.UnityHz)
	}
	if perf.BW3dB <= 0 || perf.BW3dB >= perf.UnityHz {
		t.Errorf("BW = %g should be below fu = %g", perf.BW3dB, perf.UnityHz)
	}
	if perf.VOut <= 0.1 || perf.VOut >= c.VDD-0.1 {
		t.Errorf("output bias %g V rails", perf.VOut)
	}
}

func TestGainPMTradeoffMechanism(t *testing.T) {
	// A longer NMOS-mirror channel (L3) raises gain (smaller λ at the
	// output) and lowers PM (larger mirror gate area slows the internal
	// pole) without changing the mirror ratio — the cleanest form of the
	// paper's trade-off mechanism. Verify both directions.
	c := DefaultConfig()
	short := NominalParams()
	short.L3 = 0.7e-6
	long := NominalParams()
	long.L3 = 3.5e-6
	ps, err := c.Evaluate(short, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := c.Evaluate(long, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.GainDB <= ps.GainDB {
		t.Errorf("long-L gain %g should exceed short-L gain %g", pl.GainDB, ps.GainDB)
	}
	if pl.PMDeg >= ps.PMDeg {
		t.Errorf("long-L PM %g should be below short-L PM %g (slower mirrors)", pl.PMDeg, ps.PMDeg)
	}
}

func TestEvaluateAcrossSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("space sweep in -short mode")
	}
	c := DefaultConfig()
	s := DefaultSpace()
	rng := rand.New(rand.NewSource(99))
	fails := 0
	for i := 0; i < 25; i++ {
		g := make([]float64, 8)
		for j := range g {
			g[j] = rng.Float64()
		}
		p, _ := s.Denormalize(g)
		if _, err := c.Evaluate(p, nil); err != nil {
			fails++
		}
	}
	if fails > 2 {
		t.Errorf("%d/25 random designs failed to evaluate", fails)
	}
}

func TestEvaluateWithVariation(t *testing.T) {
	c := DefaultConfig()
	proc := process.C35()
	nom, err := c.Evaluate(NominalParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A statistical sample shifts the performance but not wildly.
	var devs []float64
	for i := 0; i < 5; i++ {
		perf, err := c.Evaluate(NominalParams(), proc.NewSample(7, i))
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		devs = append(devs, perf.GainDB-nom.GainDB)
	}
	allZero := true
	for _, d := range devs {
		if d != 0 {
			allZero = false
		}
		if math.Abs(d) > 2 {
			t.Errorf("gain shift %g dB implausibly large", d)
		}
	}
	if allZero {
		t.Error("variation samples did not move the gain at all")
	}
}

func TestEvaluateVariationDeterministic(t *testing.T) {
	c := DefaultConfig()
	proc := process.C35()
	a, err := c.Evaluate(NominalParams(), proc.NewSample(3, 14))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Evaluate(NominalParams(), proc.NewSample(3, 14))
	if err != nil {
		t.Fatal(err)
	}
	if a.GainDB != b.GainDB || a.PMDeg != b.PMDeg {
		t.Error("same process sample gave different performance")
	}
}

func TestEvaluateRejectsBadParams(t *testing.T) {
	c := DefaultConfig()
	p := NominalParams()
	p.W1 = 0
	if _, err := c.Evaluate(p, nil); err == nil {
		t.Error("zero width accepted")
	}
}

func TestResponseShape(t *testing.T) {
	c := DefaultConfig()
	freqs, tf, err := c.Response(NominalParams(), nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != len(tf) || len(freqs) < 20 {
		t.Fatalf("response has %d points", len(freqs))
	}
	// Gain must roll off at high frequency.
	first := tf[0]
	last := tf[len(tf)-1]
	if !(real(first)*real(first)+imag(first)*imag(first) >
		real(last)*real(last)+imag(last)*imag(last)) {
		t.Error("response does not roll off")
	}
}

func TestOTAUnityGainStepResponse(t *testing.T) {
	// Large-signal integration test: the OTA in unity-gain feedback
	// driven by a step. The output must slew at ~B·Ibias/CL and settle
	// to the input level — this exercises OP, the nonlinear transient
	// and the device model's large-signal regions together.
	if testing.Short() {
		t.Skip("transient integration test in -short mode")
	}
	c := DefaultConfig()
	p := NominalParams()
	n := circuit.New("ota unity-gain buffer")
	vdd := n.Node("vdd")
	in := n.Node("in")
	out := n.Node("out")
	bias := n.Node("bias")
	gnd := circuit.Ground
	n.MustAdd(&circuit.VSource{Inst: "VDD", Pos: vdd, Neg: gnd, DC: c.VDD})
	n.MustAdd(&circuit.VSource{Inst: "VIN", Pos: in, Neg: gnd, DC: c.VCM,
		Wave: circuit.PulseWave{V1: c.VCM - 0.2, V2: c.VCM + 0.2,
			Delay: 0.2e-6, Rise: 1e-9, Fall: 1e-9, Width: 1, Period: 2}})
	n.MustAdd(&circuit.ISource{Inst: "IBIAS", Pos: vdd, Neg: bias, DC: c.IBias})
	n.MustAdd(&circuit.Capacitor{Inst: "CL", A: out, B: gnd, C: c.CLoad})
	// Unity feedback: output to the inverting gate.
	c.AddInstance(n, "", vdd, in, out, out,
		n.Node("n1"), n.Node("n2"), n.Node("outm"), n.Node("tail"), bias, p, nil)

	res, err := analysis.Tran(n, analysis.TranOptions{TStop: 2e-6, TStep: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	vout, err := res.V("out")
	if err != nil {
		t.Fatal(err)
	}
	// Settles to VCM+0.2 (small offset allowed).
	final := vout[len(vout)-1]
	if math.Abs(final-(c.VCM+0.2)) > 0.05 {
		t.Errorf("buffer settled to %g, want %g", final, c.VCM+0.2)
	}
	// Slew rate ≈ B·IBias/CL within a factor of a few (the symmetrical
	// OTA slews at the mirrored tail current into CL).
	sr, err := measure.TransitionSlew(res.Times, vout, c.VCM-0.2, c.VCM+0.2)
	if err != nil {
		t.Fatal(err)
	}
	expect := p.MirrorRatio() * c.IBias / c.CLoad
	if sr < expect/5 || sr > expect*5 {
		t.Errorf("slew rate %.3g V/s, expect ~%.3g", sr, expect)
	}
}
