package ota

import "testing"

// BenchmarkEvaluate times one full objective evaluation (OP + AC sweep +
// measurements) — the unit cost of the paper's 10,000-sample MOO.
func BenchmarkEvaluate(b *testing.B) {
	c := DefaultConfig()
	p := NominalParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Evaluate(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}
