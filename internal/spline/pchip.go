package spline

import (
	"math"
)

// PCHIP is a shape-preserving piecewise-cubic Hermite interpolant
// (Fritsch-Carlson). Unlike the natural cubic spline it cannot overshoot
// between knots, which makes it the robust choice for table models built
// on unevenly distributed Pareto fronts: a natural spline bridging a
// sparse region of the front can oscillate far outside the data range,
// while PCHIP stays inside the hull of neighbouring samples.
type PCHIP struct {
	xs, ys, ms []float64 // knots and nodal derivatives
}

// NewPCHIP fits a monotone piecewise-cubic Hermite interpolant.
func NewPCHIP(xs, ys []float64) (*PCHIP, error) {
	sx, sy, err := checkKnots(xs, ys, 2)
	if err != nil {
		return nil, err
	}
	n := len(sx)
	m := make([]float64, n)
	if n == 2 {
		d := (sy[1] - sy[0]) / (sx[1] - sx[0])
		m[0], m[1] = d, d
		return &PCHIP{xs: sx, ys: sy, ms: m}, nil
	}
	h := make([]float64, n-1)
	d := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		h[i] = sx[i+1] - sx[i]
		d[i] = (sy[i+1] - sy[i]) / h[i]
	}
	// Interior slopes: weighted harmonic mean when the secants agree in
	// sign, zero otherwise (local extremum).
	for i := 1; i < n-1; i++ {
		if d[i-1]*d[i] <= 0 {
			m[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		m[i] = (w1 + w2) / (w1/d[i-1] + w2/d[i])
	}
	// One-sided endpoint slopes, limited to preserve shape.
	m[0] = endSlope(h[0], h[1], d[0], d[1])
	m[n-1] = endSlope(h[n-2], h[n-3], d[n-2], d[n-3])
	return &PCHIP{xs: sx, ys: sy, ms: m}, nil
}

// endSlope computes the Fritsch-Carlson non-centred boundary derivative.
func endSlope(h0, h1, d0, d1 float64) float64 {
	s := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	switch {
	case s*d0 <= 0:
		return 0
	case d0*d1 <= 0 && math.Abs(s) > 3*math.Abs(d0):
		return 3 * d0
	}
	return s
}

// Eval returns the interpolated value at x. Outside the knot range the
// end segment's Hermite cubic is continued (table wrappers apply their
// own extrapolation policy first).
func (p *PCHIP) Eval(x float64) float64 {
	i := segment(p.xs, x)
	h := p.xs[i+1] - p.xs[i]
	t := (x - p.xs[i]) / h
	h00 := (1 + 2*t) * (1 - t) * (1 - t)
	h10 := t * (1 - t) * (1 - t)
	h01 := t * t * (3 - 2*t)
	h11 := t * t * (t - 1)
	return h00*p.ys[i] + h10*h*p.ms[i] + h01*p.ys[i+1] + h11*h*p.ms[i+1]
}

// Domain returns the knot range.
func (p *PCHIP) Domain() (lo, hi float64) { return p.xs[0], p.xs[len(p.xs)-1] }

// DegreeMonotoneCubic selects PCHIP interpolation in this repository's
// table models. It has no Verilog-A control-string equivalent (Verilog-A
// only offers degrees 1-3); generated Verilog-A always uses the standard
// cubic spline, while the in-process tables default to PCHIP for
// robustness on unevenly sampled fronts.
const DegreeMonotoneCubic Degree = 4
