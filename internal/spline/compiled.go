package spline

import (
	"fmt"
)

// Compiled is an immutable, struct-of-arrays compilation of an
// interpolator, built for read-mostly hot paths (the server's yield
// queries evaluate the same handful of curves millions of times).
// Three things make it faster than the source interpolator without
// changing a single output bit:
//
//   - no interface dispatch: the coefficient arrays are evaluated
//     directly, natural cubics in the same Horner form Cubic.Eval uses;
//   - segment hints: Eval's binary search is replaced by a constant-time
//     check of the caller's previous segment (and its neighbours), which
//     almost always hits when consecutive queries are close together —
//     the access pattern of both batched evaluation and the projection
//     refinement loop;
//   - zero allocations: EvalBatch writes into a caller-provided slice.
//
// Bit-identity with the source interpolator is part of the contract
// (asserted by TestCompiledBitIdentical): every arithmetic expression is
// evaluated in exactly the order the interpreted Eval uses, so callers
// may switch between the two freely, per point, without observable
// effect. PCHIP segments therefore keep their Hermite-basis arithmetic
// rather than being re-expanded into monomial coefficients, which would
// round differently.
type Compiled struct {
	kind compiledKind
	xs   []float64

	// Natural cubic: per-segment Horner coefficients of
	// ((a·dx + b)·dx + c)·dx + d with dx = x − xs[i].
	a, b, c, d []float64

	// PCHIP (values + nodal derivatives) and Linear (values only).
	ys, ms []float64
}

type compiledKind int

const (
	compiledLinear compiledKind = iota
	compiledCubic
	compiledPCHIP
)

// Compile builds the struct-of-arrays form of an interpolator. Linear,
// Cubic and PCHIP interpolants are supported; other kinds (Quadratic's
// moving three-point window does not decompose into per-segment
// coefficients) return an error, and callers fall back to the
// interpreted path.
func Compile(itp Interpolator) (*Compiled, error) {
	switch s := itp.(type) {
	case *Linear:
		return &Compiled{
			kind: compiledLinear,
			xs:   append([]float64(nil), s.xs...),
			ys:   append([]float64(nil), s.ys...),
		}, nil
	case *Cubic:
		return &Compiled{
			kind: compiledCubic,
			xs:   append([]float64(nil), s.xs...),
			a:    append([]float64(nil), s.a...),
			b:    append([]float64(nil), s.b...),
			c:    append([]float64(nil), s.c...),
			d:    append([]float64(nil), s.d...),
			ys:   append([]float64(nil), s.ys...),
		}, nil
	case *PCHIP:
		return &Compiled{
			kind: compiledPCHIP,
			xs:   append([]float64(nil), s.xs...),
			ys:   append([]float64(nil), s.ys...),
			ms:   append([]float64(nil), s.ms...),
		}, nil
	default:
		return nil, fmt.Errorf("spline: cannot compile %T", itp)
	}
}

// Domain returns the knot range.
func (s *Compiled) Domain() (lo, hi float64) { return s.xs[0], s.xs[len(s.xs)-1] }

// Segments returns the number of knot intervals.
func (s *Compiled) Segments() int { return len(s.xs) - 1 }

// Knot returns the i-th knot abscissa.
func (s *Compiled) Knot(i int) float64 { return s.xs[i] }

// KnotY returns the sample value at the i-th knot.
func (s *Compiled) KnotY(i int) float64 { return s.ys[i] }

// Segment locates the knot interval containing x exactly as the
// interpreted evaluators do (the largest i with xs[i] < x, clamped to
// [0, Segments()-1]), trying the hinted segment and its neighbours
// before falling back to binary search. Any out-of-range hint (e.g. -1)
// selects the binary search.
func (s *Compiled) Segment(x float64, hint int) int {
	xs := s.xs
	n := len(xs)
	if uint(hint) <= uint(n-2) {
		if xs[hint] < x {
			if hint == n-2 || xs[hint+1] >= x {
				return hint
			}
			// Sequential scans usually move one segment forward.
			if hint+1 == n-2 || xs[hint+2] >= x {
				return hint + 1
			}
		} else if hint == 0 {
			return 0
		} else if xs[hint-1] < x {
			return hint - 1
		}
	}
	return segment(xs, x)
}

// evalSegment evaluates segment i at x with the source interpolator's
// exact arithmetic.
func (s *Compiled) evalSegment(x float64, i int) float64 {
	switch s.kind {
	case compiledCubic:
		dx := x - s.xs[i]
		return ((s.a[i]*dx+s.b[i])*dx+s.c[i])*dx + s.d[i]
	case compiledPCHIP:
		h := s.xs[i+1] - s.xs[i]
		t := (x - s.xs[i]) / h
		h00 := (1 + 2*t) * (1 - t) * (1 - t)
		h10 := t * (1 - t) * (1 - t)
		h01 := t * t * (3 - 2*t)
		h11 := t * t * (t - 1)
		return h00*s.ys[i] + h10*h*s.ms[i] + h01*s.ys[i+1] + h11*h*s.ms[i+1]
	default: // compiledLinear
		t := (x - s.xs[i]) / (s.xs[i+1] - s.xs[i])
		return s.ys[i] + t*(s.ys[i+1]-s.ys[i])
	}
}

// Eval returns the interpolated value at x, bit-identical to the source
// interpolator's Eval.
func (s *Compiled) Eval(x float64) float64 {
	return s.evalSegment(x, s.Segment(x, -1))
}

// EvalHint is Eval with segment-hint reuse: it returns the value and the
// segment that produced it, which the caller passes back on its next
// (nearby) query to skip the binary search.
func (s *Compiled) EvalHint(x float64, hint int) (y float64, seg int) {
	i := s.Segment(x, hint)
	return s.evalSegment(x, i), i
}

// EvalBatch appends the interpolated value at every x in xs to dst and
// returns the extended slice. The segment hint carries from point to
// point, so sorted or locally-clustered batches evaluate without any
// binary search; with a pre-sized dst the call does not allocate.
func (s *Compiled) EvalBatch(dst, xs []float64) []float64 {
	hint := -1
	for _, x := range xs {
		var y float64
		y, hint = s.EvalHint(x, hint)
		dst = append(dst, y)
	}
	return dst
}
